package qplacer

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"

	"qplacer/internal/geom"
	"qplacer/internal/testutil"
)

func containsStr(names []string, want string) bool {
	for _, n := range names {
		if n == want {
			return true
		}
	}
	return false
}

func TestBackendRegistriesListBuiltins(t *testing.T) {
	placers := Placers()
	for _, want := range []string{"nesterov", "anneal"} {
		if !containsStr(placers, want) {
			t.Fatalf("Placers() = %v missing %q", placers, want)
		}
	}
	legalizers := Legalizers()
	for _, want := range []string{"shelf", "greedy"} {
		if !containsStr(legalizers, want) {
			t.Fatalf("Legalizers() = %v missing %q", legalizers, want)
		}
	}
	for i := 1; i < len(placers); i++ {
		if placers[i-1] >= placers[i] {
			t.Fatalf("Placers() not sorted: %v", placers)
		}
	}
}

// stubPlacer pins every qubit to its scaled canonical coordinate and strings
// each resonator's segments along the line between its endpoint qubits — the
// smallest custom backend that still produces a placement the legalizers
// (and the conformance suite) can work with.
type stubPlacer struct{ name string }

func (s stubPlacer) Name() string { return s.name }

func (s stubPlacer) Place(ctx context.Context, st *StageState, obs Observer) (*PlaceOutcome, error) {
	start := time.Now()
	nl := st.Netlist
	for q, instID := range nl.QubitInst {
		c := st.Device.Coords[q]
		nl.Instances[instID].Pos.X = c.X * 3
		nl.Instances[instID].Pos.Y = c.Y * 3
	}
	for _, res := range nl.Resonators {
		a := nl.Instances[nl.QubitInst[res.QubitA]].Pos
		b := nl.Instances[nl.QubitInst[res.QubitB]].Pos
		for k, sid := range res.Segments {
			f := float64(k+1) / float64(len(res.Segments)+1)
			nl.Instances[sid].Pos = geom.Point{X: a.X + (b.X-a.X)*f, Y: a.Y + (b.Y-a.Y)*f}
		}
	}
	obs.OnProgress(Progress{Stage: StagePlace, Backend: s.name, Iteration: 1})
	rects := nl.PaddedRects()
	region := rects[0]
	for _, r := range rects[1:] {
		region = region.Union(r)
	}
	return &PlaceOutcome{Region: region, Iterations: 1, Runtime: time.Since(start)}, nil
}

func TestRegisterPlacerDuplicateAndValidation(t *testing.T) {
	name := testutil.UniqueName(t)
	p := stubPlacer{name: name}
	if err := RegisterPlacer(p); err != nil {
		t.Fatal(err)
	}
	if err := RegisterPlacer(p); !errors.Is(err, ErrDuplicatePlacer) {
		t.Fatalf("duplicate placer err = %v, want ErrDuplicatePlacer", err)
	}
	if err := RegisterPlacer(stubPlacer{}); err == nil {
		t.Fatal("empty placer name must be rejected")
	}
	if err := RegisterPlacer(nil); err == nil {
		t.Fatal("nil placer must be rejected")
	}

	// The registered backend is selectable by name and actually runs.
	eng := New()
	plan, err := eng.Plan(context.Background(),
		WithTopology("grid"), WithPlacer(name), WithSkipLegalize(true))
	if err != nil {
		t.Fatal(err)
	}
	if plan.Options.Placer != name || plan.PlaceIterations != 1 {
		t.Fatalf("custom placer not used: %+v", plan.Options)
	}
}

// stubLegalizer is an honest minimal legalizer: it repacks every instance's
// fully padded footprint onto left-to-right shelves, which is overlap-free
// by construction — so custom-backend registrations stay conformant under
// the validation suite.
type stubLegalizer struct{ name string }

func (s stubLegalizer) Name() string { return s.name }

func (s stubLegalizer) Legalize(_ context.Context, st *StageState, region geom.Rect, obs Observer) (*LegalizeOutcome, error) {
	x, y, rowH := region.Lo.X, region.Lo.Y, 0.0
	for _, in := range st.Netlist.Instances {
		w, h := in.PaddedW(), in.PaddedH()
		if x+w > region.Hi.X && x > region.Lo.X {
			x, y, rowH = region.Lo.X, y+rowH, 0
		}
		in.Pos = geom.Point{X: x + w/2, Y: y + h/2}
		x += w
		if h > rowH {
			rowH = h
		}
	}
	obs.OnProgress(Progress{Stage: StageLegalize, Backend: s.name, Iteration: 1})
	return &LegalizeOutcome{}, nil
}

func TestRegisterLegalizerDuplicate(t *testing.T) {
	l := stubLegalizer{name: testutil.UniqueName(t)}
	if err := RegisterLegalizer(l); err != nil {
		t.Fatal(err)
	}
	if err := RegisterLegalizer(l); !errors.Is(err, ErrDuplicateLegalizer) {
		t.Fatalf("duplicate legalizer err = %v, want ErrDuplicateLegalizer", err)
	}
	if err := RegisterLegalizer(nil); err == nil {
		t.Fatal("nil legalizer must be rejected")
	}
}

func TestOptionsNormalizedBackends(t *testing.T) {
	norm, err := Options{}.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	if norm.Placer != DefaultPlacerName || norm.Legalizer != DefaultLegalizerName {
		t.Fatalf("zero options resolve to %q/%q, want %q/%q",
			norm.Placer, norm.Legalizer, DefaultPlacerName, DefaultLegalizerName)
	}
	if _, err := (Options{Placer: "warp-drive"}).Normalized(); !errors.Is(err, ErrUnknownPlacer) {
		t.Fatalf("unknown placer err = %v, want ErrUnknownPlacer", err)
	}
	if _, err := (Options{Legalizer: "warp-drive"}).Normalized(); !errors.Is(err, ErrUnknownLegalizer) {
		t.Fatalf("unknown legalizer err = %v, want ErrUnknownLegalizer", err)
	}
	if _, err := PlacerByName("warp-drive"); !errors.Is(err, ErrUnknownPlacer) {
		t.Fatalf("PlacerByName err = %v, want ErrUnknownPlacer", err)
	}
	if _, err := LegalizerByName("warp-drive"); !errors.Is(err, ErrUnknownLegalizer) {
		t.Fatalf("LegalizerByName err = %v, want ErrUnknownLegalizer", err)
	}
}

func TestOptionsBackendJSONRoundTrip(t *testing.T) {
	// Empty backend fields stay off the wire.
	data, err := json.Marshal(Options{Topology: "grid"})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), `"placer":`) || strings.Contains(string(data), `"legalizer":`) {
		t.Fatalf("empty backends must be omitted: %s", data)
	}

	// Set fields round-trip.
	in := Options{Topology: "grid", Placer: "anneal", Legalizer: "greedy"}
	data, err = json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var back Options
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back != in {
		t.Fatalf("round-trip %+v -> %+v", in, back)
	}

	// Unknown names pass decoding (they are plain strings) and are rejected
	// at Normalized with the typed sentinel — the contract the server's 400
	// mapping relies on.
	var bogus Options
	if err := json.Unmarshal([]byte(`{"topology":"grid","placer":"fictional"}`), &bogus); err != nil {
		t.Fatal(err)
	}
	if _, err := bogus.Normalized(); !errors.Is(err, ErrUnknownPlacer) {
		t.Fatalf("err = %v, want ErrUnknownPlacer", err)
	}
}

func TestObserverReceivesMonotonicIterations(t *testing.T) {
	// Backends call OnProgress synchronously from the goroutine running the
	// plan, so a plain slice is race-free here.
	var events []Progress
	obs := ObserverFunc(func(p Progress) { events = append(events, p) })

	eng := New(WithObserver(obs))
	_, err := eng.Plan(context.Background(), WithTopology("grid"), WithMaxIters(6))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("observer received no events")
	}
	lastPlace, lastLegal := 0, 0
	sawPlace, sawLegal := false, false
	for _, ev := range events {
		switch ev.Stage {
		case StagePlace:
			sawPlace = true
			if ev.Backend != DefaultPlacerName {
				t.Fatalf("place backend = %q, want %q", ev.Backend, DefaultPlacerName)
			}
			if ev.Iteration <= lastPlace {
				t.Fatalf("place iteration %d after %d: not monotonic", ev.Iteration, lastPlace)
			}
			lastPlace = ev.Iteration
		case StageLegalize:
			sawLegal = true
			if ev.Iteration <= lastLegal {
				t.Fatalf("legalize step %d after %d: not monotonic", ev.Iteration, lastLegal)
			}
			lastLegal = ev.Iteration
		default:
			t.Fatalf("unknown stage %q", ev.Stage)
		}
	}
	if !sawPlace || !sawLegal {
		t.Fatalf("stages seen: place=%v legalize=%v, want both", sawPlace, sawLegal)
	}

	// A warm cache hit replays no stage, hence no events.
	before := len(events)
	if _, err := eng.Plan(context.Background(), WithTopology("grid"), WithMaxIters(6)); err != nil {
		t.Fatal(err)
	}
	if len(events) != before {
		t.Fatalf("warm hit emitted %d extra events", len(events)-before)
	}
}

func TestAnnealBackendDeterministicBySeed(t *testing.T) {
	ctx := context.Background()
	run := func() *PlanResult {
		eng := New()
		plan, err := eng.Plan(ctx, WithTopology("grid"), WithPlacer("anneal"),
			WithMaxIters(25), WithSkipLegalize(true))
		if err != nil {
			t.Fatal(err)
		}
		return plan
	}
	p1, p2 := run(), run()
	for i := range p1.Netlist.Instances {
		if p1.Netlist.Instances[i].Pos != p2.Netlist.Instances[i].Pos {
			t.Fatalf("anneal backend not deterministic: instance %d %v vs %v",
				i, p1.Netlist.Instances[i].Pos, p2.Netlist.Instances[i].Pos)
		}
	}
}

func TestPlanCacheKeyedByBackend(t *testing.T) {
	ctx := context.Background()
	eng := New(WithTopology("grid"), WithMaxIters(10), WithSkipLegalize(true))

	nesterov, err := eng.Plan(ctx, WithPlacer("nesterov"))
	if err != nil {
		t.Fatal(err)
	}
	annealed, err := eng.Plan(ctx, WithPlacer("anneal"))
	if err != nil {
		t.Fatal(err)
	}
	if nesterov == annealed {
		t.Fatal("warm cache served one backend's plan for the other")
	}
	if nesterov.Options.Placer == annealed.Options.Placer {
		t.Fatalf("backends not recorded in options: %+v vs %+v",
			nesterov.Options, annealed.Options)
	}
	// Each backend's own warm hit still works.
	again, err := eng.Plan(ctx, WithPlacer("anneal"))
	if err != nil {
		t.Fatal(err)
	}
	if again != annealed {
		t.Fatal("anneal plan not cached")
	}
	// The two legalizers are distinct cache entries too.
	shelf, err := eng.Plan(ctx, WithSkipLegalize(false), WithLegalizer("shelf"))
	if err != nil {
		t.Fatal(err)
	}
	greedy, err := eng.Plan(ctx, WithSkipLegalize(false), WithLegalizer("greedy"))
	if err != nil {
		t.Fatal(err)
	}
	if shelf == greedy {
		t.Fatal("legalizer variants shared one cache entry")
	}
}

// TestAnnealDeterministicAcrossEngines runs the full anneal pipeline —
// placement and legalization, explicit non-default seed — on two completely
// independent engines (no shared caches) and requires bit-identical layouts
// and metrics: the reproducibility contract the golden corpus relies on.
func TestAnnealDeterministicAcrossEngines(t *testing.T) {
	ctx := context.Background()
	run := func() *PlanResult {
		eng := New() // fresh engine: cold stage and plan caches
		plan, err := eng.Plan(ctx, WithTopology("grid"), WithPlacer("anneal"),
			WithLegalizer("greedy"), WithMaxIters(30), WithSeed(11))
		if err != nil {
			t.Fatal(err)
		}
		return plan
	}
	p1, p2 := run(), run()
	if p1 == p2 {
		t.Fatal("independent engines shared a plan pointer")
	}
	if p1.PlaceIterations != p2.PlaceIterations {
		t.Fatalf("iterations diverge: %d vs %d", p1.PlaceIterations, p2.PlaceIterations)
	}
	for i := range p1.Netlist.Instances {
		if p1.Netlist.Instances[i].Pos != p2.Netlist.Instances[i].Pos {
			t.Fatalf("equal seeds, different engines: instance %d at %v vs %v",
				i, p1.Netlist.Instances[i].Pos, p2.Netlist.Instances[i].Pos)
		}
	}
	if p1.Metrics.Amer != p2.Metrics.Amer || p1.Metrics.Ph != p2.Metrics.Ph ||
		p1.Metrics.Utilization != p2.Metrics.Utilization {
		t.Fatalf("metrics diverge: %+v vs %+v", p1.Metrics, p2.Metrics)
	}
}

func TestGreedyLegalizerProducesLegalPlans(t *testing.T) {
	ctx := context.Background()
	eng := New()
	for _, placer := range []string{"nesterov", "anneal"} {
		plan, err := eng.Plan(ctx, WithTopology("grid"), WithPlacer(placer),
			WithLegalizer("greedy"), WithMaxIters(40))
		if err != nil {
			t.Fatalf("%s+greedy: %v", placer, err)
		}
		if plan.Metrics == nil || plan.Metrics.Amer <= 0 {
			t.Fatalf("%s+greedy: degenerate metrics %+v", placer, plan.Metrics)
		}
	}
}
