package qplacer

import (
	"context"
	"sync"
	"testing"
)

// fastGridOpts is a quick deterministic grid run used by the parallelism tests.
func fastGridOpts() Options {
	return Options{Topology: "grid", MaxIters: 20}
}

// TestParallelismExcludedFromPlanCacheKey pins the WithParallelism contract:
// parallelism never changes results, so plans computed at different worker
// counts must share one cache entry — the second Plan is a warm hit
// returning the same *PlanResult, not a re-run.
func TestParallelismExcludedFromPlanCacheKey(t *testing.T) {
	ctx := context.Background()
	eng := New()
	serial, err := eng.Plan(ctx, WithOptions(fastGridOpts()), WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := eng.Plan(ctx, WithOptions(fastGridOpts()), WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	if serial != parallel {
		t.Fatal("parallelism leaked into the plan-cache key: got distinct plans for identical options")
	}
}

// TestSerialParallelPlanIdentical asserts the public-API guarantee on grid
// and falcon: a serial engine and a parallel engine produce byte-identical
// placements and metrics for the same options, across both built-in
// legalizers.
func TestSerialParallelPlanIdentical(t *testing.T) {
	ctx := context.Background()
	for _, topo := range []string{"grid", "falcon"} {
		for _, legalizer := range []string{"shelf", "greedy"} {
			opts := Options{Topology: topo, MaxIters: 25, Legalizer: legalizer}
			serial, err := New(WithParallelism(1)).Plan(ctx, WithOptions(opts))
			if err != nil {
				t.Fatal(err)
			}
			parallel, err := New(WithParallelism(4)).Plan(ctx, WithOptions(opts))
			if err != nil {
				t.Fatal(err)
			}
			for i, in := range serial.Netlist.Instances {
				pin := parallel.Netlist.Instances[i]
				if in.Pos != pin.Pos {
					t.Fatalf("%s/%s instance %d: parallel pos %v, serial pos %v (bitwise)",
						topo, legalizer, i, pin.Pos, in.Pos)
				}
			}
			if serial.Metrics.Ph != parallel.Metrics.Ph ||
				serial.Metrics.Amer != parallel.Metrics.Amer ||
				serial.Metrics.Utilization != parallel.Metrics.Utilization {
				t.Fatalf("%s/%s: metrics drifted between serial and parallel", topo, legalizer)
			}
			if serial.PlaceOverflow != parallel.PlaceOverflow {
				t.Fatalf("%s/%s: overflow %v != %v", topo, legalizer,
					parallel.PlaceOverflow, serial.PlaceOverflow)
			}
		}
	}
}

// TestParallelPlanConcurrentEngines drives the parallel gradient path from
// two engines at once — each owning its own worker pool — so `go test
// -race` covers pool handoff, per-worker FFT plans, and the owner-computes
// kernels under real concurrency.
func TestParallelPlanConcurrentEngines(t *testing.T) {
	ctx := context.Background()
	var wg sync.WaitGroup
	results := make([]*PlanResult, 2)
	errs := make([]error, 2)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			eng := New(WithParallelism(3))
			results[i], errs[i] = eng.Plan(ctx, WithOptions(fastGridOpts()))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("engine %d: %v", i, err)
		}
	}
	for i, in := range results[0].Netlist.Instances {
		if other := results[1].Netlist.Instances[i]; in.Pos != other.Pos {
			t.Fatalf("concurrent engines diverged at instance %d: %v vs %v", i, in.Pos, other.Pos)
		}
	}
}
