package qplacer

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

// legalizedPlan runs a fast but fully legalized grid pipeline.
func legalizedPlan(t *testing.T, opts ...Option) *PlanResult {
	t.Helper()
	eng := New(WithTopology("grid"), WithMaxIters(30))
	plan, err := eng.Plan(context.Background(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

func TestValidateCleanLegalizedPlan(t *testing.T) {
	plan := legalizedPlan(t)
	rep, err := Validate(plan)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Valid || rep.Errors != 0 {
		t.Fatalf("legalized plan invalid: %+v", rep.Violations)
	}
	if rep.InstancesChecked != plan.NumCells || rep.PairsChecked == 0 {
		t.Fatalf("check coverage: %d instances, %d pairs", rep.InstancesChecked, rep.PairsChecked)
	}
	if plan.Validation != nil {
		t.Fatal("Validate must not mutate the plan")
	}
}

func TestValidateFlagsCorruptedPlacement(t *testing.T) {
	// A fresh engine so the corrupted netlist never leaks into a shared cache.
	eng := New()
	plan, err := eng.Plan(context.Background(), WithTopology("grid"), WithMaxIters(30))
	if err != nil {
		t.Fatal(err)
	}
	// Force two qubits onto colliding frequencies and overlapping footprints.
	a := plan.Netlist.Instances[plan.Netlist.QubitInst[0]]
	b := plan.Netlist.Instances[plan.Netlist.QubitInst[1]]
	b.Pos = a.Pos
	b.FreqGHz = a.FreqGHz

	rep, err := Validate(plan)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Valid {
		t.Fatal("corrupted placement passed validation")
	}
	overlaps := rep.ByCode(ViolationOverlap)
	if len(overlaps) == 0 {
		t.Fatalf("no overlap violation: %+v", rep.Violations)
	}
	v := overlaps[0]
	if v.Severity != SeverityError || v.A < 0 || v.B < 0 || v.Detail == "" {
		t.Fatalf("overlap violation malformed: %+v", v)
	}
	if v.X != a.Pos.X || v.Y != a.Pos.Y {
		t.Fatalf("overlap located at (%v,%v), want %v", v.X, v.Y, a.Pos)
	}
	if len(rep.ByCode(ViolationFrequencyCollision)) == 0 {
		t.Fatalf("no frequency-collision violation: %+v", rep.Violations)
	}
	// Moving instances invalidates the claimed metrics too.
	if len(rep.ByCode(ViolationMetricsMismatch)) == 0 {
		t.Fatalf("no metrics-mismatch violation: %+v", rep.Violations)
	}
}

func TestValidateRejectsNilPlan(t *testing.T) {
	if _, err := Validate(nil); err == nil {
		t.Fatal("nil plan must be rejected")
	}
	if _, err := Validate(&PlanResult{}); err == nil {
		t.Fatal("plan without netlist must be rejected")
	}
}

func TestWithValidationAnnotate(t *testing.T) {
	eng := New(WithTopology("grid"), WithMaxIters(30), WithValidation(ValidationAnnotate))
	ctx := context.Background()
	plan, err := eng.Plan(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Validation == nil {
		t.Fatal("annotate mode left Validation nil")
	}
	if !plan.Validation.Valid {
		t.Fatalf("legalized plan invalid: %+v", plan.Validation.Violations)
	}
	// Warm cache hit keeps the annotation.
	warm, err := eng.Plan(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Validation == nil {
		t.Fatal("warm hit lost the validation report")
	}
}

func TestWithValidationAnnotatesWarmCacheHit(t *testing.T) {
	// Plan without validation first; a later annotate-mode call on the same
	// options must verify the cached plan without mutating the shared one.
	eng := New(WithTopology("grid"), WithMaxIters(30))
	ctx := context.Background()
	bare, err := eng.Plan(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if bare.Validation != nil {
		t.Fatal("off mode must not validate")
	}
	annotated, err := eng.Plan(ctx, WithValidation(ValidationAnnotate))
	if err != nil {
		t.Fatal(err)
	}
	if annotated.Validation == nil {
		t.Fatal("annotate-mode warm hit has no report")
	}
	if bare.Validation != nil {
		t.Fatal("shared cached plan was mutated")
	}
	// The annotated copy becomes the cache entry: a later off-mode call
	// returns it as-is, and a second annotate call re-uses the report.
	again, err := eng.Plan(ctx, WithValidation(ValidationAnnotate))
	if err != nil {
		t.Fatal(err)
	}
	if again != annotated {
		t.Fatal("annotated plan not re-served from the cache")
	}
}

func TestWithValidationStrict(t *testing.T) {
	ctx := context.Background()
	// A legalized plan passes strict mode.
	eng := New(WithTopology("grid"), WithMaxIters(30), WithValidation(ValidationStrict))
	if _, err := eng.Plan(ctx); err != nil {
		t.Fatalf("strict mode failed a legal plan: %v", err)
	}
	// An unlegalized global placement overlaps heavily: strict mode fails
	// with the typed sentinel, annotate mode only records it.
	if _, err := eng.Plan(ctx, WithSkipLegalize(true), WithMaxIters(5)); !errors.Is(err, ErrInvalidPlacement) {
		t.Fatalf("strict err = %v, want ErrInvalidPlacement", err)
	}
	lax, err := eng.Plan(ctx, WithSkipLegalize(true), WithMaxIters(5), WithValidation(ValidationAnnotate))
	if err != nil {
		t.Fatal(err)
	}
	if lax.Validation == nil || lax.Validation.Valid {
		t.Fatalf("unlegalized plan should annotate as invalid: %+v", lax.Validation)
	}
	// Strict mode also guards the warm cache: the annotated invalid entry
	// now exists, and a strict call on it must still fail.
	if _, err := eng.Plan(ctx, WithSkipLegalize(true), WithMaxIters(5)); !errors.Is(err, ErrInvalidPlacement) {
		t.Fatalf("strict warm err = %v, want ErrInvalidPlacement", err)
	}
}

func TestValidationReportOnTheWire(t *testing.T) {
	eng := New(WithTopology("grid"), WithMaxIters(30), WithValidation(ValidationAnnotate))
	plan, err := eng.Plan(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(&ResultDocument{Plan: plan, Validation: plan.Validation})
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	if !strings.Contains(s, `"validation"`) || !strings.Contains(s, `"valid":true`) {
		t.Fatalf("validation block missing from wire form: %s", s[:200])
	}
	// An unannotated plan keeps the block off the wire entirely.
	bare := legalizedPlan(t)
	data, err = json.Marshal(bare)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), `"validation"`) {
		t.Fatal("nil validation must be omitted from JSON")
	}
}
