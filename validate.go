package qplacer

import (
	"fmt"

	"qplacer/internal/validate"
)

// This file is the public face of the placement verifier: Validate re-checks
// a finished plan against independently re-derived constraints
// (internal/validate), ValidationReport/ValidationViolation are its typed,
// JSON-stable result, and ValidationMode + WithValidation let an Engine run
// the verifier after every plan — annotating the result or failing outright.

// ValidationSeverity ranks a violation: "error" makes the placement invalid,
// "warning" flags a residual quality defect (e.g. a frequency hotspot, which
// the paper measures as P_h rather than forbids).
type ValidationSeverity string

const (
	// SeverityError marks a hard constraint violation.
	SeverityError ValidationSeverity = "error"
	// SeverityWarning marks a quality defect a legal layout may still carry.
	SeverityWarning ValidationSeverity = "warning"
)

// ValidationCode identifies the constraint a violation breaks.
type ValidationCode string

const (
	// ViolationNonFinite: an instance with a NaN or infinite coordinate,
	// size, or frequency.
	ViolationNonFinite ValidationCode = "non_finite"
	// ViolationOverlap: two instances whose exclusive claim footprints
	// interpenetrate — the layout is not manufacturable.
	ViolationOverlap ValidationCode = "overlap"
	// ViolationFrequencyCollision: a near-resonant pair inside the
	// interaction radius — a frequency hotspot.
	ViolationFrequencyCollision ValidationCode = "frequency_collision"
	// ViolationOutOfBounds: an instance far outside the declared placement
	// region.
	ViolationOutOfBounds ValidationCode = "out_of_bounds"
	// ViolationMetricsMismatch: a claimed metric disagreeing with its
	// independent recomputation.
	ViolationMetricsMismatch ValidationCode = "metrics_mismatch"
)

// ValidationViolation is one broken constraint, located on the die.
type ValidationViolation struct {
	Code     ValidationCode     `json:"code"`
	Severity ValidationSeverity `json:"severity"`
	// A and B are the instance IDs involved; B is -1 for single-instance
	// violations, and both are -1 for layout-level ones (metrics mismatch).
	A int `json:"a"`
	B int `json:"b"`
	// X, Y locate the violation site in mm (midpoint for pair violations).
	X      float64 `json:"x"`
	Y      float64 `json:"y"`
	Detail string  `json:"detail,omitempty"`
}

// ValidationReport is the outcome of verifying one placement.
type ValidationReport struct {
	// Valid is true when no error-severity violation was found; warnings do
	// not invalidate a placement.
	Valid    bool `json:"valid"`
	Errors   int  `json:"errors"`
	Warnings int  `json:"warnings"`
	// InstancesChecked and PairsChecked record the work performed, so an
	// empty violation list is distinguishable from a vacuous check.
	InstancesChecked int                   `json:"instances_checked"`
	PairsChecked     int                   `json:"pairs_checked"`
	Violations       []ValidationViolation `json:"violations"`
}

// ByCode returns the violations carrying the given code.
func (r *ValidationReport) ByCode(code ValidationCode) []ValidationViolation {
	var out []ValidationViolation
	for _, v := range r.Violations {
		if v.Code == code {
			out = append(out, v)
		}
	}
	return out
}

// Validate independently re-checks a finished plan: pairwise frequency
// collisions within the interaction radius, geometric overlap of the claim
// footprints, die-boundary containment, and consistency of the plan's
// claimed metrics. It re-derives every constraint from scratch rather than
// trusting the placer/legalizer that produced the layout, so it catches bad
// custom backends and corrupted or tampered results alike. The plan is not
// mutated; a report full of violations is a successful validation — the only
// errors are nil or empty plans.
func Validate(plan *PlanResult) (*ValidationReport, error) {
	if plan == nil || plan.Netlist == nil {
		return nil, fmt.Errorf("qplacer: validate nil plan")
	}
	rep, err := validate.Check(validate.Input{
		Netlist: plan.Netlist,
		DeltaC:  plan.Options.DeltaC,
		Region:  plan.Region,
		Metrics: plan.Metrics,
	})
	if err != nil {
		return nil, err
	}
	return toValidationReport(rep), nil
}

// toValidationReport converts the internal report to the public wire form.
func toValidationReport(rep *validate.Report) *ValidationReport {
	errs, warns := rep.Counts()
	out := &ValidationReport{
		Valid:            rep.Valid(),
		Errors:           errs,
		Warnings:         warns,
		InstancesChecked: rep.InstancesChecked,
		PairsChecked:     rep.PairsChecked,
		Violations:       make([]ValidationViolation, 0, len(rep.Violations)),
	}
	for _, v := range rep.Violations {
		sev := SeverityWarning
		if v.Severity == validate.SeverityError {
			sev = SeverityError
		}
		out.Violations = append(out.Violations, ValidationViolation{
			Code:     ValidationCode(v.Code),
			Severity: sev,
			A:        v.A,
			B:        v.B,
			X:        v.Pos.X,
			Y:        v.Pos.Y,
			Detail:   v.Detail,
		})
	}
	return out
}

// ValidationMode selects what an Engine does with the verifier after each
// plan (see WithValidation).
type ValidationMode int

const (
	// ValidationOff runs no verification (the default).
	ValidationOff ValidationMode = iota
	// ValidationAnnotate verifies every plan and attaches the report to
	// PlanResult.Validation (and thus to the JSON wire form), but never
	// fails the run.
	ValidationAnnotate
	// ValidationStrict verifies every plan and fails Plan with
	// ErrInvalidPlacement when the report carries error-severity violations.
	ValidationStrict
)

// validationError summarizes an invalid report into the ErrInvalidPlacement
// chain, quoting the first error-severity violation.
func validationError(rep *ValidationReport) error {
	first := ""
	for _, v := range rep.Violations {
		if v.Severity == SeverityError {
			first = fmt.Sprintf(" (first: %s: %s)", v.Code, v.Detail)
			break
		}
	}
	return fmt.Errorf("%w: %d error violation(s)%s", ErrInvalidPlacement, rep.Errors, first)
}
