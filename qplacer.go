// Package qplacer is the public API of the QPlacer reproduction: a
// frequency-aware, electrostatic-based placement framework for
// superconducting quantum processors (Zhang et al., ISCA 2025 /
// arXiv:2401.17450).
//
// The pipeline mirrors Fig. 7 of the paper:
//
//  1. pick a device topology and assign frequencies (frequency-domain
//     isolation over the available spectra),
//  2. pad qubits and partition resonators into wire blocks,
//  3. run the frequency-aware electrostatic global placement (or the
//     Classic baseline, or the Human manual layout),
//  4. legalize with the integration-aware legalizer,
//  5. evaluate: area metrics, frequency hotspots, and program fidelity on
//     the Table I NISQ benchmarks.
//
// Quickstart:
//
//	plan, err := qplacer.Plan(qplacer.Options{Topology: "falcon"})
//	...
//	eval, err := qplacer.Evaluate(plan, "bv-4", 50)
package qplacer

import (
	"fmt"
	"io"
	"time"

	"qplacer/internal/circuit"
	"qplacer/internal/component"
	"qplacer/internal/fidelity"
	"qplacer/internal/frequency"
	"qplacer/internal/geom"
	"qplacer/internal/legal"
	"qplacer/internal/mapper"
	"qplacer/internal/metrics"
	"qplacer/internal/physics"
	"qplacer/internal/place"
	"qplacer/internal/render"
	"qplacer/internal/topology"
)

// Scheme selects the placement strategy of §V-B.
type Scheme int

const (
	// SchemeQplacer is the frequency-aware electrostatic engine.
	SchemeQplacer Scheme = iota
	// SchemeClassic is the same engine without the frequency force.
	SchemeClassic
	// SchemeHuman is the manually optimized IBM-style grid baseline.
	SchemeHuman
)

func (s Scheme) String() string {
	switch s {
	case SchemeQplacer:
		return "qplacer"
	case SchemeClassic:
		return "classic"
	case SchemeHuman:
		return "human"
	}
	return fmt.Sprintf("scheme(%d)", int(s))
}

// Options configures a placement run. Zero values select the paper's
// defaults (§V-C).
type Options struct {
	Topology string  // "grid", "falcon", "eagle", "aspen11", "aspenm", "xtree"
	Scheme   Scheme  // placement strategy
	LB       float64 // resonator segment size l_b in mm (default 0.3)
	DeltaC   float64 // detuning threshold Δc in GHz (default 0.1)
	Seed     int64   // engine seed (default 1)

	// MaxIters overrides the global-placement iteration cap (0 = default).
	MaxIters int
	// SkipLegalize leaves the global placement unlegalized (ablations).
	SkipLegalize bool
}

// PlanResult is a placed-and-legalized layout plus its statistics.
type PlanResult struct {
	Options   Options
	Device    *topology.Device
	Netlist   *component.Netlist
	Collision *frequency.CollisionMap
	Region    geom.Rect
	Metrics   *metrics.Report

	PlaceIterations int
	PlaceRuntime    time.Duration
	AvgIterMS       float64
	NumCells        int
	Integrated      bool
}

// Plan runs the full placement pipeline for the options.
func Plan(opts Options) (*PlanResult, error) {
	if opts.Topology == "" {
		opts.Topology = "grid"
	}
	if opts.LB == 0 {
		opts.LB = 0.3
	}
	if opts.DeltaC == 0 {
		opts.DeltaC = physics.DetuneThresholdGHz
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	dev, err := topology.ByName(opts.Topology)
	if err != nil {
		return nil, err
	}

	assign := frequency.Assign(dev, opts.DeltaC)
	ccfg := component.DefaultConfig()
	ccfg.SegmentSize = opts.LB
	nl, err := component.Build(dev, assign.QubitFreq, assign.ResFreq, ccfg)
	if err != nil {
		return nil, err
	}
	cm := frequency.BuildCollisionMap(nl, opts.DeltaC)

	out := &PlanResult{
		Options:   opts,
		Device:    dev,
		Netlist:   nl,
		Collision: cm,
		NumCells:  nl.NumCells(),
	}

	switch opts.Scheme {
	case SchemeHuman:
		start := time.Now()
		hres := place.PlaceHuman(nl)
		out.Region = hres.Region
		out.PlaceRuntime = time.Since(start)
		out.PlaceIterations = 1
		out.Integrated = true
	case SchemeQplacer, SchemeClassic:
		pcfg := place.DefaultConfig()
		pcfg.Seed = opts.Seed
		if opts.MaxIters > 0 {
			pcfg.MaxIters = opts.MaxIters
		}
		if opts.Scheme == SchemeClassic {
			pcfg.Mode = place.ModeClassic
		}
		pres, err := place.Place(nl, cm, pcfg)
		if err != nil {
			return nil, err
		}
		out.Region = pres.Region
		out.PlaceIterations = pres.Iterations
		out.PlaceRuntime = pres.Runtime
		out.AvgIterMS = pres.AvgIterMS
		if !opts.SkipLegalize {
			lcfg := legal.DefaultConfig()
			// The Classic baseline gets the classical (frequency-oblivious)
			// legalizer, exactly as it would from its own engine.
			lcfg.FrequencyAware = opts.Scheme == SchemeQplacer
			lres, err := legal.Legalize(nl, pres.Region, opts.DeltaC, lcfg)
			if err != nil {
				return nil, err
			}
			out.Integrated = lres.IntegratedAll
		}
	default:
		return nil, fmt.Errorf("qplacer: unknown scheme %v", opts.Scheme)
	}

	out.Metrics = metrics.Measure(nl, opts.DeltaC)
	return out, nil
}

// EvalResult is the fidelity evaluation of one benchmark on one layout.
type EvalResult struct {
	Benchmark    string
	NumMappings  int
	MeanFidelity float64
	MinFidelity  float64
	MaxFidelity  float64
}

// Evaluate estimates program fidelity for a Table I benchmark over
// nMappings seeded subset mappings (the paper uses 50). The same seed —
// hence identical mappings — is used regardless of the placement scheme, as
// the methodology requires.
func Evaluate(plan *PlanResult, benchName string, nMappings int) (*EvalResult, error) {
	bench, err := circuit.ByName(benchName)
	if err != nil {
		return nil, err
	}
	if nMappings <= 0 {
		nMappings = 50
	}
	circ := bench.Build()
	maps, err := mapper.Sample(circ, plan.Device, nMappings, 12345)
	if err != nil {
		return nil, err
	}
	params := fidelity.DefaultParams()
	params.DeltaCGHz = plan.Options.DeltaC

	out := &EvalResult{Benchmark: benchName, NumMappings: nMappings}
	out.MinFidelity = 2
	for _, m := range maps {
		f := fidelity.Estimate(plan.Netlist, m, params).F
		out.MeanFidelity += f
		if f < out.MinFidelity {
			out.MinFidelity = f
		}
		if f > out.MaxFidelity {
			out.MaxFidelity = f
		}
	}
	out.MeanFidelity /= float64(nMappings)
	return out, nil
}

// Benchmarks lists the Table I benchmark names.
func Benchmarks() []string {
	var out []string
	for _, b := range circuit.TableI() {
		out = append(out, b.Name)
	}
	return out
}

// Topologies lists the Table I device names.
func Topologies() []string {
	return []string{"grid", "falcon", "eagle", "aspen11", "aspenm", "xtree"}
}

// WriteSVG renders the plan's layout as SVG.
func (p *PlanResult) WriteSVG(w io.Writer) error {
	return render.SVG(w, p.Netlist)
}

// WriteGDS renders the plan's layout as GDS-like text.
func (p *PlanResult) WriteGDS(w io.Writer) error {
	return render.GDSText(w, p.Netlist, p.Device.Name)
}
