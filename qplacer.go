// Package qplacer is the public API of the QPlacer reproduction: a
// frequency-aware, electrostatic-based placement framework for
// superconducting quantum processors (Zhang et al., ISCA 2025 /
// arXiv:2401.17450).
//
// The pipeline mirrors Fig. 7 of the paper:
//
//  1. pick a device topology and assign frequencies (frequency-domain
//     isolation over the available spectra),
//  2. pad qubits and partition resonators into wire blocks,
//  3. run the frequency-aware electrostatic global placement (or the
//     Classic baseline, or the Human manual layout),
//  4. legalize with the integration-aware legalizer,
//  5. evaluate: area metrics, frequency hotspots, and program fidelity on
//     the Table I NISQ benchmarks.
//
// The primary entry point is the Engine: a long-lived, concurrency-safe
// object that caches the immutable pipeline stages (devices, frequency
// assignments, netlist templates, collision maps, circuits, mappings) keyed
// by normalized options, threads context cancellation through the placement
// and legalization hot loops, and batch-evaluates benchmarks over a bounded
// worker pool:
//
//	eng := qplacer.New(qplacer.WithTopology("falcon"))
//	plan, err := eng.Plan(ctx)
//	...
//	batch, err := eng.EvaluateAll(ctx, plan, nil, 50)
//
// Custom device topologies and benchmark circuits register at runtime via
// RegisterTopology and RegisterBenchmark; the built-in Table I entries go
// through the same registries. Failures classify with errors.Is against the
// package sentinels (ErrUnknownTopology, ErrCancelled, ...).
//
// The stateless Plan and Evaluate free functions remain as thin
// backward-compatible wrappers over a fresh single-use Engine.
package qplacer

import (
	"qplacer/internal/circuit"
	"qplacer/internal/topology"
)

// Plan runs the full placement pipeline for the options on a fresh
// single-use engine.
//
// Deprecated-style note: new code should hold a long-lived Engine and call
// Engine.Plan, which caches stages across runs and honours cancellation.
func Plan(opts Options) (*PlanResult, error) {
	return New().PlanOptions(nil, opts)
}

// Evaluate estimates program fidelity for a registered benchmark over
// nMappings seeded subset mappings on a fresh single-use engine. New code
// should use Engine.Evaluate (or Engine.EvaluateAll for whole suites).
func Evaluate(plan *PlanResult, benchName string, nMappings int) (*EvalResult, error) {
	return New().Evaluate(nil, plan, benchName, nMappings)
}

// Benchmarks lists the paper's Table I benchmark names in evaluation order.
// RegisteredBenchmarks also includes runtime registrations.
func Benchmarks() []string {
	var out []string
	for _, b := range circuit.TableI() {
		out = append(out, b.Name)
	}
	return out
}

// Topologies lists the paper's Table I device names in evaluation order.
// RegisteredTopologies also includes runtime registrations.
func Topologies() []string {
	return topology.Builtin()
}
