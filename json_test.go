package qplacer

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

func TestSchemeJSONRoundTrip(t *testing.T) {
	for _, s := range []Scheme{SchemeQplacer, SchemeClassic, SchemeHuman} {
		data, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("marshal %v: %v", s, err)
		}
		want := `"` + s.String() + `"`
		if string(data) != want {
			t.Fatalf("marshal %v = %s, want %s", s, data, want)
		}
		var back Scheme
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", data, err)
		}
		if back != s {
			t.Fatalf("round-trip %v -> %v", s, back)
		}
		// The wire form always agrees with ParseScheme.
		parsed, err := ParseScheme(s.String())
		if err != nil || parsed != s {
			t.Fatalf("ParseScheme(%q) = %v, %v", s.String(), parsed, err)
		}
	}

	if _, err := json.Marshal(Scheme(99)); err == nil {
		t.Fatal("marshalling an invalid scheme must fail, not leak an int")
	}
	var s Scheme
	if err := json.Unmarshal([]byte(`"bogus"`), &s); !errors.Is(err, ErrUnknownScheme) {
		t.Fatalf("unmarshal bogus err = %v, want ErrUnknownScheme", err)
	}
	if err := json.Unmarshal([]byte(`1`), &s); !errors.Is(err, ErrUnknownScheme) {
		t.Fatalf("unmarshal raw int err = %v, want ErrUnknownScheme (string form only)", err)
	}
}

func TestOptionsJSONRoundTrip(t *testing.T) {
	in := Options{Topology: "falcon", Scheme: SchemeClassic, LB: 0.25, DeltaC: 0.08, Seed: 9, MaxIters: 40}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"scheme":"classic"`) {
		t.Fatalf("options JSON must carry the scheme name, got %s", data)
	}
	var back Options
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back != in {
		t.Fatalf("options round-trip: %+v -> %+v", in, back)
	}
}

func TestPlanResultAndDocumentJSON(t *testing.T) {
	ctx := context.Background()
	eng := New()
	plan, err := eng.Plan(ctx, fastOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := eng.Evaluate(ctx, plan, "bv-4", 3)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := eng.EvaluateAll(ctx, plan, []string{"bv-4", "ising-4"}, 3)
	if err != nil {
		t.Fatal(err)
	}

	data, err := json.Marshal(ResultDocument{Plan: plan, Evaluation: ev, Batch: batch})
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Plan struct {
			Options Options `json:"options"`
			Device  struct {
				Name      string `json:"name"`
				NumQubits int    `json:"num_qubits"`
			} `json:"device"`
			Metrics struct {
				Amer float64 `json:"amer_mm2"`
			} `json:"metrics"`
			Placement []struct {
				Kind    string  `json:"kind"`
				FreqGHz float64 `json:"freq_ghz"`
			} `json:"placement"`
			NumCells int `json:"num_cells"`
		} `json:"plan"`
		Evaluation *EvalResult  `json:"evaluation"`
		Batch      *BatchResult `json:"batch"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("document does not parse back: %v", err)
	}
	if doc.Plan.Device.Name != "grid" || doc.Plan.Device.NumQubits != plan.Device.NumQubits {
		t.Fatalf("device view wrong: %+v", doc.Plan.Device)
	}
	if doc.Plan.Options != plan.Options {
		t.Fatalf("options view %+v, want %+v", doc.Plan.Options, plan.Options)
	}
	if len(doc.Plan.Placement) != plan.NumCells || doc.Plan.NumCells != plan.NumCells {
		t.Fatalf("placement has %d entries, want %d", len(doc.Plan.Placement), plan.NumCells)
	}
	for _, in := range doc.Plan.Placement {
		if in.Kind != "qubit" && in.Kind != "segment" {
			t.Fatalf("instance kind %q not stringified", in.Kind)
		}
		if in.FreqGHz <= 0 {
			t.Fatalf("instance frequency missing: %+v", in)
		}
	}
	if doc.Plan.Metrics.Amer != plan.Metrics.Amer {
		t.Fatalf("metrics view Amer %v, want %v", doc.Plan.Metrics.Amer, plan.Metrics.Amer)
	}
	if doc.Evaluation == nil || doc.Evaluation.MeanFidelity != ev.MeanFidelity {
		t.Fatalf("evaluation round-trip: %+v vs %+v", doc.Evaluation, ev)
	}
	if doc.Batch == nil || len(doc.Batch.Results) != 2 ||
		doc.Batch.MeanFidelity != batch.MeanFidelity ||
		doc.Batch.Elapsed != batch.Elapsed {
		t.Fatalf("batch round-trip: %+v vs %+v", doc.Batch, batch)
	}
}

func TestOptionsNormalizedPublic(t *testing.T) {
	norm, err := Options{}.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	if norm.Topology != "grid" || norm.LB != 0.3 || norm.Seed != 1 {
		t.Fatalf("defaults not filled: %+v", norm)
	}
	if _, err := (Options{Scheme: Scheme(42)}).Normalized(); !errors.Is(err, ErrUnknownScheme) {
		t.Fatalf("err = %v, want ErrUnknownScheme", err)
	}
}

func TestAggregateEmptyIsErrNoBenchmarks(t *testing.T) {
	// The NaN/±Inf degenerate batch of the old code is now a typed error.
	if _, err := aggregate(nil); !errors.Is(err, ErrNoBenchmarks) {
		t.Fatalf("aggregate(nil) err = %v, want ErrNoBenchmarks", err)
	}
	if _, err := aggregate([]*EvalResult{}); !errors.Is(err, ErrNoBenchmarks) {
		t.Fatalf("aggregate(empty) err = %v, want ErrNoBenchmarks", err)
	}
}
