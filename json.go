package qplacer

import (
	"encoding/json"
	"fmt"

	"qplacer/internal/geom"
	"qplacer/internal/metrics"
)

// This file is the JSON face of the public API: the wire forms of Scheme,
// PlanResult, and the ResultDocument envelope that both `qplacer -json` and
// qplacerd's result endpoint emit, so CLI and service outputs are
// interchangeable byte-for-byte (modulo whitespace).

// MarshalJSON encodes the scheme as its string name ("qplacer", "classic",
// "human"), never the raw int. Values outside the three strategies are a
// marshalling error rather than a leaked integer.
func (s Scheme) MarshalJSON() ([]byte, error) {
	switch s {
	case SchemeQplacer, SchemeClassic, SchemeHuman:
		return json.Marshal(s.String())
	}
	return nil, fmt.Errorf("%w %v", ErrUnknownScheme, int(s))
}

// UnmarshalJSON decodes a scheme name via ParseScheme, so API payloads and
// configs round-trip through the string form.
func (s *Scheme) UnmarshalJSON(data []byte) error {
	var name string
	if err := json.Unmarshal(data, &name); err != nil {
		return fmt.Errorf("%w: scheme must be a string", ErrUnknownScheme)
	}
	parsed, err := ParseScheme(name)
	if err != nil {
		return err
	}
	*s = parsed
	return nil
}

// ResultDocument is the canonical JSON envelope for one completed pipeline
// run: the plan plus either a single-benchmark evaluation or a batch.
// `qplacer -json` prints it and `GET /v1/jobs/{id}/result` returns it.
type ResultDocument struct {
	Plan       *PlanResult  `json:"plan"`
	Evaluation *EvalResult  `json:"evaluation,omitempty"`
	Batch      *BatchResult `json:"batch,omitempty"`
	// Validation mirrors Plan.Validation at the top level so clients can
	// check a result's verdict without digging into the plan view.
	Validation *ValidationReport `json:"validation,omitempty"`
}

// pointJSON, rectJSON, deviceJSON, violationJSON, metricsJSON, and
// instanceJSON are the wire views of the internal layout types; they keep
// the JSON shape stable even if the internals gain fields.
type pointJSON struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

type rectJSON struct {
	Lo pointJSON `json:"lo"`
	Hi pointJSON `json:"hi"`
}

func toRectJSON(r geom.Rect) rectJSON {
	return rectJSON{
		Lo: pointJSON{X: r.Lo.X, Y: r.Lo.Y},
		Hi: pointJSON{X: r.Hi.X, Y: r.Hi.Y},
	}
}

type deviceJSON struct {
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`
	NumQubits   int    `json:"num_qubits"`
	NumEdges    int    `json:"num_edges"`
}

type violationJSON struct {
	A        int     `json:"a"`
	B        int     `json:"b"`
	Length   float64 `json:"length"`
	Distance float64 `json:"distance"`
}

type metricsJSON struct {
	Amer           float64         `json:"amer_mm2"`
	Apoly          float64         `json:"apoly_mm2"`
	Utilization    float64         `json:"utilization"`
	PhPercent      float64         `json:"ph_percent"`
	Violations     []violationJSON `json:"violations"`
	ImpactedQubits []int           `json:"impacted_qubits"`
}

func toMetricsJSON(m *metrics.Report) metricsJSON {
	out := metricsJSON{
		Amer:           m.Amer,
		Apoly:          m.Apoly,
		Utilization:    m.Utilization,
		PhPercent:      m.Ph,
		Violations:     []violationJSON{},
		ImpactedQubits: m.ImpactedQubits,
	}
	if out.ImpactedQubits == nil {
		out.ImpactedQubits = []int{}
	}
	for _, v := range m.Violations {
		out.Violations = append(out.Violations, violationJSON{
			A: v.A, B: v.B, Length: v.Length, Distance: v.Distance,
		})
	}
	return out
}

type instanceJSON struct {
	ID        int     `json:"id"`
	Kind      string  `json:"kind"`      // "qubit" | "segment"
	Qubit     int     `json:"qubit"`     // device qubit index, -1 for segments
	Resonator int     `json:"resonator"` // resonator index, -1 for qubits
	SegIndex  int     `json:"seg_index"` // chain position, -1 for qubits
	X         float64 `json:"x"`
	Y         float64 `json:"y"`
	W         float64 `json:"w"`
	H         float64 `json:"h"`
	FreqGHz   float64 `json:"freq_ghz"`
}

type planResultJSON struct {
	Options         Options        `json:"options"`
	Device          deviceJSON     `json:"device"`
	Region          rectJSON       `json:"region"`
	Metrics         *metricsJSON   `json:"metrics,omitempty"`
	Placement       []instanceJSON `json:"placement"`
	PlaceIterations int            `json:"place_iterations"`
	PlaceRuntimeMS  float64        `json:"place_runtime_ms"`
	AvgIterMS       float64        `json:"avg_iter_ms"`
	PlaceOverflow   float64        `json:"place_overflow"`
	NumCells        int            `json:"num_cells"`
	Integrated      bool           `json:"integrated"`
	// The detail fields are omitempty so runs on the default "none" stage
	// keep the exact pre-stage wire bytes.
	DetailMoved      int               `json:"detail_moved,omitempty"`
	DetailHPWLBefore float64           `json:"detail_hpwl_before_mm,omitempty"`
	DetailHPWLAfter  float64           `json:"detail_hpwl_after_mm,omitempty"`
	Validation       *ValidationReport `json:"validation,omitempty"`
	Timings          *SpanTiming       `json:"timings,omitempty"`
}

// MarshalJSON renders the full plan — options, device, placed instances,
// region, and metrics — without dragging the internal netlist/collision
// graph structures onto the wire. The plan is output-only: results are
// produced by the pipeline, not parsed back.
func (p *PlanResult) MarshalJSON() ([]byte, error) {
	out := planResultJSON{
		Options:          p.Options,
		Region:           toRectJSON(p.Region),
		Placement:        []instanceJSON{},
		PlaceIterations:  p.PlaceIterations,
		PlaceRuntimeMS:   float64(p.PlaceRuntime.Microseconds()) / 1e3,
		AvgIterMS:        p.AvgIterMS,
		PlaceOverflow:    p.PlaceOverflow,
		NumCells:         p.NumCells,
		Integrated:       p.Integrated,
		DetailMoved:      p.DetailMoved,
		DetailHPWLBefore: p.DetailHPWLBefore,
		DetailHPWLAfter:  p.DetailHPWLAfter,
		Validation:       p.Validation,
		Timings:          p.Timings,
	}
	if p.Device != nil {
		out.Device = deviceJSON{
			Name:        p.Device.Name,
			Description: p.Device.Description,
			NumQubits:   p.Device.NumQubits,
			NumEdges:    p.Device.NumEdges(),
		}
	}
	if p.Metrics != nil {
		m := toMetricsJSON(p.Metrics)
		out.Metrics = &m
	}
	if p.Netlist != nil {
		for _, in := range p.Netlist.Instances {
			out.Placement = append(out.Placement, instanceJSON{
				ID:        in.ID,
				Kind:      in.Kind.String(),
				Qubit:     in.Qubit,
				Resonator: in.Resonator,
				SegIndex:  in.SegIndex,
				X:         in.Pos.X,
				Y:         in.Pos.Y,
				W:         in.W,
				H:         in.H,
				FreqGHz:   in.FreqGHz,
			})
		}
	}
	return json.Marshal(out)
}
