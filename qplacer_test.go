package qplacer

import (
	"strings"
	"testing"
)

func TestPlanDefaults(t *testing.T) {
	plan, err := Plan(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Device.Name != "grid" {
		t.Fatalf("default topology = %s", plan.Device.Name)
	}
	if plan.Options.LB != 0.3 || plan.Options.DeltaC != 0.1 {
		t.Fatalf("defaults not applied: %+v", plan.Options)
	}
	if plan.NumCells < 400 {
		t.Fatalf("cells = %d, implausibly few", plan.NumCells)
	}
	if plan.Metrics.Amer <= 0 || plan.Metrics.Utilization <= 0 {
		t.Fatalf("degenerate metrics %+v", plan.Metrics)
	}
}

func TestPlanUnknownTopology(t *testing.T) {
	if _, err := Plan(Options{Topology: "bogus"}); err == nil {
		t.Fatal("unknown topology must error")
	}
}

// The paper's three headline claims, in miniature (grid topology):
// Qplacer beats Classic on hotspots and fidelity; Human is hotspot-free.
func TestHeadlineShape(t *testing.T) {
	pq, err := Plan(Options{Topology: "grid"})
	if err != nil {
		t.Fatal(err)
	}
	pc, err := Plan(Options{Topology: "grid", Scheme: SchemeClassic})
	if err != nil {
		t.Fatal(err)
	}
	ph, err := Plan(Options{Topology: "grid", Scheme: SchemeHuman})
	if err != nil {
		t.Fatal(err)
	}
	if pq.Metrics.Ph >= pc.Metrics.Ph {
		t.Errorf("Ph: qplacer %.3f must beat classic %.3f", pq.Metrics.Ph, pc.Metrics.Ph)
	}
	if ph.Metrics.Ph > 0.01 {
		t.Errorf("human layout Ph = %.3f, want ≈0", ph.Metrics.Ph)
	}
	eq, err := Evaluate(pq, "bv-4", 10)
	if err != nil {
		t.Fatal(err)
	}
	ec, err := Evaluate(pc, "bv-4", 10)
	if err != nil {
		t.Fatal(err)
	}
	if eq.MeanFidelity <= ec.MeanFidelity {
		t.Errorf("fidelity: qplacer %.4f must beat classic %.4f",
			eq.MeanFidelity, ec.MeanFidelity)
	}
}

func TestEvaluateUnknownBenchmark(t *testing.T) {
	plan, err := Plan(Options{Topology: "grid", SkipLegalize: true, MaxIters: 5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Evaluate(plan, "nope-3", 5); err == nil {
		t.Fatal("unknown benchmark must error")
	}
}

func TestBenchmarkAndTopologyLists(t *testing.T) {
	if len(Benchmarks()) != 8 {
		t.Fatalf("benchmarks = %v", Benchmarks())
	}
	if len(Topologies()) != 6 {
		t.Fatalf("topologies = %v", Topologies())
	}
}

func TestRenderOutputs(t *testing.T) {
	plan, err := Plan(Options{Topology: "grid", SkipLegalize: true, MaxIters: 5})
	if err != nil {
		t.Fatal(err)
	}
	var svg strings.Builder
	if err := plan.WriteSVG(&svg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(svg.String(), "<svg") || !strings.Contains(svg.String(), "</svg>") {
		t.Fatal("malformed SVG output")
	}
	var gds strings.Builder
	if err := plan.WriteGDS(&gds); err != nil {
		t.Fatal(err)
	}
	for _, token := range []string{"HEADER", "BOUNDARY", "ENDLIB"} {
		if !strings.Contains(gds.String(), token) {
			t.Fatalf("GDS output missing %s", token)
		}
	}
}

func TestSegmentSizeChangesCellCount(t *testing.T) {
	small, err := Plan(Options{Topology: "grid", LB: 0.2, SkipLegalize: true, MaxIters: 5})
	if err != nil {
		t.Fatal(err)
	}
	large, err := Plan(Options{Topology: "grid", LB: 0.4, SkipLegalize: true, MaxIters: 5})
	if err != nil {
		t.Fatal(err)
	}
	if small.NumCells <= large.NumCells {
		t.Fatalf("lb=0.2 cells %d must exceed lb=0.4 cells %d",
			small.NumCells, large.NumCells)
	}
	ratio := float64(small.NumCells) / float64(large.NumCells)
	if ratio < 2.5 || ratio > 4.5 {
		t.Fatalf("cell ratio %.2f outside Table II's ≈3.5×", ratio)
	}
}
