// Command qplacer-gen synthesizes benchmark suites from declarative specs
// (see docs/BENCHMARKS.md for the spec format). Generation is deterministic
// per spec+seed, so emitted suites are reproducible byte for byte and can
// join the golden corpus.
//
// Usage:
//
//	qplacer-gen -spec spec.json -out suite.json   # generate one suite
//	qplacer-gen -spec spec.json                   # ... to stdout
//	echo '{...}' | qplacer-gen -spec - -out s.json
//	qplacer-gen -spec spec.json -emit-golden -dir testdata/golden
//	qplacer-gen -check suite.json                 # validate an existing suite
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"

	"qplacer"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("qplacer-gen: ")
	var (
		specPath   = flag.String("spec", "", "spec JSON file ('-' reads stdin)")
		outPath    = flag.String("out", "", "suite output path (default stdout)")
		emitGolden = flag.Bool("emit-golden", false, "write the suite as <dir>/<name>.suite.json and print its path and spec hash")
		goldenDir  = flag.String("dir", "testdata/golden", "golden-corpus directory for -emit-golden")
		checkPath  = flag.String("check", "", "validate an existing suite file and exit")
	)
	flag.Parse()

	if *checkPath != "" {
		s := mustLoad(*checkPath)
		fmt.Printf("%s: valid (%s, %d qubits, %d couplings, %d collision pairs, spec %s)\n",
			*checkPath, s.Topology.Name, s.Topology.NumQubits,
			len(s.Topology.Edges), len(s.Collisions.Pairs), short(s.SpecHash))
		return
	}
	if *specPath == "" {
		log.Fatal("need -spec (or -check); see -h")
	}

	spec := readSpec(*specPath)
	suite, err := qplacer.GenerateBenchmark(spec)
	if err != nil {
		log.Fatal(err)
	}
	if err := suite.Validate(); err != nil {
		// Generation guarantees this; a failure here is a generator bug.
		log.Fatalf("generated suite failed validation: %v", err)
	}

	if *emitGolden {
		path := filepath.Join(*goldenDir, suite.Spec.Name+".suite.json")
		writeSuite(suite, path)
		fmt.Printf("wrote %s (spec %s)\n", path, short(suite.SpecHash))
		return
	}
	if *outPath == "" {
		if err := suite.WriteJSON(os.Stdout); err != nil {
			log.Fatal(err)
		}
		return
	}
	writeSuite(suite, *outPath)
	fmt.Printf("wrote %s (%s, %d qubits, spec %s)\n",
		*outPath, suite.Topology.Name, suite.Topology.NumQubits, short(suite.SpecHash))
}

func readSpec(path string) qplacer.SuiteSpec {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		r = f
	}
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var spec qplacer.SuiteSpec
	if err := dec.Decode(&spec); err != nil {
		log.Fatalf("spec %s: %v", path, err)
	}
	return spec
}

func mustLoad(path string) *qplacer.GeneratedSuite {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	s, err := qplacer.LoadSuite(f)
	if err != nil {
		log.Fatalf("%s: %v", path, err)
	}
	return s
}

func writeSuite(s *qplacer.GeneratedSuite, path string) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		log.Fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := s.WriteJSON(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
}

func short(hash string) string {
	if len(hash) > 12 {
		return hash[:12]
	}
	return hash
}
