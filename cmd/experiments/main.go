// Command experiments regenerates every table and figure of the paper's
// evaluation (see DESIGN.md §3 for the index). Results are printed and
// written as TSV under -out (default results/).
//
// Usage:
//
//	experiments -fig 11            # one figure
//	experiments -table 2           # one table
//	experiments -all               # everything (minutes)
//	experiments -quick             # reduced mappings / small topologies
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"strings"

	"qplacer"
	"qplacer/internal/emsim"
	"qplacer/internal/obs"
	"qplacer/internal/physics"
	"qplacer/internal/render"
)

var (
	outDir  = flag.String("out", "results", "output directory for TSV files")
	quick   = flag.Bool("quick", false, "reduced workload (fewer mappings, small topologies)")
	fig     = flag.Int("fig", 0, "regenerate one figure (1,4,5,6,11,12,13,14,15)")
	table   = flag.Int("table", 0, "regenerate one table (1,2)")
	all     = flag.Bool("all", false, "regenerate everything")
	devFlag = flag.String("topologies", "", "comma-free list override, e.g. 'grid falcon'")
	version = flag.Bool("version", false, "print build/version info and exit")
)

// eng is shared by every figure: its stage and plan caches mean each
// topology×scheme placement runs once no matter how many figures use it.
var eng = qplacer.New()

// ctx carries Ctrl-C cancellation into the placement hot loops.
var ctx = context.Background()

func topologies() []string {
	if *devFlag != "" {
		return strings.Fields(*devFlag)
	}
	if *quick {
		return []string{"grid", "falcon", "xtree"}
	}
	return qplacer.Topologies()
}

func mappings() int {
	if *quick {
		return 10
	}
	return 50
}

func writeTSV(name string, header []string, rows [][]string) {
	path := filepath.Join(*outDir, name)
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := render.Table(f, header, rows); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", path)
}

func plans(topo string) map[string]*qplacer.PlanResult {
	out := map[string]*qplacer.PlanResult{}
	for name, sch := range map[string]qplacer.Scheme{
		"qplacer": qplacer.SchemeQplacer,
		"classic": qplacer.SchemeClassic,
		"human":   qplacer.SchemeHuman,
	} {
		p, err := eng.Plan(ctx, qplacer.WithTopology(topo), qplacer.WithScheme(sch))
		if err != nil {
			log.Fatal(err)
		}
		out[name] = p
	}
	return out
}

// fig4: interaction strength vs ω2 sweep (two connected transmons).
func fig4() {
	var rows [][]string
	for f2 := 4.6; f2 <= 5.41; f2 += 0.02 {
		det := (f2 - 5.0) * 1e3
		gInt := physics.InteractionStrengthMHz(physics.EngineeredCouplingMHz, det)
		rows = append(rows, []string{
			fmt.Sprintf("%.2f", f2), fmt.Sprintf("%.4f", gInt),
		})
	}
	writeTSV("fig04_coupling_vs_detuning.tsv",
		[]string{"omega2_GHz", "g_interaction_MHz"}, rows)
}

// fig5: Cp, g, g_eff vs qubit separation, model + FD extractor.
func fig5() {
	cfg := emsim.Config{PadWidth: 0.4, PadDepth: 0.4, EpsSub: physics.EpsSilicon,
		DomainW: 6, DomainH: 3, Cell: 0.05, MaxIter: 8000, Tol: 1e-6}
	var rows [][]string
	for _, d := range []float64{0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 1.2, 1.6, 2.0} {
		cp := physics.ParasiticCapQubitFF(d)
		g := physics.QubitParasiticCouplingMHz(5.0, 5.0, d)
		gEff := physics.EffectiveCouplingMHz(g, 133) // one level spacing
		fd := ""
		if !*quick {
			r, err := emsim.ExtractCp(withSep(cfg, d))
			if err == nil {
				fd = fmt.Sprintf("%.4f", r.CapFF)
			}
		}
		rows = append(rows, []string{
			fmt.Sprintf("%.2f", d), fmt.Sprintf("%.5f", cp),
			fmt.Sprintf("%.4f", g), fmt.Sprintf("%.6f", gEff), fd,
		})
	}
	writeTSV("fig05_qubit_proximity.tsv",
		[]string{"d_mm", "Cp_fF_model", "g_MHz", "geff_MHz_det133", "Cp_fF_fd2d"}, rows)
}

func withSep(c emsim.Config, d float64) emsim.Config { c.Separation = d; return c }

// fig6: resonator coupling vs resonance and distance.
func fig6() {
	var rows [][]string
	for _, d := range []float64{0.05, 0.1, 0.2, 0.3, 0.5, 0.8, 1.2} {
		g := physics.ResonatorParasiticCouplingMHz(6.5, 6.5, d, 1.0)
		gDet := physics.ResonatorParasiticCouplingMHz(6.5, 6.643, d, 1.0)
		gEff := physics.InteractionStrengthMHz(gDet, 143)
		rows = append(rows, []string{
			fmt.Sprintf("%.2f", d), fmt.Sprintf("%.4f", g), fmt.Sprintf("%.6f", gEff),
		})
	}
	writeTSV("fig06_resonator_proximity.tsv",
		[]string{"d_mm", "g_resonant_MHz_per_mm_adj", "geff_detuned_MHz"}, rows)
}

// fig11and12: fidelity per benchmark × topology; hotspot summary.
func fig11and12() {
	var f11 [][]string
	var f12 [][]string
	for _, topo := range topologies() {
		ps := plans(topo)
		var meanQ, meanC, meanH float64
		n := 0
		for _, bench := range qplacer.Benchmarks() {
			row := []string{topo, bench}
			var fq, fc float64
			for _, scheme := range []string{"qplacer", "classic", "human"} {
				ev, err := eng.Evaluate(ctx, ps[scheme], bench, mappings())
				if err != nil {
					log.Fatal(err)
				}
				row = append(row, fmt.Sprintf("%.6f", ev.MeanFidelity))
				switch scheme {
				case "qplacer":
					fq = ev.MeanFidelity
					meanQ += ev.MeanFidelity
				case "classic":
					fc = ev.MeanFidelity
					meanC += ev.MeanFidelity
				case "human":
					meanH += ev.MeanFidelity
				}
			}
			n++
			fmt.Printf("fig11 %-8s %-8s qplacer=%.4f classic=%.4f\n", topo, bench, fq, fc)
			f11 = append(f11, row)
		}
		f12 = append(f12, []string{
			topo,
			fmt.Sprintf("%.6f", meanQ/float64(n)),
			fmt.Sprintf("%.6f", meanC/float64(n)),
			fmt.Sprintf("%.6f", meanH/float64(n)),
			fmt.Sprintf("%d", len(ps["qplacer"].Metrics.ImpactedQubits)),
			fmt.Sprintf("%d", len(ps["classic"].Metrics.ImpactedQubits)),
			fmt.Sprintf("%d", len(ps["human"].Metrics.ImpactedQubits)),
			fmt.Sprintf("%.3f", ps["qplacer"].Metrics.Ph),
			fmt.Sprintf("%.3f", ps["classic"].Metrics.Ph),
			fmt.Sprintf("%.3f", ps["human"].Metrics.Ph),
		})
	}
	writeTSV("fig11_fidelity.tsv",
		[]string{"topology", "benchmark", "qplacer", "classic", "human"}, f11)
	writeTSV("fig12_summary.tsv",
		[]string{"topology", "fid_qplacer", "fid_classic", "fid_human",
			"impacted_qplacer", "impacted_classic", "impacted_human",
			"Ph_qplacer", "Ph_classic", "Ph_human"}, f12)
}

// fig13: Amer ratios relative to Qplacer.
func fig13() {
	var rows [][]string
	for _, topo := range topologies() {
		ps := plans(topo)
		base := ps["qplacer"].Metrics.Amer
		rows = append(rows, []string{
			topo,
			fmt.Sprintf("%.2f", base),
			"1.00",
			fmt.Sprintf("%.3f", ps["classic"].Metrics.Amer/base),
			fmt.Sprintf("%.3f", ps["human"].Metrics.Amer/base),
		})
		fmt.Printf("fig13 %-8s qplacer=%.0fmm² classic=%.2fx human=%.2fx\n",
			topo, base, ps["classic"].Metrics.Amer/base, ps["human"].Metrics.Amer/base)
	}
	writeTSV("fig13_area_ratio.tsv",
		[]string{"topology", "Amer_qplacer_mm2", "ratio_qplacer", "ratio_classic", "ratio_human"}, rows)
}

// fig14: Falcon layout prototype rendered to SVG + GDS.
func fig14() {
	plan, err := eng.Plan(ctx, qplacer.WithTopology("falcon"))
	if err != nil {
		log.Fatal(err)
	}
	svg, err := os.Create(filepath.Join(*outDir, "fig14_falcon_layout.svg"))
	if err != nil {
		log.Fatal(err)
	}
	defer svg.Close()
	if err := plan.WriteSVG(svg); err != nil {
		log.Fatal(err)
	}
	gds, err := os.Create(filepath.Join(*outDir, "fig14_falcon_layout.gds.txt"))
	if err != nil {
		log.Fatal(err)
	}
	defer gds.Close()
	if err := plan.WriteGDS(gds); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fig14 falcon: Amer=%.1fmm² Ph=%.3f%% (SVG+GDS written)\n",
		plan.Metrics.Amer, plan.Metrics.Ph)
}

// fig15andTable2: l_b sweep — utilization, Ph, cells, runtime.
func fig15andTable2() {
	var f15 [][]string
	var t2 [][]string
	for _, topo := range topologies() {
		for _, lb := range []float64{0.2, 0.3, 0.4} {
			plan, err := eng.Plan(ctx, qplacer.WithTopology(topo), qplacer.WithLB(lb))
			if err != nil {
				log.Fatal(err)
			}
			f15 = append(f15, []string{
				topo, fmt.Sprintf("%.1f", lb),
				fmt.Sprintf("%.3f", plan.Metrics.Utilization),
				fmt.Sprintf("%.3f", plan.Metrics.Ph),
			})
			t2 = append(t2, []string{
				topo, fmt.Sprintf("%.1f", lb),
				fmt.Sprintf("%d", plan.NumCells),
				fmt.Sprintf("%.2f", plan.PlaceRuntime.Seconds()),
				fmt.Sprintf("%.1f", plan.AvgIterMS),
			})
			fmt.Printf("fig15 %-8s lb=%.1f cells=%4d util=%.3f Ph=%.3f rt=%.1fs\n",
				topo, lb, plan.NumCells, plan.Metrics.Utilization, plan.Metrics.Ph,
				plan.PlaceRuntime.Seconds())
		}
	}
	writeTSV("fig15_segment_sweep.tsv",
		[]string{"topology", "lb_mm", "utilization", "Ph_percent"}, f15)
	writeTSV("table2_runtime.tsv",
		[]string{"topology", "lb_mm", "cells", "runtime_s", "avg_iter_ms"}, t2)
}

// fig1: infidelity vs area scatter (mean over benchmarks).
func fig1() {
	var rows [][]string
	for _, topo := range topologies() {
		ps := plans(topo)
		for name, p := range ps {
			// The benchmark suite fans out over the engine's worker pool.
			batch, err := eng.EvaluateAll(ctx, p, qplacer.Benchmarks(), mappings())
			if err != nil {
				log.Fatal(err)
			}
			mean := batch.MeanFidelity
			rows = append(rows, []string{
				topo, name,
				fmt.Sprintf("%.2f", p.Metrics.Amer),
				fmt.Sprintf("%.6f", 1-mean),
			})
		}
	}
	writeTSV("fig01_infidelity_vs_area.tsv",
		[]string{"topology", "scheme", "Amer_mm2", "infidelity"}, rows)
}

// table1: the topology/benchmark inventory.
func table1() {
	var rows [][]string
	for _, topo := range qplacer.Topologies() {
		plan, err := eng.Plan(ctx, qplacer.WithTopology(topo),
			qplacer.WithSkipLegalize(true), qplacer.WithMaxIters(1))
		if err != nil {
			log.Fatal(err)
		}
		rows = append(rows, []string{
			topo,
			fmt.Sprintf("%d", plan.Device.NumQubits),
			fmt.Sprintf("%d", plan.Device.NumEdges()),
			plan.Device.Description,
		})
	}
	writeTSV("table1_topologies.tsv",
		[]string{"topology", "qubits", "couplings", "description"}, rows)
}

func main() {
	log.SetFlags(0)
	flag.Parse()
	if *version {
		fmt.Println("experiments " + obs.Build().String())
		return
	}
	var stop context.CancelFunc
	ctx, stop = signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		log.Fatal(err)
	}
	ran := false
	run := func(id int, fn func()) {
		if *all || *fig == id {
			fn()
			ran = true
		}
	}
	run(1, fig1)
	run(4, fig4)
	run(5, fig5)
	run(6, fig6)
	run(11, fig11and12)
	run(12, fig11and12)
	run(13, fig13)
	run(14, fig14)
	run(15, fig15andTable2)
	if *all || *table == 1 {
		table1()
		ran = true
	}
	if *all || *table == 2 {
		if *table == 2 { // fig15 shares the sweep
			fig15andTable2()
		}
		ran = true
	}
	if !ran {
		fmt.Println("nothing selected; use -all, -fig N or -table N")
	}
}
