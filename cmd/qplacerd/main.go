// Command qplacerd serves the placement pipeline over HTTP/JSON: submit
// placement jobs, poll their progress, fetch results, cancel runs, and list
// the registries. Identical requests share one job via the result cache, and
// every job shares the engine pool's stage cache.
//
// Usage:
//
//	qplacerd -addr :8080 -workers 2 -engines 1 -queue 64 -ttl 15m
//
//	curl -X POST localhost:8080/v1/plans -d '{"topology":"grid"}'
//	curl localhost:8080/v1/jobs/job-1
//	curl localhost:8080/v1/jobs/job-1/result
//
// SIGINT/SIGTERM drain gracefully: running jobs finish (up to -drain), then
// the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"qplacer"
	"qplacer/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("qplacerd: ")
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		workers = flag.Int("workers", 2, "jobs executed concurrently")
		engines = flag.Int("engines", 1, "shared engines in the pool")
		queue   = flag.Int("queue", 64, "pending-job queue depth")
		ttl     = flag.Duration("ttl", 15*time.Minute, "finished-job retention (result cache TTL)")
		drain   = flag.Duration("drain", 30*time.Second, "graceful-shutdown budget for in-flight jobs")
		placer  = flag.String("placer", "", "default placement backend for requests that leave it unset: "+
			strings.Join(qplacer.Placers(), "|"))
		legalize = flag.String("legalizer", "", "default legalization backend for requests that leave it unset: "+
			strings.Join(qplacer.Legalizers(), "|"))
		strict = flag.Bool("strict-validation", false,
			"fail jobs whose placement carries error-severity violations (422 invalid_placement)")
		parallelism = flag.Int("parallelism", 0,
			"worker pool inside each placement run (0 = GOMAXPROCS/workers); results are identical at any value")
	)
	flag.Parse()

	// Fail fast on a misconfigured backend default: without this check the
	// daemon would boot cleanly and then 400 every request that relies on it.
	if *placer != "" {
		if _, err := qplacer.PlacerByName(*placer); err != nil {
			log.Fatal(err)
		}
	}
	if *legalize != "" {
		if _, err := qplacer.LegalizerByName(*legalize); err != nil {
			log.Fatal(err)
		}
	}

	srv := server.New(server.Config{
		Workers:          *workers,
		EnginePool:       *engines,
		QueueDepth:       *queue,
		JobTTL:           *ttl,
		DefaultPlacer:    *placer,
		DefaultLegalizer: *legalize,
		StrictValidation: *strict,
		Parallelism:      *parallelism,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("listening on %s (workers=%d engines=%d queue=%d ttl=%v)",
		ln.Addr(), *workers, *engines, *queue, *ttl)

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		log.Fatal(err)
	case s := <-sig:
		log.Printf("%v: draining (budget %v)", s, *drain)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("shutdown: %v", err)
		os.Exit(1)
	}
	log.Print("drained")
}
