// Command qplacerd serves the placement pipeline over HTTP/JSON: submit
// placement jobs, list and poll them, stream live progress over SSE, fetch
// results, cancel runs, and list the registries. Identical requests share
// one job via the result cache, and every job shares the engine pool's
// stage cache.
//
// Usage:
//
//	qplacerd -addr :8080 -workers 2 -engines 1 -max-queue 64 -ttl 15m \
//	    [-data-dir /var/lib/qplacerd] [-quota N] [-lease 30s] [-retries 2] \
//	    [-log-level info] [-log-format text] [-debug-addr 127.0.0.1:6060]
//
// Structured logs (level/format set by -log-level and -log-format) go to
// stderr; -debug-addr exposes net/http/pprof on a separate listener, and
// -version prints build info and exits.
//
//	curl -X POST localhost:8080/v1/plans -d '{"topology":"grid"}'
//	curl localhost:8080/v1/jobs/job-1
//	curl -N localhost:8080/v1/jobs/job-1/events
//	curl localhost:8080/v1/jobs/job-1/result
//
// With -data-dir the job store is durable: jobs (and their results, within
// -ttl) survive a restart, and a daemon killed mid-job re-leases and
// re-runs that job on the next boot, bounded by -retries.
//
// SIGINT/SIGTERM drain gracefully: running jobs finish (up to -drain), then
// the process exits. If the drain budget expires first, in-flight work is
// cancelled and — with -data-dir — flushed back to the store as queued, so
// nothing is lost.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"qplacer"
	"qplacer/internal/obs"
	"qplacer/server"
	"qplacer/server/journal"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("qplacerd: ")
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		workers  = flag.Int("workers", 2, "jobs executed concurrently")
		engines  = flag.Int("engines", 1, "shared engines in the pool")
		maxQueue = flag.Int("max-queue", 64, "pending-job queue depth (submits beyond it get 429)")
		ttl      = flag.Duration("ttl", 15*time.Minute, "finished-job retention (result cache TTL)")
		drain    = flag.Duration("drain", 30*time.Second, "graceful-shutdown budget for in-flight jobs")
		dataDir  = flag.String("data-dir", "", "durable job store directory (empty = in-memory, lost on restart)")
		quota    = flag.Int("quota", 0, "max live jobs per client, keyed by X-Client-ID or remote host (0 = unlimited)")
		lease    = flag.Duration("lease", 30*time.Second, "job lease TTL; an attempt that stops heartbeating this long is re-queued")
		retries  = flag.Int("retries", 2, "re-queues per job after lost leases/crashes before it fails")
		placer   = flag.String("placer", "", "default placement backend for requests that leave it unset: "+
			strings.Join(qplacer.Placers(), "|"))
		legalize = flag.String("legalizer", "", "default legalization backend for requests that leave it unset: "+
			strings.Join(qplacer.Legalizers(), "|"))
		detailed = flag.String("detailed", "", "default detailed-placement backend for requests that leave it unset: "+
			strings.Join(qplacer.DetailedPlacers(), "|"))
		strict = flag.Bool("strict-validation", false,
			"fail jobs whose placement carries error-severity violations (422 invalid_placement)")
		parallelism = flag.Int("parallelism", 0,
			"worker pool inside each placement run (0 = GOMAXPROCS/workers); results are identical at any value")
		logLevel  = flag.String("log-level", "info", "structured-log level: debug|info|warn|error")
		logFormat = flag.String("log-format", "text", "structured-log format: text|json")
		debugAddr = flag.String("debug-addr", "", "serve net/http/pprof on this separate address (empty = disabled)")
		version   = flag.Bool("version", false, "print build/version info and exit")
	)
	// -queue predates -max-queue; keep it working for existing scripts.
	flag.IntVar(maxQueue, "queue", 64, "deprecated alias for -max-queue")
	flag.Parse()

	if *version {
		fmt.Println("qplacerd " + obs.Build().String())
		return
	}

	logger, err := obs.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		log.Fatal(err)
	}

	// Fail fast on a misconfigured backend default: without this check the
	// daemon would boot cleanly and then 400 every request that relies on it.
	if *placer != "" {
		if _, err := qplacer.PlacerByName(*placer); err != nil {
			log.Fatal(err)
		}
	}
	if *legalize != "" {
		if _, err := qplacer.LegalizerByName(*legalize); err != nil {
			log.Fatal(err)
		}
	}
	if *detailed != "" {
		if _, err := qplacer.DetailedPlacerByName(*detailed); err != nil {
			log.Fatal(err)
		}
	}

	var store server.Store
	if *dataDir != "" {
		js, err := journal.Open(*dataDir)
		if err != nil {
			log.Fatal(err)
		}
		store = js
	}

	srv := server.New(server.Config{
		Workers:               *workers,
		EnginePool:            *engines,
		QueueDepth:            *maxQueue,
		JobTTL:                *ttl,
		Store:                 store,
		LeaseTTL:              *lease,
		MaxRetries:            *retries,
		QuotaPerClient:        *quota,
		DefaultPlacer:         *placer,
		DefaultLegalizer:      *legalize,
		DefaultDetailedPlacer: *detailed,
		StrictValidation:      *strict,
		Parallelism:           *parallelism,
		Logger:                logger,
	})
	if *dataDir != "" {
		stats := srv.Manager().Stats()
		log.Printf("durable store %s: recovered %d queued job(s)", *dataDir, stats.Recovered)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("listening on %s (workers=%d engines=%d max-queue=%d ttl=%v)",
		ln.Addr(), *workers, *engines, *maxQueue, *ttl)

	// The pprof surface is opt-in and lives on its own listener so profiling
	// endpoints are never reachable through the service address.
	if *debugAddr != "" {
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("debug (pprof) listening on %s", dln.Addr())
		go func() {
			if err := http.Serve(dln, dmux); err != nil {
				logger.Warn("debug listener exited", "err", err)
			}
		}()
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		log.Fatal(err)
	case s := <-sig:
		log.Printf("%v: draining (budget %v)", s, *drain)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("shutdown: %v", err)
		os.Exit(1)
	}
	log.Print("drained")
}
