// Command qplacer places one device topology with one scheme and reports
// the layout metrics; optionally it renders the layout to SVG and GDS-like
// text and evaluates benchmarks' program fidelity. Ctrl-C cancels the
// placement mid-iteration.
//
// Usage:
//
//	qplacer -topology falcon -scheme qplacer -lb 0.3 -svg layout.svg \
//	        -gds layout.gds -bench bv-4 -mappings 50
//	qplacer -topology eagle -bench all        # whole suite, concurrent
//	qplacer -topology grid -bench all -json   # the service's ResultDocument
//	qplacer -topology grid -placer anneal -legalizer greedy
//	qplacer -topology grid -verify            # independently verify the layout
//	qplacer -topology grid-64                 # parametric family member
//	qplacer -suite suite.json -verify         # generated suite (see qplacer-gen)
//	qplacer -list-backends                    # registered placers/legalizers
//	qplacer -list-topologies                  # catalogue + parametric families
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"

	"qplacer"
	"qplacer/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("qplacer: ")
	var (
		topo     = flag.String("topology", "falcon", "device topology: "+strings.Join(qplacer.RegisteredTopologies(), "|"))
		scheme   = flag.String("scheme", "qplacer", "placement scheme: qplacer|classic|human")
		lb       = flag.Float64("lb", 0.3, "resonator segment size l_b (mm)")
		seed     = flag.Int64("seed", 1, "engine seed")
		svgPath  = flag.String("svg", "", "write layout SVG to this path")
		gdsPath  = flag.String("gds", "", "write GDS-like text to this path")
		bench    = flag.String("bench", "", "evaluate this benchmark (e.g. bv-4), or 'all' for the whole suite")
		mappings = flag.Int("mappings", 50, "number of subset mappings for -bench")
		workers  = flag.Int("workers", 0, "worker-pool size for -bench all (0 = GOMAXPROCS)")
		asJSON   = flag.Bool("json", false, "emit the run as the same JSON ResultDocument qplacerd serves")
		placer   = flag.String("placer", "", "placement backend: "+strings.Join(qplacer.Placers(), "|")+" (default "+qplacer.DefaultPlacerName+")")
		legalize = flag.String("legalizer", "", "legalization backend: "+strings.Join(qplacer.Legalizers(), "|")+" (default "+qplacer.DefaultLegalizerName+")")
		detailed = flag.String("detailed", "", "detailed-placement backend: "+strings.Join(qplacer.DetailedPlacers(), "|")+" (default "+qplacer.DefaultDetailedPlacerName+")")
		listBE   = flag.Bool("list-backends", false, "print registered placer/legalizer backends and exit")
		listTopo = flag.Bool("list-topologies", false, "print every resolvable topology and the parametric family schemas, then exit")
		suite    = flag.String("suite", "", "load a generated benchmark suite (see qplacer-gen) and register its topology and workloads")
		verify   = flag.Bool("verify", false, "independently verify the placement; exit non-zero when invalid")
		par      = flag.Int("parallelism", 0, "worker pool inside the placement run (0 = GOMAXPROCS, 1 = serial); results are identical at any value")
		version  = flag.Bool("version", false, "print build/version info and exit")
	)
	flag.Parse()

	if *version {
		fmt.Println("qplacer " + obs.Build().String())
		return
	}

	if *listBE {
		fmt.Printf("placers:    %s\n", strings.Join(qplacer.Placers(), " "))
		fmt.Printf("legalizers: %s\n", strings.Join(qplacer.Legalizers(), " "))
		fmt.Printf("detailed:   %s\n", strings.Join(qplacer.DetailedPlacers(), " "))
		return
	}

	if *listTopo {
		printTopologies()
		return
	}

	if *suite != "" {
		loaded := loadSuite(*suite)
		// The suite's topology becomes the default unless -topology was
		// given explicitly.
		explicit := false
		flag.Visit(func(f *flag.Flag) { explicit = explicit || f.Name == "topology" })
		if !explicit {
			*topo = loaded.Topology.Name
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	sch, err := qplacer.ParseScheme(*scheme)
	if err != nil {
		log.Fatal(err)
	}

	engOpts := []qplacer.Option{
		qplacer.WithTopology(*topo),
		qplacer.WithScheme(sch),
		qplacer.WithLB(*lb),
		qplacer.WithSeed(*seed),
		qplacer.WithWorkers(*workers),
		qplacer.WithParallelism(*par),
		qplacer.WithPlacer(*placer),
		qplacer.WithLegalizer(*legalize),
		qplacer.WithDetailedPlacer(*detailed),
	}
	if *verify {
		engOpts = append(engOpts, qplacer.WithValidation(qplacer.ValidationAnnotate))
	}
	eng := qplacer.New(engOpts...)
	plan, err := eng.Plan(ctx)
	if err != nil {
		log.Fatal(err)
	}
	doc := qplacer.ResultDocument{Plan: plan, Validation: plan.Validation}

	writeLayout := func(path string, render func(*os.File) error) {
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		if err := render(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		if !*asJSON {
			fmt.Printf("wrote %s\n", path)
		}
	}
	if *svgPath != "" {
		writeLayout(*svgPath, func(f *os.File) error { return plan.WriteSVG(f) })
	}
	if *gdsPath != "" {
		writeLayout(*gdsPath, func(f *os.File) error { return plan.WriteGDS(f) })
	}

	switch *bench {
	case "":
	case "all":
		batch, err := eng.EvaluateAll(ctx, plan, nil, *mappings)
		if err != nil {
			log.Fatal(err)
		}
		doc.Batch = batch
	default:
		ev, err := eng.Evaluate(ctx, plan, *bench, *mappings)
		if err != nil {
			log.Fatal(err)
		}
		doc.Evaluation = ev
	}

	// failIfInvalid makes -verify a meaningful exit status for scripts: the
	// report is printed (text or JSON) first, then the process fails.
	failIfInvalid := func() {
		if v := plan.Validation; *verify && v != nil && !v.Valid {
			log.Fatalf("placement failed verification: %d error violation(s), %d warning(s)",
				v.Errors, v.Warnings)
		}
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			log.Fatal(err)
		}
		failIfInvalid()
		return
	}

	m := plan.Metrics
	fmt.Printf("topology     %s (%d qubits, %d couplings)\n",
		plan.Device.Name, plan.Device.NumQubits, plan.Device.NumEdges())
	if sch == qplacer.SchemeHuman {
		// The manual baseline bypasses the placer/legalizer backends.
		fmt.Printf("scheme       %v\n", sch)
	} else {
		fmt.Printf("scheme       %v   placer %s   legalizer %s\n",
			sch, plan.Options.Placer, plan.Options.Legalizer)
	}
	fmt.Printf("cells        %d   iters %d   runtime %v\n",
		plan.NumCells, plan.PlaceIterations, plan.PlaceRuntime.Round(1e6))
	fmt.Printf("A_mer        %.1f mm²   A_poly %.1f mm²   utilization %.3f\n",
		m.Amer, m.Apoly, m.Utilization)
	fmt.Printf("P_h          %.3f %%   violations %d   impacted qubits %d\n",
		m.Ph, len(m.Violations), len(m.ImpactedQubits))
	if v := plan.Validation; v != nil {
		verdict := "valid"
		if !v.Valid {
			verdict = "INVALID"
		}
		fmt.Printf("verify       %s   errors %d   warnings %d   (%d instances, %d pairs)\n",
			verdict, v.Errors, v.Warnings, v.InstancesChecked, v.PairsChecked)
		for _, viol := range v.Violations {
			if viol.Severity == qplacer.SeverityError {
				fmt.Printf("  %-20s %s\n", viol.Code, viol.Detail)
			}
		}
	}
	if doc.Batch != nil {
		for _, ev := range doc.Batch.Results {
			fmt.Printf("fidelity     %-10s mean %.4f  min %.4f  max %.4f (%d mappings)\n",
				ev.Benchmark, ev.MeanFidelity, ev.MinFidelity, ev.MaxFidelity, ev.NumMappings)
		}
		fmt.Printf("suite        mean %.4f  min %.4f  max %.4f  (%d mappings in %v)\n",
			doc.Batch.MeanFidelity, doc.Batch.MinFidelity, doc.Batch.MaxFidelity,
			doc.Batch.TotalMappings, doc.Batch.Elapsed.Round(1e6))
	}
	if doc.Evaluation != nil {
		ev := doc.Evaluation
		fmt.Printf("fidelity     %s: mean %.4f  min %.4f  max %.4f (%d mappings)\n",
			ev.Benchmark, ev.MeanFidelity, ev.MinFidelity, ev.MaxFidelity, ev.NumMappings)
	}
	failIfInvalid()
}

// loadSuite reads, validates, and registers a generated benchmark suite.
func loadSuite(path string) *qplacer.GeneratedSuite {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	s, err := qplacer.LoadSuite(f)
	if err != nil {
		log.Fatalf("suite %s: %v", path, err)
	}
	if err := s.Register(); err != nil {
		log.Fatalf("suite %s: %v", path, err)
	}
	return s
}

// printTopologies renders the same catalogue GET /v1/topologies serves:
// every resolvable name with its qubit/coupling counts, then the parametric
// family schemas.
func printTopologies() {
	fmt.Printf("%-16s %7s %7s  %-12s %s\n", "NAME", "QUBITS", "EDGES", "CANONICAL", "DESCRIPTION")
	for _, in := range qplacer.TopologyCatalog() {
		fmt.Printf("%-16s %7d %7d  %-12s %s\n", in.Name, in.Qubits, in.Edges, in.Canonical, in.Description)
	}
	fmt.Println()
	fmt.Println("parametric families (resolve anywhere a topology name is accepted):")
	for _, f := range qplacer.TopologyFamilies() {
		fmt.Printf("  %-32s %s (e.g. %s)\n", f.Schema, f.Description, strings.Join(f.Examples, ", "))
	}
}
