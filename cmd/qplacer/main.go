// Command qplacer places one device topology with one scheme and reports
// the layout metrics; optionally it renders the layout to SVG and GDS-like
// text and evaluates a benchmark's program fidelity.
//
// Usage:
//
//	qplacer -topology falcon -scheme qplacer -lb 0.3 -svg layout.svg \
//	        -gds layout.gds -bench bv-4 -mappings 50
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"qplacer"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("qplacer: ")
	var (
		topo     = flag.String("topology", "falcon", "device topology: grid|falcon|eagle|aspen11|aspenm|xtree")
		scheme   = flag.String("scheme", "qplacer", "placement scheme: qplacer|classic|human")
		lb       = flag.Float64("lb", 0.3, "resonator segment size l_b (mm)")
		seed     = flag.Int64("seed", 1, "engine seed")
		svgPath  = flag.String("svg", "", "write layout SVG to this path")
		gdsPath  = flag.String("gds", "", "write GDS-like text to this path")
		bench    = flag.String("bench", "", "evaluate this Table I benchmark (e.g. bv-4)")
		mappings = flag.Int("mappings", 50, "number of subset mappings for -bench")
	)
	flag.Parse()

	var sch qplacer.Scheme
	switch *scheme {
	case "qplacer":
		sch = qplacer.SchemeQplacer
	case "classic":
		sch = qplacer.SchemeClassic
	case "human":
		sch = qplacer.SchemeHuman
	default:
		log.Fatalf("unknown scheme %q", *scheme)
	}

	plan, err := qplacer.Plan(qplacer.Options{
		Topology: *topo, Scheme: sch, LB: *lb, Seed: *seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	m := plan.Metrics
	fmt.Printf("topology     %s (%d qubits, %d couplings)\n",
		plan.Device.Name, plan.Device.NumQubits, plan.Device.NumEdges())
	fmt.Printf("scheme       %v   cells %d   iters %d   runtime %v\n",
		sch, plan.NumCells, plan.PlaceIterations, plan.PlaceRuntime.Round(1e6))
	fmt.Printf("A_mer        %.1f mm²   A_poly %.1f mm²   utilization %.3f\n",
		m.Amer, m.Apoly, m.Utilization)
	fmt.Printf("P_h          %.3f %%   violations %d   impacted qubits %d\n",
		m.Ph, len(m.Violations), len(m.ImpactedQubits))

	if *svgPath != "" {
		f, err := os.Create(*svgPath)
		if err != nil {
			log.Fatal(err)
		}
		if err := plan.WriteSVG(f); err != nil {
			log.Fatal(err)
		}
		f.Close()
		fmt.Printf("wrote %s\n", *svgPath)
	}
	if *gdsPath != "" {
		f, err := os.Create(*gdsPath)
		if err != nil {
			log.Fatal(err)
		}
		if err := plan.WriteGDS(f); err != nil {
			log.Fatal(err)
		}
		f.Close()
		fmt.Printf("wrote %s\n", *gdsPath)
	}
	if *bench != "" {
		ev, err := qplacer.Evaluate(plan, *bench, *mappings)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("fidelity     %s: mean %.4f  min %.4f  max %.4f (%d mappings)\n",
			ev.Benchmark, ev.MeanFidelity, ev.MinFidelity, ev.MaxFidelity, ev.NumMappings)
	}
}
