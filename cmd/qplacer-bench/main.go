// Command qplacer-bench measures the placement hot path across topologies,
// backends, and worker counts, and emits a machine-readable benchmark
// document — the repo's performance trajectory (BENCH_5.json and successors).
//
// For every (topology, placer, legalizer, detailed) group it runs the
// pipeline once
// per worker count on a fresh engine, records the warm per-iteration cost of
// global placement (ns/iter over a fixed iteration budget, best of -runs),
// and derives each entry's speedup against the group's serial (workers=1)
// entry. Because parallelism is bit-deterministic, the HPWL / overflow / P_h
// columns double as a quality-parity proof: they must match the serial run
// exactly, and the parity column records that they do.
//
// Usage:
//
//	qplacer-bench -topologies grid,falcon,eagle -workers 1,2,4 -out BENCH_5.json
//	qplacer-bench -quick -out bench.json     # CI smoke: grid only, small budget
//	qplacer-bench -check BENCH_5.json        # validate an existing document
//	qplacer-bench -suite gen.suite.json      # sweep a generated suite's topology
//	                                         # (its spec hash lands in host metadata)
//
// The -check mode parses a document and enforces the invariants CI relies
// on: every entry passed parity, and every group's best parallel speedup
// clears -min-speedup (a tolerance below 1.0 absorbs scheduler noise and
// single-core hosts, where parallelism cannot win wall-clock).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"qplacer"
	"qplacer/internal/obs"
	"qplacer/internal/place"
)

// Document is the benchmark file schema. Entries are ordered: groups in
// sweep order, workers ascending within a group, serial first.
type Document struct {
	Tool          string    `json:"tool"`
	SchemaVersion int       `json:"schema_version"`
	GeneratedAt   time.Time `json:"generated_at"`
	Host          Host      `json:"host"`
	Iterations    int       `json:"iterations"` // global-placement iteration budget per run
	Runs          int       `json:"runs"`       // measured runs per entry (best kept)

	// DegradedHost flags a document whose parallel entries were measured on
	// a single-CPU host: speedups there are meaningless and parity is the
	// only column worth reading.
	DegradedHost bool    `json:"degraded_host,omitempty"`
	Entries      []Entry `json:"entries"`
}

// Host pins the machine the numbers came from; speedups are only comparable
// within one host, and a single-CPU host cannot show real parallel wins.
type Host struct {
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	// Suites pins any generated suites swept via -suite: the spec hash makes
	// the exact benchmark reproducible with qplacer-gen.
	Suites []SuiteRef `json:"suites,omitempty"`
}

// SuiteRef identifies one generated suite by name and spec fingerprint.
type SuiteRef struct {
	Name     string `json:"name"`
	SpecHash string `json:"spec_hash"`
}

// Entry is one (topology, placer, legalizer, detailed, workers) measurement.
type Entry struct {
	Topology  string `json:"topology"`
	Placer    string `json:"placer"`
	Legalizer string `json:"legalizer"`
	// Detailed names the detailed-placement backend; empty in documents
	// predating the stage, which is equivalent to "none".
	Detailed string `json:"detailed,omitempty"`
	Workers  int    `json:"workers"`

	Iterations int     `json:"iterations"`
	NsPerIter  int64   `json:"ns_per_iter"` // best measured run
	PlaceMS    float64 `json:"place_ms"`    // global placement, best run
	TotalMS    float64 `json:"total_ms"`    // full Plan incl. legalization, best run

	HPWLmm    float64 `json:"hpwl_mm"`
	Overflow  float64 `json:"overflow"`
	PhPercent float64 `json:"ph_percent"`

	// DetailMoved / DetailHPWLmm record the detailed stage's work when one
	// ran: instances moved and the post-refinement HPWL (HPWLmm already
	// reflects it; the column makes the recovered wirelength auditable).
	DetailMoved  int     `json:"detail_moved,omitempty"`
	DetailHPWLmm float64 `json:"detail_hpwl_mm,omitempty"`

	// SpeedupVsSerial is serial ns/iter divided by this entry's ns/iter
	// (1.0 for the serial entry itself). ParityVsSerial records that HPWL,
	// overflow, and P_h matched the serial entry bit-for-bit.
	SpeedupVsSerial float64 `json:"speedup_vs_serial"`
	ParityVsSerial  bool    `json:"parity_vs_serial"`

	// Timings is the per-stage span breakdown from one extra traced run,
	// kept out of the measured runs so tracing cannot perturb ns_per_iter.
	Timings *qplacer.SpanTiming `json:"timings,omitempty"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("qplacer-bench: ")
	var (
		topologies = flag.String("topologies", "grid,falcon,eagle", "comma-separated topologies to sweep")
		placers    = flag.String("placers", "nesterov", "comma-separated placement backends")
		legalizers = flag.String("legalizers", "shelf", "comma-separated legalization backends")
		detaileds  = flag.String("detailed", "none", "comma-separated detailed-placement backends")
		workers    = flag.String("workers", "1,2,4", "comma-separated worker counts (1 is added if missing: it is the speedup baseline)")
		iters      = flag.Int("iters", 100, "global-placement iteration budget per run")
		runs       = flag.Int("runs", 2, "measured runs per entry; the best is kept")
		warmup     = flag.Int("warmup", 1, "unmeasured warm-up runs per entry")
		out        = flag.String("out", "", "write the JSON document here (default stdout)")
		quick      = flag.Bool("quick", false, "CI smoke preset: grid only, workers 1,2, -iters 30, -runs 1")
		check      = flag.String("check", "", "validate an existing document instead of benchmarking")
		minSpeedup = flag.Float64("min-speedup", 0.5, "-check: minimum best parallel speedup per group (0.5 tolerates single-core hosts; CI uses 0.7)")
		requireWin = flag.Bool("require-win", true, "-check: fail when no parallel entry in the whole document beats serial (speedup > 1), unless the document is flagged degraded_host")
		noDelta    = flag.Bool("no-delta", false, "disable incremental (delta) gradient evaluation for the measured runs")
		noAdaptive = flag.Bool("no-adaptive", false, "disable adaptive granularity: every parallel stage fans out regardless of problem size")
		noTimings  = flag.Bool("no-timings", false, "skip the extra traced run that records the per-stage span breakdown")
		suites     = flag.String("suite", "", "comma-separated generated-suite files (see qplacer-gen); their topologies join the sweep and their spec hashes are recorded")
		version    = flag.Bool("version", false, "print build/version info and exit")
	)
	flag.Parse()

	if *version {
		fmt.Println("qplacer-bench " + obs.Build().String())
		return
	}

	if *check != "" {
		if err := checkDocument(*check, *minSpeedup, *requireWin); err != nil {
			log.Fatal(err)
		}
		log.Printf("%s: OK", *check)
		return
	}

	if *quick {
		*topologies, *workers, *iters, *runs, *warmup = "grid", "1,2", 30, 1, 1
	}

	// Generated suites register their topologies, join the sweep, and pin
	// their spec hashes in the host-metadata block.
	var suiteRefs []SuiteRef
	for _, path := range splitList(*suites) {
		s, err := loadSuite(path)
		if err != nil {
			log.Fatal(err)
		}
		suiteRefs = append(suiteRefs, SuiteRef{Name: s.Topology.Name, SpecHash: s.SpecHash})
		*topologies += "," + s.Topology.Name
	}
	workerList, err := parseInts(*workers)
	if err != nil {
		log.Fatal(err)
	}
	if !contains(workerList, 1) {
		workerList = append(workerList, 1)
	}
	// Ascending order puts the workers=1 entry first in every group: it is
	// the speedup/parity baseline and must be measured before the entries
	// that compare against it.
	sort.Ints(workerList)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	doc := Document{
		Tool:          "qplacer-bench",
		SchemaVersion: 1,
		GeneratedAt:   time.Now().UTC(),
		Host: Host{
			NumCPU:     runtime.NumCPU(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			GoVersion:  runtime.Version(),
			GOOS:       runtime.GOOS,
			GOARCH:     runtime.GOARCH,
			Suites:     suiteRefs,
		},
		Iterations: *iters,
		Runs:       *runs,
	}
	if runtime.NumCPU() == 1 {
		for _, w := range workerList {
			if w > 1 {
				doc.DegradedHost = true
				log.Printf("WARNING: benching workers>1 on a single-CPU host: parallel speedups are meaningless here; the document is flagged degraded_host")
				break
			}
		}
	}
	if max := runtime.GOMAXPROCS(0); workerList[len(workerList)-1] > max {
		log.Printf("NOTE: worker counts above GOMAXPROCS=%d are clamped by the engine; those entries measure the clamped pool", max)
	}

	// Scheduling toggles for the measured runs. Both are exact — parity
	// still holds against any serial baseline — but the timing columns
	// reflect the toggled configuration.
	var extra []qplacer.Option
	if *noDelta {
		extra = append(extra, qplacer.WithDeltaEval(false))
	}
	if *noAdaptive {
		extra = append(extra, qplacer.WithAdaptiveGranularity(false))
	}

	for _, topo := range splitList(*topologies) {
		for _, placer := range splitList(*placers) {
			for _, legalizer := range splitList(*legalizers) {
				for _, detailed := range splitList(*detaileds) {
					var serial *Entry
					for _, w := range workerList {
						e, err := measure(ctx, topo, placer, legalizer, detailed, w, *iters, *runs, *warmup, !*noTimings, extra)
						if err != nil {
							log.Fatal(err)
						}
						if e.Workers == 1 { // sorted list: measured first
							s := e
							serial = &s
						}
						e.SpeedupVsSerial = float64(serial.NsPerIter) / float64(e.NsPerIter)
						e.ParityVsSerial = e.HPWLmm == serial.HPWLmm &&
							e.Overflow == serial.Overflow &&
							e.PhPercent == serial.PhPercent
						doc.Entries = append(doc.Entries, e)
						log.Printf("%-7s %s/%s/%s workers=%d  %8.2f ms/place  %7d ns/iter  speedup %.2fx  parity %v",
							topo, placer, legalizer, detailed, w, e.PlaceMS, e.NsPerIter, e.SpeedupVsSerial, e.ParityVsSerial)
					}
				}
			}
		}
	}

	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s (%d entries)", *out, len(doc.Entries))
}

// measure runs the pipeline warmup+runs times on fresh engines and keeps the
// fastest measurement. Placements are bit-deterministic, so the quality
// columns are identical across runs; only the clock varies. With timings set,
// one additional traced run captures the per-stage span breakdown after the
// measured runs, so tracing overhead never touches the timing columns.
func measure(ctx context.Context, topo, placer, legalizer, detailed string, workers, iters, runs, warmup int, timings bool, extra []qplacer.Option) (Entry, error) {
	e := Entry{
		Topology: topo, Placer: placer, Legalizer: legalizer,
		Detailed: detailed,
		Workers:  workers,
	}
	opts := qplacer.Options{
		Topology:       topo,
		MaxIters:       iters,
		Placer:         placer,
		Legalizer:      legalizer,
		DetailedPlacer: detailed,
	}
	engineOpts := append([]qplacer.Option{qplacer.WithParallelism(workers)}, extra...)
	for r := 0; r < warmup+runs; r++ {
		start := time.Now()
		// A fresh engine per run: the plan cache would otherwise hand the
		// second run back the first run's result without doing any work.
		plan, err := qplacer.New(engineOpts...).
			Plan(ctx, qplacer.WithOptions(opts))
		if err != nil {
			return e, fmt.Errorf("%s/%s/%s/%s workers=%d: %w", topo, placer, legalizer, detailed, workers, err)
		}
		if r < warmup {
			continue
		}
		totalMS := float64(time.Since(start).Microseconds()) / 1e3
		nsPerIter := plan.PlaceRuntime.Nanoseconds() / int64(plan.PlaceIterations)
		if e.NsPerIter == 0 || nsPerIter < e.NsPerIter {
			e.NsPerIter = nsPerIter
			e.PlaceMS = float64(plan.PlaceRuntime.Microseconds()) / 1e3
			e.TotalMS = totalMS
		}
		e.Iterations = plan.PlaceIterations
		e.HPWLmm = place.HPWL(plan.Netlist)
		e.Overflow = plan.PlaceOverflow
		e.PhPercent = plan.Metrics.Ph
		e.DetailMoved = plan.DetailMoved
		e.DetailHPWLmm = plan.DetailHPWLAfter
	}
	if timings {
		plan, err := qplacer.New(append(engineOpts, qplacer.WithTracing(true))...).
			Plan(ctx, qplacer.WithOptions(opts))
		if err != nil {
			return e, fmt.Errorf("%s/%s/%s/%s workers=%d traced run: %w", topo, placer, legalizer, detailed, workers, err)
		}
		e.Timings = plan.Timings
	}
	return e, nil
}

// checkDocument enforces the CI invariants on an existing document: it
// parses, every entry passed parity, each group's best parallel entry clears
// the speedup floor, and — with requireWin, unless the document is flagged
// degraded_host — at least one parallel entry actually beat serial. The last
// check is the parallel-slower-than-serial regression gate: a healthy
// multi-core run where every speedup is below 1.0 means parallelism is a
// net loss and must fail loudly instead of hiding behind the tolerance
// floor.
func checkDocument(path string, minSpeedup float64, requireWin bool) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var doc Document
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if len(doc.Entries) == 0 {
		return fmt.Errorf("%s: no benchmark entries", path)
	}
	type group struct{ topo, placer, legalizer, detailed string }
	best := map[group]float64{} // best workers>1 speedup per group
	seen := map[group]bool{}
	for _, e := range doc.Entries {
		if !e.ParityVsSerial {
			return fmt.Errorf("%s: %s/%s/%s/%s workers=%d failed quality parity vs serial",
				path, e.Topology, e.Placer, e.Legalizer, e.Detailed, e.Workers)
		}
		if e.NsPerIter <= 0 {
			return fmt.Errorf("%s: %s/%s/%s/%s workers=%d has non-positive ns_per_iter",
				path, e.Topology, e.Placer, e.Legalizer, e.Detailed, e.Workers)
		}
		g := group{e.Topology, e.Placer, e.Legalizer, e.Detailed}
		seen[g] = true
		if e.Workers > 1 && e.SpeedupVsSerial > best[g] {
			best[g] = e.SpeedupVsSerial
		}
	}
	if requireWin && !doc.DegradedHost {
		won := false
		for _, s := range best {
			if s > 1.0 {
				won = true
				break
			}
		}
		if !won {
			return fmt.Errorf("%s: no parallel entry beat serial (every speedup_vs_serial <= 1.0) and the document is not flagged degraded_host — the parallel path is a net loss on this host", path)
		}
	}
	for g := range seen {
		speedup, ok := best[g]
		if !ok {
			// A group without parallel entries proves nothing about the
			// parallel path; a document of such groups must not pass the
			// gate that exists to watch that path.
			return fmt.Errorf("%s: %s/%s/%s/%s has no workers>1 entries to check",
				path, g.topo, g.placer, g.legalizer, g.detailed)
		}
		if speedup < minSpeedup {
			return fmt.Errorf("%s: %s/%s/%s/%s best parallel speedup %.2fx below floor %.2fx",
				path, g.topo, g.placer, g.legalizer, g.detailed, speedup, minSpeedup)
		}
	}
	return nil
}

// loadSuite reads, validates, and registers one generated benchmark suite.
func loadSuite(path string) (*qplacer.GeneratedSuite, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	s, err := qplacer.LoadSuite(f)
	if err != nil {
		return nil, fmt.Errorf("suite %s: %w", path, err)
	}
	if err := s.Register(); err != nil {
		return nil, fmt.Errorf("suite %s: %w", path, err)
	}
	return s, nil
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range splitList(s) {
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad worker count %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

func contains(xs []int, want int) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}
