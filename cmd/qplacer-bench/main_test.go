package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeDoc marshals a Document into a temp file and returns its path.
func writeDoc(t *testing.T, doc Document) string {
	t.Helper()
	data, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func entry(topo string, workers int, speedup float64) Entry {
	return Entry{
		Topology: topo, Placer: "nesterov", Legalizer: "shelf",
		Workers: workers, NsPerIter: 1000, SpeedupVsSerial: speedup,
		ParityVsSerial: true,
	}
}

// TestCheckRequiresAParallelWin is the regression gate: a multi-core
// document where every parallel entry loses to serial must fail -check
// unless it is explicitly flagged degraded_host.
func TestCheckRequiresAParallelWin(t *testing.T) {
	losing := Document{
		Entries: []Entry{
			entry("grid", 1, 1.0),
			entry("grid", 2, 0.62),
			entry("grid", 4, 0.55),
		},
	}

	path := writeDoc(t, losing)
	err := checkDocument(path, 0.5, true)
	if err == nil {
		t.Fatal("all-losing document passed -check with require-win")
	}
	if !strings.Contains(err.Error(), "degraded_host") {
		t.Fatalf("error should point at the degraded_host escape hatch, got: %v", err)
	}

	// The explicit degraded_host flag is the only escape hatch.
	losing.DegradedHost = true
	if err := checkDocument(writeDoc(t, losing), 0.5, true); err != nil {
		t.Fatalf("degraded_host document should pass: %v", err)
	}

	// Without require-win the tolerance floor alone governs.
	losing.DegradedHost = false
	if err := checkDocument(writeDoc(t, losing), 0.5, false); err != nil {
		t.Fatalf("require-win=false should defer to the floor: %v", err)
	}
}

// TestCheckAcceptsAWinningDocument: one genuine win anywhere satisfies the
// gate.
func TestCheckAcceptsAWinningDocument(t *testing.T) {
	doc := Document{
		Entries: []Entry{
			entry("grid", 1, 1.0),
			entry("grid", 2, 0.9),
			entry("eagle", 1, 1.0),
			entry("eagle", 2, 1.7),
		},
	}
	if err := checkDocument(writeDoc(t, doc), 0.5, true); err != nil {
		t.Fatal(err)
	}
}

// TestCheckStillEnforcesParityAndFloor: require-win does not weaken the
// existing invariants.
func TestCheckStillEnforcesParityAndFloor(t *testing.T) {
	bad := Document{
		Entries: []Entry{
			entry("grid", 1, 1.0),
			entry("grid", 2, 1.4),
		},
	}
	bad.Entries[1].ParityVsSerial = false
	if err := checkDocument(writeDoc(t, bad), 0.5, true); err == nil {
		t.Fatal("parity failure passed -check")
	}

	slow := Document{
		Entries: []Entry{
			entry("grid", 1, 1.0),
			entry("grid", 2, 1.2),
			entry("eagle", 1, 1.0),
			entry("eagle", 2, 0.3),
		},
	}
	if err := checkDocument(writeDoc(t, slow), 0.5, true); err == nil {
		t.Fatal("below-floor group passed -check")
	}
}
