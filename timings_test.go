package qplacer

import (
	"context"
	"encoding/json"
	"testing"
)

// timingOptions is a fast traced run used across the timings tests: the
// golden corpus's small grid configuration.
func timingOptions() []Option {
	return []Option{
		WithTopology("grid"),
		WithMaxIters(40),
		WithValidation(ValidationAnnotate),
	}
}

func TestPlanTimingsBreakdown(t *testing.T) {
	eng := New()
	plan, err := eng.Plan(context.Background(), timingOptions()...)
	if err != nil {
		t.Fatal(err)
	}
	tm := plan.Timings
	if tm == nil {
		t.Fatal("traced plan has nil Timings")
	}
	if tm.Name != "plan" || tm.Count != 1 {
		t.Fatalf("root = %q count %d, want plan count 1", tm.Name, tm.Count)
	}
	if tm.WallMS <= 0 {
		t.Fatalf("root wall = %v, want > 0", tm.WallMS)
	}
	for _, path := range [][]string{
		{"stage"}, {"stage", "build"}, {"netlist.clone"},
		{"place"}, {"place", "wirelength"}, {"place", "density"},
		{"place", "density", "rasterize"},
		{"place", "density", "poisson"},
		{"place", "density", "poisson", "fft"},
		{"place", "density", "poisson", "spectral"},
		{"place", "density", "field"},
		{"place", "frequency"}, {"place", "chain"}, {"place", "boundary"},
		{"place", "combine"},
		{"legalize"}, {"legalize", "setup"}, {"legalize", "qubits"},
		{"legalize", "refine"}, {"legalize", "segments"},
		{"legalize", "integrate"}, {"legalize", "compact"},
		{"metrics"}, {"validate"},
	} {
		if tm.Find(path...) == nil {
			t.Errorf("span %v missing from breakdown", path)
		}
	}
	// The gradient sub-spans aggregate across iterations: the density solve
	// runs at least once per iteration.
	if den := tm.Find("place", "density"); den.Count < int64(plan.PlaceIterations) {
		t.Errorf("density count = %d, want >= %d iterations", den.Count, plan.PlaceIterations)
	}
}

// TestPlanTimingsCoverage pins the acceptance criterion: the top-level stage
// spans account for (at least) 90% of total plan wall time.
func TestPlanTimingsCoverage(t *testing.T) {
	eng := New()
	plan, err := eng.Plan(context.Background(), timingOptions()...)
	if err != nil {
		t.Fatal(err)
	}
	tm := plan.Timings
	var sum float64
	for _, c := range tm.Children {
		sum += c.WallMS
	}
	if sum < 0.9*tm.WallMS || sum > 1.1*tm.WallMS {
		t.Fatalf("stage spans sum to %.3fms of %.3fms total (outside 10%%)", sum, tm.WallMS)
	}
}

// collectTopology flattens a breakdown into (name, count) pairs in tree
// order, the deterministic signature two identical runs must share.
func collectTopology(tm *SpanTiming, prefix string, out *[]string) {
	*out = append(*out, prefix+tm.Name+"#"+string(rune('0'+tm.Count%10)))
	for _, c := range tm.Children {
		collectTopology(c, prefix+tm.Name+"/", out)
	}
}

func TestSpanTreeDeterminism(t *testing.T) {
	var sigs [2][]string
	for i := range sigs {
		eng := New()
		plan, err := eng.Plan(context.Background(), timingOptions()...)
		if err != nil {
			t.Fatal(err)
		}
		collectTopology(plan.Timings, "", &sigs[i])
	}
	if len(sigs[0]) != len(sigs[1]) {
		t.Fatalf("span tree sizes differ: %d vs %d", len(sigs[0]), len(sigs[1]))
	}
	for i := range sigs[0] {
		if sigs[0][i] != sigs[1][i] {
			t.Fatalf("span topology differs at %d: %q vs %q", i, sigs[0][i], sigs[1][i])
		}
	}
}

func TestWithTracingOff(t *testing.T) {
	eng := New(WithTracing(false))
	plan, err := eng.Plan(context.Background(), WithTopology("grid"), WithMaxIters(5))
	if err != nil {
		t.Fatal(err)
	}
	if plan.Timings != nil {
		t.Fatalf("untraced plan has Timings: %+v", plan.Timings)
	}
}

func TestWarmHitSharesColdTimings(t *testing.T) {
	eng := New()
	opts := []Option{WithTopology("grid"), WithMaxIters(5)}
	cold, err := eng.Plan(context.Background(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := eng.Plan(context.Background(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	if warm != cold {
		t.Fatal("second plan was not a cache hit")
	}
	if warm.Timings == nil {
		t.Fatal("warm hit lost the cold run's timings")
	}
	stats := eng.Stats()
	if stats.PlanCacheHits != 1 || stats.PlanCacheMisses != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss", stats)
	}
	if stats.StageCacheMisses != 1 {
		t.Fatalf("stage misses = %d, want 1", stats.StageCacheMisses)
	}
}

func TestTimingsJSONShape(t *testing.T) {
	eng := New()
	plan, err := eng.Plan(context.Background(), WithTopology("grid"), WithMaxIters(5))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(plan)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Timings *SpanTiming `json:"timings"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Timings == nil || doc.Timings.Name != "plan" {
		t.Fatalf("timings did not round-trip: %+v", doc.Timings)
	}

	// An untraced plan must omit the block entirely.
	eng2 := New(WithTracing(false))
	plan2, err := eng2.Plan(context.Background(), WithTopology("grid"), WithMaxIters(5))
	if err != nil {
		t.Fatal(err)
	}
	raw2, err := json.Marshal(plan2)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]json.RawMessage
	if err := json.Unmarshal(raw2, &m); err != nil {
		t.Fatal(err)
	}
	if _, ok := m["timings"]; ok {
		t.Fatal("untraced plan JSON carries a timings block")
	}
}

func TestSpanTimingFind(t *testing.T) {
	tm := &SpanTiming{Name: "plan", Children: []*SpanTiming{
		{Name: "place", Children: []*SpanTiming{{Name: "density"}}},
	}}
	if got := tm.Find(); got != tm {
		t.Fatal("Find() should return the receiver")
	}
	if got := tm.Find("place", "density"); got == nil || got.Name != "density" {
		t.Fatalf("Find(place, density) = %+v", got)
	}
	if got := tm.Find("nope"); got != nil {
		t.Fatalf("Find(nope) = %+v, want nil", got)
	}
	var nilT *SpanTiming
	if got := nilT.Find("x"); got != nil {
		t.Fatal("nil.Find should be nil")
	}
}
