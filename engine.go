package qplacer

import (
	"context"
	"fmt"
	"io"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"qplacer/internal/circuit"
	"qplacer/internal/component"
	"qplacer/internal/fidelity"
	"qplacer/internal/frequency"
	"qplacer/internal/geom"
	"qplacer/internal/mapper"
	"qplacer/internal/metrics"
	"qplacer/internal/obs"
	"qplacer/internal/place"
	"qplacer/internal/render"
	"qplacer/internal/topology"
)

// sampleSeed fixes the subset-mapping RNG so identical mappings are reused
// across placement schemes, as the paper's methodology requires (§VI-A).
const sampleSeed = 12345

// Engine is the reusable, context-aware entry point of the pipeline. It
// caches the immutable stages — generated devices, frequency assignments,
// built netlist templates, collision maps, benchmark circuits, and sampled
// mappings — keyed by normalized options, so repeated work on the same
// topology skips straight to placement, and repeated identical runs return
// the cached plan outright. An Engine is safe for concurrent use.
//
// Plans returned by a warm cache hit are shared: treat PlanResult (and its
// Netlist) as read-only, as every pipeline consumer already does.
type Engine struct {
	settings settings

	// Cache traffic counters, readable without the engine lock via Stats.
	planHits, planMisses   atomic.Uint64
	stageHits, stageMisses atomic.Uint64

	mu       sync.Mutex
	devices  map[string]*topology.Device
	stages   map[stageKey]*stageEntry
	circuits map[string]*circuit.Circuit
	mappings map[mappingKey][]*mapper.Mapping
	plans    map[Options]*PlanResult
}

// EngineStats is a point-in-time snapshot of the engine's cache traffic.
type EngineStats struct {
	PlanCacheHits    uint64 `json:"plan_cache_hits"`
	PlanCacheMisses  uint64 `json:"plan_cache_misses"`
	StageCacheHits   uint64 `json:"stage_cache_hits"`
	StageCacheMisses uint64 `json:"stage_cache_misses"`
}

// Stats reports the engine's cache hit/miss counters. Safe for concurrent
// use; services export it (qplacerd sums it across the engine pool into
// Prometheus counters).
func (e *Engine) Stats() EngineStats {
	return EngineStats{
		PlanCacheHits:    e.planHits.Load(),
		PlanCacheMisses:  e.planMisses.Load(),
		StageCacheHits:   e.stageHits.Load(),
		StageCacheMisses: e.stageMisses.Load(),
	}
}

// stageKey identifies the placement-independent pipeline prefix: the device,
// its frequency assignment, the padded netlist, and the collision map.
type stageKey struct {
	Topology string
	DeltaC   float64
	LB       float64
}

type stageEntry struct {
	device     *topology.Device
	assignment *frequency.Assignment
	netlist    *component.Netlist // template; cloned per placement run
	collision  *frequency.CollisionMap
}

type mappingKey struct {
	Bench    string
	Topology string
	N        int
}

// New constructs an Engine. Options set the engine-wide defaults that every
// Plan/Evaluate call starts from; per-call options override them.
func New(opts ...Option) *Engine {
	s := defaultSettings()
	for _, o := range opts {
		o(&s)
	}
	return &Engine{
		settings: s,
		devices:  map[string]*topology.Device{},
		stages:   map[stageKey]*stageEntry{},
		circuits: map[string]*circuit.Circuit{},
		mappings: map[mappingKey][]*mapper.Mapping{},
		plans:    map[Options]*PlanResult{},
	}
}

// PlanResult is a placed-and-legalized layout plus its statistics.
type PlanResult struct {
	Options   Options
	Device    *topology.Device
	Netlist   *component.Netlist
	Collision *frequency.CollisionMap
	Region    geom.Rect
	Metrics   *metrics.Report

	PlaceIterations int
	PlaceRuntime    time.Duration
	AvgIterMS       float64
	// PlaceOverflow is the placement backend's final density-overflow
	// fraction (see PlaceOutcome.Overflow); 0 for backends that do not
	// track one and for the Human baseline.
	PlaceOverflow float64
	NumCells      int
	Integrated    bool

	// DetailMoved and DetailHPWLBefore/After report the detailed-placement
	// stage (see DetailOutcome); all zero when the run used the default
	// "none" backend, which the engine skips outright.
	DetailMoved      int
	DetailHPWLBefore float64
	DetailHPWLAfter  float64

	// Validation is the independent verifier's report, set when the plan ran
	// under WithValidation (or by the caller via Validate); nil otherwise.
	Validation *ValidationReport

	// Timings is the per-stage timing breakdown recorded while the plan was
	// computed; nil when the computing run had tracing disabled. Warm cache
	// hits share the cold run's breakdown (a hit does no stage work of its
	// own to time).
	Timings *SpanTiming
}

// WriteSVG renders the plan's layout as SVG.
func (p *PlanResult) WriteSVG(w io.Writer) error {
	return render.SVG(w, p.Netlist)
}

// WriteGDS renders the plan's layout as GDS-like text.
func (p *PlanResult) WriteGDS(w io.Writer) error {
	return render.GDSText(w, p.Netlist, p.Device.Name)
}

// Plan runs the placement pipeline for the engine's options merged with the
// per-call overrides. Identical normalized options return the cached plan;
// cancellation of ctx surfaces as ErrCancelled within one placement
// iteration. Progress streams to the observer from WithObserver (per-call
// or engine-wide), if any.
func (e *Engine) Plan(ctx context.Context, opts ...Option) (*PlanResult, error) {
	s := e.settings
	for _, o := range opts {
		o(&s)
	}
	return e.planWith(ctx, s.opts, s.observer, s.validation, planKnobs{
		parallelism: s.parallelism,
		adaptive:    s.adaptive,
		deltaEval:   s.deltaEval,
	}, s.tracing)
}

// PlanOptions is Plan taking the options as a struct — the migration path
// from the legacy free function. It streams progress to the engine-wide
// observer, if one was configured at New, and verifies under the engine-wide
// validation mode.
func (e *Engine) PlanOptions(ctx context.Context, opts Options) (*PlanResult, error) {
	s := e.settings
	return e.planWith(ctx, opts, s.observer, s.validation, planKnobs{
		parallelism: s.parallelism,
		adaptive:    s.adaptive,
		deltaEval:   s.deltaEval,
	}, s.tracing)
}

// planKnobs bundles the scheduling-only settings threaded into one plan run.
// None of them may change results, which is why they travel beside Options
// rather than inside it.
type planKnobs struct {
	parallelism int
	adaptive    bool
	deltaEval   bool
}

func (e *Engine) planWith(ctx context.Context, opts Options, observer Observer, vmode ValidationMode, knobs planKnobs, traced bool) (*PlanResult, error) {
	start := time.Now()
	if ctx == nil {
		ctx = context.Background()
	}
	if observer == nil {
		observer = nopObserver{}
	}
	norm, err := opts.normalized()
	if err != nil {
		return nil, err
	}

	e.mu.Lock()
	if cached, ok := e.plans[norm]; ok {
		e.mu.Unlock()
		e.planHits.Add(1)
		return e.validated(cached, norm, vmode)
	}
	e.mu.Unlock()
	e.planMisses.Add(1)

	// The tracer is built only after the plan-cache lookup misses, so the
	// warm path stays allocation-free; StartAt backdates the root span to
	// cover normalization and the lookup itself.
	var root *obs.Span
	if traced {
		root = obs.NewSpan("plan")
	}
	rootTimer := root.StartAt(start)

	// Clamp the requested parallelism to the schedulable CPUs: a CPU-bound
	// hot path gains nothing from oversubscription, it only pays context
	// switches. The clamp is a scheduling decision, so it is annotated on
	// the trace rather than reported as an error.
	par := knobs.parallelism
	if max := runtime.GOMAXPROCS(0); par > max {
		root.Note(fmt.Sprintf("parallelism clamped from %d to %d (GOMAXPROCS)", par, max))
		par = max
	}

	st, err := e.stage(norm, root)
	if err != nil {
		return nil, err
	}
	cloneTimer := root.Child("netlist.clone").Start()
	nl := st.netlist.Clone()
	cloneTimer.End()

	out := &PlanResult{
		Options:   norm,
		Device:    st.device,
		Netlist:   nl,
		Collision: st.collision,
		NumCells:  nl.NumCells(),
	}

	switch norm.Scheme {
	case SchemeHuman:
		// The manual baseline is a deterministic construction, not an
		// optimization — it bypasses the placer/legalizer backends.
		placeTimer := root.ChildCPU("place").Start()
		start := time.Now()
		hres := place.PlaceHuman(nl)
		out.Region = hres.Region
		out.PlaceRuntime = time.Since(start)
		placeTimer.End()
		out.PlaceIterations = 1
		out.Integrated = true
	case SchemeQplacer, SchemeClassic:
		state := &StageState{
			Options:             norm,
			Device:              st.device,
			Netlist:             nl,
			Collision:           st.collision,
			Parallelism:         par,
			AdaptiveGranularity: knobs.adaptive,
			DeltaEval:           knobs.deltaEval,
		}
		placer, err := PlacerByName(norm.Placer)
		if err != nil {
			return nil, err
		}
		// Backends receive their stage span through the context (the public
		// StageState cannot expose internal/obs types); built-in backends
		// attach sub-spans under it, and external ones are still timed at
		// stage granularity by the wrapping timer.
		placeSpan := root.ChildCPU("place")
		placeTimer := placeSpan.Start()
		pres, err := placer.Place(obs.ContextWithSpan(ctx, placeSpan), state, observer)
		placeTimer.End()
		if err != nil {
			return nil, wrapCancel(err)
		}
		out.Region = pres.Region
		out.PlaceIterations = pres.Iterations
		out.PlaceRuntime = pres.Runtime
		out.AvgIterMS = pres.AvgIterMS
		out.PlaceOverflow = pres.Overflow
		if !norm.SkipLegalize {
			legalizer, err := LegalizerByName(norm.Legalizer)
			if err != nil {
				return nil, err
			}
			legalSpan := root.ChildCPU("legalize")
			legalTimer := legalSpan.Start()
			lres, err := legalizer.Legalize(obs.ContextWithSpan(ctx, legalSpan), state, pres.Region, observer)
			legalTimer.End()
			if err != nil {
				return nil, wrapCancel(err)
			}
			out.Integrated = lres.IntegratedAll

			// Detailed placement refines the legalized layout. The default
			// "none" backend is the identity, fast-pathed here so the
			// pre-existing pipeline — results, span tree, progress stream —
			// is reproduced without even a stage dispatch.
			if norm.DetailedPlacer != DefaultDetailedPlacerName {
				detailed, err := DetailedPlacerByName(norm.DetailedPlacer)
				if err != nil {
					return nil, err
				}
				detailSpan := root.ChildCPU("detail")
				detailTimer := detailSpan.Start()
				dres, err := detailed.Refine(obs.ContextWithSpan(ctx, detailSpan), state, pres.Region, observer)
				detailTimer.End()
				if err != nil {
					return nil, wrapCancel(err)
				}
				out.DetailMoved = dres.Moved
				out.DetailHPWLBefore = dres.HPWLBefore
				out.DetailHPWLAfter = dres.HPWLAfter
			}
		}
	}

	metricsTimer := root.ChildCPU("metrics").Start()
	out.Metrics = metrics.Measure(nl, norm.DeltaC)
	metricsTimer.End()

	if vmode != ValidationOff {
		validateTimer := root.ChildCPU("validate").Start()
		rep, err := Validate(out)
		validateTimer.End()
		if err != nil {
			return nil, err
		}
		out.Validation = rep
		if vmode == ValidationStrict && !rep.Valid {
			// Invalid plans never enter the cache: a later non-strict call
			// may still want the layout (annotated), and a strict retry must
			// re-verify rather than trust a poisoned entry.
			return nil, validationError(rep)
		}
	}

	rootTimer.End()
	out.Timings = spanTiming(root.Snapshot())

	e.mu.Lock()
	if prior, ok := e.plans[norm]; ok {
		e.mu.Unlock()
		// A concurrent identical run won the insert race; results agree, but
		// the winner may have run under a different validation mode, so the
		// caller's mode is applied to the shared entry like any warm hit.
		return e.validated(prior, norm, vmode)
	}
	e.plans[norm] = out
	e.mu.Unlock()
	return out, nil
}

// validated applies the validation mode to a plan served from the warm
// cache. Cached plans are shared and read-only, so a report computed for an
// unannotated entry goes onto a shallow copy, which then replaces the cache
// entry — later hits reuse the annotated copy instead of re-verifying.
func (e *Engine) validated(cached *PlanResult, norm Options, vmode ValidationMode) (*PlanResult, error) {
	if vmode == ValidationOff {
		return cached, nil
	}
	if cached.Validation == nil {
		rep, err := Validate(cached)
		if err != nil {
			return nil, err
		}
		annotated := *cached
		annotated.Validation = rep
		e.mu.Lock()
		if e.plans[norm] == cached {
			e.plans[norm] = &annotated
		}
		e.mu.Unlock()
		cached = &annotated
	}
	if vmode == ValidationStrict && !cached.Validation.Valid {
		return nil, validationError(cached.Validation)
	}
	return cached, nil
}

// stage returns the cached placement-independent prefix for the options,
// building and memoizing it on first use. The build runs outside the engine
// lock so cold-cache work on different keys proceeds in parallel; a lost
// race discards the duplicate, which is identical by construction.
func (e *Engine) stage(norm Options, root *obs.Span) (*stageEntry, error) {
	stageSpan := root.ChildCPU("stage")
	stageTimer := stageSpan.Start()
	defer stageTimer.End()
	key := stageKey{Topology: norm.Topology, DeltaC: norm.DeltaC, LB: norm.LB}
	e.mu.Lock()
	st, ok := e.stages[key]
	dev, haveDev := e.devices[norm.Topology]
	e.mu.Unlock()
	if ok {
		e.stageHits.Add(1)
		return st, nil
	}
	e.stageMisses.Add(1)
	buildTimer := stageSpan.Child("build").Start()
	defer buildTimer.End()
	if !haveDev {
		var err error
		dev, err = topology.ByName(norm.Topology)
		if err != nil {
			return nil, err
		}
	}
	assign := frequency.Assign(dev, norm.DeltaC)
	ccfg := component.DefaultConfig()
	ccfg.SegmentSize = norm.LB
	nl, err := component.Build(dev, assign.QubitFreq, assign.ResFreq, ccfg)
	if err != nil {
		return nil, err
	}
	st = &stageEntry{
		device:     dev,
		assignment: assign,
		netlist:    nl,
		collision:  frequency.BuildCollisionMap(nl, norm.DeltaC),
	}
	e.mu.Lock()
	if prior, ok := e.stages[key]; ok {
		st = prior
	} else {
		e.stages[key] = st
		if _, ok := e.devices[norm.Topology]; !ok {
			e.devices[norm.Topology] = dev
		}
	}
	e.mu.Unlock()
	return st, nil
}

// EvalResult is the fidelity evaluation of one benchmark on one layout.
type EvalResult struct {
	Benchmark    string  `json:"benchmark"`
	NumMappings  int     `json:"num_mappings"` // mappings actually evaluated
	MeanFidelity float64 `json:"mean_fidelity"`
	MinFidelity  float64 `json:"min_fidelity"`
	MaxFidelity  float64 `json:"max_fidelity"`
}

// Evaluate estimates program fidelity for a registered benchmark over
// nMappings seeded subset mappings (the paper uses 50; nMappings <= 0
// selects that default). The same seed — hence identical mappings — is used
// regardless of the placement scheme, as the methodology requires. Mappings
// are cached per (benchmark, topology, count), so evaluating several plans
// of one topology samples only once.
func (e *Engine) Evaluate(ctx context.Context, plan *PlanResult, benchName string, nMappings int) (*EvalResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if nMappings <= 0 {
		nMappings = DefaultMappings
	}
	circ, err := e.circuitFor(benchName)
	if err != nil {
		return nil, err
	}
	maps, err := e.mappingsFor(circ, plan.Device, nMappings)
	if err != nil {
		return nil, err
	}
	if len(maps) == 0 {
		return nil, fmt.Errorf("%w: benchmark %q on %s", ErrNoMappings, benchName, plan.Device.Name)
	}
	params := fidelity.DefaultParams()
	params.DeltaCGHz = plan.Options.DeltaC

	out := &EvalResult{
		Benchmark:   benchName,
		NumMappings: len(maps),
		MinFidelity: math.Inf(1),
		MaxFidelity: math.Inf(-1),
	}
	for _, m := range maps {
		if err := ctx.Err(); err != nil {
			return nil, wrapCancel(err)
		}
		f := fidelity.Estimate(plan.Netlist, m, params).F
		out.MeanFidelity += f
		out.MinFidelity = math.Min(out.MinFidelity, f)
		out.MaxFidelity = math.Max(out.MaxFidelity, f)
	}
	out.MeanFidelity /= float64(len(maps))
	return out, nil
}

// circuitFor builds (or returns the cached) benchmark circuit. Like stage,
// the build runs outside the lock so EvaluateAll workers warming different
// benchmarks do not serialize.
func (e *Engine) circuitFor(benchName string) (*circuit.Circuit, error) {
	e.mu.Lock()
	cached, ok := e.circuits[benchName]
	e.mu.Unlock()
	if ok {
		return cached, nil
	}
	bench, err := circuit.ByName(benchName)
	if err != nil {
		return nil, err
	}
	c := bench.Build()
	if err := c.Validate(); err != nil {
		return nil, err
	}
	e.mu.Lock()
	if prior, ok := e.circuits[benchName]; ok {
		c = prior
	} else {
		e.circuits[benchName] = c
	}
	e.mu.Unlock()
	return c, nil
}

// mappingsFor samples (or returns the cached) mapping set. Sampling runs
// outside the engine lock so concurrent evaluations of different benchmarks
// do not serialize; a lost race discards the duplicate, which is identical
// by seeded determinism.
func (e *Engine) mappingsFor(circ *circuit.Circuit, dev *topology.Device, n int) ([]*mapper.Mapping, error) {
	key := mappingKey{Bench: circ.Name, Topology: dev.Name, N: n}
	e.mu.Lock()
	cached, ok := e.mappings[key]
	e.mu.Unlock()
	if ok {
		return cached, nil
	}
	maps, err := mapper.Sample(circ, dev, n, sampleSeed)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	if prior, ok := e.mappings[key]; ok {
		maps = prior
	} else {
		e.mappings[key] = maps
	}
	e.mu.Unlock()
	return maps, nil
}
