package qplacer

import (
	"context"
	"fmt"
	"testing"
)

// TestBackendConformance is the conformance bar every pipeline backend must
// clear: each registered placer × legalizer pair — built-ins plus whatever
// this test binary registered before the suite ran — must produce a
// placement the independent verifier accepts (no error-severity violations)
// on the fast topologies. A custom backend that overlaps components, loses
// them off the die, or breaks the metrics contract fails here by name.
func TestBackendConformance(t *testing.T) {
	// Snapshot the registries once so every pair runs against the same set.
	placers, legalizers := Placers(), Legalizers()
	if len(placers) < 2 || len(legalizers) < 2 {
		t.Fatalf("registries too small: %v × %v", placers, legalizers)
	}
	for _, topo := range []string{"grid", "falcon"} {
		for _, placer := range placers {
			for _, legalizer := range legalizers {
				topo, placer, legalizer := topo, placer, legalizer
				t.Run(fmt.Sprintf("%s/%s+%s", topo, placer, legalizer), func(t *testing.T) {
					t.Parallel()
					eng := New()
					plan, err := eng.Plan(context.Background(),
						WithTopology(topo), WithPlacer(placer), WithLegalizer(legalizer),
						WithMaxIters(30))
					if err != nil {
						t.Fatalf("pipeline failed: %v", err)
					}
					rep, err := Validate(plan)
					if err != nil {
						t.Fatal(err)
					}
					if rep.Valid {
						return
					}
					for _, v := range rep.Violations {
						if v.Severity == SeverityError {
							t.Errorf("%s: %s", v.Code, v.Detail)
						}
					}
					t.Fatalf("%s+%s produced an invalid placement on %s: %d error violation(s)",
						placer, legalizer, topo, rep.Errors)
				})
			}
		}
	}
}
