package qplacer

import (
	"context"
	"fmt"
	"testing"

	"qplacer/internal/place"
)

// TestBackendConformance is the conformance bar every pipeline backend must
// clear: each registered placer × legalizer pair — built-ins plus whatever
// this test binary registered before the suite ran — must produce a
// placement the independent verifier accepts (no error-severity violations)
// on the fast topologies. A custom backend that overlaps components, loses
// them off the die, or breaks the metrics contract fails here by name.
func TestBackendConformance(t *testing.T) {
	// Snapshot the registries once so every pair runs against the same set.
	placers, legalizers := Placers(), Legalizers()
	if len(placers) < 2 || len(legalizers) < 2 {
		t.Fatalf("registries too small: %v × %v", placers, legalizers)
	}
	for _, topo := range []string{"grid", "falcon"} {
		for _, placer := range placers {
			for _, legalizer := range legalizers {
				topo, placer, legalizer := topo, placer, legalizer
				t.Run(fmt.Sprintf("%s/%s+%s", topo, placer, legalizer), func(t *testing.T) {
					t.Parallel()
					eng := New()
					plan, err := eng.Plan(context.Background(),
						WithTopology(topo), WithPlacer(placer), WithLegalizer(legalizer),
						WithMaxIters(30))
					if err != nil {
						t.Fatalf("pipeline failed: %v", err)
					}
					rep, err := Validate(plan)
					if err != nil {
						t.Fatal(err)
					}
					if rep.Valid {
						return
					}
					for _, v := range rep.Violations {
						if v.Severity == SeverityError {
							t.Errorf("%s: %s", v.Code, v.Detail)
						}
					}
					t.Fatalf("%s+%s produced an invalid placement on %s: %d error violation(s)",
						placer, legalizer, topo, rep.Errors)
				})
			}
		}
	}
}

// TestDetailedConformance extends the bar to the full triple: for every
// registered placer × legalizer pair and every refining detailed placer, the
// three-stage pipeline must (a) stay verifier-clean — refinement may not
// introduce a single error-severity violation the two-stage run did not have
// — and (b) never increase HPWL over the legalized layout it started from.
// Both legs compare against a baseline run of the same options with the
// identity stage, which is bit-deterministic, so the legalized HPWL the
// refiner entered at is known exactly.
func TestDetailedConformance(t *testing.T) {
	placers, legalizers, detaileds := Placers(), Legalizers(), DetailedPlacers()
	if len(detaileds) < 3 {
		t.Fatalf("detailed registry too small: %v", detaileds)
	}
	for _, topo := range []string{"grid", "falcon"} {
		for _, placer := range placers {
			for _, legalizer := range legalizers {
				topo, placer, legalizer := topo, placer, legalizer
				t.Run(fmt.Sprintf("%s/%s+%s", topo, placer, legalizer), func(t *testing.T) {
					t.Parallel()
					ctx := context.Background()
					base, err := New().Plan(ctx,
						WithTopology(topo), WithPlacer(placer), WithLegalizer(legalizer),
						WithDetailedPlacer(DefaultDetailedPlacerName), WithMaxIters(30))
					if err != nil {
						t.Fatalf("baseline pipeline failed: %v", err)
					}
					baseHPWL := place.HPWL(base.Netlist)
					baseRep, err := Validate(base)
					if err != nil {
						t.Fatal(err)
					}
					for _, detailed := range detaileds {
						if detailed == DefaultDetailedPlacerName {
							continue
						}
						detailed := detailed
						t.Run(detailed, func(t *testing.T) {
							plan, err := New().Plan(ctx,
								WithTopology(topo), WithPlacer(placer), WithLegalizer(legalizer),
								WithDetailedPlacer(detailed), WithMaxIters(30))
							if err != nil {
								t.Fatalf("pipeline failed: %v", err)
							}
							got := place.HPWL(plan.Netlist)
							if got > baseHPWL {
								t.Errorf("HPWL increased: %.9g after %s, %.9g legalized", got, detailed, baseHPWL)
							}
							if plan.DetailHPWLBefore != baseHPWL {
								t.Errorf("detail stage entered at HPWL %.9g, want the legalized %.9g",
									plan.DetailHPWLBefore, baseHPWL)
							}
							if plan.DetailHPWLAfter != got {
								t.Errorf("DetailHPWLAfter = %.9g, want the layout's %.9g", plan.DetailHPWLAfter, got)
							}
							rep, err := Validate(plan)
							if err != nil {
								t.Fatal(err)
							}
							if rep.Errors > baseRep.Errors {
								for _, v := range rep.Violations {
									if v.Severity == SeverityError {
										t.Errorf("%s: %s", v.Code, v.Detail)
									}
								}
								t.Fatalf("%s introduced error violations: %d, baseline had %d",
									detailed, rep.Errors, baseRep.Errors)
							}
						})
					}
				})
			}
		}
	}
}
