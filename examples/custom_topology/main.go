// Custom topology and benchmark: the runtime registries open scenarios
// beyond the paper's six devices and eight workloads. This example registers
// a 9-qubit ring processor and a tiny GHZ-style circuit, then runs them
// through the standard engine pipeline.
package main

import (
	"context"
	"fmt"
	"log"

	"qplacer"
)

func main() {
	// A 9-qubit ring: each qubit couples to its two neighbours.
	ring := qplacer.TopologySpec{
		Name:        "ring9",
		Description: "9-qubit ring processor",
		NumQubits:   9,
		Edges: [][2]int{
			{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}, {6, 7}, {7, 8}, {8, 0},
		},
		Coords: [][2]float64{
			{2, 0}, {1.53, 1.29}, {0.35, 1.97}, {-1, 1.73}, {-1.88, 0.68},
			{-1.88, -0.68}, {-1, -1.73}, {0.35, -1.97}, {1.53, -1.29},
		},
	}
	if err := qplacer.RegisterTopology(ring); err != nil {
		log.Fatal(err)
	}

	// A 4-qubit GHZ-style benchmark over the transmon gate set.
	ghz := qplacer.BenchmarkSpec{
		Name:      "ghz-4",
		NumQubits: 4,
		Gates: []qplacer.GateSpec{
			{Name: "h", Qubits: []int{0}},
			{Name: "cz", Qubits: []int{0, 1}},
			{Name: "h", Qubits: []int{1}},
			{Name: "cz", Qubits: []int{1, 2}},
			{Name: "h", Qubits: []int{2}},
			{Name: "cz", Qubits: []int{2, 3}},
			{Name: "h", Qubits: []int{3}},
		},
	}
	if err := qplacer.RegisterBenchmark(ghz); err != nil {
		log.Fatal(err)
	}

	ctx := context.Background()
	eng := qplacer.New(qplacer.WithTopology("ring9"))
	plan, err := eng.Plan(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ring9: %d cells, A_mer %.1f mm², P_h %.3f%%\n",
		plan.NumCells, plan.Metrics.Amer, plan.Metrics.Ph)

	ev, err := eng.Evaluate(ctx, plan, "ghz-4", 20)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ghz-4 on ring9: mean fidelity %.4f over %d mappings\n",
		ev.MeanFidelity, ev.NumMappings)
	fmt.Printf("registered topologies: %v\n", qplacer.RegisteredTopologies())
}
