// Crosstalk physics study (the Fig. 4/5/6 curves): sweep coupling strength
// against detuning and distance using the physics models and, optionally,
// the finite-difference capacitance extractor. The final section closes the
// loop with the placement engine: the separations a placed layout actually
// achieves between near-resonant components, read against these curves.
package main

import (
	"context"
	"fmt"
	"log"

	"qplacer"
	"qplacer/internal/component"
	"qplacer/internal/emsim"
	"qplacer/internal/metrics"
	"qplacer/internal/physics"
)

func main() {
	fmt.Println("— Fig. 4: interaction strength vs ω2 (ω1 = 5.0 GHz, g = 25 MHz)")
	for _, f2 := range []float64{4.7, 4.85, 4.95, 5.0, 5.05, 5.15, 5.3} {
		det := (f2 - 5.0) * 1e3
		fmt.Printf("  ω2=%.2f GHz  g_int=%7.3f MHz\n", f2,
			physics.InteractionStrengthMHz(physics.EngineeredCouplingMHz, det))
	}

	fmt.Println("— Fig. 5: parasitic coupling vs qubit separation")
	for _, d := range []float64{0.1, 0.2, 0.4, 0.8, 1.6} {
		cp := physics.ParasiticCapQubitFF(d)
		g := physics.QubitParasiticCouplingMHz(5.0, 5.0, d)
		fmt.Printf("  d=%.1f mm  Cp=%.4f fF  g=%.4f MHz  g_eff(Δ=133MHz)=%.6f MHz\n",
			d, cp, g, physics.EffectiveCouplingMHz(g, 133))
	}

	fmt.Println("— Fig. 5b cross-check: finite-difference extraction (2-D)")
	cfg := emsim.Config{PadWidth: 0.4, PadDepth: 0.4, EpsSub: physics.EpsSilicon,
		DomainW: 6, DomainH: 3, Cell: 0.05, MaxIter: 8000, Tol: 1e-6}
	seps := []float64{0.1, 0.3, 0.6, 1.0}
	caps, err := emsim.SweepSeparation(cfg, seps)
	if err == nil {
		for i, d := range seps {
			fmt.Printf("  d=%.1f mm  Cp_fd=%.3f fF\n", d, caps[i])
		}
		if c0, decay, err := emsim.FitExponential(seps, caps); err == nil {
			fmt.Printf("  fit: Cp ≈ %.2f·exp(−d/%.2f) fF\n", c0, decay)
		}
	}

	fmt.Println("— Fig. 6: resonator coupling vs distance (1 mm adjacency)")
	for _, d := range []float64{0.05, 0.1, 0.3, 0.6} {
		fmt.Printf("  d=%.2f mm  g=%.4f MHz\n", d,
			physics.ResonatorParasiticCouplingMHz(6.5, 6.5, d, 1.0))
	}

	fmt.Println("— §III-C: substrate box mode vs size")
	for _, a := range []float64{5, 8, 10, 14} {
		fmt.Printf("  %2.0f×%2.0f mm²  TM110 = %.2f GHz\n", a, a,
			physics.TM110GHz(a, a, physics.EpsSilicon))
	}

	fmt.Println("— placed layouts: minimum near-resonant separation achieved")
	eng := qplacer.New(qplacer.WithTopology("grid"))
	for _, sch := range []qplacer.Scheme{qplacer.SchemeQplacer, qplacer.SchemeClassic} {
		plan, err := eng.Plan(context.Background(), qplacer.WithScheme(sch))
		if err != nil {
			log.Fatal(err)
		}
		dq := metrics.MinResonantDistance(plan.Netlist, component.KindQubit, plan.Options.DeltaC)
		fmt.Printf("  %-8v min resonant qubit distance %.2f mm  →  g=%.4f MHz\n",
			sch, dq, physics.QubitParasiticCouplingMHz(5.0, 5.0, dq))
	}
}
