// Quickstart: build a reusable engine, place the 5×5 grid device with the
// frequency-aware scheme, and evaluate the whole Table I benchmark suite
// concurrently.
package main

import (
	"context"
	"fmt"
	"log"

	"qplacer"
)

func main() {
	ctx := context.Background()
	eng := qplacer.New(qplacer.WithTopology("grid"))

	plan, err := eng.Plan(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("placed %d cells on %s in %v (%d iterations)\n",
		plan.NumCells, plan.Device.Name, plan.PlaceRuntime.Round(1e6), plan.PlaceIterations)
	fmt.Printf("area %.1f mm², utilization %.2f, hotspot proportion %.3f%%\n",
		plan.Metrics.Amer, plan.Metrics.Utilization, plan.Metrics.Ph)

	// One benchmark...
	ev, err := eng.Evaluate(ctx, plan, "bv-4", 20)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bv-4 mean fidelity over %d mappings: %.4f\n", ev.NumMappings, ev.MeanFidelity)

	// ...or the whole suite, fanned out over a bounded worker pool.
	batch, err := eng.EvaluateAll(ctx, plan, nil, 20)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("suite mean fidelity %.4f over %d benchmarks (%d mappings, %v)\n",
		batch.MeanFidelity, len(batch.Results), batch.TotalMappings,
		batch.Elapsed.Round(1e6))
}
