// Quickstart: place the 5×5 grid device with the frequency-aware engine and
// print the headline metrics plus one benchmark fidelity.
package main

import (
	"fmt"
	"log"

	"qplacer"
)

func main() {
	plan, err := qplacer.Plan(qplacer.Options{Topology: "grid"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("placed %d cells on %s in %v (%d iterations)\n",
		plan.NumCells, plan.Device.Name, plan.PlaceRuntime.Round(1e6), plan.PlaceIterations)
	fmt.Printf("area %.1f mm², utilization %.2f, hotspot proportion %.3f%%\n",
		plan.Metrics.Amer, plan.Metrics.Utilization, plan.Metrics.Ph)

	ev, err := qplacer.Evaluate(plan, "bv-4", 20)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bv-4 mean fidelity over %d mappings: %.4f\n", ev.NumMappings, ev.MeanFidelity)
}
