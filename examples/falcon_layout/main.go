// Falcon layout (the Fig. 14 workflow): place IBM's 27-qubit Falcon with
// Qplacer, then export the layout as SVG and GDS-like text. Ctrl-C cancels
// the placement mid-iteration instead of waiting out the run.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"os/signal"

	"qplacer"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	eng := qplacer.New(qplacer.WithTopology("falcon"))
	plan, err := eng.Plan(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("falcon: %d cells, A_mer %.1f mm², P_h %.3f%%\n",
		plan.NumCells, plan.Metrics.Amer, plan.Metrics.Ph)

	svg, err := os.Create("falcon_layout.svg")
	if err != nil {
		log.Fatal(err)
	}
	defer svg.Close()
	if err := plan.WriteSVG(svg); err != nil {
		log.Fatal(err)
	}
	gds, err := os.Create("falcon_layout.gds.txt")
	if err != nil {
		log.Fatal(err)
	}
	defer gds.Close()
	if err := plan.WriteGDS(gds); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote falcon_layout.svg and falcon_layout.gds.txt")
}
