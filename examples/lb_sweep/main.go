// Segment-size sweep (the Fig. 15 / Table II workflow): compare resonator
// partitioning granularities l_b ∈ {0.2, 0.3, 0.4} mm on one topology.
package main

import (
	"fmt"
	"log"

	"qplacer"
)

func main() {
	fmt.Println("lb(mm)  cells  util   Ph(%)   runtime")
	for _, lb := range []float64{0.2, 0.3, 0.4} {
		plan, err := qplacer.Plan(qplacer.Options{Topology: "falcon", LB: lb})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%.1f     %4d   %.3f  %.3f  %v\n",
			lb, plan.NumCells, plan.Metrics.Utilization, plan.Metrics.Ph,
			plan.PlaceRuntime.Round(1e6))
	}
}
