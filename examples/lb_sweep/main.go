// Segment-size sweep (the Fig. 15 / Table II workflow): compare resonator
// partitioning granularities l_b ∈ {0.2, 0.3, 0.4} mm on one topology. The
// sweep shares one engine, so the device and frequency assignment are reused
// and only the l_b-dependent stages rerun.
package main

import (
	"context"
	"fmt"
	"log"

	"qplacer"
)

func main() {
	ctx := context.Background()
	eng := qplacer.New(qplacer.WithTopology("falcon"))

	fmt.Println("lb(mm)  cells  util   Ph(%)   runtime")
	for _, lb := range []float64{0.2, 0.3, 0.4} {
		plan, err := eng.Plan(ctx, qplacer.WithLB(lb))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%.1f     %4d   %.3f  %.3f  %v\n",
			lb, plan.NumCells, plan.Metrics.Utilization, plan.Metrics.Ph,
			plan.PlaceRuntime.Round(1e6))
	}
}
