module qplacer

go 1.24
