package qplacer

import (
	"context"
	"errors"
	"fmt"

	"qplacer/internal/bmgen"
	"qplacer/internal/circuit"
	"qplacer/internal/topology"
)

// Sentinel errors for the public API. All failures that used to be
// stringly-typed are now classifiable with errors.Is.
var (
	// ErrUnknownTopology reports a topology name with no registered
	// generator (see RegisterTopology).
	ErrUnknownTopology = topology.ErrUnknown
	// ErrUnknownBenchmark reports a benchmark name with no registered
	// builder (see RegisterBenchmark).
	ErrUnknownBenchmark = circuit.ErrUnknown
	// ErrDuplicateTopology reports a topology registration under a taken name.
	ErrDuplicateTopology = topology.ErrDuplicate
	// ErrDuplicateBenchmark reports a benchmark registration under a taken name.
	ErrDuplicateBenchmark = circuit.ErrDuplicate
	// ErrUnknownScheme reports a Scheme value outside the three strategies.
	ErrUnknownScheme = errors.New("qplacer: unknown scheme")
	// ErrUnknownPlacer reports a placement-backend name with no registered
	// implementation (see RegisterPlacer).
	ErrUnknownPlacer = errors.New("qplacer: unknown placer backend")
	// ErrUnknownLegalizer reports a legalization-backend name with no
	// registered implementation (see RegisterLegalizer).
	ErrUnknownLegalizer = errors.New("qplacer: unknown legalizer backend")
	// ErrUnknownDetailedPlacer reports a detailed-placement-backend name with
	// no registered implementation (see RegisterDetailedPlacer).
	ErrUnknownDetailedPlacer = errors.New("qplacer: unknown detailed placer backend")
	// ErrDuplicatePlacer reports a placer registration under a taken name.
	ErrDuplicatePlacer = errors.New("qplacer: duplicate placer backend")
	// ErrDuplicateLegalizer reports a legalizer registration under a taken name.
	ErrDuplicateLegalizer = errors.New("qplacer: duplicate legalizer backend")
	// ErrDuplicateDetailedPlacer reports a detailed-placer registration under
	// a taken name.
	ErrDuplicateDetailedPlacer = errors.New("qplacer: duplicate detailed placer backend")
	// ErrCancelled reports a run stopped by its context. The wrapped error
	// also satisfies errors.Is against context.Canceled or
	// context.DeadlineExceeded, whichever fired.
	ErrCancelled = errors.New("qplacer: cancelled")
	// ErrNoMappings reports an evaluation whose mapper produced an empty
	// mapping set, which would otherwise yield degenerate statistics.
	ErrNoMappings = errors.New("qplacer: no mappings sampled")
	// ErrNoBenchmarks reports a batch evaluation over zero benchmarks —
	// nothing requested and nothing registered — which would otherwise
	// yield NaN means and ±Inf extremes.
	ErrNoBenchmarks = errors.New("qplacer: no benchmarks to evaluate")
	// ErrInvalidPlacement reports a plan that failed independent
	// verification under ValidationStrict: the layout carries
	// error-severity violations (see Validate).
	ErrInvalidPlacement = errors.New("qplacer: invalid placement")
	// ErrInvalidOptions reports an Options value that cannot describe any
	// run — e.g. a non-finite segment size or detuning threshold — caught
	// at normalization before it can poison cache keys or the pipeline.
	ErrInvalidOptions = errors.New("qplacer: invalid options")
	// ErrInvalidSuiteSpec reports a SuiteSpec that cannot describe any
	// benchmark suite (see GenerateBenchmark).
	ErrInvalidSuiteSpec = bmgen.ErrInvalidSpec
	// ErrInvalidSuite reports a generated-suite document that failed
	// well-formedness validation (see LoadSuite).
	ErrInvalidSuite = bmgen.ErrInvalidSuite
)

// wrapCancel converts a context error into an ErrCancelled-classified error,
// keeping the original cause in the chain; other errors pass through.
func wrapCancel(err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return fmt.Errorf("%w: %w", ErrCancelled, err)
	}
	return err
}
