package qplacer

import (
	"bytes"
	"errors"
	"testing"
)

// A parametric family name must run the full pipeline without registration.
func TestPlanParametricTopology(t *testing.T) {
	t.Parallel()
	plan, err := Plan(Options{Topology: "grid-9", MaxIters: 40})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Device.NumQubits != 9 {
		t.Fatalf("grid-9 plan placed %d qubits", plan.Device.NumQubits)
	}
	rep, err := Validate(plan)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Valid {
		t.Fatalf("grid-9 plan invalid: %+v", rep)
	}
}

// A generated suite must register end-to-end: its topology drives the full
// pipeline, its workloads evaluate like built-in benchmarks.
func TestGeneratedSuiteRegisterAndPlan(t *testing.T) {
	t.Parallel()
	suite, err := GenerateBenchmark(SuiteSpec{
		Name:      "gen-e2e",
		Family:    SuiteFamilyRandom,
		Qubits:    12,
		Seed:      5,
		Workloads: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := suite.Register(); err != nil {
		t.Fatal(err)
	}
	plan, err := Plan(Options{Topology: "gen-e2e", MaxIters: 40})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Device.NumQubits != 12 {
		t.Fatalf("suite plan placed %d qubits", plan.Device.NumQubits)
	}
	if len(suite.Workloads) == 0 {
		t.Fatal("suite generated no workloads")
	}
	ev, err := Evaluate(plan, suite.Workloads[0].Name, 5)
	if err != nil {
		t.Fatal(err)
	}
	if ev.MeanFidelity <= 0 || ev.MeanFidelity > 1 {
		t.Fatalf("workload fidelity %v out of (0, 1]", ev.MeanFidelity)
	}
	// Registering the same suite twice must fail loudly, not half-register.
	if err := suite.Register(); !errors.Is(err, ErrDuplicateTopology) {
		t.Fatalf("second Register: %v, want ErrDuplicateTopology", err)
	}
}

func TestLoadSuiteRoundTrip(t *testing.T) {
	t.Parallel()
	suite, err := GenerateBenchmark(SuiteSpec{Name: "gen-rt", Family: SuiteFamilyGrid, Qubits: 16})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := suite.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSuite(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.SpecHash != suite.SpecHash || loaded.Topology.NumQubits != 16 {
		t.Fatalf("round trip mangled the suite: %+v", loaded.Suite)
	}
	if _, err := LoadSuite(bytes.NewReader([]byte("{"))); !errors.Is(err, ErrInvalidSuite) {
		t.Errorf("truncated input: %v, want ErrInvalidSuite", err)
	}
	if _, err := GenerateBenchmark(SuiteSpec{Name: "bad", Family: "torus", Qubits: 9}); !errors.Is(err, ErrInvalidSuiteSpec) {
		t.Errorf("bad family: %v, want ErrInvalidSuiteSpec", err)
	}
}

func TestTopologyCatalogSurfaces(t *testing.T) {
	t.Parallel()
	infos := TopologyCatalog()
	byName := map[string]TopologyInfo{}
	for _, in := range infos {
		byName[in.Name] = in
	}
	for _, name := range Topologies() {
		in, ok := byName[name]
		if !ok {
			t.Fatalf("catalog is missing Table I topology %q", name)
		}
		if in.Qubits <= 0 || in.Edges <= 0 {
			t.Errorf("%s: empty counts %+v", name, in)
		}
	}
	if g := byName["grid"]; g.Canonical != "grid-25" {
		t.Errorf("grid canonical = %q, want grid-25", g.Canonical)
	}
	// ResolveTopology resolves registered and parametric names alike, and
	// wraps ErrUnknownTopology otherwise.
	for name, qubits := range map[string]int{"grid": 25, "grid-3x7": 21, "hummingbird-65": 65} {
		in, err := ResolveTopology(name)
		if err != nil || in.Qubits != qubits || in.Edges <= 0 {
			t.Errorf("ResolveTopology(%q) = %+v, %v; want %d qubits", name, in, err, qubits)
		}
	}
	for _, name := range []string{"warbler", "grid-0", "xtree-21", "octagon-12"} {
		if _, err := ResolveTopology(name); !errors.Is(err, ErrUnknownTopology) {
			t.Errorf("ResolveTopology(%q) err = %v, want ErrUnknownTopology", name, err)
		}
	}
	fams := TopologyFamilies()
	if len(fams) == 0 {
		t.Fatal("no topology families")
	}
	for _, f := range fams {
		if f.Schema == "" || len(f.Examples) == 0 {
			t.Errorf("family %q underspecified: %+v", f.Name, f)
		}
	}
	bms := BenchmarkCatalog()
	seen := map[string]int{}
	for _, b := range bms {
		seen[b.Name] = b.Qubits
	}
	for _, name := range Benchmarks() {
		if q, ok := seen[name]; !ok || q <= 0 {
			t.Errorf("benchmark catalog entry for %q: qubits %d, present %v", name, q, ok)
		}
	}
}
