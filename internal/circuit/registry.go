package circuit

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// ErrUnknown is returned (wrapped) by ByName for unregistered names.
var ErrUnknown = errors.New("circuit: unknown benchmark")

// ErrDuplicate is returned (wrapped) by Register when the name is taken.
var ErrDuplicate = errors.New("circuit: duplicate benchmark name")

var (
	regMu    sync.RWMutex
	registry = map[string]Benchmark{}
)

// Register adds a benchmark to the registry. The Table I workloads are
// registered this way at init; callers may add custom benchmarks at runtime.
// The benchmark's Name must be non-empty and unused, and Build non-nil.
func Register(b Benchmark) error {
	if b.Name == "" {
		return fmt.Errorf("circuit: register with empty name")
	}
	if b.Build == nil {
		return fmt.Errorf("circuit: register %q with nil builder", b.Name)
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, ok := registry[b.Name]; ok {
		return fmt.Errorf("%w %q", ErrDuplicate, b.Name)
	}
	registry[b.Name] = b
	return nil
}

// ByName returns the named benchmark. The error wraps ErrUnknown when no
// benchmark is registered under the name.
func ByName(name string) (Benchmark, error) {
	regMu.RLock()
	b, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return Benchmark{}, fmt.Errorf("%w %q", ErrUnknown, name)
	}
	return b, nil
}

// Names returns every registered benchmark name, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func init() {
	for _, b := range TableI() {
		if err := Register(b); err != nil {
			panic(err)
		}
	}
}
