package circuit

import "testing"

func TestTableIBenchmarks(t *testing.T) {
	benches := TableI()
	if len(benches) != 8 {
		t.Fatalf("Table I lists 8 benchmarks, got %d", len(benches))
	}
	for _, b := range benches {
		c := b.Build()
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", b.Name, err)
		}
		if c.NumQubits != b.Qubits {
			t.Errorf("%s: %d qubits, want %d", b.Name, c.NumQubits, b.Qubits)
		}
		n1, n2 := c.Counts()
		if n1 == 0 || n2 == 0 {
			t.Errorf("%s: trivial circuit (%d 1q, %d 2q)", b.Name, n1, n2)
		}
	}
}

func TestBVStructure(t *testing.T) {
	c := BV(4)
	// Secret 1010…: bits 0 and 2 set → 2 CZ gates.
	_, n2 := c.Counts()
	if n2 != 2 {
		t.Fatalf("BV-4 two-qubit gates = %d, want 2", n2)
	}
}

func TestQAOADeterministicPerSeed(t *testing.T) {
	a, b := QAOA(9, 7), QAOA(9, 7)
	if len(a.Gates) != len(b.Gates) {
		t.Fatal("same seed must give same circuit")
	}
	c := QAOA(9, 8)
	if len(a.Gates) == len(c.Gates) {
		t.Log("different seeds gave same gate count (possible but unusual)")
	}
}

func TestIsingScalesWithSteps(t *testing.T) {
	_, n2a := Ising(4, 1).Counts()
	_, n2b := Ising(4, 3).Counts()
	if n2b != 3*n2a {
		t.Fatalf("Ising 2q gates: %d steps×1 = %d, 3 steps = %d", n2a, n2a, n2b)
	}
}

func TestQGANRingEntanglement(t *testing.T) {
	_, n2 := QGAN(4, 2).Counts()
	// 2 layers × (3 chain + 1 ring-closing) = 8.
	if n2 != 8 {
		t.Fatalf("QGAN-4 2q gates = %d, want 8", n2)
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName("bv-9"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown benchmark must error")
	}
}

func TestGeneratorPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { BV(1) }, func() { QAOA(2, 0) },
		func() { Ising(1, 1) }, func() { QGAN(1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestValidateCatchesBadGates(t *testing.T) {
	c := &Circuit{Name: "bad", NumQubits: 2,
		Gates: []Gate{{"cz", []int{0, 5}}}}
	if c.Validate() == nil {
		t.Fatal("out-of-range qubit must fail")
	}
	c2 := &Circuit{Name: "bad2", NumQubits: 2,
		Gates: []Gate{{"cz", []int{1, 1}}}}
	if c2.Validate() == nil {
		t.Fatal("duplicate operand must fail")
	}
}
