// Package circuit provides the gate-level IR and the NISQ benchmark
// generators of Table I: Bernstein–Vazirani (BV), the Quantum Approximate
// Optimization Algorithm (QAOA), a linear Ising-chain simulation, and the
// Quantum GAN ansatz (QGAN). The gate set matches fixed-frequency transmon
// hardware: single-qubit rotations plus the resonator-induced-phase CZ.
package circuit

import (
	"fmt"
	"math/rand"
)

// Gate is one operation on logical qubits.
type Gate struct {
	Name   string
	Qubits []int // 1 or 2 logical qubit indices
}

// TwoQubit reports whether the gate acts on two qubits.
func (g Gate) TwoQubit() bool { return len(g.Qubits) == 2 }

// Circuit is a sequence of gates over NumQubits logical qubits.
type Circuit struct {
	Name      string
	NumQubits int
	Gates     []Gate
}

// Counts returns the single- and two-qubit gate totals.
func (c *Circuit) Counts() (n1q, n2q int) {
	for _, g := range c.Gates {
		if g.TwoQubit() {
			n2q++
		} else {
			n1q++
		}
	}
	return n1q, n2q
}

// Validate checks qubit indices.
func (c *Circuit) Validate() error {
	for i, g := range c.Gates {
		if len(g.Qubits) < 1 || len(g.Qubits) > 2 {
			return fmt.Errorf("circuit %s: gate %d has %d operands", c.Name, i, len(g.Qubits))
		}
		for _, q := range g.Qubits {
			if q < 0 || q >= c.NumQubits {
				return fmt.Errorf("circuit %s: gate %d references qubit %d", c.Name, i, q)
			}
		}
		if g.TwoQubit() && g.Qubits[0] == g.Qubits[1] {
			return fmt.Errorf("circuit %s: gate %d uses one qubit twice", c.Name, i)
		}
	}
	return nil
}

func (c *Circuit) h(q int)     { c.Gates = append(c.Gates, Gate{"h", []int{q}}) }
func (c *Circuit) rx(q int)    { c.Gates = append(c.Gates, Gate{"rx", []int{q}}) }
func (c *Circuit) ry(q int)    { c.Gates = append(c.Gates, Gate{"ry", []int{q}}) }
func (c *Circuit) rz(q int)    { c.Gates = append(c.Gates, Gate{"rz", []int{q}}) }
func (c *Circuit) x(q int)     { c.Gates = append(c.Gates, Gate{"x", []int{q}}) }
func (c *Circuit) cz(a, b int) { c.Gates = append(c.Gates, Gate{"cz", []int{a, b}}) }
func (c *Circuit) zz(a, b int) { c.cz(a, b); c.rz(b); c.cz(a, b) } // exp(iθZZ) via 2 CZ

// BV returns the Bernstein–Vazirani circuit on n qubits (n−1 data qubits +
// one ancilla, secret string 1010…).
func BV(n int) *Circuit {
	if n < 2 {
		panic("circuit: BV needs at least 2 qubits")
	}
	c := &Circuit{Name: fmt.Sprintf("bv-%d", n), NumQubits: n}
	anc := n - 1
	for q := 0; q < n; q++ {
		c.h(q)
	}
	c.x(anc)
	c.h(anc)
	for q := 0; q < n-1; q++ {
		if q%2 == 0 { // secret bit 1
			c.cz(q, anc)
		}
	}
	for q := 0; q < n-1; q++ {
		c.h(q)
	}
	return c
}

// QAOA returns a depth-1 QAOA MaxCut circuit on a random 3-regular-ish
// graph over n qubits (ring plus seeded chords).
func QAOA(n int, seed int64) *Circuit {
	if n < 3 {
		panic("circuit: QAOA needs at least 3 qubits")
	}
	c := &Circuit{Name: fmt.Sprintf("qaoa-%d", n), NumQubits: n}
	rng := rand.New(rand.NewSource(seed))
	for q := 0; q < n; q++ {
		c.h(q)
	}
	// Ring edges.
	for q := 0; q < n; q++ {
		c.zz(q, (q+1)%n)
	}
	// Chords: n/2 extra seeded pairs.
	for k := 0; k < n/2; k++ {
		a := rng.Intn(n)
		b := rng.Intn(n)
		if a != b && (a+1)%n != b && (b+1)%n != a {
			c.zz(a, b)
		}
	}
	// Mixer.
	for q := 0; q < n; q++ {
		c.rx(q)
	}
	return c
}

// Ising returns a Trotterized linear Ising-chain simulation (steps layers
// of nearest-neighbour ZZ plus transverse-field RX), as in [7].
func Ising(n, steps int) *Circuit {
	if n < 2 || steps < 1 {
		panic("circuit: Ising needs ≥2 qubits and ≥1 step")
	}
	c := &Circuit{Name: fmt.Sprintf("ising-%d", n), NumQubits: n}
	for s := 0; s < steps; s++ {
		for q := 0; q+1 < n; q++ {
			c.zz(q, q+1)
		}
		for q := 0; q < n; q++ {
			c.rx(q)
		}
	}
	return c
}

// QGAN returns the layered hardware-efficient QGAN ansatz of [55]: layers
// of RY rotations with ring CZ entanglement.
func QGAN(n, layers int) *Circuit {
	if n < 2 || layers < 1 {
		panic("circuit: QGAN needs ≥2 qubits and ≥1 layer")
	}
	c := &Circuit{Name: fmt.Sprintf("qgan-%d", n), NumQubits: n}
	for l := 0; l < layers; l++ {
		for q := 0; q < n; q++ {
			c.ry(q)
		}
		for q := 0; q+1 < n; q++ {
			c.cz(q, q+1)
		}
		if n > 2 {
			c.cz(n-1, 0)
		}
	}
	for q := 0; q < n; q++ {
		c.ry(q)
	}
	return c
}

// Benchmark names a Table I workload.
type Benchmark struct {
	Name   string
	Qubits int
	Build  func() *Circuit
}

// TableI returns the paper's eight benchmark instances in evaluation order.
func TableI() []Benchmark {
	return []Benchmark{
		{"bv-4", 4, func() *Circuit { return BV(4) }},
		{"bv-9", 9, func() *Circuit { return BV(9) }},
		{"bv-16", 16, func() *Circuit { return BV(16) }},
		{"qaoa-4", 4, func() *Circuit { return QAOA(4, 7) }},
		{"qaoa-9", 9, func() *Circuit { return QAOA(9, 7) }},
		{"ising-4", 4, func() *Circuit { return Ising(4, 3) }},
		{"qgan-4", 4, func() *Circuit { return QGAN(4, 2) }},
		{"qgan-9", 9, func() *Circuit { return QGAN(9, 2) }},
	}
}
