package circuit

import (
	"errors"
	"testing"

	"qplacer/internal/testutil"
)

func TestRegisterAndByNameCustom(t *testing.T) {
	name := testutil.UniqueName(t)
	b := Benchmark{Name: name, Qubits: 2, Build: func() *Circuit {
		c := &Circuit{Name: name, NumQubits: 2}
		c.h(0)
		c.cz(0, 1)
		return c
	}}
	if err := Register(b); err != nil {
		t.Fatal(err)
	}
	got, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	circ := got.Build()
	if err := circ.Validate(); err != nil {
		t.Fatal(err)
	}
	n1q, n2q := circ.Counts()
	if n1q != 1 || n2q != 1 {
		t.Fatalf("counts = %d,%d", n1q, n2q)
	}
}

func TestRegisterRejectsDuplicates(t *testing.T) {
	name := testutil.UniqueName(t)
	b := Benchmark{Name: name, Qubits: 2, Build: func() *Circuit { return BV(2) }}
	if err := Register(b); err != nil {
		t.Fatal(err)
	}
	if err := Register(b); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate registration error = %v, want ErrDuplicate", err)
	}
	if err := Register(Benchmark{Name: "bv-4", Qubits: 4, Build: b.Build}); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("registering over built-in bv-4: %v, want ErrDuplicate", err)
	}
}

func TestRegisterRejectsInvalid(t *testing.T) {
	if err := Register(Benchmark{Qubits: 2, Build: func() *Circuit { return BV(2) }}); err == nil {
		t.Fatal("empty name must fail")
	}
	if err := Register(Benchmark{Name: testutil.UniqueName(t), Qubits: 2}); err == nil {
		t.Fatal("nil builder must fail")
	}
}

func TestByNameUnknown(t *testing.T) {
	_, err := ByName("registry-test-bogus")
	if !errors.Is(err, ErrUnknown) {
		t.Fatalf("unknown lookup error = %v, want ErrUnknown", err)
	}
}

func TestTableIRegistered(t *testing.T) {
	for _, b := range TableI() {
		got, err := ByName(b.Name)
		if err != nil {
			t.Fatalf("built-in %q: %v", b.Name, err)
		}
		if got.Qubits != b.Qubits {
			t.Fatalf("%q qubits = %d, want %d", b.Name, got.Qubits, b.Qubits)
		}
	}
}
