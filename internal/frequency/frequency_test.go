package frequency

import (
	"math"
	"testing"

	"qplacer/internal/component"
	"qplacer/internal/physics"
	"qplacer/internal/topology"
)

func TestLevelsSpacingExceedsThreshold(t *testing.T) {
	q := QubitSpectrum().Levels(0.1, DefaultMargin)
	if len(q) != 4 {
		t.Fatalf("qubit levels = %d, want 4 (span 0.4 GHz, Δc·margin = 0.13)", len(q))
	}
	for i := 1; i < len(q); i++ {
		if q[i]-q[i-1] <= 0.1 {
			t.Fatalf("qubit level spacing %v ≤ Δc", q[i]-q[i-1])
		}
	}
	r := ResonatorSpectrum().Levels(0.1, DefaultMargin)
	if len(r) != 8 {
		t.Fatalf("resonator levels = %d, want 8", len(r))
	}
	// Levels span the full band.
	if q[0] != 4.8 || q[len(q)-1] != 5.2 || r[0] != 6.0 || r[len(r)-1] != 7.0 {
		t.Fatalf("levels must span the band: %v %v", q, r)
	}
}

func TestLevelsSingle(t *testing.T) {
	s := Spectrum{5.0, 5.05}
	got := s.Levels(0.1, 1.3)
	if len(got) != 1 || math.Abs(got[0]-5.025) > 1e-12 {
		t.Fatalf("narrow band levels = %v", got)
	}
}

func TestLevelsPanicsOnBadInput(t *testing.T) {
	for _, fn := range []func(){
		func() { (Spectrum{5, 4}).Levels(0.1, 1.3) },
		func() { (Spectrum{4, 5}).Levels(0, 1.3) },
		func() { (Spectrum{4, 5}).Levels(0.1, 1.0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestAssignIsolatesConnectedComponents(t *testing.T) {
	for _, dev := range topology.All() {
		a := Assign(dev, physics.DetuneThresholdGHz)
		// Directly coupled qubits must never be resonant.
		for _, e := range dev.Edges() {
			if Resonant(a.QubitFreq[e[0]], a.QubitFreq[e[1]], physics.DetuneThresholdGHz) {
				t.Errorf("%s: coupled qubits %v share a resonant frequency", dev.Name, e)
			}
		}
		// All frequencies inside the bands.
		for q, f := range a.QubitFreq {
			if f < physics.QubitFreqLoGHz-1e-9 || f > physics.QubitFreqHiGHz+1e-9 {
				t.Errorf("%s: qubit %d frequency %v outside band", dev.Name, q, f)
			}
		}
		for r, f := range a.ResFreq {
			if f < physics.ResFreqLoGHz-1e-9 || f > physics.ResFreqHiGHz+1e-9 {
				t.Errorf("%s: resonator %d frequency %v outside band", dev.Name, r, f)
			}
		}
	}
}

func TestAssignResonatorsSharingQubitDetuned(t *testing.T) {
	// Heavy-hex degree ≤ 3 means ≤ 3 resonators share a qubit; 8 levels are
	// plenty, so there must be zero resonator conflicts on Falcon/Eagle.
	for _, dev := range []*topology.Device{topology.Falcon27(), topology.Eagle127()} {
		a := Assign(dev, physics.DetuneThresholdGHz)
		if a.ResConflicts != 0 {
			t.Errorf("%s: %d resonator conflicts, want 0", dev.Name, a.ResConflicts)
		}
		edges := dev.Edges()
		for q := 0; q < dev.NumQubits; q++ {
			var fs []float64
			for r, e := range edges {
				if e[0] == q || e[1] == q {
					fs = append(fs, a.ResFreq[r])
				}
			}
			for i := 0; i < len(fs); i++ {
				for j := i + 1; j < len(fs); j++ {
					if Resonant(fs[i], fs[j], physics.DetuneThresholdGHz) {
						t.Errorf("%s: resonators at qubit %d resonate", dev.Name, q)
					}
				}
			}
		}
	}
}

func TestAssignFrequencyCrowdingGrowsWithDevice(t *testing.T) {
	// Only 4 qubit levels exist, so distance-2 conflicts are unavoidable on
	// every real topology; larger devices must reuse levels more.
	small := Assign(topology.Grid25(), 0.1)
	large := Assign(topology.Eagle127(), 0.1)
	if small.QubitConflicts == 0 {
		t.Log("grid has no distance-2 crowding (tight but possible)")
	}
	// Level reuse count: qubits per level must be ≫ 1 on Eagle.
	counts := map[float64]int{}
	for _, f := range large.QubitFreq {
		counts[f]++
	}
	if len(counts) > 4 {
		t.Fatalf("eagle uses %d distinct qubit levels, max is 4", len(counts))
	}
	for f, c := range counts {
		if c < 10 {
			t.Errorf("eagle level %v used only %d times — implausible", f, c)
		}
	}
	_ = small
}

func buildNetlist(t *testing.T, dev *topology.Device) (*component.Netlist, *Assignment) {
	t.Helper()
	a := Assign(dev, physics.DetuneThresholdGHz)
	nl, err := component.Build(dev, a.QubitFreq, a.ResFreq, component.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return nl, a
}

func TestCollisionMapExcludesSameResonator(t *testing.T) {
	nl, _ := buildNetlist(t, topology.Grid25())
	cm := BuildCollisionMap(nl, physics.DetuneThresholdGHz)
	for _, p := range cm.Pairs {
		a, b := nl.Instances[p[0]], nl.Instances[p[1]]
		if a.Kind == component.KindSegment && b.Kind == component.KindSegment &&
			a.Resonator == b.Resonator {
			t.Fatalf("pair %v from the same resonator", p)
		}
		if a.Kind != b.Kind {
			t.Fatalf("cross-kind pair %v cannot be resonant", p)
		}
		if !Resonant(a.FreqGHz, b.FreqGHz, cm.DeltaC) {
			t.Fatalf("non-resonant pair %v in map", p)
		}
	}
}

func TestCollisionMapSymmetricIndex(t *testing.T) {
	nl, _ := buildNetlist(t, topology.Falcon27())
	cm := BuildCollisionMap(nl, physics.DetuneThresholdGHz)
	count := 0
	for i, partners := range cm.ByInst {
		for _, j := range partners {
			found := false
			for _, k := range cm.ByInst[j] {
				if k == i {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("asymmetric collision entry (%d, %d)", i, j)
			}
			count++
		}
	}
	if count != 2*len(cm.Pairs) {
		t.Fatalf("ByInst entries = %d, want 2×%d", count, len(cm.Pairs))
	}
}

func TestCollisionMapNonEmptyOnRealDevices(t *testing.T) {
	// Level reuse guarantees collision pairs on every Table I device.
	for _, dev := range topology.All() {
		nl, _ := buildNetlist(t, dev)
		cm := BuildCollisionMap(nl, physics.DetuneThresholdGHz)
		if cm.NumPairs() == 0 {
			t.Errorf("%s: empty collision map — frequency crowding missing", dev.Name)
		}
	}
}

func TestCollisionMapDefaultThreshold(t *testing.T) {
	nl, _ := buildNetlist(t, topology.Grid25())
	cm := BuildCollisionMap(nl, 0)
	if cm.DeltaC != physics.DetuneThresholdGHz {
		t.Fatalf("default Δc = %v", cm.DeltaC)
	}
}

func TestResonant(t *testing.T) {
	if !Resonant(5.0, 5.1, 0.1) {
		t.Error("Δ = 0.1 must count as resonant (τ ≤ Δc)")
	}
	if Resonant(5.0, 5.11, 0.1) {
		t.Error("Δ = 0.11 must not be resonant")
	}
	if !Resonant(5.1, 5.0, 0.1) {
		t.Error("must be symmetric")
	}
}
