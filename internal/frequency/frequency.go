// Package frequency implements the frequency assigner of §IV-A: it
// discretizes the available qubit and resonator spectra into levels separated
// by more than the detuning threshold Δc, colours the device so that
// interconnected components land on different levels (frequency-domain
// isolation), and builds the collision map — the precomputed list of
// near-resonant instance pairs the placement engine's frequency repulsive
// force iterates over (avoiding all-to-all interactions, §IV-C1).
//
// The spectra are narrow (§III-B "frequency crowding"): 4 usable qubit
// levels in 4.8–5.2 GHz and 8 resonator levels in 6.0–7.0 GHz at
// Δc = 0.1 GHz. Larger devices therefore must reuse levels on components
// that are not directly connected — exactly the residual resonance pairs
// that spatial isolation has to handle.
package frequency

import (
	"fmt"
	"math"

	"qplacer/internal/component"
	"qplacer/internal/graph"
	"qplacer/internal/physics"
	"qplacer/internal/topology"
)

// Spectrum is a frequency band in GHz.
type Spectrum struct {
	Lo, Hi float64
}

// QubitSpectrum returns the paper's qubit band Ω = 4.8–5.2 GHz.
func QubitSpectrum() Spectrum {
	return Spectrum{physics.QubitFreqLoGHz, physics.QubitFreqHiGHz}
}

// ResonatorSpectrum returns the paper's resonator band Ω_r = 6.0–7.0 GHz.
func ResonatorSpectrum() Spectrum {
	return Spectrum{physics.ResFreqLoGHz, physics.ResFreqHiGHz}
}

// Levels discretizes the band into the maximum number of evenly spaced
// levels whose pairwise separation strictly exceeds deltaC·margin. margin
// (>1) keeps levels clear of the resonance threshold despite fabrication
// variation; 1.3 is the package default used by Assign.
func (s Spectrum) Levels(deltaC, margin float64) []float64 {
	if s.Hi <= s.Lo || deltaC <= 0 || margin <= 1 {
		panic(fmt.Sprintf("frequency: invalid spectrum/threshold %v %v %v", s, deltaC, margin))
	}
	span := s.Hi - s.Lo
	minSpacing := deltaC * margin
	n := int(math.Floor(span/minSpacing)) + 1
	if n < 1 {
		n = 1
	}
	out := make([]float64, n)
	if n == 1 {
		out[0] = (s.Lo + s.Hi) / 2
		return out
	}
	step := span / float64(n-1)
	for i := range out {
		out[i] = s.Lo + float64(i)*step
	}
	return out
}

// Assignment holds the chosen frequencies.
type Assignment struct {
	QubitFreq   []float64 // per device qubit
	ResFreq     []float64 // per coupling edge (resonator)
	QubitLevels []float64
	ResLevels   []float64
	// QubitConflicts counts qubit pairs at hop distance ≤2 that had to share
	// a level because the spectrum ran out (frequency crowding).
	QubitConflicts int
	// ResConflicts is the analogous count for resonators sharing a qubit.
	ResConflicts int
}

// DefaultMargin is the spacing guard factor applied over Δc.
const DefaultMargin = 1.3

// levelAssign assigns one of len(levels) level indices to every vertex of
// hard (direct-isolation graph) while softly avoiding conflicts on soft
// (a supergraph of hard). Vertices are processed in decreasing-degree order
// of the hard graph (the DSATUR-style priority), and each takes the level
// with no hard conflict that minimizes soft conflicts. It returns the level
// index per vertex and the number of residual hard and soft conflicts.
func levelAssign(hard, soft *graph.Graph, nLevels int) (lv []int, hardConf, softConf int) {
	n := hard.N()
	lv = make([]int, n)
	for i := range lv {
		lv[i] = -1
	}
	// BFS order from the highest-degree vertex: parents are levelled before
	// their children, so a vertex never ends up hard-blocked on all levels
	// by its own already-coloured neighbours (max degree ≤ #levels here).
	root := 0
	for v := 1; v < n; v++ {
		if hard.Degree(v) > hard.Degree(root) {
			root = v
		}
	}
	order := hard.BFSFrom(root)
	if len(order) < n {
		seen := make([]bool, n)
		for _, v := range order {
			seen[v] = true
		}
		for v := 0; v < n; v++ {
			if !seen[v] {
				order = append(order, v)
			}
		}
	}
	cost := func(v, c int) int {
		total := 0
		for _, u := range hard.Neighbors(v) {
			if lv[u] == c {
				total += 1000
			}
		}
		for _, u := range soft.Neighbors(v) {
			if lv[u] == c {
				total++
			}
		}
		return total
	}
	pickBest := func(v int) int {
		bestLevel, bestCost := 0, math.MaxInt
		for c := 0; c < nLevels; c++ {
			if cc := cost(v, c); cc < bestCost {
				bestLevel, bestCost = c, cc
			}
		}
		return bestLevel
	}
	for _, v := range order {
		lv[v] = pickBest(v)
	}
	// Repair sweeps: re-level any vertex that still hard-conflicts.
	for sweep := 0; sweep < 10; sweep++ {
		fixedAny := false
		for _, v := range order {
			if cost(v, lv[v]) >= 1000 {
				if c := pickBest(v); c != lv[v] {
					lv[v] = c
					fixedAny = true
				}
			}
		}
		if !fixedAny {
			break
		}
	}
	for _, e := range hard.Edges() {
		if lv[e[0]] == lv[e[1]] {
			hardConf++
		}
	}
	for _, e := range soft.Edges() {
		if lv[e[0]] == lv[e[1]] && !hard.HasEdge(e[0], e[1]) {
			softConf++
		}
	}
	return lv, hardConf, softConf
}

// Assign chooses frequencies so that directly coupled qubits are always
// detuned (hard requirement for fixed-frequency operation) and distance-2
// qubit pairs are detuned whenever the 4 available levels permit. Resonators
// sharing a qubit are likewise detuned over the 8 resonator levels. Residual
// same-level pairs — the frequency crowding of §III-B — are reported in the
// conflict counters and become the job of spatial isolation.
func Assign(dev *topology.Device, deltaC float64) *Assignment {
	if deltaC <= 0 {
		deltaC = physics.DetuneThresholdGHz
	}
	qLevels := QubitSpectrum().Levels(deltaC, DefaultMargin)
	rLevels := ResonatorSpectrum().Levels(deltaC, DefaultMargin)

	out := &Assignment{
		QubitFreq:   make([]float64, dev.NumQubits),
		ResFreq:     make([]float64, dev.NumEdges()),
		QubitLevels: qLevels,
		ResLevels:   rLevels,
	}

	// Qubits: direct edges hard, distance-2 pairs soft.
	d2 := dev.Graph.Power(2)
	qlv, qHard, qSoft := levelAssign(dev.Graph, d2, len(qLevels))
	for q, c := range qlv {
		out.QubitFreq[q] = qLevels[c]
	}
	out.QubitConflicts = qHard*1000 + qSoft // hard conflicts should be zero

	// Resonators: the "share a qubit" graph is the hard constraint.
	edges := dev.Edges()
	rg := graph.New(max(len(edges), 1))
	byQubit := make(map[int][]int)
	for r, e := range edges {
		byQubit[e[0]] = append(byQubit[e[0]], r)
		byQubit[e[1]] = append(byQubit[e[1]], r)
	}
	// Deterministic iteration: adjacency-list order feeds the BFS used by
	// levelAssign, so ranging over the map directly would make assignments
	// vary run to run.
	for q := 0; q < dev.NumQubits; q++ {
		rs := byQubit[q]
		for i := 0; i < len(rs); i++ {
			for j := i + 1; j < len(rs); j++ {
				rg.AddEdge(rs[i], rs[j])
			}
		}
	}
	rlv, rHard, _ := levelAssign(rg, rg, len(rLevels))
	for r := range edges {
		out.ResFreq[r] = rLevels[rlv[r]]
	}
	out.ResConflicts = rHard
	return out
}

// Resonant reports whether two frequencies are within the detuning
// threshold (the crosstalk indicator τ of Eq. 9).
func Resonant(f1, f2, deltaC float64) bool {
	return math.Abs(f1-f2) <= deltaC
}

// CollisionMap lists, per instance, the near-resonant partner instances the
// frequency force must repel (Eq. 9), excluding pairs from the same
// resonator (the Kronecker-delta factor of Eq. 10).
type CollisionMap struct {
	DeltaC float64
	Pairs  [][2]int // i < j instance-ID pairs
	ByInst [][]int  // partner list per instance ID
}

// BuildCollisionMap scans the netlist for near-resonant instance pairs.
// Qubit and resonator bands never overlap within Δc, so pairs are always
// qubit–qubit or segment–segment.
func BuildCollisionMap(nl *component.Netlist, deltaC float64) *CollisionMap {
	if deltaC <= 0 {
		deltaC = physics.DetuneThresholdGHz
	}
	cm := &CollisionMap{
		DeltaC: deltaC,
		ByInst: make([][]int, len(nl.Instances)),
	}
	n := len(nl.Instances)
	for i := 0; i < n; i++ {
		a := nl.Instances[i]
		for j := i + 1; j < n; j++ {
			b := nl.Instances[j]
			if a.Kind != b.Kind {
				continue // cross-band: never resonant
			}
			if a.Kind == component.KindSegment && a.Resonator == b.Resonator {
				continue // same resonator: excluded by Eq. 10
			}
			if !Resonant(a.FreqGHz, b.FreqGHz, deltaC) {
				continue
			}
			cm.Pairs = append(cm.Pairs, [2]int{i, j})
			cm.ByInst[i] = append(cm.ByInst[i], j)
			cm.ByInst[j] = append(cm.ByInst[j], i)
		}
	}
	return cm
}

// NumPairs returns the number of near-resonant pairs.
func (cm *CollisionMap) NumPairs() int { return len(cm.Pairs) }
