// Package mcmf implements min-cost max-flow via successive shortest paths
// with Johnson potentials (Dijkstra on reduced costs). The placer uses it
// for the displacement-minimizing qubit legalization refinement of
// Tang et al. [88]: qubits are matched to legal sites so that total movement
// is minimized.
package mcmf

import (
	"container/heap"
	"fmt"
	"math"
)

type edge struct {
	to   int
	cap  float64
	cost float64
	flow float64
	rev  int // index of reverse edge in adj[to]
}

// Graph is a flow network over vertices 0..N-1.
type Graph struct {
	n   int
	adj [][]edge
}

// New returns an empty flow network with n vertices.
func New(n int) *Graph {
	if n <= 0 {
		panic("mcmf: vertex count must be positive")
	}
	return &Graph{n: n, adj: make([][]edge, n)}
}

// N returns the vertex count.
func (g *Graph) N() int { return g.n }

// AddEdge adds a directed edge u→v with the given capacity and per-unit
// cost. Costs may be any finite float; negative costs are allowed as long as
// the network has no negative cycles (the solver runs Bellman–Ford once to
// initialize potentials).
func (g *Graph) AddEdge(u, v int, cap, cost float64) {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		panic(fmt.Sprintf("mcmf: edge (%d,%d) out of range", u, v))
	}
	if cap < 0 {
		panic("mcmf: negative capacity")
	}
	g.adj[u] = append(g.adj[u], edge{to: v, cap: cap, cost: cost, rev: len(g.adj[v])})
	g.adj[v] = append(g.adj[v], edge{to: u, cap: 0, cost: -cost, rev: len(g.adj[u]) - 1})
}

// Flow returns the current flow on the i-th edge added from u (in insertion
// order, counting only forward edges).
func (g *Graph) Flow(u, i int) float64 {
	cnt := 0
	for _, e := range g.adj[u] {
		if e.cap > 0 || e.flow > 0 { // forward edges were added with cap > 0
			if e.cap > 0 {
				if cnt == i {
					return e.flow
				}
				cnt++
			}
		}
	}
	panic(fmt.Sprintf("mcmf: vertex %d has no forward edge #%d", u, i))
}

type pqItem struct {
	v    int
	dist float64
}

type pq []pqItem

func (p pq) Len() int            { return len(p) }
func (p pq) Less(i, j int) bool  { return p[i].dist < p[j].dist }
func (p pq) Swap(i, j int)       { p[i], p[j] = p[j], p[i] }
func (p *pq) Push(x interface{}) { *p = append(*p, x.(pqItem)) }
func (p *pq) Pop() interface{} {
	old := *p
	n := len(old)
	it := old[n-1]
	*p = old[:n-1]
	return it
}

// MinCostFlow pushes up to maxFlow units from s to t, returning the amount
// of flow actually sent and its total cost.
func (g *Graph) MinCostFlow(s, t int, maxFlow float64) (flow, cost float64) {
	if s == t {
		return 0, 0
	}
	const eps = 1e-12
	pot := g.bellmanFord(s)

	dist := make([]float64, g.n)
	prevV := make([]int, g.n)
	prevE := make([]int, g.n)

	for flow+eps < maxFlow {
		// Dijkstra on reduced costs.
		for i := range dist {
			dist[i] = math.Inf(1)
			prevV[i] = -1
		}
		dist[s] = 0
		h := &pq{{s, 0}}
		for h.Len() > 0 {
			it := heap.Pop(h).(pqItem)
			if it.dist > dist[it.v]+eps {
				continue
			}
			for ei := range g.adj[it.v] {
				e := &g.adj[it.v][ei]
				if e.cap-e.flow <= eps {
					continue
				}
				rc := e.cost + pot[it.v] - pot[e.to]
				if rc < 0 && rc > -1e-9 {
					rc = 0 // numerical guard
				}
				nd := dist[it.v] + rc
				if nd+eps < dist[e.to] {
					dist[e.to] = nd
					prevV[e.to] = it.v
					prevE[e.to] = ei
					heap.Push(h, pqItem{e.to, nd})
				}
			}
		}
		if math.IsInf(dist[t], 1) {
			break // no augmenting path
		}
		for v := 0; v < g.n; v++ {
			if !math.IsInf(dist[v], 1) {
				pot[v] += dist[v]
			}
		}
		// Find bottleneck.
		push := maxFlow - flow
		for v := t; v != s; v = prevV[v] {
			e := &g.adj[prevV[v]][prevE[v]]
			if r := e.cap - e.flow; r < push {
				push = r
			}
		}
		// Augment.
		for v := t; v != s; v = prevV[v] {
			e := &g.adj[prevV[v]][prevE[v]]
			e.flow += push
			g.adj[v][e.rev].flow -= push
			cost += push * e.cost
		}
		flow += push
	}
	return flow, cost
}

// bellmanFord computes initial potentials from s (handles negative edge
// costs; assumes no negative cycles reachable from s).
func (g *Graph) bellmanFord(s int) []float64 {
	pot := make([]float64, g.n)
	for i := range pot {
		pot[i] = math.Inf(1)
	}
	pot[s] = 0
	for iter := 0; iter < g.n-1; iter++ {
		changed := false
		for u := 0; u < g.n; u++ {
			if math.IsInf(pot[u], 1) {
				continue
			}
			for _, e := range g.adj[u] {
				if e.cap-e.flow > 1e-12 && pot[u]+e.cost < pot[e.to]-1e-15 {
					pot[e.to] = pot[u] + e.cost
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	// Unreachable vertices get potential 0 (they will never be relaxed).
	for i := range pot {
		if math.IsInf(pot[i], 1) {
			pot[i] = 0
		}
	}
	return pot
}

// Assign solves a rectangular assignment problem: costs[i][j] is the cost of
// assigning worker i to site j (len(costs) workers, len(costs[0]) sites,
// sites ≥ workers). It returns, for each worker, the chosen site index, and
// the total cost of the optimal assignment.
func Assign(costs [][]float64) ([]int, float64) {
	w := len(costs)
	if w == 0 {
		return nil, 0
	}
	sCount := len(costs[0])
	if sCount < w {
		panic("mcmf: Assign needs at least as many sites as workers")
	}
	// Nodes: 0 = source, 1..w = workers, w+1..w+sCount = sites, last = sink.
	n := 2 + w + sCount
	src, snk := 0, n-1
	g := New(n)
	for i := 0; i < w; i++ {
		g.AddEdge(src, 1+i, 1, 0)
		if len(costs[i]) != sCount {
			panic("mcmf: ragged cost matrix")
		}
		for j := 0; j < sCount; j++ {
			g.AddEdge(1+i, 1+w+j, 1, costs[i][j])
		}
	}
	for j := 0; j < sCount; j++ {
		g.AddEdge(1+w+j, snk, 1, 0)
	}
	flow, total := g.MinCostFlow(src, snk, float64(w))
	if flow < float64(w)-1e-9 {
		panic("mcmf: assignment infeasible")
	}
	out := make([]int, w)
	for i := 0; i < w; i++ {
		out[i] = -1
		cnt := 0
		for _, e := range g.adj[1+i] {
			if e.cap > 0 { // forward edge to a site
				if e.flow > 0.5 {
					out[i] = cnt
					break
				}
				cnt++
			}
		}
		if out[i] < 0 {
			panic("mcmf: worker left unassigned")
		}
	}
	return out, total
}
