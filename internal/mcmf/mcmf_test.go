package mcmf

import (
	"math"
	"math/rand"
	"testing"
)

func TestSimplePath(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 5, 1)
	g.AddEdge(1, 2, 3, 2)
	flow, cost := g.MinCostFlow(0, 2, 10)
	if flow != 3 || cost != 9 {
		t.Fatalf("flow=%v cost=%v, want 3, 9", flow, cost)
	}
}

func TestPrefersCheaperPath(t *testing.T) {
	// Two parallel paths: cheap with capacity 2, expensive with capacity 5.
	g := New(4)
	g.AddEdge(0, 1, 2, 1)
	g.AddEdge(1, 3, 2, 1)
	g.AddEdge(0, 2, 5, 10)
	g.AddEdge(2, 3, 5, 10)
	flow, cost := g.MinCostFlow(0, 3, 4)
	if flow != 4 {
		t.Fatalf("flow = %v, want 4", flow)
	}
	// 2 units at cost 2 each + 2 units at cost 20 each = 44.
	if cost != 44 {
		t.Fatalf("cost = %v, want 44", cost)
	}
}

func TestRespectsMaxFlow(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1, 100, 1)
	flow, cost := g.MinCostFlow(0, 1, 7)
	if flow != 7 || cost != 7 {
		t.Fatalf("flow=%v cost=%v", flow, cost)
	}
}

func TestDisconnected(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 5, 1)
	flow, cost := g.MinCostFlow(0, 2, 5)
	if flow != 0 || cost != 0 {
		t.Fatalf("flow=%v cost=%v, want 0, 0", flow, cost)
	}
}

func TestNegativeCostEdges(t *testing.T) {
	// A negative-cost detour must be taken.
	g := New(4)
	g.AddEdge(0, 1, 1, 4)
	g.AddEdge(0, 2, 1, 1)
	g.AddEdge(2, 1, 1, -3)
	g.AddEdge(1, 3, 2, 0)
	flow, cost := g.MinCostFlow(0, 3, 2)
	if flow != 2 {
		t.Fatalf("flow = %v, want 2", flow)
	}
	// Unit via 0→2→1→3 = 1−3 = −2; unit via 0→1→3 = 4. Total = 2.
	if math.Abs(cost-2) > 1e-9 {
		t.Fatalf("cost = %v, want 2", cost)
	}
}

func TestSelfSourceSink(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1, 1, 1)
	if f, c := g.MinCostFlow(0, 0, 5); f != 0 || c != 0 {
		t.Fatalf("self flow = %v/%v", f, c)
	}
}

func TestAssignIdentity(t *testing.T) {
	costs := [][]float64{
		{0, 5, 5},
		{5, 0, 5},
		{5, 5, 0},
	}
	got, total := Assign(costs)
	for i, j := range got {
		if i != j {
			t.Fatalf("assignment = %v", got)
		}
	}
	if total != 0 {
		t.Fatalf("total = %v, want 0", total)
	}
}

func TestAssignForcedConflict(t *testing.T) {
	// Both workers prefer site 0; optimal total must route one to site 1.
	costs := [][]float64{
		{1, 10},
		{2, 3},
	}
	got, total := Assign(costs)
	if got[0] == got[1] {
		t.Fatalf("workers share a site: %v", got)
	}
	if math.Abs(total-4) > 1e-9 { // 1 + 3
		t.Fatalf("total = %v, want 4", total)
	}
}

func TestAssignRectangular(t *testing.T) {
	// 2 workers, 4 sites.
	costs := [][]float64{
		{9, 2, 9, 9},
		{9, 1, 9, 0},
	}
	got, total := Assign(costs)
	if got[0] != 1 || got[1] != 3 {
		t.Fatalf("assignment = %v", got)
	}
	if math.Abs(total-2) > 1e-9 {
		t.Fatalf("total = %v", total)
	}
}

// bruteAssign enumerates all assignments (small inputs only).
func bruteAssign(costs [][]float64) float64 {
	w := len(costs)
	s := len(costs[0])
	used := make([]bool, s)
	best := math.Inf(1)
	var rec func(i int, acc float64)
	rec = func(i int, acc float64) {
		if acc >= best {
			return
		}
		if i == w {
			best = acc
			return
		}
		for j := 0; j < s; j++ {
			if !used[j] {
				used[j] = true
				rec(i+1, acc+costs[i][j])
				used[j] = false
			}
		}
	}
	rec(0, 0)
	return best
}

func TestAssignMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		w := 1 + rng.Intn(5)
		s := w + rng.Intn(3)
		costs := make([][]float64, w)
		for i := range costs {
			costs[i] = make([]float64, s)
			for j := range costs[i] {
				costs[i][j] = float64(rng.Intn(50))
			}
		}
		got, total := Assign(costs)
		want := bruteAssign(costs)
		if math.Abs(total-want) > 1e-6 {
			t.Fatalf("trial %d: total = %v, brute = %v (assign %v)", trial, total, want, got)
		}
		// Assignment must be injective.
		seen := map[int]bool{}
		for _, j := range got {
			if seen[j] {
				t.Fatalf("trial %d: duplicate site in %v", trial, got)
			}
			seen[j] = true
		}
	}
}

func TestAssignEmptyAndInvalid(t *testing.T) {
	if got, total := Assign(nil); got != nil || total != 0 {
		t.Fatal("empty assignment should be trivial")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic when sites < workers")
		}
	}()
	Assign([][]float64{{1}, {2}})
}

func TestFlowConservationRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		n := 6 + rng.Intn(8)
		g := New(n)
		for i := 0; i < n*3; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				g.AddEdge(u, v, float64(1+rng.Intn(10)), float64(rng.Intn(20)))
			}
		}
		flow, cost := g.MinCostFlow(0, n-1, 1e18)
		if flow < 0 || cost < 0 && flow == 0 {
			t.Fatalf("trial %d: flow=%v cost=%v", trial, flow, cost)
		}
		// Conservation at every interior vertex: net outflow 0.
		for v := 1; v < n-1; v++ {
			var net float64
			for _, e := range g.adj[v] {
				net += e.flow
			}
			if math.Abs(net) > 1e-6 {
				t.Fatalf("trial %d: conservation violated at %d: %v", trial, v, net)
			}
		}
	}
}
