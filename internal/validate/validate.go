// Package validate is the independent placement verifier: it re-derives the
// paper's correctness constraints from scratch — pairwise frequency-collision
// detection within the interaction radius (Eq. 9/10), geometric overlap of
// the legalization claim footprints (§IV-B1/§IV-C2), die-boundary containment,
// and consistency of the claimed layout metrics (§V-C) — without calling any
// placer, legalizer, or metrics code paths. A layout that passes here is
// physically realizable regardless of which backend produced it, which is the
// conformance bar every pluggable backend has to clear.
package validate

import (
	"fmt"
	"math"

	"qplacer/internal/component"
	"qplacer/internal/geom"
	"qplacer/internal/metrics"
	"qplacer/internal/physics"
)

// Severity ranks a violation. Errors make a placement invalid (a correct
// pipeline never emits them); warnings flag residual quality defects — e.g.
// frequency hotspots — that the paper measures (P_h) rather than forbids.
type Severity int

const (
	// SeverityWarning marks a quality defect a legal layout may still carry.
	SeverityWarning Severity = iota
	// SeverityError marks a hard constraint violation: the layout is not
	// physically valid.
	SeverityError
)

// String names the severity ("warning", "error"), as serialized in
// violation JSON.
func (s Severity) String() string {
	switch s {
	case SeverityWarning:
		return "warning"
	case SeverityError:
		return "error"
	}
	return fmt.Sprintf("severity(%d)", int(s))
}

// Code identifies the constraint a violation breaks.
type Code string

const (
	// CodeNonFinite reports an instance with a NaN or infinite coordinate,
	// size, or frequency.
	CodeNonFinite Code = "non_finite"
	// CodeOverlap reports two instances whose legalization claim footprints
	// overlap (the layout is not manufacturable).
	CodeOverlap Code = "overlap"
	// CodeFrequencyCollision reports a near-resonant pair — qubit–qubit or
	// segment–segment across resonators — inside the interaction radius
	// (their crosstalk keep-outs intersect): a frequency hotspot.
	CodeFrequencyCollision Code = "frequency_collision"
	// CodeOutOfBounds reports an instance far outside the declared placement
	// region (legalizers may legitimately spill a little past it).
	CodeOutOfBounds Code = "out_of_bounds"
	// CodeMetricsMismatch reports a claimed layout metric that disagrees with
	// its independent recomputation — a stale or tampered result.
	CodeMetricsMismatch Code = "metrics_mismatch"
)

// Violation is one broken constraint, located on the die.
type Violation struct {
	Code     Code
	Severity Severity
	A, B     int        // instance IDs; B is -1 for single-instance violations
	Pos      geom.Point // violation site (midpoint for pair violations)
	Detail   string
}

// Report collects every violation found plus the work performed, so callers
// can tell "no violations" apart from "nothing checked".
type Report struct {
	Violations       []Violation
	InstancesChecked int
	PairsChecked     int
}

// Valid reports whether the layout carries no error-severity violations.
func (r *Report) Valid() bool {
	for _, v := range r.Violations {
		if v.Severity == SeverityError {
			return false
		}
	}
	return true
}

// Counts tallies violations by severity.
func (r *Report) Counts() (errs, warnings int) {
	for _, v := range r.Violations {
		if v.Severity == SeverityError {
			errs++
		} else {
			warnings++
		}
	}
	return
}

// Input is one finished placement to verify.
type Input struct {
	// Netlist is the placed layout (required).
	Netlist *component.Netlist
	// DeltaC is the detuning threshold in GHz (<= 0 selects the paper's
	// default).
	DeltaC float64
	// Region is the declared placement region; a degenerate rectangle skips
	// the die-boundary check.
	Region geom.Rect
	// Metrics are the layout metrics the producer claims; nil skips the
	// consistency check.
	Metrics *metrics.Report
}

// overlapEps is the penetration depth below which two footprints count as
// abutting rather than overlapping, absorbing floating-point residue from
// grid-pitch arithmetic.
const overlapEps = 1e-9

// boundsSlack scales the declared region's larger side into the margin an
// instance may spill past it before the die-boundary check fires: legalizers
// legitimately pack a little outside the global-placement region (extra
// shelves, spiral fallbacks), but a component landing far away means the
// producer lost it.
const boundsSlack = 0.5

// metricsTol is the relative tolerance for the metrics-consistency check.
const metricsTol = 1e-6

// claimRect is the footprint an instance must keep exclusively: a qubit owns
// its fully padded cell (the padding is its crosstalk keep-out, §IV-B1),
// while a wire block owns its core plus half its padding on each side (the
// spacing between different wire blocks is shared). Re-derived here from the
// paper's spacing semantics; deliberately not imported from the legalizer.
func claimRect(in *component.Instance) geom.Rect {
	if in.Kind == component.KindQubit {
		return geom.RectAt(in.Pos, in.W+2*in.Pad, in.H+2*in.Pad)
	}
	return geom.RectAt(in.Pos, in.W+in.Pad, in.H+in.Pad)
}

// keepOutRect is the crosstalk keep-out used by the frequency-collision
// check: the fully padded footprint (the interaction radius of Eq. 18's
// hotspot test).
func keepOutRect(in *component.Instance) geom.Rect {
	return geom.RectAt(in.Pos, in.W+2*in.Pad, in.H+2*in.Pad)
}

// resonant re-derives the crosstalk indicator τ of Eq. 9: two components
// interact when their frequencies sit within the detuning threshold.
func resonant(f1, f2, deltaC float64) bool {
	return math.Abs(f1-f2) <= deltaC
}

// penetration returns how deeply two rectangles interpenetrate (the smaller
// of the axis overlaps), or 0 when they are disjoint or merely abut.
func penetration(a, b geom.Rect) float64 {
	ow := math.Min(a.Hi.X, b.Hi.X) - math.Max(a.Lo.X, b.Lo.X)
	oh := math.Min(a.Hi.Y, b.Hi.Y) - math.Max(a.Lo.Y, b.Lo.Y)
	if ow <= 0 || oh <= 0 {
		return 0
	}
	return math.Min(ow, oh)
}

// finite reports whether every geometric and spectral attribute of the
// instance is a finite number.
func finite(in *component.Instance) bool {
	for _, v := range []float64{in.Pos.X, in.Pos.Y, in.W, in.H, in.Pad, in.FreqGHz} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// midpoint returns the centre between two instance positions.
func midpoint(a, b *component.Instance) geom.Point {
	return geom.Point{X: (a.Pos.X + b.Pos.X) / 2, Y: (a.Pos.Y + b.Pos.Y) / 2}
}

// Check verifies one placed layout against every constraint and returns the
// full violation report. It never mutates the netlist. The only error is
// misuse (nil or empty netlist); violations are data, not errors.
func Check(in Input) (*Report, error) {
	if in.Netlist == nil || len(in.Netlist.Instances) == 0 {
		return nil, fmt.Errorf("validate: nil or empty netlist")
	}
	deltaC := in.DeltaC
	if deltaC <= 0 {
		deltaC = physics.DetuneThresholdGHz
	}
	nl := in.Netlist
	rep := &Report{InstancesChecked: len(nl.Instances)}

	// Per-instance checks: finiteness, then die-boundary containment.
	checkBounds := in.Region.W() > 0 && in.Region.H() > 0
	var die geom.Rect
	if checkBounds {
		die = in.Region.Inflate(boundsSlack * math.Max(in.Region.W(), in.Region.H()))
	}
	broken := make([]bool, len(nl.Instances)) // non-finite: skip pair checks
	for i, inst := range nl.Instances {
		if !finite(inst) {
			broken[i] = true
			rep.Violations = append(rep.Violations, Violation{
				Code:     CodeNonFinite,
				Severity: SeverityError,
				A:        inst.ID,
				B:        -1,
				Pos:      inst.Pos,
				Detail:   fmt.Sprintf("%s has a non-finite coordinate, size, or frequency", describe(inst)),
			})
			continue
		}
		if checkBounds && !die.ContainsRect(claimRect(inst)) {
			rep.Violations = append(rep.Violations, Violation{
				Code:     CodeOutOfBounds,
				Severity: SeverityWarning,
				A:        inst.ID,
				B:        -1,
				Pos:      inst.Pos,
				Detail: fmt.Sprintf("%s at %v lies outside the declared region %v (+%.0f%% slack)",
					describe(inst), inst.Pos, in.Region, boundsSlack*100),
			})
		}
	}

	// Pairwise checks: geometric overlap of claim footprints (error) and
	// frequency collisions within the interaction radius (warning). One
	// O(n²) sweep covers both; the engine's own pipeline already runs
	// same-order sweeps, so verification is never the bottleneck.
	n := len(nl.Instances)
	for i := 0; i < n; i++ {
		if broken[i] {
			continue
		}
		a := nl.Instances[i]
		ca, ka := claimRect(a), keepOutRect(a)
		for j := i + 1; j < n; j++ {
			if broken[j] {
				continue
			}
			b := nl.Instances[j]
			rep.PairsChecked++

			if depth := penetration(ca, claimRect(b)); depth > overlapEps {
				rep.Violations = append(rep.Violations, Violation{
					Code:     CodeOverlap,
					Severity: SeverityError,
					A:        a.ID,
					B:        b.ID,
					Pos:      midpoint(a, b),
					Detail: fmt.Sprintf("%s and %s interpenetrate by %.4g mm",
						describe(a), describe(b), depth),
				})
			}

			// Frequency collisions: same-kind pairs only (the qubit and
			// resonator bands never approach within Δc), and segments of one
			// resonator are exempt (the Kronecker delta of Eq. 10).
			if a.Kind != b.Kind {
				continue
			}
			if a.Kind == component.KindSegment && a.Resonator == b.Resonator {
				continue
			}
			if !resonant(a.FreqGHz, b.FreqGHz, deltaC) {
				continue
			}
			if penetration(ka, keepOutRect(b)) <= 0 {
				continue
			}
			rep.Violations = append(rep.Violations, Violation{
				Code:     CodeFrequencyCollision,
				Severity: SeverityWarning,
				A:        a.ID,
				B:        b.ID,
				Pos:      midpoint(a, b),
				Detail: fmt.Sprintf("%s (%.3f GHz) and %s (%.3f GHz) are within Δc=%.3g GHz and their keep-outs intersect",
					describe(a), a.FreqGHz, describe(b), b.FreqGHz, deltaC),
			})
		}
	}

	if in.Metrics != nil {
		checkMetrics(nl, deltaC, in.Metrics, rep)
	}
	return rep, nil
}

// describe renders an instance for violation messages.
func describe(in *component.Instance) string {
	if in.Kind == component.KindQubit {
		return fmt.Sprintf("qubit %d (inst %d)", in.Qubit, in.ID)
	}
	return fmt.Sprintf("resonator %d segment %d (inst %d)", in.Resonator, in.SegIndex, in.ID)
}

// checkMetrics recomputes the §V-C layout metrics from the placed netlist —
// a second, independent derivation of Eq. 17/18 — and flags any claimed
// figure that disagrees beyond tolerance.
func checkMetrics(nl *component.Netlist, deltaC float64, claimed *metrics.Report, rep *Report) {
	// A_mer: minimum enclosing rectangle over the padded footprints.
	// A_poly: padded cells for qubits (the keep-out belongs to the
	// component), bare wire blocks for segments.
	var amer geom.Rect
	var apoly float64
	for i, in := range nl.Instances {
		r := keepOutRect(in)
		if i == 0 {
			amer = r
		} else {
			amer = amer.Union(r)
		}
		if in.Kind == component.KindQubit {
			apoly += (in.W + 2*in.Pad) * (in.H + 2*in.Pad)
		} else {
			apoly += in.W * in.H
		}
	}
	amerArea := amer.Area()
	util := 0.0
	if amerArea > 0 {
		util = apoly / amerArea
	}

	// P_h (Eq. 18): Σ over violating pairs of intersection length × centroid
	// distance, normalized by A_poly; and the violating-pair count itself.
	var num float64
	hotspots := 0
	n := len(nl.Instances)
	for i := 0; i < n; i++ {
		a := nl.Instances[i]
		if !finite(a) {
			continue
		}
		for j := i + 1; j < n; j++ {
			b := nl.Instances[j]
			if !finite(b) || a.Kind != b.Kind {
				continue
			}
			if a.Kind == component.KindSegment && a.Resonator == b.Resonator {
				continue
			}
			if !resonant(a.FreqGHz, b.FreqGHz, deltaC) {
				continue
			}
			ov, ok := keepOutRect(a).Intersect(keepOutRect(b))
			if !ok {
				continue
			}
			length := math.Max(ov.W(), ov.H())
			if length <= 0 {
				continue
			}
			num += length * a.Pos.Dist(b.Pos)
			hotspots++
		}
	}
	ph := 0.0
	if apoly > 0 {
		ph = 100 * num / apoly
	}

	mismatch := func(name string, claimedV, recomputed float64) {
		rep.Violations = append(rep.Violations, Violation{
			Code:     CodeMetricsMismatch,
			Severity: SeverityError,
			A:        -1,
			B:        -1,
			Detail: fmt.Sprintf("claimed %s %.9g disagrees with recomputed %.9g",
				name, claimedV, recomputed),
		})
	}
	within := func(a, b float64) bool {
		return math.Abs(a-b) <= metricsTol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	}
	if !within(claimed.Amer, amerArea) {
		mismatch("A_mer", claimed.Amer, amerArea)
	}
	if !within(claimed.Apoly, apoly) {
		mismatch("A_poly", claimed.Apoly, apoly)
	}
	if !within(claimed.Utilization, util) {
		mismatch("utilization", claimed.Utilization, util)
	}
	if !within(claimed.Ph, ph) {
		mismatch("P_h", claimed.Ph, ph)
	}
	if len(claimed.Violations) != hotspots {
		mismatch("violation count", float64(len(claimed.Violations)), float64(hotspots))
	}
}
