package validate

import (
	"math"
	"strings"
	"testing"

	"qplacer/internal/component"
	"qplacer/internal/frequency"
	"qplacer/internal/geom"
	"qplacer/internal/metrics"
	"qplacer/internal/physics"
	"qplacer/internal/topology"
)

// legalNetlist builds a small netlist and hand-places it on a coarse grid so
// every claim footprint is disjoint — a known-good layout to corrupt.
func legalNetlist(t *testing.T) *component.Netlist {
	t.Helper()
	dev, err := topology.ByName("grid")
	if err != nil {
		t.Fatal(err)
	}
	a := frequency.Assign(dev, physics.DetuneThresholdGHz)
	nl, err := component.Build(dev, a.QubitFreq, a.ResFreq, component.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// 2 mm pitch comfortably exceeds the 1.2 mm qubit claim width.
	cols := int(math.Ceil(math.Sqrt(float64(len(nl.Instances)))))
	for i, in := range nl.Instances {
		in.Pos = geom.Point{X: float64(i%cols) * 2, Y: float64(i/cols) * 2}
	}
	return nl
}

func countCode(rep *Report, code Code) int {
	n := 0
	for _, v := range rep.Violations {
		if v.Code == code {
			n++
		}
	}
	return n
}

func TestCheckCleanLayout(t *testing.T) {
	nl := legalNetlist(t)
	rep, err := Check(Input{Netlist: nl, DeltaC: physics.DetuneThresholdGHz})
	if err != nil {
		t.Fatal(err)
	}
	if countCode(rep, CodeOverlap) != 0 || countCode(rep, CodeNonFinite) != 0 {
		t.Fatalf("clean layout reported hard violations: %+v", rep.Violations)
	}
	if !rep.Valid() {
		t.Fatalf("clean layout invalid: %+v", rep.Violations)
	}
	if rep.InstancesChecked != len(nl.Instances) {
		t.Fatalf("InstancesChecked = %d, want %d", rep.InstancesChecked, len(nl.Instances))
	}
	wantPairs := len(nl.Instances) * (len(nl.Instances) - 1) / 2
	if rep.PairsChecked != wantPairs {
		t.Fatalf("PairsChecked = %d, want %d", rep.PairsChecked, wantPairs)
	}
}

func TestCheckFlagsOverlapAndFrequencyCollision(t *testing.T) {
	nl := legalNetlist(t)
	// Force the first two qubits onto colliding frequencies AND the same
	// spot: one overlap error plus one frequency-collision warning.
	a, b := nl.Instances[nl.QubitInst[0]], nl.Instances[nl.QubitInst[1]]
	b.Pos = a.Pos
	b.FreqGHz = a.FreqGHz
	rep, err := Check(Input{Netlist: nl, DeltaC: physics.DetuneThresholdGHz})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Valid() {
		t.Fatal("corrupted layout passed validation")
	}
	if countCode(rep, CodeOverlap) == 0 {
		t.Fatalf("no overlap violation in %+v", rep.Violations)
	}
	if countCode(rep, CodeFrequencyCollision) == 0 {
		t.Fatalf("no frequency-collision violation in %+v", rep.Violations)
	}
	// The violation carries its location and both instance IDs.
	for _, v := range rep.Violations {
		if v.Code == CodeOverlap {
			if v.A != a.ID || v.B != b.ID {
				t.Fatalf("overlap endpoints = %d,%d, want %d,%d", v.A, v.B, a.ID, b.ID)
			}
			if v.Pos != a.Pos {
				t.Fatalf("overlap site = %v, want %v", v.Pos, a.Pos)
			}
			if v.Severity != SeverityError {
				t.Fatalf("overlap severity = %v, want error", v.Severity)
			}
		}
		if v.Code == CodeFrequencyCollision && v.Severity != SeverityWarning {
			t.Fatalf("frequency collision severity = %v, want warning", v.Severity)
		}
	}
	errs, warns := rep.Counts()
	if errs == 0 || warns == 0 {
		t.Fatalf("Counts() = %d errors, %d warnings; want both non-zero", errs, warns)
	}
}

func TestCheckSameResonatorSegmentsExempt(t *testing.T) {
	nl := legalNetlist(t)
	// Two abutting segments of one resonator share a frequency by
	// construction: no frequency collision may fire for them.
	res := nl.Resonators[0]
	if len(res.Segments) < 2 {
		t.Skip("resonator 0 has a single segment")
	}
	s0, s1 := nl.Instances[res.Segments[0]], nl.Instances[res.Segments[1]]
	s1.Pos = geom.Point{X: s0.Pos.X + s0.W + s0.Pad, Y: s0.Pos.Y}
	rep, err := Check(Input{Netlist: nl, DeltaC: physics.DetuneThresholdGHz})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Violations {
		if v.Code == CodeFrequencyCollision && v.A == s0.ID && v.B == s1.ID {
			t.Fatalf("same-resonator pair flagged: %+v", v)
		}
	}
}

func TestCheckFlagsNonFinite(t *testing.T) {
	nl := legalNetlist(t)
	nl.Instances[3].Pos.X = math.NaN()
	nl.Instances[5].FreqGHz = math.Inf(1)
	rep, err := Check(Input{Netlist: nl, DeltaC: physics.DetuneThresholdGHz})
	if err != nil {
		t.Fatal(err)
	}
	if got := countCode(rep, CodeNonFinite); got != 2 {
		t.Fatalf("non-finite violations = %d, want 2", got)
	}
	if rep.Valid() {
		t.Fatal("non-finite layout passed validation")
	}
}

func TestCheckBounds(t *testing.T) {
	nl := legalNetlist(t)
	region, ok := geom.EnclosingRect(nl.PaddedRects())
	if !ok {
		t.Fatal("no enclosing rect")
	}
	rep, err := Check(Input{Netlist: nl, DeltaC: physics.DetuneThresholdGHz, Region: region})
	if err != nil {
		t.Fatal(err)
	}
	if got := countCode(rep, CodeOutOfBounds); got != 0 {
		t.Fatalf("in-bounds layout reported %d boundary violations", got)
	}
	// Fling one instance far outside the die: a warning, not an error.
	nl.Instances[0].Pos = geom.Point{X: region.Hi.X + 100*region.W(), Y: region.Hi.Y}
	rep, err = Check(Input{Netlist: nl, DeltaC: physics.DetuneThresholdGHz, Region: region})
	if err != nil {
		t.Fatal(err)
	}
	if got := countCode(rep, CodeOutOfBounds); got != 1 {
		t.Fatalf("boundary violations = %d, want 1", got)
	}
	for _, v := range rep.Violations {
		if v.Code == CodeOutOfBounds && v.Severity != SeverityWarning {
			t.Fatalf("boundary severity = %v, want warning", v.Severity)
		}
	}
}

func TestCheckMetricsConsistency(t *testing.T) {
	nl := legalNetlist(t)
	m := metrics.Measure(nl, physics.DetuneThresholdGHz)
	rep, err := Check(Input{Netlist: nl, DeltaC: physics.DetuneThresholdGHz, Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	if got := countCode(rep, CodeMetricsMismatch); got != 0 {
		t.Fatalf("honest metrics flagged %d mismatches: %+v", got, rep.Violations)
	}

	// Tamper with the claimed area: the independent recomputation catches it.
	tampered := *m
	tampered.Amer *= 1.5
	rep, err = Check(Input{Netlist: nl, DeltaC: physics.DetuneThresholdGHz, Metrics: &tampered})
	if err != nil {
		t.Fatal(err)
	}
	if got := countCode(rep, CodeMetricsMismatch); got == 0 {
		t.Fatal("tampered A_mer not flagged")
	}
	if rep.Valid() {
		t.Fatal("tampered metrics passed validation")
	}
	found := false
	for _, v := range rep.Violations {
		if v.Code == CodeMetricsMismatch && strings.Contains(v.Detail, "A_mer") {
			found = true
		}
	}
	if !found {
		t.Fatalf("mismatch detail does not name A_mer: %+v", rep.Violations)
	}
}

func TestCheckRejectsEmptyInput(t *testing.T) {
	if _, err := Check(Input{}); err == nil {
		t.Fatal("nil netlist must be rejected")
	}
	if _, err := Check(Input{Netlist: &component.Netlist{}}); err == nil {
		t.Fatal("empty netlist must be rejected")
	}
}

func TestSeverityAndCodeStrings(t *testing.T) {
	if SeverityError.String() != "error" || SeverityWarning.String() != "warning" {
		t.Fatalf("severity strings: %v %v", SeverityError, SeverityWarning)
	}
	if Severity(9).String() == "" {
		t.Fatal("unknown severity must still print")
	}
}
