// Package graph implements the undirected-graph machinery the placer needs:
// adjacency storage, traversals, connectivity, bipartiteness, greedy and
// DSATUR colouring, distance-k power graphs, and seeded sampling of random
// connected induced subgraphs (used to draw the 50 physical-qubit subsets per
// benchmark mapping, §VI-A of the paper).
package graph

import (
	"fmt"
	"math/rand"
	"sort"
)

// Graph is a simple undirected graph over vertices 0..N-1.
type Graph struct {
	n   int
	adj [][]int
	set []map[int]bool
}

// New returns an empty graph with n vertices.
func New(n int) *Graph {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	g := &Graph{
		n:   n,
		adj: make([][]int, n),
		set: make([]map[int]bool, n),
	}
	for i := range g.set {
		g.set[i] = make(map[int]bool)
	}
	return g
}

// FromEdges builds a graph with n vertices and the given edges.
func FromEdges(n int, edges [][2]int) *Graph {
	g := New(n)
	for _, e := range edges {
		g.AddEdge(e[0], e[1])
	}
	return g
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// M returns the number of edges.
func (g *Graph) M() int {
	m := 0
	for _, a := range g.adj {
		m += len(a)
	}
	return m / 2
}

// AddEdge inserts the undirected edge (u, v). Self-loops and duplicate edges
// are ignored.
func (g *Graph) AddEdge(u, v int) {
	if u == v {
		return
	}
	g.check(u)
	g.check(v)
	if g.set[u][v] {
		return
	}
	g.set[u][v] = true
	g.set[v][u] = true
	g.adj[u] = append(g.adj[u], v)
	g.adj[v] = append(g.adj[v], u)
}

// HasEdge reports whether (u, v) is an edge.
func (g *Graph) HasEdge(u, v int) bool {
	g.check(u)
	g.check(v)
	return g.set[u][v]
}

// Neighbors returns the neighbour list of u (shared slice; do not mutate).
func (g *Graph) Neighbors(u int) []int {
	g.check(u)
	return g.adj[u]
}

// Degree returns the degree of u.
func (g *Graph) Degree(u int) int {
	g.check(u)
	return len(g.adj[u])
}

// Edges returns all edges with u < v, sorted lexicographically.
func (g *Graph) Edges() [][2]int {
	var out [][2]int
	for u := 0; u < g.n; u++ {
		for _, v := range g.adj[u] {
			if u < v {
				out = append(out, [2]int{u, v})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

func (g *Graph) check(u int) {
	if u < 0 || u >= g.n {
		panic(fmt.Sprintf("graph: vertex %d out of range [0,%d)", u, g.n))
	}
}

// BFSFrom returns the vertices reachable from src in breadth-first order.
func (g *Graph) BFSFrom(src int) []int {
	g.check(src)
	seen := make([]bool, g.n)
	order := []int{src}
	seen[src] = true
	for head := 0; head < len(order); head++ {
		u := order[head]
		for _, v := range g.adj[u] {
			if !seen[v] {
				seen[v] = true
				order = append(order, v)
			}
		}
	}
	return order
}

// Distances returns BFS hop distances from src; unreachable vertices get -1.
func (g *Graph) Distances(src int) []int {
	g.check(src)
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.adj[u] {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// ShortestPath returns one shortest path from src to dst (inclusive), or nil
// when dst is unreachable.
func (g *Graph) ShortestPath(src, dst int) []int {
	g.check(src)
	g.check(dst)
	if src == dst {
		return []int{src}
	}
	prev := make([]int, g.n)
	for i := range prev {
		prev[i] = -1
	}
	prev[src] = src
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.adj[u] {
			if prev[v] < 0 {
				prev[v] = u
				if v == dst {
					queue = nil
					break
				}
				queue = append(queue, v)
			}
		}
	}
	if prev[dst] < 0 {
		return nil
	}
	var path []int
	for v := dst; v != src; v = prev[v] {
		path = append(path, v)
	}
	path = append(path, src)
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path
}

// Connected reports whether the graph is connected. The empty graph is
// considered connected.
func (g *Graph) Connected() bool {
	if g.n == 0 {
		return true
	}
	return len(g.BFSFrom(0)) == g.n
}

// Components returns the connected components, each sorted ascending; the
// component list is sorted by smallest member.
func (g *Graph) Components() [][]int {
	seen := make([]bool, g.n)
	var comps [][]int
	for v := 0; v < g.n; v++ {
		if seen[v] {
			continue
		}
		comp := g.BFSFrom(v)
		for _, u := range comp {
			seen[u] = true
		}
		sort.Ints(comp)
		comps = append(comps, comp)
	}
	return comps
}

// Bipartite reports whether the graph is bipartite, returning a valid
// 2-colouring when it is.
func (g *Graph) Bipartite() (bool, []int) {
	color := make([]int, g.n)
	for i := range color {
		color[i] = -1
	}
	for s := 0; s < g.n; s++ {
		if color[s] >= 0 {
			continue
		}
		color[s] = 0
		queue := []int{s}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range g.adj[u] {
				if color[v] < 0 {
					color[v] = 1 - color[u]
					queue = append(queue, v)
				} else if color[v] == color[u] {
					return false, nil
				}
			}
		}
	}
	return true, color
}

// Power returns the graph whose edges connect vertices at hop distance
// 1..k in g ("distance-k" graph). Power(1) is a copy of g.
func (g *Graph) Power(k int) *Graph {
	if k < 1 {
		panic("graph: Power requires k >= 1")
	}
	out := New(g.n)
	for s := 0; s < g.n; s++ {
		// Bounded BFS to depth k.
		dist := map[int]int{s: 0}
		queue := []int{s}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			if dist[u] == k {
				continue
			}
			for _, v := range g.adj[u] {
				if _, ok := dist[v]; !ok {
					dist[v] = dist[u] + 1
					queue = append(queue, v)
				}
			}
		}
		for v := range dist {
			if v != s {
				out.AddEdge(s, v)
			}
		}
	}
	return out
}

// GreedyColoring colours vertices in the given order with the smallest
// non-conflicting colour. If order is nil, natural order is used.
func (g *Graph) GreedyColoring(order []int) []int {
	if order == nil {
		order = make([]int, g.n)
		for i := range order {
			order[i] = i
		}
	}
	color := make([]int, g.n)
	for i := range color {
		color[i] = -1
	}
	used := make([]bool, g.n+1)
	for _, u := range order {
		for _, v := range g.adj[u] {
			if c := color[v]; c >= 0 {
				used[c] = true
			}
		}
		c := 0
		for used[c] {
			c++
		}
		color[u] = c
		for _, v := range g.adj[u] {
			if cc := color[v]; cc >= 0 {
				used[cc] = false
			}
		}
	}
	return color
}

// DSATURColoring colours the graph with the DSATUR heuristic (highest
// saturation first, ties by degree then index). It returns the colour of
// each vertex; colours are 0-based and contiguous.
func (g *Graph) DSATURColoring() []int {
	color := make([]int, g.n)
	for i := range color {
		color[i] = -1
	}
	sat := make([]map[int]bool, g.n)
	for i := range sat {
		sat[i] = make(map[int]bool)
	}
	for done := 0; done < g.n; done++ {
		// Pick uncoloured vertex with max saturation, tie-break by degree.
		best, bestSat, bestDeg := -1, -1, -1
		for v := 0; v < g.n; v++ {
			if color[v] >= 0 {
				continue
			}
			s, d := len(sat[v]), len(g.adj[v])
			if s > bestSat || (s == bestSat && d > bestDeg) {
				best, bestSat, bestDeg = v, s, d
			}
		}
		c := 0
		for sat[best][c] {
			c++
		}
		color[best] = c
		for _, v := range g.adj[best] {
			sat[v][c] = true
		}
	}
	return color
}

// NumColors returns 1 + max colour in the colouring (0 for empty input).
func NumColors(color []int) int {
	m := 0
	for _, c := range color {
		if c+1 > m {
			m = c + 1
		}
	}
	return m
}

// ValidColoring reports whether no edge joins same-coloured vertices.
func (g *Graph) ValidColoring(color []int) bool {
	if len(color) != g.n {
		return false
	}
	for u := 0; u < g.n; u++ {
		for _, v := range g.adj[u] {
			if color[u] == color[v] {
				return false
			}
		}
	}
	return true
}

// RandomConnectedSubset returns a uniformly seeded random connected induced
// subset of exactly size vertices, grown by randomized BFS from a random
// start. It returns nil when the component containing the start is smaller
// than size after maxTries attempts.
func (g *Graph) RandomConnectedSubset(size int, rng *rand.Rand) []int {
	if size <= 0 || size > g.n {
		return nil
	}
	const maxTries = 64
	for try := 0; try < maxTries; try++ {
		start := rng.Intn(g.n)
		in := map[int]bool{start: true}
		frontier := append([]int(nil), g.adj[start]...)
		for len(in) < size && len(frontier) > 0 {
			i := rng.Intn(len(frontier))
			v := frontier[i]
			frontier[i] = frontier[len(frontier)-1]
			frontier = frontier[:len(frontier)-1]
			if in[v] {
				continue
			}
			in[v] = true
			for _, w := range g.adj[v] {
				if !in[w] {
					frontier = append(frontier, w)
				}
			}
		}
		if len(in) == size {
			out := make([]int, 0, size)
			for v := range in {
				out = append(out, v)
			}
			sort.Ints(out)
			return out
		}
	}
	return nil
}

// InducedSubgraph returns the subgraph induced by verts along with the
// mapping from new index to original vertex id.
func (g *Graph) InducedSubgraph(verts []int) (*Graph, []int) {
	idx := make(map[int]int, len(verts))
	orig := append([]int(nil), verts...)
	sort.Ints(orig)
	for i, v := range orig {
		idx[v] = i
	}
	sub := New(len(orig))
	for i, v := range orig {
		for _, w := range g.adj[v] {
			if j, ok := idx[w]; ok && i < j {
				sub.AddEdge(i, j)
			}
		}
	}
	return sub, orig
}
