package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func path(n int) *Graph {
	g := New(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

func cycle(n int) *Graph {
	g := path(n)
	g.AddEdge(n-1, 0)
	return g
}

func grid(rows, cols int) *Graph {
	g := New(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				g.AddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				g.AddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	return g
}

func TestAddEdgeDedupAndSelfLoop(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0)
	g.AddEdge(1, 1)
	if g.M() != 1 {
		t.Fatalf("M = %d, want 1", g.M())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatal("edge must be symmetric")
	}
	if g.HasEdge(1, 1) {
		t.Fatal("self-loop must be ignored")
	}
	if g.Degree(2) != 0 {
		t.Fatal("isolated vertex must have degree 0")
	}
}

func TestEdgesSorted(t *testing.T) {
	g := FromEdges(4, [][2]int{{3, 2}, {1, 0}, {2, 0}})
	got := g.Edges()
	want := [][2]int{{0, 1}, {0, 2}, {2, 3}}
	if len(got) != len(want) {
		t.Fatalf("edges = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("edges = %v, want %v", got, want)
		}
	}
}

func TestBFSAndDistances(t *testing.T) {
	g := path(5)
	order := g.BFSFrom(0)
	if len(order) != 5 || order[0] != 0 || order[4] != 4 {
		t.Fatalf("BFS order = %v", order)
	}
	d := g.Distances(0)
	for i, want := range []int{0, 1, 2, 3, 4} {
		if d[i] != want {
			t.Fatalf("dist[%d] = %d, want %d", i, d[i], want)
		}
	}
	g2 := New(3)
	g2.AddEdge(0, 1)
	d2 := g2.Distances(0)
	if d2[2] != -1 {
		t.Fatalf("unreachable vertex distance = %d, want -1", d2[2])
	}
}

func TestShortestPath(t *testing.T) {
	g := grid(3, 3)
	p := g.ShortestPath(0, 8)
	if len(p) != 5 || p[0] != 0 || p[4] != 8 {
		t.Fatalf("path = %v", p)
	}
	for i := 0; i+1 < len(p); i++ {
		if !g.HasEdge(p[i], p[i+1]) {
			t.Fatalf("path edge (%d,%d) missing", p[i], p[i+1])
		}
	}
	if p := g.ShortestPath(4, 4); len(p) != 1 || p[0] != 4 {
		t.Fatalf("trivial path = %v", p)
	}
	g2 := New(2)
	if p := g2.ShortestPath(0, 1); p != nil {
		t.Fatalf("unreachable path = %v", p)
	}
}

func TestConnectivityAndComponents(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	if g.Connected() {
		t.Fatal("should be disconnected")
	}
	comps := g.Components()
	if len(comps) != 3 {
		t.Fatalf("components = %v", comps)
	}
	if !path(10).Connected() {
		t.Fatal("path should be connected")
	}
	if !New(0).Connected() {
		t.Fatal("empty graph is connected by convention")
	}
}

func TestBipartite(t *testing.T) {
	if ok, col := cycle(6).Bipartite(); !ok || NumColors(col) != 2 {
		t.Fatal("even cycle must be bipartite with 2 colours")
	}
	if ok, _ := cycle(5).Bipartite(); ok {
		t.Fatal("odd cycle must not be bipartite")
	}
	ok, col := grid(4, 4).Bipartite()
	if !ok || !grid(4, 4).ValidColoring(col) {
		t.Fatal("grid must be bipartite with a valid colouring")
	}
}

func TestPowerGraph(t *testing.T) {
	g := path(5)
	p1 := g.Power(1)
	if p1.M() != g.M() {
		t.Fatalf("Power(1) edges = %d, want %d", p1.M(), g.M())
	}
	p2 := g.Power(2)
	// Path 0-1-2-3-4: distance <= 2 pairs: 4 adjacent + 3 distance-2 = 7.
	if p2.M() != 7 {
		t.Fatalf("Power(2) edges = %d, want 7", p2.M())
	}
	if !p2.HasEdge(0, 2) || p2.HasEdge(0, 3) {
		t.Fatal("Power(2) adjacency wrong")
	}
}

func TestGreedyAndDSATURColoring(t *testing.T) {
	graphs := map[string]*Graph{
		"path":    path(10),
		"cycle5":  cycle(5),
		"grid4x4": grid(4, 4),
	}
	for name, g := range graphs {
		for _, col := range [][]int{g.GreedyColoring(nil), g.DSATURColoring()} {
			if !g.ValidColoring(col) {
				t.Errorf("%s: invalid colouring %v", name, col)
			}
		}
	}
	// DSATUR on bipartite graphs should find 2 colours.
	if c := grid(4, 4).DSATURColoring(); NumColors(c) != 2 {
		t.Errorf("DSATUR grid colours = %d, want 2", NumColors(c))
	}
	if c := cycle(5).DSATURColoring(); NumColors(c) != 3 {
		t.Errorf("DSATUR C5 colours = %d, want 3", NumColors(c))
	}
}

func TestValidColoringRejectsBadInput(t *testing.T) {
	g := path(3)
	if g.ValidColoring([]int{0, 0, 1}) {
		t.Fatal("conflicting colouring accepted")
	}
	if g.ValidColoring([]int{0, 1}) {
		t.Fatal("short colouring accepted")
	}
}

func TestRandomConnectedSubset(t *testing.T) {
	g := grid(5, 5)
	rng := rand.New(rand.NewSource(7))
	for _, size := range []int{1, 4, 9, 16, 25} {
		sub := g.RandomConnectedSubset(size, rng)
		if len(sub) != size {
			t.Fatalf("size %d: got %v", size, sub)
		}
		ind, _ := g.InducedSubgraph(sub)
		if !ind.Connected() {
			t.Fatalf("size %d: subset %v not connected", size, sub)
		}
	}
	if got := g.RandomConnectedSubset(26, rng); got != nil {
		t.Fatalf("oversized subset should be nil, got %v", got)
	}
	if got := g.RandomConnectedSubset(0, rng); got != nil {
		t.Fatalf("zero-size subset should be nil, got %v", got)
	}
}

func TestRandomConnectedSubsetIsSeeded(t *testing.T) {
	g := grid(6, 6)
	a := g.RandomConnectedSubset(10, rand.New(rand.NewSource(42)))
	b := g.RandomConnectedSubset(10, rand.New(rand.NewSource(42)))
	if len(a) != len(b) {
		t.Fatal("seeded subsets differ in size")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seeded subsets differ: %v vs %v", a, b)
		}
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := cycle(6)
	sub, orig := g.InducedSubgraph([]int{0, 1, 2, 5})
	if sub.N() != 4 {
		t.Fatalf("N = %d", sub.N())
	}
	// Edges among {0,1,2,5}: (0,1),(1,2),(0,5) → 3 edges.
	if sub.M() != 3 {
		t.Fatalf("M = %d, want 3", sub.M())
	}
	if orig[0] != 0 || orig[3] != 5 {
		t.Fatalf("orig = %v", orig)
	}
}

// Property: any greedy colouring uses at most maxDegree+1 colours.
func TestQuickGreedyColorBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		g := New(n)
		for i := 0; i < n*2; i++ {
			g.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		maxDeg := 0
		for v := 0; v < n; v++ {
			if g.Degree(v) > maxDeg {
				maxDeg = g.Degree(v)
			}
		}
		col := g.GreedyColoring(nil)
		return g.ValidColoring(col) && NumColors(col) <= maxDeg+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: DSATUR always yields a valid colouring on random graphs.
func TestQuickDSATURValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(25)
		g := New(n)
		for i := 0; i < n*3/2; i++ {
			g.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		return g.ValidColoring(g.DSATURColoring())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: shortest path length equals BFS distance.
func TestQuickShortestPathMatchesDistance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		g := New(n)
		for i := 0; i < n*2; i++ {
			g.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		src, dst := rng.Intn(n), rng.Intn(n)
		d := g.Distances(src)[dst]
		p := g.ShortestPath(src, dst)
		if d < 0 {
			return p == nil
		}
		return len(p) == d+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
