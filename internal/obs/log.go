package obs

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// NewLogger builds a slog.Logger from the -log-level / -log-format flag
// values shared by the daemons and CLIs. Level is one of debug|info|warn|
// error; format is text|json.
func NewLogger(w io.Writer, level, format string) (*slog.Logger, error) {
	var lvl slog.Level
	switch strings.ToLower(level) {
	case "", "info":
		lvl = slog.LevelInfo
	case "debug":
		lvl = slog.LevelDebug
	case "warn", "warning":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown log level %q (want debug|info|warn|error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch strings.ToLower(format) {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("unknown log format %q (want text|json)", format)
	}
}
