package obs

import (
	"bufio"
	"fmt"
	"strings"
	"sync"
	"testing"
)

// parseExposition is a minimal Prometheus text-format scanner used across
// the test suite: it validates the line grammar the scrapers depend on and
// returns sample name → value. Comment lines must announce a family before
// its samples appear.
func parseExposition(t *testing.T, text string) map[string]float64 {
	t.Helper()
	samples := map[string]float64{}
	typed := map[string]string{}
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			switch parts[3] {
			case "counter", "gauge", "histogram":
			default:
				t.Fatalf("unknown metric type in %q", line)
			}
			typed[parts[2]] = parts[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("unknown comment line: %q", line)
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed sample line: %q", line)
		}
		series, valStr := line[:sp], line[sp+1:]
		var val float64
		if valStr == "+Inf" {
			val = 0 // not expected in sample values
		} else if _, err := fmt.Sscanf(valStr, "%g", &val); err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		name := series
		if i := strings.IndexByte(series, '{'); i >= 0 {
			name = series[:i]
			if !strings.HasSuffix(series, "}") {
				t.Fatalf("unterminated label set: %q", line)
			}
		}
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name,
			"_bucket"), "_sum"), "_count")
		if _, ok := typed[name]; !ok {
			if _, ok := typed[base]; !ok {
				t.Fatalf("sample %q appears before its TYPE line", line)
			}
		}
		samples[series] = val
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return samples
}

func TestCounterExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "Operations.")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("Value = %d, want 5", c.Value())
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	got := parseExposition(t, b.String())
	if got["test_ops_total"] != 5 {
		t.Fatalf("exposed = %v, want 5", got["test_ops_total"])
	}
}

func TestGaugeAndFuncs(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("test_depth", "Depth.")
	g.Set(7)
	g.Add(-2)
	r.GaugeFunc("test_polled", "Polled.", func() float64 { return 1.5 })
	r.CounterFunc("test_polled_total", "Polled counter.", func() uint64 { return 42 })
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	got := parseExposition(t, b.String())
	if got["test_depth"] != 5 || got["test_polled"] != 1.5 || got["test_polled_total"] != 42 {
		t.Fatalf("exposed = %v", got)
	}
}

func TestCounterVec(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("test_req_total", "Requests.", "route", "code")
	cv.With("/v1/plans", "200").Add(3)
	cv.With("/v1/plans", "200").Inc() // same child
	cv.With("/metrics", "200").Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	got := parseExposition(t, b.String())
	if got[`test_req_total{route="/v1/plans",code="200"}`] != 4 {
		t.Fatalf("labelled counter = %v", got)
	}
	if got[`test_req_total{route="/metrics",code="200"}`] != 1 {
		t.Fatalf("labelled counter = %v", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_latency_seconds", "Latency.", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("Count = %d, want 4", h.Count())
	}
	if diff := h.Sum() - 5.555; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("Sum = %v, want 5.555", h.Sum())
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	got := parseExposition(t, b.String())
	for series, want := range map[string]float64{
		`test_latency_seconds_bucket{le="0.01"}`: 1,
		`test_latency_seconds_bucket{le="0.1"}`:  2,
		`test_latency_seconds_bucket{le="1"}`:    3,
		`test_latency_seconds_bucket{le="+Inf"}`: 4,
		`test_latency_seconds_count`:             4,
	} {
		if got[series] != want {
			t.Fatalf("%s = %v, want %v\nfull:\n%s", series, got[series], want, b.String())
		}
	}
}

func TestHistogramVec(t *testing.T) {
	r := NewRegistry()
	hv := r.HistogramVec("test_plan_seconds", "Plan latency.", []float64{1}, "topology")
	hv.With("grid").Observe(0.5)
	hv.With("grid").Observe(2)
	hv.With("falcon").Observe(0.1)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	got := parseExposition(t, b.String())
	if got[`test_plan_seconds_bucket{topology="grid",le="1"}`] != 1 {
		t.Fatalf("grid le=1 = %v\n%s", got, b.String())
	}
	if got[`test_plan_seconds_count{topology="grid"}`] != 2 ||
		got[`test_plan_seconds_count{topology="falcon"}`] != 1 {
		t.Fatalf("counts = %v", got)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("test_esc_total", "Escapes.", "v")
	cv.With("a\"b\\c\nd").Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `test_esc_total{v="a\"b\\c\nd"} 1`
	if !strings.Contains(b.String(), want) {
		t.Fatalf("output %q missing %q", b.String(), want)
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup_total", "x")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.Counter("dup_total", "x")
}

func TestNamesSorted(t *testing.T) {
	r := NewRegistry()
	r.Counter("zz_total", "z")
	r.Gauge("aa_depth", "a")
	got := r.Names()
	if len(got) != 2 || got[0] != "aa_depth" || got[1] != "zz_total" {
		t.Fatalf("Names = %v", got)
	}
}

// TestRegistryConcurrentHammer drives every metric kind from many
// goroutines while exposition runs concurrently; meaningful under -race.
func TestRegistryConcurrentHammer(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hammer_ops_total", "ops")
	g := r.Gauge("hammer_depth", "depth")
	cv := r.CounterVec("hammer_req_total", "req", "route")
	h := r.Histogram("hammer_seconds", "lat", nil)
	hv := r.HistogramVec("hammer_plan_seconds", "lat", nil, "topo")
	routes := []string{"/a", "/b", "/c"}
	topos := []string{"grid", "falcon", "eagle"}

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				cv.With(routes[j%len(routes)]).Inc()
				h.Observe(float64(j) / 1000)
				hv.With(topos[j%len(topos)]).Observe(float64(j) / 500)
			}
		}(i)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := 0; j < 50; j++ {
			var b strings.Builder
			if err := r.WritePrometheus(&b); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	got := parseExposition(t, b.String())
	if got["hammer_ops_total"] != 8*500 {
		t.Fatalf("ops = %v, want %d", got["hammer_ops_total"], 8*500)
	}
	if got["hammer_depth"] != 0 {
		t.Fatalf("depth = %v, want 0", got["hammer_depth"])
	}
	if got["hammer_seconds_count"] != 8*500 {
		t.Fatalf("histogram count = %v, want %d", got["hammer_seconds_count"], 8*500)
	}
}
