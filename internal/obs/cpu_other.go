//go:build !unix

package obs

import "time"

// cpuNow has no portable implementation off unix; spans then report
// wall time only.
func cpuNow() time.Duration { return 0 }
