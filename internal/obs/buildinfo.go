package obs

import (
	"fmt"
	"runtime/debug"
)

// BuildInfo identifies the running binary: Go toolchain, module version,
// and — when built from a git checkout — the VCS revision and dirty flag.
// Bench results and bug reports carry it so they are attributable to a
// commit.
type BuildInfo struct {
	GoVersion string `json:"go_version"`
	Version   string `json:"version,omitempty"`
	Revision  string `json:"revision,omitempty"`
	Time      string `json:"build_time,omitempty"`
	Dirty     bool   `json:"dirty,omitempty"`
}

// Build reads the binary's embedded build metadata. Fields missing from the
// build (e.g. no VCS stamping under `go test`) stay zero.
func Build() BuildInfo {
	b := BuildInfo{}
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return b
	}
	b.GoVersion = info.GoVersion
	if v := info.Main.Version; v != "" && v != "(devel)" {
		b.Version = v
	}
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			b.Revision = s.Value
		case "vcs.time":
			b.Time = s.Value
		case "vcs.modified":
			b.Dirty = s.Value == "true"
		}
	}
	return b
}

// String renders a one-line version banner for -version flags.
func (b BuildInfo) String() string {
	rev := b.Revision
	if len(rev) > 12 {
		rev = rev[:12]
	}
	if rev == "" {
		rev = "unknown"
	}
	if b.Dirty {
		rev += "-dirty"
	}
	v := b.Version
	if v == "" {
		v = "devel"
	}
	return fmt.Sprintf("%s (rev %s, %s)", v, rev, b.GoVersion)
}
