//go:build unix

package obs

import (
	"syscall"
	"time"
)

// cpuNow returns the process's cumulative CPU time (user + system). Costs
// about a microsecond per call, which is why only coarse spans sample it.
func cpuNow() time.Duration {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return time.Duration(ru.Utime.Nano() + ru.Stime.Nano())
}
