// Package obs is the observability core shared by the engine and the
// server: an aggregating span tracer for per-stage timing attribution, a
// small Prometheus-compatible metrics registry, structured-logging helpers,
// and build metadata.
//
// The tracer is deliberately not an event log. A placement run executes the
// same inner stages hundreds of times (one gradient evaluation per Nesterov
// iteration), so recording one node per StartSpan would allocate per
// iteration and produce trees too large to ship in a result document.
// Instead every Span is an *aggregating* node keyed by name-under-parent:
// repeated Start/End cycles on the same child fold into one node
// (count++, wall += elapsed), which keeps the tree topology deterministic
// for a given option set and makes the snapshot a compact per-stage
// breakdown rather than a timeline.
//
// All Span and Timer methods are safe on nil receivers and do nothing, so
// the no-op default ("tracing disabled") is a nil *Span threaded through
// the same code paths at zero cost beyond a pointer test.
package obs

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Span is one aggregating node in a trace tree. Concurrent Start/End on the
// same Span is safe: wall/CPU folds are atomic adds, and child creation is
// mutex-guarded.
type Span struct {
	name string
	// cpu gates process-CPU sampling for this node. CPU time comes from
	// getrusage (about a microsecond per sample), so only coarse stage
	// spans opt in; per-iteration sub-spans stay wall-only to keep tracing
	// overhead inside the engine's budget.
	cpu bool

	count  atomic.Int64
	wallNS atomic.Int64
	cpuNS  atomic.Int64

	mu       sync.Mutex
	order    []*Span
	children map[string]*Span
	workers  []time.Duration
	notes    []string
}

// NewSpan returns a root span with CPU sampling enabled.
func NewSpan(name string) *Span {
	return &Span{name: name, cpu: true}
}

// Name reports the span's name ("" on nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Child returns the wall-only child span with the given name, creating it
// on first use. Successive calls with the same name return the same node.
func (s *Span) Child(name string) *Span {
	return s.child(name, false)
}

// ChildCPU is Child with process-CPU sampling enabled. Intended for coarse
// stage spans, not per-iteration ones.
func (s *Span) ChildCPU(name string) *Span {
	return s.child(name, true)
}

func (s *Span) child(name string, cpu bool) *Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if c, ok := s.children[name]; ok {
		return c
	}
	c := &Span{name: name, cpu: cpu}
	if s.children == nil {
		s.children = map[string]*Span{}
	}
	s.children[name] = c
	s.order = append(s.order, c)
	return c
}

// Timer measures one Start/End interval. It is a plain value so that
// starting and ending a span never heap-allocates.
type Timer struct {
	span *Span
	wall time.Time
	cpu  time.Duration
}

// Start begins an interval on s. The returned Timer must be ended exactly
// once (End on the zero Timer is a no-op).
func (s *Span) Start() Timer {
	if s == nil {
		return Timer{}
	}
	return s.StartAt(time.Now())
}

// StartAt is Start with an explicit wall start, for callers that want the
// interval to cover work done before the span tree existed (the engine
// creates its tracer only after the plan-cache lookup misses, but the root
// span should still cover normalization and the lookup itself).
func (s *Span) StartAt(wall time.Time) Timer {
	if s == nil {
		return Timer{}
	}
	t := Timer{span: s, wall: wall}
	if s.cpu {
		t.cpu = cpuNow()
	}
	return t
}

// End closes the interval and folds it into the span.
func (t Timer) End() {
	s := t.span
	if s == nil {
		return
	}
	s.count.Add(1)
	s.wallNS.Add(int64(time.Since(t.wall)))
	if s.cpu {
		if now := cpuNow(); now > 0 && now >= t.cpu {
			s.cpuNS.Add(int64(now - t.cpu))
		}
	}
}

// SetWorkers records per-worker busy time (index = worker id) on the span,
// replacing any previous attribution. The engine calls this once per
// placement run with the parallel pool's busy clocks.
func (s *Span) SetWorkers(busy []time.Duration) {
	if s == nil || len(busy) == 0 {
		return
	}
	cp := make([]time.Duration, len(busy))
	copy(cp, busy)
	s.mu.Lock()
	s.workers = cp
	s.mu.Unlock()
}

// Note attaches a free-form annotation to the span (e.g. "parallelism
// clamped to 2 CPUs", delta-eval hit rates). Notes ride along in snapshots
// in insertion order; a duplicate of an already recorded note is dropped, so
// re-running a stage does not repeat its annotations. Safe on nil.
func (s *Span) Note(msg string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, have := range s.notes {
		if have == msg {
			return
		}
	}
	s.notes = append(s.notes, msg)
}

// Node is an exported snapshot of one span. Children preserve first-use
// order, which is deterministic for a fixed option set.
type Node struct {
	Name     string
	Count    int64
	Wall     time.Duration
	CPU      time.Duration
	Workers  []time.Duration
	Notes    []string
	Children []*Node
}

// Snapshot exports the span tree rooted at s. Safe to call while spans are
// still being updated (values are read atomically); nil yields nil.
func (s *Span) Snapshot() *Node {
	if s == nil {
		return nil
	}
	n := &Node{
		Name:  s.name,
		Count: s.count.Load(),
		Wall:  time.Duration(s.wallNS.Load()),
		CPU:   time.Duration(s.cpuNS.Load()),
	}
	s.mu.Lock()
	if len(s.workers) > 0 {
		n.Workers = make([]time.Duration, len(s.workers))
		copy(n.Workers, s.workers)
	}
	if len(s.notes) > 0 {
		n.Notes = make([]string, len(s.notes))
		copy(n.Notes, s.notes)
	}
	kids := make([]*Span, len(s.order))
	copy(kids, s.order)
	s.mu.Unlock()
	for _, c := range kids {
		n.Children = append(n.Children, c.Snapshot())
	}
	return n
}

// SortedChildren returns the node's children sorted by descending wall
// time — the order a human wants in a breakdown report.
func (n *Node) SortedChildren() []*Node {
	out := make([]*Node, len(n.Children))
	copy(out, n.Children)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Wall > out[j].Wall })
	return out
}

type spanCtxKey struct{}

// ContextWithSpan returns ctx carrying s. A nil span leaves ctx unchanged,
// so untraced runs pay nothing.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanCtxKey{}, s)
}

// SpanFrom extracts the span carried by ctx, or nil. Backends use this to
// pick up the engine's stage span without the public StageState having to
// expose internal types.
func SpanFrom(ctx context.Context) *Span {
	s, _ := ctx.Value(spanCtxKey{}).(*Span)
	return s
}
