package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry holds a fixed set of metrics and renders them in the Prometheus
// text exposition format (version 0.0.4). It implements just the subset the
// server needs — counters, gauges, histograms, and their labelled variants —
// on the standard library, because the repo takes no dependencies.
//
// Registration order is exposition order, and registering the same name
// twice panics: metric sets are wired once at startup, so a duplicate is a
// programmer error worth failing loudly on.
type Registry struct {
	mu      sync.Mutex
	metrics []metric
	names   map[string]bool
}

type metric interface {
	metricName() string
	expose(w io.Writer) error
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: map[string]bool{}}
}

func (r *Registry) register(m metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.names[m.metricName()] {
		panic("obs: duplicate metric " + m.metricName())
	}
	r.names[m.metricName()] = true
	r.metrics = append(r.metrics, m)
}

// Names returns every registered metric name, sorted. Histogram names are
// base names; their _bucket/_sum/_count series are implied.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.names))
	for n := range r.names {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// WritePrometheus renders every metric in registration order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	ms := make([]metric, len(r.metrics))
	copy(ms, r.metrics)
	r.mu.Unlock()
	for _, m := range ms {
		if err := m.expose(w); err != nil {
			return err
		}
	}
	return nil
}

func writeHeader(w io.Writer, name, help, typ string) error {
	_, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	return err
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// formatLabels renders {k="v",...} for parallel name/value slices, or ""
// when there are none.
func formatLabels(names, values []string) string {
	if len(names) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(labelEscaper.Replace(values[i]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// Counter is a monotonically increasing value.
type Counter struct {
	name, help string
	v          atomic.Uint64
}

// Counter registers and returns a new counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{name: name, help: help}
	r.register(c)
	return c
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value reads the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

func (c *Counter) metricName() string { return c.name }

func (c *Counter) expose(w io.Writer) error {
	if err := writeHeader(w, c.name, c.help, "counter"); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s %d\n", c.name, c.v.Load())
	return err
}

// CounterFunc is a counter whose value is polled at exposition time — used
// for counts owned elsewhere (the engine pool's cache counters).
type CounterFunc struct {
	name, help string
	fn         func() uint64
}

// CounterFunc registers a polled counter.
func (r *Registry) CounterFunc(name, help string, fn func() uint64) {
	r.register(&CounterFunc{name: name, help: help, fn: fn})
}

func (c *CounterFunc) metricName() string { return c.name }

func (c *CounterFunc) expose(w io.Writer) error {
	if err := writeHeader(w, c.name, c.help, "counter"); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s %d\n", c.name, c.fn())
	return err
}

// Gauge is a value that can go up and down.
type Gauge struct {
	name, help string
	v          atomic.Int64
}

// Gauge registers and returns a new gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{name: name, help: help}
	r.register(g)
	return g
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds delta (may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value reads the gauge.
func (g *Gauge) Value() int64 { return g.v.Load() }

func (g *Gauge) metricName() string { return g.name }

func (g *Gauge) expose(w io.Writer) error {
	if err := writeHeader(w, g.name, g.help, "gauge"); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s %d\n", g.name, g.v.Load())
	return err
}

// GaugeFunc is a gauge polled at exposition time.
type GaugeFunc struct {
	name, help string
	fn         func() float64
}

// GaugeFunc registers a polled gauge.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(&GaugeFunc{name: name, help: help, fn: fn})
}

func (g *GaugeFunc) metricName() string { return g.name }

func (g *GaugeFunc) expose(w io.Writer) error {
	if err := writeHeader(w, g.name, g.help, "gauge"); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s %s\n", g.name, formatFloat(g.fn()))
	return err
}

// CounterVec is a counter family partitioned by labels.
type CounterVec struct {
	name, help string
	labels     []string

	mu   sync.Mutex
	kids map[string]*vecCounter
	keys []string
}

type vecCounter struct {
	values []string
	c      Counter
}

// CounterVec registers a labelled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	cv := &CounterVec{name: name, help: help, labels: labels, kids: map[string]*vecCounter{}}
	r.register(cv)
	return cv
}

func vecKey(values []string) string { return strings.Join(values, "\x1f") }

// With returns the child counter for the given label values (one per
// declared label, in order).
func (cv *CounterVec) With(values ...string) *Counter {
	if len(values) != len(cv.labels) {
		panic("obs: label cardinality mismatch for " + cv.name)
	}
	cv.mu.Lock()
	defer cv.mu.Unlock()
	k := vecKey(values)
	c, ok := cv.kids[k]
	if !ok {
		c = &vecCounter{values: append([]string(nil), values...)}
		c.c.name = cv.name
		cv.kids[k] = c
		cv.keys = append(cv.keys, k)
		sort.Strings(cv.keys)
	}
	return &c.c
}

func (cv *CounterVec) metricName() string { return cv.name }

func (cv *CounterVec) expose(w io.Writer) error {
	if err := writeHeader(w, cv.name, cv.help, "counter"); err != nil {
		return err
	}
	cv.mu.Lock()
	defer cv.mu.Unlock()
	for _, k := range cv.keys {
		c := cv.kids[k]
		if _, err := fmt.Fprintf(w, "%s%s %d\n",
			cv.name, formatLabels(cv.labels, c.values), c.c.Value()); err != nil {
			return err
		}
	}
	return nil
}

// DefLatencyBuckets are the default latency histogram bounds, in seconds:
// sub-millisecond fsyncs through multi-second plans.
var DefLatencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30,
}

// Histogram counts observations into cumulative le-buckets.
type Histogram struct {
	name, help string
	labels     []string // label names when part of a vec
	values     []string // label values when part of a vec
	bounds     []float64
	counts     []atomic.Uint64 // len(bounds)+1; last is +Inf
	sumBits    atomic.Uint64
	total      atomic.Uint64
}

func newHistogram(name, help string, buckets []float64) *Histogram {
	if len(buckets) == 0 {
		buckets = DefLatencyBuckets
	}
	b := append([]float64(nil), buckets...)
	sort.Float64s(b)
	return &Histogram{name: name, help: help, bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Histogram registers a histogram with the given bucket upper bounds
// (nil = DefLatencyBuckets).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	h := newHistogram(name, help, buckets)
	r.register(h)
	return h
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.total.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count reports total observations.
func (h *Histogram) Count() uint64 { return h.total.Load() }

// Sum reports the running sum of observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

func (h *Histogram) metricName() string { return h.name }

func (h *Histogram) expose(w io.Writer) error {
	if err := writeHeader(w, h.name, h.help, "histogram"); err != nil {
		return err
	}
	return h.exposeSeries(w)
}

// exposeSeries writes the _bucket/_sum/_count lines (no header), merging
// the le label into any vec labels.
func (h *Histogram) exposeSeries(w io.Writer) error {
	cum := uint64(0)
	for i, bound := range append(h.bounds, math.Inf(1)) {
		cum += h.counts[i].Load()
		names := append(append([]string(nil), h.labels...), "le")
		values := append(append([]string(nil), h.values...), formatFloat(bound))
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", h.name, formatLabels(names, values), cum); err != nil {
			return err
		}
	}
	ls := formatLabels(h.labels, h.values)
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", h.name, ls, formatFloat(h.Sum())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", h.name, ls, h.total.Load())
	return err
}

// HistogramVec is a histogram family partitioned by labels.
type HistogramVec struct {
	name, help string
	labels     []string
	buckets    []float64

	mu   sync.Mutex
	kids map[string]*Histogram
	keys []string
}

// HistogramVec registers a labelled histogram family.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	hv := &HistogramVec{name: name, help: help, labels: labels, buckets: buckets, kids: map[string]*Histogram{}}
	r.register(hv)
	return hv
}

// With returns the child histogram for the given label values.
func (hv *HistogramVec) With(values ...string) *Histogram {
	if len(values) != len(hv.labels) {
		panic("obs: label cardinality mismatch for " + hv.name)
	}
	hv.mu.Lock()
	defer hv.mu.Unlock()
	k := vecKey(values)
	h, ok := hv.kids[k]
	if !ok {
		h = newHistogram(hv.name, hv.help, hv.buckets)
		h.labels = hv.labels
		h.values = append([]string(nil), values...)
		hv.kids[k] = h
		hv.keys = append(hv.keys, k)
		sort.Strings(hv.keys)
	}
	return h
}

func (hv *HistogramVec) metricName() string { return hv.name }

func (hv *HistogramVec) expose(w io.Writer) error {
	if err := writeHeader(w, hv.name, hv.help, "histogram"); err != nil {
		return err
	}
	hv.mu.Lock()
	defer hv.mu.Unlock()
	for _, k := range hv.keys {
		if err := hv.kids[k].exposeSeries(w); err != nil {
			return err
		}
	}
	return nil
}
