package obs

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestNilSpanIsNoOp(t *testing.T) {
	var s *Span
	if got := s.Child("x"); got != nil {
		t.Fatalf("nil.Child = %v, want nil", got)
	}
	if got := s.ChildCPU("x"); got != nil {
		t.Fatalf("nil.ChildCPU = %v, want nil", got)
	}
	tm := s.Start()
	tm.End() // must not panic
	s.SetWorkers([]time.Duration{time.Second})
	if got := s.Snapshot(); got != nil {
		t.Fatalf("nil.Snapshot = %v, want nil", got)
	}
	if got := s.Name(); got != "" {
		t.Fatalf("nil.Name = %q, want empty", got)
	}
}

func TestSpanAggregates(t *testing.T) {
	root := NewSpan("plan")
	child := root.Child("place")
	for i := 0; i < 5; i++ {
		tm := child.Start()
		tm.End()
	}
	if again := root.Child("place"); again != child {
		t.Fatal("Child with same name returned a different node")
	}
	n := root.Snapshot()
	if len(n.Children) != 1 {
		t.Fatalf("children = %d, want 1 (aggregated)", len(n.Children))
	}
	c := n.Children[0]
	if c.Name != "place" || c.Count != 5 {
		t.Fatalf("child = %q count %d, want place count 5", c.Name, c.Count)
	}
	if c.Wall < 0 {
		t.Fatalf("negative wall %v", c.Wall)
	}
}

func TestSpanChildOrderIsFirstUse(t *testing.T) {
	root := NewSpan("plan")
	for _, name := range []string{"stage", "place", "legalize", "place"} {
		root.Child(name)
	}
	n := root.Snapshot()
	want := []string{"stage", "place", "legalize"}
	if len(n.Children) != len(want) {
		t.Fatalf("children = %d, want %d", len(n.Children), len(want))
	}
	for i, w := range want {
		if n.Children[i].Name != w {
			t.Fatalf("child[%d] = %q, want %q", i, n.Children[i].Name, w)
		}
	}
}

func TestSpanWallCoversSleep(t *testing.T) {
	s := NewSpan("plan")
	tm := s.Start()
	time.Sleep(10 * time.Millisecond)
	tm.End()
	if w := s.Snapshot().Wall; w < 5*time.Millisecond {
		t.Fatalf("wall = %v, want >= 5ms", w)
	}
}

func TestStartAtExtendsInterval(t *testing.T) {
	s := NewSpan("plan")
	tm := s.StartAt(time.Now().Add(-time.Second))
	tm.End()
	if w := s.Snapshot().Wall; w < time.Second {
		t.Fatalf("wall = %v, want >= 1s (StartAt backdated)", w)
	}
}

func TestSetWorkersSnapshot(t *testing.T) {
	s := NewSpan("place")
	busy := []time.Duration{3 * time.Millisecond, 5 * time.Millisecond}
	s.SetWorkers(busy)
	busy[0] = 0 // snapshot must have copied
	n := s.Snapshot()
	if len(n.Workers) != 2 || n.Workers[0] != 3*time.Millisecond {
		t.Fatalf("workers = %v, want [3ms 5ms]", n.Workers)
	}
}

func TestSpanConcurrentUse(t *testing.T) {
	root := NewSpan("plan")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tm := root.Child("hot").Start()
				tm.End()
			}
		}()
	}
	wg.Wait()
	if c := root.Snapshot().Children[0].Count; c != 8*200 {
		t.Fatalf("count = %d, want %d", c, 8*200)
	}
}

func TestContextRoundTrip(t *testing.T) {
	if got := SpanFrom(context.Background()); got != nil {
		t.Fatalf("SpanFrom(empty) = %v, want nil", got)
	}
	ctx := ContextWithSpan(context.Background(), nil)
	if got := SpanFrom(ctx); got != nil {
		t.Fatalf("SpanFrom(ctx with nil span) = %v, want nil", got)
	}
	s := NewSpan("plan")
	ctx = ContextWithSpan(context.Background(), s)
	if got := SpanFrom(ctx); got != s {
		t.Fatalf("SpanFrom = %v, want the stored span", got)
	}
}

func TestSortedChildren(t *testing.T) {
	n := &Node{Children: []*Node{
		{Name: "a", Wall: 1}, {Name: "b", Wall: 3}, {Name: "c", Wall: 2},
	}}
	got := n.SortedChildren()
	if got[0].Name != "b" || got[1].Name != "c" || got[2].Name != "a" {
		t.Fatalf("sorted order = %v %v %v", got[0].Name, got[1].Name, got[2].Name)
	}
	if n.Children[0].Name != "a" {
		t.Fatal("SortedChildren mutated the node")
	}
}

func TestCPUTimeOnCoarseSpan(t *testing.T) {
	s := NewSpan("plan") // roots sample CPU
	tm := s.Start()
	// Burn a little CPU so getrusage has something to report.
	x := 0.0
	for i := 0; i < 1_000_000; i++ {
		x += float64(i % 7)
	}
	_ = x
	tm.End()
	n := s.Snapshot()
	// On platforms without getrusage CPU stays zero; only assert it never
	// goes negative and that wall was recorded.
	if n.CPU < 0 || n.Wall <= 0 {
		t.Fatalf("cpu=%v wall=%v", n.CPU, n.Wall)
	}
}
