package poisson

import (
	"math"
	"testing"
)

// cosineDensity fills the solver's density with a pure basis mode
// ρ = cos(w_u·x)·cos(w_v·y); the exact solution is ψ = ρ/(w_u²+w_v²).
func cosineDensity(s *Solver, u, v int) (wu, wv float64) {
	wu = math.Pi * float64(u) / (float64(s.NX) * s.HX)
	wv = math.Pi * float64(v) / (float64(s.NY) * s.HY)
	for j := 0; j < s.NY; j++ {
		y := (float64(j) + 0.5) * s.HY
		for i := 0; i < s.NX; i++ {
			x := (float64(i) + 0.5) * s.HX
			s.Density[j*s.NX+i] = math.Cos(wu*x) * math.Cos(wv*y)
		}
	}
	return wu, wv
}

func TestSolveExactOnBasisMode(t *testing.T) {
	s := NewSolver(32, 16, 0.5, 0.25)
	for _, uv := range [][2]int{{1, 0}, {0, 1}, {2, 3}, {5, 1}} {
		wu, wv := cosineDensity(s, uv[0], uv[1])
		s.Solve()
		lambda := wu*wu + wv*wv
		for j := 0; j < s.NY; j++ {
			for i := 0; i < s.NX; i++ {
				idx := j*s.NX + i
				want := s.Density[idx] / lambda
				if math.Abs(s.Psi[idx]-want) > 1e-9 {
					t.Fatalf("mode %v: ψ[%d,%d] = %g, want %g", uv, i, j, s.Psi[idx], want)
				}
			}
		}
	}
}

func TestFieldIsNegativeGradientOfPsi(t *testing.T) {
	s := NewSolver(32, 32, 0.5, 0.5)
	wu, wv := cosineDensity(s, 2, 1)
	s.Solve()
	lambda := wu*wu + wv*wv
	// Analytic: ψ = cos(wu·x)cos(wv·y)/λ →
	// Ex = −∂ψ/∂x = wu·sin(wu·x)cos(wv·y)/λ.
	for j := 0; j < s.NY; j++ {
		y := (float64(j) + 0.5) * s.HY
		for i := 0; i < s.NX; i++ {
			x := (float64(i) + 0.5) * s.HX
			idx := j*s.NX + i
			wantEx := wu * math.Sin(wu*x) * math.Cos(wv*y) / lambda
			wantEy := wv * math.Cos(wu*x) * math.Sin(wv*y) / lambda
			if math.Abs(s.Ex[idx]-wantEx) > 1e-9 {
				t.Fatalf("Ex[%d,%d] = %g, want %g", i, j, s.Ex[idx], wantEx)
			}
			if math.Abs(s.Ey[idx]-wantEy) > 1e-9 {
				t.Fatalf("Ey[%d,%d] = %g, want %g", i, j, s.Ey[idx], wantEy)
			}
		}
	}
}

func TestConstantDensityGivesZeroField(t *testing.T) {
	s := NewSolver(16, 16, 1, 1)
	for i := range s.Density {
		s.Density[i] = 3.7
	}
	s.Solve()
	for i := range s.Psi {
		if math.Abs(s.Psi[i]) > 1e-9 || math.Abs(s.Ex[i]) > 1e-9 || math.Abs(s.Ey[i]) > 1e-9 {
			t.Fatalf("constant density must give zero potential/field, got ψ=%g Ex=%g Ey=%g",
				s.Psi[i], s.Ex[i], s.Ey[i])
		}
	}
	if e := s.Energy(); math.Abs(e) > 1e-9 {
		t.Fatalf("constant density energy = %g, want 0", e)
	}
}

// A positive blob of charge at the centre must produce an outward-pointing
// field (charges repel → the placer spreads overlapping instances apart).
func TestCentralChargeFieldPointsOutward(t *testing.T) {
	s := NewSolver(32, 32, 1, 1)
	cx, cy := 16, 16
	s.Density[cy*s.NX+cx] = 100
	s.Solve()
	// Sample to the right of the blob: Ex must be positive (pointing away).
	right := s.Ex[cy*s.NX+(cx+4)]
	left := s.Ex[cy*s.NX+(cx-4)]
	up := s.Ey[(cy+4)*s.NX+cx]
	down := s.Ey[(cy-4)*s.NX+cx]
	if right <= 0 || left >= 0 || up <= 0 || down >= 0 {
		t.Fatalf("field must point away from charge: right=%g left=%g up=%g down=%g",
			right, left, up, down)
	}
	// Potential must peak at the charge.
	if s.Psi[cy*s.NX+cx] <= s.Psi[cy*s.NX+cx+8] {
		t.Fatal("potential must peak at the charge location")
	}
}

func TestEnergyDecreasesWhenChargeSpreads(t *testing.T) {
	concentrated := NewSolver(16, 16, 1, 1)
	concentrated.Density[8*16+8] = 16
	concentrated.Solve()
	spread := NewSolver(16, 16, 1, 1)
	for _, idx := range []int{8*16 + 8, 8*16 + 4, 8*16 + 12, 4*16 + 8, 12*16 + 8,
		4*16 + 4, 4*16 + 12, 12*16 + 4, 12*16 + 12, 0, 15, 240, 255, 8, 128, 143} {
		spread.Density[idx] += 1
	}
	spread.Solve()
	if spread.Energy() >= concentrated.Energy() {
		t.Fatalf("spread energy %g must be below concentrated energy %g",
			spread.Energy(), concentrated.Energy())
	}
}

func TestSolveDiscreteLaplacianResidual(t *testing.T) {
	// The spectral solution must satisfy the 5-point discrete Laplacian with
	// mirrored (Neumann) ghost cells, up to discretization error of the
	// smooth input. Use a smooth two-mode density.
	s := NewSolver(64, 64, 0.25, 0.25)
	for j := 0; j < s.NY; j++ {
		y := (float64(j) + 0.5) * s.HY
		for i := 0; i < s.NX; i++ {
			x := (float64(i) + 0.5) * s.HX
			s.Density[j*s.NX+i] = math.Cos(math.Pi*x/16)*math.Cos(math.Pi*y/8) +
				0.5*math.Cos(math.Pi*2*x/16)
		}
	}
	s.Solve()
	get := func(i, j int) float64 {
		// Mirror at boundaries (Neumann).
		if i < 0 {
			i = 0
		}
		if i >= s.NX {
			i = s.NX - 1
		}
		if j < 0 {
			j = 0
		}
		if j >= s.NY {
			j = s.NY - 1
		}
		return s.Psi[j*s.NX+i]
	}
	var maxResid float64
	for j := 1; j < s.NY-1; j++ {
		for i := 1; i < s.NX-1; i++ {
			lap := (get(i+1, j)-2*get(i, j)+get(i-1, j))/(s.HX*s.HX) +
				(get(i, j+1)-2*get(i, j)+get(i, j-1))/(s.HY*s.HY)
			resid := math.Abs(lap + s.Density[j*s.NX+i])
			if resid > maxResid {
				maxResid = resid
			}
		}
	}
	// O(h²) accuracy: with h = 0.25 and modes of wavelength ≥ 8, the residual
	// should be well below 1% of the unit-amplitude density.
	if maxResid > 0.01 {
		t.Fatalf("discrete Laplacian residual %g too large", maxResid)
	}
}

func TestAtBilinearInterpolation(t *testing.T) {
	s := NewSolver(4, 4, 1, 1)
	f := make([]float64, 16)
	// f(x, y) = x + 10y at bin centres.
	for j := 0; j < 4; j++ {
		for i := 0; i < 4; i++ {
			f[j*4+i] = (float64(i) + 0.5) + 10*(float64(j)+0.5)
		}
	}
	// Bilinear interpolation of a linear function is exact in the interior.
	got := s.At(f, 2.0, 2.0)
	want := 2.0 + 10*2.0
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("At(2,2) = %g, want %g", got, want)
	}
	// Clamped outside the domain: no panic, finite value.
	if v := s.At(f, -5, 100); math.IsNaN(v) || math.IsInf(v, 0) {
		t.Fatalf("clamped At = %g", v)
	}
}

func TestNewSolverValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { NewSolver(12, 16, 1, 1) },
		func() { NewSolver(16, 16, 0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func BenchmarkSolve128(b *testing.B) {
	s := NewSolver(128, 128, 0.2, 0.2)
	cosineDensity(s, 3, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Solve()
	}
}
