// Package poisson implements the spectral Poisson solver at the heart of the
// electrostatic ("eDensity") placement model. Given a charge-density field ρ
// sampled on a regular bin grid, it solves
//
//	∇²ψ = −ρ   with zero-Neumann boundary conditions,
//
// by expanding ρ in the cosine basis (DCT), dividing by the eigenvalues
// w_u² + w_v² of the Laplacian, and synthesizing the potential ψ and the
// electric field E = −∇ψ with the mixed cosine/sine transforms. This is the
// formulation of ePlace [Lu et al.] adopted by the paper (§IV-C1): instances
// act as positive charges, and the field spreads them toward uniform density.
package poisson

import (
	"fmt"
	"math"

	"qplacer/internal/fft"
	"qplacer/internal/obs"
	"qplacer/internal/parallel"
)

// Solver holds the grid geometry, the input density and the solution fields.
// Fields are row-major with index [y*NX+x]. Not safe for concurrent use.
type Solver struct {
	NX, NY int     // bin counts (powers of two)
	HX, HY float64 // physical bin dimensions

	Density []float64 // input charge density ρ (overwritten only by caller)
	Psi     []float64 // potential ψ
	Ex, Ey  []float64 // field components E = −∇ψ

	grid   *fft.Grid2D
	pool   *parallel.Pool
	coeff  []float64 // DCT coefficients of ρ, then scaled
	bufPsi []float64
	bufEx  []float64
	bufEy  []float64
	wx     []float64 // w_u = πu/(NX·HX)
	wy     []float64 // w_v = πv/(NY·HY)

	// Trace spans (nil = untraced): the solve as a whole, its forward and
	// synthesis transforms, and the eigenvalue-scaling pass.
	spanSolve *obs.Span
	spanFFT   *obs.Span
	spanSpec  *obs.Span
}

// NewSolver returns a solver for an nx×ny grid of hx×hy bins.
func NewSolver(nx, ny int, hx, hy float64) *Solver {
	if !fft.IsPow2(nx) || !fft.IsPow2(ny) {
		panic(fmt.Sprintf("poisson: grid %dx%d must be powers of two", nx, ny))
	}
	if hx <= 0 || hy <= 0 {
		panic("poisson: bin dimensions must be positive")
	}
	s := &Solver{
		NX: nx, NY: ny, HX: hx, HY: hy,
		Density: make([]float64, nx*ny),
		Psi:     make([]float64, nx*ny),
		Ex:      make([]float64, nx*ny),
		Ey:      make([]float64, nx*ny),
		grid:    fft.NewGrid2D(nx, ny),
		coeff:   make([]float64, nx*ny),
		bufPsi:  make([]float64, nx*ny),
		bufEx:   make([]float64, nx*ny),
		bufEy:   make([]float64, nx*ny),
		wx:      make([]float64, nx),
		wy:      make([]float64, ny),
	}
	for u := 0; u < nx; u++ {
		s.wx[u] = math.Pi * float64(u) / (float64(nx) * hx)
	}
	for v := 0; v < ny; v++ {
		s.wy[v] = math.Pi * float64(v) / (float64(ny) * hy)
	}
	return s
}

// Parallelize runs subsequent Solves on the pool: the grid's independent
// row/column transforms and the per-row coefficient scaling fan out, so the
// solution is bit-identical at every pool size. The pool is borrowed, not
// owned: the caller closes it. nil restores the serial path.
func (s *Solver) Parallelize(p *parallel.Pool) {
	s.pool = p
	s.grid.Parallelize(p)
}

// SetSpan attaches a trace span to the solver: subsequent Solves fold their
// timing into it, broken into "fft" (forward DCT + synthesis transforms) and
// "spectral" (eigenvalue scaling). nil detaches.
func (s *Solver) SetSpan(sp *obs.Span) {
	s.spanSolve = sp
	s.spanFFT = sp.Child("fft")
	s.spanSpec = sp.Child("spectral")
}

// Solve computes Psi, Ex and Ey from the current Density.
func (s *Solver) Solve() {
	solveTimer := s.spanSolve.Start()
	defer solveTimer.End()
	nx, ny := s.NX, s.NY
	copy(s.coeff, s.Density)
	fwdTimer := s.spanFFT.Start()
	s.grid.DCT2D(s.coeff)
	fwdTimer.End()

	// Normalize the analysis coefficients so that SynthCosCos (with its
	// halved u=0 / v=0 terms) reconstructs the input exactly, then divide by
	// the Laplacian eigenvalues. Rows are independent (owner-computes), so
	// the fan-out preserves bits.
	norm := 4 / float64(nx*ny)
	specTimer := s.spanSpec.Start()
	s.pool.For(ny, func(_, lo, hi int) {
		for v := lo; v < hi; v++ {
			for u := 0; u < nx; u++ {
				i := v*nx + u
				if u == 0 && v == 0 {
					s.bufPsi[i], s.bufEx[i], s.bufEy[i] = 0, 0, 0
					continue
				}
				lambda := s.wx[u]*s.wx[u] + s.wy[v]*s.wy[v]
				c := s.coeff[i] * norm / lambda
				s.bufPsi[i] = c
				s.bufEx[i] = c * s.wx[u]
				s.bufEy[i] = c * s.wy[v]
			}
		}
	})

	specTimer.End()

	synthTimer := s.spanFFT.Start()
	copy(s.Psi, s.bufPsi)
	s.grid.SynthCosCos(s.Psi)
	copy(s.Ex, s.bufEx)
	s.grid.SynthSinCos(s.Ex)
	copy(s.Ey, s.bufEy)
	s.grid.SynthCosSin(s.Ey)
	synthTimer.End()
}

// Energy returns the total electrostatic energy ½·Σ ρ·ψ·(bin area) of the
// last Solve. It is the density-penalty value used by the placer.
func (s *Solver) Energy() float64 {
	var e float64
	for i := range s.Psi {
		e += s.Density[i] * s.Psi[i]
	}
	return e * s.HX * s.HY / 2
}

// At returns the bilinear interpolation of field f (one of Psi/Ex/Ey) at the
// physical point (x, y), where the domain spans [0, NX·HX] × [0, NY·HY] and
// sample (i, j) sits at the bin centre ((i+0.5)·HX, (j+0.5)·HY).
func (s *Solver) At(f []float64, x, y float64) float64 {
	fx := x/s.HX - 0.5
	fy := y/s.HY - 0.5
	x0 := int(math.Floor(fx))
	y0 := int(math.Floor(fy))
	tx := fx - float64(x0)
	ty := fy - float64(y0)
	clampX := func(i int) int {
		if i < 0 {
			return 0
		}
		if i >= s.NX {
			return s.NX - 1
		}
		return i
	}
	clampY := func(j int) int {
		if j < 0 {
			return 0
		}
		if j >= s.NY {
			return s.NY - 1
		}
		return j
	}
	x0c, x1c := clampX(x0), clampX(x0+1)
	y0c, y1c := clampY(y0), clampY(y0+1)
	f00 := f[y0c*s.NX+x0c]
	f10 := f[y0c*s.NX+x1c]
	f01 := f[y1c*s.NX+x0c]
	f11 := f[y1c*s.NX+x1c]
	return f00*(1-tx)*(1-ty) + f10*tx*(1-ty) + f01*(1-tx)*ty + f11*tx*ty
}
