// Package physics implements the superconducting-circuit models the paper's
// evaluation rests on (§II–III): transmon and resonator parameters, parasitic
// capacitive coupling (Eq. 6), effective (dispersive) coupling g²/Δ,
// resonator-induced-phase gate rate (Eq. 2), substrate box modes (§III-C),
// and the decoherence / crosstalk error models of the fidelity metric
// (Eq. 15–16).
//
// Unit conventions, chosen once and used everywhere:
//
//	frequency    GHz (ordinary frequency f = ω/2π)
//	coupling     MHz (g/2π, as quoted in the circuit-QED literature)
//	capacitance  fF
//	distance     mm
//	time         ns
package physics

import "math"

// Physical and device constants (§V-C of the paper unless noted).
const (
	// SpeedOfLight is c in mm/s.
	SpeedOfLight = 2.998e11
	// WaveSpeed is the phase velocity v0 on-chip in mm/s (≈1.3e8 m/s).
	WaveSpeed = 1.3e11
	// EpsSilicon is the relative permittivity of the silicon substrate.
	EpsSilicon = 11.7

	// QubitSizeMM is the transmon pocket edge length (400 µm).
	QubitSizeMM = 0.4
	// QubitPadMM is the qubit padding distance d_q (400 µm).
	QubitPadMM = 0.4
	// ResonatorPadMM is the resonator padding distance d_r (100 µm).
	ResonatorPadMM = 0.1
	// ResonatorWidthMM is the effective resonator ribbon width used for
	// area accounting (matches the Human-baseline formula D = L·d_r/(L_q+2d_q)).
	ResonatorWidthMM = 0.1

	// QubitFreqLoGHz..QubitFreqHiGHz is the available qubit spectrum Ω.
	QubitFreqLoGHz = 4.8
	QubitFreqHiGHz = 5.2
	// ResFreqLoGHz..ResFreqHiGHz is the available resonator spectrum Ω_r.
	ResFreqLoGHz = 6.0
	ResFreqHiGHz = 7.0
	// DetuneThresholdGHz is Δc: pairs closer than this in frequency are
	// treated as resonant (crosstalk-susceptible).
	DetuneThresholdGHz = 0.1

	// AnharmonicityMHz is α/2π ≈ −310 MHz for the fixed-frequency transmons.
	AnharmonicityMHz = -310

	// QubitCapFF is the transmon shunt capacitance C_q.
	QubitCapFF = 70
	// ResonatorCapFF is the lumped-equivalent capacitance of a λ/2 CPW
	// resonator (~1.6 pF for ~10 mm of line).
	ResonatorCapFF = 1600

	// T1Ns and T2Ns are the relaxation and dephasing times (100 µs / 80 µs).
	T1Ns = 100_000
	T2Ns = 80_000

	// Gate1QNs and Gate2QNs are single-qubit and RIP two-qubit gate
	// durations.
	Gate1QNs = 35
	Gate2QNs = 250

	// Err1Q and Err2Q are the intrinsic (non-crosstalk) gate error rates.
	Err1Q = 3e-4
	Err2Q = 8e-3

	// EngineeredCouplingMHz is the intentional qubit–qubit coupling g
	// quoted in §III-A (20–30 MHz); used for the Fig. 4 sweep.
	EngineeredCouplingMHz = 25
)

// ResonatorLengthMM returns the half-wave resonator length L = v0/(2f) in mm
// for a resonance frequency in GHz (Eq. in §V-C).
func ResonatorLengthMM(fGHz float64) float64 {
	if fGHz <= 0 {
		panic("physics: non-positive frequency")
	}
	return WaveSpeed / (2 * fGHz * 1e9)
}

// ResonatorFreqGHz is the inverse of ResonatorLengthMM.
func ResonatorFreqGHz(lengthMM float64) float64 {
	if lengthMM <= 0 {
		panic("physics: non-positive length")
	}
	return WaveSpeed / (2 * lengthMM) / 1e9
}

// ParasiticCapQubitFF models the stray capacitance between two transmon
// pockets separated edge-to-edge by d mm. The exponential form and its
// constants are calibrated against the finite-difference extractor in
// package emsim (the stand-in for the paper's Qiskit Metal simulation,
// Fig. 5b): sub-fF at typical padding distances, a few fF at near contact.
func ParasiticCapQubitFF(dMM float64) float64 {
	if dMM < 0 {
		dMM = 0
	}
	const (
		c0    = 2.0  // fF at contact
		decay = 0.22 // mm
	)
	return c0 * math.Exp(-dMM/decay)
}

// ParasiticCapResonatorFF models the stray capacitance between two resonator
// ribbons at edge-to-edge distance d mm running parallel over adjLen mm
// ("the parasitic capacitance depends on the adjacent length", §V-C).
func ParasiticCapResonatorFF(dMM, adjLenMM float64) float64 {
	if dMM < 0 {
		dMM = 0
	}
	if adjLenMM < 0 {
		adjLenMM = 0
	}
	const (
		cPerLen = 1.5  // fF per mm of adjacency at contact
		decay   = 0.15 // mm
	)
	return cPerLen * adjLenMM * math.Exp(-dMM/decay)
}

// CouplingFromCapMHz implements Eq. 6:
//
//	g = ½·√(ω1·ω2) · Cp / √((C1+Cp)(C2+Cp)),
//
// with frequencies in GHz and capacitances in fF, returning g in MHz.
func CouplingFromCapMHz(f1GHz, f2GHz, cpFF, c1FF, c2FF float64) float64 {
	if cpFF <= 0 {
		return 0
	}
	gGHz := 0.5 * math.Sqrt(f1GHz*f2GHz) * cpFF /
		math.Sqrt((c1FF+cpFF)*(c2FF+cpFF))
	return gGHz * 1e3
}

// QubitParasiticCouplingMHz composes the distance model with Eq. 6 for two
// qubits at frequencies f1, f2 separated edge-to-edge by d mm.
func QubitParasiticCouplingMHz(f1GHz, f2GHz, dMM float64) float64 {
	cp := ParasiticCapQubitFF(dMM)
	return CouplingFromCapMHz(f1GHz, f2GHz, cp, QubitCapFF, QubitCapFF)
}

// ResonatorParasiticCouplingMHz is the resonator–resonator analogue.
func ResonatorParasiticCouplingMHz(f1GHz, f2GHz, dMM, adjLenMM float64) float64 {
	cp := ParasiticCapResonatorFF(dMM, adjLenMM)
	return CouplingFromCapMHz(f1GHz, f2GHz, cp, ResonatorCapFF, ResonatorCapFF)
}

// EffectiveCouplingMHz returns the dispersive (residual) coupling
// g_eff = g²/Δ of Eq. 5, with g in MHz and the detuning Δ in MHz.
// A zero detuning returns g itself (the resonant limit).
func EffectiveCouplingMHz(gMHz, detuningMHz float64) float64 {
	d := math.Abs(detuningMHz)
	if d == 0 {
		return math.Abs(gMHz)
	}
	return gMHz * gMHz / d
}

// InteractionStrengthMHz interpolates smoothly between the resonant limit
// (g at Δ = 0) and the dispersive limit (g²/Δ for Δ ≫ g):
//
//	g_int = g² / √(g² + Δ²).
//
// This is the curve of Fig. 4 and the strength used by the noise model.
func InteractionStrengthMHz(gMHz, detuningMHz float64) float64 {
	g := math.Abs(gMHz)
	if g == 0 {
		return 0
	}
	d := detuningMHz
	return g * g / math.Sqrt(g*g+d*d)
}

// DispersiveShiftMHz returns χ = g²/Δ for a qubit–resonator pair (Eq. 8).
func DispersiveShiftMHz(gMHz, detuningMHz float64) float64 {
	return EffectiveCouplingMHz(gMHz, detuningMHz)
}

// RIPRateMHz implements the scaling of Eq. 2 for the resonator-induced
// phase gate: θ̇ ∝ n̄ · χ/Δcd with n̄ = (Ω·Vd / 2Δcd)². driveMHz is |Ω·Vd|,
// chiMHz the dispersive shift, and detuneDriveMHz the drive–resonator
// detuning Δcd. The result is the phase accumulation rate in MHz
// (rad/µs÷2π); the CZ gate completes when θ̇·t = π/4.
func RIPRateMHz(driveMHz, chiMHz, detuneDriveMHz float64) float64 {
	d := math.Abs(detuneDriveMHz)
	if d == 0 {
		return math.Inf(1)
	}
	nbar := (driveMHz / (2 * d)) * (driveMHz / (2 * d))
	return nbar * chiMHz / d
}

// RIPGateTimeNs returns the CZ gate duration t = (π/4)/θ̇ in ns for a given
// RIP rate in MHz (θ̇ interpreted as ordinary frequency).
func RIPGateTimeNs(rateMHz float64) float64 {
	if rateMHz <= 0 {
		return math.Inf(1)
	}
	// θ = 2π·f·t ⇒ t = (π/4)/(2π·f) = 1/(8f); f in MHz ⇒ t in µs/…
	return 1e3 / (8 * rateMHz)
}

// TM110GHz returns the first spurious box-mode frequency of an a×b mm
// substrate with relative permittivity epsR (§III-C):
//
//	f = c/(2√εr) · √((1/a)² + (1/b)²).
//
// For εr = 11.7 this gives 12.4 GHz at 5×5 mm² and 6.2 GHz at 10×10 mm²,
// matching the values quoted in the paper.
func TM110GHz(aMM, bMM, epsR float64) float64 {
	if aMM <= 0 || bMM <= 0 || epsR <= 0 {
		panic("physics: invalid box-mode arguments")
	}
	return SpeedOfLight / (2 * math.Sqrt(epsR)) *
		math.Hypot(1/aMM, 1/bMM) / 1e9
}

// TransitionProbability returns the Rabi-style worst-case population
// transfer sin²(2π·g_eff·t) for coupling g_eff (MHz) acting over t (ns),
// with the phase capped at π/2 so the error saturates at 1 and stays
// monotone in g_eff·t. This is Eq. 16 with the sign typo corrected
// (the paper's Pr[t] = sin²(g_eff·t)).
func TransitionProbability(gEffMHz, tNs float64) float64 {
	phase := 2 * math.Pi * math.Abs(gEffMHz) * 1e-3 * tNs // MHz·ns → rad
	if phase > math.Pi/2 {
		phase = math.Pi / 2
	}
	s := math.Sin(phase)
	return s * s
}

// DecoherenceError returns the probability of a decoherence event for a
// qubit exposed for t ns with the given T1/T2 (ns):
// ε = 1 − exp(−t·(1/2T1 + 1/2T2)).
func DecoherenceError(tNs, t1Ns, t2Ns float64) float64 {
	if tNs <= 0 {
		return 0
	}
	rate := 0.5/t1Ns + 0.5/t2Ns
	return 1 - math.Exp(-tNs*rate)
}
