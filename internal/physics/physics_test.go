package physics

import (
	"math"
	"testing"
	"testing/quick"
)

func near(a, b, rel float64) bool {
	return math.Abs(a-b) <= rel*math.Max(math.Abs(a), math.Abs(b))
}

func TestResonatorLengthMatchesPaperRange(t *testing.T) {
	// §V-C: resonator lengths 10.8–9.2 mm for 6.0–7.0 GHz.
	l6 := ResonatorLengthMM(6.0)
	l7 := ResonatorLengthMM(7.0)
	if !near(l6, 10.83, 0.01) {
		t.Errorf("L(6 GHz) = %v, want ≈10.83", l6)
	}
	if !near(l7, 9.29, 0.01) {
		t.Errorf("L(7 GHz) = %v, want ≈9.29", l7)
	}
	// Inverse consistency.
	if f := ResonatorFreqGHz(l6); !near(f, 6.0, 1e-9) {
		t.Errorf("roundtrip freq = %v", f)
	}
}

func TestResonatorLengthPanicsOnBadInput(t *testing.T) {
	for _, fn := range []func(){
		func() { ResonatorLengthMM(0) },
		func() { ResonatorFreqGHz(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestParasiticCapDecreasesWithDistance(t *testing.T) {
	prev := math.Inf(1)
	for d := 0.0; d <= 2.0; d += 0.1 {
		c := ParasiticCapQubitFF(d)
		if c <= 0 || c >= prev {
			t.Fatalf("Cp(%v) = %v not strictly decreasing (prev %v)", d, c, prev)
		}
		prev = c
	}
	// Negative distances clamp to contact value.
	if ParasiticCapQubitFF(-1) != ParasiticCapQubitFF(0) {
		t.Error("negative distance should clamp")
	}
}

func TestParasiticCapMagnitudes(t *testing.T) {
	// Near contact: ~fF scale (strong crosstalk); at 2 mm: negligible.
	if c := ParasiticCapQubitFF(0.1); c < 0.5 || c > 5 {
		t.Errorf("Cp(0.1mm) = %v fF, want O(1) fF", c)
	}
	if c := ParasiticCapQubitFF(2.0); c > 0.01 {
		t.Errorf("Cp(2mm) = %v fF, want negligible", c)
	}
}

func TestEngineeredCouplingScale(t *testing.T) {
	// §III-A: an intentional coupler gives g ≈ 20–30 MHz. With Eq. 6 and
	// C_q = 70 fF that corresponds to Cp ≈ 0.5–0.9 fF.
	g := CouplingFromCapMHz(5.0, 5.0, 0.7, QubitCapFF, QubitCapFF)
	if g < 20 || g > 30 {
		t.Errorf("g(0.7 fF) = %v MHz, want 20–30", g)
	}
}

func TestCouplingFromCapEdgeCases(t *testing.T) {
	if g := CouplingFromCapMHz(5, 5, 0, 70, 70); g != 0 {
		t.Errorf("zero Cp should give zero coupling, got %v", g)
	}
	// Monotone in Cp.
	if CouplingFromCapMHz(5, 5, 0.2, 70, 70) >= CouplingFromCapMHz(5, 5, 0.5, 70, 70) {
		t.Error("coupling must grow with Cp")
	}
}

func TestEffectiveCoupling(t *testing.T) {
	if g := EffectiveCouplingMHz(25, 0); g != 25 {
		t.Errorf("resonant limit = %v, want 25", g)
	}
	if g := EffectiveCouplingMHz(25, 250); !near(g, 2.5, 1e-12) {
		t.Errorf("g_eff = %v, want 2.5", g)
	}
	if g := EffectiveCouplingMHz(25, -250); !near(g, 2.5, 1e-12) {
		t.Errorf("negative detuning must use |Δ|: %v", g)
	}
}

func TestInteractionStrengthLimits(t *testing.T) {
	// Peak at resonance equals g (Fig. 4).
	if g := InteractionStrengthMHz(25, 0); !near(g, 25, 1e-12) {
		t.Errorf("peak = %v", g)
	}
	// Far detuned: ≈ g²/Δ.
	got := InteractionStrengthMHz(25, 1000)
	want := 25.0 * 25 / 1000
	if !near(got, want, 0.01) {
		t.Errorf("dispersive limit = %v, want ≈%v", got, want)
	}
	// Symmetric in detuning sign, monotone decreasing in |Δ|.
	if InteractionStrengthMHz(25, 100) != InteractionStrengthMHz(25, -100) {
		t.Error("must be symmetric in detuning")
	}
	if InteractionStrengthMHz(25, 50) <= InteractionStrengthMHz(25, 150) {
		t.Error("must decay with detuning")
	}
	if g := InteractionStrengthMHz(0, 50); g != 0 {
		t.Errorf("zero g must give 0, got %v", g)
	}
}

func TestRIPRateAndGateTime(t *testing.T) {
	// Stronger drive, larger χ, smaller detuning → faster gate.
	slow := RIPRateMHz(50, 2, 200)
	fast := RIPRateMHz(100, 2, 200)
	if fast <= slow {
		t.Error("RIP rate must grow with drive amplitude")
	}
	tSlow := RIPGateTimeNs(slow)
	tFast := RIPGateTimeNs(fast)
	if tFast >= tSlow {
		t.Error("gate time must shrink with rate")
	}
	if !math.IsInf(RIPGateTimeNs(0), 1) {
		t.Error("zero rate → infinite gate time")
	}
	if !math.IsInf(RIPRateMHz(10, 1, 0), 1) {
		t.Error("zero drive detuning → divergent rate")
	}
}

func TestTM110MatchesPaperNumbers(t *testing.T) {
	// §III-C: TM110 drops from 12.41 GHz (5×5 mm²) to 6.20 GHz (10×10 mm²).
	f5 := TM110GHz(5, 5, EpsSilicon)
	f10 := TM110GHz(10, 10, EpsSilicon)
	if !near(f5, 12.41, 0.005) {
		t.Errorf("TM110(5×5) = %v, want ≈12.41", f5)
	}
	if !near(f10, 6.20, 0.005) {
		t.Errorf("TM110(10×10) = %v, want ≈6.20", f10)
	}
	// Doubling both sides halves the frequency exactly.
	if !near(f5/f10, 2, 1e-9) {
		t.Errorf("scaling ratio = %v", f5/f10)
	}
}

func TestTransitionProbability(t *testing.T) {
	if p := TransitionProbability(0, 1000); p != 0 {
		t.Errorf("zero coupling error = %v", p)
	}
	// Small phase: ε ≈ (2π·g·t·1e-3)².
	p := TransitionProbability(0.01, 100)
	want := math.Pow(2*math.Pi*0.01*1e-3*100, 2)
	if !near(p, want, 0.01) {
		t.Errorf("small-phase ε = %v, want ≈%v", p, want)
	}
	// Saturates at 1, monotone in g.
	if p := TransitionProbability(100, 1e6); p != 1 {
		t.Errorf("saturated ε = %v, want 1", p)
	}
	if TransitionProbability(1, 100) >= TransitionProbability(5, 100) {
		t.Error("ε must grow with coupling before saturation")
	}
}

func TestDecoherenceError(t *testing.T) {
	if e := DecoherenceError(0, T1Ns, T2Ns); e != 0 {
		t.Errorf("zero-time decoherence = %v", e)
	}
	if e := DecoherenceError(-5, T1Ns, T2Ns); e != 0 {
		t.Errorf("negative-time decoherence = %v", e)
	}
	// 1 µs against 100 µs/80 µs: about 1.1%.
	e := DecoherenceError(1000, T1Ns, T2Ns)
	if e < 0.005 || e > 0.03 {
		t.Errorf("ε(1µs) = %v, want ≈1%%", e)
	}
	// Monotone in exposure.
	if DecoherenceError(100, T1Ns, T2Ns) >= DecoherenceError(10000, T1Ns, T2Ns) {
		t.Error("decoherence must grow with time")
	}
}

// Property: parasitic qubit coupling is symmetric in the two frequencies
// and decays with distance.
func TestQuickQubitCouplingProperties(t *testing.T) {
	f := func(a, b, d float64) bool {
		f1 := 4.8 + math.Mod(math.Abs(a), 0.4)
		f2 := 4.8 + math.Mod(math.Abs(b), 0.4)
		dist := math.Mod(math.Abs(d), 3)
		g12 := QubitParasiticCouplingMHz(f1, f2, dist)
		g21 := QubitParasiticCouplingMHz(f2, f1, dist)
		if math.Abs(g12-g21) > 1e-12 {
			return false
		}
		return QubitParasiticCouplingMHz(f1, f2, dist) >=
			QubitParasiticCouplingMHz(f1, f2, dist+0.5)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: resonator coupling scales linearly with adjacency length.
func TestQuickResonatorCouplingAdjacency(t *testing.T) {
	f := func(l float64) bool {
		adj := 0.1 + math.Mod(math.Abs(l), 5)
		c1 := ParasiticCapResonatorFF(0.2, adj)
		c2 := ParasiticCapResonatorFF(0.2, 2*adj)
		return near(c2, 2*c1, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
