// Package parallel provides the bounded worker pool behind the placement
// pipeline's hot paths. Work is split into statically partitioned contiguous
// index ranges — one per worker, boundaries a pure function of (n, workers) —
// and every range is processed start-to-end by a single worker. Combined with
// owner-computes accumulation (each output index written by exactly one
// worker, inputs visited in ascending index order), this makes results
// bit-identical to a serial run at every worker count: floating-point sums
// see the same addends in the same order no matter how the ranges are
// scheduled.
package parallel

import (
	"sync"
	"time"
)

// Pool is a bounded set of persistent workers. A nil Pool (or one built with
// workers <= 1) runs everything serially on the calling goroutine, so hot
// paths need no branching between serial and parallel modes. A Pool must be
// released with Close; it is safe for use by one dispatching goroutine at a
// time (the pipeline's model: one run drives one pool).
type Pool struct {
	workers int
	tasks   []chan task
	wg      sync.WaitGroup
	// busy accumulates each worker's in-task wall time. Slot w is written
	// only by worker w (slot 0 by the dispatching goroutine), and readers go
	// through WorkerBusy after For returns, so the barrier's happens-before
	// makes the slots race-free without atomics.
	busy []time.Duration
}

type task struct {
	fn      func(worker, lo, hi int)
	lo, hi  int
	worker  int
	barrier *sync.WaitGroup
}

// New returns a pool of the given size. Sizes <= 1 return nil: the nil pool
// is the serial pool.
func New(workers int) *Pool {
	if workers <= 1 {
		return nil
	}
	p := &Pool{workers: workers, busy: make([]time.Duration, workers)}
	// workers-1 goroutines; the dispatching goroutine always runs range 0
	// itself, so a pool never sits idle while its owner blocks.
	p.tasks = make([]chan task, workers-1)
	for i := range p.tasks {
		ch := make(chan task)
		p.tasks[i] = ch
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for t := range ch {
				start := time.Now()
				t.fn(t.worker, t.lo, t.hi)
				p.busy[t.worker] += time.Since(start)
				t.barrier.Done()
			}
		}()
	}
	return p
}

// Workers returns the pool size; a nil pool reports 1.
func (p *Pool) Workers() int {
	if p == nil {
		return 1
	}
	return p.workers
}

// For partitions [0, n) into Workers() contiguous ranges and runs
// fn(worker, lo, hi) once per non-empty range, blocking until all complete.
// Range boundaries depend only on n and the pool size. fn must not call For
// on the same pool.
func (p *Pool) For(n int, fn func(worker, lo, hi int)) {
	if p == nil || n <= 0 {
		if n > 0 {
			fn(0, 0, n)
		}
		return
	}
	var barrier sync.WaitGroup
	for w := 1; w < p.workers; w++ {
		lo, hi := w*n/p.workers, (w+1)*n/p.workers
		if lo >= hi {
			continue
		}
		barrier.Add(1)
		p.tasks[w-1] <- task{fn: fn, lo: lo, hi: hi, worker: w, barrier: &barrier}
	}
	if hi := n / p.workers; hi > 0 {
		start := time.Now()
		fn(0, 0, hi)
		p.busy[0] += time.Since(start)
	}
	barrier.Wait()
}

// WorkerBusy returns a copy of each worker's cumulative in-task wall time
// (index = worker id, 0 the dispatching goroutine). Call it from the
// dispatching goroutine between For calls; a nil pool returns nil.
func (p *Pool) WorkerBusy() []time.Duration {
	if p == nil {
		return nil
	}
	out := make([]time.Duration, len(p.busy))
	copy(out, p.busy)
	return out
}

// Close releases the pool's goroutines. Close on a nil pool is a no-op;
// double Close panics (like closing a closed channel), so release exactly
// once.
func (p *Pool) Close() {
	if p == nil {
		return
	}
	for _, ch := range p.tasks {
		close(ch)
	}
	p.wg.Wait()
}
