package parallel

import "testing"

func TestGate(t *testing.T) {
	p := New(2)
	defer p.Close()
	if Gate(nil, 1<<30, 0) != nil {
		t.Error("Gate must keep a nil pool nil")
	}
	if Gate(p, 100, 101) != nil {
		t.Error("work below cutoff must gate to serial")
	}
	if Gate(p, 100, 100) != p {
		t.Error("work at cutoff must keep the pool")
	}
	if Gate(p, 100, 0) != p {
		t.Error("zero cutoff must always keep the pool")
	}
}

// TestAutoCutoffsDeterministicPerProcess pins the calibration contract: the
// measurement runs once and every caller sees the same host snapshot, so all
// engines in a process gate identically.
func TestAutoCutoffsDeterministicPerProcess(t *testing.T) {
	a := AutoCutoffs()
	b := AutoCutoffs()
	if a != b {
		t.Fatalf("AutoCutoffs not cached: %+v != %+v", a, b)
	}
	for name, c := range map[string]int{
		"WirelengthItems": a.WirelengthItems,
		"PairItems":       a.PairItems,
		"RasterCells":     a.RasterCells,
		"SolveCells":      a.SolveCells,
		"PointItems":      a.PointItems,
		"ScanCells":       a.ScanCells,
	} {
		if c < 64 || c > 1<<20 {
			t.Errorf("%s = %d outside the clamp range [64, 1<<20]", name, c)
		}
	}
}

// Heavier per-item stages must never get a higher cutoff than lighter ones:
// they amortize dispatch sooner.
func TestAutoCutoffsOrdering(t *testing.T) {
	c := AutoCutoffs()
	if c.WirelengthItems > c.RasterCells {
		t.Errorf("wirelength cutoff %d should not exceed raster cutoff %d",
			c.WirelengthItems, c.RasterCells)
	}
	if c.PairItems > c.ScanCells {
		t.Errorf("pair cutoff %d should not exceed scan cutoff %d",
			c.PairItems, c.ScanCells)
	}
}
