package parallel

import (
	"sync/atomic"
	"testing"
)

// TestCoverage proves every index lands in exactly one range, at sizes
// around the partition edge cases (empty, n < workers, n % workers != 0).
func TestCoverage(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 4, 7} {
		p := New(workers)
		for _, n := range []int{0, 1, 2, 3, 5, 16, 1023} {
			hits := make([]int32, n)
			p.For(n, func(_, lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, h)
				}
			}
		}
		p.Close()
	}
}

// TestStaticPartition pins that range boundaries are a pure function of
// (n, workers): two dispatches see identical ranges.
func TestStaticPartition(t *testing.T) {
	p := New(3)
	defer p.Close()
	collect := func() map[int][2]int {
		out := make(map[int][2]int)
		var mu chan struct{} = make(chan struct{}, 1)
		mu <- struct{}{}
		p.For(100, func(w, lo, hi int) {
			<-mu
			out[w] = [2]int{lo, hi}
			mu <- struct{}{}
		})
		return out
	}
	a, b := collect(), collect()
	if len(a) != len(b) {
		t.Fatalf("partition drifted: %v vs %v", a, b)
	}
	for w, r := range a {
		if b[w] != r {
			t.Fatalf("worker %d range drifted: %v vs %v", w, r, b[w])
		}
	}
}

// TestNilPoolSerial asserts the nil pool runs inline on the caller.
func TestNilPoolSerial(t *testing.T) {
	var p *Pool
	if p.Workers() != 1 {
		t.Fatalf("nil pool workers = %d, want 1", p.Workers())
	}
	ran := false
	p.For(10, func(w, lo, hi int) {
		if w != 0 || lo != 0 || hi != 10 {
			t.Fatalf("nil pool range = (%d, %d, %d), want (0, 0, 10)", w, lo, hi)
		}
		ran = true
	})
	if !ran {
		t.Fatal("nil pool did not run the body")
	}
	p.Close() // no-op, must not panic
}

// TestOwnerComputesDeterminism is the property the placer relies on: with
// per-output accumulation, a float sum is bit-identical at every pool size.
func TestOwnerComputesDeterminism(t *testing.T) {
	const n = 4096
	in := make([]float64, n)
	for i := range in {
		in[i] = 1.0 / float64(i+3)
	}
	sum := func(workers int) []float64 {
		p := New(workers)
		defer p.Close()
		out := make([]float64, n)
		p.For(n, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				// Each output folds a mini prefix in ascending order,
				// mimicking the gradient kernels' incident-edge loops.
				s := 0.0
				for k := 0; k < 8; k++ {
					s += in[(i+k)%n]
				}
				out[i] = s
			}
		})
		return out
	}
	want := sum(1)
	for _, workers := range []int{2, 3, 5} {
		got := sum(workers)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: out[%d] = %v, want %v (bitwise)", workers, i, got[i], want[i])
			}
		}
	}
}
