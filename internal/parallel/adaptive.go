package parallel

import (
	"sync"
	"time"
)

// Cutoffs holds per-stage minimum problem sizes for fanning work out on a
// Pool. A stage whose problem size (items, pairs, cells) is below its cutoff
// runs serially instead: below the cutoff the fork-join dispatch costs more
// than the parallel section saves, which is exactly how a parallel run ends
// up slower than a serial one on small problems. Gating never changes
// results — the serial and parallel paths are bit-identical by construction —
// so cutoffs trade only wall-clock, never determinism.
//
// The zero value disables gating entirely (every stage always fans out),
// preserving the pre-adaptive behaviour for tests and comparisons.
type Cutoffs struct {
	// WirelengthItems gates the per-net wirelength gradient (items =
	// instances folding their incident nets).
	WirelengthItems int
	// PairItems gates the CSR pair-repulsion kernels (items = pairs in the
	// family's active list).
	PairItems int
	// RasterCells gates density rasterization (items = grid cells).
	RasterCells int
	// SolveCells gates the spectral Poisson solve (items = grid cells).
	SolveCells int
	// PointItems gates the embarrassingly parallel per-instance sweeps
	// (field sampling, boundary springs, gradient combine).
	PointItems int
	// ScanCells gates the legalizer's candidate scans (items = cells
	// examined, e.g. n² for the pairwise partner scan).
	ScanCells int
}

// Gate selects the pool for one stage invocation: it returns p when the
// stage's problem size reaches the cutoff, and nil (the serial pool)
// otherwise. A nil input pool stays nil, so callers can gate
// unconditionally.
func Gate(p *Pool, work, cutoff int) *Pool {
	if p == nil || work < cutoff {
		return nil
	}
	return p
}

// defaultCutoffs is the fallback when calibration cannot measure anything
// meaningful (timer too coarse). The values are conservative: small enough
// that mid-size problems still fan out, large enough that toy problems stop
// paying dispatch overhead.
var defaultCutoffs = Cutoffs{
	WirelengthItems: 512,
	PairItems:       1024,
	RasterCells:     4096,
	SolveCells:      2048,
	PointItems:      1024,
	ScanCells:       8192,
}

var (
	autoOnce sync.Once
	autoCut  Cutoffs
)

// AutoCutoffs returns cutoffs calibrated for this host: a one-shot
// measurement (cached for the life of the process, so every engine in a
// process sees the same snapshot) of the pool's fork-join dispatch overhead
// against a reference per-item compute cost. Each stage's cutoff is the
// problem size where the parallel saving starts to clear the dispatch cost
// with a 2× safety margin, scaled by the stage's per-item weight (heavier
// items amortize dispatch sooner, so their cutoff is lower).
//
// Calibration is timing-based, so the cutoffs may differ between hosts or
// runs — which is safe: gating switches between two bit-identical
// implementations, so placements never depend on the calibrated values.
func AutoCutoffs() Cutoffs {
	autoOnce.Do(func() { autoCut = calibrate() })
	return autoCut
}

// calibrate measures dispatch overhead D (one fork-join on a 2-worker pool)
// and the reference per-item cost R (a multiply-add), then derives each
// cutoff as 4·D/(R·weight), clamped to [64, 1<<20].
func calibrate() Cutoffs {
	p := New(2)
	defer p.Close()

	// Minimum over repetitions rejects scheduler noise; the first few
	// iterations also warm the worker goroutines.
	dispatch := time.Duration(1 << 62)
	noop := func(worker, lo, hi int) {}
	for rep := 0; rep < 64; rep++ {
		start := time.Now()
		p.For(2, noop)
		if d := time.Since(start); d < dispatch {
			dispatch = d
		}
	}

	// Reference item: one float multiply-add, measured over a block large
	// enough to outlast timer resolution.
	const block = 1 << 14
	ref := time.Duration(1 << 62)
	acc := 1.0
	for rep := 0; rep < 16; rep++ {
		start := time.Now()
		for i := 0; i < block; i++ {
			acc = acc*1.0000001 + 1e-9
		}
		if d := time.Since(start); d < ref {
			ref = d
		}
	}
	refSink = acc
	perItem := float64(ref.Nanoseconds()) / block
	if perItem <= 0 || dispatch <= 0 {
		return defaultCutoffs
	}

	cutoff := func(weight float64) int {
		c := 4 * float64(dispatch.Nanoseconds()) / (perItem * weight)
		if c < 64 {
			return 64
		}
		if c > 1<<20 {
			return 1 << 20
		}
		return int(c)
	}
	return Cutoffs{
		WirelengthItems: cutoff(16), // incident nets: sqrt-heavy
		PairItems:       cutoff(8),
		RasterCells:     cutoff(4),
		SolveCells:      cutoff(8), // FFT butterflies per cell
		PointItems:      cutoff(8), // bilinear field sampling
		ScanCells:       cutoff(4),
	}
}

// refSink keeps the calibration loop's accumulator observable so the
// compiler cannot delete the reference workload.
var refSink float64
