package anneal

import (
	"context"
	"errors"
	"testing"

	"qplacer/internal/component"
	"qplacer/internal/frequency"
	"qplacer/internal/physics"
	"qplacer/internal/place"
	"qplacer/internal/topology"
)

func buildProblem(t *testing.T, dev *topology.Device) (*component.Netlist, *frequency.CollisionMap) {
	t.Helper()
	a := frequency.Assign(dev, physics.DetuneThresholdGHz)
	nl, err := component.Build(dev, a.QubitFreq, a.ResFreq, component.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return nl, frequency.BuildCollisionMap(nl, physics.DetuneThresholdGHz)
}

func fastConfig() Config {
	cfg := DefaultConfig()
	cfg.Sweeps = 40
	return cfg
}

func TestAnnealDeterministicBySeed(t *testing.T) {
	ctx := context.Background()
	run := func(seed int64) (*component.Netlist, *Result) {
		nl, cm := buildProblem(t, topology.Grid25())
		cfg := fastConfig()
		cfg.Seed = seed
		res, err := Place(ctx, nl, cm, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return nl, res
	}
	nl1, r1 := run(7)
	nl2, r2 := run(7)
	if r1.Sweeps != r2.Sweeps || r1.Accepted != r2.Accepted || r1.Cost != r2.Cost {
		t.Fatalf("same-seed runs diverge: %+v vs %+v", r1, r2)
	}
	for i := range nl1.Instances {
		if nl1.Instances[i].Pos != nl2.Instances[i].Pos {
			t.Fatalf("instance %d position diverges under one seed: %v vs %v",
				i, nl1.Instances[i].Pos, nl2.Instances[i].Pos)
		}
	}

	nl3, _ := run(8)
	same := true
	for i := range nl1.Instances {
		if nl1.Instances[i].Pos != nl3.Instances[i].Pos {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced a bit-identical layout")
	}
}

func TestAnnealImprovesWirelength(t *testing.T) {
	nl, cm := buildProblem(t, topology.Grid25())
	cfg := DefaultConfig()
	cfg.Sweeps = 120
	res, err := Place(context.Background(), nl, cm, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sweeps != cfg.Sweeps || res.Accepted == 0 {
		t.Fatalf("degenerate run: %+v", res)
	}
	if res.Cost < 0 {
		t.Fatalf("negative cost: %+v", res)
	}
	if hpwl := place.HPWL(nl); hpwl <= 0 {
		t.Fatalf("HPWL after annealing = %v", hpwl)
	}
	// Every instance must sit inside the region.
	for i, in := range nl.Instances {
		if !res.Region.Contains(in.Pos) {
			t.Fatalf("instance %d at %v escaped region %v", i, in.Pos, res.Region)
		}
	}
}

func TestAnnealProgressMonotonic(t *testing.T) {
	nl, cm := buildProblem(t, topology.Grid25())
	cfg := fastConfig()
	last := 0
	calls := 0
	cfg.Progress = func(sweep int, _ float64) {
		calls++
		if sweep != last+1 {
			t.Fatalf("sweep %d reported after %d", sweep, last)
		}
		last = sweep
	}
	if _, err := Place(context.Background(), nl, cm, cfg); err != nil {
		t.Fatal(err)
	}
	if calls != cfg.Sweeps {
		t.Fatalf("progress called %d times, want %d", calls, cfg.Sweeps)
	}
}

func TestAnnealCancellation(t *testing.T) {
	nl, cm := buildProblem(t, topology.Grid25())
	ctx, cancel := context.WithCancel(context.Background())
	cfg := fastConfig()
	cfg.Progress = func(sweep int, _ float64) {
		if sweep == 3 {
			cancel()
		}
	}
	if _, err := Place(ctx, nl, cm, cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestAnnealRejectsBadConfig(t *testing.T) {
	nl, cm := buildProblem(t, topology.Grid25())
	bad := DefaultConfig()
	bad.Sweeps = 0
	if _, err := Place(context.Background(), nl, cm, bad); err == nil {
		t.Fatal("zero sweeps must be rejected")
	}
	bad = DefaultConfig()
	bad.TargetDensity = 0
	if _, err := Place(context.Background(), nl, cm, bad); err == nil {
		t.Fatal("zero target density must be rejected")
	}
}

func BenchmarkAnnealGrid(b *testing.B) {
	dev := topology.Grid25()
	a := frequency.Assign(dev, physics.DetuneThresholdGHz)
	for i := 0; i < b.N; i++ {
		nl, err := component.Build(dev, a.QubitFreq, a.ResFreq, component.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		cm := frequency.BuildCollisionMap(nl, physics.DetuneThresholdGHz)
		cfg := DefaultConfig()
		cfg.Sweeps = 40
		if _, err := Place(context.Background(), nl, cm, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
