// Package anneal implements a seeded simulated-annealing global placer: an
// alternative placement backend for the same problem shape the electrostatic
// engine of internal/place solves (cf. quantum-annealing FPGA placement,
// arXiv:2312.15467). The annealer minimizes
//
//	cost = HPWL + w_o·Σ overlap(i,j) + w_f·Σ (R − d_ij)²/R
//
// over single-instance displacement moves with a Metropolis acceptance rule
// and a geometric temperature schedule. The overlap term uses the same charge
// footprints as the electrostatic density field (qubits fully padded,
// segments half-padded), and the frequency term acts on the same collision
// map with the same per-kind cutoff radii, so the two backends optimize
// comparable objectives. Runs are deterministic per seed: a single
// goroutine drives one seeded RNG.
package anneal

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"time"

	"qplacer/internal/component"
	"qplacer/internal/frequency"
	"qplacer/internal/geom"
	"qplacer/internal/obs"
	"qplacer/internal/place"
)

// Config holds the annealer's hyperparameters. The zero value is not valid;
// use DefaultConfig.
type Config struct {
	// Seed drives the single RNG (initial layout jitter, move proposals, and
	// acceptance coins), making runs bit-reproducible.
	Seed int64
	// Sweeps is the number of temperature steps; every sweep proposes as
	// many moves as there are instances, each targeting a uniformly random
	// instance (so a single sweep may propose several moves for one instance
	// and none for another).
	Sweeps int
	// TargetDensity sizes the placement region exactly like the
	// electrostatic engine: side = √(Σ charge areas / D̂).
	TargetDensity float64
	// OverlapWeight scales the pairwise charge-rect overlap penalty.
	OverlapWeight float64
	// FreqWeight scales the frequency-isolation penalty (0 disables, as the
	// Classic baseline requires); FreqCutoffMM / FreqCutoffSegMM are the
	// interaction radii for qubit and segment collision pairs.
	FreqWeight      float64
	FreqCutoffMM    float64
	FreqCutoffSegMM float64

	// Progress, when non-nil, is called once per completed sweep with the
	// 1-based sweep count and the current total cost. It must be fast and
	// non-blocking.
	Progress func(sweep int, cost float64)

	// Span, when non-nil, receives the run's timing breakdown: setup
	// (incidence + initial cost) and the Metropolis sweep loop.
	Span *obs.Span
}

// DefaultConfig returns the annealer's production settings.
func DefaultConfig() Config {
	return Config{
		Seed:            1,
		Sweeps:          300,
		TargetDensity:   0.8,
		OverlapWeight:   8.0,
		FreqWeight:      1.0,
		FreqCutoffMM:    3.0,
		FreqCutoffSegMM: 0.7,
	}
}

// Result reports a finished annealing run.
type Result struct {
	Region    geom.Rect // placement region used for the cost (and legalizer)
	Sweeps    int       // sweeps completed
	Cost      float64   // final total cost
	Accepted  int       // accepted moves
	Runtime   time.Duration
	AvgIterMS float64 // milliseconds per sweep
}

// annealer carries per-run state.
type annealer struct {
	cfg    Config
	nl     *component.Netlist
	region geom.Rect
	rng    *rand.Rand

	xy           []float64 // working positions (2 per instance)
	halfW, halfH []float64 // charge-rect half extents
	nets         [][]int   // instance -> incident net indices
	freqPairs    [][]int   // instance -> collision pair indices
	pairOther    []int32   // pair index*2 -> both endpoints (flattened)
	pairCut      []float64 // pair index -> cutoff radius
	cell         float64   // uniform grid cell (≥ max charge extent)
	grid         map[[2]int][]int
	gridKey      [][2]int // instance -> current bucket
	totalCost    float64
	accepted     int
}

// Place runs the annealer on the netlist, mutating instance positions. The
// collision map may be nil (or FreqWeight 0) for frequency-oblivious runs.
func Place(ctx context.Context, nl *component.Netlist, cm *frequency.CollisionMap, cfg Config) (*Result, error) {
	start := time.Now()
	if cfg.Sweeps <= 0 {
		return nil, fmt.Errorf("anneal: Sweeps must be positive")
	}
	if cfg.TargetDensity <= 0 || cfg.TargetDensity > 1.2 {
		return nil, fmt.Errorf("anneal: target density %v out of range", cfg.TargetDensity)
	}
	n := len(nl.Instances)
	if n == 0 {
		return nil, fmt.Errorf("anneal: empty netlist")
	}

	a := &annealer{cfg: cfg, nl: nl, rng: rand.New(rand.NewSource(cfg.Seed))}
	side := math.Sqrt(place.TotalChargeArea(nl) / cfg.TargetDensity)
	a.region = geom.NewRect(0, 0, side, side)
	setupTimer := cfg.Span.Child("setup").Start()
	a.setup(cm)
	a.initialPositions()
	a.buildGrid()
	a.totalCost = a.fullCost()
	setupTimer.End()

	// Temperature scale: the mean |Δcost| of a burst of random probe moves,
	// so acceptance starts permissive regardless of netlist size, then cools
	// geometrically to a quench.
	t0 := a.probeScale()
	tEnd := t0 * 1e-3
	cool := math.Pow(tEnd/t0, 1/math.Max(1, float64(cfg.Sweeps-1)))

	temp := t0
	sweeps := 0
	sweepTimer := cfg.Span.Child("sweeps").Start()
	for s := 0; s < cfg.Sweeps; s++ {
		if err := ctx.Err(); err != nil {
			sweepTimer.End()
			a.nl.SetPositions(a.xy)
			return nil, err
		}
		// Move radius shrinks with temperature: global shuffles early,
		// local refinement late.
		step := a.region.W() * (0.05 + 0.45*temp/t0)
		for m := 0; m < n; m++ {
			a.tryMove(a.rng.Intn(n), step, temp)
		}
		sweeps++
		temp *= cool
		if cfg.Progress != nil {
			cfg.Progress(sweeps, a.totalCost)
		}
	}
	sweepTimer.End()
	a.nl.SetPositions(a.xy)

	elapsed := time.Since(start)
	return &Result{
		Region:    a.region,
		Sweeps:    sweeps,
		Cost:      a.totalCost,
		Accepted:  a.accepted,
		Runtime:   elapsed,
		AvgIterMS: float64(elapsed.Milliseconds()) / float64(sweeps),
	}, nil
}

// setup precomputes per-instance geometry, net incidence, and collision-pair
// incidence.
func (a *annealer) setup(cm *frequency.CollisionMap) {
	n := len(a.nl.Instances)
	a.halfW = make([]float64, n)
	a.halfH = make([]float64, n)
	maxExtent := 0.0
	for i, in := range a.nl.Instances {
		var w, h float64
		if in.Kind == component.KindQubit {
			w, h = in.PaddedW(), in.PaddedH()
		} else {
			w, h = in.W+in.Pad, in.H+in.Pad
		}
		a.halfW[i], a.halfH[i] = w/2, h/2
		maxExtent = math.Max(maxExtent, math.Max(w, h))
	}
	// A cell at least as large as the biggest charge box means any
	// overlapping pair sits within the 3×3 bucket neighbourhood.
	a.cell = maxExtent

	a.nets = make([][]int, n)
	for ni, net := range a.nl.Nets {
		a.nets[net[0]] = append(a.nets[net[0]], ni)
		a.nets[net[1]] = append(a.nets[net[1]], ni)
	}

	a.freqPairs = make([][]int, n)
	if cm != nil && a.cfg.FreqWeight > 0 {
		for pi, p := range cm.Pairs {
			a.pairOther = append(a.pairOther, int32(p[0]), int32(p[1]))
			cut := a.cfg.FreqCutoffSegMM
			if a.nl.Instances[p[0]].Kind == component.KindQubit {
				cut = a.cfg.FreqCutoffMM
			}
			a.pairCut = append(a.pairCut, cut)
			a.freqPairs[p[0]] = append(a.freqPairs[p[0]], pi)
			a.freqPairs[p[1]] = append(a.freqPairs[p[1]], pi)
		}
	}
}

// initialPositions seeds qubits at their scaled canonical coordinates and
// strings segments along their resonator's edge line — the same warm start
// the electrostatic engine uses, with seeded jitter to break ties.
func (a *annealer) initialPositions() {
	dev := a.nl.Device
	lo, hi := dev.Coords[0], dev.Coords[0]
	for _, p := range dev.Coords {
		lo.X, lo.Y = math.Min(lo.X, p.X), math.Min(lo.Y, p.Y)
		hi.X, hi.Y = math.Max(hi.X, p.X), math.Max(hi.Y, p.Y)
	}
	spanX := math.Max(hi.X-lo.X, 1e-9)
	spanY := math.Max(hi.Y-lo.Y, 1e-9)
	inner := a.region.Inflate(-0.2 * a.region.W())
	jitter := func(scale float64) float64 { return (a.rng.Float64() - 0.5) * scale }
	j := a.region.W() / 50

	a.xy = make([]float64, 2*len(a.nl.Instances))
	for q, instID := range a.nl.QubitInst {
		c := dev.Coords[q]
		a.xy[2*instID] = inner.Lo.X + (c.X-lo.X)/spanX*inner.W() + jitter(j)
		a.xy[2*instID+1] = inner.Lo.Y + (c.Y-lo.Y)/spanY*inner.H() + jitter(j)
	}
	for _, res := range a.nl.Resonators {
		ia := a.nl.QubitInst[res.QubitA]
		ib := a.nl.QubitInst[res.QubitB]
		k := len(res.Segments)
		for s, sid := range res.Segments {
			t := float64(s+1) / float64(k+1)
			a.xy[2*sid] = a.xy[2*ia] + t*(a.xy[2*ib]-a.xy[2*ia]) + jitter(3*j)
			a.xy[2*sid+1] = a.xy[2*ia+1] + t*(a.xy[2*ib+1]-a.xy[2*ia+1]) + jitter(3*j)
		}
	}
	for i := range a.nl.Instances {
		a.clamp(i)
	}
}

// clamp keeps instance i's charge rect inside the region.
func (a *annealer) clamp(i int) {
	r := a.region
	a.xy[2*i] = math.Min(math.Max(a.xy[2*i], r.Lo.X+a.halfW[i]), r.Hi.X-a.halfW[i])
	a.xy[2*i+1] = math.Min(math.Max(a.xy[2*i+1], r.Lo.Y+a.halfH[i]), r.Hi.Y-a.halfH[i])
}

func (a *annealer) bucketOf(i int) [2]int {
	return [2]int{
		int(math.Floor(a.xy[2*i] / a.cell)),
		int(math.Floor(a.xy[2*i+1] / a.cell)),
	}
}

func (a *annealer) buildGrid() {
	a.grid = make(map[[2]int][]int)
	a.gridKey = make([][2]int, len(a.nl.Instances))
	for i := range a.nl.Instances {
		k := a.bucketOf(i)
		a.gridKey[i] = k
		a.grid[k] = append(a.grid[k], i)
	}
}

func (a *annealer) gridMove(i int) {
	k := a.bucketOf(i)
	old := a.gridKey[i]
	if k == old {
		return
	}
	list := a.grid[old]
	for idx, v := range list {
		if v == i {
			list[idx] = list[len(list)-1]
			a.grid[old] = list[:len(list)-1]
			break
		}
	}
	a.gridKey[i] = k
	a.grid[k] = append(a.grid[k], i)
}

// instCost is the cost mass attached to instance i at position (x, y): its
// incident net half-perimeters, its pairwise overlaps with grid neighbours,
// and its frequency-pair penalties. Moving one instance changes exactly
// these terms, so Δcost of a move is instCost(new) − instCost(old).
func (a *annealer) instCost(i int, x, y float64) float64 {
	var cost float64
	for _, ni := range a.nets[i] {
		net := a.nl.Nets[ni]
		o := net[0]
		if o == i {
			o = net[1]
		}
		cost += math.Abs(x-a.xy[2*o]) + math.Abs(y-a.xy[2*o+1])
	}
	bx := int(math.Floor(x / a.cell))
	by := int(math.Floor(y / a.cell))
	for dy := -1; dy <= 1; dy++ {
		for dx := -1; dx <= 1; dx++ {
			for _, j := range a.grid[[2]int{bx + dx, by + dy}] {
				if j == i {
					continue
				}
				ox := math.Min(x+a.halfW[i], a.xy[2*j]+a.halfW[j]) - math.Max(x-a.halfW[i], a.xy[2*j]-a.halfW[j])
				if ox <= 0 {
					continue
				}
				oy := math.Min(y+a.halfH[i], a.xy[2*j+1]+a.halfH[j]) - math.Max(y-a.halfH[i], a.xy[2*j+1]-a.halfH[j])
				if oy <= 0 {
					continue
				}
				cost += a.cfg.OverlapWeight * ox * oy
			}
		}
	}
	for _, pi := range a.freqPairs[i] {
		o := int(a.pairOther[2*pi])
		if o == i {
			o = int(a.pairOther[2*pi+1])
		}
		cut := a.pairCut[pi]
		d := math.Hypot(x-a.xy[2*o], y-a.xy[2*o+1])
		if d < cut {
			gap := cut - d
			cost += a.cfg.FreqWeight * gap * gap / cut
		}
	}
	return cost
}

// fullCost evaluates the whole objective from scratch (used once at start).
// Every term in instCost is a pairwise interaction, so summing instCost over
// all instances counts each net, overlap, and frequency pair exactly twice.
func (a *annealer) fullCost() float64 {
	var sum float64
	for i := range a.nl.Instances {
		sum += a.instCost(i, a.xy[2*i], a.xy[2*i+1])
	}
	return sum / 2
}

// probeScale estimates the cost scale of one move by sampling random
// displacements without committing them.
func (a *annealer) probeScale() float64 {
	n := len(a.nl.Instances)
	step := a.region.W() / 4
	var sum float64
	const probes = 64
	for p := 0; p < probes; p++ {
		i := a.rng.Intn(n)
		ox, oy := a.xy[2*i], a.xy[2*i+1]
		nx := ox + (a.rng.Float64()-0.5)*step
		ny := oy + (a.rng.Float64()-0.5)*step
		sum += math.Abs(a.instCost(i, nx, ny) - a.instCost(i, ox, oy))
	}
	if sum == 0 {
		return 1
	}
	return sum / probes
}

// tryMove proposes one Metropolis move for instance i.
func (a *annealer) tryMove(i int, step, temp float64) {
	ox, oy := a.xy[2*i], a.xy[2*i+1]
	nx := ox + (a.rng.Float64()-0.5)*step
	ny := oy + (a.rng.Float64()-0.5)*step
	nx = math.Min(math.Max(nx, a.region.Lo.X+a.halfW[i]), a.region.Hi.X-a.halfW[i])
	ny = math.Min(math.Max(ny, a.region.Lo.Y+a.halfH[i]), a.region.Hi.Y-a.halfH[i])

	delta := a.instCost(i, nx, ny) - a.instCost(i, ox, oy)
	if delta > 0 && a.rng.Float64() >= math.Exp(-delta/temp) {
		return
	}
	a.xy[2*i], a.xy[2*i+1] = nx, ny
	a.gridMove(i)
	a.totalCost += delta
	a.accepted++
}
