// Package detail implements the qGDP-style detailed-placement stage: after
// legalization claims a discrete site per instance, the passes here permute
// instances over those claimed sites to recover wirelength and frequency
// margin. Every move swaps or reassigns instances within one footprint class
// (identical core size and padding), so overlap-freedom and bounds are
// preserved by construction; an exact HPWL guard additionally rolls back any
// pass that would leave the layout longer than it entered, making the
// never-increase contract unconditional.
package detail

import (
	"context"
	"math/rand"

	"qplacer/internal/component"
	"qplacer/internal/frequency"
	"qplacer/internal/geom"
	"qplacer/internal/mcmf"
	"qplacer/internal/obs"
	"qplacer/internal/parallel"
	"qplacer/internal/place"
)

// Config parameterizes one detailed-placement pass.
type Config struct {
	// Span receives the detail/{candidates,assign,apply} timing breakdown;
	// nil disables tracing.
	Span *obs.Span
	// Workers bounds the cost-matrix fill of the reassignment pass (<= 1
	// runs serial). Like every pipeline stage, results are bit-identical at
	// any worker count: rows are filled owner-computes and the flow solve is
	// sequential.
	Workers int
	// Cutoffs overrides the adaptive-granularity thresholds; nil
	// auto-calibrates when a pool exists, and the zero value always fans out.
	Cutoffs *parallel.Cutoffs
	// Collision is the near-resonant pair map driving the frequency-margin
	// term of the move cost; nil disables the term.
	Collision *frequency.CollisionMap
	// Seed drives the swap pass's candidate sampling (default 1). The
	// reassignment pass is deterministic without randomness.
	Seed int64
	// Rounds caps the reassignment rounds / swap sweeps (default
	// DefaultRounds / DefaultSweeps); both passes stop early once a round
	// yields no improvement.
	Rounds int
	// MaxSet caps the independent set extracted per footprint class per
	// reassignment round, bounding the flow problem (default DefaultMaxSet).
	MaxSet int
	// Progress, when set, is called at the start of every round/sweep with
	// the layout's current HPWL.
	Progress func(step int, hpwl float64)
}

// Result reports one finished pass.
type Result struct {
	Moved      int // instances resting at a different position than they entered
	HPWLBefore float64
	HPWLAfter  float64
}

// Defaults for Config's zero values.
const (
	DefaultRounds = 3
	DefaultSweeps = 4
	DefaultMaxSet = 64
)

// Interaction radii of the frequency-margin cost term, mirroring the
// legalizer's isolation guards: near-resonant partners closer than the
// radius contribute linearly growing cost.
const (
	qubitRadius = 2.5
	segRadius   = 0.65
)

func radiusFor(kind component.Kind) float64 {
	if kind == component.KindQubit {
		return qubitRadius
	}
	return segRadius
}

// footprintClass groups instances whose rectangles are interchangeable:
// same kind, core size, and padding. Permuting positions within a class
// can neither create an overlap nor move the layout's bounding envelope.
type footprintClass struct {
	kind component.Kind
	ids  []int
}

type classKey struct {
	kind      component.Kind
	w, h, pad float64
}

func footprintClasses(nl *component.Netlist) []footprintClass {
	index := map[classKey]int{}
	var classes []footprintClass
	for _, in := range nl.Instances {
		key := classKey{kind: in.Kind, w: in.W, h: in.H, pad: in.Pad}
		ci, ok := index[key]
		if !ok {
			ci = len(classes)
			index[key] = ci
			classes = append(classes, footprintClass{kind: in.Kind})
		}
		classes[ci].ids = append(classes[ci].ids, in.ID)
	}
	return classes
}

// incidentNets maps each instance ID to the indices of its nets.
func incidentNets(nl *component.Netlist) [][]int {
	inc := make([][]int, len(nl.Instances))
	for ni, net := range nl.Nets {
		inc[net[0]] = append(inc[net[0]], ni)
		inc[net[1]] = append(inc[net[1]], ni)
	}
	return inc
}

func dist1(a, b geom.Point) float64 {
	dx, dy := a.X-b.X, a.Y-b.Y
	if dx < 0 {
		dx = -dx
	}
	if dy < 0 {
		dy = -dy
	}
	return dx + dy
}

func cheby(a, b geom.Point) float64 {
	dx, dy := a.X-b.X, a.Y-b.Y
	if dx < 0 {
		dx = -dx
	}
	if dy < 0 {
		dy = -dy
	}
	if dy > dx {
		return dy
	}
	return dx
}

// wlAt is the total length of id's nets with id hypothetically at p — exact
// as long as no net partner moves in the same step, which the independent
// set guarantees.
func wlAt(nl *component.Netlist, inc [][]int, id int, p geom.Point) float64 {
	var sum float64
	for _, ni := range inc[id] {
		other := nl.Nets[ni][0]
		if other == id {
			other = nl.Nets[ni][1]
		}
		sum += dist1(p, nl.Instances[other].Pos)
	}
	return sum
}

// penaltyAt is the frequency-margin cost of id at p: each near-resonant
// partner inside the class's interaction radius contributes radius − d, so
// the reassignment prefers sites that keep resonant pairs apart.
func penaltyAt(cm *frequency.CollisionMap, nl *component.Netlist, id int, p geom.Point, radius float64) float64 {
	if cm == nil {
		return 0
	}
	var sum float64
	for _, q := range cm.ByInst[id] {
		if d := cheby(p, nl.Instances[q].Pos); d < radius {
			sum += radius - d
		}
	}
	return sum
}

func (c Config) rounds(fallback int) int {
	if c.Rounds > 0 {
		return c.Rounds
	}
	return fallback
}

func (c Config) maxSet() int {
	if c.MaxSet > 0 {
		return c.MaxSet
	}
	return DefaultMaxSet
}

func resolveCutoffs(cfg Config, pool *parallel.Pool) parallel.Cutoffs {
	if cfg.Cutoffs != nil {
		return *cfg.Cutoffs
	}
	if pool == nil {
		return parallel.Cutoffs{}
	}
	return parallel.AutoCutoffs()
}

// independentSet extracts up to max instances of one class, no two of which
// share a net or a near-resonant pair, scanning from a round-rotated offset
// so successive rounds give different instances their turn. Independence
// makes the per-instance move costs exact: every net partner and every
// collision partner of a selected instance stays fixed during the step.
func independentSet(nl *component.Netlist, cm *frequency.CollisionMap, inc [][]int, ids []int, round, max int) []int {
	selected := make(map[int]bool, max)
	var set []int
	offset := 0
	if len(ids) > 0 {
		offset = (round * 7) % len(ids)
	}
	for k := 0; k < len(ids) && len(set) < max; k++ {
		id := ids[(offset+k)%len(ids)]
		ok := true
		for _, ni := range inc[id] {
			other := nl.Nets[ni][0]
			if other == id {
				other = nl.Nets[ni][1]
			}
			if selected[other] {
				ok = false
				break
			}
		}
		if ok && cm != nil {
			for _, q := range cm.ByInst[id] {
				if selected[q] {
					ok = false
					break
				}
			}
		}
		if ok {
			selected[id] = true
			set = append(set, id)
		}
	}
	return set
}

// MCMF is the reassignment pass: per footprint class it extracts an
// independent set, offers every member the sites the set currently claims
// (each move vacates one claim and takes another), prices each
// instance × site pair as Δwirelength plus the frequency-margin term, and
// solves the assignment with min-cost max-flow. A round whose exact HPWL
// recompute comes out longer is rolled back wholesale, so the pass never
// increases HPWL. Deterministic: no randomness, and the parallel cost fill
// is owner-computes.
func MCMF(ctx context.Context, nl *component.Netlist, cfg Config) (*Result, error) {
	pool := parallel.New(cfg.Workers)
	defer pool.Close()
	cut := resolveCutoffs(cfg, pool)

	before := place.HPWL(nl)
	res := &Result{HPWLBefore: before, HPWLAfter: before}
	cur := before

	classes := footprintClasses(nl)
	inc := incidentNets(nl)
	orig := nl.Positions()

	candSpan := cfg.Span.Child("candidates")
	assignSpan := cfg.Span.Child("assign")
	applySpan := cfg.Span.Child("apply")

	for round := 1; round <= cfg.rounds(DefaultRounds); round++ {
		if cfg.Progress != nil {
			cfg.Progress(round, cur)
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		improved := false
		for _, class := range classes {
			if len(class.ids) < 2 {
				continue
			}
			candTimer := candSpan.Start()
			set := independentSet(nl, cfg.Collision, inc, class.ids, round, cfg.maxSet())
			sites := make([]geom.Point, len(set))
			for i, id := range set {
				sites[i] = nl.Instances[id].Pos
			}
			candTimer.End()
			if len(set) < 2 {
				continue
			}

			// Cost rows are independent — the one parallel scan of this
			// pass; the flow solve itself is sequential. n² entries of pure
			// arithmetic gate like the legalizer's all-pairs scans.
			assignTimer := assignSpan.Start()
			n := len(set)
			radius := radiusFor(class.kind)
			costs := make([][]float64, n)
			fill := parallel.Gate(pool, n*n, cut.ScanCells)
			fill.For(n, func(_, lo, hi int) {
				for i := lo; i < hi; i++ {
					id := set[i]
					row := make([]float64, n)
					for j := range row {
						row[j] = wlAt(nl, inc, id, sites[j]) +
							penaltyAt(cfg.Collision, nl, id, sites[j], radius)
					}
					costs[i] = row
				}
			})
			assignment, _ := mcmf.Assign(costs)
			assignTimer.End()

			applyTimer := applySpan.Start()
			saved := make([]geom.Point, n)
			changed := false
			for i, id := range set {
				saved[i] = nl.Instances[id].Pos
				if assignment[i] != i {
					changed = true
				}
			}
			if changed {
				for i, id := range set {
					nl.Instances[id].Pos = sites[assignment[i]]
				}
				// The exact recompute is the contract guard: the flow
				// optimum trades wirelength against frequency margin, and
				// any trade that lengthens the layout is refused outright.
				after := place.HPWL(nl)
				if after > cur {
					for i, id := range set {
						nl.Instances[id].Pos = saved[i]
					}
				} else {
					if after < cur {
						improved = true
					}
					cur = after
				}
			}
			applyTimer.End()
		}
		if !improved {
			break
		}
	}
	// A cancellation fired from the final Progress callback must still
	// surface, even when the loop exits on its own.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	res.HPWLAfter = cur
	res.Moved = countMoved(nl, orig)
	return res, nil
}

// Swap is the frequency-aware local-swap hill climb: seeded candidate pairs
// within one footprint class are exchanged when the move strictly improves
// wirelength + frequency margin without lengthening the wirelength alone.
// Deterministic per seed; ignores Config.Workers (the climb is inherently
// sequential, which is legal — parallelism never changes results).
func Swap(ctx context.Context, nl *component.Netlist, cfg Config) (*Result, error) {
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	rng := rand.New(rand.NewSource(seed))

	before := place.HPWL(nl)
	res := &Result{HPWLBefore: before, HPWLAfter: before}
	cur := before

	candTimer := cfg.Span.Child("candidates").Start()
	classes := footprintClasses(nl)
	inc := incidentNets(nl)
	orig := nl.Positions()
	candTimer.End()

	assignSpan := cfg.Span.Child("assign")
	applySpan := cfg.Span.Child("apply")

	for sweep := 1; sweep <= cfg.rounds(DefaultSweeps); sweep++ {
		if cfg.Progress != nil {
			cfg.Progress(sweep, cur)
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		improved := false
		for _, class := range classes {
			ids := class.ids
			if len(ids) < 2 {
				continue
			}
			radius := radiusFor(class.kind)
			attempts := 4 * len(ids)
			for k := 0; k < attempts; k++ {
				if k%64 == 63 {
					if err := ctx.Err(); err != nil {
						return nil, err
					}
				}
				searchTimer := assignSpan.Start()
				a := ids[rng.Intn(len(ids))]
				b := ids[rng.Intn(len(ids))]
				var dwl, dpen float64
				if a != b {
					dwl = swapDeltaWL(nl, inc, a, b)
					dpen = swapDeltaPenalty(cfg.Collision, nl, a, b, radius)
				}
				searchTimer.End()
				if a == b || dwl > 0 || dwl+dpen >= -1e-12 {
					continue
				}
				applyTimer := applySpan.Start()
				nl.Instances[a].Pos, nl.Instances[b].Pos =
					nl.Instances[b].Pos, nl.Instances[a].Pos
				cur += dwl
				improved = true
				applyTimer.End()
			}
		}
		if !improved {
			break
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Accepted deltas are individually exact but accumulate in move order;
	// the final recompute re-sums in netlist order and is what the contract
	// is held to. Equality to the last ulp is not guaranteed across the two
	// orders, so an (astronomically unlikely) recompute above the entry
	// value rolls the whole climb back rather than ship a longer layout.
	after := place.HPWL(nl)
	if after > before {
		nl.SetPositions(orig)
		after = before
	}
	res.HPWLAfter = after
	res.Moved = countMoved(nl, orig)
	return res, nil
}

// swapDeltaWL is the exact HPWL change of exchanging a's and b's positions:
// the union of their incident nets re-measured at the swapped positions.
func swapDeltaWL(nl *component.Netlist, inc [][]int, a, b int) float64 {
	pa, pb := nl.Instances[a].Pos, nl.Instances[b].Pos
	at := func(id int, swapped bool) geom.Point {
		if swapped {
			if id == a {
				return pb
			}
			if id == b {
				return pa
			}
		} else {
			if id == a {
				return pa
			}
			if id == b {
				return pb
			}
		}
		return nl.Instances[id].Pos
	}
	var delta float64
	for _, ni := range inc[a] {
		x, y := nl.Nets[ni][0], nl.Nets[ni][1]
		delta += dist1(at(x, true), at(y, true)) - dist1(at(x, false), at(y, false))
	}
	for _, ni := range inc[b] {
		x, y := nl.Nets[ni][0], nl.Nets[ni][1]
		if x == a || y == a {
			continue // shared net: already counted from a's side
		}
		delta += dist1(at(x, true), at(y, true)) - dist1(at(x, false), at(y, false))
	}
	return delta
}

// swapDeltaPenalty is the frequency-margin change of the swap. The (a,b)
// pair itself keeps its distance under an exchange, so only third-party
// partners contribute.
func swapDeltaPenalty(cm *frequency.CollisionMap, nl *component.Netlist, a, b int, radius float64) float64 {
	if cm == nil {
		return 0
	}
	pa, pb := nl.Instances[a].Pos, nl.Instances[b].Pos
	var delta float64
	term := func(p, q geom.Point) float64 {
		if d := cheby(p, q); d < radius {
			return radius - d
		}
		return 0
	}
	for _, q := range cm.ByInst[a] {
		if q == b {
			continue
		}
		qp := nl.Instances[q].Pos
		delta += term(pb, qp) - term(pa, qp)
	}
	for _, q := range cm.ByInst[b] {
		if q == a {
			continue
		}
		qp := nl.Instances[q].Pos
		delta += term(pa, qp) - term(pb, qp)
	}
	return delta
}

// countMoved compares instance positions against a Positions() snapshot
// (flat [x0 y0 …] vector) taken when the pass began.
func countMoved(nl *component.Netlist, orig []float64) int {
	moved := 0
	for i, in := range nl.Instances {
		if in.Pos.X != orig[2*i] || in.Pos.Y != orig[2*i+1] {
			moved++
		}
	}
	return moved
}
