package detail

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"qplacer/internal/component"
	"qplacer/internal/frequency"
	"qplacer/internal/physics"
	"qplacer/internal/place"
	"qplacer/internal/topology"
)

// placedNetlist builds and globally places one device, returning the netlist
// and its collision map — the state a detailed pass sees after legalization
// (legality itself is irrelevant to these unit tests: the passes only permute
// positions within footprint classes).
func placedNetlist(t *testing.T, devName string) (*component.Netlist, *frequency.CollisionMap) {
	t.Helper()
	dev, err := topology.ByName(devName)
	if err != nil {
		t.Fatal(err)
	}
	a := frequency.Assign(dev, physics.DetuneThresholdGHz)
	nl, err := component.Build(dev, a.QubitFreq, a.ResFreq, component.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cm := frequency.BuildCollisionMap(nl, physics.DetuneThresholdGHz)
	cfg := place.DefaultConfig()
	cfg.MaxIters = 60
	if _, err := place.Place(nl, cm, cfg); err != nil {
		t.Fatal(err)
	}
	return nl, cm
}

func TestFootprintClassesPartition(t *testing.T) {
	nl, _ := placedNetlist(t, "grid")
	classes := footprintClasses(nl)
	if len(classes) < 2 {
		t.Fatalf("grid netlist produced %d footprint classes, want at least qubits+segments", len(classes))
	}
	seen := map[int]bool{}
	for _, c := range classes {
		if len(c.ids) == 0 {
			t.Fatal("empty footprint class")
		}
		first := nl.Instances[c.ids[0]]
		for _, id := range c.ids {
			if seen[id] {
				t.Fatalf("instance %d in two classes", id)
			}
			seen[id] = true
			in := nl.Instances[id]
			if in.Kind != first.Kind || in.W != first.W || in.H != first.H || in.Pad != first.Pad {
				t.Fatalf("class mixes footprints: %v vs %v", in, first)
			}
		}
	}
	if len(seen) != len(nl.Instances) {
		t.Fatalf("classes cover %d of %d instances", len(seen), len(nl.Instances))
	}
}

func TestIndependentSetIsIndependent(t *testing.T) {
	nl, cm := placedNetlist(t, "grid")
	inc := incidentNets(nl)
	for _, class := range footprintClasses(nl) {
		for round := 1; round <= 3; round++ {
			set := independentSet(nl, cm, inc, class.ids, round, DefaultMaxSet)
			if len(set) > DefaultMaxSet {
				t.Fatalf("set of %d exceeds cap %d", len(set), DefaultMaxSet)
			}
			in := map[int]bool{}
			for _, id := range set {
				in[id] = true
			}
			for _, id := range set {
				for _, ni := range inc[id] {
					other := nl.Nets[ni][0]
					if other == id {
						other = nl.Nets[ni][1]
					}
					if other != id && in[other] {
						t.Fatalf("round %d: net partners %d and %d both selected", round, id, other)
					}
				}
				for _, q := range cm.ByInst[id] {
					if in[q] {
						t.Fatalf("round %d: collision partners %d and %d both selected", round, id, q)
					}
				}
			}
		}
	}
}

// TestSwapDeltaWLExact holds the incremental delta to the ground truth: for
// sampled same-class pairs, swapDeltaWL must match the full-HPWL difference
// of actually performing the swap.
func TestSwapDeltaWLExact(t *testing.T) {
	nl, _ := placedNetlist(t, "grid")
	inc := incidentNets(nl)
	rng := rand.New(rand.NewSource(7))
	for _, class := range footprintClasses(nl) {
		ids := class.ids
		if len(ids) < 2 {
			continue
		}
		for k := 0; k < 50; k++ {
			a, b := ids[rng.Intn(len(ids))], ids[rng.Intn(len(ids))]
			if a == b {
				continue
			}
			before := place.HPWL(nl)
			delta := swapDeltaWL(nl, inc, a, b)
			nl.Instances[a].Pos, nl.Instances[b].Pos = nl.Instances[b].Pos, nl.Instances[a].Pos
			after := place.HPWL(nl)
			nl.Instances[a].Pos, nl.Instances[b].Pos = nl.Instances[b].Pos, nl.Instances[a].Pos
			if math.Abs((after-before)-delta) > 1e-9*math.Max(1, math.Abs(before)) {
				t.Fatalf("swap(%d,%d): delta %.12g, ground truth %.12g", a, b, delta, after-before)
			}
		}
	}
}

func TestMCMFNeverIncreasesHPWLAndIsWorkerInvariant(t *testing.T) {
	for _, devName := range []string{"grid", "falcon"} {
		base, cm := placedNetlist(t, devName)
		var ref []float64
		var refHPWL float64
		for _, workers := range []int{1, 2, 3} {
			nl := base.Clone()
			before := place.HPWL(nl)
			res, err := MCMF(context.Background(), nl, Config{Workers: workers, Collision: cm})
			if err != nil {
				t.Fatal(err)
			}
			if res.HPWLBefore != before {
				t.Fatalf("%s: HPWLBefore %.9g, entry %.9g", devName, res.HPWLBefore, before)
			}
			if res.HPWLAfter > before {
				t.Fatalf("%s workers=%d: HPWL increased %.9g -> %.9g", devName, workers, before, res.HPWLAfter)
			}
			if got := place.HPWL(nl); got != res.HPWLAfter {
				t.Fatalf("%s: reported after %.9g, layout %.9g", devName, res.HPWLAfter, got)
			}
			pos := nl.Positions()
			if ref == nil {
				ref, refHPWL = pos, res.HPWLAfter
				continue
			}
			if res.HPWLAfter != refHPWL {
				t.Fatalf("%s workers=%d: HPWL %.17g differs from serial %.17g", devName, workers, res.HPWLAfter, refHPWL)
			}
			for i := range pos {
				if pos[i] != ref[i] {
					t.Fatalf("%s workers=%d: coordinate %d differs from serial run", devName, workers, i)
				}
			}
		}
	}
}

func TestSwapDeterministicPerSeedAndNeverIncreases(t *testing.T) {
	base, cm := placedNetlist(t, "grid")
	run := func(seed int64) (*Result, []float64) {
		nl := base.Clone()
		res, err := Swap(context.Background(), nl, Config{Collision: cm, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		return res, nl.Positions()
	}
	r1, p1 := run(42)
	r2, p2 := run(42)
	if r1.HPWLAfter != r2.HPWLAfter || r1.Moved != r2.Moved {
		t.Fatalf("same seed diverged: %+v vs %+v", r1, r2)
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("same seed, different layouts at coordinate %d", i)
		}
	}
	if r1.HPWLAfter > r1.HPWLBefore {
		t.Fatalf("swap increased HPWL: %.9g -> %.9g", r1.HPWLBefore, r1.HPWLAfter)
	}
	// Moved counts only instances resting somewhere new.
	if r1.Moved == 0 && r1.HPWLAfter != r1.HPWLBefore {
		t.Fatal("HPWL changed with zero reported moves")
	}
}

func TestPassesHonorCancellation(t *testing.T) {
	base, cm := placedNetlist(t, "grid")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := MCMF(ctx, base.Clone(), Config{Collision: cm}); err != context.Canceled {
		t.Fatalf("MCMF err = %v, want context.Canceled", err)
	}
	if _, err := Swap(ctx, base.Clone(), Config{Collision: cm}); err != context.Canceled {
		t.Fatalf("Swap err = %v, want context.Canceled", err)
	}

	// Cancelling from the progress hook — the engine observer path — must
	// surface promptly too.
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	cfg := Config{Collision: cm, Progress: func(int, float64) { cancel2() }}
	if _, err := MCMF(ctx2, base.Clone(), cfg); err != context.Canceled {
		t.Fatalf("MCMF progress-cancel err = %v, want context.Canceled", err)
	}
	ctx3, cancel3 := context.WithCancel(context.Background())
	defer cancel3()
	cfg3 := Config{Collision: cm, Progress: func(int, float64) { cancel3() }}
	if _, err := Swap(ctx3, base.Clone(), cfg3); err != context.Canceled {
		t.Fatalf("Swap progress-cancel err = %v, want context.Canceled", err)
	}
}
