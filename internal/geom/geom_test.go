package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestPointArithmetic(t *testing.T) {
	p := Point{1, 2}
	q := Point{3, -1}
	if got := p.Add(q); got != (Point{4, 1}) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(q); got != (Point{-2, 3}) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(2); got != (Point{2, 4}) {
		t.Errorf("Scale = %v", got)
	}
	if got := p.Dist(q); !almostEq(got, math.Hypot(2, 3), 1e-12) {
		t.Errorf("Dist = %v", got)
	}
	if got := p.Dist2(q); !almostEq(got, 13, 1e-12) {
		t.Errorf("Dist2 = %v", got)
	}
}

func TestNewRectNormalizesCorners(t *testing.T) {
	r := NewRect(3, 4, 1, 2)
	if r.Lo != (Point{1, 2}) || r.Hi != (Point{3, 4}) {
		t.Fatalf("NewRect did not normalize: %v", r)
	}
}

func TestRectBasics(t *testing.T) {
	r := NewRect(0, 0, 4, 2)
	if r.W() != 4 || r.H() != 2 {
		t.Fatalf("W/H = %v/%v", r.W(), r.H())
	}
	if r.Area() != 8 {
		t.Fatalf("Area = %v", r.Area())
	}
	if r.Center() != (Point{2, 1}) {
		t.Fatalf("Center = %v", r.Center())
	}
	moved := r.MoveCenter(Point{10, 10})
	if moved.Center() != (Point{10, 10}) || moved.W() != 4 || moved.H() != 2 {
		t.Fatalf("MoveCenter = %v", moved)
	}
}

func TestRectAt(t *testing.T) {
	r := RectAt(Point{1, 1}, 2, 4)
	if r.Lo != (Point{0, -1}) || r.Hi != (Point{2, 3}) {
		t.Fatalf("RectAt = %v", r)
	}
}

func TestInflate(t *testing.T) {
	r := NewRect(0, 0, 2, 2).Inflate(0.5)
	if r.Lo != (Point{-0.5, -0.5}) || r.Hi != (Point{2.5, 2.5}) {
		t.Fatalf("Inflate = %v", r)
	}
	s := r.Inflate(-0.5)
	if s != NewRect(0, 0, 2, 2) {
		t.Fatalf("deflate = %v", s)
	}
}

func TestOverlapsAndIntersect(t *testing.T) {
	a := NewRect(0, 0, 2, 2)
	b := NewRect(1, 1, 3, 3)
	c := NewRect(2, 2, 4, 4) // touches a at a corner only
	d := NewRect(5, 5, 6, 6)

	if !a.Overlaps(b) {
		t.Error("a should overlap b")
	}
	if a.Overlaps(c) {
		t.Error("corner touch must not count as overlap")
	}
	if a.Overlaps(d) {
		t.Error("disjoint rects must not overlap")
	}
	ov, ok := a.Intersect(b)
	if !ok || ov != NewRect(1, 1, 2, 2) {
		t.Errorf("Intersect = %v, %v", ov, ok)
	}
	if got := a.OverlapArea(b); !almostEq(got, 1, 1e-12) {
		t.Errorf("OverlapArea = %v", got)
	}
	if got := a.OverlapArea(d); got != 0 {
		t.Errorf("disjoint OverlapArea = %v", got)
	}
}

func TestIntersectionLength(t *testing.T) {
	a := NewRect(0, 0, 4, 1)
	b := NewRect(2, 0.5, 6, 3)
	// Overlap is [2,4]x[0.5,1] → w=2, h=0.5 → length = 2.
	if got := a.IntersectionLength(b); !almostEq(got, 2, 1e-12) {
		t.Errorf("IntersectionLength = %v", got)
	}
	if got := a.IntersectionLength(NewRect(10, 10, 11, 11)); got != 0 {
		t.Errorf("disjoint IntersectionLength = %v", got)
	}
}

func TestGap(t *testing.T) {
	a := NewRect(0, 0, 1, 1)
	// Pure horizontal separation.
	if g := a.Gap(NewRect(3, 0, 4, 1)); !almostEq(g, 2, 1e-12) {
		t.Errorf("horizontal gap = %v", g)
	}
	// Pure vertical separation.
	if g := a.Gap(NewRect(0, 2.5, 1, 3)); !almostEq(g, 1.5, 1e-12) {
		t.Errorf("vertical gap = %v", g)
	}
	// Diagonal separation: dx=1, dy=1 → hypot.
	if g := a.Gap(NewRect(2, 2, 3, 3)); !almostEq(g, math.Sqrt2, 1e-12) {
		t.Errorf("diagonal gap = %v", g)
	}
	// Overlap → negative.
	if g := a.Gap(NewRect(0.5, 0.5, 1.5, 1.5)); g >= 0 {
		t.Errorf("overlap gap should be negative, got %v", g)
	}
}

func TestEnclosingRect(t *testing.T) {
	if _, ok := EnclosingRect(nil); ok {
		t.Fatal("empty input should return ok=false")
	}
	rects := []Rect{
		NewRect(0, 0, 1, 1),
		NewRect(-2, 3, -1, 4),
		NewRect(5, -1, 6, 0),
	}
	enc, ok := EnclosingRect(rects)
	if !ok || enc != NewRect(-2, -1, 6, 4) {
		t.Fatalf("EnclosingRect = %v, %v", enc, ok)
	}
	if got := TotalArea(rects); !almostEq(got, 3, 1e-12) {
		t.Fatalf("TotalArea = %v", got)
	}
}

func TestClamp(t *testing.T) {
	r := NewRect(0, 0, 10, 10)
	if got := r.Clamp(Point{-5, 20}); got != (Point{0, 10}) {
		t.Errorf("Clamp = %v", got)
	}
	if got := r.Clamp(Point{5, 5}); got != (Point{5, 5}) {
		t.Errorf("Clamp inside = %v", got)
	}
}

func TestContains(t *testing.T) {
	r := NewRect(0, 0, 2, 2)
	if !r.Contains(Point{0, 0}) || !r.Contains(Point{2, 2}) || !r.Contains(Point{1, 1}) {
		t.Error("boundary and interior points must be contained")
	}
	if r.Contains(Point{2.01, 1}) {
		t.Error("outside point must not be contained")
	}
	if !r.ContainsRect(NewRect(0.5, 0.5, 1.5, 1.5)) {
		t.Error("inner rect must be contained")
	}
	if r.ContainsRect(NewRect(1, 1, 3, 3)) {
		t.Error("overhanging rect must not be contained")
	}
}

func TestSpiralOffsets(t *testing.T) {
	if got := SpiralOffsets(-1); got != nil {
		t.Fatalf("negative rings should give nil, got %v", got)
	}
	offs := SpiralOffsets(2)
	want := (2*2 + 1) * (2*2 + 1)
	if len(offs) != want {
		t.Fatalf("len = %d, want %d", len(offs), want)
	}
	if offs[0] != (Point{0, 0}) {
		t.Fatalf("first offset should be origin, got %v", offs[0])
	}
	// Rings must be non-decreasing in Chebyshev distance and unique.
	seen := map[Point]bool{}
	prevRing := 0.0
	for _, o := range offs {
		if seen[o] {
			t.Fatalf("duplicate offset %v", o)
		}
		seen[o] = true
		ring := math.Max(math.Abs(o.X), math.Abs(o.Y))
		if ring+1e-9 < prevRing {
			t.Fatalf("ring order violated at %v (ring %v after %v)", o, ring, prevRing)
		}
		prevRing = ring
	}
}

// Property: Union always contains both inputs; Intersect (when ok) is
// contained in both inputs.
func TestQuickUnionIntersectProperties(t *testing.T) {
	f := func(ax, ay, aw, ah, bx, by, bw, bh float64) bool {
		norm := func(v float64) float64 { return math.Mod(math.Abs(v), 100) }
		a := NewRect(norm(ax), norm(ay), norm(ax)+norm(aw)+0.1, norm(ay)+norm(ah)+0.1)
		b := NewRect(norm(bx), norm(by), norm(bx)+norm(bw)+0.1, norm(by)+norm(bh)+0.1)
		u := a.Union(b)
		if !u.ContainsRect(a) || !u.ContainsRect(b) {
			return false
		}
		if ov, ok := a.Intersect(b); ok {
			if !a.ContainsRect(ov) || !b.ContainsRect(ov) {
				return false
			}
			if ov.Area() > math.Min(a.Area(), b.Area())+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: overlap area is symmetric and bounded by each rect's area.
func TestQuickOverlapAreaSymmetric(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		norm := func(v float64) float64 { return math.Mod(math.Abs(v), 10) }
		a := RectAt(Point{norm(ax), norm(ay)}, 2, 3)
		b := RectAt(Point{norm(bx), norm(by)}, 4, 1)
		oa, ob := a.OverlapArea(b), b.OverlapArea(a)
		if math.Abs(oa-ob) > 1e-12 {
			return false
		}
		return oa <= math.Min(a.Area(), b.Area())+1e-12 && oa >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: Gap is symmetric, and negative iff rectangles overlap.
func TestQuickGapOverlapConsistency(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		norm := func(v float64) float64 { return math.Mod(math.Abs(v), 8) }
		a := RectAt(Point{norm(ax), norm(ay)}, 2, 2)
		b := RectAt(Point{norm(bx), norm(by)}, 3, 1)
		g1, g2 := a.Gap(b), b.Gap(a)
		if math.Abs(g1-g2) > 1e-12 {
			return false
		}
		return (g1 < 0) == a.Overlaps(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
