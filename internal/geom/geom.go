// Package geom provides the 2-D geometric primitives used throughout the
// placer: points, axis-aligned rectangles, overlap queries, minimum
// enclosing rectangles, and spiral site enumeration for legalization.
//
// All coordinates are in millimetres unless stated otherwise.
package geom

import (
	"fmt"
	"math"
)

// Point is a 2-D point.
type Point struct {
	X, Y float64
}

// Add returns p + q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p - q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by s.
func (p Point) Scale(s float64) Point { return Point{p.X * s, p.Y * s} }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Dist2 returns the squared Euclidean distance between p and q.
func (p Point) Dist2(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Norm returns the Euclidean norm of p viewed as a vector.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

func (p Point) String() string { return fmt.Sprintf("(%.4g, %.4g)", p.X, p.Y) }

// Rect is an axis-aligned rectangle described by its lower-left and
// upper-right corners. A Rect with Lo == Hi is an empty (degenerate) box.
type Rect struct {
	Lo, Hi Point
}

// NewRect returns the rectangle spanning the two corner points in any order.
func NewRect(x0, y0, x1, y1 float64) Rect {
	if x1 < x0 {
		x0, x1 = x1, x0
	}
	if y1 < y0 {
		y0, y1 = y1, y0
	}
	return Rect{Point{x0, y0}, Point{x1, y1}}
}

// RectAt returns a w×h rectangle centred at c.
func RectAt(c Point, w, h float64) Rect {
	return Rect{
		Lo: Point{c.X - w/2, c.Y - h/2},
		Hi: Point{c.X + w/2, c.Y + h/2},
	}
}

// W returns the width of r.
func (r Rect) W() float64 { return r.Hi.X - r.Lo.X }

// H returns the height of r.
func (r Rect) H() float64 { return r.Hi.Y - r.Lo.Y }

// Area returns the area of r.
func (r Rect) Area() float64 { return r.W() * r.H() }

// Center returns the centroid of r.
func (r Rect) Center() Point {
	return Point{(r.Lo.X + r.Hi.X) / 2, (r.Lo.Y + r.Hi.Y) / 2}
}

// Inflate returns r grown by m on every side (shrunk if m < 0).
func (r Rect) Inflate(m float64) Rect {
	return Rect{
		Lo: Point{r.Lo.X - m, r.Lo.Y - m},
		Hi: Point{r.Hi.X + m, r.Hi.Y + m},
	}
}

// Translate returns r shifted by d.
func (r Rect) Translate(d Point) Rect {
	return Rect{r.Lo.Add(d), r.Hi.Add(d)}
}

// MoveCenter returns r recentred at c.
func (r Rect) MoveCenter(c Point) Rect {
	return RectAt(c, r.W(), r.H())
}

// Contains reports whether p lies inside r (inclusive of boundary).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Lo.X && p.X <= r.Hi.X && p.Y >= r.Lo.Y && p.Y <= r.Hi.Y
}

// ContainsRect reports whether s lies entirely inside r.
func (r Rect) ContainsRect(s Rect) bool {
	return r.Contains(s.Lo) && r.Contains(s.Hi)
}

// Overlaps reports whether r and s overlap with positive area.
func (r Rect) Overlaps(s Rect) bool {
	return r.Lo.X < s.Hi.X && s.Lo.X < r.Hi.X &&
		r.Lo.Y < s.Hi.Y && s.Lo.Y < r.Hi.Y
}

// Intersect returns the overlap rectangle of r and s. If they do not
// overlap, the second return value is false and the rectangle is degenerate.
func (r Rect) Intersect(s Rect) (Rect, bool) {
	lo := Point{math.Max(r.Lo.X, s.Lo.X), math.Max(r.Lo.Y, s.Lo.Y)}
	hi := Point{math.Min(r.Hi.X, s.Hi.X), math.Min(r.Hi.Y, s.Hi.Y)}
	if lo.X >= hi.X || lo.Y >= hi.Y {
		return Rect{}, false
	}
	return Rect{lo, hi}, true
}

// OverlapArea returns the overlap area of r and s (0 when disjoint).
func (r Rect) OverlapArea(s Rect) float64 {
	ov, ok := r.Intersect(s)
	if !ok {
		return 0
	}
	return ov.Area()
}

// IntersectionLength returns the larger side of the overlap rectangle of r
// and s, the 1-D "intersection length" used by the frequency-hotspot metric
// (Eq. 18 of the paper). It is 0 when the rectangles do not overlap.
func (r Rect) IntersectionLength(s Rect) float64 {
	ov, ok := r.Intersect(s)
	if !ok {
		return 0
	}
	return math.Max(ov.W(), ov.H())
}

// Union returns the smallest rectangle containing both r and s.
func (r Rect) Union(s Rect) Rect {
	return Rect{
		Lo: Point{math.Min(r.Lo.X, s.Lo.X), math.Min(r.Lo.Y, s.Lo.Y)},
		Hi: Point{math.Max(r.Hi.X, s.Hi.X), math.Max(r.Hi.Y, s.Hi.Y)},
	}
}

// Gap returns the minimum edge-to-edge separation of r and s along the axes
// (the Chebyshev-style clearance). It is negative when they overlap, with
// magnitude equal to the smaller penetration depth.
func (r Rect) Gap(s Rect) float64 {
	dx := math.Max(r.Lo.X-s.Hi.X, s.Lo.X-r.Hi.X)
	dy := math.Max(r.Lo.Y-s.Hi.Y, s.Lo.Y-r.Hi.Y)
	if dx < 0 && dy < 0 {
		// Overlapping: report negative penetration (closest escape axis).
		return math.Max(dx, dy)
	}
	if dx < 0 {
		return dy
	}
	if dy < 0 {
		return dx
	}
	// Disjoint on both axes: diagonal clearance.
	return math.Hypot(dx, dy)
}

func (r Rect) String() string {
	return fmt.Sprintf("[%v - %v]", r.Lo, r.Hi)
}

// EnclosingRect returns the minimum axis-aligned rectangle enclosing all the
// given rectangles. ok is false when the input is empty.
func EnclosingRect(rects []Rect) (Rect, bool) {
	if len(rects) == 0 {
		return Rect{}, false
	}
	out := rects[0]
	for _, r := range rects[1:] {
		out = out.Union(r)
	}
	return out, true
}

// TotalArea returns the sum of the rectangle areas.
func TotalArea(rects []Rect) float64 {
	var a float64
	for _, r := range rects {
		a += r.Area()
	}
	return a
}

// Clamp returns p clamped into r.
func (r Rect) Clamp(p Point) Point {
	return Point{
		X: math.Min(math.Max(p.X, r.Lo.X), r.Hi.X),
		Y: math.Min(math.Max(p.Y, r.Lo.Y), r.Hi.Y),
	}
}

// SpiralOffsets returns grid offsets (in units of pitch) ordered by
// increasing Chebyshev ring distance from the origin: the origin first, then
// ring 1 (8 cells), ring 2 (16 cells), … up to maxRing rings. This is the
// search order used by the greedy spiral legalizer.
func SpiralOffsets(maxRing int) []Point {
	if maxRing < 0 {
		return nil
	}
	out := make([]Point, 0, (2*maxRing+1)*(2*maxRing+1))
	out = append(out, Point{0, 0})
	for ring := 1; ring <= maxRing; ring++ {
		r := float64(ring)
		// Walk the ring clockwise from the top-left corner.
		for x := -ring; x <= ring; x++ {
			out = append(out, Point{float64(x), r})
		}
		for y := ring - 1; y >= -ring; y-- {
			out = append(out, Point{r, float64(y)})
		}
		for x := ring - 1; x >= -ring; x-- {
			out = append(out, Point{float64(x), -r})
		}
		for y := -ring + 1; y <= ring-1; y++ {
			out = append(out, Point{-r, float64(y)})
		}
	}
	return out
}
