// Package fidelity implements the program-fidelity estimator of Eq. 15:
//
//	F = Π_q (1−ε_q) · Π_g (1−ε_g) · Π_r (1−ε_r),
//
// combining intrinsic gate errors and decoherence (ε_q), qubit–qubit
// crosstalk from spatial violations (ε_g, Eq. 16 with the corrected sign),
// and resonator–resonator crosstalk (ε_r). Crosstalk couplings derive from
// the placed layout through the physics models: parasitic capacitance decays
// with the actual component separations, so a layout that keeps resonant
// components apart earns its fidelity. Only actively engaged components
// contribute (§V-C).
package fidelity

import (
	"math"

	"qplacer/internal/component"
	"qplacer/internal/frequency"
	"qplacer/internal/mapper"
	"qplacer/internal/physics"
)

// Params collects the noise-model constants.
type Params struct {
	Err1Q, Err2Q float64
	T1Ns, T2Ns   float64
	Gate1QNs     float64
	Gate2QNs     float64
	DeltaCGHz    float64
	// CrosstalkRange bounds the neighbourhood scan (mm); components farther
	// apart contribute negligibly through the exponential Cp decay.
	CrosstalkRange float64
}

// DefaultParams returns the §V-C constants.
func DefaultParams() Params {
	return Params{
		Err1Q:          physics.Err1Q,
		Err2Q:          physics.Err2Q,
		T1Ns:           physics.T1Ns,
		T2Ns:           physics.T2Ns,
		Gate1QNs:       physics.Gate1QNs,
		Gate2QNs:       physics.Gate2QNs,
		DeltaCGHz:      physics.DetuneThresholdGHz,
		CrosstalkRange: 3.0,
	}
}

// Breakdown reports the three fidelity factors separately.
type Breakdown struct {
	F          float64 // total program fidelity
	FIntrinsic float64 // gates + decoherence (Π 1−ε_q)
	FQubitXT   float64 // qubit–qubit crosstalk (Π 1−ε_g)
	FResXT     float64 // resonator–resonator crosstalk (Π 1−ε_r)
}

// Estimate evaluates the mapping on the placed layout.
func Estimate(nl *component.Netlist, m *mapper.Mapping, p Params) Breakdown {
	bd := Breakdown{FIntrinsic: 1, FQubitXT: 1, FResXT: 1}

	// ε_q: intrinsic gate errors and decoherence over the circuit duration.
	for _, q := range m.ActiveQubits {
		eq := 1.0
		eq *= math.Pow(1-p.Err1Q, float64(m.Gates1Q[q]))
		eq *= math.Pow(1-p.Err2Q, float64(m.Gates2Q[q]))
		eq *= 1 - physics.DecoherenceError(m.DurationNs, p.T1Ns, p.T2Ns)
		bd.FIntrinsic *= eq
	}

	// ε_g: qubit–qubit crosstalk. For each active qubit, every near-resonant
	// qubit within range acts like a stray coupler; the worst-case Rabi
	// transfer accrues over the qubit's gate activity.
	activeSet := map[int]bool{}
	for _, q := range m.ActiveQubits {
		activeSet[q] = true
	}
	for _, q := range m.ActiveQubits {
		inQ := nl.Instances[nl.QubitInst[q]]
		exposure := float64(m.Gates2Q[q])*p.Gate2QNs + float64(m.Gates1Q[q])*p.Gate1QNs
		if exposure <= 0 {
			continue
		}
		for oq := 0; oq < len(nl.QubitInst); oq++ {
			if oq == q {
				continue
			}
			inO := nl.Instances[nl.QubitInst[oq]]
			if !frequency.Resonant(inQ.FreqGHz, inO.FreqGHz, p.DeltaCGHz) {
				continue
			}
			gap := inQ.CoreRect().Gap(inO.CoreRect())
			if gap > p.CrosstalkRange {
				continue
			}
			g := physics.QubitParasiticCouplingMHz(inQ.FreqGHz, inO.FreqGHz, math.Max(gap, 0))
			detMHz := math.Abs(inQ.FreqGHz-inO.FreqGHz) * 1e3
			gEff := physics.InteractionStrengthMHz(g, detMHz)
			eg := physics.TransitionProbability(gEff, exposure)
			bd.FQubitXT *= 1 - eg
		}
	}

	// ε_r: resonator–resonator crosstalk between active resonators whose
	// segment clusters run near each other; coupling scales with adjacency
	// length (§V-C).
	for i := 0; i < len(m.ActiveEdges); i++ {
		ri := resonatorByEdge(nl, m.ActiveEdges[i])
		if ri < 0 {
			continue
		}
		for j := 0; j < len(nl.Resonators); j++ {
			if j == ri {
				continue
			}
			ra, rb := nl.Resonators[ri], nl.Resonators[j]
			if !frequency.Resonant(ra.FreqGHz, rb.FreqGHz, p.DeltaCGHz) {
				continue
			}
			minGap, adjLen := resonatorProximity(nl, ra, rb, p.CrosstalkRange)
			if adjLen <= 0 {
				continue
			}
			g := physics.ResonatorParasiticCouplingMHz(ra.FreqGHz, rb.FreqGHz, minGap, adjLen)
			detMHz := math.Abs(ra.FreqGHz-rb.FreqGHz) * 1e3
			gEff := physics.InteractionStrengthMHz(g, detMHz)
			uses := m.EdgeUse[m.ActiveEdges[i]]
			er := physics.TransitionProbability(gEff, float64(uses)*p.Gate2QNs)
			bd.FResXT *= 1 - er
		}
	}

	bd.F = bd.FIntrinsic * bd.FQubitXT * bd.FResXT
	return bd
}

// resonatorByEdge finds the resonator serving a device coupling.
func resonatorByEdge(nl *component.Netlist, e [2]int) int {
	for i, r := range nl.Resonators {
		if (r.QubitA == e[0] && r.QubitB == e[1]) ||
			(r.QubitA == e[1] && r.QubitB == e[0]) {
			return i
		}
	}
	return -1
}

// resonatorProximity returns the minimum edge-to-edge gap between two
// resonators' wire blocks and the total adjacency length (segment side per
// close block pair within maxGap).
func resonatorProximity(nl *component.Netlist, ra, rb *component.Resonator, maxGap float64) (minGap, adjLen float64) {
	minGap = math.Inf(1)
	for _, sa := range ra.Segments {
		ia := nl.Instances[sa]
		ca := ia.CoreRect()
		for _, sb := range rb.Segments {
			ib := nl.Instances[sb]
			gap := ca.Gap(ib.CoreRect())
			if gap < minGap {
				minGap = gap
			}
			// Parallel-run adjacency only counts at near-contact gaps
			// (~0.12 mm); beyond that the exponential Cp decay makes the
			// contribution negligible.
			if gap <= 0.12 {
				adjLen += ia.W
			}
		}
	}
	if math.IsInf(minGap, 1) {
		return 0, 0
	}
	if minGap < 0 {
		minGap = 0
	}
	return minGap, adjLen
}

// EstimateMean runs the estimator over many mappings and returns the mean
// fidelity (the per-bar statistic of Fig. 11).
func EstimateMean(nl *component.Netlist, ms []*mapper.Mapping, p Params) float64 {
	if len(ms) == 0 {
		return 0
	}
	var sum float64
	for _, m := range ms {
		sum += Estimate(nl, m, p).F
	}
	return sum / float64(len(ms))
}
