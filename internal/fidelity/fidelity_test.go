package fidelity

import (
	"math/rand"
	"testing"

	"qplacer/internal/circuit"
	"qplacer/internal/component"
	"qplacer/internal/frequency"
	"qplacer/internal/geom"
	"qplacer/internal/mapper"
	"qplacer/internal/physics"
	"qplacer/internal/topology"
)

func setup(t *testing.T) (*component.Netlist, *mapper.Mapping) {
	t.Helper()
	dev := topology.Grid25()
	a := frequency.Assign(dev, physics.DetuneThresholdGHz)
	nl, err := component.Build(dev, a.QubitFreq, a.ResFreq, component.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Spread layout: no crosstalk.
	for i, in := range nl.Instances {
		in.Pos = geom.Point{X: float64(i%30) * 6, Y: float64(i/30) * 6}
	}
	m, err := mapper.Map(circuit.BV(4), dev, nil, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	return nl, m
}

func TestSpreadLayoutHasNoCrosstalk(t *testing.T) {
	nl, m := setup(t)
	bd := Estimate(nl, m, DefaultParams())
	if bd.FQubitXT < 0.9999 || bd.FResXT < 0.9999 {
		t.Fatalf("spread layout crosstalk factors: q=%v r=%v", bd.FQubitXT, bd.FResXT)
	}
	if bd.FIntrinsic >= 1 || bd.FIntrinsic <= 0 {
		t.Fatalf("intrinsic factor = %v, want (0,1)", bd.FIntrinsic)
	}
	if bd.F != bd.FIntrinsic*bd.FQubitXT*bd.FResXT {
		t.Fatal("total must be the product of factors")
	}
}

func TestStackedResonantQubitsCrushFidelity(t *testing.T) {
	nl, m := setup(t)
	clean := Estimate(nl, m, DefaultParams()).F
	// Stack two active resonant qubits.
	var done bool
	for i := 0; i < len(m.ActiveQubits) && !done; i++ {
		for j := i + 1; j < len(m.ActiveQubits); j++ {
			a := nl.Instances[nl.QubitInst[m.ActiveQubits[i]]]
			b := nl.Instances[nl.QubitInst[m.ActiveQubits[j]]]
			if frequency.Resonant(a.FreqGHz, b.FreqGHz, 0.1) {
				b.Pos = a.Pos.Add(geom.Point{X: 0.9})
				done = true
				break
			}
		}
	}
	if !done {
		t.Skip("no resonant active qubit pair in this mapping")
	}
	dirty := Estimate(nl, m, DefaultParams()).F
	if dirty >= clean/2 {
		t.Fatalf("stacked resonant qubits: fidelity %v vs clean %v — no penalty", dirty, clean)
	}
}

func TestEstimateMean(t *testing.T) {
	nl, _ := setup(t)
	dev := nl.Device
	maps, err := mapper.Sample(circuit.BV(4), dev, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	mean := EstimateMean(nl, maps, DefaultParams())
	if mean <= 0 || mean > 1 {
		t.Fatalf("mean fidelity = %v", mean)
	}
	if EstimateMean(nl, nil, DefaultParams()) != 0 {
		t.Fatal("empty mapping list must give 0")
	}
}

func TestFidelityMonotoneInGateErrors(t *testing.T) {
	nl, m := setup(t)
	p1 := DefaultParams()
	p2 := DefaultParams()
	p2.Err2Q *= 4
	if Estimate(nl, m, p2).F >= Estimate(nl, m, p1).F {
		t.Fatal("larger gate errors must lower fidelity")
	}
}
