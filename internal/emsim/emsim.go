// Package emsim is the stand-in for the Qiskit Metal electromagnetic
// extraction the paper uses to obtain parasitic capacitances (Fig. 5b, 6c).
// It solves the 2-D electrostatic Laplace problem ∇·(ε∇φ) = 0 on a
// finite-difference grid with successive over-relaxation and extracts the
// coupling capacitance between two coplanar metal pads on a dielectric
// substrate via the induced-charge method.
//
// It is a quasi-2-D model: the solved cross-section capacitance (per unit
// depth) is multiplied by an effective pad depth to obtain fF. Because the
// 2-D field spreads in one fewer dimension than reality, the model
// overestimates magnitudes (tens of fF near contact vs ~2 fF in 3-D) and
// decays a factor of 2–3 more slowly. Absolute accuracy is not the goal —
// the placer consumes the calibrated 3-D closed form in package physics;
// this extractor independently validates its qualitative shape (monotone,
// near-exponential decay), as pinned by the package tests.
package emsim

import (
	"errors"
	"math"
)

// Eps0FFPerMM is the vacuum permittivity in fF/mm (8.854e-12 F/m).
const Eps0FFPerMM = 8.854

// Config describes a two-pad coplanar extraction problem. All lengths in mm.
type Config struct {
	PadWidth   float64 // metal pad width (e.g. 0.4 for a transmon pocket)
	Separation float64 // edge-to-edge pad separation
	PadDepth   float64 // out-of-plane depth used to convert to fF
	EpsSub     float64 // substrate relative permittivity (silicon ≈ 11.7)

	DomainW float64 // total domain width; 0 → auto
	DomainH float64 // total domain height; 0 → auto
	Cell    float64 // grid cell size; 0 → auto
	MaxIter int     // SOR iteration cap; 0 → auto
	Tol     float64 // convergence tolerance on max update; 0 → auto
}

func (c *Config) fillDefaults() error {
	if c.PadWidth <= 0 || c.Separation < 0 {
		return errors.New("emsim: pad width must be positive and separation non-negative")
	}
	if c.PadDepth <= 0 {
		c.PadDepth = c.PadWidth
	}
	if c.EpsSub <= 0 {
		c.EpsSub = 11.7
	}
	if c.DomainW <= 0 {
		c.DomainW = 4*c.PadWidth + 2*c.Separation + 4
	}
	if c.DomainH <= 0 {
		c.DomainH = 4
	}
	if c.Cell <= 0 {
		c.Cell = math.Min(c.PadWidth/8, 0.05)
		if c.Separation > 0 && c.Separation/4 < c.Cell {
			c.Cell = math.Max(c.Separation/4, 0.01)
		}
	}
	if c.MaxIter <= 0 {
		c.MaxIter = 20000
	}
	if c.Tol <= 0 {
		c.Tol = 1e-7
	}
	return nil
}

// Result holds the extraction output.
type Result struct {
	CapFF      float64 // coupling capacitance in fF
	Iterations int     // SOR iterations used
	Residual   float64 // final max update
}

// ExtractCp solves the two-pad problem and returns the coupling capacitance.
func ExtractCp(cfg Config) (Result, error) {
	if err := cfg.fillDefaults(); err != nil {
		return Result{}, err
	}
	h := cfg.Cell
	nx := int(math.Round(cfg.DomainW/h)) + 1
	ny := int(math.Round(cfg.DomainH/h)) + 1

	// Node classification. The substrate occupies the lower half; the pads
	// sit on the surface row, symmetric about the domain centre.
	surface := ny / 2
	idx := func(x, y int) int { return y*nx + x }

	phi := make([]float64, nx*ny)
	fixed := make([]int8, nx*ny) // 0 free, +1 pad1, -1 pad2, 2 boundary

	// Mutual-capacitance excitation: pad 1 at 1 V, pad 2 grounded. The
	// charge induced on the grounded pad 2 is then exactly −Cm·V, free of
	// any pad-to-ground-boundary contribution.
	centerX := cfg.DomainW / 2
	p1lo := centerX - cfg.Separation/2 - cfg.PadWidth
	p1hi := centerX - cfg.Separation/2
	p2lo := centerX + cfg.Separation/2
	p2hi := centerX + cfg.Separation/2 + cfg.PadWidth

	for x := 0; x < nx; x++ {
		xx := float64(x) * h
		switch {
		case xx >= p1lo-1e-9 && xx <= p1hi+1e-9:
			fixed[idx(x, surface)] = 1
			phi[idx(x, surface)] = 1
		case xx >= p2lo-1e-9 && xx <= p2hi+1e-9:
			fixed[idx(x, surface)] = -1
			phi[idx(x, surface)] = 0
		}
	}
	for x := 0; x < nx; x++ {
		fixed[idx(x, 0)] = 2
		fixed[idx(x, ny-1)] = 2
	}
	for y := 0; y < ny; y++ {
		fixed[idx(0, y)] = 2
		fixed[idx(nx-1, y)] = 2
	}

	// Cell permittivity: substrate below the surface, vacuum above. Node
	// (x, y) uses face permittivities averaged from adjacent half-cells.
	epsAt := func(y int) float64 {
		if y < surface {
			return cfg.EpsSub
		}
		if y == surface {
			return (cfg.EpsSub + 1) / 2
		}
		return 1
	}

	omega := 2 / (1 + math.Pi/float64(nx)) // near-optimal SOR factor
	var resid float64
	iters := 0
	for ; iters < cfg.MaxIter; iters++ {
		resid = 0
		for y := 1; y < ny-1; y++ {
			eN := (epsAt(y) + epsAt(y+1)) / 2
			eS := (epsAt(y) + epsAt(y-1)) / 2
			eEW := epsAt(y)
			den := eN + eS + 2*eEW
			row := y * nx
			for x := 1; x < nx-1; x++ {
				i := row + x
				if fixed[i] != 0 {
					continue
				}
				next := (eEW*(phi[i-1]+phi[i+1]) + eS*phi[i-nx] + eN*phi[i+nx]) / den
				d := next - phi[i]
				phi[i] += omega * d
				if ad := math.Abs(d); ad > resid {
					resid = ad
				}
			}
		}
		if resid < cfg.Tol {
			break
		}
	}

	// Induced charge on the grounded pad 2:
	// Q2 = Σ_faces ε · (φ_pad − φ_neighbour) = −Σ ε·φ_neighbour
	// (per unit depth; the h factors of flux·length cancel). Mutual
	// capacitance Cm = −Q2 / V with V = 1.
	var q float64
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			i := idx(x, y)
			if fixed[i] != -1 {
				continue
			}
			for _, nb := range [][3]int{
				{x - 1, y, 0}, {x + 1, y, 0}, {x, y - 1, -1}, {x, y + 1, +1},
			} {
				xn, yn := nb[0], nb[1]
				if xn < 0 || xn >= nx || yn < 0 || yn >= ny {
					continue
				}
				j := idx(xn, yn)
				if fixed[j] == -1 {
					continue // internal pad face
				}
				var eFace float64
				if nb[2] == 0 {
					eFace = epsAt(y)
				} else {
					eFace = (epsAt(y) + epsAt(y+nb[2])) / 2
				}
				q += eFace * (phi[i] - phi[j])
			}
		}
	}
	cap2D := -q * Eps0FFPerMM // fF per mm of depth; Cm = −Q2/V
	return Result{
		CapFF:      cap2D * cfg.PadDepth,
		Iterations: iters,
		Residual:   resid,
	}, nil
}

// SweepSeparation extracts Cp for each separation (mm) with shared settings.
func SweepSeparation(base Config, seps []float64) ([]float64, error) {
	out := make([]float64, len(seps))
	for i, d := range seps {
		cfg := base
		cfg.Separation = d
		r, err := ExtractCp(cfg)
		if err != nil {
			return nil, err
		}
		out[i] = r.CapFF
	}
	return out, nil
}

// FitExponential fits C(d) ≈ c0·exp(−d/decay) to the sweep by linear least
// squares on log C. It returns c0 (fF) and decay (mm).
func FitExponential(seps, caps []float64) (c0, decay float64, err error) {
	if len(seps) != len(caps) || len(seps) < 2 {
		return 0, 0, errors.New("emsim: need at least two matching samples")
	}
	var sx, sy, sxx, sxy float64
	n := float64(len(seps))
	for i := range seps {
		if caps[i] <= 0 {
			return 0, 0, errors.New("emsim: non-positive capacitance sample")
		}
		x, y := seps[i], math.Log(caps[i])
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, 0, errors.New("emsim: degenerate sweep")
	}
	slope := (n*sxy - sx*sy) / den
	inter := (sy - slope*sx) / n
	if slope >= 0 {
		return 0, 0, errors.New("emsim: capacitance does not decay")
	}
	return math.Exp(inter), -1 / slope, nil
}

// ParallelPlates solves the textbook geometry of two facing vertical plates
// (length plateLen, gap, in a dielectric of permittivity eps) and returns
// the capacitance per unit depth in fF/mm. Used to validate the solver
// against C = ε0·ε·L/d.
func ParallelPlates(plateLen, gap, eps, cell float64) (float64, error) {
	if plateLen <= 0 || gap <= 0 || eps <= 0 || cell <= 0 {
		return 0, errors.New("emsim: invalid plate geometry")
	}
	w := gap + 6*plateLen
	hgt := 3 * plateLen
	nx := int(math.Round(w/cell)) + 1
	ny := int(math.Round(hgt/cell)) + 1
	idx := func(x, y int) int { return y*nx + x }
	phi := make([]float64, nx*ny)
	fixed := make([]int8, nx*ny)

	x1 := int(math.Round((w/2 - gap/2) / cell))
	x2 := int(math.Round((w/2 + gap/2) / cell))
	yLo := int(math.Round((hgt/2 - plateLen/2) / cell))
	yHi := int(math.Round((hgt/2 + plateLen/2) / cell))
	for y := yLo; y <= yHi; y++ {
		fixed[idx(x1, y)] = 1
		phi[idx(x1, y)] = 0.5
		fixed[idx(x2, y)] = -1
		phi[idx(x2, y)] = -0.5
	}
	for x := 0; x < nx; x++ {
		fixed[idx(x, 0)], fixed[idx(x, ny-1)] = 2, 2
	}
	for y := 0; y < ny; y++ {
		fixed[idx(0, y)], fixed[idx(nx-1, y)] = 2, 2
	}

	omega := 2 / (1 + math.Pi/float64(nx))
	for it := 0; it < 30000; it++ {
		var resid float64
		for y := 1; y < ny-1; y++ {
			row := y * nx
			for x := 1; x < nx-1; x++ {
				i := row + x
				if fixed[i] != 0 {
					continue
				}
				next := (phi[i-1] + phi[i+1] + phi[i-nx] + phi[i+nx]) / 4
				d := next - phi[i]
				phi[i] += omega * d
				if ad := math.Abs(d); ad > resid {
					resid = ad
				}
			}
		}
		if resid < 1e-8 {
			break
		}
	}
	var q float64
	for y := yLo; y <= yHi; y++ {
		i := idx(x1, y)
		for _, j := range []int{i - 1, i + 1, i - nx, i + nx} {
			if fixed[j] == 1 {
				continue
			}
			q += phi[i] - phi[j]
		}
	}
	return q * eps * Eps0FFPerMM, nil
}
