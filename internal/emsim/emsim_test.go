package emsim

import (
	"math"
	"testing"

	"qplacer/internal/physics"
)

// coarse returns fast settings for tests.
func coarse() Config {
	return Config{
		PadWidth: 0.4,
		PadDepth: 0.4,
		EpsSub:   physics.EpsSilicon,
		DomainW:  6,
		DomainH:  3,
		Cell:     0.05,
		MaxIter:  8000,
		Tol:      1e-6,
	}
}

func TestParallelPlatesMatchesTheory(t *testing.T) {
	// C/depth = ε0·ε·L/gap plus fringe. The FD result must land within
	// ~25% above the ideal value (fringe fields only add capacitance).
	plateLen, gap := 1.0, 0.1
	got, err := ParallelPlates(plateLen, gap, 1, 0.025)
	if err != nil {
		t.Fatal(err)
	}
	ideal := Eps0FFPerMM * plateLen / gap
	if got < ideal {
		t.Fatalf("FD capacitance %v below ideal %v — flux accounting wrong", got, ideal)
	}
	if got > ideal*1.35 {
		t.Fatalf("FD capacitance %v too far above ideal %v", got, ideal)
	}
}

func TestParallelPlatesScalesWithEps(t *testing.T) {
	c1, err := ParallelPlates(0.5, 0.1, 1, 0.025)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := ParallelPlates(0.5, 0.1, 4, 0.025)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c2/c1-4) > 0.01 {
		t.Fatalf("permittivity scaling = %v, want 4", c2/c1)
	}
}

func TestExtractCpConverges(t *testing.T) {
	cfg := coarse()
	cfg.Separation = 0.2
	r, err := ExtractCp(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.CapFF <= 0 {
		t.Fatalf("capacitance = %v, want positive", r.CapFF)
	}
	if r.Iterations >= cfg.MaxIter {
		t.Fatalf("did not converge: residual %v after %d iterations", r.Residual, r.Iterations)
	}
}

func TestCpDecaysWithSeparation(t *testing.T) {
	seps := []float64{0.1, 0.2, 0.4, 0.8, 1.2}
	caps, err := SweepSeparation(coarse(), seps)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(caps); i++ {
		if caps[i] >= caps[i-1] {
			t.Fatalf("Cp must decay: %v at separations %v", caps, seps)
		}
	}
	// The quasi-2D cross-section model overestimates 3-D pad coupling
	// (fields spread in one fewer dimension), so magnitudes land in the
	// tens of fF near contact rather than the ~2 fF of the calibrated 3-D
	// closed form. What must hold: finite, positive, decisively decaying.
	if caps[0] > 100 || caps[len(caps)-1] < 1e-6 {
		t.Fatalf("Cp magnitudes implausible: %v", caps)
	}
	if caps[len(caps)-1] > caps[0]/3 {
		t.Fatalf("Cp decay too weak over 1.1 mm: %v", caps)
	}
}

func TestFitExponential(t *testing.T) {
	// Perfect synthetic decay must be recovered.
	seps := []float64{0.1, 0.3, 0.5, 0.9, 1.3}
	caps := make([]float64, len(seps))
	for i, d := range seps {
		caps[i] = 1.8 * math.Exp(-d/0.25)
	}
	c0, decay, err := FitExponential(seps, caps)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c0-1.8) > 1e-9 || math.Abs(decay-0.25) > 1e-9 {
		t.Fatalf("fit = %v, %v; want 1.8, 0.25", c0, decay)
	}
}

func TestFitExponentialErrors(t *testing.T) {
	if _, _, err := FitExponential([]float64{1}, []float64{1}); err == nil {
		t.Error("single sample should fail")
	}
	if _, _, err := FitExponential([]float64{1, 2}, []float64{1, -1}); err == nil {
		t.Error("negative capacitance should fail")
	}
	if _, _, err := FitExponential([]float64{1, 2}, []float64{1, 2}); err == nil {
		t.Error("growing capacitance should fail")
	}
	if _, _, err := FitExponential([]float64{1, 1}, []float64{1, 1}); err == nil {
		t.Error("degenerate sweep should fail")
	}
}

// The closed-form model in package physics must agree with the FD extractor
// in shape: both near-exponential decays, with decay lengths within a small
// factor (the 2-D cross-section decays more slowly than the 3-D closed form
// because fields spread in one fewer dimension).
func TestClosedFormModelTracksExtractor(t *testing.T) {
	if testing.Short() {
		t.Skip("FD sweep is slow")
	}
	seps := []float64{0.1, 0.2, 0.3, 0.5, 0.7, 0.9}
	caps, err := SweepSeparation(coarse(), seps)
	if err != nil {
		t.Fatal(err)
	}
	_, fdDecay, err := FitExponential(seps, caps)
	if err != nil {
		t.Fatal(err)
	}
	model := make([]float64, len(seps))
	for i, d := range seps {
		model[i] = physics.ParasiticCapQubitFF(d)
	}
	_, mDecay, err := FitExponential(seps, model)
	if err != nil {
		t.Fatal(err)
	}
	ratio := fdDecay / mDecay
	if ratio < 0.5 || ratio > 4.0 {
		t.Fatalf("decay mismatch: FD %v mm vs model %v mm", fdDecay, mDecay)
	}
}

func TestExtractCpValidation(t *testing.T) {
	if _, err := ExtractCp(Config{PadWidth: 0}); err == nil {
		t.Error("zero pad width should error")
	}
	if _, err := ExtractCp(Config{PadWidth: 0.4, Separation: -1}); err == nil {
		t.Error("negative separation should error")
	}
	if _, err := ParallelPlates(0, 1, 1, 0.1); err == nil {
		t.Error("invalid plates should error")
	}
}
