// Package mapper stands in for the Qiskit L3 transpilation the paper uses
// (§VI-A): it samples connected physical-qubit subsets, maps logical qubits
// greedily, routes two-qubit gates with shortest-path SWAP insertion, and
// ASAP-schedules the result into layers. The output — per-qubit gate counts,
// active components and total duration — is what the fidelity model consumes.
// Identical mappings are reused across all placement schemes, exactly as the
// paper's methodology requires.
package mapper

import (
	"fmt"
	"math/rand"

	"qplacer/internal/circuit"
	"qplacer/internal/physics"
	"qplacer/internal/topology"
)

// Mapping is one routed, scheduled execution of a circuit on a device.
type Mapping struct {
	Device  *topology.Device
	Circuit string

	Logical2Phys []int    // final mapping (logical → physical)
	ActiveQubits []int    // physical qubits used
	ActiveEdges  [][2]int // device couplings (resonators) used

	N1Q, N2Q, NSwaps int
	Gates1Q          []int // per physical qubit
	Gates2Q          []int // per physical qubit
	EdgeUse          map[[2]int]int

	Depth      int
	DurationNs float64
}

// Map routes circ onto the subset of physical qubits (a connected induced
// subgraph at least circ.NumQubits large). A nil subset uses a random
// connected subset drawn with rng.
func Map(circ *circuit.Circuit, dev *topology.Device, subset []int, rng *rand.Rand) (*Mapping, error) {
	if err := circ.Validate(); err != nil {
		return nil, err
	}
	if circ.NumQubits > dev.NumQubits {
		return nil, fmt.Errorf("mapper: circuit needs %d qubits, device has %d",
			circ.NumQubits, dev.NumQubits)
	}
	if subset == nil {
		subset = dev.Graph.RandomConnectedSubset(circ.NumQubits, rng)
		if subset == nil {
			return nil, fmt.Errorf("mapper: failed to sample a connected subset of %d qubits",
				circ.NumQubits)
		}
	}
	if len(subset) < circ.NumQubits {
		return nil, fmt.Errorf("mapper: subset of %d for a %d-qubit circuit",
			len(subset), circ.NumQubits)
	}
	sub, orig := dev.Graph.InducedSubgraph(subset)
	if !sub.Connected() {
		return nil, fmt.Errorf("mapper: subset is not connected")
	}

	m := &Mapping{
		Device:  dev,
		Circuit: circ.Name,
		Gates1Q: make([]int, dev.NumQubits),
		Gates2Q: make([]int, dev.NumQubits),
		EdgeUse: map[[2]int]int{},
	}

	// Initial mapping: BFS order of the subset, so logically adjacent qubits
	// land near each other.
	bfs := sub.BFSFrom(0)
	l2p := make([]int, circ.NumQubits) // logical → subset-local index
	for l := 0; l < circ.NumQubits; l++ {
		l2p[l] = bfs[l]
	}

	ready := make([]float64, dev.NumQubits) // per-qubit available time (ns)
	var duration float64

	useEdge := func(a, b int) {
		pa, pb := orig[a], orig[b]
		if pa > pb {
			pa, pb = pb, pa
		}
		m.EdgeUse[[2]int{pa, pb}]++
	}
	do1q := func(local int) {
		p := orig[local]
		m.N1Q++
		m.Gates1Q[p]++
		ready[p] += physics.Gate1QNs
		if ready[p] > duration {
			duration = ready[p]
		}
	}
	do2q := func(la, lb int) {
		pa, pb := orig[la], orig[lb]
		m.N2Q++
		m.Gates2Q[pa]++
		m.Gates2Q[pb]++
		start := ready[pa]
		if ready[pb] > start {
			start = ready[pb]
		}
		end := start + physics.Gate2QNs
		ready[pa], ready[pb] = end, end
		if end > duration {
			duration = end
		}
		useEdge(la, lb)
	}

	for _, g := range circ.Gates {
		if !g.TwoQubit() {
			do1q(l2p[g.Qubits[0]])
			continue
		}
		a, b := l2p[g.Qubits[0]], l2p[g.Qubits[1]]
		if !sub.HasEdge(a, b) {
			// Route: swap a along the shortest path until adjacent to b.
			path := sub.ShortestPath(a, b)
			if path == nil {
				return nil, fmt.Errorf("mapper: no path between %d and %d", a, b)
			}
			for len(path) > 2 {
				next := path[1]
				// SWAP = 3 CZ-equivalents on the (a, next) coupling.
				for k := 0; k < 3; k++ {
					do2q(path[0], next)
				}
				m.NSwaps++
				// Update the logical mapping: whoever sat on `next` moves
				// to `a`'s old spot.
				for l := range l2p {
					switch l2p[l] {
					case path[0]:
						l2p[l] = next
					case next:
						l2p[l] = path[0]
					}
				}
				path = path[1:]
			}
			a = path[0]
		}
		do2q(a, b)
	}

	m.Logical2Phys = make([]int, circ.NumQubits)
	for l, local := range l2p {
		m.Logical2Phys[l] = orig[local]
	}
	seen := map[int]bool{}
	for _, p := range orig {
		if m.Gates1Q[p] > 0 || m.Gates2Q[p] > 0 {
			if !seen[p] {
				seen[p] = true
				m.ActiveQubits = append(m.ActiveQubits, p)
			}
		}
	}
	for e := range m.EdgeUse {
		m.ActiveEdges = append(m.ActiveEdges, e)
	}
	sortPairs(m.ActiveEdges)
	sortInts(m.ActiveQubits)
	m.DurationNs = duration
	m.Depth = int(duration / physics.Gate2QNs)
	if m.Depth < 1 {
		m.Depth = 1
	}
	return m, nil
}

// Sample draws n mappings with distinct seeded subsets (§VI-A uses 50 to
// cover all physical qubits); identical subsets across placement schemes
// come from reusing the same seed.
func Sample(circ *circuit.Circuit, dev *topology.Device, n int, seed int64) ([]*Mapping, error) {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*Mapping, 0, n)
	for i := 0; i < n; i++ {
		m, err := Map(circ, dev, nil, rng)
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	return out, nil
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

func sortPairs(a [][2]int) {
	less := func(x, y [2]int) bool {
		if x[0] != y[0] {
			return x[0] < y[0]
		}
		return x[1] < y[1]
	}
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && less(a[j], a[j-1]); j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
