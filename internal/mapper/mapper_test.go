package mapper

import (
	"math/rand"
	"testing"

	"qplacer/internal/circuit"
	"qplacer/internal/topology"
)

func TestMapRoutesAllGates(t *testing.T) {
	dev := topology.Falcon27()
	for _, bench := range circuit.TableI() {
		c := bench.Build()
		m, err := Map(c, dev, nil, rand.New(rand.NewSource(1)))
		if err != nil {
			t.Fatalf("%s: %v", bench.Name, err)
		}
		n1, n2 := c.Counts()
		if m.N1Q != n1 {
			t.Errorf("%s: 1q count %d, want %d", bench.Name, m.N1Q, n1)
		}
		// Routing adds 3 CZ per SWAP.
		if m.N2Q != n2+3*m.NSwaps {
			t.Errorf("%s: 2q count %d, want %d + 3·%d", bench.Name, m.N2Q, n2, m.NSwaps)
		}
		if len(m.ActiveQubits) == 0 || len(m.ActiveEdges) == 0 {
			t.Errorf("%s: no active components", bench.Name)
		}
		if m.DurationNs <= 0 || m.Depth < 1 {
			t.Errorf("%s: degenerate schedule %+v", bench.Name, m)
		}
	}
}

func TestMapUsesOnlyDeviceEdges(t *testing.T) {
	dev := topology.Grid25()
	c := circuit.QAOA(9, 3)
	m, err := Map(c, dev, nil, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	for e := range m.EdgeUse {
		if !dev.Graph.HasEdge(e[0], e[1]) {
			t.Fatalf("mapping used non-existent edge %v", e)
		}
	}
}

func TestMapRejectsOversizedCircuit(t *testing.T) {
	dev := topology.Grid25()
	if _, err := Map(circuit.BV(30), dev, nil, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("30-qubit circuit on 25-qubit device must fail")
	}
}

func TestMapExplicitSubset(t *testing.T) {
	dev := topology.Grid25()
	subset := []int{0, 1, 2, 5, 6, 7, 10, 11, 12}
	m, err := Map(circuit.BV(9), dev, subset, nil)
	if err != nil {
		t.Fatal(err)
	}
	allowed := map[int]bool{}
	for _, q := range subset {
		allowed[q] = true
	}
	for _, q := range m.ActiveQubits {
		if !allowed[q] {
			t.Fatalf("active qubit %d outside subset", q)
		}
	}
}

func TestMapDisconnectedSubsetFails(t *testing.T) {
	dev := topology.Grid25()
	if _, err := Map(circuit.BV(2), dev, []int{0, 24}, nil); err == nil {
		t.Fatal("disconnected subset must fail")
	}
}

func TestSampleSeededReproducible(t *testing.T) {
	dev := topology.Falcon27()
	c := circuit.BV(4)
	a, err := Sample(c, dev, 5, 99)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Sample(c, dev, 5, 99)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].N2Q != b[i].N2Q || a[i].DurationNs != b[i].DurationNs {
			t.Fatal("same seed must reproduce identical mappings")
		}
	}
}
