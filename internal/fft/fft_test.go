package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"

	"qplacer/internal/parallel"
)

// newTestPool builds a worker pool released when the test ends.
func newTestPool(t *testing.T, workers int) *parallel.Pool {
	t.Helper()
	p := parallel.New(workers)
	t.Cleanup(p.Close)
	return p
}

// naiveDFT is the O(n²) reference DFT.
func naiveDFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var s complex128
		for j := 0; j < n; j++ {
			ang := -2 * math.Pi * float64(k*j) / float64(n)
			s += x[j] * cmplx.Exp(complex(0, ang))
		}
		out[k] = s
	}
	return out
}

func naiveDCT2(x []float64) []float64 {
	n := len(x)
	out := make([]float64, n)
	for k := 0; k < n; k++ {
		var s float64
		for j := 0; j < n; j++ {
			s += x[j] * math.Cos(math.Pi*float64(k)*(2*float64(j)+1)/(2*float64(n)))
		}
		out[k] = s
	}
	return out
}

func naiveDCT3(x []float64) []float64 {
	n := len(x)
	out := make([]float64, n)
	for j := 0; j < n; j++ {
		s := x[0] / 2
		for k := 1; k < n; k++ {
			s += x[k] * math.Cos(math.Pi*float64(k)*(2*float64(j)+1)/(2*float64(n)))
		}
		out[j] = s
	}
	return out
}

func naiveDST3M(x []float64) []float64 {
	n := len(x)
	out := make([]float64, n)
	for j := 0; j < n; j++ {
		var s float64
		for k := 1; k < n; k++ {
			s += x[k] * math.Sin(math.Pi*float64(k)*(2*float64(j)+1)/(2*float64(n)))
		}
		out[j] = s
	}
	return out
}

func randReal(n int, rng *rand.Rand) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.NormFloat64()
	}
	return out
}

func maxAbsDiff(a, b []float64) float64 {
	var m float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func TestIsPow2AndNextPow2(t *testing.T) {
	for _, tc := range []struct {
		n    int
		pow2 bool
		next int
	}{
		{1, true, 1}, {2, true, 2}, {3, false, 4}, {4, true, 4},
		{5, false, 8}, {127, false, 128}, {128, true, 128}, {129, false, 256},
	} {
		if IsPow2(tc.n) != tc.pow2 {
			t.Errorf("IsPow2(%d) = %v", tc.n, !tc.pow2)
		}
		if got := NextPow2(tc.n); got != tc.next {
			t.Errorf("NextPow2(%d) = %d, want %d", tc.n, got, tc.next)
		}
	}
	if IsPow2(0) || IsPow2(-4) {
		t.Error("non-positive numbers are not powers of two")
	}
}

func TestFFTMatchesNaiveDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{2, 4, 8, 32, 64} {
		p := NewPlan(n)
		a := make([]complex128, p.ComplexLen())
		for i := range a {
			a[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		want := naiveDFT(a)
		p.FFT(a)
		for k := range a {
			if cmplx.Abs(a[k]-want[k]) > 1e-9 {
				t.Fatalf("n=%d: FFT[%d] = %v, want %v", n, k, a[k], want[k])
			}
		}
	}
}

func TestIFFTInvertsFFT(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{2, 4, 16, 64} {
		p := NewPlan(n)
		a := make([]complex128, p.ComplexLen())
		orig := make([]complex128, p.ComplexLen())
		for i := range a {
			a[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			orig[i] = a[i]
		}
		p.FFT(a)
		p.IFFT(a)
		for i := range a {
			if cmplx.Abs(a[i]-orig[i]) > 1e-9 {
				t.Fatalf("n=%d: roundtrip[%d] = %v, want %v", n, i, a[i], orig[i])
			}
		}
	}
}

func TestDCT2MatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{1, 2, 8, 64, 128} {
		p := NewPlan(n)
		x := randReal(n, rng)
		want := naiveDCT2(x)
		got := make([]float64, n)
		p.DCT2(got, x)
		if d := maxAbsDiff(got, want); d > 1e-8 {
			t.Fatalf("n=%d: DCT2 max diff %g", n, d)
		}
	}
}

func TestDCT3MatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{1, 2, 8, 64, 128} {
		p := NewPlan(n)
		x := randReal(n, rng)
		want := naiveDCT3(x)
		got := make([]float64, n)
		p.DCT3(got, x)
		if d := maxAbsDiff(got, want); d > 1e-8 {
			t.Fatalf("n=%d: DCT3 max diff %g", n, d)
		}
	}
}

func TestDST3MMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{2, 8, 64, 128} {
		p := NewPlan(n)
		x := randReal(n, rng)
		want := naiveDST3M(x)
		got := make([]float64, n)
		p.DST3M(got, x)
		if d := maxAbsDiff(got, want); d > 1e-8 {
			t.Fatalf("n=%d: DST3M max diff %g", n, d)
		}
	}
}

func TestDCT3InvertsDCT2(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n := 32
	p := NewPlan(n)
	x := randReal(n, rng)
	coeff := make([]float64, n)
	back := make([]float64, n)
	p.DCT2(coeff, x)
	p.DCT3(back, coeff)
	for i := range back {
		back[i] *= 2 / float64(n)
	}
	if d := maxAbsDiff(back, x); d > 1e-9 {
		t.Fatalf("DCT3∘DCT2 roundtrip max diff %g", d)
	}
}

func TestTransformsAllowAliasedBuffers(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 16
	p := NewPlan(n)
	x := randReal(n, rng)
	want := naiveDCT2(x)
	inPlace := append([]float64(nil), x...)
	p.DCT2(inPlace, inPlace)
	if d := maxAbsDiff(inPlace, want); d > 1e-9 {
		t.Fatalf("aliased DCT2 max diff %g", d)
	}
}

func TestNewPlanRejectsNonPow2(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewPlan(12) should panic")
		}
	}()
	NewPlan(12)
}

func TestGrid2DInverseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, dims := range [][2]int{{8, 8}, {16, 4}, {4, 32}} {
		nx, ny := dims[0], dims[1]
		g := NewGrid2D(nx, ny)
		a := randReal(nx*ny, rng)
		orig := append([]float64(nil), a...)
		g.DCT2D(a)
		g.IDCT2D(a)
		if d := maxAbsDiff(a, orig); d > 1e-9 {
			t.Fatalf("%dx%d roundtrip max diff %g", nx, ny, d)
		}
	}
}

// The 2-D synthesis operators must match a direct basis-function sum.
func TestGrid2DSynthesisMatchesDirect(t *testing.T) {
	nx, ny := 8, 4
	g := NewGrid2D(nx, ny)
	rng := rand.New(rand.NewSource(9))
	coeff := randReal(nx*ny, rng)

	direct := func(kind string) []float64 {
		out := make([]float64, nx*ny)
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				var s float64
				for v := 0; v < ny; v++ {
					for u := 0; u < nx; u++ {
						c := coeff[v*nx+u]
						cosX := math.Cos(math.Pi * float64(u) * (2*float64(x) + 1) / (2 * float64(nx)))
						sinX := math.Sin(math.Pi * float64(u) * (2*float64(x) + 1) / (2 * float64(nx)))
						cosY := math.Cos(math.Pi * float64(v) * (2*float64(y) + 1) / (2 * float64(ny)))
						sinY := math.Sin(math.Pi * float64(v) * (2*float64(y) + 1) / (2 * float64(ny)))
						switch kind {
						case "cc":
							fx, fy := cosX, cosY
							if u == 0 {
								fx = 0.5
							}
							if v == 0 {
								fy = 0.5
							}
							s += c * fx * fy
						case "sc":
							fy := cosY
							if v == 0 {
								fy = 0.5
							}
							if u > 0 {
								s += c * sinX * fy
							}
						case "cs":
							fx := cosX
							if u == 0 {
								fx = 0.5
							}
							if v > 0 {
								s += c * fx * sinY
							}
						}
					}
				}
				out[y*nx+x] = s
			}
		}
		return out
	}

	for _, tc := range []struct {
		kind string
		run  func([]float64)
	}{
		{"cc", g.SynthCosCos},
		{"sc", g.SynthSinCos},
		{"cs", g.SynthCosSin},
	} {
		a := append([]float64(nil), coeff...)
		tc.run(a)
		want := direct(tc.kind)
		if d := maxAbsDiff(a, want); d > 1e-8 {
			t.Fatalf("%s synthesis max diff %g", tc.kind, d)
		}
	}
}

// Property: Parseval-like energy conservation for the unitary-normalized FFT.
func TestQuickFFTParseval(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 16
		p := NewPlan(n)
		a := make([]complex128, p.ComplexLen())
		var eIn float64
		for i := range a {
			a[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			eIn += real(a[i])*real(a[i]) + imag(a[i])*imag(a[i])
		}
		p.FFT(a)
		var eOut float64
		for i := range a {
			eOut += real(a[i])*real(a[i]) + imag(a[i])*imag(a[i])
		}
		return math.Abs(eOut-float64(p.ComplexLen())*eIn) < 1e-6*(1+eIn)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: DCT2 of a constant vector is an impulse at k=0 with value n·c.
func TestQuickDCT2Constant(t *testing.T) {
	f := func(c float64) bool {
		c = math.Mod(c, 1e6)
		n := 16
		p := NewPlan(n)
		x := make([]float64, n)
		for i := range x {
			x[i] = c
		}
		out := make([]float64, n)
		p.DCT2(out, x)
		if math.Abs(out[0]-float64(n)*c) > 1e-7*(1+math.Abs(c)) {
			return false
		}
		for k := 1; k < n; k++ {
			if math.Abs(out[k]) > 1e-7*(1+math.Abs(c)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestCloneSharesTables pins the allocation contract behind
// Grid2D.Parallelize: a clone reuses the original's immutable tables (one
// set of twiddle/phase/permutation arrays per size, however many workers)
// while carrying private scratch, and produces bit-identical transforms.
func TestCloneSharesTables(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	p := NewPlan(64)
	c := p.Clone()
	if c.tab != p.tab {
		t.Fatal("Clone did not share the immutable tables")
	}
	if &c.buf[0] == &p.buf[0] || &c.vbuf[0] == &p.vbuf[0] {
		t.Fatal("Clone shared mutable scratch")
	}
	x := randReal(64, rng)
	want := make([]float64, 64)
	got := make([]float64, 64)
	for _, tr := range []func(p *Plan, dst, src []float64){dct2T, dct3T, dst3mT} {
		tr(p, want, x)
		tr(c, got, x)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("clone transform diverged at %d: %v != %v (bitwise)", i, got[i], want[i])
			}
		}
	}
}

// TestGrid2DWorkersShareTables checks Parallelize builds its per-worker
// plans as clones: every worker's row/column plans alias the grid's tables.
func TestGrid2DWorkersShareTables(t *testing.T) {
	g := NewGrid2D(16, 8)
	pool := newTestPool(t, 3)
	g.Parallelize(pool)
	if len(g.workers) != 3 {
		t.Fatalf("expected 3 workers, got %d", len(g.workers))
	}
	for i, gw := range g.workers {
		if gw.px.tab != g.px.tab || gw.py.tab != g.py.tab {
			t.Fatalf("worker %d recomputed tables instead of sharing", i)
		}
	}
}

func BenchmarkDCT2_256(b *testing.B) {
	p := NewPlan(256)
	x := randReal(256, rand.New(rand.NewSource(1)))
	dst := make([]float64, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.DCT2(dst, x)
	}
}

func BenchmarkGrid2D_DCT2D_128(b *testing.B) {
	g := NewGrid2D(128, 128)
	a := randReal(128*128, rand.New(rand.NewSource(1)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf := append([]float64(nil), a...)
		g.DCT2D(buf)
	}
}
