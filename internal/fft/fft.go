// Package fft implements the fast trigonometric transforms used by the
// electrostatic density model: an iterative radix-2 complex FFT and, built on
// it, the DCT-II / DCT-III / mixed sine transforms that diagonalize the
// Poisson operator with Neumann (cosine-basis) boundary conditions, exactly
// as in the ePlace density formulation the paper builds on.
//
// The real transforms exploit input symmetry (Makhoul's permutation): a
// length-n DCT needs only one length-n/2 complex FFT, a 4× reduction over the
// naive length-2n mirrored embedding. All lengths must be powers of two. The
// package is stdlib-only and allocation-conscious: a Plan caches twiddle,
// phase, and permutation tables plus scratch space for repeated transforms of
// one size, and Clone shares the immutable tables across per-worker plans.
package fft

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"

	"qplacer/internal/parallel"
)

// IsPow2 reports whether n is a positive power of two.
func IsPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// NextPow2 returns the smallest power of two >= n (n must be positive).
func NextPow2(n int) int {
	if n <= 0 {
		panic("fft: NextPow2 requires positive n")
	}
	if IsPow2(n) {
		return n
	}
	return 1 << bits.Len(uint(n))
}

// tables holds the precomputed, immutable state for real transforms of one
// length: twiddle/bit-reversal tables for the half-length complex FFT, the
// DCT twist phases, the even/odd unpack factors, and Makhoul's input
// permutation. One tables value is shared (read-only) by every Plan cloned
// from the same original, so per-worker plans cost only scratch space.
type tables struct {
	n       int          // real-domain transform length
	m       int          // complex FFT length = n/2
	twiddle []complex128 // e^{-2πi k/m}, k = 0..m/2-1
	rev     []int        // bit-reversal permutation for length m
	phase   []complex128 // e^{-iπ k/(2n)}, k = 0..n-1 (DCT-II post-twist)
	phaseI  []complex128 // e^{+iπ k/(2n)}, k = 0..n-1 (DCT-III pre-twist)
	unpack  []complex128 // e^{-2πi k/n}, k = 0..m-1 (even/odd recombination)
	unpackI []complex128 // e^{+2πi k/n}, k = 0..m-1
	perm    []int        // Makhoul permutation: v[q] = x[perm[q]]
}

func newTables(n int) *tables {
	if !IsPow2(n) {
		panic(fmt.Sprintf("fft: length %d is not a power of two", n))
	}
	m := n / 2
	t := &tables{
		n:       n,
		m:       m,
		twiddle: make([]complex128, m/2),
		rev:     make([]int, m),
		phase:   make([]complex128, n),
		phaseI:  make([]complex128, n),
		unpack:  make([]complex128, m),
		unpackI: make([]complex128, m),
		perm:    make([]int, n),
	}
	for k := range t.twiddle {
		t.twiddle[k] = cmplx.Exp(complex(0, -2*math.Pi*float64(k)/float64(m)))
	}
	if m > 0 {
		shift := bits.LeadingZeros(uint(m)) + 1
		for i := range t.rev {
			t.rev[i] = int(bits.Reverse(uint(i)) >> shift)
		}
	}
	for k := 0; k < n; k++ {
		ang := math.Pi * float64(k) / float64(2*n)
		t.phase[k] = cmplx.Exp(complex(0, -ang))
		t.phaseI[k] = cmplx.Exp(complex(0, ang))
	}
	for k := 0; k < m; k++ {
		w := cmplx.Exp(complex(0, -2*math.Pi*float64(k)/float64(n)))
		t.unpack[k] = w
		t.unpackI[k] = cmplx.Conj(w)
	}
	// Even-indexed samples ascending, then odd-indexed samples descending:
	// the classic real-DCT input reordering.
	if n == 1 {
		t.perm[0] = 0
		return t
	}
	for q := 0; q < m; q++ {
		t.perm[q] = 2 * q
	}
	for q := m; q < n; q++ {
		t.perm[q] = 2*(n-1-q) + 1
	}
	return t
}

// Plan holds the tables and scratch for transforms of a fixed length n
// (power of two). A Plan is not safe for concurrent use; Clone cheap copies
// for other goroutines share the immutable tables.
type Plan struct {
	tab  *tables
	buf  []complex128 // scratch of length m (the packed half-length signal)
	vbuf []complex128 // scratch of length m+1 (the twisted spectrum V[0..m])
}

// NewPlan returns a Plan for real transforms of length n (power of two).
func NewPlan(n int) *Plan {
	return planFromTables(newTables(n))
}

func planFromTables(t *tables) *Plan {
	return &Plan{
		tab:  t,
		buf:  make([]complex128, t.m),
		vbuf: make([]complex128, t.m+1),
	}
}

// Clone returns an independent Plan (fresh scratch) sharing this plan's
// immutable twiddle/phase/permutation tables. Clones are safe to use
// concurrently with the original and with each other.
func (p *Plan) Clone() *Plan { return planFromTables(p.tab) }

// N returns the real-domain transform length of the plan.
func (p *Plan) N() int { return p.tab.n }

// ComplexLen returns the length of the plan's complex FFT (n/2): the real
// transforms pack their input into a half-length complex signal, so FFT and
// IFFT operate on slices of this length.
func (p *Plan) ComplexLen() int { return p.tab.m }

// fft performs an in-place forward DFT of length p.tab.m on a
// (convention: X_k = Σ_n x_n e^{-2πi nk/m}).
func (p *Plan) fft(a []complex128) {
	t := p.tab
	m := t.m
	for i, j := range t.rev {
		if i < j {
			a[i], a[j] = a[j], a[i]
		}
	}
	for size := 2; size <= m; size <<= 1 {
		half := size >> 1
		step := m / size
		for start := 0; start < m; start += size {
			for k := 0; k < half; k++ {
				w := t.twiddle[k*step]
				u := a[start+k]
				v := a[start+k+half] * w
				a[start+k] = u + v
				a[start+k+half] = u - v
			}
		}
	}
}

// FFT computes the forward DFT of a (length must be ComplexLen()).
func (p *Plan) FFT(a []complex128) {
	if len(a) != p.tab.m {
		panic(fmt.Sprintf("fft: FFT length %d, plan expects %d", len(a), p.tab.m))
	}
	p.fft(a)
}

// IFFT computes the inverse DFT of a with 1/m normalization.
func (p *Plan) IFFT(a []complex128) {
	if len(a) != p.tab.m {
		panic(fmt.Sprintf("fft: IFFT length %d, plan expects %d", len(a), p.tab.m))
	}
	for i := range a {
		a[i] = cmplx.Conj(a[i])
	}
	p.fft(a)
	inv := 1 / float64(p.tab.m)
	for i := range a {
		a[i] = complex(real(a[i])*inv, -imag(a[i])*inv)
	}
}

// DCT2 computes the (unnormalized) DCT-II of src into dst:
//
//	dst[k] = Σ_{j=0}^{n-1} src[j] · cos(π k (2j+1) / (2n)).
//
// dst and src must have length n and may alias.
//
// Real-input path (Makhoul): permute src into v (evens ascending, odds
// descending), pack v's pairs into a length-m=n/2 complex signal, run one
// length-m FFT, recombine the even/odd spectra into V = DFT_n(v), and read
// DCT2[k] = Re(e^{-iπk/(2n)} V[k]) — with the conjugate symmetry of the real
// spectrum yielding dst[n-k] from the same V[k].
func (p *Plan) DCT2(dst, src []float64) {
	t := p.tab
	n, m := t.n, t.m
	if len(src) != n || len(dst) != n {
		panic("fft: DCT2 length mismatch")
	}
	if n == 1 {
		dst[0] = src[0]
		return
	}
	for q := 0; q < m; q++ {
		p.buf[q] = complex(src[t.perm[2*q]], src[t.perm[2*q+1]])
	}
	p.fft(p.buf)
	z0 := p.buf[0]
	// V[0] and V[m] are real: the DC and Nyquist bins of the real signal v.
	dst[0] = real(z0) + imag(z0)
	dst[m] = (real(z0) - imag(z0)) * real(t.phase[m])
	for k := 1; k < m; k++ {
		zk := p.buf[k]
		zmk := cmplx.Conj(p.buf[m-k])
		ev := (zk + zmk) * complex(0.5, 0)
		od := (zk - zmk) * complex(0, -0.5)
		v := ev + t.unpack[k]*od
		dst[k] = real(t.phase[k] * v)
		dst[n-k] = real(t.phase[n-k] * cmplx.Conj(v))
	}
}

// dct3core computes the shared inverse route for DCT3 and DST3M from the
// twisted spectrum V[0..m] already placed in p.vbuf: recover the even/odd
// half-spectra, rebuild the packed complex signal with one conjugated
// forward FFT, and un-permute into dst. The route is the exact algebraic
// inverse of DCT2's real-input path, with the conventional n/2 scale of the
// unnormalized DCT-III folded in (it cancels the IFFT's 1/m, so no
// normalization pass is needed).
func (p *Plan) dct3core(dst []float64) {
	t := p.tab
	m := t.m
	v0 := p.vbuf[0]
	vm := cmplx.Conj(p.vbuf[m])
	// buf holds conj(Z): z = conj(FFT(conj(Z))) evaluates the inverse DFT.
	p.buf[0] = cmplx.Conj((v0+vm)*complex(0.5, 0) + (v0-vm)*complex(0, 0.5))
	for k := 1; k < m; k++ {
		vk := p.vbuf[k]
		vmk := cmplx.Conj(p.vbuf[m-k])
		ev := (vk + vmk) * complex(0.5, 0)
		od := t.unpackI[k] * (vk - vmk) * complex(0, 0.5)
		p.buf[k] = cmplx.Conj(ev + od)
	}
	p.fft(p.buf)
	for q := 0; q < m; q++ {
		z := p.buf[q]
		dst[t.perm[2*q]] = real(z)
		dst[t.perm[2*q+1]] = -imag(z)
	}
}

// DCT3 computes the (unnormalized) DCT-III of src into dst:
//
//	dst[j] = src[0]/2 + Σ_{k=1}^{n-1} src[k] · cos(π k (2j+1) / (2n)).
//
// DCT3(DCT2(x)) = (n/2)·x, so the exact inverse of DCT2 is (2/n)·DCT3.
// dst and src must have length n and may alias.
func (p *Plan) DCT3(dst, src []float64) {
	t := p.tab
	n, m := t.n, t.m
	if len(src) != n || len(dst) != n {
		panic("fft: DCT3 length mismatch")
	}
	if n == 1 {
		dst[0] = src[0] / 2
		return
	}
	// Twist the real coefficients into the half-spectrum V[0..m]:
	// V[k] = e^{+iπk/(2n)} (c[k] − i·c[n−k]), with c[n] ≡ 0.
	p.vbuf[0] = complex(src[0], 0)
	for k := 1; k <= m; k++ {
		p.vbuf[k] = t.phaseI[k] * complex(src[k], -src[n-k])
	}
	p.dct3core(dst)
}

// DST3M computes the mixed sine synthesis used for the electric field:
//
//	dst[j] = Σ_{k=1}^{n-1} src[k] · sin(π k (2j+1) / (2n)).
//
// src[0] is ignored. dst and src must have length n and may alias.
//
// It rides the DCT3 route via the index-reversal identity
// DST3M(s)[j] = (−1)^j · DCT3(s̃)[j] with s̃[k] = s[n−k], s̃[0] = 0.
func (p *Plan) DST3M(dst, src []float64) {
	t := p.tab
	n, m := t.n, t.m
	if len(src) != n || len(dst) != n {
		panic("fft: DST3M length mismatch")
	}
	if n == 1 {
		dst[0] = 0
		return
	}
	p.vbuf[0] = 0
	for k := 1; k <= m; k++ {
		p.vbuf[k] = t.phaseI[k] * complex(src[n-k], -src[k])
	}
	p.dct3core(dst)
	for j := 1; j < n; j += 2 {
		dst[j] = -dst[j]
	}
}

// Grid2D is an ny×nx row-major matrix of float64 with plans for separable
// 2-D trigonometric transforms (rows of length nx, columns of length ny).
// Parallelize spreads the independent 1-D transforms over a worker pool;
// because every row (and column) is transformed start-to-end by one worker
// using the same shared twiddle tables, the output is bit-identical to the
// serial transform at every pool size.
type Grid2D struct {
	NX, NY int
	px, py *Plan
	colIn  []float64
	colOut []float64
	rowOut []float64

	pool    *parallel.Pool
	workers []*gridWorker // per-worker plans + scratch, nil when serial
}

// gridWorker is one worker's private plans and scratch. Plans carry mutable
// scratch (buf), so concurrent rows need one plan each; the plans are clones
// of the grid's own, sharing one set of immutable tables.
type gridWorker struct {
	px, py *Plan
	colIn  []float64
	colOut []float64
	rowOut []float64
}

// NewGrid2D returns a transformer for ny×nx grids (both powers of two).
func NewGrid2D(nx, ny int) *Grid2D {
	return &Grid2D{
		NX:     nx,
		NY:     ny,
		px:     NewPlan(nx),
		py:     NewPlan(ny),
		colIn:  make([]float64, ny),
		colOut: make([]float64, ny),
		rowOut: make([]float64, nx),
	}
}

// Parallelize runs subsequent transforms on the pool (nil restores the
// serial path). The pool is borrowed, not owned: the caller closes it.
func (g *Grid2D) Parallelize(p *parallel.Pool) {
	g.pool = p
	g.workers = nil
	if p.Workers() <= 1 {
		return
	}
	g.workers = make([]*gridWorker, p.Workers())
	for i := range g.workers {
		g.workers[i] = &gridWorker{
			px:     g.px.Clone(),
			py:     g.py.Clone(),
			colIn:  make([]float64, g.NY),
			colOut: make([]float64, g.NY),
			rowOut: make([]float64, g.NX),
		}
	}
}

type transform1D func(p *Plan, dst, src []float64)

func dct2T(p *Plan, dst, src []float64)  { p.DCT2(dst, src) }
func dct3T(p *Plan, dst, src []float64)  { p.DCT3(dst, src) }
func dst3mT(p *Plan, dst, src []float64) { p.DST3M(dst, src) }

// apply runs rowT over every row and colT over every column of a, in place.
func (g *Grid2D) apply(a []float64, rowT, colT transform1D) {
	if len(a) != g.NX*g.NY {
		panic("fft: Grid2D size mismatch")
	}
	if g.workers != nil {
		g.pool.For(g.NY, func(w, lo, hi int) {
			gw := g.workers[w]
			for y := lo; y < hi; y++ {
				row := a[y*g.NX : (y+1)*g.NX]
				rowT(gw.px, gw.rowOut, row)
				copy(row, gw.rowOut)
			}
		})
		g.pool.For(g.NX, func(w, lo, hi int) {
			gw := g.workers[w]
			for x := lo; x < hi; x++ {
				for y := 0; y < g.NY; y++ {
					gw.colIn[y] = a[y*g.NX+x]
				}
				colT(gw.py, gw.colOut, gw.colIn)
				for y := 0; y < g.NY; y++ {
					a[y*g.NX+x] = gw.colOut[y]
				}
			}
		})
		return
	}
	for y := 0; y < g.NY; y++ {
		row := a[y*g.NX : (y+1)*g.NX]
		rowT(g.px, g.rowOut, row)
		copy(row, g.rowOut)
	}
	for x := 0; x < g.NX; x++ {
		for y := 0; y < g.NY; y++ {
			g.colIn[y] = a[y*g.NX+x]
		}
		colT(g.py, g.colOut, g.colIn)
		for y := 0; y < g.NY; y++ {
			a[y*g.NX+x] = g.colOut[y]
		}
	}
}

// DCT2D applies the 2-D DCT-II (forward analysis) in place.
func (g *Grid2D) DCT2D(a []float64) { g.apply(a, dct2T, dct2T) }

// IDCT2D applies the exact inverse of DCT2D in place
// (row/column DCT-III scaled by 4/(nx·ny)).
func (g *Grid2D) IDCT2D(a []float64) {
	g.apply(a, dct3T, dct3T)
	scale := 4 / float64(g.NX*g.NY)
	for i := range a {
		a[i] *= scale
	}
}

// SynthCosCos synthesizes Σ a_uv cos·cos without normalization
// (row/column DCT-III); used for the potential ψ.
func (g *Grid2D) SynthCosCos(a []float64) { g.apply(a, dct3T, dct3T) }

// SynthSinCos synthesizes Σ a_uv sin_x·cos_y (sine along rows/x, cosine
// along columns/y); used for the x-field Ex.
func (g *Grid2D) SynthSinCos(a []float64) { g.apply(a, dst3mT, dct3T) }

// SynthCosSin synthesizes Σ a_uv cos_x·sin_y; used for the y-field Ey.
func (g *Grid2D) SynthCosSin(a []float64) { g.apply(a, dct3T, dst3mT) }
