// Package fft implements the fast trigonometric transforms used by the
// electrostatic density model: an iterative radix-2 complex FFT and, built on
// it, the DCT-II / DCT-III / mixed sine transforms that diagonalize the
// Poisson operator with Neumann (cosine-basis) boundary conditions, exactly
// as in the ePlace density formulation the paper builds on.
//
// All lengths must be powers of two. The package is stdlib-only and
// allocation-conscious: a Plan caches twiddle factors and scratch space for
// repeated transforms of one size.
package fft

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"

	"qplacer/internal/parallel"
)

// IsPow2 reports whether n is a positive power of two.
func IsPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// NextPow2 returns the smallest power of two >= n (n must be positive).
func NextPow2(n int) int {
	if n <= 0 {
		panic("fft: NextPow2 requires positive n")
	}
	if IsPow2(n) {
		return n
	}
	return 1 << bits.Len(uint(n))
}

// Plan holds precomputed state for transforms of a fixed length n
// (power of two). A Plan is not safe for concurrent use.
type Plan struct {
	n       int          // real-domain transform length
	m       int          // complex FFT length = 2n
	twiddle []complex128 // e^{-2πi k/m}, k = 0..m/2-1
	rev     []int        // bit-reversal permutation for length m
	buf     []complex128 // scratch of length m
	phase   []complex128 // e^{-iπ k/(2n)}, k = 0..n-1 (DCT-II post-twist)
	phaseI  []complex128 // e^{+iπ k/(2n)}, k = 0..n-1 (DCT-III pre-twist)
}

// NewPlan returns a Plan for real transforms of length n (power of two).
func NewPlan(n int) *Plan {
	if !IsPow2(n) {
		panic(fmt.Sprintf("fft: length %d is not a power of two", n))
	}
	m := 2 * n
	p := &Plan{
		n:       n,
		m:       m,
		twiddle: make([]complex128, m/2),
		rev:     make([]int, m),
		buf:     make([]complex128, m),
		phase:   make([]complex128, n),
		phaseI:  make([]complex128, n),
	}
	for k := range p.twiddle {
		p.twiddle[k] = cmplx.Exp(complex(0, -2*math.Pi*float64(k)/float64(m)))
	}
	shift := bits.LeadingZeros(uint(m)) + 1
	for i := range p.rev {
		p.rev[i] = int(bits.Reverse(uint(i)) >> shift)
	}
	for k := 0; k < n; k++ {
		ang := math.Pi * float64(k) / float64(m)
		p.phase[k] = cmplx.Exp(complex(0, -ang))
		p.phaseI[k] = cmplx.Exp(complex(0, ang))
	}
	return p
}

// N returns the real-domain transform length of the plan.
func (p *Plan) N() int { return p.n }

// fft performs an in-place forward DFT of length p.m on a
// (convention: X_k = Σ_n x_n e^{-2πi nk/m}).
func (p *Plan) fft(a []complex128) {
	m := p.m
	for i, j := range p.rev {
		if i < j {
			a[i], a[j] = a[j], a[i]
		}
	}
	for size := 2; size <= m; size <<= 1 {
		half := size >> 1
		step := m / size
		for start := 0; start < m; start += size {
			for k := 0; k < half; k++ {
				w := p.twiddle[k*step]
				u := a[start+k]
				v := a[start+k+half] * w
				a[start+k] = u + v
				a[start+k+half] = u - v
			}
		}
	}
}

// FFT computes the forward DFT of a (length must be 2n for this plan).
func (p *Plan) FFT(a []complex128) {
	if len(a) != p.m {
		panic(fmt.Sprintf("fft: FFT length %d, plan expects %d", len(a), p.m))
	}
	p.fft(a)
}

// IFFT computes the inverse DFT of a with 1/m normalization.
func (p *Plan) IFFT(a []complex128) {
	if len(a) != p.m {
		panic(fmt.Sprintf("fft: IFFT length %d, plan expects %d", len(a), p.m))
	}
	for i := range a {
		a[i] = cmplx.Conj(a[i])
	}
	p.fft(a)
	inv := 1 / float64(p.m)
	for i := range a {
		a[i] = complex(real(a[i])*inv, -imag(a[i])*inv)
	}
}

// DCT2 computes the (unnormalized) DCT-II of src into dst:
//
//	dst[k] = Σ_{j=0}^{n-1} src[j] · cos(π k (2j+1) / (2n)).
//
// dst and src must have length n and may alias.
func (p *Plan) DCT2(dst, src []float64) {
	n := p.n
	if len(src) != n || len(dst) != n {
		panic("fft: DCT2 length mismatch")
	}
	// Pack src with its mirror into a length-2n complex buffer:
	// v = [x_0..x_{n-1}, x_{n-1}..x_0]; then
	// DCT2[k] = Re(e^{-iπk/(2n)} · FFT(v)[k]) / 2.
	for j := 0; j < n; j++ {
		x := complex(src[j], 0)
		p.buf[j] = x
		p.buf[p.m-1-j] = x
	}
	p.fft(p.buf)
	for k := 0; k < n; k++ {
		dst[k] = real(p.phase[k]*p.buf[k]) / 2
	}
}

// DCT3 computes the (unnormalized) DCT-III of src into dst:
//
//	dst[j] = src[0]/2 + Σ_{k=1}^{n-1} src[k] · cos(π k (2j+1) / (2n)).
//
// DCT3(DCT2(x)) = (n/2)·x, so the exact inverse of DCT2 is (2/n)·DCT3.
// dst and src must have length n and may alias.
func (p *Plan) DCT3(dst, src []float64) {
	n := p.n
	if len(src) != n || len(dst) != n {
		panic("fft: DCT3 length mismatch")
	}
	// dst[j] = Re( Σ_{k} u_k e^{+2πi kj/(2n)} ) with u_0 = src[0]/2,
	// u_k = src[k] e^{+iπk/(2n)}; evaluate via conjugated forward FFT.
	p.buf[0] = complex(src[0]/2, 0)
	for k := 1; k < n; k++ {
		p.buf[k] = p.phaseI[k] * complex(src[k], 0)
	}
	for k := n; k < p.m; k++ {
		p.buf[k] = 0
	}
	for i := range p.buf {
		p.buf[i] = cmplx.Conj(p.buf[i])
	}
	p.fft(p.buf)
	for j := 0; j < n; j++ {
		dst[j] = real(p.buf[j]) // Re(conj(z)) == Re(z)
	}
}

// DST3M computes the mixed sine synthesis used for the electric field:
//
//	dst[j] = Σ_{k=1}^{n-1} src[k] · sin(π k (2j+1) / (2n)).
//
// src[0] is ignored. dst and src must have length n and may alias.
func (p *Plan) DST3M(dst, src []float64) {
	n := p.n
	if len(src) != n || len(dst) != n {
		panic("fft: DST3M length mismatch")
	}
	p.buf[0] = 0
	for k := 1; k < n; k++ {
		p.buf[k] = p.phaseI[k] * complex(src[k], 0)
	}
	for k := n; k < p.m; k++ {
		p.buf[k] = 0
	}
	for i := range p.buf {
		p.buf[i] = cmplx.Conj(p.buf[i])
	}
	p.fft(p.buf)
	for j := 0; j < n; j++ {
		dst[j] = -imag(p.buf[j]) // Im(z) where buf holds conj of the sum
	}
}

// Grid2D is an ny×nx row-major matrix of float64 with plans for separable
// 2-D trigonometric transforms (rows of length nx, columns of length ny).
// Parallelize spreads the independent 1-D transforms over a worker pool;
// because every row (and column) is transformed start-to-end by one worker
// using identical twiddle tables, the output is bit-identical to the serial
// transform at every pool size.
type Grid2D struct {
	NX, NY int
	px, py *Plan
	colIn  []float64
	colOut []float64
	rowOut []float64

	pool    *parallel.Pool
	workers []*gridWorker // per-worker plans + scratch, nil when serial
}

// gridWorker is one worker's private plans and scratch. Plans carry mutable
// scratch (buf), so concurrent rows need one plan each; the twiddle tables
// are recomputed from the same closed formulas and are therefore identical.
type gridWorker struct {
	px, py *Plan
	colIn  []float64
	colOut []float64
	rowOut []float64
}

// NewGrid2D returns a transformer for ny×nx grids (both powers of two).
func NewGrid2D(nx, ny int) *Grid2D {
	return &Grid2D{
		NX:     nx,
		NY:     ny,
		px:     NewPlan(nx),
		py:     NewPlan(ny),
		colIn:  make([]float64, ny),
		colOut: make([]float64, ny),
		rowOut: make([]float64, nx),
	}
}

// Parallelize runs subsequent transforms on the pool (nil restores the
// serial path). The pool is borrowed, not owned: the caller closes it.
func (g *Grid2D) Parallelize(p *parallel.Pool) {
	g.pool = p
	g.workers = nil
	if p.Workers() <= 1 {
		return
	}
	g.workers = make([]*gridWorker, p.Workers())
	for i := range g.workers {
		g.workers[i] = &gridWorker{
			px:     NewPlan(g.NX),
			py:     NewPlan(g.NY),
			colIn:  make([]float64, g.NY),
			colOut: make([]float64, g.NY),
			rowOut: make([]float64, g.NX),
		}
	}
}

type transform1D func(p *Plan, dst, src []float64)

func dct2T(p *Plan, dst, src []float64)  { p.DCT2(dst, src) }
func dct3T(p *Plan, dst, src []float64)  { p.DCT3(dst, src) }
func dst3mT(p *Plan, dst, src []float64) { p.DST3M(dst, src) }

// apply runs rowT over every row and colT over every column of a, in place.
func (g *Grid2D) apply(a []float64, rowT, colT transform1D) {
	if len(a) != g.NX*g.NY {
		panic("fft: Grid2D size mismatch")
	}
	if g.workers != nil {
		g.pool.For(g.NY, func(w, lo, hi int) {
			gw := g.workers[w]
			for y := lo; y < hi; y++ {
				row := a[y*g.NX : (y+1)*g.NX]
				rowT(gw.px, gw.rowOut, row)
				copy(row, gw.rowOut)
			}
		})
		g.pool.For(g.NX, func(w, lo, hi int) {
			gw := g.workers[w]
			for x := lo; x < hi; x++ {
				for y := 0; y < g.NY; y++ {
					gw.colIn[y] = a[y*g.NX+x]
				}
				colT(gw.py, gw.colOut, gw.colIn)
				for y := 0; y < g.NY; y++ {
					a[y*g.NX+x] = gw.colOut[y]
				}
			}
		})
		return
	}
	for y := 0; y < g.NY; y++ {
		row := a[y*g.NX : (y+1)*g.NX]
		rowT(g.px, g.rowOut, row)
		copy(row, g.rowOut)
	}
	for x := 0; x < g.NX; x++ {
		for y := 0; y < g.NY; y++ {
			g.colIn[y] = a[y*g.NX+x]
		}
		colT(g.py, g.colOut, g.colIn)
		for y := 0; y < g.NY; y++ {
			a[y*g.NX+x] = g.colOut[y]
		}
	}
}

// DCT2D applies the 2-D DCT-II (forward analysis) in place.
func (g *Grid2D) DCT2D(a []float64) { g.apply(a, dct2T, dct2T) }

// IDCT2D applies the exact inverse of DCT2D in place
// (row/column DCT-III scaled by 4/(nx·ny)).
func (g *Grid2D) IDCT2D(a []float64) {
	g.apply(a, dct3T, dct3T)
	scale := 4 / float64(g.NX*g.NY)
	for i := range a {
		a[i] *= scale
	}
}

// SynthCosCos synthesizes Σ a_uv cos·cos without normalization
// (row/column DCT-III); used for the potential ψ.
func (g *Grid2D) SynthCosCos(a []float64) { g.apply(a, dct3T, dct3T) }

// SynthSinCos synthesizes Σ a_uv sin_x·cos_y (sine along rows/x, cosine
// along columns/y); used for the x-field Ex.
func (g *Grid2D) SynthSinCos(a []float64) { g.apply(a, dst3mT, dct3T) }

// SynthCosSin synthesizes Σ a_uv cos_x·sin_y; used for the y-field Ey.
func (g *Grid2D) SynthCosSin(a []float64) { g.apply(a, dct3T, dst3mT) }
