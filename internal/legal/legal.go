// Package legal implements the integration-aware legalization of §IV-C2
// (Algorithm 1): a greedy spiral search places qubits on overlap-free
// positions, a min-cost-flow pass minimizes total qubit displacement
// (Tang et al. [88]), a Tetris-style sweep legalizes resonator segments
// (Chen et al. [17]), and a final integration stage verifies that every
// resonator's segments form one contiguous cluster, pulling scattered
// segments back to their resonator's largest cluster — swapping with
// foreign segments when no free space remains.
package legal

import (
	"context"
	"fmt"
	"math"
	"sort"

	"qplacer/internal/component"
	"qplacer/internal/frequency"
	"qplacer/internal/geom"
	"qplacer/internal/mcmf"
	"qplacer/internal/obs"
	"qplacer/internal/parallel"
)

// Config tunes the legalizer.
type Config struct {
	// Pitch is the spiral/Tetris search grid pitch (mm).
	Pitch float64
	// MaxRings bounds the spiral search radius in pitch units.
	MaxRings int
	// ClusterGap is the maximum edge-to-edge gap at which two segments of
	// one resonator still count as contiguous (integration criterion).
	ClusterGap float64
	// MaxIntegrationPasses bounds the pull-in repair loop.
	MaxIntegrationPasses int
	// CompactionPasses bounds the inward-compaction sweeps that shrink the
	// enclosing rectangle after integration (0 disables).
	CompactionPasses int
	// ResonantGuard is the minimum distance compaction keeps between
	// near-resonant segments of different resonators.
	ResonantGuard float64
	// FrequencyAware enables the isolation guards. Qplacer's legalizer is
	// frequency-aware (the integration legalizer of §IV-C2); the Classic
	// baseline uses the same machinery with the guards off, like the
	// classical engine's own legalizer.
	FrequencyAware bool

	// Progress, when non-nil, is called as legalization advances: LegalizeCtx
	// reports completed passes (step out of total), RowScanCtx completed
	// placement units. It must be fast and non-blocking.
	Progress func(step, total int)

	// Workers bounds the worker pool for the independent scans — the O(n²)
	// near-resonant partner map both legalizers rebuild up front and the
	// min-cost-flow cost matrix — with results identical to a serial run at
	// every worker count. The packing passes themselves stay sequential:
	// each greedy decision depends on everything placed before it. 0 or 1
	// runs serial.
	Workers int

	// Cutoffs overrides the adaptive-granularity thresholds below which the
	// parallel scans run serial (fan-out dispatch costs more than it saves
	// on small problems). nil auto-calibrates once per process
	// (parallel.AutoCutoffs); the zero value always fans out. Gating only
	// selects between bit-identical implementations, so results never
	// depend on the cutoffs.
	Cutoffs *parallel.Cutoffs

	// Span, when non-nil, receives the per-pass timing breakdown:
	// LegalizeCtx records setup (the partner map) plus one child per
	// Algorithm-1 pass, RowScanCtx records setup and the shelf scan.
	Span *obs.Span
}

// DefaultConfig returns production settings.
func DefaultConfig() Config {
	return Config{
		Pitch:                0.1,
		MaxRings:             120,
		ClusterGap:           0.35,
		MaxIntegrationPasses: 6,
		CompactionPasses:     3,
		ResonantGuard:        0.65,
		FrequencyAware:       true,
	}
}

// Result reports legalization statistics.
type Result struct {
	QubitDisplacement   float64 // total qubit movement (mm)
	SegmentDisplacement float64 // total segment movement (mm)
	IntegratedAll       bool    // every resonator contiguous at the end
	BrokenResonators    []int   // resonators still fragmented
	GuardFallbacks      int     // placements that gave up frequency isolation
	SpotFailures        int     // placements with no free spot at all
}

// LegalRect returns the footprint the legalizer keeps overlap-free for an
// instance: qubits claim their fully padded cell (their padding is the
// crosstalk keep-out, §IV-B1); segments claim their core plus half padding
// (shared spacing between different wire blocks).
func LegalRect(in *component.Instance) geom.Rect {
	if in.Kind == component.KindQubit {
		return in.PaddedRect()
	}
	return in.CoreRect().Inflate(in.Pad / 2)
}

// legalizer carries run state.
type legalizer struct {
	ctx    context.Context
	cfg    Config
	nl     *component.Netlist
	deltaC float64
	bounds geom.Rect

	placed []geom.Rect // legal rects of already-fixed instances
	byInst map[int]int // instance ID → index in placed
	order  []int       // placed index → instance ID

	// partners[i] lists the near-resonant instances of i (the collision
	// map rebuilt locally); findSpot keeps candidates clear of the placed
	// ones so legalization preserves the engine's spatial isolation.
	partners [][]int

	// Spatial hash over placed rects for O(1) neighbourhood queries.
	cell    float64
	buckets map[[2]int][]int // bucket coord → placed indices

	pool *parallel.Pool   // bounds the independent scans; nil runs serial
	cut  parallel.Cutoffs // adaptive-granularity thresholds for the scans

	stats *Result // live statistics sink
}

// qubitGuard and segGuard are the isolation distances findSpot tries to
// preserve between near-resonant instances during legalization. When no
// guarded spot exists the search falls back to unguarded placement — the
// residual hotspots are exactly what P_h measures.
const (
	qubitGuard = 2.5
	segGuard   = 0.65
)

// guardFor returns the isolation distance for an instance kind.
func guardFor(k component.Kind) float64 {
	if k == component.KindQubit {
		return qubitGuard
	}
	return segGuard
}

// guardedApart reports whether centres a and b keep the guard distance.
// Chebyshev metric: padded boxes overlap when BOTH axis offsets are below
// the padded size, so the guard must bound the larger axis offset, not the
// Euclidean distance (diagonal pairs would otherwise slip through and still
// overlap).
func guardedApart(a, b geom.Point, guard float64) bool {
	return math.Max(math.Abs(a.X-b.X), math.Abs(a.Y-b.Y)) >= guard
}

func (lg *legalizer) setup() {
	n := len(lg.nl.Instances)
	lg.partners = buildPartners(lg.nl, lg.deltaC,
		parallel.Gate(lg.pool, n*n, lg.cut.ScanCells))
	lg.cell = 1.0
	lg.buckets = make(map[[2]int][]int)
}

// resolveCutoffs maps Config.Cutoffs to the thresholds in effect: explicit
// when set, auto-calibrated otherwise. A serial run skips calibration — with
// no pool there is nothing to gate.
func resolveCutoffs(cfg Config, pool *parallel.Pool) parallel.Cutoffs {
	if cfg.Cutoffs != nil {
		return *cfg.Cutoffs
	}
	if pool == nil {
		return parallel.Cutoffs{}
	}
	return parallel.AutoCutoffs()
}

// buildPartners rebuilds the collision map as an adjacency list:
// partners[i] holds the near-resonant same-kind instances of i (excluding
// same-resonator segment pairs, which are one physical wire), ascending.
// With a pool, each worker owns a contiguous range of rows and scans the
// full instance list per row — independent rows, so the output is identical
// to the serial half-matrix sweep (which also yields ascending lists).
func buildPartners(nl *component.Netlist, deltaC float64, pool *parallel.Pool) [][]int {
	n := len(nl.Instances)
	partners := make([][]int, n)
	paired := func(a, b *component.Instance) bool {
		if a.Kind != b.Kind {
			return false
		}
		if a.Kind == component.KindSegment && a.Resonator == b.Resonator {
			return false
		}
		return frequency.Resonant(a.FreqGHz, b.FreqGHz, deltaC)
	}
	if pool != nil {
		pool.For(n, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				a := nl.Instances[i]
				for j := 0; j < n; j++ {
					if j != i && paired(a, nl.Instances[j]) {
						partners[i] = append(partners[i], j)
					}
				}
			}
		})
		return partners
	}
	for i := 0; i < n; i++ {
		a := nl.Instances[i]
		for j := i + 1; j < n; j++ {
			if paired(a, nl.Instances[j]) {
				partners[i] = append(partners[i], j)
				partners[j] = append(partners[j], i)
			}
		}
	}
	return partners
}

func (lg *legalizer) bucketRange(r geom.Rect) (x0, y0, x1, y1 int) {
	x0 = int(math.Floor(r.Lo.X / lg.cell))
	y0 = int(math.Floor(r.Lo.Y / lg.cell))
	x1 = int(math.Floor(r.Hi.X / lg.cell))
	y1 = int(math.Floor(r.Hi.Y / lg.cell))
	return
}

func (lg *legalizer) indexAdd(placedIdx int, r geom.Rect) {
	x0, y0, x1, y1 := lg.bucketRange(r)
	for y := y0; y <= y1; y++ {
		for x := x0; x <= x1; x++ {
			key := [2]int{x, y}
			lg.buckets[key] = append(lg.buckets[key], placedIdx)
		}
	}
}

func (lg *legalizer) indexRemove(placedIdx int, r geom.Rect) {
	x0, y0, x1, y1 := lg.bucketRange(r)
	for y := y0; y <= y1; y++ {
		for x := x0; x <= x1; x++ {
			key := [2]int{x, y}
			list := lg.buckets[key]
			for k, v := range list {
				if v == placedIdx {
					list[k] = list[len(list)-1]
					lg.buckets[key] = list[:len(list)-1]
					break
				}
			}
		}
	}
}

// Legalize snaps the globally placed netlist into an overlap-free layout.
// region is the placement region (the layout may grow slightly past it if
// space runs out); deltaC is the resonance threshold for swap checks.
func Legalize(nl *component.Netlist, region geom.Rect, deltaC float64, cfg Config) (*Result, error) {
	return LegalizeCtx(context.Background(), nl, region, deltaC, cfg)
}

// LegalizeCtx is Legalize with cancellation: the instance-loop passes
// (greedy qubits, Tetris segments, integration, compaction) check ctx
// between instances, and the min-cost-flow refinement checks it before its
// indivisible solve; the first ctx.Err() observed is returned.
func LegalizeCtx(ctx context.Context, nl *component.Netlist, region geom.Rect, deltaC float64, cfg Config) (*Result, error) {
	if cfg.Pitch <= 0 || cfg.MaxRings <= 0 {
		return nil, fmt.Errorf("legal: invalid config %+v", cfg)
	}
	lg := &legalizer{
		ctx:    ctx,
		cfg:    cfg,
		nl:     nl,
		deltaC: deltaC,
		// The global-placement region is sized at TargetDensity < 1, so it
		// already carries the slack legalization needs; keeping the bounds
		// tight is what delivers the paper's compact-substrate result. A
		// small margin absorbs boundary quantization.
		bounds: region.Inflate(region.W() * 0.02),
		byInst: make(map[int]int),
		pool:   parallel.New(cfg.Workers),
	}
	defer lg.pool.Close()
	lg.cut = resolveCutoffs(cfg, lg.pool)
	setupTimer := cfg.Span.Child("setup").Start()
	lg.setup()
	setupTimer.End()
	res := &Result{}
	lg.stats = res

	// Anchor positions: where global placement wanted each qubit, captured
	// before the greedy pass moves anything.
	anchors := make([]geom.Point, len(nl.QubitInst))
	for i, qi := range nl.QubitInst {
		anchors[i] = nl.Instances[qi].Pos
	}

	passes := []struct {
		name string
		run  func() error
	}{
		{"qubits", func() error { return lg.legalizeQubits(res) }},
		{"refine", func() error { return lg.refineQubits(res, anchors) }},
		{"segments", func() error { return lg.legalizeSegments(res) }},
		{"integrate", func() error { return lg.integrate(res) }},
		{"compact", func() error { return lg.compact(res) }},
	}
	for i, pass := range passes {
		passTimer := cfg.Span.Child(pass.name).Start()
		err := pass.run()
		passTimer.End()
		if err != nil {
			return nil, err
		}
		if cfg.Progress != nil {
			cfg.Progress(i+1, len(passes))
		}
	}
	cfg.Span.SetWorkers(lg.pool.WorkerBusy())
	return res, nil
}

// overlapEps is the tolerance for overlap checks: rectangle widths are
// reconstructed from centre positions, so independent computations of "the
// same" footprint differ by ~1e-16 mm. Anything shallower than a tenth of a
// nanometre is not a physical overlap.
const overlapEps = 1e-7

// overlapsEps reports whether two rects overlap deeper than the tolerance.
func overlapsEps(a, b geom.Rect) bool {
	return a.Inflate(-overlapEps / 2).Overlaps(b.Inflate(-overlapEps / 2))
}

// overlapsPlaced reports whether r overlaps any fixed legal rect, except the
// instance ids in skip. Queries go through the spatial hash.
func (lg *legalizer) overlapsPlaced(r geom.Rect, skip map[int]bool) bool {
	x0, y0, x1, y1 := lg.bucketRange(r)
	for y := y0; y <= y1; y++ {
		for x := x0; x <= x1; x++ {
			for _, idx := range lg.buckets[[2]int{x, y}] {
				if skip != nil && skip[lg.order[idx]] {
					continue
				}
				if overlapsEps(r, lg.placed[idx]) {
					return true
				}
			}
		}
	}
	return false
}

func (lg *legalizer) fix(instID int, r geom.Rect) {
	if idx, ok := lg.byInst[instID]; ok {
		lg.indexRemove(idx, lg.placed[idx])
		lg.placed[idx] = r
		lg.indexAdd(idx, r)
		return
	}
	idx := len(lg.placed)
	lg.byInst[instID] = idx
	lg.placed = append(lg.placed, r)
	lg.order = append(lg.order, instID)
	lg.indexAdd(idx, r)
}

// guardOK reports whether centre c keeps the isolation distance from the
// already-placed near-resonant partners of instance in.
func (lg *legalizer) guardOK(in *component.Instance, c geom.Point) bool {
	if !lg.cfg.FrequencyAware {
		return true
	}
	guard := guardFor(in.Kind)
	for _, pid := range lg.partners[in.ID] {
		if _, placed := lg.byInst[pid]; !placed {
			continue
		}
		if !guardedApart(lg.nl.Instances[pid].Pos, c, guard) {
			return false
		}
	}
	return true
}

// findSpot spiral-searches for the nearest position (grid pitch) where the
// instance's legal rect fits without overlap and — preferentially — clear
// of its near-resonant partners. If no guarded spot exists within the
// search radius, the nearest unguarded spot is used (the residual hotspot
// shows up in P_h, as in the paper). Returns the centre and true, or the
// original position and false.
func (lg *legalizer) findSpot(in *component.Instance, want geom.Point, skip map[int]bool) (geom.Point, bool) {
	// Preference order: a guarded (isolation-preserving) spot anywhere —
	// escalating the bounds outward if needed — beats an unguarded spot
	// nearby. Only when no guarded spot exists at any escalation level does
	// the nearest free-but-unguarded spot get used; those fallbacks are the
	// residual hotspots P_h measures.
	fallback := geom.Point{}
	haveFallback := false
	for _, grow := range []float64{0, 0.08, 0.20} {
		bounds := lg.bounds
		if grow > 0 {
			bounds = bounds.Inflate(bounds.W() * grow)
		}
		spot, ok, fb, haveFB := lg.findSpotIn(in, want, skip, bounds)
		if ok {
			return spot, true
		}
		if haveFB && !haveFallback {
			fallback, haveFallback = fb, true
		}
	}
	if haveFallback {
		if lg.stats != nil {
			lg.stats.GuardFallbacks++
		}
		return fallback, true
	}
	if lg.stats != nil {
		lg.stats.SpotFailures++
	}
	return want, false
}

func (lg *legalizer) findSpotIn(in *component.Instance, want geom.Point, skip map[int]bool, bounds geom.Rect) (spot geom.Point, ok bool, fallback geom.Point, haveFallback bool) {
	base := LegalRect(in)
	w, h := base.W(), base.H()
	for _, off := range geom.SpiralOffsets(lg.cfg.MaxRings) {
		c := geom.Point{
			X: want.X + off.X*lg.cfg.Pitch,
			Y: want.Y + off.Y*lg.cfg.Pitch,
		}
		r := geom.RectAt(c, w, h)
		if !bounds.ContainsRect(r) {
			continue
		}
		if lg.overlapsPlaced(r, skip) {
			continue
		}
		if lg.guardOK(in, c) {
			return c, true, fallback, haveFallback
		}
		if !haveFallback {
			fallback = c
			haveFallback = true
		}
	}
	return want, false, fallback, haveFallback
}

// legalizeQubits runs the greedy spiral pass over qubits (densest first:
// sorted by distance from the layout centroid, centre-out, which keeps
// displacement low for the congested middle).
func (lg *legalizer) legalizeQubits(res *Result) error {
	var cx, cy float64
	for _, qi := range lg.nl.QubitInst {
		cx += lg.nl.Instances[qi].Pos.X
		cy += lg.nl.Instances[qi].Pos.Y
	}
	n := float64(len(lg.nl.QubitInst))
	centroid := geom.Point{X: cx / n, Y: cy / n}

	order := append([]int(nil), lg.nl.QubitInst...)
	sort.SliceStable(order, func(a, b int) bool {
		return lg.nl.Instances[order[a]].Pos.Dist2(centroid) <
			lg.nl.Instances[order[b]].Pos.Dist2(centroid)
	})
	for _, qi := range order {
		if err := lg.ctx.Err(); err != nil {
			return err
		}
		in := lg.nl.Instances[qi]
		spot, ok := lg.findSpot(in, in.Pos, nil)
		if ok {
			res.QubitDisplacement += spot.Dist(in.Pos)
			in.Pos = spot
		}
		lg.fix(qi, LegalRect(in))
	}
	return nil
}

// refineQubits reassigns qubits among the greedy-legalized sites with
// min-cost flow (the white-space redistribution of Tang et al. [88]),
// minimizing total squared displacement from the global-placement anchors.
// All qubit cells are identical 1.2 mm squares, so permuting qubits over the
// occupied sites preserves legality by construction.
func (lg *legalizer) refineQubits(res *Result, anchors []geom.Point) error {
	qubits := lg.nl.QubitInst
	if len(qubits) < 2 {
		return nil
	}
	// The min-cost-flow solve is the pass's one indivisible chunk; checking
	// here bounds the cancellation latency to that solve.
	if err := lg.ctx.Err(); err != nil {
		return err
	}
	sites := make([]geom.Point, len(qubits))
	for i, qi := range qubits {
		sites[i] = lg.nl.Instances[qi].Pos
	}
	// Cost rows are independent of each other — the one parallel scan in
	// this pass; the flow solve itself is sequential. The matrix is
	// len(qubits)² entries of pure arithmetic, so it gates like the other
	// all-pairs scans.
	costs := make([][]float64, len(qubits))
	pool := parallel.Gate(lg.pool, len(qubits)*len(qubits), lg.cut.ScanCells)
	pool.For(len(qubits), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			costs[i] = make([]float64, len(sites))
			for j, s := range sites {
				costs[i][j] = anchors[i].Dist2(s)
			}
		}
	})
	assign, _ := mcmf.Assign(costs)
	for i, qi := range qubits {
		in := lg.nl.Instances[qi]
		moved := sites[assign[i]]
		res.QubitDisplacement += moved.Dist(in.Pos)
		in.Pos = moved
		lg.fix(qi, LegalRect(in))
	}
	return nil
}

// legalizeSegments runs the Tetris-style pass left to right over whole
// resonators ("adherence to established orders", §IV-C2): resonators are
// processed by ascending mean x, and within each resonator the segments are
// placed in chain order, every block anchored near its predecessor's final
// spot. Contiguity is thereby built in, and the integration stage only has
// to repair the stragglers squeezed out by congestion.
func (lg *legalizer) legalizeSegments(res *Result) error {
	order := make([]int, len(lg.nl.Resonators))
	meanX := make([]float64, len(lg.nl.Resonators))
	crowd := make([]int, len(lg.nl.Resonators))
	for i, r := range lg.nl.Resonators {
		order[i] = i
		for _, sid := range r.Segments {
			meanX[i] += lg.nl.Instances[sid].Pos.X
			crowd[i] += len(lg.partners[sid])
		}
		meanX[i] /= float64(len(r.Segments))
	}
	// Most collision-prone resonators first: they take guarded spots while
	// free space is still plentiful, so isolation survives the end-game
	// congestion; ties resolve left to right (the Tetris order).
	sort.SliceStable(order, func(a, b int) bool {
		if crowd[order[a]] != crowd[order[b]] {
			return crowd[order[a]] > crowd[order[b]]
		}
		return meanX[order[a]] < meanX[order[b]]
	})
	for _, rIdx := range order {
		if err := lg.ctx.Err(); err != nil {
			return err
		}
		var prev geom.Point
		havePrev := false
		for _, sid := range lg.nl.Resonators[rIdx].Segments {
			in := lg.nl.Instances[sid]
			// The chain force already ribbons each resonator during global
			// placement, so the position itself is the best anchor
			// (minimal displacement preserves the engine's isolation); the
			// predecessor serves as a secondary anchor when the primary
			// neighbourhood is saturated, keeping the chain contiguous.
			spot, ok := lg.findSpot(in, in.Pos, nil)
			if ok && havePrev && spot.Dist(prev) > 3*in.W {
				if alt, okAlt := lg.findSpot(in, prev, nil); okAlt {
					spot = alt
				}
			}
			if ok {
				res.SegmentDisplacement += spot.Dist(in.Pos)
				in.Pos = spot
			}
			lg.fix(sid, LegalRect(in))
			prev = in.Pos
			havePrev = true
		}
	}
	return nil
}

// clusters partitions a resonator's segments into contiguity clusters
// (edge-to-edge gap ≤ ClusterGap), largest first.
func (lg *legalizer) clusters(resIdx int) [][]int {
	return ResonatorClusters(lg.nl, resIdx, lg.cfg.ClusterGap)
}

// ResonatorClusters partitions a resonator's segments into contiguity
// clusters (edge-to-edge legal-rect gap ≤ gap), largest cluster first. One
// cluster means the resonator is integrated.
func ResonatorClusters(nl *component.Netlist, resIdx int, gap float64) [][]int {
	segs := nl.Resonators[resIdx].Segments
	parent := make(map[int]int, len(segs))
	var find func(int) int
	find = func(x int) int {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	for _, s := range segs {
		parent[s] = s
	}
	for i := 0; i < len(segs); i++ {
		ri := LegalRect(nl.Instances[segs[i]])
		for j := i + 1; j < len(segs); j++ {
			rj := LegalRect(nl.Instances[segs[j]])
			if ri.Gap(rj) <= gap {
				parent[find(segs[i])] = find(segs[j])
			}
		}
	}
	groups := map[int][]int{}
	for _, s := range segs {
		groups[find(s)] = append(groups[find(s)], s)
	}
	out := make([][]int, 0, len(groups))
	for _, g := range groups {
		sort.Ints(g)
		out = append(out, g)
	}
	sort.SliceStable(out, func(a, b int) bool {
		if len(out[a]) != len(out[b]) {
			return len(out[a]) > len(out[b])
		}
		return out[a][0] < out[b][0]
	})
	return out
}

// integrate runs the resonator-integrity stage of Algorithm 1: resonators
// whose segments already form one cluster are fixed; fragmented ones have
// their scattered segments pulled to free spots adjacent to the largest
// cluster, or swapped with foreign segments beside the cluster when the
// swap keeps both resonators' frequencies non-resonant (the τ check) and
// does not fragment the donor.
func (lg *legalizer) integrate(res *Result) error {
	for pass := 0; pass < lg.cfg.MaxIntegrationPasses; pass++ {
		res.BrokenResonators = res.BrokenResonators[:0]
		for rIdx := range lg.nl.Resonators {
			if err := lg.ctx.Err(); err != nil {
				return err
			}
			cl := lg.clusters(rIdx)
			if len(cl) <= 1 {
				continue
			}
			main := cl[0]
			for _, frag := range cl[1:] {
				for _, sid := range frag {
					if lg.pullIn(sid, main, res) {
						main = append(main, sid)
					}
				}
			}
			if len(lg.clusters(rIdx)) > 1 {
				res.BrokenResonators = append(res.BrokenResonators, rIdx)
			}
		}
		if len(res.BrokenResonators) == 0 {
			break
		}
	}
	res.IntegratedAll = len(res.BrokenResonators) == 0
	sort.Ints(res.BrokenResonators)
	return nil
}

// pullIn moves segment sid next to the cluster; returns true on success.
func (lg *legalizer) pullIn(sid int, cluster []int, res *Result) bool {
	in := lg.nl.Instances[sid]
	if len(cluster) == 0 {
		return false
	}
	// Candidate anchors: every cluster segment, nearest first, so a congested
	// neighbourhood around the closest one does not doom the pull while the
	// far side of the cluster has room. Any anchor keeps contiguity — it is
	// in the cluster by definition.
	anchors := append([]int(nil), cluster...)
	sort.SliceStable(anchors, func(a, b int) bool {
		return lg.nl.Instances[anchors[a]].Pos.Dist2(in.Pos) <
			lg.nl.Instances[anchors[b]].Pos.Dist2(in.Pos)
	})
	skip := map[int]bool{sid: true}
	// Free-spot search tightly around each anchor.
	base := LegalRect(in)
	step := base.W() + 0.02
	for _, cs := range anchors {
		anchor := lg.nl.Instances[cs].Pos
		for _, off := range []geom.Point{
			{X: step}, {X: -step}, {Y: step}, {Y: -step},
			{X: step, Y: step}, {X: -step, Y: step},
			{X: step, Y: -step}, {X: -step, Y: -step},
		} {
			c := anchor.Add(off)
			r := geom.RectAt(c, base.W(), base.H())
			if lg.bounds.ContainsRect(r) && !lg.overlapsPlaced(r, skip) && lg.guardOK(in, c) {
				res.SegmentDisplacement += c.Dist(in.Pos)
				in.Pos = c
				lg.fix(sid, LegalRect(in))
				return true
			}
		}
	}
	// Swap with a foreign segment adjacent to any anchor. A swap is accepted
	// only when it strictly reduces this resonator's cluster count — landing
	// near an anchor is not enough, the gap must actually close — while the
	// donor stays in one piece.
	before := len(lg.clusters(in.Resonator))
	for _, cs := range anchors {
		anchor := lg.nl.Instances[cs].Pos
		for _, other := range lg.nl.Instances {
			if other.Kind != component.KindSegment || other.Resonator == in.Resonator {
				continue
			}
			if other.Pos.Dist(anchor) > 2*step {
				continue
			}
			// τ check (Algorithm 1, line 12): the foreign segment must stay
			// detuned from this resonator's neighbourhood after the swap.
			if frequency.Resonant(other.FreqGHz, in.FreqGHz, lg.deltaC) {
				continue
			}
			// Donor integrity plus isolation: the swap must not fragment the
			// other resonator, and both segments must stay clear of their
			// near-resonant partners at their new homes.
			oldA, oldB := in.Pos, other.Pos
			in.Pos, other.Pos = oldB, oldA
			lg.fix(sid, LegalRect(in))
			lg.fix(other.ID, LegalRect(other))
			if len(lg.clusters(other.Resonator)) == 1 &&
				len(lg.clusters(in.Resonator)) <= before &&
				lg.guardOK(in, in.Pos) && lg.guardOK(other, other.Pos) {
				res.SegmentDisplacement += oldA.Dist(oldB) * 2
				return true
			}
			// Revert.
			in.Pos, other.Pos = oldA, oldB
			lg.fix(sid, LegalRect(in))
			lg.fix(other.ID, LegalRect(other))
		}
	}
	return false
}

// compact pulls outlying segments toward the layout centroid to shrink the
// enclosing rectangle, accepting a move only when it (a) lands strictly
// closer to the centroid, (b) keeps the segment's resonator in one cluster,
// and (c) stays at least ResonantGuard away from near-resonant segments of
// other resonators, so compaction never reintroduces hotspots.
func (lg *legalizer) compact(res *Result) error {
	if lg.cfg.CompactionPasses <= 0 {
		return nil
	}
	var cx, cy float64
	for _, in := range lg.nl.Instances {
		cx += in.Pos.X
		cy += in.Pos.Y
	}
	n := float64(len(lg.nl.Instances))
	centroid := geom.Point{X: cx / n, Y: cy / n}

	var segs []int
	for _, in := range lg.nl.Instances {
		if in.Kind == component.KindSegment {
			segs = append(segs, in.ID)
		}
	}
	for pass := 0; pass < lg.cfg.CompactionPasses; pass++ {
		sort.SliceStable(segs, func(a, b int) bool {
			return lg.nl.Instances[segs[a]].Pos.Dist2(centroid) >
				lg.nl.Instances[segs[b]].Pos.Dist2(centroid)
		})
		movedAny := false
		for _, sid := range segs {
			if err := lg.ctx.Err(); err != nil {
				return err
			}
			in := lg.nl.Instances[sid]
			old := in.Pos
			target := geom.Point{
				X: centroid.X + (old.X-centroid.X)*0.9,
				Y: centroid.Y + (old.Y-centroid.Y)*0.9,
			}
			skip := map[int]bool{sid: true}
			spot, ok := lg.findSpot(in, target, skip)
			if !ok || spot.Dist2(centroid) >= old.Dist2(centroid)-1e-9 {
				continue
			}
			if !lg.guardOK(in, spot) {
				continue
			}
			in.Pos = spot
			lg.fix(sid, LegalRect(in))
			if !lg.compactionSafe(sid) {
				in.Pos = old
				lg.fix(sid, LegalRect(in))
				continue
			}
			res.SegmentDisplacement += spot.Dist(old)
			movedAny = true
		}
		if !movedAny {
			break
		}
	}
	return nil
}

// compactionSafe checks the integrity and resonance guards for a segment at
// its current position.
func (lg *legalizer) compactionSafe(sid int) bool {
	in := lg.nl.Instances[sid]
	if len(lg.clusters(in.Resonator)) != 1 {
		return false
	}
	for _, other := range lg.nl.Instances {
		if other.Kind != component.KindSegment || other.Resonator == in.Resonator {
			continue
		}
		if !frequency.Resonant(other.FreqGHz, in.FreqGHz, lg.deltaC) {
			continue
		}
		dx := math.Abs(other.Pos.X - in.Pos.X)
		dy := math.Abs(other.Pos.Y - in.Pos.Y)
		if math.Max(dx, dy) < lg.cfg.ResonantGuard {
			return false
		}
	}
	return true
}

// OverlapReport lists residual overlapping legal-rect pairs (diagnostics).
func OverlapReport(nl *component.Netlist) [][2]int {
	var out [][2]int
	n := len(nl.Instances)
	for i := 0; i < n; i++ {
		ri := LegalRect(nl.Instances[i])
		for j := i + 1; j < n; j++ {
			if overlapsEps(ri, LegalRect(nl.Instances[j])) {
				out = append(out, [2]int{i, j})
			}
		}
	}
	return out
}
