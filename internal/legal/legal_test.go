package legal

import (
	"math"
	"testing"

	"qplacer/internal/component"
	"qplacer/internal/frequency"
	"qplacer/internal/geom"
	"qplacer/internal/physics"
	"qplacer/internal/place"
	"qplacer/internal/topology"
)

func placedNetlist(t *testing.T, devName string, mode place.Mode) (*component.Netlist, geom.Rect) {
	t.Helper()
	dev, err := topology.ByName(devName)
	if err != nil {
		t.Fatal(err)
	}
	a := frequency.Assign(dev, physics.DetuneThresholdGHz)
	nl, err := component.Build(dev, a.QubitFreq, a.ResFreq, component.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cm := frequency.BuildCollisionMap(nl, physics.DetuneThresholdGHz)
	cfg := place.DefaultConfig()
	cfg.Mode = mode
	cfg.MaxIters = 300
	res, err := place.Place(nl, cm, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return nl, res.Region
}

func TestLegalRectPolicy(t *testing.T) {
	q := &component.Instance{Kind: component.KindQubit, W: 0.4, H: 0.4, Pad: 0.4}
	if r := LegalRect(q); math.Abs(r.W()-1.2) > 1e-12 {
		t.Fatalf("qubit legal width = %v, want 1.2", r.W())
	}
	s := &component.Instance{Kind: component.KindSegment, W: 0.3, H: 0.3, Pad: 0.1}
	if r := LegalRect(s); math.Abs(r.W()-0.4) > 1e-12 {
		t.Fatalf("segment legal width = %v, want 0.4", r.W())
	}
}

func TestLegalizeRemovesAllOverlaps(t *testing.T) {
	for _, devName := range []string{"grid", "falcon"} {
		nl, region := placedNetlist(t, devName, place.ModeQplacer)
		res, err := Legalize(nl, region, physics.DetuneThresholdGHz, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		if ov := OverlapReport(nl); len(ov) != 0 {
			t.Fatalf("%s: %d residual overlaps after legalization (first %v)",
				devName, len(ov), ov[0])
		}
		if res.QubitDisplacement < 0 || res.SegmentDisplacement < 0 {
			t.Fatalf("%s: negative displacement", devName)
		}
	}
}

func TestLegalizeIntegratesResonators(t *testing.T) {
	nl, region := placedNetlist(t, "grid", place.ModeQplacer)
	res, err := Legalize(nl, region, physics.DetuneThresholdGHz, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// The integration stage is best-effort (Algorithm 1 repairs via free
	// spots and τ-checked swaps); under the frequency guards a congested
	// layout keeps some stragglers. Demand a majority integrated and
	// record the rest — EXPERIMENTS.md discusses the deviation.
	broken := len(res.BrokenResonators)
	if broken > len(nl.Resonators)/2 {
		t.Fatalf("%d/%d resonators fragmented", broken, len(nl.Resonators))
	}
	t.Logf("integration: %d/%d resonators fragmented after repair",
		broken, len(nl.Resonators))
}

func TestLegalizeKeepsQubitsApart(t *testing.T) {
	nl, region := placedNetlist(t, "falcon", place.ModeClassic)
	if _, err := Legalize(nl, region, physics.DetuneThresholdGHz, DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	// Post-legalization, padded qubit cells are disjoint → core-to-core
	// distance ≥ 2·d_q = 0.8 mm between any two qubits.
	for i := 0; i < len(nl.QubitInst); i++ {
		for j := i + 1; j < len(nl.QubitInst); j++ {
			a := nl.Instances[nl.QubitInst[i]]
			b := nl.Instances[nl.QubitInst[j]]
			if gap := a.CoreRect().Gap(b.CoreRect()); gap < 0.8-1e-9 {
				t.Fatalf("qubits %d,%d core gap %.3f < 0.8", i, j, gap)
			}
		}
	}
}

func TestLegalizeValidation(t *testing.T) {
	nl, region := placedNetlist(t, "grid", place.ModeQplacer)
	bad := DefaultConfig()
	bad.Pitch = 0
	if _, err := Legalize(nl, region, physics.DetuneThresholdGHz, bad); err == nil {
		t.Fatal("zero pitch must fail")
	}
}

func TestLegalizeIsDeterministic(t *testing.T) {
	nlA, regionA := placedNetlist(t, "grid", place.ModeQplacer)
	nlB, regionB := placedNetlist(t, "grid", place.ModeQplacer)
	if _, err := Legalize(nlA, regionA, physics.DetuneThresholdGHz, DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	if _, err := Legalize(nlB, regionB, physics.DetuneThresholdGHz, DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	for i := range nlA.Instances {
		if nlA.Instances[i].Pos != nlB.Instances[i].Pos {
			t.Fatalf("instance %d position differs between identical runs", i)
		}
	}
}
