package legal

import (
	"context"
	"errors"
	"testing"

	"qplacer/internal/physics"
	"qplacer/internal/place"
)

func TestRowScanRemovesAllOverlaps(t *testing.T) {
	for _, devName := range []string{"grid", "falcon"} {
		nl, region := placedNetlist(t, devName, place.ModeQplacer)
		res, err := RowScan(nl, region, physics.DetuneThresholdGHz, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		if ov := OverlapReport(nl); len(ov) != 0 {
			t.Fatalf("%s: %d residual overlaps after row-scan (first %v)",
				devName, len(ov), ov[0])
		}
		if res.QubitDisplacement < 0 || res.SegmentDisplacement < 0 {
			t.Fatalf("%s: negative displacement: %+v", devName, res)
		}
	}
}

func TestRowScanFrequencyObliviousAlsoLegal(t *testing.T) {
	nl, region := placedNetlist(t, "grid", place.ModeClassic)
	cfg := DefaultConfig()
	cfg.FrequencyAware = false
	if _, err := RowScan(nl, region, physics.DetuneThresholdGHz, cfg); err != nil {
		t.Fatal(err)
	}
	if ov := OverlapReport(nl); len(ov) != 0 {
		t.Fatalf("%d residual overlaps without guards", len(ov))
	}
}

func TestRowScanProgressAndCancellation(t *testing.T) {
	nl, region := placedNetlist(t, "grid", place.ModeQplacer)
	cfg := DefaultConfig()
	lastStep, total := 0, 0
	cfg.Progress = func(step, tot int) {
		if step != lastStep+1 {
			t.Fatalf("unit %d reported after %d", step, lastStep)
		}
		lastStep, total = step, tot
	}
	if _, err := RowScan(nl, region, physics.DetuneThresholdGHz, cfg); err != nil {
		t.Fatal(err)
	}
	if lastStep == 0 || lastStep != total {
		t.Fatalf("progress stopped at %d/%d", lastStep, total)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg.Progress = nil
	if _, err := RowScanCtx(ctx, nl, region, physics.DetuneThresholdGHz, cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestRowScanRejectsBadConfig(t *testing.T) {
	nl, region := placedNetlist(t, "grid", place.ModeQplacer)
	bad := DefaultConfig()
	bad.Pitch = 0
	if _, err := RowScan(nl, region, physics.DetuneThresholdGHz, bad); err == nil {
		t.Fatal("zero pitch must be rejected")
	}
}
