package legal

import (
	"context"
	"errors"
	"testing"

	"qplacer/internal/physics"
	"qplacer/internal/place"
)

func TestLegalizeCtxCancelled(t *testing.T) {
	nl, region := placedNetlist(t, "grid", place.ModeQplacer)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := LegalizeCtx(ctx, nl, region, physics.DetuneThresholdGHz, DefaultConfig())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
