package legal

import (
	"context"
	"errors"
	"testing"

	"qplacer/internal/physics"
	"qplacer/internal/place"
)

func TestLegalizeCtxCancelled(t *testing.T) {
	nl, region := placedNetlist(t, "grid", place.ModeQplacer)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := LegalizeCtx(ctx, nl, region, physics.DetuneThresholdGHz, DefaultConfig())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestRowScanCtxCancelledMidRun cancels the greedy row-scan from its own
// progress callback after the first placement unit lands, proving the sweep
// checks its context between units rather than only up front.
func TestRowScanCtxCancelledMidRun(t *testing.T) {
	nl, region := placedNetlist(t, "grid", place.ModeQplacer)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	total := 0
	cfg := DefaultConfig()
	cfg.Progress = func(step, units int) {
		total = units
		if step == 1 {
			cancel()
		}
	}
	_, err := RowScanCtx(ctx, nl, region, physics.DetuneThresholdGHz, cfg)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if total < 2 {
		t.Fatalf("only %d placement units: cancellation was not mid-run", total)
	}
}

// TestRowScanCtxCancelledUpFront mirrors the shelf legalizer's pre-cancelled
// contract for the greedy backend.
func TestRowScanCtxCancelledUpFront(t *testing.T) {
	nl, region := placedNetlist(t, "grid", place.ModeQplacer)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RowScanCtx(ctx, nl, region, physics.DetuneThresholdGHz, DefaultConfig())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
