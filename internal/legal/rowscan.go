package legal

import (
	"context"
	"fmt"
	"sort"

	"qplacer/internal/component"
	"qplacer/internal/geom"
	"qplacer/internal/parallel"
)

// maxGuardTries bounds how far the row-scan slides an instance forward in
// search of a frequency-guarded spot before giving up and placing it
// unguarded (counted in GuardFallbacks, measured by P_h).
const maxGuardTries = 400

// RowScan is RowScanCtx without cancellation.
func RowScan(nl *component.Netlist, region geom.Rect, deltaC float64, cfg Config) (*Result, error) {
	return RowScanCtx(context.Background(), nl, region, deltaC, cfg)
}

// RowScanCtx legalizes with a greedy shelf/row-scan sweep — the classic
// Tetris-family alternative to the integration-aware spiral+flow legalizer of
// LegalizeCtx. Placement units (single qubits and whole resonator chains) are
// processed bottom-to-top, left-to-right by their global-placement centroids
// and packed onto shelves: each unit lands at the row cursor, rows grow
// upward when full. Chains are packed contiguously by construction, so
// resonator integration comes for free as long as a chain fits on few
// shelves. With FrequencyAware set, the cursor slides forward past spots that
// would violate the isolation guard against already-placed near-resonant
// instances; residual fallbacks are counted like LegalizeCtx's.
//
// The layout is overlap-free by construction (the cursor only advances and
// shelves are disjoint bands), at the cost of larger displacement than
// LegalizeCtx — the greedy trade-off.
func RowScanCtx(ctx context.Context, nl *component.Netlist, region geom.Rect, deltaC float64, cfg Config) (*Result, error) {
	if cfg.Pitch <= 0 || cfg.ClusterGap <= 0 {
		return nil, fmt.Errorf("legal: invalid config %+v", cfg)
	}
	res := &Result{}
	var partners [][]int
	if cfg.FrequencyAware {
		// The partner map is the scan's one superlinear piece; the shelf
		// packing itself is a sequential sweep by construction.
		setupTimer := cfg.Span.Child("setup").Start()
		pool := parallel.New(cfg.Workers)
		n := len(nl.Instances)
		partners = buildPartners(nl, deltaC,
			parallel.Gate(pool, n*n, resolveCutoffs(cfg, pool).ScanCells))
		cfg.Span.SetWorkers(pool.WorkerBusy())
		pool.Close()
		setupTimer.End()
	}
	bounds := region.Inflate(region.W() * 0.02)

	// Placement units: qubits alone, resonators as whole chains, ordered by
	// the centroid of their global placement (rows bottom-to-top, then left
	// to right) so the sweep roughly preserves the optimized layout.
	type unit struct {
		ids []int
		key geom.Point
	}
	units := make([]unit, 0, len(nl.QubitInst)+len(nl.Resonators))
	for _, qi := range nl.QubitInst {
		units = append(units, unit{ids: []int{qi}, key: nl.Instances[qi].Pos})
	}
	for _, r := range nl.Resonators {
		var c geom.Point
		for _, sid := range r.Segments {
			c = c.Add(nl.Instances[sid].Pos)
		}
		c = c.Scale(1 / float64(len(r.Segments)))
		units = append(units, unit{ids: r.Segments, key: c})
	}
	sort.SliceStable(units, func(a, b int) bool {
		if units[a].key.Y != units[b].key.Y {
			return units[a].key.Y < units[b].key.Y
		}
		return units[a].key.X < units[b].key.X
	})

	placed := make([]bool, len(nl.Instances))
	guardClear := func(in *component.Instance, c geom.Point) bool {
		if !cfg.FrequencyAware {
			return true
		}
		guard := guardFor(in.Kind)
		for _, pid := range partners[in.ID] {
			if placed[pid] && !guardedApart(nl.Instances[pid].Pos, c, guard) {
				return false
			}
		}
		return true
	}

	cursorX := bounds.Lo.X
	baseY := bounds.Lo.Y
	shelfH := 0.0
	newShelf := func() {
		baseY += shelfH
		shelfH = 0
		cursorX = bounds.Lo.X
	}
	scanTimer := cfg.Span.Child("scan").Start()
	for done, u := range units {
		if err := ctx.Err(); err != nil {
			scanTimer.End()
			return nil, err
		}
		for _, id := range u.ids {
			in := nl.Instances[id]
			r := LegalRect(in)
			w, h := r.W(), r.H()
			if cursorX+w > bounds.Hi.X && cursorX > bounds.Lo.X {
				newShelf()
			}
			if !guardClear(in, geom.Point{X: cursorX + w/2, Y: baseY + h/2}) {
				ok := false
				for try := 0; try < maxGuardTries; try++ {
					cursorX += cfg.Pitch
					if cursorX+w > bounds.Hi.X {
						newShelf()
					}
					if guardClear(in, geom.Point{X: cursorX + w/2, Y: baseY + h/2}) {
						ok = true
						break
					}
				}
				if !ok {
					res.GuardFallbacks++
				}
			}
			spot := geom.Point{X: cursorX + w/2, Y: baseY + h/2}
			if in.Kind == component.KindQubit {
				res.QubitDisplacement += spot.Dist(in.Pos)
			} else {
				res.SegmentDisplacement += spot.Dist(in.Pos)
			}
			in.Pos = spot
			placed[id] = true
			cursorX += w
			if h > shelfH {
				shelfH = h
			}
		}
		if cfg.Progress != nil {
			cfg.Progress(done+1, len(units))
		}
	}
	scanTimer.End()

	for rIdx := range nl.Resonators {
		if len(ResonatorClusters(nl, rIdx, cfg.ClusterGap)) > 1 {
			res.BrokenResonators = append(res.BrokenResonators, rIdx)
		}
	}
	res.IntegratedAll = len(res.BrokenResonators) == 0
	return res, nil
}
