package optim

import (
	"math"
	"math/rand"
	"testing"
)

func TestQuadraticBowl(t *testing.T) {
	// f(x) = ½ Σ c_i (x_i − t_i)², minimum at t.
	target := []float64{3, -2, 0.5, 10}
	coef := []float64{1, 4, 0.25, 2}
	grad := func(x, g []float64) float64 {
		var f float64
		for i := range x {
			d := x[i] - target[i]
			g[i] = coef[i] * d
			f += 0.5 * coef[i] * d * d
		}
		return f
	}
	o := NewNesterov(make([]float64, 4), grad, 0.1)
	x, iters := o.Minimize(500, 1e-10)
	for i := range x {
		if math.Abs(x[i]-target[i]) > 1e-6 {
			t.Fatalf("x[%d] = %g, want %g (after %d iters)", i, x[i], target[i], iters)
		}
	}
	if iters >= 500 {
		t.Fatalf("did not converge within 500 iterations")
	}
}

func TestIllConditionedQuadratic(t *testing.T) {
	// Condition number 1e4; BB + momentum should still converge quickly
	// compared to the ~κ iterations plain gradient descent would need.
	n := 20
	coef := make([]float64, n)
	for i := range coef {
		coef[i] = math.Pow(10, 4*float64(i)/float64(n-1)) // 1 … 1e4
	}
	grad := func(x, g []float64) float64 {
		var f float64
		for i := range x {
			g[i] = coef[i] * x[i]
			f += 0.5 * coef[i] * x[i] * x[i]
		}
		return f
	}
	x0 := make([]float64, n)
	for i := range x0 {
		x0[i] = 1
	}
	o := NewNesterov(x0, grad, 1e-4)
	x, iters := o.Minimize(3000, 1e-8)
	var norm float64
	for _, v := range x {
		norm += v * v
	}
	if math.Sqrt(norm) > 1e-5 {
		t.Fatalf("‖x‖ = %g after %d iters, want ~0", math.Sqrt(norm), iters)
	}
}

func TestRosenbrockProgress(t *testing.T) {
	// Non-convex sanity check: must reduce the Rosenbrock value by orders
	// of magnitude from a standard start.
	grad := func(x, g []float64) float64 {
		a, b := x[0], x[1]
		f := (1-a)*(1-a) + 100*(b-a*a)*(b-a*a)
		g[0] = -2*(1-a) - 400*a*(b-a*a)
		g[1] = 200 * (b - a*a)
		return f
	}
	o := NewNesterov([]float64{-1.2, 1}, grad, 1e-3)
	o.MaxStep = 1e-2 // keep the non-convex landscape stable
	var initial float64
	{
		g := make([]float64, 2)
		initial = grad([]float64{-1.2, 1}, g)
	}
	o.Minimize(5000, 1e-12)
	g := make([]float64, 2)
	final := grad(o.X(), g)
	if final > initial/100 {
		t.Fatalf("Rosenbrock: initial %g, final %g — insufficient progress", initial, final)
	}
}

func TestValueIsReported(t *testing.T) {
	grad := func(x, g []float64) float64 {
		g[0] = 2 * x[0]
		return x[0] * x[0]
	}
	o := NewNesterov([]float64{5}, grad, 0.1)
	o.Step()
	// After one step the reported value is f at the new reference point and
	// must already be below the starting value f(5) = 25.
	if o.Value >= 25 {
		t.Fatalf("Value = %g, want < 25 after a descent step", o.Value)
	}
}

func TestResetClearsMomentum(t *testing.T) {
	grad := func(x, g []float64) float64 {
		g[0] = x[0]
		return 0.5 * x[0] * x[0]
	}
	o := NewNesterov([]float64{1}, grad, 0.5)
	for i := 0; i < 10; i++ {
		o.Step()
	}
	o.Reset()
	if o.Iter() != 0 {
		t.Fatalf("Iter after Reset = %d", o.Iter())
	}
	// After reset the reference point must equal the major point: one step
	// from a stationary state must not blow up.
	before := o.X()[0]
	o.Step()
	after := o.X()[0]
	if math.Abs(after) > math.Abs(before) {
		t.Fatalf("step after reset diverged: %g -> %g", before, after)
	}
}

func TestStepSizeClamping(t *testing.T) {
	grad := func(x, g []float64) float64 {
		g[0] = 1e-30 // near-zero gradient → BB step would explode
		return 0
	}
	o := NewNesterov([]float64{0}, grad, 1)
	o.MaxStep = 10
	o.Step()
	o.Step()
	if o.StepSize() > 10 {
		t.Fatalf("step size %g exceeds MaxStep", o.StepSize())
	}
}

func TestPanicsOnBadInitStep(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-positive initStep")
		}
	}()
	NewNesterov([]float64{0}, func(x, g []float64) float64 { return 0 }, 0)
}

func TestRandomConvexProblems(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(30)
		c := make([]float64, n)
		tgt := make([]float64, n)
		for i := range c {
			c[i] = 0.5 + rng.Float64()*10
			tgt[i] = rng.NormFloat64() * 5
		}
		grad := func(x, g []float64) float64 {
			var f float64
			for i := range x {
				d := x[i] - tgt[i]
				g[i] = c[i] * d
				f += 0.5 * c[i] * d * d
			}
			return f
		}
		o := NewNesterov(make([]float64, n), grad, 0.05)
		x, _ := o.Minimize(2000, 1e-9)
		for i := range x {
			if math.Abs(x[i]-tgt[i]) > 1e-4 {
				t.Fatalf("trial %d: x[%d] = %g, want %g", trial, i, x[i], tgt[i])
			}
		}
	}
}
