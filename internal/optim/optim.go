// Package optim implements the Nesterov accelerated gradient method with
// Barzilai–Borwein step prediction and Lipschitz backtracking, the optimizer
// used by the ePlace family of analytical placers that Qplacer builds on.
// The placer drives the iteration loop itself (penalty weights change
// between steps), so the core API is a single Step; a convenience Minimize
// loop is provided for tests and simple callers.
package optim

import "math"

// GradFunc evaluates the objective gradient at x into grad (same length) and
// returns the objective value. Implementations must not retain x or grad.
type GradFunc func(x []float64, grad []float64) float64

// Nesterov is an accelerated first-order optimizer over a flat parameter
// vector, following the ePlace formulation: at each step the tentative step
// size is validated against a fresh inverse-Lipschitz estimate at the trial
// lookahead point and shrunk until consistent (backtracking).
type Nesterov struct {
	grad GradFunc

	x     []float64 // major solution u_k
	v     []float64 // reference (lookahead) solution v_k
	g     []float64 // ∇f(v_k)
	vNext []float64
	gNext []float64
	xNext []float64

	a     float64 // Nesterov momentum parameter a_k
	alpha float64 // current step size
	iter  int

	// MinStep and MaxStep clamp the step size.
	MinStep, MaxStep float64
	// MaxBacktrack bounds the inner backtracking loop.
	MaxBacktrack int
	// Value is the objective value at the last evaluated reference point.
	Value float64

	haveGrad bool
}

// NewNesterov returns an optimizer starting from x0 (copied). initStep is
// the first step size; any positive value works because backtracking
// corrects it on the first iteration.
func NewNesterov(x0 []float64, grad GradFunc, initStep float64) *Nesterov {
	if initStep <= 0 {
		panic("optim: initStep must be positive")
	}
	n := len(x0)
	return &Nesterov{
		grad:         grad,
		x:            append([]float64(nil), x0...),
		v:            append([]float64(nil), x0...),
		g:            make([]float64, n),
		vNext:        make([]float64, n),
		gNext:        make([]float64, n),
		xNext:        make([]float64, n),
		a:            1,
		alpha:        initStep,
		MinStep:      1e-12,
		MaxStep:      1e12,
		MaxBacktrack: 16,
	}
}

// X returns the current major solution (live slice; copy before mutating).
func (o *Nesterov) X() []float64 { return o.x }

// Iter returns the number of completed steps.
func (o *Nesterov) Iter() int { return o.iter }

// StepSize returns the most recent accepted step size.
func (o *Nesterov) StepSize() float64 { return o.alpha }

func (o *Nesterov) clamp(a float64) float64 {
	if a < o.MinStep {
		return o.MinStep
	}
	if a > o.MaxStep {
		return o.MaxStep
	}
	return a
}

// Step performs one accelerated gradient step with backtracking and returns
// the Euclidean norm of the gradient at the reference point.
func (o *Nesterov) Step() float64 {
	if !o.haveGrad {
		o.Value = o.grad(o.v, o.g)
		o.haveGrad = true
	}

	aNext := (1 + math.Sqrt(4*o.a*o.a+1)) / 2
	beta := (o.a - 1) / aNext

	var gnorm2 float64
	for _, gi := range o.g {
		gnorm2 += gi * gi
	}

	alpha := o.clamp(o.alpha)
	for bt := 0; ; bt++ {
		for i := range o.x {
			o.xNext[i] = o.v[i] - alpha*o.g[i]
			o.vNext[i] = o.xNext[i] + beta*(o.xNext[i]-o.x[i])
		}
		value := o.grad(o.vNext, o.gNext)
		// Fresh inverse-Lipschitz estimate between v and vNext.
		var dv2, dg2 float64
		for i := range o.v {
			dv := o.vNext[i] - o.v[i]
			dg := o.gNext[i] - o.g[i]
			dv2 += dv * dv
			dg2 += dg * dg
		}
		var alphaHat float64
		switch {
		case dg2 <= 0 || dv2 <= 0:
			alphaHat = alpha // flat or stationary: accept as-is
		default:
			alphaHat = math.Sqrt(dv2 / dg2)
		}
		if alpha <= alphaHat*1.02 || bt >= o.MaxBacktrack || alpha <= o.MinStep {
			// Accept; seed the next iteration with the fresh estimate.
			o.alpha = o.clamp(alphaHat)
			// Adaptive (function-value) restart: if the objective rose at
			// the new reference point, momentum is overshooting — drop it.
			copy(o.x, o.xNext)
			if value > o.Value {
				aNext = 1
				copy(o.v, o.x)
				o.Value = o.grad(o.v, o.g)
			} else {
				copy(o.v, o.vNext)
				copy(o.g, o.gNext)
				o.Value = value
			}
			break
		}
		alpha = o.clamp(alphaHat)
	}

	o.a = aNext
	o.iter++
	return math.Sqrt(gnorm2)
}

// Reset clears the momentum state and cached gradients (used by the placer
// when the objective changes discontinuously, e.g. after a penalty-weight
// jump).
func (o *Nesterov) Reset() {
	o.a = 1
	copy(o.v, o.x)
	o.iter = 0
	o.haveGrad = false
}

// InvalidateGradient discards the cached gradient so the next Step
// re-evaluates it at the current reference point. Callers that mutate the
// objective between steps (e.g. penalty-weight escalation) must call this,
// otherwise the Barzilai–Borwein curvature estimate mixes gradients from
// two different objectives and collapses the step size.
func (o *Nesterov) InvalidateGradient() { o.haveGrad = false }

// Minimize runs at most maxIter steps, stopping early when the gradient
// norm falls below tol. It returns the final solution (a live reference to
// the optimizer's state) and the number of steps taken.
func (o *Nesterov) Minimize(maxIter int, tol float64) ([]float64, int) {
	for k := 0; k < maxIter; k++ {
		if o.Step() < tol {
			return o.x, k + 1
		}
	}
	return o.x, maxIter
}
