// Package metrics computes the paper's layout-quality metrics (§V-C):
// minimum enclosing rectangle area A_mer, polygon area A_poly, substrate
// utilization (Eq. 17), the frequency-hotspot proportion P_h (Eq. 18), the
// spatial-violation list feeding the fidelity model, and the impacted-qubit
// count of Fig. 12.
package metrics

import (
	"math"

	"qplacer/internal/component"
	"qplacer/internal/frequency"
	"qplacer/internal/geom"
)

// Report is the full metric set for one placed layout.
type Report struct {
	Amer           float64 // minimum enclosing rectangle area (mm²)
	Apoly          float64 // Σ component polygon areas (mm²)
	Utilization    float64 // Apoly / Amer (Eq. 17)
	Ph             float64 // frequency-hotspot proportion (Eq. 18), in %
	Violations     []Violation
	ImpactedQubits []int // device qubit indices touched by any hotspot
}

// Violation is one near-resonant pair whose padded footprints overlap.
type Violation struct {
	A, B     int     // instance IDs
	Length   float64 // intersection length (p_i ∩ p_j)
	Distance float64 // centroid distance d_c
}

// polygonRect returns the "polygon" footprint used for A_poly and the
// hotspot test: a qubit's crosstalk keep-out is its padded cell, while a
// resonator wire block occupies its padded block (the reserved ribbon).
func polygonRect(in *component.Instance) geom.Rect {
	return in.PaddedRect()
}

// apolyArea returns the instance's contribution to A_poly: the padded cell
// for qubits (the keep-out belongs to the component) and the bare wire block
// for segments (matching the paper's gray reserved-space accounting of
// Fig. 14b, which yields the ~0.7 utilization levels of Fig. 15).
func apolyArea(in *component.Instance) float64 {
	if in.Kind == component.KindQubit {
		return in.PaddedArea()
	}
	return in.W * in.H
}

// Measure computes all metrics for the placed netlist.
func Measure(nl *component.Netlist, deltaC float64) *Report {
	rep := &Report{}

	rects := make([]geom.Rect, len(nl.Instances))
	for i, in := range nl.Instances {
		rects[i] = polygonRect(in)
		rep.Apoly += apolyArea(in)
	}
	if enc, ok := geom.EnclosingRect(rects); ok {
		rep.Amer = enc.Area()
	}
	if rep.Amer > 0 {
		rep.Utilization = rep.Apoly / rep.Amer
	}

	// Hotspots: near-resonant pairs (same-resonator pairs excluded, Eq. 10)
	// whose padded polygons overlap.
	var num float64
	n := len(nl.Instances)
	impacted := map[int]bool{}
	for i := 0; i < n; i++ {
		a := nl.Instances[i]
		for j := i + 1; j < n; j++ {
			b := nl.Instances[j]
			if a.Kind != b.Kind {
				continue // cross-band pairs are never resonant
			}
			if a.Kind == component.KindSegment && a.Resonator == b.Resonator {
				continue
			}
			if !frequency.Resonant(a.FreqGHz, b.FreqGHz, deltaC) {
				continue
			}
			length := rects[i].IntersectionLength(rects[j])
			if length <= 0 {
				continue
			}
			dc := a.Pos.Dist(b.Pos)
			num += length * dc
			rep.Violations = append(rep.Violations, Violation{
				A: i, B: j, Length: length, Distance: dc,
			})
			markImpacted(nl, a, impacted)
			markImpacted(nl, b, impacted)
		}
	}
	if rep.Apoly > 0 {
		rep.Ph = 100 * num / rep.Apoly
	}
	rep.ImpactedQubits = sortedKeys(impacted)
	return rep
}

// markImpacted records the qubits affected by a violating instance: the
// qubit itself, or — for a resonator segment — both endpoint qubits of its
// resonator (resonator crosstalk is non-local, §VI-B).
func markImpacted(nl *component.Netlist, in *component.Instance, set map[int]bool) {
	if in.Kind == component.KindQubit {
		set[in.Qubit] = true
		return
	}
	res := nl.Resonators[in.Resonator]
	set[res.QubitA] = true
	set[res.QubitB] = true
}

func sortedKeys(set map[int]bool) []int {
	out := make([]int, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	// insertion sort: lists are small
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// EnclosingRect returns the minimum enclosing rectangle of the layout's
// padded footprints.
func EnclosingRect(nl *component.Netlist) (geom.Rect, bool) {
	rects := make([]geom.Rect, len(nl.Instances))
	for i, in := range nl.Instances {
		rects[i] = polygonRect(in)
	}
	return geom.EnclosingRect(rects)
}

// MinResonantDistance returns the smallest centre distance between
// near-resonant instances of the given kind (∞ when no pairs exist) — a
// compact isolation indicator used by ablation studies.
func MinResonantDistance(nl *component.Netlist, kind component.Kind, deltaC float64) float64 {
	min := math.Inf(1)
	n := len(nl.Instances)
	for i := 0; i < n; i++ {
		a := nl.Instances[i]
		if a.Kind != kind {
			continue
		}
		for j := i + 1; j < n; j++ {
			b := nl.Instances[j]
			if b.Kind != kind {
				continue
			}
			if a.Kind == component.KindSegment && a.Resonator == b.Resonator {
				continue
			}
			if !frequency.Resonant(a.FreqGHz, b.FreqGHz, deltaC) {
				continue
			}
			if d := a.Pos.Dist(b.Pos); d < min {
				min = d
			}
		}
	}
	return min
}
