package metrics

import (
	"math"
	"testing"

	"qplacer/internal/component"
	"qplacer/internal/frequency"
	"qplacer/internal/geom"
	"qplacer/internal/physics"
	"qplacer/internal/topology"
)

func netlist(t *testing.T) *component.Netlist {
	t.Helper()
	dev := topology.Grid25()
	a := frequency.Assign(dev, physics.DetuneThresholdGHz)
	nl, err := component.Build(dev, a.QubitFreq, a.ResFreq, component.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return nl
}

// spread places all instances far apart so no hotspots exist.
func spread(nl *component.Netlist) {
	for i, in := range nl.Instances {
		in.Pos = geom.Point{X: float64(i%30) * 5, Y: float64(i/30) * 5}
	}
}

func TestMeasureNoViolationsWhenSpread(t *testing.T) {
	nl := netlist(t)
	spread(nl)
	rep := Measure(nl, physics.DetuneThresholdGHz)
	if rep.Ph != 0 || len(rep.Violations) != 0 || len(rep.ImpactedQubits) != 0 {
		t.Fatalf("spread layout must have no hotspots: %+v", rep)
	}
	if rep.Amer <= 0 || rep.Apoly <= 0 || rep.Utilization <= 0 {
		t.Fatalf("degenerate areas: %+v", rep)
	}
}

func TestMeasureDetectsStackedResonantQubits(t *testing.T) {
	nl := netlist(t)
	spread(nl)
	// Find two resonant qubits and stack them.
	var qa, qb *component.Instance
	for i := 0; i < len(nl.QubitInst) && qb == nil; i++ {
		for j := i + 1; j < len(nl.QubitInst); j++ {
			a := nl.Instances[nl.QubitInst[i]]
			b := nl.Instances[nl.QubitInst[j]]
			if frequency.Resonant(a.FreqGHz, b.FreqGHz, 0.1) {
				qa, qb = a, b
				break
			}
		}
	}
	if qb == nil {
		t.Skip("no resonant qubit pair on this assignment")
	}
	qb.Pos = qa.Pos.Add(geom.Point{X: 0.5})
	rep := Measure(nl, physics.DetuneThresholdGHz)
	if rep.Ph <= 0 || len(rep.Violations) == 0 {
		t.Fatal("stacked resonant qubits must register as a hotspot")
	}
	if len(rep.ImpactedQubits) != 2 {
		t.Fatalf("impacted qubits = %v, want the two stacked ones", rep.ImpactedQubits)
	}
}

func TestMeasureIgnoresSameResonatorOverlap(t *testing.T) {
	nl := netlist(t)
	spread(nl)
	segs := nl.Resonators[0].Segments
	base := nl.Instances[segs[0]].Pos
	for k, sid := range segs {
		nl.Instances[sid].Pos = base.Add(geom.Point{X: float64(k) * 0.01})
	}
	rep := Measure(nl, physics.DetuneThresholdGHz)
	for _, v := range rep.Violations {
		a, b := nl.Instances[v.A], nl.Instances[v.B]
		if a.Kind == component.KindSegment && b.Kind == component.KindSegment &&
			a.Resonator == b.Resonator {
			t.Fatal("same-resonator overlap must not count (Eq. 10)")
		}
	}
}

func TestMinResonantDistance(t *testing.T) {
	nl := netlist(t)
	spread(nl)
	d := MinResonantDistance(nl, component.KindQubit, physics.DetuneThresholdGHz)
	if math.IsInf(d, 1) {
		t.Skip("no resonant qubit pairs")
	}
	if d < 5 {
		t.Fatalf("spread layout min resonant distance = %v", d)
	}
}

func TestEnclosingRect(t *testing.T) {
	nl := netlist(t)
	spread(nl)
	enc, ok := EnclosingRect(nl)
	if !ok || enc.Area() <= 0 {
		t.Fatal("degenerate enclosing rect")
	}
}
