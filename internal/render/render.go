// Package render emits layout artefacts: SVG drawings with components
// colour-coded by frequency (the Fig. 14b view), meander resonator routing
// inside each resonator's reserved segment space (the Fig. 8e view), a
// GDS-like text export standing in for the paper's Qiskit Metal GDSII
// output (Fig. 14c), and TSV table writers for the experiment harness.
package render

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"qplacer/internal/component"
	"qplacer/internal/geom"
)

// freqColor maps a frequency within [lo, hi] onto a blue→red ramp.
func freqColor(f, lo, hi float64) string {
	t := 0.0
	if hi > lo {
		t = (f - lo) / (hi - lo)
	}
	t = math.Max(0, math.Min(1, t))
	r := int(40 + 200*t)
	b := int(240 - 200*t)
	return fmt.Sprintf("#%02x50%02x", r, b)
}

// SVG writes the placed netlist as an SVG document.
func SVG(w io.Writer, nl *component.Netlist) error {
	rects := nl.PaddedRects()
	enc, ok := geom.EnclosingRect(rects)
	if !ok {
		return fmt.Errorf("render: empty netlist")
	}
	enc = enc.Inflate(0.5)
	scale := 60.0 // px per mm
	width := enc.W() * scale
	height := enc.H() * scale
	toX := func(x float64) float64 { return (x - enc.Lo.X) * scale }
	toY := func(y float64) float64 { return (enc.Hi.Y - y) * scale }

	var qLo, qHi, rLo, rHi = math.Inf(1), math.Inf(-1), math.Inf(1), math.Inf(-1)
	for _, in := range nl.Instances {
		if in.Kind == component.KindQubit {
			qLo = math.Min(qLo, in.FreqGHz)
			qHi = math.Max(qHi, in.FreqGHz)
		} else {
			rLo = math.Min(rLo, in.FreqGHz)
			rHi = math.Max(rHi, in.FreqGHz)
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`+"\n",
		width, height, width, height)
	fmt.Fprintf(&b, `<rect width="%.0f" height="%.0f" fill="#fafafa"/>`+"\n", width, height)

	// Segments first (under qubits), with reserved space shaded.
	for _, in := range nl.Instances {
		if in.Kind != component.KindSegment {
			continue
		}
		r := in.CoreRect()
		fmt.Fprintf(&b,
			`<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s" fill-opacity="0.55" stroke="#999" stroke-width="0.5"/>`+"\n",
			toX(r.Lo.X), toY(r.Hi.Y), r.W()*scale, r.H()*scale,
			freqColor(in.FreqGHz, rLo, rHi))
	}
	// Meander routing per resonator inside its cluster.
	for _, res := range nl.Resonators {
		path := MeanderPath(nl, res)
		if len(path) < 2 {
			continue
		}
		var pts []string
		for _, p := range path {
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", toX(p.X), toY(p.Y)))
		}
		fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="#333" stroke-width="1"/>`+"\n",
			strings.Join(pts, " "))
	}
	// Qubits.
	for _, in := range nl.Instances {
		if in.Kind != component.KindQubit {
			continue
		}
		pr := in.PaddedRect()
		fmt.Fprintf(&b,
			`<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="none" stroke="#bbb" stroke-dasharray="3,3" stroke-width="0.5"/>`+"\n",
			toX(pr.Lo.X), toY(pr.Hi.Y), pr.W()*scale, pr.H()*scale)
		r := in.CoreRect()
		fmt.Fprintf(&b,
			`<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s" stroke="#222" stroke-width="1"/>`+"\n",
			toX(r.Lo.X), toY(r.Hi.Y), r.W()*scale, r.H()*scale,
			freqColor(in.FreqGHz, qLo, qHi))
		fmt.Fprintf(&b,
			`<text x="%.1f" y="%.1f" font-size="9" text-anchor="middle" fill="#fff">%d</text>`+"\n",
			toX(in.Pos.X), toY(in.Pos.Y)+3, in.Qubit)
	}
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// MeanderPath returns a serpentine polyline through a resonator's segment
// blocks in chain order — the re-routing of the physical wire through its
// reserved space (Fig. 8e).
func MeanderPath(nl *component.Netlist, res *component.Resonator) []geom.Point {
	pts := make([]geom.Point, 0, len(res.Segments)*3)
	for i, sid := range res.Segments {
		in := nl.Instances[sid]
		c := in.Pos
		q := in.W / 4
		if i%2 == 0 {
			pts = append(pts,
				geom.Point{X: c.X - q, Y: c.Y - q},
				geom.Point{X: c.X - q, Y: c.Y + q},
				geom.Point{X: c.X + q, Y: c.Y + q},
				geom.Point{X: c.X + q, Y: c.Y - q})
		} else {
			pts = append(pts,
				geom.Point{X: c.X - q, Y: c.Y + q},
				geom.Point{X: c.X - q, Y: c.Y - q},
				geom.Point{X: c.X + q, Y: c.Y - q},
				geom.Point{X: c.X + q, Y: c.Y + q})
		}
	}
	return pts
}

// GDSText writes a human-readable GDSII-like stream: one polygon record per
// component (layer 1 = qubit metal, layer 2 = resonator blocks, layer 10 =
// meander centrelines), coordinates in integer nanometres as GDS databases
// use. It substitutes for the Qiskit Metal GDS export of Fig. 14c.
func GDSText(w io.Writer, nl *component.Netlist, name string) error {
	nm := func(v float64) int64 { return int64(math.Round(v * 1e6)) }
	var b strings.Builder
	fmt.Fprintf(&b, "HEADER 600\nBGNLIB\nLIBNAME %s.DB\nUNITS 1e-3 1e-9\nBGNSTR\nSTRNAME %s\n", name, name)
	emit := func(layer int, r geom.Rect) {
		fmt.Fprintf(&b, "BOUNDARY\nLAYER %d\nDATATYPE 0\nXY %d %d %d %d %d %d %d %d %d %d\nENDEL\n",
			layer,
			nm(r.Lo.X), nm(r.Lo.Y), nm(r.Hi.X), nm(r.Lo.Y),
			nm(r.Hi.X), nm(r.Hi.Y), nm(r.Lo.X), nm(r.Hi.Y),
			nm(r.Lo.X), nm(r.Lo.Y))
	}
	for _, in := range nl.Instances {
		layer := 1
		if in.Kind == component.KindSegment {
			layer = 2
		}
		emit(layer, in.CoreRect())
	}
	for _, res := range nl.Resonators {
		path := MeanderPath(nl, res)
		if len(path) < 2 {
			continue
		}
		fmt.Fprintf(&b, "PATH\nLAYER 10\nDATATYPE 0\nWIDTH %d\nXY", nm(0.01))
		for _, p := range path {
			fmt.Fprintf(&b, " %d %d", nm(p.X), nm(p.Y))
		}
		b.WriteString("\nENDEL\n")
	}
	b.WriteString("ENDSTR\nENDLIB\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// Table writes a TSV table: header row then rows, all tab-separated.
func Table(w io.Writer, header []string, rows [][]string) error {
	var b strings.Builder
	b.WriteString(strings.Join(header, "\t"))
	b.WriteByte('\n')
	for _, r := range rows {
		b.WriteString(strings.Join(r, "\t"))
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// SortedKeys returns map keys in sorted order (table emission helper).
func SortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
