package render

import (
	"strings"
	"testing"

	"qplacer/internal/component"
	"qplacer/internal/frequency"
	"qplacer/internal/geom"
	"qplacer/internal/physics"
	"qplacer/internal/topology"
)

func netlist(t *testing.T) *component.Netlist {
	t.Helper()
	dev := topology.Grid25()
	a := frequency.Assign(dev, physics.DetuneThresholdGHz)
	nl, err := component.Build(dev, a.QubitFreq, a.ResFreq, component.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i, in := range nl.Instances {
		in.Pos = geom.Point{X: float64(i%25) * 0.8, Y: float64(i/25) * 0.8}
	}
	return nl
}

func TestSVGWellFormed(t *testing.T) {
	nl := netlist(t)
	var b strings.Builder
	if err := SVG(&b, nl); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasPrefix(out, "<svg") || !strings.HasSuffix(strings.TrimSpace(out), "</svg>") {
		t.Fatal("SVG not well-formed")
	}
	if strings.Count(out, "<rect") < nl.NumCells() {
		t.Fatal("missing component rects")
	}
	if !strings.Contains(out, "<polyline") {
		t.Fatal("missing meander polylines")
	}
}

func TestGDSTextStructure(t *testing.T) {
	nl := netlist(t)
	var b strings.Builder
	if err := GDSText(&b, nl, "test"); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, tok := range []string{"HEADER", "STRNAME test", "BOUNDARY", "PATH", "ENDLIB"} {
		if !strings.Contains(out, tok) {
			t.Fatalf("GDS missing %s", tok)
		}
	}
	if strings.Count(out, "BOUNDARY") != nl.NumCells() {
		t.Fatalf("boundary count %d != cells %d", strings.Count(out, "BOUNDARY"), nl.NumCells())
	}
}

func TestMeanderPathCoversSegments(t *testing.T) {
	nl := netlist(t)
	res := nl.Resonators[0]
	path := MeanderPath(nl, res)
	if len(path) != 4*len(res.Segments) {
		t.Fatalf("path points = %d, want 4 per segment", len(path))
	}
}

func TestTable(t *testing.T) {
	var b strings.Builder
	err := Table(&b, []string{"a", "b"}, [][]string{{"1", "2"}, {"3", "4"}})
	if err != nil {
		t.Fatal(err)
	}
	if b.String() != "a\tb\n1\t2\n3\t4\n" {
		t.Fatalf("table = %q", b.String())
	}
}

func TestSortedKeys(t *testing.T) {
	got := SortedKeys(map[string]int{"c": 1, "a": 2, "b": 3})
	if got[0] != "a" || got[2] != "c" {
		t.Fatalf("keys = %v", got)
	}
}
