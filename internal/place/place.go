// Package place implements the paper's primary contribution: the
// frequency-aware electrostatic analytical placement engine of §IV-C. It
// minimizes
//
//	f(x, y) = WL(x, y) + λ·D(x, y) + λf·F(x, y)            (Eq. 14)
//
// where WL is a smoothed wirelength over the 2-pin net chains, D is the
// ePlace electrostatic density penalty (instances as positive charges, a
// spectral Poisson solve produces the spreading field), and F is the
// frequency repulsive potential acting only on near-resonant collision-map
// pairs (Eqs. 9–10). Penalty weights escalate every iteration so the engine
// glides from pure area/wirelength minimization to constraint satisfaction.
//
// ModeClassic disables the frequency force (λf = 0), reproducing the
// crosstalk-oblivious classical baseline of §V-B with identical
// hyperparameters, exactly as the paper's comparison requires.
package place

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"time"

	"qplacer/internal/component"
	"qplacer/internal/fft"
	"qplacer/internal/frequency"
	"qplacer/internal/geom"
	"qplacer/internal/obs"
	"qplacer/internal/optim"
	"qplacer/internal/parallel"
	"qplacer/internal/poisson"
)

// Mode selects the placement scheme.
type Mode int

const (
	// ModeQplacer is the full frequency-aware engine.
	ModeQplacer Mode = iota
	// ModeClassic is the same engine with the frequency force disabled.
	ModeClassic
)

// String names the mode ("qplacer", "classic").
func (m Mode) String() string {
	switch m {
	case ModeQplacer:
		return "qplacer"
	case ModeClassic:
		return "classic"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// Config holds engine hyperparameters. The zero value is not valid; use
// DefaultConfig. Classic and Qplacer runs share every knob except Mode,
// matching the paper's fair-comparison setup.
type Config struct {
	Mode Mode

	// TargetDensity D̂ sizes the placement region:
	// side = √(Σ charge areas / D̂).
	TargetDensity float64
	// MaxIters bounds the Nesterov loop; StopOverflow ends it early once
	// the density overflow drops below this fraction (after MinIters).
	MaxIters     int
	MinIters     int
	StopOverflow float64

	// LambdaGrowth multiplies the density weight each iteration;
	// FreqLambdaGrowth does the same for the frequency weight.
	LambdaGrowth     float64
	FreqLambdaGrowth float64
	// FreqWeight scales the initial frequency penalty relative to the
	// wirelength gradient (0 disables, as in ModeClassic).
	FreqWeight float64
	// FreqCutoffMM is the interaction radius of the repulsive force between
	// qubit pairs: pairs farther apart feel nothing (keeps the potential
	// local, §IV-C1). Segment pairs use FreqCutoffSegMM — wire blocks are
	// small (padded ~0.5 mm), need proportionally less separation, and a
	// large radius over their sheer pair count would jam the optimizer.
	FreqCutoffMM    float64
	FreqCutoffSegMM float64

	// Seed drives the deterministic initial-placement jitter.
	Seed int64

	// Workers bounds the worker pool the per-iteration gradient evaluation
	// fans out on (wirelength, density rasterization, the spectral Poisson
	// solve, frequency/chain pair repulsion, walls). 0 or 1 runs the serial
	// path. Parallel runs are bit-identical to serial ones at every worker
	// count: work is statically partitioned and every output index is
	// accumulated by exactly one worker in the serial visit order, so this
	// knob trades wall-clock for cores, never results.
	Workers int

	// Cutoffs gates each parallel stage by problem size: stages below their
	// cutoff run serially, so small problems stop paying fork-join dispatch
	// overhead that exceeds the parallel saving. nil auto-calibrates once
	// per process (parallel.AutoCutoffs); a pointer to the zero value
	// disables gating (every stage always fans out, the pre-adaptive
	// behaviour). Gating selects between bit-identical implementations, so
	// it never changes results. Ignored when Workers <= 1.
	Cutoffs *parallel.Cutoffs

	// DeltaEval enables incremental gradient evaluation across Nesterov
	// iterations: bitwise-repeated position vectors replay their cached
	// component gradients, and the pair-repulsion kernels keep Verlet active
	// lists so far-apart pairs are not re-scanned every iteration. Both
	// mechanisms carry exact-recompute guards (bit-pattern equality, a
	// displacement bound), so placements are bit-identical with or without
	// it — and at every worker count either way.
	DeltaEval bool

	// Trace, when non-nil, receives per-iteration diagnostics. Enabling it
	// costs an extra gradient evaluation per iteration.
	Trace func(TraceEvent)

	// Progress, when non-nil, is called once per completed iteration with
	// the 1-based iteration count and the current density overflow. It rides
	// on values the loop computes anyway, so unlike Trace it adds no work;
	// it must be fast and non-blocking.
	Progress func(iter int, overflow float64)

	// Span, when non-nil, receives the run's timing breakdown: the gradient
	// components (wirelength, density with its rasterize/poisson/field
	// phases, frequency, chain, boundary), the owner-computes reductions,
	// the per-coordinate combine, and per-worker busy attribution. These are
	// wall-only aggregating sub-spans, cheap enough for the iteration loop.
	Span *obs.Span
}

// TraceEvent is one iteration's diagnostics for Config.Trace.
type TraceEvent struct {
	Iter               int
	Overflow           float64
	Lambda, LambdaF    float64
	StepSize           float64
	WLGradL1, DGradL1  float64
	FGradL1            float64
	HPWLSmooth, Energy float64
}

// DefaultConfig returns the hyperparameters used throughout the evaluation.
func DefaultConfig() Config {
	return Config{
		Mode:             ModeQplacer,
		TargetDensity:    0.8,
		MaxIters:         600,
		MinIters:         250,
		StopOverflow:     0.08,
		LambdaGrowth:     1.08,
		FreqLambdaGrowth: 1.08,
		FreqWeight:       1.0,
		FreqCutoffMM:     3.0,
		FreqCutoffSegMM:  0.7,
		Seed:             1,
	}
}

// Result reports a finished global placement.
type Result struct {
	Mode       Mode
	Region     geom.Rect // placement region used for density
	Iterations int
	HPWL       float64 // final half-perimeter wirelength (mm)
	Overflow   float64 // final density overflow fraction
	Runtime    time.Duration
	AvgIterMS  float64
}

// chargeArea returns the electrostatic charge (area) of an instance. Qubits
// use their fully padded footprint; resonator segments use a half-padded
// footprint, reflecting that same-resonator blocks pack contiguously and
// padding is shared between abutting neighbours (§IV-B2, Fig. 8d).
func chargeArea(in *component.Instance) (w, h float64) {
	switch in.Kind {
	case component.KindQubit:
		return in.PaddedW(), in.PaddedH()
	default:
		return in.W + in.Pad, in.H + in.Pad
	}
}

// TotalChargeArea sums the density charge areas of a netlist.
func TotalChargeArea(nl *component.Netlist) float64 {
	var a float64
	for _, in := range nl.Instances {
		w, h := chargeArea(in)
		a += w * h
	}
	return a
}

// engine carries per-run state.
type engine struct {
	cfg    Config
	nl     *component.Netlist
	cm     *frequency.CollisionMap
	region geom.Rect
	solver *poisson.Solver

	chargeW, chargeH []float64
	gamma            float64 // wirelength smoothing
	freqSmooth       float64 // distance smoothing s of the 1/(d+s) potential

	lambda   float64 // density weight
	lambdaFQ float64 // frequency weight, qubit pairs
	lambdaFS float64 // frequency weight, segment pairs
	wall     float64 // boundary spring weight

	// scratch
	gradWL, gradD, gradWall, gradC []float64
	gradFQ, gradFS                 []float64
	overflow                       float64
	lambdaC                        float64 // chain-spacing weight
	chainPairs                     [][2]int
	chainR0                        float64
	qubitPairs, segPairs           [][2]int // collision map split by kind

	// Parallel state (nil/empty when Workers <= 1). The incidence
	// structures drive owner-computes accumulation: instNets[i] (ascending
	// net indices) and the per-family CSR incidence (ascending pair
	// indices) let the worker that owns instance i fold exactly the
	// serial-order contributions into grad[2i], grad[2i+1]. The contrib
	// buffers collect per-net / per-pair scalar terms, reduced serially in
	// index order so objective values keep their serial bits too.
	pool             *parallel.Pool
	instNets         [][]int32
	incQ, incS, incC incidenceCSR
	netContrib       []float64
	pairContrib      []float64
	rasterLo         []int32 // per-instance clamped bin-row span, refreshed
	rasterHi         []int32 // each densityGrad so workers skip cheaply

	// Adaptive granularity: per-stage gated views of pool (nil = run that
	// stage serially because its problem size is below the cutoff). The
	// pair kernels gate dynamically per call instead, since delta eval
	// shrinks their live problem size between rebuilds.
	cut                           parallel.Cutoffs
	poolWL, poolRaster, poolPoint *parallel.Pool
	poolSolve                     *parallel.Pool

	// Delta evaluation (nil/disabled unless cfg.DeltaEval).
	memo          *evalMemo
	vlQ, vlS, vlC *verlet

	// Aggregating trace sub-spans of cfg.Span (all nil when untraced).
	spWL, spDen, spRaster, spField *obs.Span
	spFreq, spChain, spWall        *obs.Span
	spCombine, spReduce            *obs.Span
}

// incidenceCSR is a pair family inverted into compressed-sparse-row form:
// instance i's incident half-edges occupy entries start[i]..start[i+1], in
// ascending pair order (the serial visit order). Each entry stores the
// opposite instance and, when i is the pair's first endpoint, the pair index
// to write the scalar contribution to (-1 otherwise). The flat layout keeps
// the hot loop streaming instead of chasing [][2]int at random.
type incidenceCSR struct {
	start      []int32
	other      []int32
	contribIdx []int32
}

// buildIncidence inverts an edge list into CSR incidence.
func buildIncidence(n int, edges [][2]int) incidenceCSR {
	deg := make([]int32, n+1)
	for _, ed := range edges {
		deg[ed[0]+1]++
		deg[ed[1]+1]++
	}
	for i := 0; i < n; i++ {
		deg[i+1] += deg[i]
	}
	inc := incidenceCSR{
		start:      deg,
		other:      make([]int32, 2*len(edges)),
		contribIdx: make([]int32, 2*len(edges)),
	}
	fill := append([]int32(nil), deg[:n]...)
	for k, ed := range edges {
		a, b := ed[0], ed[1]
		inc.other[fill[a]] = int32(b)
		inc.contribIdx[fill[a]] = int32(k)
		fill[a]++
		inc.other[fill[b]] = int32(a)
		inc.contribIdx[fill[b]] = -1
		fill[b]++
	}
	return inc
}

// Place runs global placement on the netlist, mutating instance positions.
// The collision map may be nil for ModeClassic.
func Place(nl *component.Netlist, cm *frequency.CollisionMap, cfg Config) (*Result, error) {
	return PlaceCtx(context.Background(), nl, cm, cfg)
}

// PlaceCtx is Place with cancellation: the Nesterov loop checks ctx once per
// iteration and returns ctx.Err() as soon as it fires, leaving the netlist at
// the positions of the last completed iteration.
func PlaceCtx(ctx context.Context, nl *component.Netlist, cm *frequency.CollisionMap, cfg Config) (*Result, error) {
	start := time.Now()
	if cfg.TargetDensity <= 0 || cfg.TargetDensity > 1.2 {
		return nil, fmt.Errorf("place: target density %v out of range", cfg.TargetDensity)
	}
	if cfg.MaxIters <= 0 {
		return nil, fmt.Errorf("place: MaxIters must be positive")
	}
	if cfg.Mode == ModeQplacer && cm == nil {
		return nil, fmt.Errorf("place: Qplacer mode requires a collision map")
	}
	if len(nl.Instances) == 0 {
		return nil, fmt.Errorf("place: empty netlist")
	}

	e := newEngine(nl, cm, cfg)
	defer e.close()

	// Penalty control: instead of multiplying λ unboundedly (which lets the
	// density term outgrow the wirelength term by orders of magnitude and
	// collapses the stable step size), the engine re-normalizes each weight
	// every iteration against the live gradient norms,
	//
	//	λ = ratio_D · ‖∇WL‖₁ / ‖∇D‖₁,
	//
	// and escalates only the dimensionless ratio. This keeps the force
	// balance explicit: ratio 1 means density pressure equals wirelength
	// pull; the schedule walks it up to ratioCap.
	x0 := nl.Positions()
	e.evalComponents(x0)
	const (
		ratioD0    = 1.0
		ratioF0    = 0.5
		ratioCap   = 64.0
		ratioFQCap = 512.0 // qubit pairs: few, so high pressure is cheap
		ratioFSCap = 48.0  // segment pairs: many, keep stiffness moderate
	)
	ratioD, ratioFQ, ratioFS := ratioD0, ratioF0, ratioF0
	const ratioC = 16.0 // chain anti-stacking pressure
	// springPeak is the maximum force of the unit-weight polynomial spring
	// U = (R²−d²)²/R³, attained at d = R/√3: 8/(3√3) · 1/R.
	const springPeak = 1.5396
	renorm := func() {
		wlNorm := l1(e.gradWL) + 1e-12
		// Typical per-coordinate wirelength gradient: the force scale one
		// instance actually feels.
		gBar := wlNorm / float64(len(e.gradWL))
		if dNorm := l1(e.gradD); dNorm > 0 {
			e.lambda = ratioD * wlNorm / dNorm
		}
		// Pair weights are normalized per pair, not per aggregate: a spring
		// at weight λ exerts at most λ·springPeak/R, which is pinned to
		// ratio·ḡ. Feasible pairs separate decisively; infeasible pairs
		// (e.g. same-level tree siblings tied to one parent) lose boundedly
		// instead of jamming the whole system with runaway pressure.
		if cfg.Mode == ModeQplacer && cfg.FreqWeight > 0 {
			e.lambdaFQ = cfg.FreqWeight * ratioFQ * gBar * e.cfg.FreqCutoffMM / springPeak
			e.lambdaFS = cfg.FreqWeight * ratioFS * gBar * e.cfg.FreqCutoffSegMM / springPeak
		}
		e.lambdaC = ratioC * gBar * e.chainR0 / springPeak
		e.wall = math.Max(e.lambda, 1)
	}
	renorm()

	opt := optim.NewNesterov(x0, e.gradient, e.region.W()/100)
	opt.MaxStep = e.region.W() / 4 // a step never crosses a quarter-region

	iters := 0
	bestOverflow := math.Inf(1)
	sinceImprove := 0
	for it := 0; it < cfg.MaxIters; it++ {
		if err := ctx.Err(); err != nil {
			nl.SetPositions(opt.X())
			return nil, err
		}
		opt.Step()
		iters++
		if cfg.Trace != nil {
			wl, dE, _, _, _ := e.evalComponents(opt.X())
			cfg.Trace(TraceEvent{
				Iter:     it,
				Overflow: e.overflow,
				Lambda:   e.lambda, LambdaF: math.Max(e.lambdaFQ, e.lambdaFS),
				StepSize: opt.StepSize(),
				WLGradL1: l1(e.gradWL), DGradL1: l1(e.gradD),
				FGradL1:    l1(e.gradFQ) + l1(e.gradFS),
				HPWLSmooth: wl, Energy: dE,
			})
		}
		// Escalate the force ratios while the density constraint is
		// violated; renormalize weights against the current gradients. The
		// optimizer's cached gradient belongs to the old weights, so it is
		// invalidated after every update.
		if e.overflow > cfg.StopOverflow {
			if ratioD < ratioCap {
				ratioD *= cfg.LambdaGrowth
			}
		}
		// Frequency pressure keeps ramping even after density converges:
		// spatial isolation is the second phase of the anneal.
		if ratioFQ < ratioFQCap {
			ratioFQ *= cfg.FreqLambdaGrowth
		}
		if ratioFS < ratioFSCap {
			ratioFS *= cfg.FreqLambdaGrowth
		}
		e.evalComponents(opt.X())
		renorm()
		opt.InvalidateGradient()
		if cfg.Progress != nil {
			cfg.Progress(iters, e.overflow)
		}

		if e.overflow < bestOverflow*0.99 {
			bestOverflow = e.overflow
			sinceImprove = 0
		} else {
			sinceImprove++
		}
		if it >= cfg.MinIters &&
			(e.overflow < cfg.StopOverflow || sinceImprove > 150) {
			break
		}
	}

	final := append([]float64(nil), opt.X()...)
	e.clampInto(final)
	nl.SetPositions(final)
	cfg.Span.SetWorkers(e.pool.WorkerBusy())
	e.annotateSpan()

	elapsed := time.Since(start)
	return &Result{
		Mode:       cfg.Mode,
		Region:     e.region,
		Iterations: iters,
		HPWL:       HPWL(nl),
		Overflow:   e.overflow,
		Runtime:    elapsed,
		AvgIterMS:  float64(elapsed.Milliseconds()) / float64(iters),
	}, nil
}

// newEngine builds the per-run state: region and bins, seeded initial
// positions, gradient scratch, the pair structures, and (when cfg.Workers
// asks for it) the worker pool plus owner-computes incidence lists. Callers
// must release the pool with close.
func newEngine(nl *component.Netlist, cm *frequency.CollisionMap, cfg Config) *engine {
	e := &engine{cfg: cfg, nl: nl, cm: cm}
	e.setupRegion()
	e.setupBins()
	e.setupTrace()
	e.initialPositions()

	n := len(nl.Instances)
	e.gradWL = make([]float64, 2*n)
	e.gradD = make([]float64, 2*n)
	e.gradFQ = make([]float64, 2*n)
	e.gradFS = make([]float64, 2*n)
	e.gradWall = make([]float64, 2*n)
	e.gradC = make([]float64, 2*n)
	e.setupChainPairs()
	e.splitCollisionPairs()
	e.setupParallel()
	e.setupDelta()
	return e
}

// close releases the engine's worker pool (a no-op for serial runs).
func (e *engine) close() { e.pool.Close() }

// setupTrace caches the gradient sub-span pointers so the iteration loop
// never takes the span's child-lookup lock. With cfg.Span nil every pointer
// stays nil and each instrumented site costs one pointer test.
func (e *engine) setupTrace() {
	sp := e.cfg.Span
	e.spWL = sp.Child("wirelength")
	e.spDen = sp.Child("density")
	e.spRaster = e.spDen.Child("rasterize")
	e.solver.SetSpan(e.spDen.Child("poisson"))
	e.spField = e.spDen.Child("field")
	e.spFreq = sp.Child("frequency")
	e.spChain = sp.Child("chain")
	e.spWall = sp.Child("boundary")
	e.spCombine = sp.Child("combine")
	e.spReduce = sp.Child("reduce")
}

func (e *engine) setupRegion() {
	area := TotalChargeArea(e.nl) / e.cfg.TargetDensity
	side := math.Sqrt(area)
	e.region = geom.NewRect(0, 0, side, side)

	n := len(e.nl.Instances)
	e.chargeW = make([]float64, n)
	e.chargeH = make([]float64, n)
	for i, in := range e.nl.Instances {
		e.chargeW[i], e.chargeH[i] = chargeArea(in)
	}
}

func (e *engine) setupBins() {
	n := len(e.nl.Instances)
	bins := fft.NextPow2(int(math.Ceil(math.Sqrt(float64(n)) * 1.6)))
	if bins < 32 {
		bins = 32
	}
	if bins > 256 {
		bins = 256
	}
	hx := e.region.W() / float64(bins)
	hy := e.region.H() / float64(bins)
	e.solver = poisson.NewSolver(bins, bins, hx, hy)
	e.gamma = 2 * hx
	e.freqSmooth = 0.25
}

// initialPositions seeds qubits at their (scaled) canonical coordinates and
// strings each resonator's segments along the line between its endpoint
// qubits, with a small seeded jitter to break exact collinearity.
func (e *engine) initialPositions() {
	rng := rand.New(rand.NewSource(e.cfg.Seed))
	dev := e.nl.Device

	// Canonical coordinate bounding box.
	lo := dev.Coords[0]
	hi := dev.Coords[0]
	for _, p := range dev.Coords {
		lo.X = math.Min(lo.X, p.X)
		lo.Y = math.Min(lo.Y, p.Y)
		hi.X = math.Max(hi.X, p.X)
		hi.Y = math.Max(hi.Y, p.Y)
	}
	spanX := math.Max(hi.X-lo.X, 1e-9)
	spanY := math.Max(hi.Y-lo.Y, 1e-9)
	// Map into the central 60% of the region.
	inner := e.region.Inflate(-0.2 * e.region.W())
	mapPt := func(p geom.Point) geom.Point {
		return geom.Point{
			X: inner.Lo.X + (p.X-lo.X)/spanX*inner.W(),
			Y: inner.Lo.Y + (p.Y-lo.Y)/spanY*inner.H(),
		}
	}
	jitter := func(scale float64) float64 { return (rng.Float64() - 0.5) * scale }

	for q, instID := range e.nl.QubitInst {
		p := mapPt(dev.Coords[q])
		e.nl.Instances[instID].Pos = geom.Point{
			X: p.X + jitter(e.solver.HX),
			Y: p.Y + jitter(e.solver.HY),
		}
	}
	// Segments start in a band around their edge line: enough initial
	// entropy that the density field can ribbon each chain instead of
	// separating perfectly stacked blocks it cannot distinguish.
	segSpread := 3 * e.solver.HX
	for _, res := range e.nl.Resonators {
		pa := e.nl.Instances[e.nl.QubitInst[res.QubitA]].Pos
		pb := e.nl.Instances[e.nl.QubitInst[res.QubitB]].Pos
		k := len(res.Segments)
		for s, sid := range res.Segments {
			t := float64(s+1) / float64(k+1)
			e.nl.Instances[sid].Pos = geom.Point{
				X: pa.X + t*(pb.X-pa.X) + jitter(segSpread),
				Y: pa.Y + t*(pb.Y-pa.Y) + jitter(segSpread),
			}
		}
	}
}

// setupChainPairs precomputes the same-resonator segment pairs for the
// chain-spacing (anti-stacking) force. Eq. 10 exempts these pairs from the
// frequency force, but the blocks still reserve physically disjoint space —
// a short-range contact repulsion enforces that during global placement.
func (e *engine) setupChainPairs() {
	// Repulsion radius matches the segment's charge box (core + shared
	// padding), so a settled chain is charge-disjoint and contributes no
	// density overflow.
	e.chainR0 = (e.nl.Config.SegmentSize + e.nl.Config.ResonatorPad) * 1.05
	for _, res := range e.nl.Resonators {
		segs := res.Segments
		for i := 0; i < len(segs); i++ {
			for j := i + 1; j < len(segs); j++ {
				e.chainPairs = append(e.chainPairs, [2]int{segs[i], segs[j]})
			}
		}
	}
}

// setupParallel builds the worker pool and the owner-computes incidence
// structures when the config asks for more than one worker. The pool is
// closed by PlaceCtx when the run ends.
func (e *engine) setupParallel() {
	e.pool = parallel.New(e.cfg.Workers)
	if e.pool == nil {
		return
	}
	if e.cfg.Cutoffs != nil {
		e.cut = *e.cfg.Cutoffs
	} else {
		e.cut = parallel.AutoCutoffs()
	}
	n := len(e.nl.Instances)
	cells := e.solver.NX * e.solver.NY
	e.poolWL = parallel.Gate(e.pool, n, e.cut.WirelengthItems)
	e.poolRaster = parallel.Gate(e.pool, cells, e.cut.RasterCells)
	e.poolPoint = parallel.Gate(e.pool, n, e.cut.PointItems)
	e.poolSolve = parallel.Gate(e.pool, cells, e.cut.SolveCells)
	e.solver.Parallelize(e.poolSolve)
	e.instNets = incidence(n, e.nl.Nets)
	e.incQ = buildIncidence(n, e.qubitPairs)
	e.incS = buildIncidence(n, e.segPairs)
	e.incC = buildIncidence(n, e.chainPairs)
	e.netContrib = make([]float64, len(e.nl.Nets))
	maxPairs := len(e.qubitPairs)
	if len(e.segPairs) > maxPairs {
		maxPairs = len(e.segPairs)
	}
	if len(e.chainPairs) > maxPairs {
		maxPairs = len(e.chainPairs)
	}
	e.pairContrib = make([]float64, maxPairs)
	e.rasterLo = make([]int32, n)
	e.rasterHi = make([]int32, n)
}

// setupDelta builds the delta-evaluation state: the two-slot evaluation memo
// and one Verlet active list per pair family. The filtered owner-computes
// incidence buffers are only allocated when a pool exists to use them.
func (e *engine) setupDelta() {
	if !e.cfg.DeltaEval {
		return
	}
	n := len(e.nl.Instances)
	e.memo = &evalMemo{}
	withInc := e.pool != nil
	e.vlQ = newVerlet(n, e.qubitPairs, e.cfg.FreqCutoffMM, withInc)
	e.vlS = newVerlet(n, e.segPairs, e.cfg.FreqCutoffSegMM, withInc)
	e.vlC = newVerlet(n, e.chainPairs, e.chainR0, withInc)
}

// annotateSpan records the run's delta-eval and granularity outcomes on the
// trace span, making the optimization visible in the exported timings.
func (e *engine) annotateSpan() {
	sp := e.cfg.Span
	if sp == nil {
		return
	}
	if e.memo != nil {
		total := e.memo.hits + e.memo.misses
		sp.Note(fmt.Sprintf("delta-eval: %d/%d gradient evaluations replayed from memo", e.memo.hits, total))
	}
	for _, f := range []struct {
		name string
		vl   *verlet
	}{{"qubit", e.vlQ}, {"seg", e.vlS}, {"chain", e.vlC}} {
		if f.vl == nil || f.vl.evals == 0 {
			continue
		}
		sp.Note(fmt.Sprintf("verlet %s pairs: %d total, %d active on average, %d rebuilds over %d evaluations",
			f.name, len(f.vl.pairs), f.vl.activeSum/int64(f.vl.evals), f.vl.rebuilds, f.vl.evals))
	}
	if e.pool != nil {
		mode := func(p *parallel.Pool) string {
			if p == nil {
				return "serial"
			}
			return "parallel"
		}
		sp.Note(fmt.Sprintf("adaptive granularity: wirelength=%s raster=%s points=%s solve=%s",
			mode(e.poolWL), mode(e.poolRaster), mode(e.poolPoint), mode(e.poolSolve)))
	}
}

// incidence inverts an edge list into per-instance lists of incident edge
// indices, ascending — the order the serial scatter loops visit them in, so
// owner-computes accumulation reproduces the serial bits.
func incidence(n int, edges [][2]int) [][]int32 {
	deg := make([]int, n)
	for _, ed := range edges {
		deg[ed[0]]++
		deg[ed[1]]++
	}
	backing := make([]int32, 2*len(edges))
	out := make([][]int32, n)
	pos := 0
	for i := 0; i < n; i++ {
		out[i] = backing[pos : pos : pos+deg[i]]
		pos += deg[i]
	}
	for k, ed := range edges {
		out[ed[0]] = append(out[ed[0]], int32(k))
		out[ed[1]] = append(out[ed[1]], int32(k))
	}
	return out
}

// chainGrad evaluates the same polynomial contact repulsion over stacked
// same-resonator segment pairs (radius chainR0), keeping reserved wire-block
// space disjoint during global placement.
func (e *engine) chainGrad(xy []float64) float64 {
	chainTimer := e.spChain.Start()
	defer chainTimer.End()
	return e.pairForce(xy, e.chainPairs, e.incC, e.vlC, e.gradC, e.chainR0)
}

// pairForce evaluates one pair family into grad, selecting the evaluation
// strategy: the Verlet active list when delta eval is on, then the
// owner-computes fan-out when the live pair count clears the adaptive
// cutoff, and the serial scatter otherwise. Every combination produces the
// same bits (the active list is exact, and the owner-computes kernel
// reproduces the serial accumulation order).
func (e *engine) pairForce(xy []float64, pairs [][2]int, inc incidenceCSR, vl *verlet, grad []float64, rcut float64) float64 {
	items := len(pairs)
	var active []int32
	if vl != nil {
		vl.ensure(xy)
		active = vl.active
		items = len(active)
		inc = vl.inc
	}
	if p := parallel.Gate(e.pool, items, e.cut.PairItems); p != nil {
		return e.pairRepulsionOwner(p, xy, len(pairs), inc, active, grad, rcut)
	}
	for i := range grad {
		grad[i] = 0
	}
	if vl != nil {
		return pairRepulsionActive(xy, pairs, active, grad, rcut)
	}
	return pairRepulsion(xy, pairs, grad, rcut)
}

// evalComponents fills the component gradients for the positions xy and
// refreshes the density overflow. It returns the penalty values. With delta
// evaluation on, a bitwise repeat of a recently evaluated position vector is
// replayed from the memo instead of recomputed (the outputs depend only on
// xy — penalty weights enter later, in the combine — so the replay is exact).
func (e *engine) evalComponents(xy []float64) (wl, dEnergy, fq, fs, cPot float64) {
	if e.memo != nil {
		if wl, dEnergy, fq, fs, cPot, ok := e.memo.lookup(e, xy); ok {
			return wl, dEnergy, fq, fs, cPot
		}
	}
	wl = e.wirelengthGrad(xy)
	dEnergy = e.densityGrad(xy)
	fq, fs = e.frequencyGrad(xy)
	cPot = e.chainGrad(xy)
	e.wallGrad(xy)
	if e.memo != nil {
		e.memo.store(e, xy, wl, dEnergy, fq, fs, cPot)
	}
	return wl, dEnergy, fq, fs, cPot
}

// gradient is the optim.GradFunc: total objective and gradient. The
// per-coordinate combine is independent across indices, so it fans out.
func (e *engine) gradient(xy []float64, grad []float64) float64 {
	wl, dEnergy, fq, fs, cPot := e.evalComponents(xy)
	combineTimer := e.spCombine.Start()
	defer combineTimer.End()
	e.poolPoint.For(len(grad), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			grad[i] = e.gradWL[i] + e.lambda*e.gradD[i] +
				e.lambdaFQ*e.gradFQ[i] + e.lambdaFS*e.gradFS[i] +
				e.lambdaC*e.gradC[i] + e.wall*e.gradWall[i]
		}
	})
	return wl + e.lambda*dEnergy + e.lambdaFQ*fq + e.lambdaFS*fs + e.lambdaC*cPot
}

// segChainWeight down-weights nets between two segments of the same
// resonator: the chain must stay connected, but a full-strength pull
// collapses all wire blocks onto a point that the bin-resolution density
// field cannot then separate. The reduced weight lets density pressure
// ribbon the chain out while the anchor nets (qubit↔segment) keep it routed
// between its endpoints.
const segChainWeight = 0.25

func (e *engine) netWeight(a, b int) float64 {
	ia, ib := e.nl.Instances[a], e.nl.Instances[b]
	if ia.Kind == component.KindSegment && ib.Kind == component.KindSegment &&
		ia.Resonator == ib.Resonator {
		return segChainWeight
	}
	return 1
}

// wirelengthGrad computes the smoothed wirelength Σ w·√(Δ²+γ²) per axis
// over all 2-pin nets and its gradient.
func (e *engine) wirelengthGrad(xy []float64) float64 {
	wlTimer := e.spWL.Start()
	defer wlTimer.End()
	g2 := e.gamma * e.gamma
	if e.poolWL != nil {
		// Owner-computes fan-out: each worker folds its instances' incident
		// nets (ascending net index, the serial visit order) into their two
		// coordinates; per-net length terms land in netContrib (written by
		// the first endpoint's owner) and reduce in serial net order.
		e.poolWL.For(len(e.nl.Instances), func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				var gx, gy float64
				for _, k := range e.instNets[i] {
					net := e.nl.Nets[k]
					a, b := net[0], net[1]
					w := e.netWeight(a, b)
					dx := xy[2*a] - xy[2*b]
					dy := xy[2*a+1] - xy[2*b+1]
					sx := math.Sqrt(dx*dx + g2)
					sy := math.Sqrt(dy*dy + g2)
					if i == a {
						gx += w * dx / sx
						gy += w * dy / sy
						e.netContrib[k] = w * (sx + sy - 2*e.gamma)
					} else {
						gx -= w * dx / sx
						gy -= w * dy / sy
					}
				}
				e.gradWL[2*i] = gx
				e.gradWL[2*i+1] = gy
			}
		})
		reduceTimer := e.spReduce.Start()
		var total float64
		for _, c := range e.netContrib {
			total += c
		}
		reduceTimer.End()
		return total
	}
	for i := range e.gradWL {
		e.gradWL[i] = 0
	}
	var total float64
	for _, net := range e.nl.Nets {
		a, b := net[0], net[1]
		w := e.netWeight(a, b)
		dx := xy[2*a] - xy[2*b]
		dy := xy[2*a+1] - xy[2*b+1]
		sx := math.Sqrt(dx*dx + g2)
		sy := math.Sqrt(dy*dy + g2)
		total += w * (sx + sy - 2*e.gamma)
		e.gradWL[2*a] += w * dx / sx
		e.gradWL[2*b] -= w * dx / sx
		e.gradWL[2*a+1] += w * dy / sy
		e.gradWL[2*b+1] -= w * dy / sy
	}
	return total
}

// densityGrad rasterizes charges, solves the Poisson problem and sets the
// density gradient −q·E per instance. Returns the electrostatic energy.
func (e *engine) densityGrad(xy []float64) float64 {
	denTimer := e.spDen.Start()
	defer denTimer.End()
	s := e.solver
	binArea := s.HX * s.HY
	nx, ny := s.NX, s.NY
	rasterTimer := e.spRaster.Start()

	// Rasterization is partitioned by bin row: each worker zeroes and fills
	// the rows it owns, visiting instances in ascending index order (the
	// serial accumulation order per bin), with the instance's row span
	// clipped to the owned band. The serial path is the lo=0, hi=ny case.
	// When parallel, a per-instance prefilter pins each instance's clamped
	// row span first, so the per-band sweeps skip non-overlapping instances
	// with two int compares instead of redoing the bbox float math W times.
	if e.poolRaster != nil {
		e.poolRaster.For(len(e.nl.Instances), func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				cy := xy[2*i+1]
				sh := math.Max(e.chargeH[i], s.HY)
				y0 := cy - sh/2
				by0 := int(math.Floor(y0 / s.HY))
				by1 := int(math.Ceil((y0 + sh) / s.HY))
				if by0 < 0 {
					by0 = 0
				}
				if by1 > ny {
					by1 = ny
				}
				e.rasterLo[i] = int32(by0)
				e.rasterHi[i] = int32(by1)
			}
		})
	}
	e.poolRaster.For(ny, func(_, rowLo, rowHi int) {
		for i := rowLo * nx; i < rowHi*nx; i++ {
			s.Density[i] = 0
		}
		for i := range e.nl.Instances {
			if e.poolRaster != nil && (int(e.rasterLo[i]) >= rowHi || int(e.rasterHi[i]) <= rowLo) {
				continue
			}
			cx, cy := xy[2*i], xy[2*i+1]
			w, h := e.chargeW[i], e.chargeH[i]
			// Local smoothing: stretch tiny cells to at least one bin while
			// conserving charge.
			sw, sh := math.Max(w, s.HX), math.Max(h, s.HY)
			scale := (w * h) / (sw * sh)
			x0 := cx - sw/2
			y0 := cy - sh/2
			bx0 := int(math.Floor(x0 / s.HX))
			by0 := int(math.Floor(y0 / s.HY))
			bx1 := int(math.Ceil((x0 + sw) / s.HX))
			by1 := int(math.Ceil((y0 + sh) / s.HY))
			if by0 < rowLo {
				by0 = rowLo
			}
			if by1 > rowHi {
				by1 = rowHi
			}
			for by := by0; by < by1; by++ {
				yLo := math.Max(y0, float64(by)*s.HY)
				yHi := math.Min(y0+sh, float64(by+1)*s.HY)
				if yHi <= yLo {
					continue
				}
				for bx := bx0; bx < bx1; bx++ {
					if bx < 0 || bx >= nx {
						continue
					}
					xLo := math.Max(x0, float64(bx)*s.HX)
					xHi := math.Min(x0+sw, float64(bx+1)*s.HX)
					if xHi <= xLo {
						continue
					}
					s.Density[by*nx+bx] += (xHi - xLo) * (yHi - yLo) * scale / binArea
				}
			}
		}
	})

	// Overflow measures physical overlap: charge density above 1.0 means
	// instances stacked on top of each other (a cell body alone rasterizes
	// to exactly 1.0, so a spread-out layout approaches zero overflow up to
	// bin-boundary smear).
	var over, totalCharge float64
	for _, d := range s.Density {
		totalCharge += d * binArea
		if d > 1 {
			over += (d - 1) * binArea
		}
	}
	if totalCharge > 0 {
		e.overflow = over / totalCharge
	}
	rasterTimer.End()

	s.Solve()
	// Field sampling writes each instance's own two coordinates from the
	// read-only solved fields — embarrassingly parallel.
	fieldTimer := e.spField.Start()
	e.poolPoint.For(len(e.nl.Instances), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			q := e.chargeW[i] * e.chargeH[i]
			cx, cy := xy[2*i], xy[2*i+1]
			e.gradD[2*i] = -q * s.At(s.Ex, cx, cy)
			e.gradD[2*i+1] = -q * s.At(s.Ey, cx, cy)
		}
	})
	fieldTimer.End()
	return s.Energy()
}

// splitCollisionPairs partitions the collision map by kind: qubit-qubit
// pairs and segment-segment pairs get independently normalized repulsion
// weights, so the handful of resonant qubit pairs is never drowned out by
// the thousands of segment pairs.
func (e *engine) splitCollisionPairs() {
	if e.cm == nil {
		return
	}
	for _, p := range e.cm.Pairs {
		if e.nl.Instances[p[0]].Kind == component.KindQubit {
			e.qubitPairs = append(e.qubitPairs, p)
		} else {
			e.segPairs = append(e.segPairs, p)
		}
	}
}

// pairRepulsion accumulates a finite-range repulsive potential
//
//	U(d) = (R² − d²)² / R³   for d < R,   0 otherwise,
//
// and its gradient over the given pairs. This realizes the frequency
// repulsive force of Eq. 9 — active only inside the interaction radius and
// pushing monotonically harder as near-resonant instances approach — with
// two numerical properties the literal 1/d² profile lacks: the force is a
// polynomial in the raw coordinate differences (no d→0 direction
// singularity) and its stiffness is bounded by ~4/R everywhere, so stacked
// pairs cannot collapse the optimizer's stable step size and freeze the
// layout (see DESIGN.md, "Frequency force").
func pairRepulsion(xy []float64, pairs [][2]int, grad []float64, rcut float64) float64 {
	var total float64
	r2 := rcut * rcut
	r3 := r2 * rcut
	for _, p := range pairs {
		i, j := p[0], p[1]
		dx := xy[2*i] - xy[2*j]
		dy := xy[2*i+1] - xy[2*j+1]
		d2 := dx*dx + dy*dy
		if d2 >= r2 {
			continue
		}
		gap := r2 - d2
		total += gap * gap / r3
		// ∂U/∂xi = −4·(R²−d²)·dx / R³.
		scale := 4 * gap / r3
		grad[2*i] -= scale * dx
		grad[2*i+1] -= scale * dy
		grad[2*j] += scale * dx
		grad[2*j+1] += scale * dy
	}
	return total
}

// pairRepulsionOwner is pairRepulsion fanned out over the pool with
// owner-computes accumulation: each worker owns a contiguous instance range
// and folds that range's incident pairs (ascending pair index — the serial
// visit order) into its own gradient entries, so no two workers touch one
// coordinate and the sums keep their serial bits. The loop is role-free:
// with Δ measured from the owner (dx = x_i − x_j), IEEE negation symmetry
// (fl(−t) = −fl(t) for subtraction and multiplication, g + (−u) ≡ g − u)
// makes "gx −= scale·dx" reproduce the serial bits for both pair endpoints.
// Per-pair potential terms land in e.pairContrib (written by the owner of
// the pair's first instance, contribIdx >= 0) and reduce to the total in
// serial pair order; out-of-range pairs record an exact 0, which leaves the
// running float sum untouched. With a Verlet active list, inc is the
// filtered incidence and active lists the live pair indices to reduce over
// (skipped pairs would contribute exactly 0); active == nil reduces over
// every pair.
func (e *engine) pairRepulsionOwner(p *parallel.Pool, xy []float64, numPairs int, inc incidenceCSR, active []int32, grad []float64, rcut float64) float64 {
	r2 := rcut * rcut
	r3 := r2 * rcut
	contrib := e.pairContrib[:numPairs]
	p.For(len(grad)/2, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			var gx, gy float64
			xi, yi := xy[2*i], xy[2*i+1]
			for m := inc.start[i]; m < inc.start[i+1]; m++ {
				j := int(inc.other[m])
				dx := xi - xy[2*j]
				dy := yi - xy[2*j+1]
				d2 := dx*dx + dy*dy
				if d2 >= r2 {
					if k := inc.contribIdx[m]; k >= 0 {
						contrib[k] = 0
					}
					continue
				}
				gap := r2 - d2
				scale := 4 * gap / r3
				gx -= scale * dx
				gy -= scale * dy
				if k := inc.contribIdx[m]; k >= 0 {
					contrib[k] = gap * gap / r3
				}
			}
			grad[2*i] = gx
			grad[2*i+1] = gy
		}
	})
	reduceTimer := e.spReduce.Start()
	var total float64
	if active != nil {
		for _, k := range active {
			total += contrib[k]
		}
	} else {
		for _, c := range contrib {
			total += c
		}
	}
	reduceTimer.End()
	return total
}

// frequencyGrad evaluates the frequency repulsive potential of Eqs. 9-10,
// split into qubit and segment components.
func (e *engine) frequencyGrad(xy []float64) (fq, fs float64) {
	freqTimer := e.spFreq.Start()
	defer freqTimer.End()
	if e.cm == nil || e.cfg.Mode == ModeClassic {
		for i := range e.gradFQ {
			e.gradFQ[i] = 0
			e.gradFS[i] = 0
		}
		return 0, 0
	}
	fq = e.pairForce(xy, e.qubitPairs, e.incQ, e.vlQ, e.gradFQ, e.cfg.FreqCutoffMM)
	fs = e.pairForce(xy, e.segPairs, e.incS, e.vlS, e.gradFS, e.cfg.FreqCutoffSegMM)
	return fq, fs
}

// wallGrad adds a quadratic boundary spring pulling instances back into the
// region (smooth substitute for hard clamping during optimization). Each
// instance owns its two coordinates, so the fan-out preserves bits.
func (e *engine) wallGrad(xy []float64) {
	wallTimer := e.spWall.Start()
	defer wallTimer.End()
	r := e.region
	e.poolPoint.For(len(e.nl.Instances), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			e.gradWall[2*i] = 0
			e.gradWall[2*i+1] = 0
			hw := e.chargeW[i] / 2
			hh := e.chargeH[i] / 2
			x, y := xy[2*i], xy[2*i+1]
			if v := x - hw - r.Lo.X; v < 0 {
				e.gradWall[2*i] += 2 * v
			}
			if v := x + hw - r.Hi.X; v > 0 {
				e.gradWall[2*i] += 2 * v
			}
			if v := y - hh - r.Lo.Y; v < 0 {
				e.gradWall[2*i+1] += 2 * v
			}
			if v := y + hh - r.Hi.Y; v > 0 {
				e.gradWall[2*i+1] += 2 * v
			}
		}
	})
}

func (e *engine) clampInto(xy []float64) {
	r := e.region
	for i := range e.nl.Instances {
		hw := e.chargeW[i] / 2
		hh := e.chargeH[i] / 2
		xy[2*i] = math.Min(math.Max(xy[2*i], r.Lo.X+hw), r.Hi.X-hw)
		xy[2*i+1] = math.Min(math.Max(xy[2*i+1], r.Lo.Y+hh), r.Hi.Y-hh)
	}
}

// l1 returns the L1 norm of v.
func l1(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += math.Abs(x)
	}
	return s
}

// HPWL returns the true half-perimeter wirelength Σ |Δx|+|Δy| over nets.
func HPWL(nl *component.Netlist) float64 {
	var total float64
	for _, net := range nl.Nets {
		a := nl.Instances[net[0]].Pos
		b := nl.Instances[net[1]].Pos
		total += math.Abs(a.X-b.X) + math.Abs(a.Y-b.Y)
	}
	return total
}
