package place

import "math"

// This file implements the incremental (delta) gradient evaluation enabled
// by Config.DeltaEval. Two independent mechanisms reuse work across Nesterov
// iterations, both exact by construction so placements stay bit-identical to
// a full recompute:
//
//   - evalMemo caches the two most recent full component evaluations keyed
//     by the exact bit pattern of the position vector. The Nesterov flow
//     re-evaluates the accepted lookahead point at the start of the next
//     step (the placer invalidates the optimizer's cached gradient after
//     re-weighting), so in steady state about one evaluation in three is a
//     verbatim repeat. Component gradients depend only on positions — the
//     penalty weights are applied later in the combine — so a bitwise-equal
//     input implies bitwise-equal outputs and the memo can replay them.
//
//   - verlet maintains, per pair family, the classic Verlet active list: the
//     pairs within reach = rcut + margin of each other at the last rebuild.
//     While no instance has moved more than margin/2 since then, every
//     excluded pair provably still satisfies d > rcut and contributes
//     exactly nothing (the serial kernel's early-out), so evaluating only
//     the active pairs — in ascending pair order, the serial visit order —
//     reproduces the full scan bit for bit. The displacement check is the
//     exact-recompute guard: the moment it fails, the list is rebuilt from
//     the current positions.

// evalSlot is one cached evaluation: the input positions and every output
// evalComponents produces (component gradients, penalty values, overflow).
type evalSlot struct {
	used  bool
	stamp int64

	xy                                             []float64
	gradWL, gradD, gradFQ, gradFS, gradWall, gradC []float64
	wl, dEnergy, fq, fs, cPot, overflow            float64
}

// evalMemo is a two-slot LRU of component evaluations. Two slots cover the
// optimizer's repeat pattern (the accepted lookahead point and the major
// point alternate); a deeper cache would only hold stale vectors.
type evalMemo struct {
	slots        [2]evalSlot
	clock        int64
	hits, misses int
}

// bitsEqual reports whether two vectors are identical down to the bit
// (Float64bits, not ==: a +0/−0 flip changes downstream bits, and NaN must
// never compare equal to itself here either way).
func bitsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// lookup replays a cached evaluation for xy into the engine's gradient
// scratch, if one exists.
func (m *evalMemo) lookup(e *engine, xy []float64) (wl, dEnergy, fq, fs, cPot float64, ok bool) {
	for s := range m.slots {
		sl := &m.slots[s]
		if !sl.used || !bitsEqual(sl.xy, xy) {
			continue
		}
		m.clock++
		sl.stamp = m.clock
		m.hits++
		copy(e.gradWL, sl.gradWL)
		copy(e.gradD, sl.gradD)
		copy(e.gradFQ, sl.gradFQ)
		copy(e.gradFS, sl.gradFS)
		copy(e.gradWall, sl.gradWall)
		copy(e.gradC, sl.gradC)
		e.overflow = sl.overflow
		return sl.wl, sl.dEnergy, sl.fq, sl.fs, sl.cPot, true
	}
	m.misses++
	return 0, 0, 0, 0, 0, false
}

// store captures the evaluation just computed for xy, evicting the
// least-recently-used slot.
func (m *evalMemo) store(e *engine, xy []float64, wl, dEnergy, fq, fs, cPot float64) {
	sl := &m.slots[0]
	if m.slots[0].used && (!m.slots[1].used || m.slots[1].stamp < m.slots[0].stamp) {
		sl = &m.slots[1]
	}
	m.clock++
	sl.used = true
	sl.stamp = m.clock
	sl.xy = append(sl.xy[:0], xy...)
	sl.gradWL = append(sl.gradWL[:0], e.gradWL...)
	sl.gradD = append(sl.gradD[:0], e.gradD...)
	sl.gradFQ = append(sl.gradFQ[:0], e.gradFQ...)
	sl.gradFS = append(sl.gradFS[:0], e.gradFS...)
	sl.gradWall = append(sl.gradWall[:0], e.gradWall...)
	sl.gradC = append(sl.gradC[:0], e.gradC...)
	sl.wl, sl.dEnergy, sl.fq, sl.fs, sl.cPot = wl, dEnergy, fq, fs, cPot
	sl.overflow = e.overflow
}

// verlet is one pair family's active-list state.
type verlet struct {
	pairs  [][2]int
	rcut   float64
	margin float64
	n      int

	refXY  []float64 // positions at the last rebuild
	active []int32   // ascending pair indices within rcut+margin at rebuild

	// Filtered owner-computes incidence over the active pairs, allocated
	// only when the engine owns a worker pool. Rebuilt alongside active into
	// these fixed full-capacity buffers.
	inc    incidenceCSR
	fill   []int32
	hasInc bool

	evals, rebuilds int
	activeSum       int64
}

// newVerlet returns the active-list state for one family, or nil when the
// family is empty (no list to maintain, and the caller's full-scan path is
// already free).
func newVerlet(n int, pairs [][2]int, rcut float64, withInc bool) *verlet {
	if len(pairs) == 0 {
		return nil
	}
	v := &verlet{
		pairs:  pairs,
		rcut:   rcut,
		margin: rcut / 2,
		n:      n,
		active: make([]int32, 0, len(pairs)),
	}
	if withInc {
		v.inc = incidenceCSR{
			start:      make([]int32, n+1),
			other:      make([]int32, 2*len(pairs)),
			contribIdx: make([]int32, 2*len(pairs)),
		}
		v.fill = make([]int32, n)
		v.hasInc = true
	}
	return v
}

// ensure refreshes the active list when positions have drifted past the
// guard. While 2·maxDisp < margin, a pair excluded at rebuild (distance
// ≥ rcut + margin then) still has distance > rcut now, so the active list
// remains exact.
func (v *verlet) ensure(xy []float64) {
	v.evals++
	if v.refXY == nil {
		v.refXY = make([]float64, len(xy))
		v.rebuild(xy)
	} else {
		var maxD2 float64
		for i := 0; i < len(xy); i += 2 {
			dx := xy[i] - v.refXY[i]
			dy := xy[i+1] - v.refXY[i+1]
			if d2 := dx*dx + dy*dy; d2 > maxD2 {
				maxD2 = d2
			}
		}
		if 4*maxD2 >= v.margin*v.margin {
			v.rebuild(xy)
		}
	}
	v.activeSum += int64(len(v.active))
}

func (v *verlet) rebuild(xy []float64) {
	v.rebuilds++
	copy(v.refXY, xy)
	reach := v.rcut + v.margin
	r2 := reach * reach
	v.active = v.active[:0]
	for k, p := range v.pairs {
		dx := xy[2*p[0]] - xy[2*p[1]]
		dy := xy[2*p[0]+1] - xy[2*p[1]+1]
		if dx*dx+dy*dy < r2 {
			v.active = append(v.active, int32(k))
		}
	}
	if v.hasInc {
		v.rebuildInc()
	}
}

// rebuildInc refilters the CSR incidence to the active pairs. Iterating the
// active list in ascending pair order keeps each instance's half-edges in
// the serial visit order, which the owner-computes kernel's bit-identity
// argument requires.
func (v *verlet) rebuildInc() {
	start := v.inc.start
	for i := range start {
		start[i] = 0
	}
	for _, k := range v.active {
		p := v.pairs[k]
		start[p[0]+1]++
		start[p[1]+1]++
	}
	for i := 0; i < v.n; i++ {
		start[i+1] += start[i]
	}
	copy(v.fill, start[:v.n])
	for _, k := range v.active {
		p := v.pairs[k]
		a, b := p[0], p[1]
		v.inc.other[v.fill[a]] = int32(b)
		v.inc.contribIdx[v.fill[a]] = k
		v.fill[a]++
		v.inc.other[v.fill[b]] = int32(a)
		v.inc.contribIdx[v.fill[b]] = -1
		v.fill[b]++
	}
}

// pairRepulsionActive is the serial pair kernel restricted to an active
// list: identical arithmetic to pairRepulsion, visiting only the listed
// pairs in ascending order. Skipped pairs would contribute exactly nothing
// (they are beyond rcut by the verlet guarantee), so the scatter and the
// running potential sum keep their full-scan bits.
func pairRepulsionActive(xy []float64, pairs [][2]int, active []int32, grad []float64, rcut float64) float64 {
	var total float64
	r2 := rcut * rcut
	r3 := r2 * rcut
	for _, k := range active {
		p := pairs[k]
		i, j := p[0], p[1]
		dx := xy[2*i] - xy[2*j]
		dy := xy[2*i+1] - xy[2*j+1]
		d2 := dx*dx + dy*dy
		if d2 >= r2 {
			continue
		}
		gap := r2 - d2
		total += gap * gap / r3
		scale := 4 * gap / r3
		grad[2*i] -= scale * dx
		grad[2*i+1] -= scale * dy
		grad[2*j] += scale * dx
		grad[2*j+1] += scale * dy
	}
	return total
}
