package place

import (
	"context"
	"errors"
	"testing"
	"time"

	"qplacer/internal/topology"
)

func TestPlaceCtxCancelledBeforeStart(t *testing.T) {
	nl, cm := buildProblem(t, topology.Grid25())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := PlaceCtx(ctx, nl, cm, fastConfig(ModeQplacer))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestPlaceCtxCancelMidRun(t *testing.T) {
	nl, cm := buildProblem(t, topology.Grid25())
	ctx, cancel := context.WithCancel(context.Background())
	cfg := fastConfig(ModeQplacer)
	// Cancel from the trace hook a few iterations in: the loop must stop at
	// the very next iteration boundary.
	lastIter := -1
	cfg.Trace = func(ev TraceEvent) {
		lastIter = ev.Iter
		if ev.Iter == 3 {
			cancel()
		}
	}
	start := time.Now()
	_, err := PlaceCtx(ctx, nl, cm, cfg)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if lastIter != 3 {
		t.Fatalf("ran to iteration %d after cancelling at 3", lastIter)
	}
	// Sanity: nowhere near the full 300-iteration budget.
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("cancelled run still took %v", elapsed)
	}
}

func TestPlaceCtxDeadline(t *testing.T) {
	nl, cm := buildProblem(t, topology.Eagle127())
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err := PlaceCtx(ctx, nl, cm, DefaultConfig())
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}
