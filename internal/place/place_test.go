package place

import (
	"math"
	"testing"

	"qplacer/internal/component"
	"qplacer/internal/frequency"
	"qplacer/internal/geom"
	"qplacer/internal/physics"
	"qplacer/internal/topology"
)

func buildProblem(t *testing.T, dev *topology.Device) (*component.Netlist, *frequency.CollisionMap) {
	t.Helper()
	a := frequency.Assign(dev, physics.DetuneThresholdGHz)
	nl, err := component.Build(dev, a.QubitFreq, a.ResFreq, component.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cm := frequency.BuildCollisionMap(nl, physics.DetuneThresholdGHz)
	return nl, cm
}

func fastConfig(mode Mode) Config {
	cfg := DefaultConfig()
	cfg.Mode = mode
	// Long enough for the frequency-pressure ramp (caps near iteration
	// ~90 at the default growth rate) to act after density spreads.
	cfg.MaxIters = 300
	cfg.MinIters = 200
	return cfg
}

func TestPlaceGridConverges(t *testing.T) {
	nl, cm := buildProblem(t, topology.Grid25())
	res, err := Place(nl, cm, fastConfig(ModeQplacer))
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations == 0 || res.HPWL <= 0 {
		t.Fatalf("degenerate result %+v", res)
	}
	// Overflow must have come down to a spread-out state.
	if res.Overflow > 0.35 {
		t.Fatalf("overflow %v too high — density force not working", res.Overflow)
	}
	// All instances inside the region.
	for _, in := range nl.Instances {
		if !res.Region.Contains(in.Pos) {
			t.Fatalf("instance %d at %v escaped region %v", in.ID, in.Pos, res.Region)
		}
	}
}

func TestFrequencyForceSeparatesResonantPairs(t *testing.T) {
	// The headline property: with the frequency force on, near-resonant
	// pairs end up significantly farther apart than under Classic with
	// identical hyperparameters.
	devs := []*topology.Device{topology.Grid25(), topology.Falcon27()}
	for _, dev := range devs {
		nlQ, cm := buildProblem(t, dev)
		nlC := nlQ.Clone()
		if _, err := Place(nlQ, cm, fastConfig(ModeQplacer)); err != nil {
			t.Fatal(err)
		}
		if _, err := Place(nlC, nil, fastConfig(ModeClassic)); err != nil {
			t.Fatal(err)
		}
		minResDist := func(nl *component.Netlist) float64 {
			min := math.Inf(1)
			for _, p := range cm.Pairs {
				a, b := nl.Instances[p[0]], nl.Instances[p[1]]
				if a.Kind != component.KindQubit {
					continue // qubit pairs are the strongest signal
				}
				if d := a.Pos.Dist(b.Pos); d < min {
					min = d
				}
			}
			return min
		}
		dQ := minResDist(nlQ)
		dC := minResDist(nlC)
		if dQ <= dC {
			t.Errorf("%s: Qplacer min resonant-qubit distance %.3f ≤ Classic %.3f",
				dev.Name, dQ, dC)
		}
	}
}

func TestClassicIgnoresCollisionMap(t *testing.T) {
	nl, cm := buildProblem(t, topology.Grid25())
	nl2 := nl.Clone()
	cfg := fastConfig(ModeClassic)
	if _, err := Place(nl, cm, cfg); err != nil {
		t.Fatal(err)
	}
	if _, err := Place(nl2, nil, cfg); err != nil {
		t.Fatal(err)
	}
	for i := range nl.Instances {
		if nl.Instances[i].Pos != nl2.Instances[i].Pos {
			t.Fatal("classic placement must not depend on the collision map")
		}
	}
}

func TestPlaceIsDeterministic(t *testing.T) {
	nlA, cmA := buildProblem(t, topology.Grid25())
	nlB, cmB := buildProblem(t, topology.Grid25())
	cfg := fastConfig(ModeQplacer)
	if _, err := Place(nlA, cmA, cfg); err != nil {
		t.Fatal(err)
	}
	if _, err := Place(nlB, cmB, cfg); err != nil {
		t.Fatal(err)
	}
	for i := range nlA.Instances {
		if nlA.Instances[i].Pos != nlB.Instances[i].Pos {
			t.Fatalf("instance %d differs across identical runs", i)
		}
	}
}

func TestPlaceValidation(t *testing.T) {
	nl, cm := buildProblem(t, topology.Grid25())
	bad := DefaultConfig()
	bad.TargetDensity = 0
	if _, err := Place(nl, cm, bad); err == nil {
		t.Error("zero target density must fail")
	}
	bad = DefaultConfig()
	bad.MaxIters = 0
	if _, err := Place(nl, cm, bad); err == nil {
		t.Error("zero MaxIters must fail")
	}
	if _, err := Place(nl, nil, DefaultConfig()); err == nil {
		t.Error("Qplacer mode without a collision map must fail")
	}
}

func TestHPWLAgainstManual(t *testing.T) {
	nl, _ := buildProblem(t, topology.Grid25())
	for i, in := range nl.Instances {
		in.Pos = geom.Point{X: float64(i), Y: 0}
	}
	var want float64
	for _, n := range nl.Nets {
		want += math.Abs(float64(n[0]) - float64(n[1]))
	}
	if got := HPWL(nl); math.Abs(got-want) > 1e-9 {
		t.Fatalf("HPWL = %v, want %v", got, want)
	}
}

func TestChargeAreaModel(t *testing.T) {
	q := &component.Instance{Kind: component.KindQubit, W: 0.4, H: 0.4, Pad: 0.4}
	w, h := chargeArea(q)
	if math.Abs(w-1.2) > 1e-12 || math.Abs(h-1.2) > 1e-12 {
		t.Fatalf("qubit charge dims %v×%v, want 1.2×1.2", w, h)
	}
	s := &component.Instance{Kind: component.KindSegment, W: 0.3, H: 0.3, Pad: 0.1}
	w, h = chargeArea(s)
	if math.Abs(w-0.4) > 1e-12 || math.Abs(h-0.4) > 1e-12 {
		t.Fatalf("segment charge dims %v×%v, want 0.4×0.4 (half padded)", w, h)
	}
}

func TestRegionScalesWithDevice(t *testing.T) {
	small, cmS := buildProblem(t, topology.Grid25())
	large, cmL := buildProblem(t, topology.AspenM())
	cfg := fastConfig(ModeQplacer)
	cfg.MaxIters = 40
	cfg.MinIters = 10
	rS, err := Place(small, cmS, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rL, err := Place(large, cmL, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rL.Region.Area() <= rS.Region.Area() {
		t.Fatal("larger device must get a larger region")
	}
}

func TestPlaceHumanGeometry(t *testing.T) {
	nl, _ := buildProblem(t, topology.Grid25())
	res := PlaceHuman(nl)
	// Pitch = padded qubit + L·d_r/(L_q+2d_q); with L ≈ 10.2 mm this is
	// ≈ 1.2 + 0.85 ≈ 2.05 mm.
	if res.PitchX < 1.9 || res.PitchX > 2.2 {
		t.Fatalf("human pitch = %v, want ≈2.0 mm", res.PitchX)
	}
	// Grid qubits at unit coords: neighbours exactly one pitch apart.
	q0 := nl.Instances[nl.QubitInst[0]].Pos
	q1 := nl.Instances[nl.QubitInst[1]].Pos
	if math.Abs(q1.Dist(q0)-res.PitchX) > 1e-9 {
		t.Fatalf("neighbour distance %v != pitch %v", q1.Dist(q0), res.PitchX)
	}
	// No two padded qubits overlap.
	for i := 0; i < len(nl.QubitInst); i++ {
		for j := i + 1; j < len(nl.QubitInst); j++ {
			a := nl.Instances[nl.QubitInst[i]].PaddedRect()
			b := nl.Instances[nl.QubitInst[j]].PaddedRect()
			if a.Overlaps(b) {
				t.Fatalf("human layout: padded qubits %d and %d overlap", i, j)
			}
		}
	}
	if res.Region.Area() <= 0 {
		t.Fatal("degenerate human region")
	}
	if math.Abs(HumanPitch(nl)-res.PitchX) > 1e-12 {
		t.Fatal("HumanPitch disagrees with PlaceHuman")
	}
}

func TestHumanLargerThanPlacedRegion(t *testing.T) {
	// The human layout must need substantially more area than the
	// electrostatic placement region (Fig. 13: ≈2× on average).
	nl, cm := buildProblem(t, topology.Falcon27())
	nlH := nl.Clone()
	pres, err := Place(nl, cm, fastConfig(ModeQplacer))
	if err != nil {
		t.Fatal(err)
	}
	hres := PlaceHuman(nlH)
	ratio := hres.Region.Area() / pres.Region.Area()
	if ratio < 1.2 {
		t.Fatalf("human/qplacer area ratio = %.2f, want > 1.2", ratio)
	}
}

func TestTotalChargeArea(t *testing.T) {
	nl, _ := buildProblem(t, topology.Grid25())
	got := TotalChargeArea(nl)
	var want float64
	for _, in := range nl.Instances {
		w, h := chargeArea(in)
		want += w * h
	}
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("TotalChargeArea = %v, want %v", got, want)
	}
	if got <= 0 {
		t.Fatal("charge area must be positive")
	}
}
