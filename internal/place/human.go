package place

import (
	"qplacer/internal/component"
	"qplacer/internal/geom"
)

// HumanResult describes the manual baseline layout.
type HumanResult struct {
	Region geom.Rect // bounding region of the layout
	PitchX float64   // qubit grid pitch (mm)
}

// PlaceHuman builds the manually optimized, crosstalk-free baseline of
// §V-B: qubits sit on their canonical 2-D grid coordinates at a pitch that
// reserves a full resonator channel between neighbours,
//
//	D = L·d_r / (L_q + 2·d_q),   pitch = (L_q + 2·d_q) + D,
//
// and each resonator's segments are strung tightly along the channel between
// its endpoint qubits. The layout is crosstalk-free by construction (every
// pair of distinct components keeps its padding) at the cost of a much
// larger substrate (Fig. 13).
func PlaceHuman(nl *component.Netlist) *HumanResult {
	cfg := nl.Config
	dev := nl.Device

	// Mean resonator length sets the channel width.
	var meanL float64
	for _, r := range nl.Resonators {
		meanL += r.LengthMM
	}
	if len(nl.Resonators) > 0 {
		meanL /= float64(len(nl.Resonators))
	}
	paddedQubit := cfg.QubitSize + 2*cfg.QubitPad
	channel := meanL * cfg.ResonatorPad / paddedQubit // D of §V-B
	pitch := paddedQubit + channel

	// Canonical coordinates are laid out at unit pitch; scale them.
	for q, instID := range nl.QubitInst {
		c := dev.Coords[q]
		nl.Instances[instID].Pos = geom.Point{X: c.X * pitch, Y: c.Y * pitch}
	}

	// Segments: pack each resonator's chain along the middle of its channel
	// (between the padded qubit boundaries), tightly spaced. Same-resonator
	// overlap is physically meaningless (it is one meandered wire) and is
	// excluded from every crosstalk metric.
	for _, res := range nl.Resonators {
		pa := nl.Instances[nl.QubitInst[res.QubitA]].Pos
		pb := nl.Instances[nl.QubitInst[res.QubitB]].Pos
		dir := pb.Sub(pa)
		dist := dir.Norm()
		if dist == 0 {
			dist = 1e-9
		}
		unit := dir.Scale(1 / dist)
		// Usable span: from the edge of qubit A's padded cell to qubit B's.
		startOff := paddedQubit/2 + cfg.ResonatorPad
		span := dist - 2*startOff
		if span < cfg.SegmentSize {
			span = cfg.SegmentSize
		}
		k := len(res.Segments)
		for s, sid := range res.Segments {
			var t float64
			if k > 1 {
				t = float64(s) / float64(k-1)
			} else {
				t = 0.5
			}
			off := startOff + t*span
			if off > dist-startOff {
				off = dist - startOff
			}
			nl.Instances[sid].Pos = pa.Add(unit.Scale(off))
		}
	}

	rects := nl.PaddedRects()
	region, _ := geom.EnclosingRect(rects)
	return &HumanResult{Region: region, PitchX: pitch}
}

// HumanPitch returns the §V-B pitch for a netlist without building the
// layout (used by area studies).
func HumanPitch(nl *component.Netlist) float64 {
	var meanL float64
	for _, r := range nl.Resonators {
		meanL += r.LengthMM
	}
	if len(nl.Resonators) > 0 {
		meanL /= float64(len(nl.Resonators))
	}
	paddedQubit := nl.Config.QubitSize + 2*nl.Config.QubitPad
	return paddedQubit + meanL*nl.Config.ResonatorPad/paddedQubit
}
