package place

import (
	"testing"

	"qplacer/internal/parallel"
)

// runPlacement places one topology and returns the final positions.
func runPlacement(t *testing.T, topo string, mutate func(*Config)) []float64 {
	t.Helper()
	nl, cm := placeProblem(t, topo)
	cfg := DefaultConfig()
	cfg.MaxIters = 30
	cfg.MinIters = 30
	if mutate != nil {
		mutate(&cfg)
	}
	if _, err := Place(nl, cm, cfg); err != nil {
		t.Fatal(err)
	}
	return nl.Positions()
}

func requireBitIdentical(t *testing.T, label string, got, want []float64) {
	t.Helper()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: pos[%d] = %v, want %v (bitwise)", label, i, got[i], want[i])
		}
	}
}

// TestDeltaEvalExact is the delta-gradient exactness contract: with
// DeltaEval on — memoized evaluations plus Verlet pair lists — placements
// are bit-identical to the full recompute, serially and in parallel.
func TestDeltaEvalExact(t *testing.T) {
	topos := []string{"grid", "falcon", "eagle"}
	if testing.Short() {
		topos = topos[:2] // eagle is ~1s per placement; skip it under -short/-race
	}
	for _, topo := range topos {
		want := runPlacement(t, topo, nil)
		for _, workers := range []int{1, 3} {
			got := runPlacement(t, topo, func(cfg *Config) {
				cfg.DeltaEval = true
				cfg.Workers = workers
			})
			requireBitIdentical(t, topo+"/delta", got, want)
		}
	}
}

// TestDeltaEvalActuallyShortCircuits guards against the delta path silently
// degrading to full recompute: repeated evaluations at the same positions
// must be served from the memo, small drifts must not rebuild the Verlet
// lists, and large drifts must.
func TestDeltaEvalActuallyShortCircuits(t *testing.T) {
	nl, cm := placeProblem(t, "falcon")
	cfg := DefaultConfig()
	cfg.DeltaEval = true
	e := newEngine(nl, cm, cfg)
	defer e.close()

	x := nl.Positions()
	grad := make([]float64, len(x))
	full := make([]float64, len(x))

	e.gradient(x, full)
	if e.memo.misses != 1 || e.memo.hits != 0 {
		t.Fatalf("first eval: hits=%d misses=%d", e.memo.hits, e.memo.misses)
	}
	e.gradient(x, grad)
	if e.memo.hits != 1 {
		t.Fatalf("repeat eval not memoized: hits=%d misses=%d", e.memo.hits, e.memo.misses)
	}
	for i := range grad {
		if grad[i] != full[i] {
			t.Fatalf("memoized gradient diverged at %d: %v != %v (bitwise)", i, grad[i], full[i])
		}
	}

	if e.vlS == nil {
		t.Fatal("segment-pair Verlet list missing")
	}
	rebuilds := e.vlS.rebuilds
	// A drift well inside margin/2 must keep the active list.
	drift := append([]float64(nil), x...)
	for i := range drift {
		drift[i] += e.vlS.margin / 100
	}
	e.gradient(drift, grad)
	if e.vlS.rebuilds != rebuilds {
		t.Fatalf("tiny drift triggered a Verlet rebuild (%d -> %d)", rebuilds, e.vlS.rebuilds)
	}
	// A drift past the guard must rebuild.
	for i := range drift {
		drift[i] += e.vlS.margin
	}
	e.gradient(drift, grad)
	if e.vlS.rebuilds <= rebuilds {
		t.Fatal("large drift did not rebuild the Verlet list")
	}
}

// TestCutoffsBitIdentical runs the same problem under every granularity
// policy — always fan out (zero cutoffs), auto-calibrated, and cutoffs so
// high every stage gates serial — at several worker counts, and requires
// bit-identical placements throughout: gating switches implementations, not
// math.
func TestCutoffsBitIdentical(t *testing.T) {
	serial := runPlacement(t, "falcon", nil)
	huge := parallel.Cutoffs{
		WirelengthItems: 1 << 30, PairItems: 1 << 30, RasterCells: 1 << 30,
		SolveCells: 1 << 30, PointItems: 1 << 30, ScanCells: 1 << 30,
	}
	for _, workers := range []int{1, 2, 3, 5} {
		for name, cut := range map[string]*parallel.Cutoffs{
			"fanout": {},
			"auto":   nil,
			"serial": &huge,
		} {
			got := runPlacement(t, "falcon", func(cfg *Config) {
				cfg.Workers = workers
				cfg.Cutoffs = cut
			})
			requireBitIdentical(t, "falcon/"+name, got, serial)
		}
	}
}
