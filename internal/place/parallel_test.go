package place

import (
	"testing"

	"qplacer/internal/component"
	"qplacer/internal/frequency"
	"qplacer/internal/physics"
	"qplacer/internal/topology"
)

// placeProblem builds the netlist + collision map for a topology.
func placeProblem(tb testing.TB, topo string) (*component.Netlist, *frequency.CollisionMap) {
	tb.Helper()
	dev, err := topology.ByName(topo)
	if err != nil {
		tb.Fatal(err)
	}
	a := frequency.Assign(dev, physics.DetuneThresholdGHz)
	nl, err := component.Build(dev, a.QubitFreq, a.ResFreq, component.DefaultConfig())
	if err != nil {
		tb.Fatal(err)
	}
	return nl, frequency.BuildCollisionMap(nl, physics.DetuneThresholdGHz)
}

// TestParallelBitIdentical is the contract the plan cache and golden corpus
// rely on: the parallel gradient path produces bit-identical placements to
// the serial one at every worker count, including pools wider than the
// problem warrants.
func TestParallelBitIdentical(t *testing.T) {
	topos := []string{"grid", "falcon", "eagle"}
	if testing.Short() {
		topos = topos[:2] // eagle is ~1s per placement; skip it under -short/-race
	}
	for _, topo := range topos {
		run := func(workers int) []float64 {
			nl, cm := placeProblem(t, topo)
			cfg := DefaultConfig()
			cfg.MaxIters = 30
			cfg.MinIters = 30
			cfg.Workers = workers
			if _, err := Place(nl, cm, cfg); err != nil {
				t.Fatal(err)
			}
			return nl.Positions()
		}
		want := run(1)
		for _, workers := range []int{2, 3, 5} {
			got := run(workers)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s workers=%d: pos[%d] = %v, want %v (bitwise)",
						topo, workers, i, got[i], want[i])
				}
			}
		}
	}
}

// TestParallelResultFields pins that the run statistics (iterations,
// overflow, HPWL) agree between serial and parallel runs too — the fields
// the benchmark harness uses for its parity columns.
func TestParallelResultFields(t *testing.T) {
	run := func(workers int) (*Result, float64) {
		nl, cm := placeProblem(t, "falcon")
		cfg := DefaultConfig()
		cfg.MaxIters = 40
		cfg.Workers = workers
		res, err := Place(nl, cm, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res, HPWL(nl)
	}
	serial, serialHPWL := run(1)
	parallel, parallelHPWL := run(4)
	if parallel.Iterations != serial.Iterations {
		t.Errorf("iterations = %d, want %d", parallel.Iterations, serial.Iterations)
	}
	if parallel.Overflow != serial.Overflow {
		t.Errorf("overflow = %v, want %v (bitwise)", parallel.Overflow, serial.Overflow)
	}
	if parallelHPWL != serialHPWL {
		t.Errorf("HPWL = %v, want %v (bitwise)", parallelHPWL, serialHPWL)
	}
}

// benchmarkGradient times one full gradient evaluation (all components +
// combine) on the falcon problem at a fixed worker count.
func benchmarkGradient(b *testing.B, workers int) {
	nl, cm := placeProblem(b, "falcon")
	cfg := DefaultConfig()
	cfg.Workers = workers
	e := newEngine(nl, cm, cfg)
	defer e.close()
	x := nl.Positions()
	grad := make([]float64, len(x))
	e.gradient(x, grad) // warm scratch and solver state
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.gradient(x, grad)
	}
}

func BenchmarkGradientSerial(b *testing.B)   { benchmarkGradient(b, 1) }
func BenchmarkGradientParallel(b *testing.B) { benchmarkGradient(b, 4) }
