// Package testutil holds small helpers shared by tests across packages. It
// is imported only from _test files, so it never reaches production binaries.
package testutil

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
)

// nameSeq disambiguates names within one test binary, including repeated
// runs of the same test (-count) and parallel subtests.
var nameSeq atomic.Uint64

// UniqueName returns a registry-safe name that is unique across the whole
// test binary, derived from the calling test's name. The topology, circuit,
// and backend registries are global to the binary and reject duplicates, so
// every registration in tests must use a fresh name — including when a test
// is re-run in the same process (go test -count=N).
func UniqueName(t testing.TB) string {
	t.Helper()
	base := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			return r
		case r >= 'A' && r <= 'Z':
			return r + ('a' - 'A')
		default:
			return '-'
		}
	}, t.Name())
	return fmt.Sprintf("%s-%d", base, nameSeq.Add(1))
}
