// Package component models the movable quantum components of §IV-B: padded
// transmon qubits and resonators partitioned into wire-block segments. It
// builds the placement netlist — instances plus the 2-pin net chains
// q_i → s_r,1 → … → s_r,k → q_j that keep each resonator's segments ribboned
// between its endpoint qubits.
package component

import (
	"fmt"
	"math"

	"qplacer/internal/geom"
	"qplacer/internal/physics"
	"qplacer/internal/topology"
)

// Kind discriminates instance types.
type Kind int

const (
	// KindQubit is a transmon qubit pocket.
	KindQubit Kind = iota
	// KindSegment is one wire block of a partitioned resonator.
	KindSegment
)

func (k Kind) String() string {
	switch k {
	case KindQubit:
		return "qubit"
	case KindSegment:
		return "segment"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Instance is a movable rectangle with a frequency. Positions are centre
// coordinates in mm.
type Instance struct {
	ID        int
	Kind      Kind
	Qubit     int // qubit index for KindQubit, else -1
	Resonator int // resonator index for KindSegment, else -1
	SegIndex  int // chain position within the resonator, else -1

	W, H    float64 // core size (mm)
	Pad     float64 // padding per side (mm)
	FreqGHz float64

	Pos geom.Point
}

// CoreRect returns the unpadded footprint at the current position.
func (in *Instance) CoreRect() geom.Rect {
	return geom.RectAt(in.Pos, in.W, in.H)
}

// PaddedRect returns the footprint inflated by the padding. Two padded
// rectangles that abut leave a core-to-core gap equal to the sum of the two
// paddings — the paper's minimum-spacing semantics (§IV-B1).
func (in *Instance) PaddedRect() geom.Rect {
	return geom.RectAt(in.Pos, in.W+2*in.Pad, in.H+2*in.Pad)
}

// PaddedW returns the padded width.
func (in *Instance) PaddedW() float64 { return in.W + 2*in.Pad }

// PaddedH returns the padded height.
func (in *Instance) PaddedH() float64 { return in.H + 2*in.Pad }

// PaddedArea returns the padded footprint area.
func (in *Instance) PaddedArea() float64 { return in.PaddedW() * in.PaddedH() }

// Config carries the geometric parameters of §V-C.
type Config struct {
	QubitSize    float64 // L_q, transmon pocket edge (0.4 mm)
	QubitPad     float64 // d_q (0.4 mm)
	ResonatorPad float64 // d_r (0.1 mm)
	SegmentSize  float64 // l_b, wire block edge (0.2/0.3/0.4 mm)
	RibbonWidth  float64 // resonator ribbon width for area accounting
}

// DefaultConfig returns the paper's experimental constants with the optimal
// segment size l_b = 0.3 mm.
func DefaultConfig() Config {
	return Config{
		QubitSize:    physics.QubitSizeMM,
		QubitPad:     physics.QubitPadMM,
		ResonatorPad: physics.ResonatorPadMM,
		SegmentSize:  0.3,
		RibbonWidth:  physics.ResonatorWidthMM,
	}
}

func (c Config) validate() error {
	if c.QubitSize <= 0 || c.QubitPad < 0 || c.ResonatorPad < 0 ||
		c.SegmentSize <= 0 || c.RibbonWidth <= 0 {
		return fmt.Errorf("component: invalid config %+v", c)
	}
	return nil
}

// SegmentCount returns the number of l_b×l_b wire blocks needed to reserve
// the reshaped resonator area L·w (§IV-B2).
func SegmentCount(lengthMM float64, cfg Config) int {
	if lengthMM <= 0 {
		panic("component: non-positive resonator length")
	}
	n := int(math.Ceil(lengthMM * cfg.RibbonWidth / (cfg.SegmentSize * cfg.SegmentSize)))
	if n < 1 {
		n = 1
	}
	return n
}

// Resonator describes one coupling's resonator after partitioning.
type Resonator struct {
	Index    int
	QubitA   int // endpoint qubit indices (device numbering)
	QubitB   int
	FreqGHz  float64
	LengthMM float64
	Segments []int // instance IDs of the wire blocks, in chain order
}

// Netlist is the complete placement problem: instances, resonators, and the
// 2-pin nets connecting them.
type Netlist struct {
	Config     Config
	Device     *topology.Device
	Instances  []*Instance
	QubitInst  []int        // instance ID per device qubit
	Resonators []*Resonator // one per coupling edge, in Edges() order
	Nets       [][2]int     // 2-pin nets as instance-ID pairs
}

// Build constructs the netlist for a device with the given per-qubit and
// per-resonator frequencies (lengths derive from resonator frequencies via
// L = v0/2f). len(qubitFreqs) must equal the qubit count and
// len(resFreqs) the edge count.
func Build(dev *topology.Device, qubitFreqs, resFreqs []float64, cfg Config) (*Netlist, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(qubitFreqs) != dev.NumQubits {
		return nil, fmt.Errorf("component: %d qubit frequencies for %d qubits",
			len(qubitFreqs), dev.NumQubits)
	}
	edges := dev.Edges()
	if len(resFreqs) != len(edges) {
		return nil, fmt.Errorf("component: %d resonator frequencies for %d edges",
			len(resFreqs), len(edges))
	}

	nl := &Netlist{
		Config:    cfg,
		Device:    dev,
		QubitInst: make([]int, dev.NumQubits),
	}
	addInst := func(in *Instance) int {
		in.ID = len(nl.Instances)
		nl.Instances = append(nl.Instances, in)
		return in.ID
	}

	for q := 0; q < dev.NumQubits; q++ {
		if qubitFreqs[q] <= 0 {
			return nil, fmt.Errorf("component: qubit %d has non-positive frequency", q)
		}
		nl.QubitInst[q] = addInst(&Instance{
			Kind:      KindQubit,
			Qubit:     q,
			Resonator: -1,
			SegIndex:  -1,
			W:         cfg.QubitSize,
			H:         cfg.QubitSize,
			Pad:       cfg.QubitPad,
			FreqGHz:   qubitFreqs[q],
		})
	}

	for r, e := range edges {
		f := resFreqs[r]
		if f <= 0 {
			return nil, fmt.Errorf("component: resonator %d has non-positive frequency", r)
		}
		length := physics.ResonatorLengthMM(f)
		res := &Resonator{
			Index:    r,
			QubitA:   e[0],
			QubitB:   e[1],
			FreqGHz:  f,
			LengthMM: length,
		}
		nSeg := SegmentCount(length, cfg)
		for s := 0; s < nSeg; s++ {
			id := addInst(&Instance{
				Kind:      KindSegment,
				Qubit:     -1,
				Resonator: r,
				SegIndex:  s,
				W:         cfg.SegmentSize,
				H:         cfg.SegmentSize,
				Pad:       cfg.ResonatorPad,
				FreqGHz:   f,
			})
			res.Segments = append(res.Segments, id)
		}
		nl.Resonators = append(nl.Resonators, res)

		// Net chain: qubit A → s_0 → s_1 → … → s_{k-1} → qubit B.
		prev := nl.QubitInst[e[0]]
		for _, sid := range res.Segments {
			nl.Nets = append(nl.Nets, [2]int{prev, sid})
			prev = sid
		}
		nl.Nets = append(nl.Nets, [2]int{prev, nl.QubitInst[e[1]]})
	}
	return nl, nil
}

// NumCells returns the total movable instance count (#cells of Table II).
func (nl *Netlist) NumCells() int { return len(nl.Instances) }

// TotalPaddedArea returns Σ padded footprint areas.
func (nl *Netlist) TotalPaddedArea() float64 {
	var a float64
	for _, in := range nl.Instances {
		a += in.PaddedArea()
	}
	return a
}

// PaddedRects returns the padded footprint of every instance.
func (nl *Netlist) PaddedRects() []geom.Rect {
	out := make([]geom.Rect, len(nl.Instances))
	for i, in := range nl.Instances {
		out[i] = in.PaddedRect()
	}
	return out
}

// Positions flattens instance centres into [x0 y0 x1 y1 …] for optimizers.
func (nl *Netlist) Positions() []float64 {
	out := make([]float64, 2*len(nl.Instances))
	for i, in := range nl.Instances {
		out[2*i] = in.Pos.X
		out[2*i+1] = in.Pos.Y
	}
	return out
}

// SetPositions writes back a flat [x0 y0 …] vector.
func (nl *Netlist) SetPositions(xy []float64) {
	if len(xy) != 2*len(nl.Instances) {
		panic("component: position vector length mismatch")
	}
	for i, in := range nl.Instances {
		in.Pos = geom.Point{X: xy[2*i], Y: xy[2*i+1]}
	}
}

// Clone deep-copies the netlist (shared Device, fresh instances), so one
// frequency assignment can be placed by several schemes independently.
func (nl *Netlist) Clone() *Netlist {
	out := &Netlist{
		Config:    nl.Config,
		Device:    nl.Device,
		QubitInst: append([]int(nil), nl.QubitInst...),
		Nets:      append([][2]int(nil), nl.Nets...),
	}
	out.Instances = make([]*Instance, len(nl.Instances))
	for i, in := range nl.Instances {
		cp := *in
		out.Instances[i] = &cp
	}
	out.Resonators = make([]*Resonator, len(nl.Resonators))
	for i, r := range nl.Resonators {
		cp := *r
		cp.Segments = append([]int(nil), r.Segments...)
		out.Resonators[i] = &cp
	}
	return out
}
