package component

import (
	"math"
	"testing"

	"qplacer/internal/geom"
	"qplacer/internal/physics"
	"qplacer/internal/topology"
)

func uniformFreqs(dev *topology.Device) (q, r []float64) {
	q = make([]float64, dev.NumQubits)
	for i := range q {
		q[i] = 5.0
	}
	r = make([]float64, dev.NumEdges())
	for i := range r {
		r[i] = 6.5
	}
	return q, r
}

func TestPaddedRectSemantics(t *testing.T) {
	in := &Instance{W: 0.4, H: 0.4, Pad: 0.4, Pos: geom.Point{X: 1, Y: 1}}
	pr := in.PaddedRect()
	if math.Abs(pr.W()-1.2) > 1e-12 || math.Abs(pr.H()-1.2) > 1e-12 {
		t.Fatalf("padded dims = %v×%v, want 1.2×1.2", pr.W(), pr.H())
	}
	// Two abutting padded qubits leave a core gap of d_q + d_q = 0.8 mm.
	other := &Instance{W: 0.4, H: 0.4, Pad: 0.4, Pos: geom.Point{X: 2.2, Y: 1}}
	if in.PaddedRect().Overlaps(other.PaddedRect()) {
		t.Fatal("abutting padded rects must not overlap")
	}
	coreGap := other.CoreRect().Lo.X - in.CoreRect().Hi.X
	if math.Abs(coreGap-0.8) > 1e-12 {
		t.Fatalf("core gap = %v, want 0.8 (= d_q + d_q)", coreGap)
	}
}

func TestSegmentCountMatchesTableII(t *testing.T) {
	// Table II #cells: qubits + Σ⌈L·w/l_b²⌉. For L ≈ 10–10.8 mm, w = 0.1:
	// l_b = 0.3 → ~12 segments, l_b = 0.2 → ~26, l_b = 0.4 → ~7.
	cfg := DefaultConfig()
	L := physics.ResonatorLengthMM(6.2) // 10.48 mm
	cfg.SegmentSize = 0.3
	if n := SegmentCount(L, cfg); n != 12 {
		t.Errorf("l_b=0.3: %d segments, want 12", n)
	}
	cfg.SegmentSize = 0.2
	if n := SegmentCount(L, cfg); n != 27 {
		t.Errorf("l_b=0.2: %d segments, want 27", n)
	}
	cfg.SegmentSize = 0.4
	if n := SegmentCount(L, cfg); n != 7 {
		t.Errorf("l_b=0.4: %d segments, want 7", n)
	}
}

func TestBuildFalconCellCount(t *testing.T) {
	// Falcon at l_b = 0.3 in the paper: 354 cells. With our per-frequency
	// lengths the count must land in the same neighbourhood.
	dev := topology.Falcon27()
	q, r := uniformFreqs(dev)
	nl, err := Build(dev, q, r, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cells := nl.NumCells()
	if cells < 300 || cells > 420 {
		t.Fatalf("falcon #cells = %d, want ≈354 (paper Table II)", cells)
	}
}

func TestBuildNetChains(t *testing.T) {
	dev := topology.Grid25()
	q, r := uniformFreqs(dev)
	nl, err := Build(dev, q, r, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Each resonator with k segments contributes k+1 nets.
	wantNets := 0
	for _, res := range nl.Resonators {
		wantNets += len(res.Segments) + 1
	}
	if len(nl.Nets) != wantNets {
		t.Fatalf("nets = %d, want %d", len(nl.Nets), wantNets)
	}
	// First resonator chain starts at qubit A and ends at qubit B.
	res := nl.Resonators[0]
	first := nl.Nets[0]
	if first[0] != nl.QubitInst[res.QubitA] || first[1] != res.Segments[0] {
		t.Fatalf("first net %v does not start the chain", first)
	}
	last := nl.Nets[len(res.Segments)]
	if last[0] != res.Segments[len(res.Segments)-1] || last[1] != nl.QubitInst[res.QubitB] {
		t.Fatalf("net %v does not close the chain", last)
	}
}

func TestBuildInstanceMetadata(t *testing.T) {
	dev := topology.Grid25()
	q, r := uniformFreqs(dev)
	r[3] = 6.9
	nl, err := Build(dev, q, r, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	nQ, nS := 0, 0
	for _, in := range nl.Instances {
		switch in.Kind {
		case KindQubit:
			nQ++
			if in.Resonator != -1 || in.SegIndex != -1 {
				t.Fatalf("qubit instance has resonator fields: %+v", in)
			}
			if in.FreqGHz != 5.0 {
				t.Fatalf("qubit freq = %v", in.FreqGHz)
			}
		case KindSegment:
			nS++
			res := nl.Resonators[in.Resonator]
			if res.Segments[in.SegIndex] != in.ID {
				t.Fatalf("segment chain index mismatch: %+v", in)
			}
			if in.FreqGHz != res.FreqGHz {
				t.Fatalf("segment freq %v != resonator freq %v", in.FreqGHz, res.FreqGHz)
			}
		}
	}
	if nQ != 25 {
		t.Fatalf("qubit instances = %d", nQ)
	}
	if nS == 0 {
		t.Fatal("no segments built")
	}
	// Higher-frequency resonator is shorter, so it may have fewer segments.
	if nl.Resonators[3].LengthMM >= nl.Resonators[0].LengthMM {
		t.Fatal("resonator length must shrink with frequency")
	}
}

func TestBuildValidation(t *testing.T) {
	dev := topology.Grid25()
	q, r := uniformFreqs(dev)
	if _, err := Build(dev, q[:3], r, DefaultConfig()); err == nil {
		t.Error("short qubit frequency vector must fail")
	}
	if _, err := Build(dev, q, r[:2], DefaultConfig()); err == nil {
		t.Error("short resonator frequency vector must fail")
	}
	bad := append([]float64(nil), q...)
	bad[0] = -1
	if _, err := Build(dev, bad, r, DefaultConfig()); err == nil {
		t.Error("negative qubit frequency must fail")
	}
	cfg := DefaultConfig()
	cfg.SegmentSize = 0
	if _, err := Build(dev, q, r, cfg); err == nil {
		t.Error("invalid config must fail")
	}
}

func TestPositionsRoundTrip(t *testing.T) {
	dev := topology.Grid25()
	q, r := uniformFreqs(dev)
	nl, err := Build(dev, q, r, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	xy := nl.Positions()
	for i := range xy {
		xy[i] = float64(i) * 0.25
	}
	nl.SetPositions(xy)
	got := nl.Positions()
	for i := range xy {
		if got[i] != xy[i] {
			t.Fatalf("roundtrip mismatch at %d", i)
		}
	}
}

func TestSetPositionsLengthCheck(t *testing.T) {
	dev := topology.Grid25()
	q, r := uniformFreqs(dev)
	nl, _ := Build(dev, q, r, DefaultConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	nl.SetPositions([]float64{1, 2, 3})
}

func TestCloneIsDeep(t *testing.T) {
	dev := topology.Grid25()
	q, r := uniformFreqs(dev)
	nl, _ := Build(dev, q, r, DefaultConfig())
	cp := nl.Clone()
	cp.Instances[0].Pos = geom.Point{X: 99, Y: 99}
	cp.Resonators[0].Segments[0] = -5
	if nl.Instances[0].Pos == (geom.Point{X: 99, Y: 99}) {
		t.Fatal("instance positions shared between clones")
	}
	if nl.Resonators[0].Segments[0] == -5 {
		t.Fatal("segment lists shared between clones")
	}
	if cp.NumCells() != nl.NumCells() {
		t.Fatal("clone size mismatch")
	}
}

func TestTotalPaddedArea(t *testing.T) {
	dev := topology.Grid25()
	q, r := uniformFreqs(dev)
	nl, _ := Build(dev, q, r, DefaultConfig())
	var want float64
	for _, in := range nl.Instances {
		want += in.PaddedW() * in.PaddedH()
	}
	if got := nl.TotalPaddedArea(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("TotalPaddedArea = %v, want %v", got, want)
	}
	if len(nl.PaddedRects()) != nl.NumCells() {
		t.Fatal("PaddedRects length mismatch")
	}
}
