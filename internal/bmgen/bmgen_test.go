package bmgen

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"testing"
)

func encode(t *testing.T, s *Suite) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// Every family must generate a Validate-clean suite.
func TestGenerateFamilies(t *testing.T) {
	specs := []Spec{
		{Name: "g36", Family: FamilyGrid, Qubits: 36},
		{Name: "g3x7", Family: FamilyGrid, Rows: 3, Cols: 7},
		{Name: "x17", Family: FamilyXtree, Qubits: 17},
		{Name: "o2x5", Family: FamilyOctagon, Rows: 2, Cols: 5},
		{Name: "o40", Family: FamilyOctagon, Qubits: 40},
		{Name: "hb", Family: FamilyHummingbird},
		{Name: "r20", Family: FamilyRandom, Qubits: 20},
		{Name: "r20d4", Family: FamilyRandom, Qubits: 20, Degree: 4, Seed: 7},
		{Name: "g36w", Family: FamilyGrid, Qubits: 36, Workloads: true},
		{Name: "g36d", Family: FamilyGrid, Qubits: 36, FreqScheme: SchemeDSATUR},
	}
	for _, spec := range specs {
		s, err := Generate(spec)
		if err != nil {
			t.Errorf("%s: %v", spec.Name, err)
			continue
		}
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", spec.Name, err)
		}
		if s.Topology.Name != spec.Name {
			t.Errorf("%s: topology named %q", spec.Name, s.Topology.Name)
		}
	}
}

func TestGenerateSizes(t *testing.T) {
	s, err := Generate(Spec{Name: "hb", Family: FamilyHummingbird})
	if err != nil {
		t.Fatal(err)
	}
	if s.Topology.NumQubits != 65 || len(s.Topology.Edges) != 72 {
		t.Errorf("hummingbird suite: %d qubits, %d edges", s.Topology.NumQubits, len(s.Topology.Edges))
	}
	if len(s.Frequencies.QubitGHz) != 65 || len(s.Frequencies.ResonatorGHz) != 72 {
		t.Errorf("frequency vectors sized %d/%d", len(s.Frequencies.QubitGHz), len(s.Frequencies.ResonatorGHz))
	}
	if s.AreaMM[0] <= 0 || s.AreaMM[0] != s.AreaMM[1] {
		t.Errorf("derived area %v is not a positive square", s.AreaMM)
	}
}

// Same spec, same process: byte-identical output.
func TestGenerateDeterministicSameProcess(t *testing.T) {
	spec := Spec{Name: "det", Family: FamilyRandom, Qubits: 24, Seed: 42, Workloads: true}
	a, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encode(t, a), encode(t, b)) {
		t.Error("two generations of the same spec differ")
	}
}

// Same spec, two fresh processes: byte-identical output. The test re-executes
// its own binary in helper mode; each child generates the suite from scratch
// with no shared in-process state.
func TestGenerateDeterministicSubprocess(t *testing.T) {
	if os.Getenv("BMGEN_HELPER") == "1" {
		s, err := Generate(Spec{Name: "det", Family: FamilyRandom, Qubits: 24, Seed: 42, Workloads: true})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := s.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	run := func() []byte {
		cmd := exec.Command(exe, "-test.run=TestGenerateDeterministicSubprocess")
		cmd.Env = append(os.Environ(), "BMGEN_HELPER=1")
		out, err := cmd.Output()
		if err != nil {
			t.Fatalf("helper process: %v", err)
		}
		return out
	}
	first, second := run(), run()
	if len(first) == 0 || !bytes.Equal(first, second) {
		t.Errorf("subprocess outputs differ (%d vs %d bytes)", len(first), len(second))
	}
}

// Different seeds must diverge — and still both be Validate-clean.
func TestDifferentSeedsDiverge(t *testing.T) {
	base := Spec{Name: "seeds", Family: FamilyRandom, Qubits: 24}
	s1 := base
	s1.Seed = 1
	s2 := base
	s2.Seed = 2
	a, err := Generate(s1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(s2)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(encode(t, a), encode(t, b)) {
		t.Error("seeds 1 and 2 generated identical suites")
	}
	if err := a.Validate(); err != nil {
		t.Error(err)
	}
	if err := b.Validate(); err != nil {
		t.Error(err)
	}
}

// Property test: randomized bounded specs never panic; accepted specs yield
// Validate-clean suites that survive a JSON round trip byte for byte.
func TestPropertyRandomSpecs(t *testing.T) {
	rng := rand.New(rand.NewSource(2025))
	families := []string{FamilyGrid, FamilyXtree, FamilyOctagon, FamilyHummingbird, FamilyRandom}
	xtreeSizes := []int{5, 17, 53}
	accepted := 0
	for i := 0; i < 60; i++ {
		spec := Spec{
			Name:   fmt.Sprintf("prop-%d", i),
			Family: families[rng.Intn(len(families))],
			Seed:   rng.Int63n(1 << 30),
		}
		switch spec.Family {
		case FamilyXtree:
			spec.Qubits = xtreeSizes[rng.Intn(len(xtreeSizes))]
		case FamilyHummingbird:
		case FamilyRandom:
			spec.Qubits = 4 + rng.Intn(60)
			if rng.Intn(2) == 0 {
				spec.Degree = 2 + rng.Float64()*2
			}
		default:
			if rng.Intn(2) == 0 {
				// Octagons cost 8 qubits per cell; keep the bound small so the
				// O(n²) collision recomputation stays fast.
				spec.Rows = 1 + rng.Intn(3)
				spec.Cols = 1 + rng.Intn(3)
			} else {
				spec.Qubits = 8 * (1 + rng.Intn(6)) // valid for both grid and octagon
			}
		}
		if rng.Intn(2) == 0 {
			spec.FreqScheme = SchemeDSATUR
		}
		spec.Workloads = rng.Intn(2) == 0

		s, err := Generate(spec)
		if err != nil {
			if !errors.Is(err, ErrInvalidSpec) {
				t.Fatalf("spec %d (%+v): unexpected error class %v", i, spec, err)
			}
			continue
		}
		accepted++
		if err := s.Validate(); err != nil {
			t.Fatalf("spec %d (%+v): %v", i, spec, err)
		}
		raw := encode(t, s)
		back, err := ReadSuite(bytes.NewReader(raw))
		if err != nil {
			t.Fatalf("spec %d: round trip: %v", i, err)
		}
		if !bytes.Equal(raw, encode(t, back)) {
			t.Fatalf("spec %d: JSON round trip is not byte-stable", i)
		}
	}
	if accepted < 40 {
		t.Errorf("only %d/60 random specs accepted; the generator is too restrictive", accepted)
	}
}

func TestNormalizeRejects(t *testing.T) {
	bad := []Spec{
		{},
		{Name: "x"},
		{Name: "x", Family: "torus", Qubits: 9},
		{Name: "x", Family: FamilyGrid},
		{Name: "x", Family: FamilyGrid, Qubits: 9, Rows: 3, Cols: 3},
		{Name: "x", Family: FamilyGrid, Rows: 3},
		{Name: "x", Family: FamilyGrid, Qubits: 9, Degree: 3},
		{Name: "x", Family: FamilyGrid, Qubits: MaxQubits + 1},
		{Name: "x", Family: FamilyRandom, Qubits: 3},
		{Name: "x", Family: FamilyRandom, Qubits: 10, Degree: 1},
		{Name: "x", Family: FamilyRandom, Qubits: 10, Degree: 10},
		{Name: "x", Family: FamilyHummingbird, Qubits: 64},
		{Name: "x", Family: FamilyXtree, Rows: 2, Cols: 2},
		{Name: "x", Family: FamilyGrid, Qubits: 9, FreqScheme: "rainbow"},
		{Name: "x", Family: FamilyGrid, Qubits: 9, DeltaC: -1},
		{Name: "x", Family: FamilyGrid, Qubits: 9, LB: -1},
		{Name: "x", Family: FamilyGrid, Qubits: 9, AreaMM: [2]float64{10, 0}},
	}
	for i, spec := range bad {
		if _, err := spec.Normalize(); !errors.Is(err, ErrInvalidSpec) {
			t.Errorf("bad spec %d (%+v): err = %v, want ErrInvalidSpec", i, spec, err)
		}
	}
	// Generation-time rejections (spec normalizes, family resolution fails).
	if _, err := Generate(Spec{Name: "x", Family: FamilyXtree, Qubits: 21}); !errors.Is(err, ErrInvalidSpec) {
		t.Errorf("xtree-21 generation: err = %v, want ErrInvalidSpec", err)
	}
	if _, err := Generate(Spec{Name: "x", Family: FamilyOctagon, Qubits: 12}); !errors.Is(err, ErrInvalidSpec) {
		t.Errorf("octagon 12-qubit generation: err = %v, want ErrInvalidSpec", err)
	}
}

func TestHashIgnoresDefaulting(t *testing.T) {
	implicit, err := Spec{Name: "h", Family: FamilyGrid, Qubits: 25}.Hash()
	if err != nil {
		t.Fatal(err)
	}
	explicit, err := Spec{
		Name: "h", Family: FamilyGrid, Qubits: 25,
		FreqScheme: SchemeIsolation, DeltaC: 0.1, LB: 0.3, Seed: 1,
	}.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if implicit != explicit {
		t.Error("defaulted and explicit-default specs must hash equal")
	}
	other, err := Spec{Name: "h", Family: FamilyGrid, Qubits: 25, Seed: 2}.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if other == implicit {
		t.Error("different seeds must hash differently")
	}
}

func TestReadSuiteRejectsUnknownFields(t *testing.T) {
	if _, err := ReadSuite(bytes.NewReader([]byte(`{"schema_version":1,"bogus":true}`))); !errors.Is(err, ErrInvalidSuite) {
		t.Errorf("unknown field: err = %v, want ErrInvalidSuite", err)
	}
}

// The isolation scheme must reproduce what the engine derives for the same
// connectivity, so recorded frequencies are interchangeable with pipeline
// state. (The suite stores the assignment of topology.Parse's device.)
func TestValidateCatchesTampering(t *testing.T) {
	s, err := Generate(Spec{Name: "tamper", Family: FamilyGrid, Qubits: 16})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		mutate func(*Suite)
	}{
		{"spec hash", func(s *Suite) { s.Spec.Seed = 99 }},
		{"qubit freq out of band", func(s *Suite) { s.Frequencies.QubitGHz[0] = 9.9 }},
		{"collision pairs", func(s *Suite) { s.Collisions.Pairs = append(s.Collisions.Pairs, [2]int{0, 1}) }},
		{"instance count", func(s *Suite) { s.Collisions.NumInstances++ }},
		{"area too small", func(s *Suite) { s.AreaMM = [2]float64{0.1, 0.1} }},
		{"edge out of range", func(s *Suite) { s.Topology.Edges[0] = [2]int{0, 999} }},
		{"schema version", func(s *Suite) { s.SchemaVersion = 2 }},
	}
	for _, tc := range cases {
		cp, err := ReadSuite(bytes.NewReader(encode(t, s)))
		if err != nil {
			t.Fatal(err)
		}
		tc.mutate(cp)
		if err := cp.Validate(); !errors.Is(err, ErrInvalidSuite) {
			t.Errorf("%s: err = %v, want ErrInvalidSuite", tc.name, err)
		}
	}
}
