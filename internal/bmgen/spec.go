// Package bmgen synthesizes complete placement benchmark suites from small
// declarative specs, reproducing the reference QPlacer benchmark pipeline:
// connectivity-graph construction → graph-coloring frequency assignment →
// collision-map derivation. Generation is fully deterministic per seed — the
// PRNG is threaded explicitly and no global state is consulted — so a
// generated suite can join the golden corpus and be regenerated bit for bit
// in any process.
package bmgen

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"math"

	"qplacer/internal/physics"
)

// ErrInvalidSpec reports a Spec that cannot describe any suite.
var ErrInvalidSpec = errors.New("bmgen: invalid spec")

// ErrInvalidSuite reports a Suite that fails well-formedness validation.
var ErrInvalidSuite = errors.New("bmgen: invalid suite")

// Families accepted by Spec.Family. All but FamilyRandom reuse the
// parametric constructors of internal/topology; FamilyRandom synthesizes a
// seeded connected graph from a degree target.
const (
	FamilyGrid        = "grid"
	FamilyXtree       = "xtree"
	FamilyOctagon     = "octagon"
	FamilyHummingbird = "hummingbird"
	FamilyRandom      = "random"
)

// Frequency-assignment schemes accepted by Spec.FreqScheme.
const (
	// SchemeIsolation is the paper's assigner (§IV-A): frequency-domain
	// isolation of neighbours and distance-2 pairs — exactly what the
	// placement engine derives for the same connectivity, so the suite's
	// recorded frequencies and collision map match the engine's pipeline.
	SchemeIsolation = "isolation"
	// SchemeDSATUR colours the coupling graph with DSATUR and maps colours
	// onto the spectrum levels round-robin — a denser, crowding-heavier
	// assignment that stresses spatial isolation harder.
	SchemeDSATUR = "dsatur"
)

// MaxQubits bounds generated devices; it matches the parser bound in
// internal/topology so a spec cannot demand an absurd suite.
const MaxQubits = 4096

// Spec is the declarative input: what to generate. The zero value of every
// optional field selects a documented default (see Normalize).
type Spec struct {
	// Name names the suite; it becomes the registered topology name and the
	// prefix of generated workload names.
	Name string `json:"name"`
	// Family selects the connectivity construction: grid, xtree, octagon,
	// hummingbird, or random.
	Family string `json:"family"`
	// Qubits sizes family members addressed by count (grid-<n>, xtree-<n>,
	// random); for octagon it must be a multiple of 8. Ignored when
	// Rows/Cols are given.
	Qubits int `json:"qubits,omitempty"`
	// Rows/Cols size rectangular families (grid, octagon) explicitly.
	Rows int `json:"rows,omitempty"`
	Cols int `json:"cols,omitempty"`
	// Degree is the random family's target mean degree (default 3).
	Degree float64 `json:"degree,omitempty"`
	// FreqScheme selects the frequency-assignment scheme (default isolation).
	FreqScheme string `json:"freq_scheme,omitempty"`
	// DeltaC is the detuning threshold in GHz (default 0.1).
	DeltaC float64 `json:"delta_c,omitempty"`
	// LB is the resonator segment size l_b in mm used to derive the
	// collision map's instance numbering (default 0.3).
	LB float64 `json:"lb,omitempty"`
	// AreaMM is the substrate area in mm; zero derives a square substrate
	// from the component area at the default utilization target.
	AreaMM [2]float64 `json:"area_mm,omitempty"`
	// Seed drives every random choice (default 1).
	Seed int64 `json:"seed,omitempty"`
	// Workloads also generates benchmark circuits sized to the device.
	Workloads bool `json:"workloads,omitempty"`
}

// defaultUtilization is the component-area/substrate-area target used when
// AreaMM is left to be derived.
const defaultUtilization = 0.25

// Normalize fills defaults and validates the spec, returning the canonical
// form that seeds the spec hash. Errors wrap ErrInvalidSpec.
func (s Spec) Normalize() (Spec, error) {
	if s.Name == "" {
		return s, fmt.Errorf("%w: empty name", ErrInvalidSpec)
	}
	if s.Qubits < 0 || s.Rows < 0 || s.Cols < 0 {
		return s, fmt.Errorf("%w: negative size", ErrInvalidSpec)
	}
	if (s.Rows == 0) != (s.Cols == 0) {
		return s, fmt.Errorf("%w: rows and cols must be given together", ErrInvalidSpec)
	}
	if math.IsNaN(s.Degree) || math.IsInf(s.Degree, 0) ||
		math.IsNaN(s.DeltaC) || math.IsInf(s.DeltaC, 0) ||
		math.IsNaN(s.LB) || math.IsInf(s.LB, 0) ||
		math.IsNaN(s.AreaMM[0]) || math.IsInf(s.AreaMM[0], 0) ||
		math.IsNaN(s.AreaMM[1]) || math.IsInf(s.AreaMM[1], 0) {
		return s, fmt.Errorf("%w: non-finite numeric field", ErrInvalidSpec)
	}
	if s.AreaMM[0] < 0 || s.AreaMM[1] < 0 || (s.AreaMM[0] == 0) != (s.AreaMM[1] == 0) {
		return s, fmt.Errorf("%w: area sides must both be positive or both derived", ErrInvalidSpec)
	}
	switch s.Family {
	case FamilyGrid, FamilyXtree, FamilyOctagon, FamilyHummingbird, FamilyRandom:
	case "":
		return s, fmt.Errorf("%w: empty family", ErrInvalidSpec)
	default:
		return s, fmt.Errorf("%w: unknown family %q", ErrInvalidSpec, s.Family)
	}
	switch s.Family {
	case FamilyRandom:
		if s.Rows != 0 {
			return s, fmt.Errorf("%w: rows/cols do not apply to the random family", ErrInvalidSpec)
		}
		if s.Qubits == 0 {
			return s, fmt.Errorf("%w: the random family needs qubits", ErrInvalidSpec)
		}
		if s.Qubits < 4 {
			return s, fmt.Errorf("%w: random family needs >= 4 qubits", ErrInvalidSpec)
		}
		if s.Degree == 0 {
			s.Degree = 3
		}
		if s.Degree < 2 || s.Degree >= float64(s.Qubits) {
			return s, fmt.Errorf("%w: degree %.3g outside [2, qubits)", ErrInvalidSpec, s.Degree)
		}
	case FamilyXtree:
		if s.Rows != 0 {
			return s, fmt.Errorf("%w: rows/cols do not apply to the xtree family", ErrInvalidSpec)
		}
		if s.Qubits == 0 {
			return s, fmt.Errorf("%w: the xtree family needs qubits", ErrInvalidSpec)
		}
	case FamilyHummingbird:
		if s.Rows != 0 {
			return s, fmt.Errorf("%w: rows/cols do not apply to the hummingbird family", ErrInvalidSpec)
		}
		if s.Qubits == 0 {
			s.Qubits = 65
		}
		if s.Qubits != 65 {
			return s, fmt.Errorf("%w: the hummingbird family has 65 qubits", ErrInvalidSpec)
		}
	default: // grid, octagon
		if s.Qubits == 0 && s.Rows == 0 {
			return s, fmt.Errorf("%w: the %s family needs qubits or rows+cols", ErrInvalidSpec, s.Family)
		}
		if s.Qubits != 0 && s.Rows != 0 {
			return s, fmt.Errorf("%w: give qubits or rows+cols, not both", ErrInvalidSpec)
		}
	}
	if s.Family != FamilyRandom && s.Degree != 0 {
		return s, fmt.Errorf("%w: degree applies only to the random family", ErrInvalidSpec)
	}
	if n := s.sizeUpperBound(); n > MaxQubits {
		return s, fmt.Errorf("%w: %d qubits exceeds the %d bound", ErrInvalidSpec, n, MaxQubits)
	}
	switch s.FreqScheme {
	case "":
		s.FreqScheme = SchemeIsolation
	case SchemeIsolation, SchemeDSATUR:
	default:
		return s, fmt.Errorf("%w: unknown freq_scheme %q", ErrInvalidSpec, s.FreqScheme)
	}
	if s.DeltaC == 0 {
		s.DeltaC = physics.DetuneThresholdGHz
	}
	if s.DeltaC < 0 {
		return s, fmt.Errorf("%w: negative delta_c", ErrInvalidSpec)
	}
	if s.LB == 0 {
		s.LB = 0.3
	}
	if s.LB < 0 {
		return s, fmt.Errorf("%w: negative lb", ErrInvalidSpec)
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	return s, nil
}

// sizeUpperBound estimates the qubit count implied by the sizing fields; the
// exact count is resolved during generation.
func (s Spec) sizeUpperBound() int {
	n := s.Qubits
	if s.Rows != 0 {
		n = s.Rows * s.Cols
		if s.Family == FamilyOctagon {
			n *= 8
		}
	}
	return n
}

// Hash returns the canonical spec fingerprint: the hex SHA-256 of the
// normalized spec's JSON encoding. Two specs hash equal iff every
// result-shaping field agrees after defaulting.
func (s Spec) Hash() (string, error) {
	norm, err := s.Normalize()
	if err != nil {
		return "", err
	}
	data, err := json.Marshal(norm)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}
