package bmgen

import (
	"fmt"
	"math"
	"math/rand"

	"qplacer/internal/circuit"
	"qplacer/internal/component"
	"qplacer/internal/frequency"
	"qplacer/internal/geom"
	"qplacer/internal/graph"
	"qplacer/internal/topology"
)

// Generate synthesizes the complete benchmark suite described by spec:
// connectivity graph, frequency assignment, collision map, substrate area,
// and (optionally) workload circuits. It is deterministic per normalized
// spec — the seed drives a single explicitly threaded PRNG and nothing else
// is random — so equal specs produce byte-identical suites in any process.
func Generate(spec Spec) (*Suite, error) {
	norm, err := spec.Normalize()
	if err != nil {
		return nil, err
	}
	hash, err := norm.Hash()
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(norm.Seed))

	dev, err := buildConnectivity(norm, rng)
	if err != nil {
		return nil, err
	}

	assign, err := assignFrequencies(norm, dev)
	if err != nil {
		return nil, err
	}

	ccfg := component.DefaultConfig()
	ccfg.SegmentSize = norm.LB
	nl, err := component.Build(dev, assign.QubitFreq, assign.ResFreq, ccfg)
	if err != nil {
		return nil, err
	}
	cm := frequency.BuildCollisionMap(nl, norm.DeltaC)

	area := norm.AreaMM
	if area[0] == 0 {
		side := math.Ceil(math.Sqrt(nl.TotalPaddedArea() / defaultUtilization))
		area = [2]float64{side, side}
	}

	out := &Suite{
		SchemaVersion: 1,
		Spec:          norm,
		SpecHash:      hash,
		Topology: Topology{
			Name:        norm.Name,
			Description: dev.Description,
			NumQubits:   dev.NumQubits,
			Edges:       dev.Edges(),
			Coords:      flattenCoords(dev.Coords),
		},
		Frequencies: Frequencies{
			Scheme:             norm.FreqScheme,
			DeltaCGHz:          norm.DeltaC,
			QubitGHz:           assign.QubitFreq,
			ResonatorGHz:       assign.ResFreq,
			QubitConflicts:     assign.QubitConflicts,
			ResonatorConflicts: assign.ResConflicts,
		},
		Collisions: Collisions{
			LBmm:         norm.LB,
			NumInstances: len(nl.Instances),
			Pairs:        append([][2]int{}, cm.Pairs...),
		},
		AreaMM: area,
	}
	if norm.Workloads {
		out.Workloads = buildWorkloads(norm, dev.NumQubits, rng)
	}
	return out, nil
}

// buildConnectivity resolves the spec's family to a concrete device. Every
// family but random reuses the parametric constructors behind
// topology.Parse; the random family grows a seeded connected graph from a
// degree target.
func buildConnectivity(norm Spec, rng *rand.Rand) (*topology.Device, error) {
	if norm.Family == FamilyRandom {
		return randomDevice(norm, rng)
	}
	famName, err := familyName(norm)
	if err != nil {
		return nil, err
	}
	dev, err := topology.Parse(famName)
	if err != nil {
		return nil, fmt.Errorf("%w: family member %q: %v", ErrInvalidSpec, famName, err)
	}
	return dev, nil
}

// familyName renders the spec's sizing fields as a parametric topology name.
func familyName(norm Spec) (string, error) {
	switch norm.Family {
	case FamilyGrid:
		if norm.Rows != 0 {
			return fmt.Sprintf("grid-%dx%d", norm.Rows, norm.Cols), nil
		}
		return fmt.Sprintf("grid-%d", norm.Qubits), nil
	case FamilyXtree:
		return fmt.Sprintf("xtree-%d", norm.Qubits), nil
	case FamilyOctagon:
		rows, cols := norm.Rows, norm.Cols
		if rows == 0 {
			if norm.Qubits%8 != 0 {
				return "", fmt.Errorf("%w: octagon qubits %d not a multiple of 8", ErrInvalidSpec, norm.Qubits)
			}
			rows, cols = squarest(norm.Qubits / 8)
		}
		return fmt.Sprintf("octagon-%dx%d", rows, cols), nil
	case FamilyHummingbird:
		return "hummingbird-65", nil
	}
	return "", fmt.Errorf("%w: family %q has no parametric name", ErrInvalidSpec, norm.Family)
}

// squarest factorizes n as r×c with r <= c and r maximal.
func squarest(n int) (rows, cols int) {
	for r := int(math.Sqrt(float64(n))); r >= 1; r-- {
		if n%r == 0 {
			return r, n / r
		}
	}
	return 1, n
}

// randomDevice grows a connected graph over n qubits: a random attachment
// spanning tree (connectivity by construction) plus seeded chords until the
// target mean degree is met. Coordinates are a row-major unit-pitch grid —
// distinct by construction, which is all the placer's initial layout needs.
func randomDevice(norm Spec, rng *rand.Rand) (*topology.Device, error) {
	n := norm.Qubits
	g := graph.New(n)
	for v := 1; v < n; v++ {
		g.AddEdge(v, rng.Intn(v))
	}
	wantEdges := int(math.Round(float64(n) * norm.Degree / 2))
	// Bounded attempts keep generation total even for dense targets; the
	// achieved degree is recorded implicitly in the edge list.
	for tries := 0; g.M() < wantEdges && tries < 64*wantEdges; tries++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if a != b {
			g.AddEdge(a, b)
		}
	}
	cols := int(math.Ceil(math.Sqrt(float64(n))))
	coords := make([]geom.Point, n)
	for i := range coords {
		coords[i] = geom.Point{X: float64(i % cols), Y: float64(i / cols)}
	}
	dev := &topology.Device{
		Name:        norm.Name,
		Description: fmt.Sprintf("Seeded random connected graph, %d qubits, target degree %.3g", n, norm.Degree),
		NumQubits:   n,
		Graph:       g,
		Coords:      coords,
	}
	if err := dev.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidSpec, err)
	}
	return dev, nil
}

// assignFrequencies runs the spec's frequency-assignment scheme.
func assignFrequencies(norm Spec, dev *topology.Device) (*frequency.Assignment, error) {
	switch norm.FreqScheme {
	case SchemeIsolation:
		return frequency.Assign(dev, norm.DeltaC), nil
	case SchemeDSATUR:
		return assignDSATUR(dev, norm.DeltaC), nil
	}
	return nil, fmt.Errorf("%w: unknown freq_scheme %q", ErrInvalidSpec, norm.FreqScheme)
}

// assignDSATUR colours the qubit coupling graph and the resonator
// share-a-qubit graph with DSATUR and maps colours onto the spectrum levels
// round-robin. Unlike the isolation assigner it ignores distance-2 pairs, so
// it yields denser frequency reuse — more residual resonance for spatial
// isolation to absorb. Deterministic: DSATUR breaks ties by index.
func assignDSATUR(dev *topology.Device, deltaC float64) *frequency.Assignment {
	qLevels := frequency.QubitSpectrum().Levels(deltaC, frequency.DefaultMargin)
	rLevels := frequency.ResonatorSpectrum().Levels(deltaC, frequency.DefaultMargin)
	out := &frequency.Assignment{
		QubitFreq:   make([]float64, dev.NumQubits),
		ResFreq:     make([]float64, dev.NumEdges()),
		QubitLevels: qLevels,
		ResLevels:   rLevels,
	}
	qcol := dev.Graph.DSATURColoring()
	for q, c := range qcol {
		out.QubitFreq[q] = qLevels[c%len(qLevels)]
	}
	// Conflict accounting mirrors frequency.Assign: direct same-level pairs
	// weigh 1000, distance-2 pairs 1.
	hard, soft := 0, 0
	for _, e := range dev.Graph.Edges() {
		if out.QubitFreq[e[0]] == out.QubitFreq[e[1]] {
			hard++
		}
	}
	d2 := dev.Graph.Power(2)
	for _, e := range d2.Edges() {
		if !dev.Graph.HasEdge(e[0], e[1]) && out.QubitFreq[e[0]] == out.QubitFreq[e[1]] {
			soft++
		}
	}
	out.QubitConflicts = hard*1000 + soft

	edges := dev.Edges()
	rg := graph.New(max(len(edges), 1))
	byQubit := make([][]int, dev.NumQubits)
	for r, e := range edges {
		byQubit[e[0]] = append(byQubit[e[0]], r)
		byQubit[e[1]] = append(byQubit[e[1]], r)
	}
	for q := 0; q < dev.NumQubits; q++ {
		rs := byQubit[q]
		for i := 0; i < len(rs); i++ {
			for j := i + 1; j < len(rs); j++ {
				rg.AddEdge(rs[i], rs[j])
			}
		}
	}
	rcol := rg.DSATURColoring()
	for r := range edges {
		out.ResFreq[r] = rLevels[rcol[r]%len(rLevels)]
	}
	for _, e := range rg.Edges() {
		if out.ResFreq[e[0]] == out.ResFreq[e[1]] {
			out.ResConflicts++
		}
	}
	return out
}

// workloadSizes picks circuit widths for a device: the largest Table I-style
// instance that fits, per workload kind.
func workloadSizes(qubits int) (bv, qaoa, qgan int) {
	clamp := func(want int) int {
		if qubits < want {
			return qubits
		}
		return want
	}
	return clamp(16), clamp(9), clamp(9)
}

// buildWorkloads generates benchmark circuits sized to the device, stored as
// explicit gate lists so a loaded suite never depends on generator code.
func buildWorkloads(norm Spec, devQubits int, rng *rand.Rand) []Workload {
	bvN, qaoaN, qganN := workloadSizes(devQubits)
	var out []Workload
	add := func(suffix string, c *circuit.Circuit) {
		w := Workload{Name: norm.Name + "/" + suffix, NumQubits: c.NumQubits}
		for _, g := range c.Gates {
			w.Gates = append(w.Gates, Gate{Name: g.Name, Qubits: append([]int(nil), g.Qubits...)})
		}
		out = append(out, w)
	}
	// Each builder has a minimum width; workloads that cannot fit the
	// device are omitted rather than padded.
	if bvN >= 2 {
		add("bv", circuit.BV(bvN))
	}
	if qaoaN >= 3 {
		add("qaoa", circuit.QAOA(qaoaN, norm.Seed+int64(rng.Intn(1<<16))))
	}
	if qganN >= 2 {
		add("qgan", circuit.QGAN(qganN, 2))
	}
	return out
}
