package bmgen

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"reflect"

	"qplacer/internal/circuit"
	"qplacer/internal/component"
	"qplacer/internal/frequency"
	"qplacer/internal/geom"
	"qplacer/internal/graph"
	"qplacer/internal/topology"
)

// Suite is a complete generated benchmark: the spec that produced it, its
// fingerprint, and every derived artifact. The JSON encoding is the on-disk
// interchange format; because Go's encoder is deterministic and generation is
// seeded, equal specs yield byte-identical files.
type Suite struct {
	SchemaVersion int         `json:"schema_version"`
	Spec          Spec        `json:"spec"`
	SpecHash      string      `json:"spec_hash"`
	Topology      Topology    `json:"topology"`
	Frequencies   Frequencies `json:"frequencies"`
	Collisions    Collisions  `json:"collisions"`
	// AreaMM is the substrate (width, height) in mm, given or derived.
	AreaMM    [2]float64 `json:"area_mm"`
	Workloads []Workload `json:"workloads,omitempty"`
}

// Topology is the suite's connectivity graph with canonical coordinates.
type Topology struct {
	Name        string       `json:"name"`
	Description string       `json:"description"`
	NumQubits   int          `json:"num_qubits"`
	Edges       [][2]int     `json:"edges"`
	Coords      [][2]float64 `json:"coords"`
}

// Frequencies records the scheme's output: one frequency per qubit and per
// coupling resonator, plus the residual crowding conflict counts.
type Frequencies struct {
	Scheme             string    `json:"scheme"`
	DeltaCGHz          float64   `json:"delta_c_ghz"`
	QubitGHz           []float64 `json:"qubit_ghz"`
	ResonatorGHz       []float64 `json:"resonator_ghz"`
	QubitConflicts     int       `json:"qubit_conflicts"`
	ResonatorConflicts int       `json:"resonator_conflicts"`
}

// Collisions is the derived collision map over netlist instances: pairs that
// sit within the detuning threshold and must be spatially isolated.
type Collisions struct {
	LBmm         float64  `json:"lb_mm"`
	NumInstances int      `json:"num_instances"`
	Pairs        [][2]int `json:"pairs"`
}

// Workload is a benchmark circuit stored as an explicit gate list, so loading
// a suite never re-runs generator code.
type Workload struct {
	Name      string `json:"name"`
	NumQubits int    `json:"num_qubits"`
	Gates     []Gate `json:"gates"`
}

// Gate mirrors circuit.Gate with JSON tags.
type Gate struct {
	Name   string `json:"name"`
	Qubits []int  `json:"qubits"`
}

func flattenCoords(pts []geom.Point) [][2]float64 {
	out := make([][2]float64, len(pts))
	for i, p := range pts {
		out[i] = [2]float64{p.X, p.Y}
	}
	return out
}

// WriteJSON writes the suite's canonical encoding: indented JSON plus a
// trailing newline. This is the byte stream the determinism contract pins.
func (s *Suite) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// ReadSuite decodes one suite from r. Unknown fields fail loudly — a typo'd
// hand-edited suite should not silently lose data.
func ReadSuite(r io.Reader) (*Suite, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Suite
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidSuite, err)
	}
	return &s, nil
}

// Device rebuilds the suite's topology as a validated device. The device
// carries the suite name, so registering it makes the suite a first-class
// topology for the whole pipeline.
func (s *Suite) Device() (*topology.Device, error) {
	t := s.Topology
	if t.NumQubits <= 0 || len(t.Coords) != t.NumQubits {
		return nil, fmt.Errorf("%w: topology has %d qubits but %d coords",
			ErrInvalidSuite, t.NumQubits, len(t.Coords))
	}
	g := graph.New(t.NumQubits)
	for _, e := range t.Edges {
		if e[0] < 0 || e[1] < 0 || e[0] >= t.NumQubits || e[1] >= t.NumQubits || e[0] == e[1] {
			return nil, fmt.Errorf("%w: edge %v out of range", ErrInvalidSuite, e)
		}
		g.AddEdge(e[0], e[1])
	}
	coords := make([]geom.Point, len(t.Coords))
	for i, c := range t.Coords {
		coords[i] = geom.Point{X: c[0], Y: c[1]}
	}
	dev := &topology.Device{
		Name:        t.Name,
		Description: t.Description,
		NumQubits:   t.NumQubits,
		Graph:       g,
		Coords:      coords,
	}
	if err := dev.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidSuite, err)
	}
	return dev, nil
}

// Circuits converts the suite's workloads to circuit values.
func (s *Suite) Circuits() []*circuit.Circuit {
	out := make([]*circuit.Circuit, 0, len(s.Workloads))
	for _, w := range s.Workloads {
		c := &circuit.Circuit{Name: w.Name, NumQubits: w.NumQubits}
		for _, g := range w.Gates {
			c.Gates = append(c.Gates, circuit.Gate{Name: g.Name, Qubits: append([]int(nil), g.Qubits...)})
		}
		out = append(out, c)
	}
	return out
}

// Validate checks suite well-formedness from first principles: the topology
// must be a valid connected device, every recorded frequency must sit inside
// its band, the collision map must equal a recomputation from the recorded
// frequencies, the substrate must fit the components, workloads must be
// executable, and the spec hash must match the embedded spec. Errors wrap
// ErrInvalidSuite.
func (s *Suite) Validate() error {
	if s.SchemaVersion != 1 {
		return fmt.Errorf("%w: unsupported schema_version %d", ErrInvalidSuite, s.SchemaVersion)
	}
	hash, err := s.Spec.Hash()
	if err != nil {
		return fmt.Errorf("%w: embedded spec: %v", ErrInvalidSuite, err)
	}
	if hash != s.SpecHash {
		return fmt.Errorf("%w: spec_hash %.12s... does not match the embedded spec (%.12s...)",
			ErrInvalidSuite, s.SpecHash, hash)
	}
	dev, err := s.Device()
	if err != nil {
		return err
	}

	f := s.Frequencies
	if len(f.QubitGHz) != dev.NumQubits || len(f.ResonatorGHz) != dev.NumEdges() {
		return fmt.Errorf("%w: %d qubit / %d resonator frequencies for %d qubits / %d couplings",
			ErrInvalidSuite, len(f.QubitGHz), len(f.ResonatorGHz), dev.NumQubits, dev.NumEdges())
	}
	if err := inBand(f.QubitGHz, frequency.QubitSpectrum(), "qubit"); err != nil {
		return err
	}
	if err := inBand(f.ResonatorGHz, frequency.ResonatorSpectrum(), "resonator"); err != nil {
		return err
	}
	if f.DeltaCGHz <= 0 {
		return fmt.Errorf("%w: non-positive delta_c", ErrInvalidSuite)
	}

	if s.Collisions.LBmm <= 0 {
		return fmt.Errorf("%w: non-positive lb", ErrInvalidSuite)
	}
	ccfg := component.DefaultConfig()
	ccfg.SegmentSize = s.Collisions.LBmm
	nl, err := component.Build(dev, f.QubitGHz, f.ResonatorGHz, ccfg)
	if err != nil {
		return fmt.Errorf("%w: netlist: %v", ErrInvalidSuite, err)
	}
	if len(nl.Instances) != s.Collisions.NumInstances {
		return fmt.Errorf("%w: %d instances recorded, %d derived",
			ErrInvalidSuite, s.Collisions.NumInstances, len(nl.Instances))
	}
	cm := frequency.BuildCollisionMap(nl, f.DeltaCGHz)
	want := cm.Pairs
	got := s.Collisions.Pairs
	if len(want) == 0 && len(got) == 0 {
		// both empty: nil vs [] is an encoding artifact, not a mismatch
	} else if !reflect.DeepEqual(got, want) {
		return fmt.Errorf("%w: collision map disagrees with recomputation (%d recorded, %d derived pairs)",
			ErrInvalidSuite, len(got), len(want))
	}

	if s.AreaMM[0] <= 0 || s.AreaMM[1] <= 0 ||
		math.IsNaN(s.AreaMM[0]) || math.IsNaN(s.AreaMM[1]) {
		return fmt.Errorf("%w: invalid substrate area %v", ErrInvalidSuite, s.AreaMM)
	}
	if total := nl.TotalPaddedArea(); s.AreaMM[0]*s.AreaMM[1] < total {
		return fmt.Errorf("%w: substrate %.1f mm² cannot fit %.1f mm² of components",
			ErrInvalidSuite, s.AreaMM[0]*s.AreaMM[1], total)
	}

	seen := map[string]bool{}
	for _, w := range s.Workloads {
		if w.Name == "" || seen[w.Name] {
			return fmt.Errorf("%w: empty or duplicate workload name %q", ErrInvalidSuite, w.Name)
		}
		seen[w.Name] = true
		if w.NumQubits < 1 || w.NumQubits > dev.NumQubits {
			return fmt.Errorf("%w: workload %s wants %d qubits on a %d-qubit device",
				ErrInvalidSuite, w.Name, w.NumQubits, dev.NumQubits)
		}
		for _, g := range w.Gates {
			if g.Name == "" || len(g.Qubits) < 1 || len(g.Qubits) > 2 {
				return fmt.Errorf("%w: workload %s has a malformed gate %+v", ErrInvalidSuite, w.Name, g)
			}
			for _, q := range g.Qubits {
				if q < 0 || q >= w.NumQubits {
					return fmt.Errorf("%w: workload %s gate %s touches qubit %d of %d",
						ErrInvalidSuite, w.Name, g.Name, q, w.NumQubits)
				}
			}
		}
	}
	return nil
}

func inBand(freqs []float64, band frequency.Spectrum, what string) error {
	const eps = 1e-9
	for i, f := range freqs {
		if math.IsNaN(f) || f < band.Lo-eps || f > band.Hi+eps {
			return fmt.Errorf("%w: %s %d frequency %.4f GHz outside [%.2f, %.2f]",
				ErrInvalidSuite, what, i, f, band.Lo, band.Hi)
		}
	}
	return nil
}
