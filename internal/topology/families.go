package topology

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// This file defines the parametric topology families and the name parser
// that resolves family members on demand: grid-64, xtree-17, octagon-5x8 and
// friends work anywhere a topology name is accepted, without registration.
// The six Table I names stay registered as exact aliases (see registry.go),
// so their devices — including the Name field — are byte-identical across
// releases.

// Family describes one parametric topology family for discovery surfaces
// (GET /v1/topologies, qplacer -list-topologies, docs).
type Family struct {
	Name string `json:"name"`
	// Schema is the accepted name pattern, e.g. "grid-<n> | grid-<r>x<c>".
	Schema      string   `json:"schema"`
	Description string   `json:"description"`
	Examples    []string `json:"examples"`
}

// Families returns the parametric family catalogue, sorted by name.
func Families() []Family {
	return []Family{
		{
			Name:        "grid",
			Schema:      "grid-<n> | grid-<r>x<c>",
			Description: "Nearest-neighbour mesh; grid-<n> picks the squarest r×c with r·c = n",
			Examples:    []string{"grid-4", "grid-25", "grid-64", "grid-3x7"},
		},
		{
			Name:        "hummingbird",
			Schema:      "hummingbird-65",
			Description: "IBM Hummingbird heavy-hex processor (65 qubits)",
			Examples:    []string{"hummingbird-65"},
		},
		{
			Name:        "octagon",
			Schema:      "octagon-<r>x<c>",
			Description: "Rigetti Aspen-style lattice of 8-qubit octagon rings (8·r·c qubits)",
			Examples:    []string{"octagon-1x5", "octagon-2x5", "octagon-5x8"},
		},
		{
			Name:        "xtree",
			Schema:      "xtree-<n>, n in 5, 17, 53, 161, ...",
			Description: "Pauli-string efficient X-tree; valid sizes are the depth series 1+4+12+36+...",
			Examples:    []string{"xtree-5", "xtree-17", "xtree-53"},
		},
	}
}

// Aliases maps each registered built-in alias to its canonical parametric
// name. Fixed devices without a parametric form (falcon, eagle) are absent.
func Aliases() map[string]string {
	return map[string]string{
		"grid":    "grid-25",
		"aspen11": "octagon-1x5",
		"aspenm":  "octagon-2x5",
		"xtree":   "xtree-53",
	}
}

// maxParametricQubits bounds parser-built devices: a mistyped name like
// grid-1000000 must fail fast instead of allocating a million-qubit device.
const maxParametricQubits = 4096

// Parse resolves a parametric family name (grid-64, grid-3x7, xtree-17,
// octagon-5x8, hummingbird-65) to a freshly built device whose Name is
// exactly the given name. Names outside every family, and family names with
// out-of-range parameters, wrap ErrUnknown.
func Parse(name string) (*Device, error) {
	family, param, ok := strings.Cut(name, "-")
	if !ok || param == "" {
		return nil, fmt.Errorf("%w %q", ErrUnknown, name)
	}
	switch family {
	case "grid":
		rows, cols, err := parseGridParam(name, param)
		if err != nil {
			return nil, err
		}
		return GridRC(name, rows, cols), nil
	case "octagon":
		rows, cols, err := parseRxC(param)
		if err != nil || rows < 1 || cols < 1 || rows*cols*8 > maxParametricQubits {
			return nil, fmt.Errorf("%w %q: octagon wants octagon-<r>x<c> with r,c >= 1", ErrUnknown, name)
		}
		return OctagonRC(name, rows, cols), nil
	case "xtree":
		n, err := strconv.Atoi(param)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("%w %q: xtree wants xtree-<n>", ErrUnknown, name)
		}
		for depth := 1; ; depth++ {
			size := XtreeSize(XtreeSchedule(depth))
			if size == n {
				return XtreeDepth(name, depth), nil
			}
			if size > n || size > maxParametricQubits {
				return nil, fmt.Errorf("%w %q: valid xtree sizes are 5, 17, 53, 161, ... (depth series)", ErrUnknown, name)
			}
		}
	case "hummingbird":
		if param != "65" {
			return nil, fmt.Errorf("%w %q: the hummingbird family has one member, hummingbird-65", ErrUnknown, name)
		}
		return Hummingbird65(), nil
	}
	return nil, fmt.Errorf("%w %q", ErrUnknown, name)
}

// parseGridParam accepts "<n>" (squarest factorization) or "<r>x<c>".
func parseGridParam(name, param string) (rows, cols int, err error) {
	if strings.Contains(param, "x") {
		rows, cols, err = parseRxC(param)
		if err != nil || rows < 1 || cols < 1 || rows*cols < 2 || rows*cols > maxParametricQubits {
			return 0, 0, fmt.Errorf("%w %q: grid wants grid-<n> or grid-<r>x<c> with r·c in [2,%d]",
				ErrUnknown, name, maxParametricQubits)
		}
		return rows, cols, nil
	}
	n, aerr := strconv.Atoi(param)
	if aerr != nil || n < 2 || n > maxParametricQubits {
		return 0, 0, fmt.Errorf("%w %q: grid wants grid-<n> with n in [2,%d]", ErrUnknown, name, maxParametricQubits)
	}
	// Squarest factorization: the largest divisor r <= sqrt(n). Primes
	// degenerate to a 1×n path, which is still a valid connected mesh.
	for r := intSqrt(n); r >= 1; r-- {
		if n%r == 0 {
			return r, n / r, nil
		}
	}
	return 0, 0, fmt.Errorf("%w %q", ErrUnknown, name) // unreachable: r=1 always divides
}

func parseRxC(param string) (rows, cols int, err error) {
	rs, cs, ok := strings.Cut(param, "x")
	if !ok {
		return 0, 0, fmt.Errorf("topology: %q is not <r>x<c>", param)
	}
	rows, err = strconv.Atoi(rs)
	if err != nil {
		return 0, 0, err
	}
	cols, err = strconv.Atoi(cs)
	return rows, cols, err
}

func intSqrt(n int) int {
	r := 0
	for (r+1)*(r+1) <= n {
		r++
	}
	return r
}

// Info describes one resolvable topology for discovery surfaces: its qubit
// and coupling counts, plus alias/family cross-references where they apply.
type Info struct {
	Name string `json:"name"`
	// Canonical is the parametric name this entry aliases ("" when Name is
	// already canonical): grid → grid-25, xtree → xtree-53, ...
	Canonical   string `json:"canonical,omitempty"`
	Family      string `json:"family,omitempty"`
	Qubits      int    `json:"qubits"`
	Edges       int    `json:"edges"`
	Description string `json:"description"`
}

// Catalog returns an Info for every registered topology (built-ins, aliases,
// runtime registrations) plus the parser-only canonical members that have no
// registry entry (hummingbird-65), sorted by name. Each entry is built once
// to read its exact qubit and coupling counts.
func Catalog() []Info {
	aliases := Aliases()
	names := Names()
	seen := make(map[string]bool, len(names)+1)
	for _, n := range names {
		seen[n] = true
	}
	if !seen["hummingbird-65"] {
		names = append(names, "hummingbird-65")
	}
	out := make([]Info, 0, len(names))
	for _, n := range names {
		d, err := ByName(n)
		if err != nil {
			continue // racing unregistration; skip rather than fail discovery
		}
		info := Info{
			Name:        n,
			Canonical:   aliases[n],
			Qubits:      d.NumQubits,
			Edges:       d.NumEdges(),
			Description: d.Description,
		}
		canonical := n
		if info.Canonical != "" {
			canonical = info.Canonical
		}
		if fam, _, ok := strings.Cut(canonical, "-"); ok {
			for _, f := range Families() {
				if f.Name == fam {
					info.Family = fam
					break
				}
			}
		}
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
