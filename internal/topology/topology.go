// Package topology defines the quantum-device connectivity topologies the
// engine places. The six fixed devices of Table I — Grid-25, the IBM
// heavy-hex Falcon (27 qubits) and Eagle (127 qubits), the Rigetti octagon
// lattices Aspen-11 (40) and Aspen-M (80), and the Pauli-string-efficient
// Xtree (53) — are members of parametric families (see Parse): grids of any
// rectangle, octagon lattices of any size, depth-parametric X-trees, and the
// heavy-hex series including the 65-qubit Hummingbird. Each device carries
// its coupling graph and canonical planar coordinates (unit pitch) used by
// the Human baseline layout and as the placer's initial positions.
package topology

import (
	"fmt"
	"math"
	"sort"

	"qplacer/internal/geom"
	"qplacer/internal/graph"
)

// Device is a quantum-processor connectivity topology.
type Device struct {
	Name        string
	Description string
	NumQubits   int
	Graph       *graph.Graph // qubit coupling graph
	Coords      []geom.Point // canonical planar coordinates, unit pitch
}

// Edges returns the coupling edges (u < v, sorted).
func (d *Device) Edges() [][2]int { return d.Graph.Edges() }

// NumEdges returns the number of couplings (= resonators).
func (d *Device) NumEdges() int { return d.Graph.M() }

// Validate checks internal consistency; generators call it before returning.
func (d *Device) Validate() error {
	if d.NumQubits != d.Graph.N() || d.NumQubits != len(d.Coords) {
		return fmt.Errorf("topology %s: inconsistent sizes (%d qubits, %d graph, %d coords)",
			d.Name, d.NumQubits, d.Graph.N(), len(d.Coords))
	}
	if !d.Graph.Connected() {
		return fmt.Errorf("topology %s: coupling graph is disconnected", d.Name)
	}
	seen := make(map[geom.Point]int, len(d.Coords))
	for q, p := range d.Coords {
		if prev, dup := seen[p]; dup {
			return fmt.Errorf("topology %s: qubits %d and %d share coordinate %v",
				d.Name, prev, q, p)
		}
		seen[p] = q
	}
	return nil
}

func mustDevice(d *Device) *Device {
	if err := d.Validate(); err != nil {
		panic(err)
	}
	return d
}

// gridLattice builds a rows×cols nearest-neighbour mesh at unit pitch.
// Qubits are numbered row-major; each qubit couples to its right and lower
// neighbours, so an R×C grid has R·C qubits and R(C−1)+C(R−1) couplings.
func gridLattice(name, desc string, rows, cols int) *Device {
	g := graph.New(rows * cols)
	coords := make([]geom.Point, rows*cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			coords[id(r, c)] = geom.Point{X: float64(c), Y: float64(r)}
			if c+1 < cols {
				g.AddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				g.AddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	return mustDevice(&Device{
		Name:        name,
		Description: desc,
		NumQubits:   rows * cols,
		Graph:       g,
		Coords:      coords,
	})
}

// GridRC returns a rows×cols nearest-neighbour grid named name (the
// parametric grid family: grid-4, grid-25, grid-64, ...; see Parse).
func GridRC(name string, rows, cols int) *Device {
	return gridLattice(name,
		fmt.Sprintf("Quantum error correction friendly %dx%d grid, %d qubits", rows, cols, rows*cols),
		rows, cols)
}

// Grid25 returns the 5×5 grid, a quantum-error-correction-friendly
// architecture (Google Sycamore style) with 25 qubits and 40 couplings.
func Grid25() *Device {
	return gridLattice("grid", "Quantum error correction friendly 5x5 grid", 5, 5)
}

// falconEdges is the published 27-qubit IBM Falcon heavy-hex coupling map
// (e.g. ibmq_mumbai / ibm_hanoi), 28 couplings.
var falconEdges = [][2]int{
	{0, 1}, {1, 2}, {1, 4}, {2, 3}, {3, 5}, {4, 7}, {5, 8}, {6, 7},
	{7, 10}, {8, 9}, {8, 11}, {10, 12}, {11, 14}, {12, 13}, {12, 15},
	{13, 14}, {14, 16}, {15, 18}, {16, 19}, {17, 18}, {18, 21}, {19, 20},
	{19, 22}, {21, 23}, {22, 25}, {23, 24}, {24, 25}, {25, 26},
}

// falconCoords places the Falcon on its standard two-rail heavy-hex drawing.
var falconCoords = []geom.Point{
	0:  {X: 0, Y: 3},
	1:  {X: 0, Y: 2},
	2:  {X: 0, Y: 1},
	3:  {X: 0, Y: 0},
	4:  {X: 1, Y: 2},
	5:  {X: 1, Y: 0},
	6:  {X: 2, Y: 3},
	7:  {X: 2, Y: 2},
	8:  {X: 2, Y: 0},
	9:  {X: 2, Y: -1},
	10: {X: 3, Y: 2},
	11: {X: 3, Y: 0},
	12: {X: 4, Y: 2},
	13: {X: 4, Y: 1},
	14: {X: 4, Y: 0},
	15: {X: 5, Y: 2},
	16: {X: 5, Y: 0},
	17: {X: 6, Y: 3},
	18: {X: 6, Y: 2},
	19: {X: 6, Y: 0},
	20: {X: 6, Y: -1},
	21: {X: 7, Y: 2},
	22: {X: 7, Y: 0},
	23: {X: 8, Y: 2},
	24: {X: 8, Y: 1},
	25: {X: 8, Y: 0},
	26: {X: 9, Y: 0},
}

// Falcon27 returns the IBM Falcon 27-qubit heavy-hex processor.
func Falcon27() *Device {
	g := graph.FromEdges(27, falconEdges)
	return mustDevice(&Device{
		Name:        "falcon",
		Description: "IBM Falcon heavy-hex processor, 27 qubits",
		NumQubits:   27,
		Graph:       g,
		Coords:      append([]geom.Point(nil), falconCoords...),
	})
}

// hexRow describes one long row of a heavy-hex lattice.
type hexRow struct {
	width  int
	offset int // column of the leftmost qubit
}

// heavyHex builds an IBM-style heavy-hex lattice: long rows of qubits
// interleaved with short rows of vertical connectors. longRows gives each
// long row's width and column offset; connCols[r] lists the columns bridged
// between long rows r and r+1 (each column must carry a qubit in both rows).
// Qubits are numbered long row by long row, each followed by its connector
// row — the ibm_washington numbering convention.
func heavyHex(name, desc string, longRows []hexRow, connCols [][]int) *Device {
	var coords []geom.Point
	// rowQubit[r][col] = qubit id at (row r, column col).
	rowQubit := make([]map[int]int, len(longRows))
	next := 0
	addQubit := func(x, y float64) int {
		coords = append(coords, geom.Point{X: x, Y: y})
		next++
		return next - 1
	}

	type pendingLink struct{ conn, row, col int }
	var pending []pendingLink
	var edges [][2]int
	for r, spec := range longRows {
		rowQubit[r] = make(map[int]int)
		y := float64(-2 * r) // rows descend: long rows at even y
		prev := -1
		for i := 0; i < spec.width; i++ {
			col := spec.offset + i
			q := addQubit(float64(col), y)
			rowQubit[r][col] = q
			if prev >= 0 {
				edges = append(edges, [2]int{prev, q})
			}
			prev = q
		}
		if r < len(connCols) {
			yc := y - 1
			for _, col := range connCols[r] {
				c := addQubit(float64(col), yc)
				up, okUp := rowQubit[r][col]
				if !okUp {
					panic(fmt.Sprintf("%s: connector col %d missing upper qubit in row %d", name, col, r))
				}
				edges = append(edges, [2]int{up, c})
				// The matching lower edge is added once the next row exists.
				pending = append(pending, pendingLink{conn: c, row: r + 1, col: col})
			}
		}
	}
	for _, p := range pending {
		down, ok := rowQubit[p.row][p.col]
		if !ok {
			panic(fmt.Sprintf("%s: connector col %d missing lower qubit in row %d", name, p.col, p.row))
		}
		edges = append(edges, [2]int{p.conn, down})
	}

	g := graph.FromEdges(next, edges)
	return mustDevice(&Device{
		Name:        name,
		Description: desc,
		NumQubits:   next,
		Graph:       g,
		Coords:      coords,
	})
}

// Eagle127 returns the IBM Eagle 127-qubit heavy-hex processor: seven long
// rows (14, 15, 15, 15, 15, 15, 14 qubits) interleaved with six rows of four
// vertical connectors, 144 couplings in total (ibm_washington structure).
func Eagle127() *Device {
	return heavyHex("eagle", "IBM Eagle heavy-hex processor, 127 qubits",
		[]hexRow{{14, 0}, {15, 0}, {15, 0}, {15, 0}, {15, 0}, {15, 0}, {14, 1}},
		// Connector columns alternate between {0,4,8,12} and {2,6,10,14}.
		[][]int{
			{0, 4, 8, 12}, {2, 6, 10, 14}, {0, 4, 8, 12},
			{2, 6, 10, 14}, {0, 4, 8, 12}, {2, 6, 10, 14},
		})
}

// Hummingbird65 returns the IBM Hummingbird 65-qubit heavy-hex processor
// (ibmq_manhattan scale): five long rows (10, 11, 11, 11, 10 qubits)
// interleaved with four rows of three vertical connectors, 72 couplings.
func Hummingbird65() *Device {
	return heavyHex("hummingbird-65", "IBM Hummingbird heavy-hex processor, 65 qubits",
		[]hexRow{{10, 0}, {11, 0}, {11, 0}, {11, 0}, {10, 1}},
		[][]int{{0, 4, 8}, {2, 6, 10}, {0, 4, 8}, {2, 6, 10}})
}

// octagonLattice builds a rows×cols lattice of 8-qubit octagon rings with
// two couplings between facing vertices of adjacent octagons (the Rigetti
// Aspen family structure).
func octagonLattice(name, desc string, rows, cols int) *Device {
	const pitch = 3.0
	n := rows * cols * 8
	g := graph.New(n)
	coords := make([]geom.Point, n)
	// Vertex k of an octagon sits at angle 22.5° + 45°·k; radius chosen so
	// the facing vertices of adjacent octagons are one unit pitch apart.
	const radius = 1.0
	vert := func(oct, k int) int { return oct*8 + k }
	angle := func(k int) (float64, float64) {
		a := (22.5 + 45*float64(k)) * math.Pi / 180
		return math.Cos(a), math.Sin(a)
	}
	octID := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			o := octID(r, c)
			cx := float64(c) * pitch
			cy := float64(r) * pitch
			for k := 0; k < 8; k++ {
				dx, dy := angle(k)
				coords[vert(o, k)] = geom.Point{X: cx + radius*dx, Y: cy + radius*dy}
				g.AddEdge(vert(o, k), vert(o, (k+1)%8))
			}
			// Right neighbour: my right side (k=0 top-right, k=7
			// bottom-right) to its left side (k=3 top-left, k=4 bottom-left).
			if c+1 < cols {
				g.AddEdge(vert(o, 0), vert(octID(r, c+1), 3))
				g.AddEdge(vert(o, 7), vert(octID(r, c+1), 4))
			}
			// Upper neighbour: my top side (k=1 right-top, k=2 left-top) to
			// its bottom side (k=6 right-bottom, k=5 left-bottom).
			if r+1 < rows {
				g.AddEdge(vert(o, 1), vert(octID(r+1, c), 6))
				g.AddEdge(vert(o, 2), vert(octID(r+1, c), 5))
			}
		}
	}
	return mustDevice(&Device{
		Name:        name,
		Description: desc,
		NumQubits:   n,
		Graph:       g,
		Coords:      coords,
	})
}

// Aspen11 returns the Rigetti Aspen-11 processor: five octagons in a row,
// 40 qubits and 48 couplings.
func Aspen11() *Device {
	return octagonLattice("aspen11", "Rigetti Aspen-11 octagon processor, 40 qubits", 1, 5)
}

// AspenM returns the Rigetti Aspen-M processor: a 2×5 octagon lattice,
// 80 qubits and 106 couplings.
func AspenM() *Device {
	return octagonLattice("aspenm", "Rigetti Aspen-M octagon processor, 80 qubits", 2, 5)
}

// OctagonRC returns a rows×cols octagon lattice named name — the Rigetti
// Aspen family generalized (octagon-1x5 is Aspen-11, octagon-2x5 Aspen-M;
// see Parse). An R×C lattice has 8·R·C qubits.
func OctagonRC(name string, rows, cols int) *Device {
	return octagonLattice(name,
		fmt.Sprintf("Rigetti-style %dx%d octagon lattice, %d qubits", rows, cols, rows*cols*8),
		rows, cols)
}

// XtreeSize returns the qubit count of the X-tree built from a per-level
// children schedule.
func XtreeSize(schedule []int) int {
	n, level := 1, 1
	for _, c := range schedule {
		level *= c
		n += level
	}
	return n
}

// xtree builds an X-tree from a per-level children schedule: the root (level
// 0) has schedule[0] children, every level-1 node schedule[1], and so on;
// nodes past the schedule are leaves. Nodes are numbered breadth-first and
// drawn layered: leaves evenly spaced at the bottom, parents centred over
// their children.
func xtree(name, desc string, schedule []int) *Device {
	if len(schedule) == 0 {
		panic("topology: xtree needs at least one level")
	}
	n := XtreeSize(schedule)
	g := graph.New(n)
	coords := make([]geom.Point, n)
	next := 0
	newNode := func() int { next++; return next - 1 }

	root := newNode()
	type node struct {
		id    int
		level int
	}
	frontier := []node{{root, 0}}
	var leaves []int
	parent := make([]int, n)
	parent[root] = -1
	for len(frontier) > 0 {
		cur := frontier[0]
		frontier = frontier[1:]
		cc := 0
		if cur.level < len(schedule) {
			cc = schedule[cur.level]
		}
		if cc == 0 {
			leaves = append(leaves, cur.id)
			continue
		}
		for i := 0; i < cc; i++ {
			ch := newNode()
			parent[ch] = cur.id
			g.AddEdge(cur.id, ch)
			frontier = append(frontier, node{ch, cur.level + 1})
		}
	}
	if next != n {
		panic(fmt.Sprintf("xtree: generated %d nodes, want %d", next, n))
	}

	// Layered tree drawing: leaves evenly spaced at the bottom, parents
	// centred over their children.
	depth := func(q int) int {
		d := 0
		for p := parent[q]; p >= 0; p = parent[p] {
			d++
		}
		return d
	}
	sort.Ints(leaves)
	xPos := make([]float64, n)
	havePos := make([]bool, n)
	for i, l := range leaves {
		xPos[l] = float64(i * 2)
		havePos[l] = true
	}
	// Propagate upward (children have larger ids than parents, so a reverse
	// sweep sees all children before each parent).
	childSum := make([]float64, n)
	childN := make([]int, n)
	for q := n - 1; q >= 0; q-- {
		if !havePos[q] {
			if childN[q] == 0 {
				panic("xtree: interior node without positioned children")
			}
			xPos[q] = childSum[q] / float64(childN[q])
			havePos[q] = true
		}
		if p := parent[q]; p >= 0 {
			childSum[p] += xPos[q]
			childN[p]++
		}
	}
	maxDepth := len(schedule)
	for q := 0; q < n; q++ {
		coords[q] = geom.Point{X: xPos[q], Y: float64(maxDepth-depth(q)) * 2}
	}
	return mustDevice(&Device{
		Name:        name,
		Description: desc,
		NumQubits:   n,
		Graph:       g,
		Coords:      coords,
	})
}

// xtree53Schedule is the paper's level-3 X-tree branching: a root with four
// children, each with four children, each of which has two leaves
// (1 + 4 + 16 + 32 = 53). The generic family (see XtreeSchedule) branches
// 4-then-3 instead; both hit 53 qubits at depth 3, and this legacy shape is
// kept so the "xtree"/"xtree-53" devices stay byte-identical across releases.
var xtree53Schedule = []int{4, 4, 2}

// XtreeSchedule returns the per-level children schedule of the depth-d
// member of the parametric X-tree family: the root has four children and
// every later interior node three (each non-root interior vertex has degree
// 4), giving 5, 17, 53, 161, ... qubits at depths 1, 2, 3, 4. Depth 3 uses
// the legacy 4-4-2 schedule (also 53 qubits) for corpus compatibility.
func XtreeSchedule(depth int) []int {
	if depth < 1 {
		panic("topology: xtree depth must be >= 1")
	}
	if depth == 3 {
		return append([]int(nil), xtree53Schedule...)
	}
	s := make([]int, depth)
	s[0] = 4
	for i := 1; i < depth; i++ {
		s[i] = 3
	}
	return s
}

// XtreeDepth returns the depth-d X-tree named name (the parametric family:
// xtree-5, xtree-17, xtree-53, ...; see Parse).
func XtreeDepth(name string, depth int) *Device {
	schedule := XtreeSchedule(depth)
	return xtree(name,
		fmt.Sprintf("Pauli-string efficient X-tree (level %d), %d qubits", depth, XtreeSize(schedule)),
		schedule)
}

// Xtree53 returns the level-3 X-tree of Li et al. (Pauli-string-efficient
// architecture): a root with four children, each with four children, each of
// which has two leaves — 1 + 4 + 16 + 32 = 53 qubits, 52 couplings.
func Xtree53() *Device {
	return xtree("xtree", "Pauli-string efficient X-tree (level 3), 53 qubits", xtree53Schedule)
}

// All returns the six evaluation topologies in the paper's Table I order.
func All() []*Device {
	return []*Device{
		Grid25(), Falcon27(), Eagle127(), Aspen11(), AspenM(), Xtree53(),
	}
}

// Builtin returns the paper's six device names in Table I order. The
// registry (see Register) may hold more.
func Builtin() []string {
	return []string{"grid", "falcon", "eagle", "aspen11", "aspenm", "xtree"}
}
