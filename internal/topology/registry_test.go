package topology

import (
	"errors"
	"testing"

	"qplacer/internal/geom"
	"qplacer/internal/graph"
	"qplacer/internal/testutil"
)

func lineDevice(name string, n int) *Device {
	g := graph.New(n)
	coords := make([]geom.Point, n)
	for i := 0; i < n; i++ {
		coords[i] = geom.Point{X: float64(i)}
		if i+1 < n {
			g.AddEdge(i, i+1)
		}
	}
	return mustDevice(&Device{
		Name:        name,
		Description: "test line",
		NumQubits:   n,
		Graph:       g,
		Coords:      coords,
	})
}

func TestRegisterAndByName(t *testing.T) {
	name := testutil.UniqueName(t)
	if err := Register(name, func() *Device { return lineDevice(name, 5) }); err != nil {
		t.Fatal(err)
	}
	d, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	if d.Name != name || d.NumQubits != 5 {
		t.Fatalf("ByName returned %s with %d qubits", d.Name, d.NumQubits)
	}
	found := false
	for _, n := range Names() {
		if n == name {
			found = true
		}
	}
	if !found {
		t.Fatalf("Names() = %v is missing %q", Names(), name)
	}
}

func TestRegisterRejectsDuplicates(t *testing.T) {
	name := testutil.UniqueName(t)
	gen := func() *Device { return lineDevice(name, 3) }
	if err := Register(name, gen); err != nil {
		t.Fatal(err)
	}
	err := Register(name, gen)
	if !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate registration error = %v, want ErrDuplicate", err)
	}
	// Built-in names are protected by the same path.
	if err := Register("grid", gen); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("registering over built-in grid: %v, want ErrDuplicate", err)
	}
}

func TestRegisterRejectsInvalid(t *testing.T) {
	if err := Register("", func() *Device { return lineDevice("x", 2) }); err == nil {
		t.Fatal("empty name must fail")
	}
	if err := Register(testutil.UniqueName(t), nil); err == nil {
		t.Fatal("nil generator must fail")
	}
}

func TestByNameUnknown(t *testing.T) {
	_, err := ByName("registry-test-bogus")
	if !errors.Is(err, ErrUnknown) {
		t.Fatalf("unknown lookup error = %v, want ErrUnknown", err)
	}
}

func TestBuiltinsRegistered(t *testing.T) {
	for _, name := range Builtin() {
		d, err := ByName(name)
		if err != nil {
			t.Fatalf("built-in %q: %v", name, err)
		}
		if err := d.Validate(); err != nil {
			t.Fatalf("built-in %q invalid: %v", name, err)
		}
	}
}
