package topology

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Generator constructs a fresh Device. Generators must return a validated
// device whose Name matches the name it was registered under; returning a
// new value per call keeps callers free to treat each device independently.
type Generator func() *Device

// ErrUnknown is returned (wrapped) by ByName for unregistered names.
var ErrUnknown = errors.New("topology: unknown device")

// ErrDuplicate is returned (wrapped) by Register when the name is taken.
var ErrDuplicate = errors.New("topology: duplicate device name")

var (
	regMu    sync.RWMutex
	registry = map[string]Generator{}
)

// Register adds a device generator under the given name. The six Table I
// topologies are registered this way at init; callers may add custom
// topologies at runtime to open scenarios beyond the paper's devices.
// Registering an empty name, a nil generator, or a taken name fails.
func Register(name string, gen Generator) error {
	if name == "" {
		return fmt.Errorf("topology: register with empty name")
	}
	if gen == nil {
		return fmt.Errorf("topology: register %q with nil generator", name)
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, ok := registry[name]; ok {
		return fmt.Errorf("%w %q", ErrDuplicate, name)
	}
	registry[name] = gen
	return nil
}

// mustRegister registers a built-in generator and panics on conflict.
func mustRegister(name string, gen Generator) {
	if err := Register(name, gen); err != nil {
		panic(err)
	}
}

// ByName generates the named device. Registered names (built-in aliases and
// runtime registrations) win; anything else is resolved through the
// parametric-family parser (see Parse), so grid-64 or xtree-17 works
// anywhere a topology name is accepted. The error wraps ErrUnknown when the
// name is neither registered nor a valid family member.
func ByName(name string) (*Device, error) {
	regMu.RLock()
	gen, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return Parse(name)
	}
	d := gen()
	if d == nil {
		return nil, fmt.Errorf("topology: generator for %q returned nil", name)
	}
	return d, nil
}

// Names returns every registered device name, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// The six Table I names are exact aliases of parametric-family members (see
// Aliases: grid = grid-25, aspen11 = octagon-1x5, aspenm = octagon-2x5,
// xtree = xtree-53) kept registered under their legacy names so existing
// corpora — including the device Name field — stay byte-identical.
func init() {
	mustRegister("grid", Grid25)
	mustRegister("falcon", Falcon27)
	mustRegister("eagle", Eagle127)
	mustRegister("aspen11", Aspen11)
	mustRegister("aspenm", AspenM)
	mustRegister("xtree", Xtree53)
}
