package topology

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Generator constructs a fresh Device. Generators must return a validated
// device whose Name matches the name it was registered under; returning a
// new value per call keeps callers free to treat each device independently.
type Generator func() *Device

// ErrUnknown is returned (wrapped) by ByName for unregistered names.
var ErrUnknown = errors.New("topology: unknown device")

// ErrDuplicate is returned (wrapped) by Register when the name is taken.
var ErrDuplicate = errors.New("topology: duplicate device name")

var (
	regMu    sync.RWMutex
	registry = map[string]Generator{}
)

// Register adds a device generator under the given name. The six Table I
// topologies are registered this way at init; callers may add custom
// topologies at runtime to open scenarios beyond the paper's devices.
// Registering an empty name, a nil generator, or a taken name fails.
func Register(name string, gen Generator) error {
	if name == "" {
		return fmt.Errorf("topology: register with empty name")
	}
	if gen == nil {
		return fmt.Errorf("topology: register %q with nil generator", name)
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, ok := registry[name]; ok {
		return fmt.Errorf("%w %q", ErrDuplicate, name)
	}
	registry[name] = gen
	return nil
}

// mustRegister registers a built-in generator and panics on conflict.
func mustRegister(name string, gen Generator) {
	if err := Register(name, gen); err != nil {
		panic(err)
	}
}

// ByName generates the named device. The error wraps ErrUnknown when no
// generator is registered under the name.
func ByName(name string) (*Device, error) {
	regMu.RLock()
	gen, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w %q", ErrUnknown, name)
	}
	d := gen()
	if d == nil {
		return nil, fmt.Errorf("topology: generator for %q returned nil", name)
	}
	return d, nil
}

// Names returns every registered device name, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func init() {
	mustRegister("grid", Grid25)
	mustRegister("falcon", Falcon27)
	mustRegister("eagle", Eagle127)
	mustRegister("aspen11", Aspen11)
	mustRegister("aspenm", AspenM)
	mustRegister("xtree", Xtree53)
}
