package topology

import (
	"errors"
	"reflect"
	"strings"
	"testing"
)

// The parametric families must hit the reference pipeline's sweep sizes
// (grid-4/25/64, hummingbird-65, Aspen-11/M as octagons, xtree-5/17/53).
func TestParseFamilySizes(t *testing.T) {
	cases := []struct {
		name   string
		qubits int
		edges  int
	}{
		{"grid-4", 4, 4},
		{"grid-25", 25, 40},
		{"grid-64", 64, 112},
		{"grid-3x7", 21, 32},
		{"octagon-1x5", 40, 48},
		{"octagon-2x5", 80, 106},
		{"octagon-5x8", 320, 454},
		{"xtree-5", 5, 4},
		{"xtree-17", 17, 16},
		{"xtree-53", 53, 52},
		{"hummingbird-65", 65, 72},
	}
	for _, tc := range cases {
		d, err := Parse(tc.name)
		if err != nil {
			t.Errorf("Parse(%q): %v", tc.name, err)
			continue
		}
		if d.Name != tc.name {
			t.Errorf("Parse(%q).Name = %q", tc.name, d.Name)
		}
		if d.NumQubits != tc.qubits || d.NumEdges() != tc.edges {
			t.Errorf("%s: %d qubits / %d edges, want %d / %d",
				tc.name, d.NumQubits, d.NumEdges(), tc.qubits, tc.edges)
		}
		if err := d.Validate(); err != nil {
			t.Errorf("%s: %v", tc.name, err)
		}
	}
}

// Every built-in alias must be structurally identical to its canonical
// parametric member: same edges, same coordinates, only the Name differs.
func TestAliasesMatchCanonical(t *testing.T) {
	for alias, canonical := range Aliases() {
		a, err := ByName(alias)
		if err != nil {
			t.Fatalf("%s: %v", alias, err)
		}
		c, err := ByName(canonical)
		if err != nil {
			t.Fatalf("%s: %v", canonical, err)
		}
		if a.NumQubits != c.NumQubits {
			t.Errorf("%s vs %s: %d vs %d qubits", alias, canonical, a.NumQubits, c.NumQubits)
		}
		if !reflect.DeepEqual(a.Edges(), c.Edges()) {
			t.Errorf("%s vs %s: edge sets differ", alias, canonical)
		}
		if !reflect.DeepEqual(a.Coords, c.Coords) {
			t.Errorf("%s vs %s: coordinates differ", alias, canonical)
		}
	}
}

func TestParseRejectsBadNames(t *testing.T) {
	for _, name := range []string{
		"grid", "grid-", "grid-1", "grid-0x5", "grid-9999999", "grid-axb",
		"xtree-4", "xtree-21", "xtree-0", "xtree-9999999",
		"octagon-0x5", "octagon-99x99",
		"hummingbird-64", "falcon-27", "warbler-9", "",
	} {
		if _, err := Parse(name); !errors.Is(err, ErrUnknown) {
			t.Errorf("Parse(%q) = %v, want ErrUnknown", name, err)
		}
	}
}

func TestByNameFallsBackToParser(t *testing.T) {
	d, err := ByName("grid-36")
	if err != nil || d.Name != "grid-36" || d.NumQubits != 36 {
		t.Fatalf("ByName(grid-36) = %v, %v", d, err)
	}
	if _, err := ByName("grid-notanumber"); !errors.Is(err, ErrUnknown) {
		t.Errorf("bad parametric name must wrap ErrUnknown, got %v", err)
	}
}

func TestXtreeScheduleSeries(t *testing.T) {
	wantSizes := []int{5, 17, 53, 161}
	for i, want := range wantSizes {
		if got := XtreeSize(XtreeSchedule(i + 1)); got != want {
			t.Errorf("depth %d: %d qubits, want %d", i+1, got, want)
		}
	}
	// Depth 3 must keep the legacy 4-4-2 branching.
	if got := XtreeSchedule(3); !reflect.DeepEqual(got, []int{4, 4, 2}) {
		t.Errorf("depth-3 schedule = %v, want the legacy [4 4 2]", got)
	}
}

func TestHummingbirdHeavyHexInvariants(t *testing.T) {
	d := Hummingbird65()
	for q := 0; q < d.NumQubits; q++ {
		if deg := d.Graph.Degree(q); deg > 3 {
			t.Errorf("qubit %d degree %d > 3", q, deg)
		}
	}
	if ok, _ := d.Graph.Bipartite(); !ok {
		t.Error("heavy-hex lattice must be bipartite")
	}
	if !d.Graph.Connected() {
		t.Error("disconnected")
	}
}

func TestCatalog(t *testing.T) {
	infos := Catalog()
	byName := map[string]Info{}
	for _, in := range infos {
		if in.Qubits <= 0 || in.Edges <= 0 {
			t.Errorf("%s: empty counts %+v", in.Name, in)
		}
		byName[in.Name] = in
	}
	for alias, canonical := range Aliases() {
		in, ok := byName[alias]
		if !ok {
			t.Fatalf("catalog is missing built-in %q", alias)
		}
		if in.Canonical != canonical {
			t.Errorf("%s: canonical = %q, want %q", alias, in.Canonical, canonical)
		}
	}
	hb, ok := byName["hummingbird-65"]
	if !ok || hb.Qubits != 65 {
		t.Errorf("catalog must list hummingbird-65 (got %+v, present %v)", hb, ok)
	}
	if g := byName["grid"]; g.Family != "grid" || g.Qubits != 25 || g.Edges != 40 {
		t.Errorf("grid entry = %+v", g)
	}
	if x := byName["xtree"]; x.Canonical != "xtree-53" {
		t.Errorf("xtree must report its canonical parametric name, got %+v", x)
	}
}

func TestFamiliesCatalogueResolvesExamples(t *testing.T) {
	for _, f := range Families() {
		if f.Schema == "" || f.Description == "" || len(f.Examples) == 0 {
			t.Errorf("family %q underspecified: %+v", f.Name, f)
		}
		for _, ex := range f.Examples {
			if !strings.HasPrefix(ex, f.Name+"-") {
				t.Errorf("family %q example %q has the wrong prefix", f.Name, ex)
			}
			if _, err := Parse(ex); err != nil {
				t.Errorf("family %q example %q does not parse: %v", f.Name, ex, err)
			}
		}
	}
}
