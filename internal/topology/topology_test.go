package topology

import (
	"testing"

	"qplacer/internal/geom"
)

// Table I ground truth: qubit and coupling counts per topology.
func TestTableICounts(t *testing.T) {
	cases := []struct {
		dev    *Device
		qubits int
		edges  int
	}{
		{Grid25(), 25, 40},
		{Falcon27(), 27, 28},
		{Eagle127(), 127, 144},
		{Aspen11(), 40, 48},
		{AspenM(), 80, 106},
		{Xtree53(), 53, 52},
	}
	for _, tc := range cases {
		if tc.dev.NumQubits != tc.qubits {
			t.Errorf("%s: %d qubits, want %d", tc.dev.Name, tc.dev.NumQubits, tc.qubits)
		}
		if got := tc.dev.NumEdges(); got != tc.edges {
			t.Errorf("%s: %d edges, want %d", tc.dev.Name, got, tc.edges)
		}
	}
}

func TestAllDevicesValidateAndConnect(t *testing.T) {
	for _, d := range All() {
		if err := d.Validate(); err != nil {
			t.Errorf("%s: %v", d.Name, err)
		}
		if !d.Graph.Connected() {
			t.Errorf("%s: disconnected", d.Name)
		}
	}
}

func TestHeavyHexDegreeBound(t *testing.T) {
	// Heavy-hex lattices have maximum degree 3.
	for _, d := range []*Device{Falcon27(), Eagle127()} {
		for q := 0; q < d.NumQubits; q++ {
			if deg := d.Graph.Degree(q); deg > 3 {
				t.Errorf("%s: qubit %d degree %d > 3", d.Name, q, deg)
			}
		}
	}
}

func TestHeavyHexBipartite(t *testing.T) {
	for _, d := range []*Device{Grid25(), Falcon27(), Eagle127(), Xtree53()} {
		if ok, _ := d.Graph.Bipartite(); !ok {
			t.Errorf("%s: expected bipartite", d.Name)
		}
	}
}

func TestOctagonDegrees(t *testing.T) {
	// Octagon lattice qubits have degree 2 (ring only) or 3 (ring + one
	// inter-octagon link).
	for _, d := range []*Device{Aspen11(), AspenM()} {
		for q := 0; q < d.NumQubits; q++ {
			deg := d.Graph.Degree(q)
			if deg < 2 || deg > 3 {
				t.Errorf("%s: qubit %d degree %d outside [2,3]", d.Name, q, deg)
			}
		}
	}
}

func TestXtreeIsTree(t *testing.T) {
	d := Xtree53()
	if d.NumEdges() != d.NumQubits-1 {
		t.Fatalf("xtree edges = %d, want n-1 = %d", d.NumEdges(), d.NumQubits-1)
	}
	// Root (qubit 0) has degree 4; leaves have degree 1; exactly 32 leaves.
	if d.Graph.Degree(0) != 4 {
		t.Errorf("root degree = %d, want 4", d.Graph.Degree(0))
	}
	leaves := 0
	for q := 0; q < d.NumQubits; q++ {
		if d.Graph.Degree(q) == 1 {
			leaves++
		}
	}
	if leaves != 32 {
		t.Errorf("leaves = %d, want 32", leaves)
	}
}

func TestFalconPendants(t *testing.T) {
	// The published Falcon map has six degree-1 qubits: 0, 6, 9, 17, 20, 26.
	d := Falcon27()
	want := map[int]bool{0: true, 6: true, 9: true, 17: true, 20: true, 26: true}
	for q := 0; q < d.NumQubits; q++ {
		isPendant := d.Graph.Degree(q) == 1
		if isPendant != want[q] {
			t.Errorf("qubit %d: pendant = %v, want %v", q, isPendant, want[q])
		}
	}
}

func TestCoordsMatchEdgesRoughly(t *testing.T) {
	// Coupled qubits must be near each other in the canonical drawing
	// (sanity for the Human baseline): for the grid-like devices at unit
	// pitch, every edge spans at most 2.5 units.
	for _, d := range []*Device{Grid25(), Falcon27(), Eagle127(), Aspen11(), AspenM()} {
		for _, e := range d.Edges() {
			dist := d.Coords[e[0]].Dist(d.Coords[e[1]])
			if dist > 2.5 {
				t.Errorf("%s: edge %v spans %.2f units", d.Name, e, dist)
			}
		}
	}
}

func TestEagleRowStructure(t *testing.T) {
	d := Eagle127()
	// Count qubits per y level: long rows at even negative y, connectors odd.
	rows := map[float64]int{}
	for _, p := range d.Coords {
		rows[p.Y]++
	}
	wantRows := map[float64]int{
		0: 14, -2: 15, -4: 15, -6: 15, -8: 15, -10: 15, -12: 14,
		-1: 4, -3: 4, -5: 4, -7: 4, -9: 4, -11: 4,
	}
	for y, n := range wantRows {
		if rows[y] != n {
			t.Errorf("eagle row y=%v has %d qubits, want %d", y, rows[y], n)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"grid", "falcon", "eagle", "aspen11", "aspenm", "xtree"} {
		d, err := ByName(name)
		if err != nil || d.Name != name {
			t.Errorf("ByName(%q) = %v, %v", name, d, err)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown name must error")
	}
}

func TestValidateCatchesDuplicateCoords(t *testing.T) {
	d := Grid25()
	d.Coords[1] = d.Coords[0]
	if err := d.Validate(); err == nil {
		t.Error("duplicate coordinates must fail validation")
	}
}

func TestValidateCatchesSizeMismatch(t *testing.T) {
	d := Grid25()
	d.Coords = d.Coords[:10]
	if err := d.Validate(); err == nil {
		t.Error("coordinate count mismatch must fail validation")
	}
}

func TestEdgesSortedAndInRange(t *testing.T) {
	for _, d := range All() {
		edges := d.Edges()
		for i, e := range edges {
			if e[0] >= e[1] || e[0] < 0 || e[1] >= d.NumQubits {
				t.Errorf("%s: bad edge %v", d.Name, e)
			}
			if i > 0 && (edges[i-1][0] > e[0] ||
				(edges[i-1][0] == e[0] && edges[i-1][1] > e[1])) {
				t.Errorf("%s: edges not sorted at %d", d.Name, i)
			}
		}
	}
}

func TestCanonicalSpanIsFinite(t *testing.T) {
	for _, d := range All() {
		rects := make([]geom.Rect, len(d.Coords))
		for i, p := range d.Coords {
			rects[i] = geom.RectAt(p, 0.1, 0.1)
		}
		enc, ok := geom.EnclosingRect(rects)
		if !ok || enc.Area() <= 0 {
			t.Errorf("%s: degenerate canonical span", d.Name)
		}
	}
}
