package qplacer

import (
	"fmt"

	"qplacer/internal/circuit"
	"qplacer/internal/geom"
	"qplacer/internal/graph"
	"qplacer/internal/topology"
)

// TopologySpec describes a custom device topology for RegisterTopology:
// a connected coupling graph plus canonical planar coordinates (unit pitch,
// one distinct point per qubit) used for the initial and Human layouts.
type TopologySpec struct {
	Name        string
	Description string
	NumQubits   int
	Edges       [][2]int     // coupling edges over qubit indices
	Coords      [][2]float64 // canonical {x, y} per qubit
}

// RegisterTopology makes a custom device topology available to every engine
// under spec.Name, exactly like the built-in Table I devices. The spec is
// deep-copied and validated here, then rebuilt per lookup, so the caller may
// freely reuse its slices afterwards. Duplicate names wrap
// ErrDuplicateTopology.
func RegisterTopology(spec TopologySpec) error {
	spec.Edges = append([][2]int(nil), spec.Edges...)
	spec.Coords = append([][2]float64(nil), spec.Coords...)
	if _, err := buildDevice(spec); err != nil {
		return err
	}
	return topology.Register(spec.Name, func() *topology.Device {
		d, err := buildDevice(spec)
		if err != nil {
			panic(err) // validated at registration over the private copy
		}
		return d
	})
}

func buildDevice(spec TopologySpec) (*topology.Device, error) {
	if spec.NumQubits <= 0 {
		return nil, fmt.Errorf("qplacer: topology %q has %d qubits", spec.Name, spec.NumQubits)
	}
	if len(spec.Coords) != spec.NumQubits {
		return nil, fmt.Errorf("qplacer: topology %q has %d coords for %d qubits",
			spec.Name, len(spec.Coords), spec.NumQubits)
	}
	for _, e := range spec.Edges {
		if e[0] < 0 || e[0] >= spec.NumQubits || e[1] < 0 || e[1] >= spec.NumQubits {
			return nil, fmt.Errorf("qplacer: topology %q edge %v out of range", spec.Name, e)
		}
	}
	coords := make([]geom.Point, spec.NumQubits)
	for i, c := range spec.Coords {
		coords[i] = geom.Point{X: c[0], Y: c[1]}
	}
	d := &topology.Device{
		Name:        spec.Name,
		Description: spec.Description,
		NumQubits:   spec.NumQubits,
		Graph:       graph.FromEdges(spec.NumQubits, spec.Edges),
		Coords:      coords,
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

// GateSpec is one operation of a custom benchmark circuit. Supported names
// follow the fixed-frequency transmon gate set: any single-qubit rotation
// label with one operand, or a two-qubit gate (e.g. "cz") with two.
type GateSpec struct {
	Name   string
	Qubits []int // 1 or 2 logical qubit indices
}

// BenchmarkSpec describes a custom benchmark circuit for RegisterBenchmark.
type BenchmarkSpec struct {
	Name      string
	NumQubits int
	Gates     []GateSpec
}

// RegisterBenchmark makes a custom benchmark available to every engine under
// spec.Name, exactly like the built-in Table I workloads. The spec is
// deep-copied and validated here, so the caller may freely reuse its slices
// afterwards; duplicate names wrap ErrDuplicateBenchmark.
func RegisterBenchmark(spec BenchmarkSpec) error {
	gates := make([]GateSpec, len(spec.Gates))
	for i, g := range spec.Gates {
		gates[i] = GateSpec{Name: g.Name, Qubits: append([]int(nil), g.Qubits...)}
	}
	spec.Gates = gates
	if _, err := buildCircuit(spec); err != nil {
		return err
	}
	return circuit.Register(circuit.Benchmark{
		Name:   spec.Name,
		Qubits: spec.NumQubits,
		Build: func() *circuit.Circuit {
			c, err := buildCircuit(spec)
			if err != nil {
				panic(err) // validated at registration over the private copy
			}
			return c
		},
	})
}

func buildCircuit(spec BenchmarkSpec) (*circuit.Circuit, error) {
	if spec.NumQubits < 1 {
		return nil, fmt.Errorf("qplacer: benchmark %q has %d qubits", spec.Name, spec.NumQubits)
	}
	c := &circuit.Circuit{Name: spec.Name, NumQubits: spec.NumQubits}
	for _, g := range spec.Gates {
		c.Gates = append(c.Gates, circuit.Gate{
			Name:   g.Name,
			Qubits: append([]int(nil), g.Qubits...),
		})
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

// RegisteredTopologies returns every registered topology name, sorted —
// built-ins plus RegisterTopology additions. Parametric family members
// (grid-64, xtree-17, ...) resolve without registration and are not listed;
// see Topologies and TopologyFamilies for the discovery surfaces.
func RegisteredTopologies() []string {
	return topology.Names()
}

// RegisteredBenchmarks returns every registered benchmark name, sorted —
// built-ins plus RegisterBenchmark additions.
func RegisteredBenchmarks() []string {
	return circuit.Names()
}

// TopologyInfo describes one resolvable topology: its qubit and coupling
// counts, plus alias/family cross-references where they apply.
type TopologyInfo = topology.Info

// TopologyFamily describes one parametric topology family: its name-pattern
// schema and examples that resolve anywhere a topology name is accepted.
type TopologyFamily = topology.Family

// TopologyCatalog returns a TopologyInfo for every resolvable topology — the
// registered names (built-ins, legacy aliases, runtime registrations) plus
// the parser-only canonical family members — sorted by name.
func TopologyCatalog() []TopologyInfo {
	return topology.Catalog()
}

// TopologyFamilies returns the parametric family catalogue: for each family,
// the accepted name schema (e.g. "grid-<n> | grid-<r>x<c>") and resolvable
// examples.
func TopologyFamilies() []TopologyFamily {
	return topology.Families()
}

// ResolveTopology resolves name the way the engine does — the registry
// (built-ins, legacy aliases, runtime registrations) first, then the
// parametric family parser — and returns the device's qubit and coupling
// counts. Unresolvable names wrap ErrUnknownTopology. Use it to validate a
// topology name without running the pipeline.
func ResolveTopology(name string) (TopologyInfo, error) {
	d, err := topology.ByName(name)
	if err != nil {
		return TopologyInfo{}, err
	}
	return TopologyInfo{
		Name:        d.Name,
		Qubits:      d.NumQubits,
		Edges:       d.Graph.M(),
		Description: d.Description,
	}, nil
}

// BenchmarkInfo describes one registered benchmark circuit.
type BenchmarkInfo struct {
	Name   string `json:"name"`
	Qubits int    `json:"qubits"`
}

// BenchmarkCatalog returns a BenchmarkInfo for every registered benchmark,
// sorted by name.
func BenchmarkCatalog() []BenchmarkInfo {
	names := circuit.Names()
	out := make([]BenchmarkInfo, 0, len(names))
	for _, n := range names {
		b, err := circuit.ByName(n)
		if err != nil {
			continue // racing unregistration; skip rather than fail discovery
		}
		out = append(out, BenchmarkInfo{Name: b.Name, Qubits: b.Qubits})
	}
	return out
}
