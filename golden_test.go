package qplacer

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The golden-corpus regression harness: checked-in fixtures pin the exact
// deterministic output — normalized options, layout metrics, validation
// verdict, and per-benchmark fidelity — of every built-in placer × legalizer
// combination on the fast topologies. Any backend whose output drifts or
// regresses fails here before it can serve a single bad layout.
//
// Regenerate after an intentional behaviour change with:
//
//	go test -run TestGoldenCorpus -update .
//
// Regeneration is idempotent: the pipeline is seeded and the encoder is
// deterministic, so running -update twice produces identical bytes.

var updateGolden = flag.Bool("update", false, "rewrite testdata/golden fixtures")

// goldenMappings keeps fixture evaluation fast while still pinning the
// fidelity pipeline; goldenIters is enough global placement for both
// legalizers to produce clean layouts on the fast topologies.
const (
	goldenMappings = 2
	goldenIters    = 40
)

type goldenMetrics struct {
	Amer           float64 `json:"amer_mm2"`
	Apoly          float64 `json:"apoly_mm2"`
	Utilization    float64 `json:"utilization"`
	PhPercent      float64 `json:"ph_percent"`
	Violations     int     `json:"violations"`
	ImpactedQubits []int   `json:"impacted_qubits"`
}

type goldenValidation struct {
	Valid    bool `json:"valid"`
	Errors   int  `json:"errors"`
	Warnings int  `json:"warnings"`
}

type goldenEval struct {
	Benchmark    string  `json:"benchmark"`
	MeanFidelity float64 `json:"mean_fidelity"`
	MinFidelity  float64 `json:"min_fidelity"`
	MaxFidelity  float64 `json:"max_fidelity"`
}

type goldenFixture struct {
	Options         Options          `json:"options"`
	NumCells        int              `json:"num_cells"`
	PlaceIterations int              `json:"place_iterations"`
	Integrated      bool             `json:"integrated"`
	Metrics         goldenMetrics    `json:"metrics"`
	Validation      goldenValidation `json:"validation"`
	Evaluations     []goldenEval     `json:"evaluations"`
}

// goldenCombos enumerates every topology × placer × legalizer combination in
// the corpus: all 4 built-in backend pairs on both fast topologies. These
// predate the detailed-placement stage and leave DetailedPlacer unset, which
// normalizes to the identity stage — their fixtures must stay byte-identical
// forever (see TestGoldenCorpusDetailedNone).
func goldenCombos() []Options {
	var out []Options
	for _, topo := range []string{"grid", "falcon"} {
		for _, placer := range []string{"nesterov", "anneal"} {
			for _, legalizer := range []string{"shelf", "greedy"} {
				out = append(out, Options{
					Topology:  topo,
					Placer:    placer,
					Legalizer: legalizer,
					MaxIters:  goldenIters,
				})
			}
		}
	}
	return out
}

// goldenDetailedCombos pins the non-identity detailed placers on both fast
// topologies (default placer/legalizer pair).
func goldenDetailedCombos() []Options {
	var out []Options
	for _, topo := range []string{"grid", "falcon"} {
		for _, detailed := range []string{"mcmf", "swap"} {
			out = append(out, Options{
				Topology:       topo,
				Placer:         "nesterov",
				Legalizer:      "shelf",
				DetailedPlacer: detailed,
				MaxIters:       goldenIters,
			})
		}
	}
	return out
}

func goldenName(o Options) string {
	name := fmt.Sprintf("%s_%s_%s", o.Topology, o.Placer, o.Legalizer)
	if o.DetailedPlacer != "" && o.DetailedPlacer != DefaultDetailedPlacerName {
		name += "_" + o.DetailedPlacer
	}
	return name
}

// loadFixture reads one corpus file and canonicalizes its options in memory:
// fixtures written before the detailed-placement stage omit detailed_placer,
// which is the disk form of the default identity stage. The files themselves
// are never rewritten — byte-identity of the legacy corpus is itself under
// test — only the in-memory comparison form is filled.
func loadFixture(t *testing.T, path string) goldenFixture {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with: go test -run TestGoldenCorpus -update .)", err)
	}
	var want goldenFixture
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("corrupt fixture %s: %v", path, err)
	}
	if want.Options.DetailedPlacer == "" {
		want.Options.DetailedPlacer = DefaultDetailedPlacerName
	}
	return want
}

// writeFixture is the -update writer. It strips the default "none" back to
// the empty string before encoding — the disk-canonical form omits the
// default via omitempty — so regeneration leaves every pre-stage fixture
// byte-identical to its checked-in form.
func writeFixture(t *testing.T, path string, fix goldenFixture) {
	t.Helper()
	if fix.Options.DetailedPlacer == DefaultDetailedPlacerName {
		fix.Options.DetailedPlacer = ""
	}
	data, err := json.MarshalIndent(fix, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}

// buildFixture runs the full deterministic pipeline for one combination and
// snapshots everything the corpus pins. Extra engine options let callers
// vary how the pipeline runs (e.g. parallelism) without changing what it
// must produce.
func buildFixture(t *testing.T, o Options, extra ...Option) goldenFixture {
	t.Helper()
	ctx := context.Background()
	eng := New(append([]Option{WithValidation(ValidationAnnotate)}, extra...)...)
	plan, err := eng.Plan(ctx, WithOptions(o))
	if err != nil {
		t.Fatal(err)
	}
	m := plan.Metrics
	fix := goldenFixture{
		Options:         plan.Options,
		NumCells:        plan.NumCells,
		PlaceIterations: plan.PlaceIterations,
		Integrated:      plan.Integrated,
		Metrics: goldenMetrics{
			Amer:           m.Amer,
			Apoly:          m.Apoly,
			Utilization:    m.Utilization,
			PhPercent:      m.Ph,
			Violations:     len(m.Violations),
			ImpactedQubits: append([]int{}, m.ImpactedQubits...),
		},
		Validation: goldenValidation{
			Valid:    plan.Validation.Valid,
			Errors:   plan.Validation.Errors,
			Warnings: plan.Validation.Warnings,
		},
	}
	for _, bench := range Benchmarks() {
		ev, err := eng.Evaluate(ctx, plan, bench, goldenMappings)
		if err != nil {
			t.Fatalf("%s: %v", bench, err)
		}
		fix.Evaluations = append(fix.Evaluations, goldenEval{
			Benchmark:    ev.Benchmark,
			MeanFidelity: ev.MeanFidelity,
			MinFidelity:  ev.MinFidelity,
			MaxFidelity:  ev.MaxFidelity,
		})
	}
	return fix
}

// goldenTol absorbs cross-platform floating-point noise; the pipeline is
// bit-deterministic on one platform, so regressions show up far above this.
const goldenTol = 1e-6

func goldenClose(a, b float64) bool {
	return math.Abs(a-b) <= goldenTol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

// compareFixture reports every drifted field, so one run shows the whole
// regression rather than its first symptom.
func compareFixture(t *testing.T, want, got goldenFixture) {
	t.Helper()
	if got.Options != want.Options {
		t.Errorf("options drifted: %+v, want %+v", got.Options, want.Options)
	}
	if got.NumCells != want.NumCells {
		t.Errorf("num_cells = %d, want %d", got.NumCells, want.NumCells)
	}
	if got.PlaceIterations != want.PlaceIterations {
		t.Errorf("place_iterations = %d, want %d", got.PlaceIterations, want.PlaceIterations)
	}
	if got.Integrated != want.Integrated {
		t.Errorf("integrated = %v, want %v", got.Integrated, want.Integrated)
	}
	floats := []struct {
		name      string
		want, got float64
	}{
		{"amer_mm2", want.Metrics.Amer, got.Metrics.Amer},
		{"apoly_mm2", want.Metrics.Apoly, got.Metrics.Apoly},
		{"utilization", want.Metrics.Utilization, got.Metrics.Utilization},
		{"ph_percent", want.Metrics.PhPercent, got.Metrics.PhPercent},
	}
	for _, f := range floats {
		if !goldenClose(f.want, f.got) {
			t.Errorf("%s = %.9g, want %.9g", f.name, f.got, f.want)
		}
	}
	if got.Metrics.Violations != want.Metrics.Violations {
		t.Errorf("violations = %d, want %d", got.Metrics.Violations, want.Metrics.Violations)
	}
	if fmt.Sprint(got.Metrics.ImpactedQubits) != fmt.Sprint(want.Metrics.ImpactedQubits) {
		t.Errorf("impacted_qubits = %v, want %v", got.Metrics.ImpactedQubits, want.Metrics.ImpactedQubits)
	}
	if got.Validation != want.Validation {
		t.Errorf("validation = %+v, want %+v", got.Validation, want.Validation)
	}
	if len(got.Evaluations) != len(want.Evaluations) {
		t.Fatalf("evaluations = %d entries, want %d", len(got.Evaluations), len(want.Evaluations))
	}
	for i, w := range want.Evaluations {
		g := got.Evaluations[i]
		if g.Benchmark != w.Benchmark {
			t.Errorf("evaluation %d benchmark = %s, want %s", i, g.Benchmark, w.Benchmark)
			continue
		}
		for _, f := range []struct {
			name      string
			want, got float64
		}{
			{"mean_fidelity", w.MeanFidelity, g.MeanFidelity},
			{"min_fidelity", w.MinFidelity, g.MinFidelity},
			{"max_fidelity", w.MaxFidelity, g.MaxFidelity},
		} {
			if !goldenClose(f.want, f.got) {
				t.Errorf("%s %s = %.9g, want %.9g", w.Benchmark, f.name, f.got, f.want)
			}
		}
	}
}

func TestGoldenCorpus(t *testing.T) {
	for _, o := range append(goldenCombos(), goldenDetailedCombos()...) {
		o := o
		t.Run(goldenName(o), func(t *testing.T) {
			t.Parallel()
			got := buildFixture(t, o)
			path := filepath.Join("testdata", "golden", goldenName(o)+".json")

			if *updateGolden {
				writeFixture(t, path, got)
			}

			want := loadFixture(t, path)
			compareFixture(t, want, got)
			if t.Failed() {
				t.Logf("backend output drifted from %s; if intentional, regenerate with -update", path)
			}

			// The corpus only pins verified-clean layouts: a fixture that
			// admits error-severity violations would bless broken backends.
			if !want.Validation.Valid {
				t.Errorf("fixture %s records an invalid placement", path)
			}
		})
	}
}

// TestGoldenCorpusParallel re-runs every corpus combination — including the
// detailed-placement entries — with the parallel hot path enabled (a worker
// count chosen to exercise uneven partitions) and holds it to the same
// serial-generated fixtures: parallelism must be invisible in the output,
// byte for byte.
func TestGoldenCorpusParallel(t *testing.T) {
	if testing.Short() {
		t.Skip("parallel corpus re-run skipped in -short mode")
	}
	for _, o := range append(goldenCombos(), goldenDetailedCombos()...) {
		o := o
		t.Run(goldenName(o), func(t *testing.T) {
			t.Parallel()
			got := buildFixture(t, o, WithParallelism(3))
			path := filepath.Join("testdata", "golden", goldenName(o)+".json")
			want := loadFixture(t, path)
			compareFixture(t, want, got)
			if t.Failed() {
				t.Logf("parallel run drifted from the serial fixture %s: the determinism contract is broken", path)
			}
		})
	}
}

// TestGoldenCorpusDetailedParallel sweeps the detailed-placement corpus
// entries across several worker counts (uneven partitions included): the
// mcmf cost-matrix fill is owner-computes and the swap climb is sequential,
// so every count must reproduce the serial fixture exactly.
func TestGoldenCorpusDetailedParallel(t *testing.T) {
	if testing.Short() {
		t.Skip("parallel corpus re-run skipped in -short mode")
	}
	for _, o := range goldenDetailedCombos() {
		for _, workers := range []int{2, 3, 5} {
			o, workers := o, workers
			t.Run(fmt.Sprintf("%s_w%d", goldenName(o), workers), func(t *testing.T) {
				t.Parallel()
				got := buildFixture(t, o, WithParallelism(workers))
				path := filepath.Join("testdata", "golden", goldenName(o)+".json")
				want := loadFixture(t, path)
				compareFixture(t, want, got)
				if t.Failed() {
					t.Logf("workers=%d drifted from the serial fixture %s: the determinism contract is broken", workers, path)
				}
			})
		}
	}
}

// TestGoldenCorpusDetailedNone is the compatibility wall for the detailed
// stage's default: every pre-stage fixture must (a) still omit the
// detailed_placer key on disk, (b) be reproduced exactly by a run that asks
// for "none" explicitly, and (c) produce byte-identical fixtures whether the
// backend is requested as "" or "none" — proving the zero value and the
// default name are the same pipeline.
func TestGoldenCorpusDetailedNone(t *testing.T) {
	if testing.Short() {
		t.Skip("detailed-none corpus re-run skipped in -short mode")
	}
	for _, o := range goldenCombos() {
		o := o
		t.Run(goldenName(o), func(t *testing.T) {
			t.Parallel()
			path := filepath.Join("testdata", "golden", goldenName(o)+".json")
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (regenerate with: go test -run TestGoldenCorpus -update .)", err)
			}
			if strings.Contains(string(raw), "detailed_placer") {
				t.Fatalf("%s names a detailed_placer: the pre-stage corpus must keep its exact bytes (disk form omits the default)", path)
			}

			explicit := o
			explicit.DetailedPlacer = DefaultDetailedPlacerName
			gotExplicit := buildFixture(t, explicit)
			want := loadFixture(t, path)
			compareFixture(t, want, gotExplicit)
			if t.Failed() {
				t.Fatalf("explicit detailed_placer=none drifted from %s: \"none\" is not the identity stage", path)
			}

			gotDefault := buildFixture(t, o)
			a, err := json.MarshalIndent(gotExplicit, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			b, err := json.MarshalIndent(gotDefault, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			if string(a) != string(b) {
				t.Errorf("detailed_placer \"\" and %q produced different fixtures:\n%s\nvs\n%s",
					DefaultDetailedPlacerName, b, a)
			}
		})
	}
}
