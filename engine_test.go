package qplacer

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"qplacer/internal/testutil"
	"qplacer/internal/topology"
)

// fastOpts keeps engine tests quick: few iterations, no legalization.
func fastOpts() []Option {
	return []Option{WithTopology("grid"), WithMaxIters(5), WithSkipLegalize(true)}
}

func TestEngineSentinelErrors(t *testing.T) {
	eng := New()
	ctx := context.Background()

	if _, err := eng.Plan(ctx, WithTopology("bogus")); !errors.Is(err, ErrUnknownTopology) {
		t.Fatalf("unknown topology err = %v, want ErrUnknownTopology", err)
	}
	if _, err := eng.Plan(ctx, WithScheme(Scheme(99))); !errors.Is(err, ErrUnknownScheme) {
		t.Fatalf("unknown scheme err = %v, want ErrUnknownScheme", err)
	}
	plan, err := eng.Plan(ctx, fastOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Evaluate(ctx, plan, "nope-3", 5); !errors.Is(err, ErrUnknownBenchmark) {
		t.Fatalf("unknown benchmark err = %v, want ErrUnknownBenchmark", err)
	}
	// Legacy wrappers classify identically.
	if _, err := Plan(Options{Topology: "bogus"}); !errors.Is(err, ErrUnknownTopology) {
		t.Fatalf("legacy Plan err = %v, want ErrUnknownTopology", err)
	}
}

func TestEngineOptionMerging(t *testing.T) {
	eng := New(WithTopology("falcon"), WithMaxIters(5), WithSkipLegalize(true))
	plan, err := eng.Plan(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if plan.Device.Name != "falcon" {
		t.Fatalf("engine default topology not applied: %s", plan.Device.Name)
	}
	// Per-call override wins without disturbing engine defaults.
	plan2, err := eng.Plan(context.Background(), WithTopology("grid"))
	if err != nil {
		t.Fatal(err)
	}
	if plan2.Device.Name != "grid" {
		t.Fatalf("per-call topology override not applied: %s", plan2.Device.Name)
	}
	plan3, err := eng.Plan(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if plan3.Device.Name != "falcon" {
		t.Fatalf("engine defaults mutated by per-call override: %s", plan3.Device.Name)
	}
}

func TestEngineWarmPlanIsCachedAndDeterministic(t *testing.T) {
	ctx := context.Background()
	cold := New()
	p1, err := cold.Plan(ctx, WithTopology("grid"))
	if err != nil {
		t.Fatal(err)
	}
	p2, err := cold.Plan(ctx, WithTopology("grid"))
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Fatal("warm Plan must return the cached result")
	}

	// A separate cold engine reproduces identical metrics (same seed).
	fresh := New()
	p3, err := fresh.Plan(ctx, WithTopology("grid"))
	if err != nil {
		t.Fatal(err)
	}
	if p1.Metrics.Amer != p3.Metrics.Amer ||
		p1.Metrics.Ph != p3.Metrics.Ph ||
		p1.Metrics.Utilization != p3.Metrics.Utilization ||
		p1.PlaceIterations != p3.PlaceIterations {
		t.Fatalf("warm/cold metrics diverge: %+v vs %+v", p1.Metrics, p3.Metrics)
	}
	for i, in := range p1.Netlist.Instances {
		if in.Pos != p3.Netlist.Instances[i].Pos {
			t.Fatalf("instance %d position diverges: %v vs %v",
				i, in.Pos, p3.Netlist.Instances[i].Pos)
		}
	}

	// Different options miss the plan cache but share the stage cache.
	p4, err := cold.Plan(ctx, WithTopology("grid"), WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	if p4 == p1 {
		t.Fatal("different seed must produce a distinct plan")
	}
	if p4.Device != p1.Device {
		t.Fatal("stage cache must reuse the device across seeds")
	}
}

func TestEngineEvaluateMatchesLegacyAndFixesEdgeCases(t *testing.T) {
	ctx := context.Background()
	eng := New()
	plan, err := eng.Plan(ctx, fastOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := eng.Evaluate(ctx, plan, "bv-4", 7)
	if err != nil {
		t.Fatal(err)
	}
	if ev.NumMappings != 7 {
		t.Fatalf("NumMappings = %d, want 7", ev.NumMappings)
	}
	// The old MinFidelity = 2 sentinel must never leak.
	if ev.MinFidelity < 0 || ev.MinFidelity > 1 {
		t.Fatalf("MinFidelity = %v outside [0,1]", ev.MinFidelity)
	}
	if ev.MaxFidelity < ev.MinFidelity || ev.MeanFidelity < ev.MinFidelity ||
		ev.MeanFidelity > ev.MaxFidelity {
		t.Fatalf("inconsistent stats %+v", ev)
	}
	// Legacy wrapper returns the same numbers.
	legacy, err := Evaluate(plan, "bv-4", 7)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(legacy.MeanFidelity-ev.MeanFidelity) > 1e-15 {
		t.Fatalf("legacy Evaluate diverges: %v vs %v", legacy.MeanFidelity, ev.MeanFidelity)
	}
}

func TestEnginePlanCancellation(t *testing.T) {
	eng := New()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := eng.Plan(ctx, WithTopology("grid"))
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v must keep context.Canceled in the chain", err)
	}

	// Mid-placement deadline: the loop must notice within one iteration, so
	// the call returns far sooner than the seconds a full run takes.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel2()
	start := time.Now()
	_, err = eng.Plan(ctx2, WithTopology("eagle"))
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("deadline err = %v, want ErrCancelled", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("cancellation honoured only after %v", elapsed)
	}
}

func TestEvaluateAll(t *testing.T) {
	ctx := context.Background()
	eng := New(WithWorkers(4))
	plan, err := eng.Plan(ctx, fastOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	benches := []string{"bv-4", "qaoa-4", "ising-4", "qgan-4"}
	batch, err := eng.EvaluateAll(ctx, plan, benches, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch.Results) != len(benches) {
		t.Fatalf("results = %d, want %d", len(batch.Results), len(benches))
	}
	var mean float64
	for i, r := range batch.Results {
		if r == nil || r.Benchmark != benches[i] {
			t.Fatalf("result %d = %+v, want benchmark %s in order", i, r, benches[i])
		}
		mean += r.MeanFidelity
		if batch.MinFidelity > r.MinFidelity || batch.MaxFidelity < r.MaxFidelity {
			t.Fatalf("aggregate extremes inconsistent with %+v", r)
		}
	}
	mean /= float64(len(benches))
	if math.Abs(batch.MeanFidelity-mean) > 1e-12 {
		t.Fatalf("aggregate mean %v, recomputed %v", batch.MeanFidelity, mean)
	}
	if batch.TotalMappings != 4*5 {
		t.Fatalf("TotalMappings = %d, want 20", batch.TotalMappings)
	}

	// Concurrent batch results match sequential evaluation exactly.
	for i, r := range batch.Results {
		seq, err := eng.Evaluate(ctx, plan, benches[i], 5)
		if err != nil {
			t.Fatal(err)
		}
		if seq.MeanFidelity != r.MeanFidelity {
			t.Fatalf("%s: batch %v vs sequential %v", benches[i], r.MeanFidelity, seq.MeanFidelity)
		}
	}
}

func TestEvaluateAllPropagatesRootCause(t *testing.T) {
	ctx := context.Background()
	eng := New(WithWorkers(2))
	plan, err := eng.Plan(ctx, fastOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	_, err = eng.EvaluateAll(ctx, plan, []string{"bv-4", "nope-3", "qaoa-4"}, 3)
	if !errors.Is(err, ErrUnknownBenchmark) {
		t.Fatalf("err = %v, want ErrUnknownBenchmark", err)
	}
}

func TestEvaluateAllDefaultSuite(t *testing.T) {
	ctx := context.Background()
	eng := New()
	plan, err := eng.Plan(ctx, fastOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := eng.EvaluateAll(ctx, plan, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch.Results) < len(Benchmarks()) {
		t.Fatalf("default suite evaluated %d benchmarks, want at least the %d built-ins",
			len(batch.Results), len(Benchmarks()))
	}
}

// TestEngineConcurrentUse hammers one engine from many goroutines; run under
// `go test -race` this doubles as the data-race check for the shared caches.
func TestEngineConcurrentUse(t *testing.T) {
	ctx := context.Background()
	eng := New(WithWorkers(4))
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			plan, err := eng.Plan(ctx, fastOpts()...)
			if err != nil {
				errs <- err
				return
			}
			if _, err := eng.EvaluateAll(ctx, plan, []string{"bv-4", "ising-4"}, 3); err != nil {
				errs <- err
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestCustomTopologyFlowsThroughEngine(t *testing.T) {
	// Registered through the same internal registry the built-ins use.
	name := testutil.UniqueName(t)
	err := topology.Register(name, func() *topology.Device {
		spec := TopologySpec{
			Name:        name,
			Description: "8-qubit line",
			NumQubits:   8,
			Edges:       [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}, {6, 7}},
			Coords: [][2]float64{
				{0, 0}, {1, 0}, {2, 0}, {3, 0}, {4, 0}, {5, 0}, {6, 0}, {7, 0},
			},
		}
		d, err := buildDevice(spec)
		if err != nil {
			panic(err)
		}
		return d
	})
	if err != nil {
		t.Fatal(err)
	}

	eng := New()
	ctx := context.Background()
	plan, err := eng.Plan(ctx, WithTopology(name))
	if err != nil {
		t.Fatal(err)
	}
	if plan.Device.Name != name || plan.Device.NumQubits != 8 {
		t.Fatalf("custom device not used: %+v", plan.Device)
	}
	if plan.Metrics == nil || plan.Metrics.Amer <= 0 {
		t.Fatalf("degenerate metrics for custom topology: %+v", plan.Metrics)
	}
	ev, err := eng.Evaluate(ctx, plan, "bv-4", 5)
	if err != nil {
		t.Fatal(err)
	}
	// A crowded 8-qubit line can bottom out at fidelity 0 (same-level qubits
	// within resonance range), so only the envelope is asserted.
	if ev.NumMappings != 5 || ev.MeanFidelity < 0 || ev.MeanFidelity > 1 {
		t.Fatalf("degenerate evaluation on custom topology: %+v", ev)
	}
}

func TestRegisterTopologyAndBenchmarkSpecs(t *testing.T) {
	topoName := testutil.UniqueName(t)
	spec := TopologySpec{
		Name:        topoName,
		Description: "triangle",
		NumQubits:   3,
		Edges:       [][2]int{{0, 1}, {1, 2}, {2, 0}},
		Coords:      [][2]float64{{0, 0}, {1, 0}, {0.5, 1}},
	}
	if err := RegisterTopology(spec); err != nil {
		t.Fatal(err)
	}
	if err := RegisterTopology(spec); !errors.Is(err, ErrDuplicateTopology) {
		t.Fatalf("duplicate topology err = %v, want ErrDuplicateTopology", err)
	}
	bad := spec
	bad.Name = testutil.UniqueName(t)
	bad.Coords = bad.Coords[:2]
	if err := RegisterTopology(bad); err == nil {
		t.Fatal("mismatched coords must fail validation")
	}

	bench := BenchmarkSpec{
		Name:      testutil.UniqueName(t),
		NumQubits: 2,
		Gates: []GateSpec{
			{Name: "h", Qubits: []int{0}},
			{Name: "cz", Qubits: []int{0, 1}},
		},
	}
	if err := RegisterBenchmark(bench); err != nil {
		t.Fatal(err)
	}
	if err := RegisterBenchmark(bench); !errors.Is(err, ErrDuplicateBenchmark) {
		t.Fatalf("duplicate benchmark err = %v, want ErrDuplicateBenchmark", err)
	}
	badBench := bench
	badBench.Name = testutil.UniqueName(t)
	badBench.Gates = []GateSpec{{Name: "cz", Qubits: []int{0, 5}}}
	if err := RegisterBenchmark(badBench); err == nil {
		t.Fatal("out-of-range gate must fail validation")
	}

	found := false
	for _, name := range RegisteredTopologies() {
		if name == topoName {
			found = true
		}
	}
	if !found {
		t.Fatal("RegisteredTopologies missing the new entry")
	}
}

func TestParseScheme(t *testing.T) {
	for name, want := range map[string]Scheme{
		"qplacer": SchemeQplacer, "classic": SchemeClassic, "human": SchemeHuman,
	} {
		got, err := ParseScheme(name)
		if err != nil || got != want {
			t.Fatalf("ParseScheme(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParseScheme("bogus"); !errors.Is(err, ErrUnknownScheme) {
		t.Fatalf("ParseScheme bogus err = %v, want ErrUnknownScheme", err)
	}
}
