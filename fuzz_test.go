package qplacer

import (
	"encoding/json"
	"errors"
	"math"
	"testing"
)

func isFinite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}

// TestNormalizedRejectsNonFinite pins the deterministic contract the fuzz
// target relies on: NaN/Inf numerics fail normalization with the typed
// sentinel instead of slipping past the <= 0 guards into cache keys.
func TestNormalizedRejectsNonFinite(t *testing.T) {
	for _, o := range []Options{
		{LB: math.NaN()},
		{LB: math.Inf(1)},
		{DeltaC: math.NaN()},
		{DeltaC: math.Inf(-1)},
	} {
		if _, err := o.Normalized(); !errors.Is(err, ErrInvalidOptions) {
			t.Fatalf("Normalized(%+v) err = %v, want ErrInvalidOptions", o, err)
		}
	}
}

// FuzzParseScheme checks the parse/format round-trip contract of the scheme
// wire form: every name ParseScheme accepts formats back to itself (String
// and JSON agree), and every rejection carries the typed sentinel. The seed
// corpus under testdata/fuzz/FuzzParseScheme runs as part of the normal test
// suite; `go test -fuzz=FuzzParseScheme .` explores further.
func FuzzParseScheme(f *testing.F) {
	for _, s := range []string{"qplacer", "classic", "human", "", "QPLACER", "human ", "scheme(3)"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, name string) {
		sch, err := ParseScheme(name)
		if err != nil {
			if !errors.Is(err, ErrUnknownScheme) {
				t.Fatalf("ParseScheme(%q) error %v is not ErrUnknownScheme", name, err)
			}
			return
		}
		if got := sch.String(); got != name {
			t.Fatalf("round-trip broke: ParseScheme(%q).String() = %q", name, got)
		}
		data, err := json.Marshal(sch)
		if err != nil {
			t.Fatalf("accepted scheme %v fails to marshal: %v", sch, err)
		}
		var back Scheme
		if err := json.Unmarshal(data, &back); err != nil || back != sch {
			t.Fatalf("JSON round-trip %s -> %v, %v", data, back, err)
		}
	})
}

// FuzzValidateOptions hammers Options.Normalized with arbitrary field
// values: it must never panic, always classify unknown names with the right
// sentinel, and be idempotent on success — the contract the server's request
// validation and the engine's cache keys both rely on.
func FuzzValidateOptions(f *testing.F) {
	f.Add("grid", "nesterov", "shelf", "", 0, int64(1), 0.3, 0.1, 10)
	f.Add("", "", "", "", 0, int64(0), 0.0, 0.0, 0)
	f.Add("eagle", "anneal", "greedy", "none", 1, int64(99), 0.2, 0.08, -5)
	f.Add("grid", "warp-drive", "shelf", "", 0, int64(1), 0.3, 0.1, 0)
	f.Add("grid", "nesterov", "anneal", "", 2, int64(1), 0.3, 0.1, 0)
	f.Add("grid", "nesterov", "shelf", "mcmf", 99, int64(1), -0.3, -0.1, 0)
	f.Add("grid", "nesterov", "shelf", "swap", 0, int64(1), math.NaN(), 0.1, 0)
	f.Add("grid", "nesterov", "shelf", "warp-drive", 0, int64(1), 0.3, math.Inf(1), 0)
	f.Add("grid", "nesterov", "shelf", "nesterov", 0, int64(1), 0.3, 0.1, 0)
	f.Fuzz(func(t *testing.T, topo, placer, legalizer, detailed string, scheme int, seed int64, lb, deltaC float64, maxIters int) {
		o := Options{
			Topology:       topo,
			Scheme:         Scheme(scheme),
			LB:             lb,
			DeltaC:         deltaC,
			Seed:           seed,
			MaxIters:       maxIters,
			Placer:         placer,
			Legalizer:      legalizer,
			DetailedPlacer: detailed,
		}
		norm, err := o.Normalized() // must never panic
		if err != nil {
			// Failures must classify with exactly one of the typed
			// sentinels, matching the field that actually failed.
			switch {
			case errors.Is(err, ErrInvalidOptions):
				if isFinite(lb) && isFinite(deltaC) {
					t.Fatalf("finite options rejected as invalid: %v", err)
				}
			case errors.Is(err, ErrUnknownScheme):
				if s := Scheme(scheme); s == SchemeQplacer || s == SchemeClassic || s == SchemeHuman {
					t.Fatalf("valid scheme %v rejected: %v", s, err)
				}
			case errors.Is(err, ErrUnknownPlacer):
				if _, lookupErr := PlacerByName(placer); lookupErr == nil {
					t.Fatalf("registered placer %q rejected: %v", placer, err)
				}
			case errors.Is(err, ErrUnknownLegalizer):
				if _, lookupErr := LegalizerByName(legalizer); lookupErr == nil {
					t.Fatalf("registered legalizer %q rejected: %v", legalizer, err)
				}
			case errors.Is(err, ErrUnknownDetailedPlacer):
				if _, lookupErr := DetailedPlacerByName(detailed); lookupErr == nil {
					t.Fatalf("registered detailed placer %q rejected: %v", detailed, err)
				}
			default:
				t.Fatalf("Normalized() error %v carries no known sentinel", err)
			}
			return
		}
		// Success invariants: defaults filled, backends resolvable, and a
		// second normalization is a fixed point (cache-key stability).
		if norm.Topology == "" || norm.Seed == 0 {
			t.Fatalf("defaults not filled: %+v", norm)
		}
		if _, err := PlacerByName(norm.Placer); err != nil {
			t.Fatalf("normalized placer %q not resolvable: %v", norm.Placer, err)
		}
		if _, err := LegalizerByName(norm.Legalizer); err != nil {
			t.Fatalf("normalized legalizer %q not resolvable: %v", norm.Legalizer, err)
		}
		if _, err := DetailedPlacerByName(norm.DetailedPlacer); err != nil {
			t.Fatalf("normalized detailed placer %q not resolvable: %v", norm.DetailedPlacer, err)
		}
		again, err := norm.Normalized()
		if err != nil {
			t.Fatalf("re-normalizing a normalized value failed: %v", err)
		}
		if again != norm {
			t.Fatalf("Normalized not idempotent: %+v -> %+v", norm, again)
		}
	})
}
