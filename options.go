package qplacer

import (
	"fmt"
	"math"
	"runtime"

	"qplacer/internal/physics"
)

// Scheme selects the placement strategy of §V-B.
type Scheme int

const (
	// SchemeQplacer is the frequency-aware electrostatic engine.
	SchemeQplacer Scheme = iota
	// SchemeClassic is the same engine without the frequency force.
	SchemeClassic
	// SchemeHuman is the manually optimized IBM-style grid baseline.
	SchemeHuman
)

// String returns the scheme's wire name ("qplacer", "classic", "human"),
// the same form ParseScheme accepts and JSON marshalling emits.
func (s Scheme) String() string {
	switch s {
	case SchemeQplacer:
		return "qplacer"
	case SchemeClassic:
		return "classic"
	case SchemeHuman:
		return "human"
	}
	return fmt.Sprintf("scheme(%d)", int(s))
}

// ParseScheme converts a scheme name ("qplacer", "classic", "human") to its
// Scheme value. Unknown names wrap ErrUnknownScheme.
func ParseScheme(name string) (Scheme, error) {
	switch name {
	case "qplacer":
		return SchemeQplacer, nil
	case "classic":
		return SchemeClassic, nil
	case "human":
		return SchemeHuman, nil
	}
	return 0, fmt.Errorf("%w %q", ErrUnknownScheme, name)
}

// DefaultMappings is the paper's subset-mapping count per evaluation (§VI-A).
const DefaultMappings = 50

// Options configures a placement run. Zero values select the paper's
// defaults (§V-C). Options is comparable: the normalized value doubles as
// the Engine's stage- and plan-cache key.
type Options struct {
	Topology string  `json:"topology"` // any registered topology name (see RegisteredTopologies)
	Scheme   Scheme  `json:"scheme"`   // placement strategy, as its string name on the wire
	LB       float64 `json:"lb"`       // resonator segment size l_b in mm (default 0.3)
	DeltaC   float64 `json:"delta_c"`  // detuning threshold Δc in GHz (default 0.1)
	Seed     int64   `json:"seed"`     // engine seed (default 1)

	// MaxIters overrides the global-placement iteration cap (0 = default).
	// The gradient placer reads it as Nesterov iterations; the annealing
	// placer as sweeps.
	MaxIters int `json:"max_iters,omitempty"`
	// SkipLegalize leaves the global placement unlegalized (ablations).
	SkipLegalize bool `json:"skip_legalize,omitempty"`

	// Placer selects the global-placement backend by registered name
	// ("" resolves to DefaultPlacerName; see Placers).
	Placer string `json:"placer,omitempty"`
	// Legalizer selects the legalization backend by registered name
	// ("" resolves to DefaultLegalizerName; see Legalizers).
	Legalizer string `json:"legalizer,omitempty"`
	// DetailedPlacer selects the post-legalization refinement backend by
	// registered name ("" resolves to DefaultDetailedPlacerName, the identity
	// stage; see DetailedPlacers).
	DetailedPlacer string `json:"detailed_placer,omitempty"`
}

// Normalized returns the canonical form of the options — defaults filled in,
// scheme validated — which the Engine uses as its plan-cache key. Services
// deduplicating equivalent requests should key on this value.
func (o Options) Normalized() (Options, error) {
	return o.normalized()
}

// normalized fills in defaults and validates the scheme, returning the
// canonical form used as cache key.
func (o Options) normalized() (Options, error) {
	// Non-finite numerics can slip past every downstream <= 0 guard (NaN
	// compares false both ways) and poison cache keys, so they are rejected
	// here with the typed sentinel.
	if math.IsNaN(o.LB) || math.IsInf(o.LB, 0) {
		return o, fmt.Errorf("%w: non-finite lb %v", ErrInvalidOptions, o.LB)
	}
	if math.IsNaN(o.DeltaC) || math.IsInf(o.DeltaC, 0) {
		return o, fmt.Errorf("%w: non-finite delta_c %v", ErrInvalidOptions, o.DeltaC)
	}
	if o.Topology == "" {
		o.Topology = "grid"
	}
	if o.LB == 0 {
		o.LB = 0.3
	}
	if o.DeltaC == 0 {
		o.DeltaC = physics.DetuneThresholdGHz
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.MaxIters < 0 {
		o.MaxIters = 0
	}
	switch o.Scheme {
	case SchemeQplacer, SchemeClassic, SchemeHuman:
	default:
		return o, fmt.Errorf("%w %v", ErrUnknownScheme, o.Scheme)
	}
	if o.Placer == "" {
		o.Placer = DefaultPlacerName
	}
	if _, err := PlacerByName(o.Placer); err != nil {
		return o, err
	}
	if o.Legalizer == "" {
		o.Legalizer = DefaultLegalizerName
	}
	if _, err := LegalizerByName(o.Legalizer); err != nil {
		return o, err
	}
	if o.DetailedPlacer == "" {
		o.DetailedPlacer = DefaultDetailedPlacerName
	}
	if _, err := DetailedPlacerByName(o.DetailedPlacer); err != nil {
		return o, err
	}
	return o, nil
}

// settings is the merged engine + per-call configuration that functional
// options operate on. Knobs that change results live in Options (the cache
// key); knobs that only change how results are computed — worker counts,
// observers, validation — live beside it.
type settings struct {
	opts        Options
	workers     int
	parallelism int
	adaptive    bool
	deltaEval   bool
	observer    Observer
	validation  ValidationMode
	tracing     bool
}

func defaultSettings() settings {
	return settings{
		workers:     runtime.GOMAXPROCS(0),
		parallelism: runtime.GOMAXPROCS(0),
		adaptive:    true,
		deltaEval:   true,
		tracing:     true,
	}
}

// Option configures an Engine at construction (New) or one call (Plan).
// Per-call options start from the engine's settings and override them for
// that call only.
type Option func(*settings)

// WithTopology selects the device topology by registered name.
func WithTopology(name string) Option {
	return func(s *settings) { s.opts.Topology = name }
}

// WithScheme selects the placement strategy.
func WithScheme(sch Scheme) Option {
	return func(s *settings) { s.opts.Scheme = sch }
}

// WithLB sets the resonator segment size l_b in mm.
func WithLB(lb float64) Option {
	return func(s *settings) { s.opts.LB = lb }
}

// WithDeltaC sets the detuning threshold Δc in GHz.
func WithDeltaC(deltaC float64) Option {
	return func(s *settings) { s.opts.DeltaC = deltaC }
}

// WithSeed sets the deterministic engine seed.
func WithSeed(seed int64) Option {
	return func(s *settings) { s.opts.Seed = seed }
}

// WithMaxIters caps the global-placement iterations (0 restores the default).
func WithMaxIters(n int) Option {
	return func(s *settings) { s.opts.MaxIters = n }
}

// WithSkipLegalize leaves the global placement unlegalized (ablations).
func WithSkipLegalize(skip bool) Option {
	return func(s *settings) { s.opts.SkipLegalize = skip }
}

// WithPlacer selects the global-placement backend by registered name
// (see Placers; "" restores the default).
func WithPlacer(name string) Option {
	return func(s *settings) { s.opts.Placer = name }
}

// WithLegalizer selects the legalization backend by registered name
// (see Legalizers; "" restores the default).
func WithLegalizer(name string) Option {
	return func(s *settings) { s.opts.Legalizer = name }
}

// WithDetailedPlacer selects the detailed-placement backend by registered
// name (see DetailedPlacers; "" restores the default identity stage).
func WithDetailedPlacer(name string) Option {
	return func(s *settings) { s.opts.DetailedPlacer = name }
}

// WithObserver streams Progress events from the run's backends to obs. As an
// engine option it observes every plan; as a per-call option it observes that
// call only. Warm plan-cache hits complete without events (no stage runs).
// nil removes the observer.
func WithObserver(obs Observer) Option {
	return func(s *settings) { s.observer = obs }
}

// WithValidation runs the independent verifier (see Validate) after every
// plan. ValidationAnnotate attaches the report to PlanResult.Validation;
// ValidationStrict additionally fails Plan with ErrInvalidPlacement when the
// report carries error-severity violations. Warm cache hits are verified
// (once) too, so a corrupted cache entry cannot slip through. As an engine
// option it applies to every plan; as a per-call option to that call only.
func WithValidation(mode ValidationMode) Option {
	return func(s *settings) { s.validation = mode }
}

// WithTracing toggles the span tracer (default on). Traced plans carry a
// per-stage timing breakdown in PlanResult.Timings; untraced plans run the
// exact same code with a nil span, leave Timings nil, and pay nothing
// beyond a pointer test per instrumented site. Like parallelism, tracing
// never changes placement results and is not part of the cache key — but
// note the cache stores whatever the first (cold) run produced, so a warm
// hit may carry timings even when the hitting call disabled tracing.
func WithTracing(enabled bool) Option {
	return func(s *settings) { s.tracing = enabled }
}

// WithOptions replaces the whole Options struct at once — the migration
// bridge from the legacy Plan(Options) call style.
func WithOptions(o Options) Option {
	return func(s *settings) { s.opts = o }
}

// WithWorkers bounds the EvaluateAll worker pool (default GOMAXPROCS). It
// controls how many benchmarks are evaluated concurrently; for the worker
// pool inside a single placement, see WithParallelism.
func WithWorkers(n int) Option {
	return func(s *settings) {
		if n > 0 {
			s.workers = n
		}
	}
}

// WithParallelism bounds the worker pool a single placement's hot path fans
// out on — the per-iteration gradient components (wirelength, density bins
// and the spectral Poisson solve, frequency and chain pair repulsion) and
// the legalizers' independent scans. The default is GOMAXPROCS; 1 restores
// the serial path; n <= 0 resets to the default. A request above GOMAXPROCS
// is clamped at plan time — oversubscribing the scheduler only adds context
// switches to a CPU-bound hot path — and the clamp is noted on the plan's
// root timing span.
//
// Parallelism never changes results: work is statically partitioned and
// accumulated owner-computes, so placements are bit-identical at every
// worker count. It is therefore deliberately NOT part of Options and never
// enters the plan-cache key — plans computed at different parallelism are
// interchangeable cache hits. As an engine option it applies to every plan;
// as a per-call option to that call only.
//
// Each parallel stage additionally falls back to its serial kernel when the
// stage's problem size is below an auto-calibrated cutoff — fan-out dispatch
// costs more than it saves on small problems. See WithAdaptiveGranularity.
func WithParallelism(n int) Option {
	return func(s *settings) {
		if n > 0 {
			s.parallelism = n
		} else {
			s.parallelism = runtime.GOMAXPROCS(0)
		}
	}
}

// WithAdaptiveGranularity toggles the per-stage serial fallback (default
// on): each parallelizable stage compares its problem size against a cutoff
// calibrated once per process from the measured pool dispatch overhead, and
// runs its serial kernel below it. Disabling forces every stage to fan out
// whenever parallelism > 1 — useful for scheduler experiments, never for
// results: gating only selects between bit-identical implementations, so
// like parallelism it is not part of the plan-cache key.
func WithAdaptiveGranularity(enabled bool) Option {
	return func(s *settings) { s.adaptive = enabled }
}

// WithDeltaEval toggles incremental gradient evaluation across placement
// iterations (default on): verbatim re-evaluations replay from a memo keyed
// on the exact position bits, and the pair-repulsion families keep Verlet
// active lists refreshed before any excluded pair could contribute. Both
// mechanisms are exact by construction — placements are bit-identical with
// the toggle on or off — so it too stays out of the plan-cache key.
func WithDeltaEval(enabled bool) Option {
	return func(s *settings) { s.deltaEval = enabled }
}
