package qplacer

import (
	"context"

	"qplacer/internal/anneal"
	"qplacer/internal/geom"
	"qplacer/internal/legal"
	"qplacer/internal/obs"
	"qplacer/internal/parallel"
	"qplacer/internal/place"
)

// This file adapts the internal pipeline implementations to the public
// Placer/Legalizer interfaces and registers them as the built-in backends:
// the Nesterov electrostatic placer ("nesterov", the default), the
// simulated-annealing placer ("anneal"), the integration-aware legalizer
// ("shelf", the default), and the greedy row-scan legalizer ("greedy").

// nesterovPlacer is the frequency-aware electrostatic engine of §IV-C,
// refactored behind the Placer interface.
type nesterovPlacer struct{}

func (nesterovPlacer) Name() string { return DefaultPlacerName }

func (nesterovPlacer) Place(ctx context.Context, st *StageState, observer Observer) (*PlaceOutcome, error) {
	cfg := place.DefaultConfig()
	cfg.Span = obs.SpanFrom(ctx)
	cfg.Seed = st.Options.Seed
	cfg.Workers = st.Parallelism
	cfg.DeltaEval = st.DeltaEval
	if !st.AdaptiveGranularity {
		// The zero cutoffs disable gating: every stage fans out whenever a
		// pool exists. nil would mean auto-calibrate.
		cfg.Cutoffs = &parallel.Cutoffs{}
	}
	if st.Options.MaxIters > 0 {
		cfg.MaxIters = st.Options.MaxIters
	}
	if st.Options.Scheme == SchemeClassic {
		cfg.Mode = place.ModeClassic
	}
	cfg.Progress = func(iter int, overflow float64) {
		observer.OnProgress(Progress{
			Stage: StagePlace, Backend: DefaultPlacerName,
			Iteration: iter, Objective: overflow,
		})
	}
	res, err := place.PlaceCtx(ctx, st.Netlist, st.Collision, cfg)
	if err != nil {
		return nil, err
	}
	return &PlaceOutcome{
		Region:     res.Region,
		Iterations: res.Iterations,
		Runtime:    res.Runtime,
		AvgIterMS:  res.AvgIterMS,
		Overflow:   res.Overflow,
	}, nil
}

// annealPlacer is the seeded simulated-annealing backend of internal/anneal.
// Its Metropolis chain is inherently sequential (every move's acceptance
// depends on the state left by the previous one), so it ignores
// StageState.Parallelism — which is legal: parallelism never changes
// results, and for this backend it simply does nothing.
type annealPlacer struct{}

func (annealPlacer) Name() string { return "anneal" }

func (annealPlacer) Place(ctx context.Context, st *StageState, observer Observer) (*PlaceOutcome, error) {
	cfg := anneal.DefaultConfig()
	cfg.Span = obs.SpanFrom(ctx)
	cfg.Seed = st.Options.Seed
	if st.Options.MaxIters > 0 {
		cfg.Sweeps = st.Options.MaxIters
	}
	if st.Options.Scheme == SchemeClassic {
		cfg.FreqWeight = 0 // the crosstalk-oblivious baseline, like ModeClassic
	}
	cfg.Progress = func(sweep int, cost float64) {
		observer.OnProgress(Progress{
			Stage: StagePlace, Backend: "anneal",
			Iteration: sweep, Objective: cost,
		})
	}
	res, err := anneal.Place(ctx, st.Netlist, st.Collision, cfg)
	if err != nil {
		return nil, err
	}
	return &PlaceOutcome{
		Region:     res.Region,
		Iterations: res.Sweeps,
		Runtime:    res.Runtime,
		AvgIterMS:  res.AvgIterMS,
	}, nil
}

// legalProgress adapts the legal package's step/total hook to Progress
// events (completed steps as the iteration, the total as the objective so
// observers can show a fraction).
func legalProgress(observer Observer, backend string) func(step, total int) {
	return func(step, total int) {
		observer.OnProgress(Progress{
			Stage: StageLegalize, Backend: backend,
			Iteration: step, Objective: float64(total),
		})
	}
}

// shelfLegalizer is the integration-aware legalizer of §IV-C2 (greedy spiral
// + min-cost-flow + Tetris + integration repair) behind the Legalizer
// interface.
type shelfLegalizer struct{}

func (shelfLegalizer) Name() string { return DefaultLegalizerName }

func (shelfLegalizer) Legalize(ctx context.Context, st *StageState, region geom.Rect, observer Observer) (*LegalizeOutcome, error) {
	cfg := legal.DefaultConfig()
	cfg.Span = obs.SpanFrom(ctx)
	// The Classic baseline gets the classical (frequency-oblivious)
	// legalizer, exactly as it would from its own engine.
	cfg.FrequencyAware = st.Options.Scheme == SchemeQplacer
	cfg.Workers = st.Parallelism
	if !st.AdaptiveGranularity {
		cfg.Cutoffs = &parallel.Cutoffs{}
	}
	cfg.Progress = legalProgress(observer, DefaultLegalizerName)
	res, err := legal.LegalizeCtx(ctx, st.Netlist, region, st.Options.DeltaC, cfg)
	if err != nil {
		return nil, err
	}
	return &LegalizeOutcome{
		IntegratedAll:       res.IntegratedAll,
		QubitDisplacement:   res.QubitDisplacement,
		SegmentDisplacement: res.SegmentDisplacement,
	}, nil
}

// greedyLegalizer is the greedy row-scan variant of internal/legal.
type greedyLegalizer struct{}

func (greedyLegalizer) Name() string { return "greedy" }

func (greedyLegalizer) Legalize(ctx context.Context, st *StageState, region geom.Rect, observer Observer) (*LegalizeOutcome, error) {
	cfg := legal.DefaultConfig()
	cfg.Span = obs.SpanFrom(ctx)
	cfg.FrequencyAware = st.Options.Scheme == SchemeQplacer
	cfg.Workers = st.Parallelism
	if !st.AdaptiveGranularity {
		cfg.Cutoffs = &parallel.Cutoffs{}
	}
	cfg.Progress = legalProgress(observer, "greedy")
	res, err := legal.RowScanCtx(ctx, st.Netlist, region, st.Options.DeltaC, cfg)
	if err != nil {
		return nil, err
	}
	return &LegalizeOutcome{
		IntegratedAll:       res.IntegratedAll,
		QubitDisplacement:   res.QubitDisplacement,
		SegmentDisplacement: res.SegmentDisplacement,
	}, nil
}

func init() {
	for _, err := range []error{
		RegisterPlacer(nesterovPlacer{}),
		RegisterPlacer(annealPlacer{}),
		RegisterLegalizer(shelfLegalizer{}),
		RegisterLegalizer(greedyLegalizer{}),
	} {
		if err != nil {
			panic(err)
		}
	}
}
