package qplacer

import (
	"context"

	"qplacer/internal/anneal"
	"qplacer/internal/detail"
	"qplacer/internal/geom"
	"qplacer/internal/legal"
	"qplacer/internal/obs"
	"qplacer/internal/parallel"
	"qplacer/internal/place"
)

// This file adapts the internal pipeline implementations to the public
// Placer/Legalizer/DetailedPlacer interfaces and registers them as the
// built-in backends: the Nesterov electrostatic placer ("nesterov", the
// default), the simulated-annealing placer ("anneal"), the integration-aware
// legalizer ("shelf", the default), the greedy row-scan legalizer
// ("greedy"), and the detailed placers — the identity stage ("none", the
// default), the min-cost-flow reassignment pass ("mcmf"), and the
// frequency-aware local-swap hill climb ("swap").

// nesterovPlacer is the frequency-aware electrostatic engine of §IV-C,
// refactored behind the Placer interface.
type nesterovPlacer struct{}

func (nesterovPlacer) Name() string { return DefaultPlacerName }

func (nesterovPlacer) Place(ctx context.Context, st *StageState, observer Observer) (*PlaceOutcome, error) {
	cfg := place.DefaultConfig()
	cfg.Span = obs.SpanFrom(ctx)
	cfg.Seed = st.Options.Seed
	cfg.Workers = st.Parallelism
	cfg.DeltaEval = st.DeltaEval
	if !st.AdaptiveGranularity {
		// The zero cutoffs disable gating: every stage fans out whenever a
		// pool exists. nil would mean auto-calibrate.
		cfg.Cutoffs = &parallel.Cutoffs{}
	}
	if st.Options.MaxIters > 0 {
		cfg.MaxIters = st.Options.MaxIters
	}
	if st.Options.Scheme == SchemeClassic {
		cfg.Mode = place.ModeClassic
	}
	cfg.Progress = func(iter int, overflow float64) {
		observer.OnProgress(Progress{
			Stage: StagePlace, Backend: DefaultPlacerName,
			Iteration: iter, Objective: overflow,
		})
	}
	res, err := place.PlaceCtx(ctx, st.Netlist, st.Collision, cfg)
	if err != nil {
		return nil, err
	}
	return &PlaceOutcome{
		Region:     res.Region,
		Iterations: res.Iterations,
		Runtime:    res.Runtime,
		AvgIterMS:  res.AvgIterMS,
		Overflow:   res.Overflow,
	}, nil
}

// annealPlacer is the seeded simulated-annealing backend of internal/anneal.
// Its Metropolis chain is inherently sequential (every move's acceptance
// depends on the state left by the previous one), so it ignores
// StageState.Parallelism — which is legal: parallelism never changes
// results, and for this backend it simply does nothing.
type annealPlacer struct{}

func (annealPlacer) Name() string { return "anneal" }

func (annealPlacer) Place(ctx context.Context, st *StageState, observer Observer) (*PlaceOutcome, error) {
	cfg := anneal.DefaultConfig()
	cfg.Span = obs.SpanFrom(ctx)
	cfg.Seed = st.Options.Seed
	if st.Options.MaxIters > 0 {
		cfg.Sweeps = st.Options.MaxIters
	}
	if st.Options.Scheme == SchemeClassic {
		cfg.FreqWeight = 0 // the crosstalk-oblivious baseline, like ModeClassic
	}
	cfg.Progress = func(sweep int, cost float64) {
		observer.OnProgress(Progress{
			Stage: StagePlace, Backend: "anneal",
			Iteration: sweep, Objective: cost,
		})
	}
	res, err := anneal.Place(ctx, st.Netlist, st.Collision, cfg)
	if err != nil {
		return nil, err
	}
	return &PlaceOutcome{
		Region:     res.Region,
		Iterations: res.Sweeps,
		Runtime:    res.Runtime,
		AvgIterMS:  res.AvgIterMS,
	}, nil
}

// legalProgress adapts the legal package's step/total hook to Progress
// events (completed steps as the iteration, the total as the objective so
// observers can show a fraction).
func legalProgress(observer Observer, backend string) func(step, total int) {
	return func(step, total int) {
		observer.OnProgress(Progress{
			Stage: StageLegalize, Backend: backend,
			Iteration: step, Objective: float64(total),
		})
	}
}

// shelfLegalizer is the integration-aware legalizer of §IV-C2 (greedy spiral
// + min-cost-flow + Tetris + integration repair) behind the Legalizer
// interface.
type shelfLegalizer struct{}

func (shelfLegalizer) Name() string { return DefaultLegalizerName }

func (shelfLegalizer) Legalize(ctx context.Context, st *StageState, region geom.Rect, observer Observer) (*LegalizeOutcome, error) {
	cfg := legal.DefaultConfig()
	cfg.Span = obs.SpanFrom(ctx)
	// The Classic baseline gets the classical (frequency-oblivious)
	// legalizer, exactly as it would from its own engine.
	cfg.FrequencyAware = st.Options.Scheme == SchemeQplacer
	cfg.Workers = st.Parallelism
	if !st.AdaptiveGranularity {
		cfg.Cutoffs = &parallel.Cutoffs{}
	}
	cfg.Progress = legalProgress(observer, DefaultLegalizerName)
	res, err := legal.LegalizeCtx(ctx, st.Netlist, region, st.Options.DeltaC, cfg)
	if err != nil {
		return nil, err
	}
	return &LegalizeOutcome{
		IntegratedAll:       res.IntegratedAll,
		QubitDisplacement:   res.QubitDisplacement,
		SegmentDisplacement: res.SegmentDisplacement,
	}, nil
}

// greedyLegalizer is the greedy row-scan variant of internal/legal.
type greedyLegalizer struct{}

func (greedyLegalizer) Name() string { return "greedy" }

func (greedyLegalizer) Legalize(ctx context.Context, st *StageState, region geom.Rect, observer Observer) (*LegalizeOutcome, error) {
	cfg := legal.DefaultConfig()
	cfg.Span = obs.SpanFrom(ctx)
	cfg.FrequencyAware = st.Options.Scheme == SchemeQplacer
	cfg.Workers = st.Parallelism
	if !st.AdaptiveGranularity {
		cfg.Cutoffs = &parallel.Cutoffs{}
	}
	cfg.Progress = legalProgress(observer, "greedy")
	res, err := legal.RowScanCtx(ctx, st.Netlist, region, st.Options.DeltaC, cfg)
	if err != nil {
		return nil, err
	}
	return &LegalizeOutcome{
		IntegratedAll:       res.IntegratedAll,
		QubitDisplacement:   res.QubitDisplacement,
		SegmentDisplacement: res.SegmentDisplacement,
	}, nil
}

// noneDetailed is the identity detailed placer: it refines nothing, so the
// pipeline behaves exactly as it did before the stage existed. The engine
// fast-paths it without invoking Refine, keeping the default path free of
// even a span node; the implementation here serves direct callers.
type noneDetailed struct{}

func (noneDetailed) Name() string { return DefaultDetailedPlacerName }

func (noneDetailed) Refine(_ context.Context, st *StageState, _ geom.Rect, _ Observer) (*DetailOutcome, error) {
	w := place.HPWL(st.Netlist)
	return &DetailOutcome{HPWLBefore: w, HPWLAfter: w}, nil
}

// detailConfig assembles the shared detail.Config from the stage state,
// mirroring how the placer/legalizer adapters thread spans, parallelism, and
// adaptive granularity.
func detailConfig(ctx context.Context, st *StageState, backend string, observer Observer) detail.Config {
	cfg := detail.Config{
		Span:      obs.SpanFrom(ctx),
		Workers:   st.Parallelism,
		Collision: st.Collision,
		Seed:      st.Options.Seed,
	}
	if !st.AdaptiveGranularity {
		cfg.Cutoffs = &parallel.Cutoffs{}
	}
	cfg.Progress = func(step int, hpwl float64) {
		observer.OnProgress(Progress{
			Stage: StageDetail, Backend: backend,
			Iteration: step, Objective: hpwl,
		})
	}
	return cfg
}

// mcmfDetailed is the independent-set + min-cost-flow reassignment pass of
// internal/detail, deterministic and bit-identical at every worker count.
type mcmfDetailed struct{}

func (mcmfDetailed) Name() string { return "mcmf" }

func (mcmfDetailed) Refine(ctx context.Context, st *StageState, _ geom.Rect, observer Observer) (*DetailOutcome, error) {
	res, err := detail.MCMF(ctx, st.Netlist, detailConfig(ctx, st, "mcmf", observer))
	if err != nil {
		return nil, err
	}
	return &DetailOutcome{Moved: res.Moved, HPWLBefore: res.HPWLBefore, HPWLAfter: res.HPWLAfter}, nil
}

// swapDetailed is the seeded frequency-aware local-swap hill climb of
// internal/detail. Inherently sequential; it ignores StageState.Parallelism,
// which is legal — parallelism never changes results.
type swapDetailed struct{}

func (swapDetailed) Name() string { return "swap" }

func (swapDetailed) Refine(ctx context.Context, st *StageState, _ geom.Rect, observer Observer) (*DetailOutcome, error) {
	res, err := detail.Swap(ctx, st.Netlist, detailConfig(ctx, st, "swap", observer))
	if err != nil {
		return nil, err
	}
	return &DetailOutcome{Moved: res.Moved, HPWLBefore: res.HPWLBefore, HPWLAfter: res.HPWLAfter}, nil
}

func init() {
	for _, err := range []error{
		RegisterPlacer(nesterovPlacer{}),
		RegisterPlacer(annealPlacer{}),
		RegisterLegalizer(shelfLegalizer{}),
		RegisterLegalizer(greedyLegalizer{}),
		RegisterDetailedPlacer(noneDetailed{}),
		RegisterDetailedPlacer(mcmfDetailed{}),
		RegisterDetailedPlacer(swapDetailed{}),
	} {
		if err != nil {
			panic(err)
		}
	}
}
