package qplacer

import (
	"context"
	"fmt"
	"testing"

	"qplacer/internal/place"
	"qplacer/internal/testutil"
)

// TestSwapPropertyRandomSuites is the randomized property wall for the swap
// refiner: thirty generated topologies — alternating regular grids and
// random-degree graphs across seeds — each run through the full three-stage
// pipeline twice on independent engines, plus once with the identity stage.
// Per suite the test demands:
//
//   - determinism per seed: both swap runs land every instance on identical
//     bits (the reproducibility contract the golden corpus pins for the
//     built-in topologies, here extended across the generator's whole space);
//   - HPWL monotonicity: the refined layout is never longer than the
//     identity-stage baseline it started from;
//   - no new violations: refinement introduces no error-severity violation
//     the baseline did not already have.
func TestSwapPropertyRandomSuites(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized suite sweep skipped in -short mode")
	}
	const suites = 30
	for i := 0; i < suites; i++ {
		i := i
		t.Run(fmt.Sprintf("suite%02d", i), func(t *testing.T) {
			t.Parallel()
			spec := SuiteSpec{
				Name:      testutil.UniqueName(t),
				Seed:      int64(1000 + 37*i),
				Workloads: false,
			}
			if i%2 == 0 {
				spec.Family = SuiteFamilyGrid
				spec.Qubits = []int{9, 16, 25}[(i/2)%3]
			} else {
				spec.Family = SuiteFamilyRandom
				spec.Qubits = 8 + i%7
			}
			suite, err := GenerateBenchmark(spec)
			if err != nil {
				t.Fatal(err)
			}
			if err := suite.Register(); err != nil {
				t.Fatal(err)
			}

			ctx := context.Background()
			opts := Options{
				Topology: spec.Name,
				MaxIters: 12,
				Seed:     int64(1 + i),
			}
			run := func(detailed string) *PlanResult {
				o := opts
				o.DetailedPlacer = detailed
				plan, err := New().Plan(ctx, WithOptions(o))
				if err != nil {
					t.Fatalf("%s on %s: %v", detailed, spec.Name, err)
				}
				return plan
			}

			base := run(DefaultDetailedPlacerName)
			p1, p2 := run("swap"), run("swap")

			for j := range p1.Netlist.Instances {
				if p1.Netlist.Instances[j].Pos != p2.Netlist.Instances[j].Pos {
					t.Fatalf("swap not deterministic on %s: instance %d at %v vs %v",
						spec.Name, j, p1.Netlist.Instances[j].Pos, p2.Netlist.Instances[j].Pos)
				}
			}

			baseHPWL := place.HPWL(base.Netlist)
			if got := place.HPWL(p1.Netlist); got > baseHPWL {
				t.Errorf("swap increased HPWL on %s: %.9g, baseline %.9g", spec.Name, got, baseHPWL)
			}

			baseRep, err := Validate(base)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := Validate(p1)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Errors > baseRep.Errors {
				for _, v := range rep.Violations {
					if v.Severity == SeverityError {
						t.Errorf("%s: %s", v.Code, v.Detail)
					}
				}
				t.Fatalf("swap introduced error violations on %s: %d, baseline had %d",
					spec.Name, rep.Errors, baseRep.Errors)
			}
		})
	}
}
