package qplacer

import (
	"fmt"
	"io"

	"qplacer/internal/bmgen"
)

// SuiteSpec is the declarative input to GenerateBenchmark: which connectivity
// family to build, how large, which frequency-assignment scheme, and the seed
// that makes the result reproducible. The zero value of every optional field
// selects a documented default — see the field docs and docs/BENCHMARKS.md.
type SuiteSpec = bmgen.Spec

// Connectivity families accepted by SuiteSpec.Family.
const (
	SuiteFamilyGrid        = bmgen.FamilyGrid
	SuiteFamilyXtree       = bmgen.FamilyXtree
	SuiteFamilyOctagon     = bmgen.FamilyOctagon
	SuiteFamilyHummingbird = bmgen.FamilyHummingbird
	SuiteFamilyRandom      = bmgen.FamilyRandom
)

// Frequency-assignment schemes accepted by SuiteSpec.FreqScheme.
const (
	SuiteSchemeIsolation = bmgen.SchemeIsolation
	SuiteSchemeDSATUR    = bmgen.SchemeDSATUR
)

// GeneratedSuite is a complete synthesized benchmark: connectivity graph,
// frequency assignment, collision map, substrate area, and optional workload
// circuits, all derived deterministically from a SuiteSpec. The embedded
// suite exposes WriteJSON, Validate, and the raw artifact fields.
type GeneratedSuite struct {
	*bmgen.Suite
}

// GenerateBenchmark synthesizes the benchmark suite described by spec.
// Generation is fully deterministic per normalized spec: the same spec (after
// defaulting) produces a byte-identical WriteJSON stream in any process.
// Invalid specs wrap ErrInvalidSuiteSpec.
func GenerateBenchmark(spec SuiteSpec) (*GeneratedSuite, error) {
	s, err := bmgen.Generate(spec)
	if err != nil {
		return nil, err
	}
	return &GeneratedSuite{Suite: s}, nil
}

// LoadSuite reads a generated suite from its JSON encoding and validates its
// well-formedness (connectivity, frequency bands, collision-map consistency,
// area feasibility, spec hash). Malformed input wraps ErrInvalidSuite.
func LoadSuite(r io.Reader) (*GeneratedSuite, error) {
	s, err := bmgen.ReadSuite(r)
	if err != nil {
		return nil, err
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &GeneratedSuite{Suite: s}, nil
}

// Register makes the suite available to every engine: its topology under the
// suite name, and each workload circuit under its recorded name, exactly as
// RegisterTopology and RegisterBenchmark would. After registration,
// Options{Topology: suite.Topology.Name} runs the full pipeline on the
// generated device. Name clashes wrap ErrDuplicateTopology or
// ErrDuplicateBenchmark.
func (s *GeneratedSuite) Register() error {
	t := s.Topology
	err := RegisterTopology(TopologySpec{
		Name:        t.Name,
		Description: t.Description,
		NumQubits:   t.NumQubits,
		Edges:       t.Edges,
		Coords:      t.Coords,
	})
	if err != nil {
		return fmt.Errorf("qplacer: register suite %q: %w", t.Name, err)
	}
	for _, w := range s.Workloads {
		gates := make([]GateSpec, len(w.Gates))
		for i, g := range w.Gates {
			gates[i] = GateSpec{Name: g.Name, Qubits: g.Qubits}
		}
		err := RegisterBenchmark(BenchmarkSpec{
			Name:      w.Name,
			NumQubits: w.NumQubits,
			Gates:     gates,
		})
		if err != nil {
			return fmt.Errorf("qplacer: register suite workload %q: %w", w.Name, err)
		}
	}
	return nil
}
