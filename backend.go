package qplacer

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"qplacer/internal/component"
	"qplacer/internal/frequency"
	"qplacer/internal/geom"
	"qplacer/internal/topology"
)

// This file defines the pluggable stage backends of the pipeline: the Placer
// and Legalizer interfaces, the runtime registries that make backends
// addressable by name from Options (and therefore from the CLI flags and the
// service's JSON requests), and the streaming Progress/Observer API that lets
// callers watch a long run mid-flight.

// Stage identifies the pipeline stage a Progress event belongs to.
type Stage string

const (
	// StagePlace is global placement.
	StagePlace Stage = "place"
	// StageLegalize is legalization.
	StageLegalize Stage = "legalize"
	// StageDetail is detailed placement: the post-legalization refinement
	// stage (see DetailedPlacer).
	StageDetail Stage = "detail"
)

// Progress is one streaming progress event emitted by a backend while it
// runs. Iteration is monotonically non-decreasing within one stage of one
// run; Objective is the backend's own convergence measure (density overflow
// for the gradient placer, annealing cost for the annealer, completed work
// for the legalizers) and is only comparable within a single stage.
type Progress struct {
	Stage     Stage   `json:"stage"`
	Backend   string  `json:"backend"`
	Iteration int     `json:"iteration"`
	Objective float64 `json:"objective"`
}

// Observer receives Progress events. Implementations must be fast and
// non-blocking: backends call OnProgress synchronously from their hot loops.
// An Observer passed to an Engine may be invoked from whichever goroutine
// runs the plan.
type Observer interface {
	OnProgress(Progress)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(Progress)

// OnProgress calls f.
func (f ObserverFunc) OnProgress(p Progress) { f(p) }

// nopObserver is what backends see when no observer is configured, so
// implementations never need a nil check.
type nopObserver struct{}

func (nopObserver) OnProgress(Progress) {}

// StageState is the typed state a stage backend operates on: the normalized
// options of the run, the device, the mutable netlist owned by this run
// (backends move its instances in place), and the frequency collision map.
// The netlist and collision map are the engine's cached stage products;
// backends must treat Device and Collision as read-only.
type StageState struct {
	Options   Options
	Device    *topology.Device
	Netlist   *component.Netlist
	Collision *frequency.CollisionMap

	// Parallelism is the engine's WithParallelism setting for this run: the
	// worker-pool bound a backend may fan its internal hot loops out on
	// (<= 1 means serial). It is a scheduling hint only — a backend MUST
	// produce identical results at every value, which is why it is not part
	// of Options and never enters the plan-cache key. Backends with
	// inherently sequential algorithms (e.g. the annealer's Metropolis
	// chain) are free to ignore it.
	Parallelism int

	// AdaptiveGranularity, when set, lets each parallelizable stage fall
	// back to its serial kernel below an auto-calibrated problem-size
	// cutoff (see WithAdaptiveGranularity). Like Parallelism it is a
	// scheduling hint only: gating selects between bit-identical
	// implementations, so results never depend on it.
	AdaptiveGranularity bool

	// DeltaEval, when set, enables incremental gradient evaluation across
	// placement iterations (see WithDeltaEval). The delta paths are exact
	// by construction; a backend honouring this MUST still produce results
	// bit-identical to a full recompute.
	DeltaEval bool
}

// PlaceOutcome reports a finished global placement.
type PlaceOutcome struct {
	// Region is the placement region the backend worked in; the legalizer
	// packs the layout within (roughly) this rectangle.
	Region     geom.Rect
	Iterations int
	Runtime    time.Duration
	AvgIterMS  float64
	// Overflow is the backend's final density-overflow fraction (0 when the
	// backend does not track one); benchmark harnesses use it to check
	// quality parity across worker counts.
	Overflow float64
}

// Placer is a global-placement backend. Place mutates st.Netlist instance
// positions, emits Progress events on obs (never nil when called by an
// Engine), and honours ctx: cancellation must surface as the context's error
// within a bounded amount of work.
type Placer interface {
	// Name is the registry key ("nesterov", "anneal", ...).
	Name() string
	Place(ctx context.Context, st *StageState, obs Observer) (*PlaceOutcome, error)
}

// LegalizeOutcome reports a finished legalization.
type LegalizeOutcome struct {
	// IntegratedAll is true when every resonator's segments form one
	// contiguous cluster in the final layout.
	IntegratedAll bool
	// QubitDisplacement and SegmentDisplacement are the total distances (mm)
	// legalization moved each instance class.
	QubitDisplacement   float64
	SegmentDisplacement float64
}

// Legalizer is a legalization backend: it snaps the globally placed netlist
// in st.Netlist into an overlap-free layout near region, with the same
// Observer and ctx contract as Placer.
type Legalizer interface {
	// Name is the registry key ("shelf", "greedy", ...).
	Name() string
	Legalize(ctx context.Context, st *StageState, region geom.Rect, obs Observer) (*LegalizeOutcome, error)
}

// DefaultPlacerName and DefaultLegalizerName are the backends a zero Options
// value resolves to — the pipeline as it behaved before backends were
// pluggable.
const (
	DefaultPlacerName    = "nesterov"
	DefaultLegalizerName = "shelf"
)

var (
	backendMu    sync.RWMutex
	placerReg    = map[string]Placer{}
	legalizerReg = map[string]Legalizer{}
)

// RegisterPlacer makes a placement backend available to every engine under
// p.Name(), exactly like the built-in "nesterov" and "anneal" backends.
// Registering a nil placer, an empty name, or a taken name fails (duplicates
// wrap ErrDuplicatePlacer).
func RegisterPlacer(p Placer) error {
	if p == nil {
		return fmt.Errorf("qplacer: register nil placer")
	}
	if p.Name() == "" {
		return fmt.Errorf("qplacer: register placer with empty name")
	}
	backendMu.Lock()
	defer backendMu.Unlock()
	if _, ok := placerReg[p.Name()]; ok {
		return fmt.Errorf("%w %q", ErrDuplicatePlacer, p.Name())
	}
	placerReg[p.Name()] = p
	return nil
}

// RegisterLegalizer makes a legalization backend available to every engine
// under l.Name(), exactly like the built-in "shelf" and "greedy" backends.
// Registering a nil legalizer, an empty name, or a taken name fails
// (duplicates wrap ErrDuplicateLegalizer).
func RegisterLegalizer(l Legalizer) error {
	if l == nil {
		return fmt.Errorf("qplacer: register nil legalizer")
	}
	if l.Name() == "" {
		return fmt.Errorf("qplacer: register legalizer with empty name")
	}
	backendMu.Lock()
	defer backendMu.Unlock()
	if _, ok := legalizerReg[l.Name()]; ok {
		return fmt.Errorf("%w %q", ErrDuplicateLegalizer, l.Name())
	}
	legalizerReg[l.Name()] = l
	return nil
}

// Placers returns every registered placer name, sorted — built-ins plus
// RegisterPlacer additions.
func Placers() []string {
	backendMu.RLock()
	defer backendMu.RUnlock()
	out := make([]string, 0, len(placerReg))
	for name := range placerReg {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Legalizers returns every registered legalizer name, sorted — built-ins
// plus RegisterLegalizer additions.
func Legalizers() []string {
	backendMu.RLock()
	defer backendMu.RUnlock()
	out := make([]string, 0, len(legalizerReg))
	for name := range legalizerReg {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// PlacerByName returns the registered placement backend. The error wraps
// ErrUnknownPlacer when no backend is registered under the name.
func PlacerByName(name string) (Placer, error) {
	backendMu.RLock()
	p, ok := placerReg[name]
	backendMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w %q", ErrUnknownPlacer, name)
	}
	return p, nil
}

// LegalizerByName returns the registered legalization backend. The error
// wraps ErrUnknownLegalizer when no backend is registered under the name.
func LegalizerByName(name string) (Legalizer, error) {
	backendMu.RLock()
	l, ok := legalizerReg[name]
	backendMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w %q", ErrUnknownLegalizer, name)
	}
	return l, nil
}
