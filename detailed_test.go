package qplacer

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"qplacer/internal/geom"
	"qplacer/internal/place"
	"qplacer/internal/testutil"
)

func TestDetailedRegistryListBuiltins(t *testing.T) {
	detaileds := DetailedPlacers()
	for _, want := range []string{"none", "mcmf", "swap"} {
		if !containsStr(detaileds, want) {
			t.Fatalf("DetailedPlacers() = %v missing %q", detaileds, want)
		}
	}
	for i := 1; i < len(detaileds); i++ {
		if detaileds[i-1] >= detaileds[i] {
			t.Fatalf("DetailedPlacers() not sorted: %v", detaileds)
		}
	}
	if _, err := DetailedPlacerByName("warp-drive"); !errors.Is(err, ErrUnknownDetailedPlacer) {
		t.Fatalf("DetailedPlacerByName err = %v, want ErrUnknownDetailedPlacer", err)
	}
}

// stubDetailed is an honest identity refiner: it moves nothing and reports
// the entry HPWL on both sides, so registering it cannot break the
// conformance or monotonicity walls that sweep the registry.
type stubDetailed struct{ name string }

func (s stubDetailed) Name() string { return s.name }

func (s stubDetailed) Refine(_ context.Context, st *StageState, _ geom.Rect, obs Observer) (*DetailOutcome, error) {
	w := place.HPWL(st.Netlist)
	obs.OnProgress(Progress{Stage: StageDetail, Backend: s.name, Iteration: 1, Objective: w})
	return &DetailOutcome{HPWLBefore: w, HPWLAfter: w}, nil
}

func TestRegisterDetailedPlacerDuplicateAndValidation(t *testing.T) {
	name := testutil.UniqueName(t)
	d := stubDetailed{name: name}
	if err := RegisterDetailedPlacer(d); err != nil {
		t.Fatal(err)
	}
	if err := RegisterDetailedPlacer(d); !errors.Is(err, ErrDuplicateDetailedPlacer) {
		t.Fatalf("duplicate detailed placer err = %v, want ErrDuplicateDetailedPlacer", err)
	}
	if err := RegisterDetailedPlacer(stubDetailed{}); err == nil {
		t.Fatal("empty detailed placer name must be rejected")
	}
	if err := RegisterDetailedPlacer(nil); err == nil {
		t.Fatal("nil detailed placer must be rejected")
	}

	// The registered backend is selectable by name, actually runs, and its
	// outcome lands on the plan.
	var sawDetail bool
	eng := New(WithObserver(ObserverFunc(func(p Progress) {
		if p.Stage == StageDetail && p.Backend == name {
			sawDetail = true
		}
	})))
	plan, err := eng.Plan(context.Background(),
		WithTopology("grid"), WithDetailedPlacer(name), WithMaxIters(8))
	if err != nil {
		t.Fatal(err)
	}
	if plan.Options.DetailedPlacer != name {
		t.Fatalf("custom detailed placer not recorded: %+v", plan.Options)
	}
	if !sawDetail {
		t.Fatal("custom detailed placer emitted no StageDetail progress")
	}
	if plan.DetailHPWLBefore != plan.DetailHPWLAfter || plan.DetailHPWLBefore <= 0 {
		t.Fatalf("identity stub outcome drifted: before %v, after %v",
			plan.DetailHPWLBefore, plan.DetailHPWLAfter)
	}
}

func TestOptionsNormalizedDetailedPlacer(t *testing.T) {
	norm, err := Options{}.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	if norm.DetailedPlacer != DefaultDetailedPlacerName {
		t.Fatalf("zero options resolve to %q, want %q", norm.DetailedPlacer, DefaultDetailedPlacerName)
	}
	if _, err := (Options{DetailedPlacer: "warp-drive"}).Normalized(); !errors.Is(err, ErrUnknownDetailedPlacer) {
		t.Fatalf("unknown detailed placer err = %v, want ErrUnknownDetailedPlacer", err)
	}
	// Normalization is idempotent over the detailed field.
	again, err := norm.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	if again != norm {
		t.Fatalf("normalization not idempotent: %+v vs %+v", again, norm)
	}
}

func TestOptionsDetailedJSONRoundTrip(t *testing.T) {
	// The empty field stays off the wire — pre-stage payload bytes survive.
	data, err := json.Marshal(Options{Topology: "grid"})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "detailed_placer") {
		t.Fatalf("empty detailed placer must be omitted: %s", data)
	}

	in := Options{Topology: "grid", DetailedPlacer: "mcmf"}
	data, err = json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var back Options
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back != in {
		t.Fatalf("round-trip %+v -> %+v", in, back)
	}

	// Unknown names pass decoding (plain strings) and are rejected at
	// Normalized with the typed sentinel — the server's 400 mapping.
	var bogus Options
	if err := json.Unmarshal([]byte(`{"topology":"grid","detailed_placer":"fictional"}`), &bogus); err != nil {
		t.Fatal(err)
	}
	if _, err := bogus.Normalized(); !errors.Is(err, ErrUnknownDetailedPlacer) {
		t.Fatalf("err = %v, want ErrUnknownDetailedPlacer", err)
	}
}

func TestPlanCacheKeyedByDetailedPlacer(t *testing.T) {
	ctx := context.Background()
	eng := New(WithTopology("grid"), WithMaxIters(10))

	none, err := eng.Plan(ctx, WithDetailedPlacer("none"))
	if err != nil {
		t.Fatal(err)
	}
	mcmf, err := eng.Plan(ctx, WithDetailedPlacer("mcmf"))
	if err != nil {
		t.Fatal(err)
	}
	swap, err := eng.Plan(ctx, WithDetailedPlacer("swap"))
	if err != nil {
		t.Fatal(err)
	}
	if none == mcmf || none == swap || mcmf == swap {
		t.Fatal("distinct detailed backends shared a cache entry")
	}
	// "" normalizes to "none": both spellings must hit one entry.
	blank, err := eng.Plan(ctx, WithDetailedPlacer(""))
	if err != nil {
		t.Fatal(err)
	}
	if blank != none {
		t.Fatal(`detailed placer "" and "none" did not share a cache entry`)
	}
	// Each refining backend's own warm hit still works.
	again, err := eng.Plan(ctx, WithDetailedPlacer("mcmf"))
	if err != nil {
		t.Fatal(err)
	}
	if again != mcmf {
		t.Fatal("mcmf plan not cached")
	}
}

// TestDetailedCancelMidRun drives both refining backends with an observer
// that cancels the context on their first StageDetail event — the earliest
// moment a caller could react to the stage — and requires the prompt typed
// failure. Both passes emit progress at the top of every round/sweep and
// check the context right after, so this is deterministic, not a race.
func TestDetailedCancelMidRun(t *testing.T) {
	for _, backend := range []string{"mcmf", "swap"} {
		backend := backend
		t.Run(backend, func(t *testing.T) {
			t.Parallel()
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			eng := New(WithObserver(ObserverFunc(func(p Progress) {
				if p.Stage == StageDetail && p.Backend == backend {
					cancel()
				}
			})))
			_, err := eng.Plan(ctx, WithTopology("grid"),
				WithDetailedPlacer(backend), WithMaxIters(10))
			if !errors.Is(err, ErrCancelled) {
				t.Fatalf("err = %v, want ErrCancelled", err)
			}
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v must keep context.Canceled in the chain", err)
			}
		})
	}
}

// TestDetailedOutcomeOnPlan pins the plan-level accounting of a refining
// run: the recorded before/after HPWL bracket the actual layout, and the
// layout's HPWL equals the reported after value exactly.
func TestDetailedOutcomeOnPlan(t *testing.T) {
	ctx := context.Background()
	for _, backend := range []string{"mcmf", "swap"} {
		plan, err := New().Plan(ctx, WithTopology("grid"),
			WithDetailedPlacer(backend), WithMaxIters(15))
		if err != nil {
			t.Fatalf("%s: %v", backend, err)
		}
		if plan.DetailHPWLBefore <= 0 {
			t.Fatalf("%s: DetailHPWLBefore = %v", backend, plan.DetailHPWLBefore)
		}
		if plan.DetailHPWLAfter > plan.DetailHPWLBefore {
			t.Fatalf("%s: HPWL increased %v -> %v", backend, plan.DetailHPWLBefore, plan.DetailHPWLAfter)
		}
		if got := place.HPWL(plan.Netlist); got != plan.DetailHPWLAfter {
			t.Fatalf("%s: layout HPWL %v != reported after %v", backend, got, plan.DetailHPWLAfter)
		}
		if plan.DetailMoved < 0 {
			t.Fatalf("%s: DetailMoved = %d", backend, plan.DetailMoved)
		}
		if plan.DetailMoved == 0 && plan.DetailHPWLAfter != plan.DetailHPWLBefore {
			t.Fatalf("%s: HPWL changed with zero moves", backend)
		}
	}
}
