package qplacer

import (
	"context"
	"fmt"
	"sort"

	"qplacer/internal/geom"
)

// This file defines the third pluggable pipeline stage: detailed placement.
// After legalization produces an overlap-free layout, a DetailedPlacer
// refines it in place — qGDP-style (arxiv 2411.02447): reassignment and
// local-swap moves over the discrete site set the legalizer claimed — under
// a strict improvement contract. The registry mirrors the Placer/Legalizer
// design so detailed placers are addressable by name from Options, both
// CLIs, and the service's JSON requests.

// DetailOutcome reports a finished detailed-placement pass.
type DetailOutcome struct {
	// Moved is how many instances ended at a different position than
	// legalization left them.
	Moved int
	// HPWLBefore and HPWLAfter are the layout's half-perimeter wirelength
	// (mm, summed over the netlist's two-pin nets) entering and leaving the
	// stage. Conforming backends never report HPWLAfter > HPWLBefore.
	HPWLBefore float64
	HPWLAfter  float64
}

// DetailedPlacer is a detailed-placement backend: it refines the legalized
// layout in st.Netlist near region, with the same Observer and ctx contract
// as Placer and Legalizer. Conforming implementations must keep the layout
// Validate-clean (no new error-severity violations) and must never increase
// its HPWL — the conformance suite holds every registered backend to both.
type DetailedPlacer interface {
	// Name is the registry key ("none", "mcmf", "swap", ...).
	Name() string
	Refine(ctx context.Context, st *StageState, region geom.Rect, obs Observer) (*DetailOutcome, error)
}

// DefaultDetailedPlacerName is the backend a zero Options value resolves to:
// the identity stage, i.e. the pipeline exactly as it behaved before
// detailed placement existed. On the wire "" and "none" are interchangeable.
const DefaultDetailedPlacerName = "none"

var detailedReg = map[string]DetailedPlacer{}

// RegisterDetailedPlacer makes a detailed-placement backend available to
// every engine under d.Name(), exactly like the built-in "none", "mcmf", and
// "swap" backends. Registering a nil backend, an empty name, or a taken name
// fails (duplicates wrap ErrDuplicateDetailedPlacer).
func RegisterDetailedPlacer(d DetailedPlacer) error {
	if d == nil {
		return fmt.Errorf("qplacer: register nil detailed placer")
	}
	if d.Name() == "" {
		return fmt.Errorf("qplacer: register detailed placer with empty name")
	}
	backendMu.Lock()
	defer backendMu.Unlock()
	if _, ok := detailedReg[d.Name()]; ok {
		return fmt.Errorf("%w %q", ErrDuplicateDetailedPlacer, d.Name())
	}
	detailedReg[d.Name()] = d
	return nil
}

// DetailedPlacers returns every registered detailed-placer name, sorted —
// built-ins plus RegisterDetailedPlacer additions.
func DetailedPlacers() []string {
	backendMu.RLock()
	defer backendMu.RUnlock()
	out := make([]string, 0, len(detailedReg))
	for name := range detailedReg {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// DetailedPlacerByName returns the registered detailed-placement backend.
// The error wraps ErrUnknownDetailedPlacer when no backend is registered
// under the name.
func DetailedPlacerByName(name string) (DetailedPlacer, error) {
	backendMu.RLock()
	d, ok := detailedReg[name]
	backendMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w %q", ErrUnknownDetailedPlacer, name)
	}
	return d, nil
}
