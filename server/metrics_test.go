package server_test

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"qplacer/server"
	"qplacer/server/journal"
)

// newObsTS is newTS plus access to the manager, for tests that cross-check
// the HTTP metrics surface against the registry.
func newObsTS(t *testing.T, cfg server.Config) (*httptest.Server, *server.Manager) {
	t.Helper()
	srv := server.New(storeCfg(t, cfg))
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	})
	return ts, srv.Manager()
}

// parseProm is a minimal Prometheus text-format scanner: it maps every
// sample series (name plus label set, verbatim) to its value and fails the
// test on any line that is neither a comment nor a well-formed sample.
func parseProm(t *testing.T, text string) map[string]float64 {
	t.Helper()
	samples := map[string]float64{}
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i <= 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		if _, dup := samples[line[:i]]; dup {
			t.Fatalf("duplicate series %q", line[:i])
		}
		samples[line[:i]] = v
	}
	return samples
}

// scrapeProm fetches /metrics as a Prometheus scraper would and parses it.
func scrapeProm(t *testing.T, base string) (map[string]float64, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, base+"/metrics", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/plain")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("prometheus scrape status %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return parseProm(t, string(body)), resp.Header.Get("Content-Type")
}

// TestPrometheusExposition walks a job lifecycle and asserts the Prometheus
// view tracks it: counters start at zero, move with the lifecycle, and never
// decrease, while the JSON view keeps serving the legacy Stats shape.
func TestPrometheusExposition(t *testing.T) {
	ts, _ := newObsTS(t, server.Config{Workers: 1})

	before, ct := scrapeProm(t, ts.URL)
	if !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("prometheus Content-Type %q", ct)
	}
	for _, name := range []string{
		"qplacerd_jobs_submitted_total", "qplacerd_jobs_done_total",
		"qplacerd_jobs_failed_total", "qplacerd_queue_depth",
		"qplacerd_jobs_running", "qplacerd_sse_subscribers",
		"qplacerd_engine_plan_cache_hits_total",
	} {
		if v, ok := before[name]; !ok || v != 0 {
			t.Fatalf("pre-job %s = %v (present %v), want 0", name, v, ok)
		}
	}

	var sub server.SubmitResponse
	if code := call(t, http.MethodPost, ts.URL+"/v1/plans", fastBody(310), &sub); code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	pollJob(t, ts.URL, sub.Job.ID, server.StateDone)
	// Duplicate submit: cache hit, no new job.
	if code := call(t, http.MethodPost, ts.URL+"/v1/plans", fastBody(310), nil); code != http.StatusOK {
		t.Fatalf("dup submit status %d", code)
	}

	after, _ := scrapeProm(t, ts.URL)
	want := map[string]float64{
		"qplacerd_jobs_submitted_total":           1,
		"qplacerd_jobs_done_total":                1,
		"qplacerd_jobs_failed_total":              0,
		"qplacerd_cache_hits_total":               1,
		"qplacerd_queue_depth":                    0,
		"qplacerd_jobs_running":                   0,
		"qplacerd_engine_plan_cache_misses_total": 1,
	}
	for name, v := range want {
		if after[name] != v {
			t.Errorf("%s = %v, want %v", name, after[name], v)
		}
	}
	// Monotonicity: no counter moved backwards across the lifecycle.
	for series, v := range before {
		if strings.Contains(series, "_total") && after[series] < v {
			t.Errorf("counter %s went backwards: %v -> %v", series, v, after[series])
		}
	}
	// The plan latency histogram saw exactly the one successful plan.
	histCount := 0.0
	for series, v := range after {
		if strings.HasPrefix(series, "qplacerd_plan_seconds_count{") {
			histCount += v
			if !strings.Contains(series, `topology="grid"`) {
				t.Errorf("plan histogram labels wrong: %s", series)
			}
		}
	}
	if histCount != 1 {
		t.Errorf("qplacerd_plan_seconds count = %v, want 1", histCount)
	}
	// HTTP request counters labeled the submit route with its pattern.
	found := false
	for series := range after {
		if strings.HasPrefix(series, "qplacerd_http_requests_total{") &&
			strings.Contains(series, "POST /v1/plans") {
			found = true
		}
	}
	if !found {
		t.Error("no qplacerd_http_requests_total series for POST /v1/plans")
	}

	// The legacy JSON view still serves — same registry, same numbers.
	var stats server.Stats
	if code := call(t, http.MethodGet, ts.URL+"/metrics", "", &stats); code != http.StatusOK {
		t.Fatalf("JSON metrics status %d", code)
	}
	if stats.Submitted != 1 || stats.Done != 1 || stats.CacheHits != 1 {
		t.Fatalf("JSON stats: %+v", stats)
	}
}

// TestMetricNamesLint asserts every exposed series belongs to a registered
// family — the same check CI runs against a live daemon, so a metric that is
// exposed but never registered (or renamed in one place only) fails here.
func TestMetricNamesLint(t *testing.T) {
	ts, mgr := newObsTS(t, server.Config{Workers: 1})
	var sub server.SubmitResponse
	if code := call(t, http.MethodPost, ts.URL+"/v1/plans", fastBody(311), &sub); code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	pollJob(t, ts.URL, sub.Job.ID, server.StateDone)

	registered := map[string]bool{}
	for _, n := range mgr.MetricNames() {
		registered[n] = true
	}
	samples, _ := scrapeProm(t, ts.URL)
	for series := range samples {
		name := series
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		}
		if registered[name] {
			continue
		}
		base := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			base = strings.TrimSuffix(base, suf)
		}
		if !registered[base] {
			t.Errorf("series %q has no registered family", series)
		}
	}
	if len(samples) == 0 {
		t.Fatal("empty exposition")
	}
}

// TestRequestIDPropagation covers the correlation path end to end: a
// client-supplied X-Request-ID is echoed on the response and lands in the
// job record; a request without one gets a generated ID.
func TestRequestIDPropagation(t *testing.T) {
	ts, _ := newObsTS(t, server.Config{Workers: 1})

	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/plans", strings.NewReader(fastBody(312)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-ID", "trace-me-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "trace-me-42" {
		t.Fatalf("response X-Request-ID = %q, want echo", got)
	}
	var sub server.SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	if sub.Job.Request.RequestID != "trace-me-42" {
		t.Fatalf("job record request_id = %q", sub.Job.Request.RequestID)
	}
	// The ID survives a later poll of the job.
	var view server.JobView
	if code := call(t, http.MethodGet, ts.URL+"/v1/jobs/"+sub.Job.ID, "", &view); code != http.StatusOK {
		t.Fatalf("poll status %d", code)
	}
	if view.Request.RequestID != "trace-me-42" {
		t.Fatalf("polled request_id = %q", view.Request.RequestID)
	}

	// No header: one is generated (16 hex chars) and echoed.
	resp2, err := http.Post(ts.URL+"/v1/jobs-nope", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	gen := resp2.Header.Get("X-Request-ID")
	if len(gen) != 16 {
		t.Fatalf("generated X-Request-ID = %q, want 16 hex chars", gen)
	}
	if _, err := strconv.ParseUint(gen, 16, 64); err != nil {
		t.Fatalf("generated X-Request-ID %q not hex: %v", gen, err)
	}
}

// TestSSEKeepaliveSeq pins the keepalive format: an idle stream (here, a job
// parked behind a busy worker) emits comments advertising the job's latest
// event seq.
func TestSSEKeepaliveSeq(t *testing.T) {
	cfg := server.ConfigWithKeepalive(server.Config{Workers: 1}, 50*time.Millisecond)
	ts, _ := newObsTS(t, cfg)

	// Occupy the only worker, then park a second job in the queue: its
	// stream replays the queued event and then idles.
	var slow, parked server.SubmitResponse
	if code := call(t, http.MethodPost, ts.URL+"/v1/plans", slowBody(313), &slow); code != http.StatusAccepted {
		t.Fatalf("slow submit status %d", code)
	}
	if code := call(t, http.MethodPost, ts.URL+"/v1/plans", fastBody(314), &parked); code != http.StatusAccepted {
		t.Fatalf("parked submit status %d", code)
	}

	_, br := openStream(t, ts.URL, parked.Job.ID, "")
	deadline := time.After(10 * time.Second)
	lines := make(chan string)
	go func() {
		for {
			line, err := br.ReadString('\n')
			if err != nil {
				close(lines)
				return
			}
			lines <- strings.TrimRight(line, "\n")
		}
	}()
	for {
		select {
		case line, ok := <-lines:
			if !ok {
				t.Fatal("stream closed before any keepalive")
			}
			if !strings.HasPrefix(line, ": keepalive") {
				continue
			}
			rest := strings.TrimPrefix(line, ": keepalive seq=")
			seq, err := strconv.ParseUint(rest, 10, 64)
			if err != nil {
				t.Fatalf("keepalive line %q: %v", line, err)
			}
			if seq < 1 {
				t.Fatalf("keepalive seq = %d, want >= 1 (queued event)", seq)
			}
			// Unpark the worker so cleanup does not wait out the slow job.
			call(t, http.MethodDelete, ts.URL+"/v1/jobs/"+slow.Job.ID, "", nil)
			return
		case <-deadline:
			t.Fatal("no keepalive within 10s at a 50ms interval")
		}
	}
}

// TestDoneEventCarriesTimings asserts the terminal SSE event of a finished
// job includes the plan's span breakdown.
func TestDoneEventCarriesTimings(t *testing.T) {
	ts, _ := newObsTS(t, server.Config{Workers: 1})
	var sub server.SubmitResponse
	if code := call(t, http.MethodPost, ts.URL+"/v1/plans", fastBody(315), &sub); code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	pollJob(t, ts.URL, sub.Job.ID, server.StateDone)
	_, br := openStream(t, ts.URL, sub.Job.ID, "")
	frames := drainStream(t, br)
	if len(frames) == 0 {
		t.Fatal("no frames replayed")
	}
	last := frames[len(frames)-1].Event
	if last.State != server.StateDone {
		t.Fatalf("last frame state %q, want done", last.State)
	}
	if last.Timings == nil || last.Timings.Name != "plan" {
		t.Fatalf("done event timings = %+v, want plan span tree", last.Timings)
	}
	if last.Timings.Find("place") == nil {
		t.Fatal("done event timings missing place child")
	}
}

// TestMetricsScrapeUnderLoad hammers both /metrics formats while jobs run
// concurrently — the registry's race test at the service level (run with
// -race in CI).
func TestMetricsScrapeUnderLoad(t *testing.T) {
	ts, _ := newObsTS(t, server.Config{Workers: 2})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			var sub server.SubmitResponse
			if code := call(t, http.MethodPost, ts.URL+"/v1/plans",
				fastBody(seed), &sub); code != http.StatusAccepted && code != http.StatusOK {
				t.Errorf("submit status %d", code)
				return
			}
			pollJob(t, ts.URL, sub.Job.ID, server.StateDone)
		}(int64(320 + i))
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 40; i++ {
			scrapeProm(t, ts.URL)
			var stats server.Stats
			call(t, http.MethodGet, ts.URL+"/metrics", "", &stats)
		}
	}()
	wg.Wait()
	samples, _ := scrapeProm(t, ts.URL)
	if got := samples["qplacerd_jobs_done_total"]; got != 4 {
		t.Fatalf("done_total = %v, want 4", got)
	}
}

// TestHealthzBuildInfo asserts /healthz now reports how the binary was
// built.
func TestHealthzBuildInfo(t *testing.T) {
	ts, _ := newObsTS(t, server.Config{Workers: 1})
	var health struct {
		Status string `json:"status"`
		Build  struct {
			GoVersion string `json:"go_version"`
		} `json:"build"`
	}
	if code := call(t, http.MethodGet, ts.URL+"/healthz", "", &health); code != http.StatusOK {
		t.Fatalf("healthz status %d", code)
	}
	if health.Status != "ok" || health.Build.GoVersion == "" {
		t.Fatalf("healthz: %+v", health)
	}
}

// TestJournalFsyncObserver covers the store-side hook directly: every
// durable put reports its fsync latency.
func TestJournalFsyncObserver(t *testing.T) {
	js, err := journal.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer js.Close()
	var count int
	js.SetFsyncObserver(func(d time.Duration) {
		if d < 0 {
			t.Errorf("negative fsync duration %v", d)
		}
		count++
	})
	if err := js.PutJob(server.JobRecord{ID: "job-1", Seq: 1, State: server.StateQueued}); err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Fatalf("fsync observations after PutJob = %d, want 1", count)
	}
	if err := js.DeleteJob("job-1"); err != nil {
		t.Fatal(err)
	}
	if count != 2 {
		t.Fatalf("fsync observations after DeleteJob = %d, want 2", count)
	}
}

// TestJournalFsyncHistogramWired asserts the manager connects a journal
// store to the qplacerd_journal_fsync_seconds histogram.
func TestJournalFsyncHistogramWired(t *testing.T) {
	js, err := journal.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ts, _ := newObsTS(t, server.Config{Workers: 1, Store: js})
	var sub server.SubmitResponse
	if code := call(t, http.MethodPost, ts.URL+"/v1/plans", fastBody(330), &sub); code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	pollJob(t, ts.URL, sub.Job.ID, server.StateDone)
	samples, _ := scrapeProm(t, ts.URL)
	if got := samples["qplacerd_journal_fsync_seconds_count"]; got < 2 {
		t.Fatalf("fsync count = %v, want >= 2 (submit + done puts)", got)
	}
}
