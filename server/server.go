package server

import (
	"context"
	"net"
	"net/http"
	"time"
)

// Server wires the job manager to its HTTP surface.
//
//	POST   /v1/plans            submit a placement job
//	POST   /v1/validate         synchronously verify a placement (422 when invalid)
//	GET    /v1/jobs             list jobs (paginated, ?status= filter)
//	GET    /v1/jobs/{id}        poll status, live progress, queue position
//	GET    /v1/jobs/{id}/result fetch the ResultDocument of a done job
//	GET    /v1/jobs/{id}/events stream progress over SSE (Last-Event-ID resume)
//	DELETE /v1/jobs/{id}        cancel a queued or running job
//	GET    /v1/topologies       registered device topologies
//	GET    /v1/benchmarks       registered benchmark circuits
//	GET    /v1/placers          registered placement backends
//	GET    /v1/legalizers       registered legalization backends
//	GET    /v1/detailed-placers registered detailed-placement backends
//	GET    /healthz             liveness + build info
//	GET    /metrics             service counters (JSON, or Prometheus text via Accept)
//
// Every request passes through the observability middleware: an
// X-Request-ID is propagated (or generated) and echoed, an access-log line
// is emitted, and qplacerd_http_requests_total is incremented by route and
// status.
type Server struct {
	mgr     *Manager
	mux     *http.ServeMux
	handler http.Handler // mux wrapped in the observability middleware
	httpSrv *http.Server
	started time.Time
	clock   func() time.Time
}

// New builds a server (and its manager/workers) from the config.
func New(cfg Config) *Server {
	s := &Server{
		mgr:   NewManager(cfg),
		mux:   http.NewServeMux(),
		clock: time.Now,
	}
	s.handler = s.withObservability(s.mux)
	// Built here, not in Serve, so a Shutdown racing a just-started Serve
	// goroutine still sees (and closes) the HTTP server.
	s.httpSrv = &http.Server{Handler: s.handler}
	s.started = s.clock()
	s.mux.HandleFunc("POST /v1/plans", s.handleSubmit)
	s.mux.HandleFunc("POST /v1/validate", s.handleValidate)
	s.mux.HandleFunc("GET /v1/jobs", s.handleJobs)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /v1/topologies", s.handleTopologies)
	s.mux.HandleFunc("GET /v1/benchmarks", s.handleBenchmarks)
	s.mux.HandleFunc("GET /v1/placers", s.handlePlacers)
	s.mux.HandleFunc("GET /v1/legalizers", s.handleLegalizers)
	s.mux.HandleFunc("GET /v1/detailed-placers", s.handleDetailedPlacers)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

// Manager exposes the job manager, e.g. for embedding the service without
// HTTP in front of it.
func (s *Server) Manager() *Manager { return s.mgr }

// Handler returns the HTTP surface — routes wrapped in the observability
// middleware — ready to mount on any listener or httptest server.
func (s *Server) Handler() http.Handler { return s.handler }

// Serve runs the HTTP server on ln until Shutdown. It returns
// http.ErrServerClosed after a clean shutdown, like net/http.
func (s *Server) Serve(ln net.Listener) error {
	return s.httpSrv.Serve(ln)
}

// ListenAndServe binds addr and calls Serve.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Shutdown drains gracefully: the listener stops accepting, then queued and
// running jobs run to completion until ctx expires, at which point they are
// cancelled and awaited.
func (s *Server) Shutdown(ctx context.Context) error {
	httpErr := s.httpSrv.Shutdown(ctx)
	if err := s.mgr.Shutdown(ctx); err != nil {
		return err
	}
	return httpErr
}
