package server

import "time"

// ConfigWithTestHooks returns cfg with the attempt's liveness signals
// (heartbeat and the observer's lease extension) disabled and an aggressive
// lease sweep, so the external test package can force lease expiry (which
// never happens in a healthy in-process run).
func ConfigWithTestHooks(cfg Config, sweepEvery time.Duration) Config {
	cfg.disableHeartbeat = true
	cfg.sweepEvery = sweepEvery
	return cfg
}

// ConfigWithKeepalive returns cfg with the SSE keepalive interval shortened,
// so tests can observe keepalive comments without waiting 15 seconds.
func ConfigWithKeepalive(cfg Config, keepalive time.Duration) Config {
	cfg.sseKeepalive = keepalive
	return cfg
}
