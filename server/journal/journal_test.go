package journal_test

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"qplacer/server"
	"qplacer/server/journal"
)

func rec(id string, seq uint64, state server.State) server.JobRecord {
	return server.JobRecord{
		ID:      id,
		Seq:     seq,
		State:   state,
		Created: time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC),
	}
}

func ev(seq uint64, typ string) server.Event {
	return server.Event{Seq: seq, Type: typ, Time: time.Date(2026, 8, 7, 12, 0, int(seq), 0, time.UTC)}
}

// TestRoundTripAcrossReopen is the core durability contract: jobs and their
// event histories written to one Store instance are fully visible to a
// second instance opened on the same directory.
func TestRoundTripAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	st, err := journal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	done := rec("job-1", 1, server.StateDone)
	done.Result = json.RawMessage(`{"plan":{"ok":true}}`)
	if err := st.PutJob(done); err != nil {
		t.Fatal(err)
	}
	if err := st.PutJob(rec("job-2", 2, server.StateQueued)); err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 3; i++ {
		if err := st.AppendEvent("job-2", ev(i, server.EventState)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := journal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	jobs, err := st2.LoadJobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 2 {
		t.Fatalf("LoadJobs after reopen: %d jobs, want 2", len(jobs))
	}
	byID := map[string]server.JobRecord{}
	for _, j := range jobs {
		byID[j.ID] = j
	}
	if got := byID["job-1"]; got.State != server.StateDone || string(got.Result) != `{"plan":{"ok":true}}` {
		t.Fatalf("job-1 after reopen: %+v", got)
	}
	if got := byID["job-2"]; got.State != server.StateQueued || got.Seq != 2 {
		t.Fatalf("job-2 after reopen: %+v", got)
	}
	evs, err := st2.EventsSince("job-2", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 2 || evs[0].Seq != 2 || evs[1].Seq != 3 {
		t.Fatalf("EventsSince(1) after reopen: %+v", evs)
	}
}

// TestCompactionAdvancesGeneration checks the snapshot-generation protocol:
// every Open compacts, the live log is named after the snapshot generation,
// and older-generation logs are deleted (so a crash between snapshot rename
// and log truncation can never replay stale ops).
func TestCompactionAdvancesGeneration(t *testing.T) {
	dir := t.TempDir()
	for i := 0; i < 3; i++ {
		st, err := journal.Open(dir)
		if err != nil {
			t.Fatalf("open %d: %v", i, err)
		}
		if err := st.PutJob(rec(fmt.Sprintf("job-%d", i), uint64(i+1), server.StateDone)); err != nil {
			t.Fatal(err)
		}
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
		logs, _ := filepath.Glob(filepath.Join(dir, "journal-*.log"))
		if len(logs) != 1 {
			t.Fatalf("after close %d: %d log files %v, want exactly 1", i, len(logs), logs)
		}
	}
	raw, err := os.ReadFile(filepath.Join(dir, "snapshot.json"))
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Generation uint64            `json:"generation"`
		Jobs       []json.RawMessage `json:"jobs"`
	}
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatal(err)
	}
	// Each Open compacts once and each Close compacts once: 3 cycles ≥ 6.
	if snap.Generation < 6 {
		t.Fatalf("snapshot generation %d, want ≥ 6 after 3 open/close cycles", snap.Generation)
	}
	if len(snap.Jobs) != 3 {
		t.Fatalf("snapshot holds %d jobs, want 3", len(snap.Jobs))
	}
}

// TestEventRetentionCap keeps per-job history bounded: only the newest
// DefaultEventRetention events survive, and resume from an evicted Seq
// returns the oldest retained window.
func TestEventRetentionCap(t *testing.T) {
	st, err := journal.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	n := server.DefaultEventRetention + 10
	for i := 1; i <= n; i++ {
		if err := st.AppendEvent("job-1", ev(uint64(i), server.EventProgress)); err != nil {
			t.Fatal(err)
		}
	}
	evs, err := st.EventsSince("job-1", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != server.DefaultEventRetention {
		t.Fatalf("retained %d events, want %d", len(evs), server.DefaultEventRetention)
	}
	if evs[0].Seq != 11 || evs[len(evs)-1].Seq != uint64(n) {
		t.Fatalf("retained window [%d,%d], want [11,%d]", evs[0].Seq, evs[len(evs)-1].Seq, n)
	}
}

// TestDeleteJobDropsEvents verifies deletion is durable and takes the event
// history with it.
func TestDeleteJobDropsEvents(t *testing.T) {
	dir := t.TempDir()
	st, err := journal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.PutJob(rec("job-1", 1, server.StateDone)); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendEvent("job-1", ev(1, server.EventState)); err != nil {
		t.Fatal(err)
	}
	if err := st.DeleteJob("job-1"); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := journal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	jobs, _ := st2.LoadJobs()
	if len(jobs) != 0 {
		t.Fatalf("deleted job survived reopen: %+v", jobs)
	}
	evs, _ := st2.EventsSince("job-1", 0)
	if len(evs) != 0 {
		t.Fatalf("deleted job's events survived reopen: %+v", evs)
	}
}

// TestTornTailTolerated simulates a crash mid-append: a log whose final
// line is truncated must load cleanly, keeping every complete record
// before the tear.
func TestTornTailTolerated(t *testing.T) {
	dir := t.TempDir()
	keep := rec("job-1", 1, server.StateQueued)
	keepLine, err := json.Marshal(struct {
		Op  string            `json:"op"`
		Job *server.JobRecord `json:"job"`
	}{"put", &keep})
	if err != nil {
		t.Fatal(err)
	}
	snap, err := json.Marshal(struct {
		Generation uint64             `json:"generation"`
		Jobs       []server.JobRecord `json:"jobs"`
	}{Generation: 7, Jobs: nil})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "snapshot.json"), snap, 0o644); err != nil {
		t.Fatal(err)
	}
	log := string(keepLine) + "\n" + `{"op":"put","job":{"id":"job-torn","se`
	if err := os.WriteFile(filepath.Join(dir, "journal-7.log"), []byte(log), 0o644); err != nil {
		t.Fatal(err)
	}
	// A log from a stale generation must be ignored outright: it was already
	// folded into a newer snapshot.
	stale := `{"op":"del","id":"job-1"}` + "\n"
	if err := os.WriteFile(filepath.Join(dir, "journal-6.log"), []byte(stale), 0o644); err != nil {
		t.Fatal(err)
	}

	st, err := journal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	jobs, err := st.LoadJobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 || jobs[0].ID != "job-1" || jobs[0].State != server.StateQueued {
		t.Fatalf("after torn-tail load: %+v, want just job-1 queued", jobs)
	}
	if logs, _ := filepath.Glob(filepath.Join(dir, "journal-*.log")); len(logs) != 1 {
		t.Fatalf("stale-generation log not cleaned up: %v", logs)
	}
}

// TestClosedStoreRefusesWrites pins the post-Close contract the manager's
// lease sweeper relies on: writes report os.ErrClosed instead of touching
// released files, and Close itself is idempotent.
func TestClosedStoreRefusesWrites(t *testing.T) {
	st, err := journal.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("second Close: %v, want nil", err)
	}
	if err := st.PutJob(rec("job-1", 1, server.StateQueued)); !errors.Is(err, os.ErrClosed) {
		t.Fatalf("PutJob after Close: %v, want os.ErrClosed", err)
	}
	if err := st.AppendEvent("job-1", ev(1, server.EventState)); !errors.Is(err, os.ErrClosed) {
		t.Fatalf("AppendEvent after Close: %v, want os.ErrClosed", err)
	}
	if err := st.DeleteJob("job-1"); !errors.Is(err, os.ErrClosed) {
		t.Fatalf("DeleteJob after Close: %v, want os.ErrClosed", err)
	}
}
