// Package journal is the durable server.Store backend: an append-only JSON
// log plus a periodically compacted snapshot under one data directory, so a
// qplacerd killed mid-job recovers its backlog (and its finished results)
// on the next boot.
//
// Layout under the data directory:
//
//	snapshot.json    full state as of the last compaction (atomic rename)
//	journal-N.log    newline-delimited ops since snapshot generation N
//
// Every snapshot carries a generation number and the live log file is named
// after it, so a crash between writing a snapshot and truncating the log
// can never replay stale operations: a log from another generation is
// simply deleted. Job puts and deletes are fsynced (they are rare lifecycle
// transitions); progress events are buffered and flushed in batches, so a
// hard kill may lose the newest few progress events but never a lifecycle
// transition — recovery then just re-runs the job from its last durable
// state.
package journal

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"qplacer/server"
)

const (
	snapshotName = "snapshot.json"
	// flushEvery bounds how many buffered event appends may precede a
	// flush to the OS, and compactAfter how many log records may accumulate
	// before the log is folded into a fresh snapshot.
	flushEvery   = 64
	compactAfter = 100000
)

// op is one journal log line.
type op struct {
	// Op is "put", "del", or "ev".
	Op    string            `json:"op"`
	Job   *server.JobRecord `json:"job,omitempty"` // put
	ID    string            `json:"id,omitempty"`  // del, ev
	Event *server.Event     `json:"ev,omitempty"`  // ev
}

// snapshot is the compacted on-disk state.
type snapshot struct {
	Generation uint64                    `json:"generation"`
	Jobs       []server.JobRecord        `json:"jobs"`
	Events     map[string][]server.Event `json:"events,omitempty"`
}

// Store implements server.Store on an append-only journal. It keeps a full
// in-memory mirror, so reads never touch disk.
type Store struct {
	mu  sync.Mutex
	dir string
	gen uint64

	f *os.File
	w *bufio.Writer

	jobs   map[string]server.JobRecord
	events map[string][]server.Event

	unflushed  int // buffered event ops not yet flushed
	logRecords int // ops appended since the last compaction
	closed     bool

	// fsyncObs, when set, observes the duration of every fsync of the live
	// log (the latency a durable PutJob pays). The manager wires it to the
	// journal fsync histogram.
	fsyncObs func(time.Duration)
}

var _ server.Store = (*Store)(nil)

// SetFsyncObserver installs fn to be called with the duration of every
// journal fsync (durable job puts/deletes and explicit flushes). nil
// detaches. Safe to call concurrently with store use.
func (st *Store) SetFsyncObserver(fn func(time.Duration)) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.fsyncObs = fn
}

// syncLog fsyncs the live log file, reporting the latency to the observer.
// Caller holds mu.
func (st *Store) syncLog() error {
	start := time.Now()
	err := st.f.Sync()
	if st.fsyncObs != nil {
		st.fsyncObs(time.Since(start))
	}
	return err
}

// Open loads (or initializes) the journal under dir: snapshot first, then a
// replay of the matching generation's log, then an immediate compaction so
// every boot starts from a fresh snapshot and an empty log.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: creating %s: %w", dir, err)
	}
	st := &Store{
		dir:    dir,
		jobs:   map[string]server.JobRecord{},
		events: map[string][]server.Event{},
	}
	if err := st.load(); err != nil {
		return nil, err
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if err := st.compact(); err != nil {
		return nil, err
	}
	return st, nil
}

// load reads the snapshot and replays the current generation's log into the
// mirror. A truncated final log line (torn write at the moment of a crash)
// is tolerated and dropped.
func (st *Store) load() error {
	if raw, err := os.ReadFile(filepath.Join(st.dir, snapshotName)); err == nil {
		var snap snapshot
		if err := json.Unmarshal(raw, &snap); err != nil {
			return fmt.Errorf("journal: corrupt snapshot: %w", err)
		}
		st.gen = snap.Generation
		for _, rec := range snap.Jobs {
			st.jobs[rec.ID] = rec
		}
		for id, evs := range snap.Events {
			st.events[id] = evs
		}
	} else if !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("journal: reading snapshot: %w", err)
	}

	f, err := os.Open(st.logPath(st.gen))
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("journal: opening log: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 64<<20) // results can be large
	for sc.Scan() {
		var o op
		if err := json.Unmarshal(sc.Bytes(), &o); err != nil {
			// A torn tail line is the expected shape of a crash; anything
			// after it cannot be trusted either way, so stop replaying.
			break
		}
		st.apply(o)
	}
	if err := sc.Err(); err != nil && !errors.Is(err, bufio.ErrTooLong) {
		return fmt.Errorf("journal: replaying log: %w", err)
	}
	return nil
}

// apply folds one log op into the mirror.
func (st *Store) apply(o op) {
	switch o.Op {
	case "put":
		if o.Job != nil {
			st.jobs[o.Job.ID] = *o.Job
		}
	case "del":
		delete(st.jobs, o.ID)
		delete(st.events, o.ID)
	case "ev":
		if o.Event != nil {
			st.appendEventLocked(o.ID, *o.Event)
		}
	}
}

// appendEventLocked appends to the mirror with the retention cap, skipping
// duplicates (a replay may see an event both in the snapshot and the log).
func (st *Store) appendEventLocked(id string, ev server.Event) {
	evs := st.events[id]
	if n := len(evs); n > 0 && evs[n-1].Seq >= ev.Seq {
		return
	}
	evs = append(evs, ev)
	if len(evs) > server.DefaultEventRetention {
		evs = evs[len(evs)-server.DefaultEventRetention:]
	}
	st.events[id] = evs
}

func (st *Store) logPath(gen uint64) string {
	return filepath.Join(st.dir, fmt.Sprintf("journal-%d.log", gen))
}

// compact writes the mirror as a fresh snapshot (tmp + fsync + rename),
// starts the next generation's empty log, and deletes every older log.
// Caller holds mu.
func (st *Store) compact() error {
	if st.f != nil {
		if err := st.w.Flush(); err != nil {
			return err
		}
		st.f.Close()
		st.f = nil
	}
	next := st.gen + 1
	snap := snapshot{Generation: next, Events: st.events}
	snap.Jobs = make([]server.JobRecord, 0, len(st.jobs))
	for _, rec := range st.jobs {
		snap.Jobs = append(snap.Jobs, rec)
	}
	sort.Slice(snap.Jobs, func(i, j int) bool { return snap.Jobs[i].Seq < snap.Jobs[j].Seq })
	raw, err := json.Marshal(snap)
	if err != nil {
		return fmt.Errorf("journal: marshalling snapshot: %w", err)
	}
	tmp := filepath.Join(st.dir, snapshotName+".tmp")
	tf, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := tf.Write(raw); err != nil {
		tf.Close()
		return err
	}
	if err := tf.Sync(); err != nil {
		tf.Close()
		return err
	}
	if err := tf.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(st.dir, snapshotName)); err != nil {
		return err
	}

	f, err := os.OpenFile(st.logPath(next), os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	// Older generations are now fully folded into the snapshot.
	old, _ := filepath.Glob(filepath.Join(st.dir, "journal-*.log"))
	for _, p := range old {
		if p != st.logPath(next) {
			_ = os.Remove(p)
		}
	}
	st.gen = next
	st.f = f
	st.w = bufio.NewWriterSize(f, 1<<16)
	st.unflushed = 0
	st.logRecords = 0
	return nil
}

// append writes one op to the log. sync forces it (and everything buffered
// before it) down to the file; non-sync appends are flushed in batches.
// Caller holds mu.
func (st *Store) append(o op, sync bool) error {
	if st.closed {
		return os.ErrClosed
	}
	raw, err := json.Marshal(o)
	if err != nil {
		return err
	}
	if _, err := st.w.Write(raw); err != nil {
		return err
	}
	if err := st.w.WriteByte('\n'); err != nil {
		return err
	}
	st.logRecords++
	if sync {
		if err := st.w.Flush(); err != nil {
			return err
		}
		if err := st.syncLog(); err != nil {
			return err
		}
		st.unflushed = 0
	} else {
		st.unflushed++
		if st.unflushed >= flushEvery {
			if err := st.w.Flush(); err != nil {
				return err
			}
			st.unflushed = 0
		}
	}
	if st.logRecords >= compactAfter {
		return st.compact()
	}
	return nil
}

// PutJob implements server.Store; job lifecycle transitions are durable per
// call.
func (st *Store) PutJob(rec server.JobRecord) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return os.ErrClosed
	}
	st.jobs[rec.ID] = rec
	return st.append(op{Op: "put", Job: &rec}, true)
}

// DeleteJob implements server.Store.
func (st *Store) DeleteJob(id string) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return os.ErrClosed
	}
	delete(st.jobs, id)
	delete(st.events, id)
	return st.append(op{Op: "del", ID: id}, true)
}

// AppendEvent implements server.Store; events are buffered (they fire from
// the engines' hot loops) and flushed in batches.
func (st *Store) AppendEvent(id string, ev server.Event) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return os.ErrClosed
	}
	st.appendEventLocked(id, ev)
	return st.append(op{Op: "ev", ID: id, Event: &ev}, false)
}

// EventsSince implements server.Store.
func (st *Store) EventsSince(id string, after uint64) ([]server.Event, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	evs := st.events[id]
	i := sort.Search(len(evs), func(i int) bool { return evs[i].Seq > after })
	out := make([]server.Event, len(evs)-i)
	copy(out, evs[i:])
	return out, nil
}

// LoadJobs implements server.Store.
func (st *Store) LoadJobs() ([]server.JobRecord, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	recs := make([]server.JobRecord, 0, len(st.jobs))
	for _, rec := range st.jobs {
		recs = append(recs, rec)
	}
	return recs, nil
}

// Flush implements server.Store: buffered appends reach the file and the
// file reaches the medium.
func (st *Store) Flush() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed || st.f == nil {
		return nil
	}
	if err := st.w.Flush(); err != nil {
		return err
	}
	st.unflushed = 0
	return st.syncLog()
}

// Close implements server.Store: one final compaction, then release the
// files. Close is idempotent; every method after it reports os.ErrClosed.
func (st *Store) Close() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return nil
	}
	err := st.compact()
	if st.f != nil {
		if cerr := st.f.Close(); err == nil {
			err = cerr
		}
		st.f = nil
	}
	st.closed = true
	return err
}
