package server

import (
	"context"
	"encoding/json"
	"sort"
	"strings"
	"sync"
	"time"

	"qplacer"
)

// State is the lifecycle stage of a job.
type State string

const (
	// StateQueued means the job is waiting for a worker.
	StateQueued State = "queued"
	// StateRunning means a worker holds the job's lease and is placing or
	// evaluating it.
	StateRunning State = "running"
	// StateDone means the job finished and its result is available.
	StateDone State = "done"
	// StateFailed means the pipeline returned an error (or the retry budget
	// ran out).
	StateFailed State = "failed"
	// StateCancelled means the job was cancelled (while queued or mid-run).
	StateCancelled State = "cancelled"
)

// terminal reports whether the state is final.
func (s State) terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// validStateFilter reports whether s names a state usable as a list filter.
func validStateFilter(s State) bool {
	switch s {
	case StateQueued, StateRunning, StateDone, StateFailed, StateCancelled:
		return true
	}
	return false
}

// Request is a normalized placement job: canonical engine options plus the
// evaluation suite. Submit normalizes incoming requests into this form, and
// the result cache keys on it — two requests that normalize identically are
// one job.
type Request struct {
	Options qplacer.Options `json:"options"`
	// Benchmarks to evaluate, in order. Submit expands an empty list to
	// every benchmark registered at submission time.
	Benchmarks []string `json:"benchmarks"`
	// Mappings per benchmark (Submit defaults it to qplacer.DefaultMappings).
	Mappings int `json:"mappings"`
	// Client identifies the submitter for per-client quotas (the HTTP layer
	// fills it from X-Client-ID, falling back to the remote address). It is
	// deliberately excluded from the dedup key: identical requests from two
	// clients share one job, charged to whoever submitted first.
	Client string `json:"client,omitempty"`
	// RequestID is the correlation ID of the HTTP request that created the
	// job (the X-Request-ID header, generated when absent), threaded through
	// job records and logs so a job can be traced back to its submit. Like
	// Client, it is excluded from the dedup key: a cache-hit submit keeps the
	// original job's ID.
	RequestID string `json:"request_id,omitempty"`
}

// jobKey is the comparable dedup identity of a normalized Request.
type jobKey struct {
	opts     qplacer.Options
	benches  string
	mappings int
}

func (r Request) key() jobKey {
	return jobKey{
		opts:     r.Options,
		benches:  strings.Join(r.Benchmarks, "\x1f"),
		mappings: r.Mappings,
	}
}

// Event types recorded in a job's history.
const (
	// EventState records a lifecycle transition (queued, running, terminal).
	EventState = "state"
	// EventProgress records a backend Progress callback.
	EventProgress = "progress"
)

// Event is one entry in a job's history: the unit GET /v1/jobs/{id}/events
// streams over SSE and the Store retains for Last-Event-ID resume. Seq is
// per-job, starts at 1, and increases by exactly 1 per event.
type Event struct {
	Seq  uint64    `json:"seq"`
	Time time.Time `json:"time"`
	Type string    `json:"type"` // EventState | EventProgress
	// State is set on EventState events.
	State State `json:"state,omitempty"`
	// Attempt is the 1-based claim count, set when the event marks a claim
	// (state=running) so retries are visible in the stream.
	Attempt int `json:"attempt,omitempty"`
	// Progress is set on EventProgress events.
	Progress *ProgressView `json:"progress,omitempty"`
	// Error carries the terminal error message on failed/cancelled states.
	Error string `json:"error,omitempty"`
	// Timings is the plan's span breakdown, attached to the terminal done
	// event so SSE consumers get the per-stage attribution without a second
	// round-trip to the result endpoint.
	Timings *qplacer.SpanTiming `json:"timings,omitempty"`
}

// JobRecord is the persistable snapshot of a job: everything a restarted
// qplacerd needs to resume (or serve) it. Results are kept in serialized
// form so recovery does not depend on round-tripping engine internals.
type JobRecord struct {
	ID        string          `json:"id"`
	Seq       uint64          `json:"seq"` // submission order; restarts resume ID allocation past it
	Request   Request         `json:"request"`
	State     State           `json:"state"`
	Attempts  int             `json:"attempts,omitempty"`
	Error     string          `json:"error,omitempty"`
	ErrorCode string          `json:"error_code,omitempty"`
	Result    json.RawMessage `json:"result,omitempty"`
	Created   time.Time       `json:"created_at"`
	Started   time.Time       `json:"started_at,omitzero"`
	Finished  time.Time       `json:"finished_at,omitzero"`
}

// Store persists job state and per-job event history. The manager owns the
// fast in-memory runtime index; a Store is the layer beneath it that decides
// what survives a restart: MemoryStore (the default) survives nothing,
// qplacer/server/journal survives crashes.
//
// Implementations must be safe for concurrent use. AppendEvent is called
// from the engines' progress hot loops, so it must be cheap (buffered I/O is
// fine; per-call fsync is not). PutJob marks lifecycle transitions and may
// be durable per call.
type Store interface {
	// PutJob creates or replaces the record for rec.ID.
	PutJob(rec JobRecord) error
	// DeleteJob removes a job record and its events (TTL eviction). Unknown
	// IDs are not an error.
	DeleteJob(id string) error
	// AppendEvent appends one event to the job's history. Implementations
	// may cap retention per job by dropping the oldest events; Seq values
	// are assigned by the caller and never reused.
	AppendEvent(jobID string, ev Event) error
	// EventsSince returns the retained events with Seq > after, in Seq
	// order. A job with no retained events returns an empty slice.
	EventsSince(jobID string, after uint64) ([]Event, error)
	// LoadJobs returns every persisted job record, used once at manager
	// startup for crash recovery. Order is unspecified.
	LoadJobs() ([]JobRecord, error)
	// Flush forces buffered writes down to the backing medium.
	Flush() error
	// Close flushes and releases the store. The manager closes its Store
	// during Shutdown; Close must be idempotent.
	Close() error
}

// DefaultEventRetention is how many events per job the built-in stores keep
// for Last-Event-ID resume. A resume from an ID older than the retained
// window restarts from the oldest retained event.
const DefaultEventRetention = 4096

// MemoryStore is the default Store: plain maps, nothing durable. It retains
// the same per-job event window as the durable backend so SSE resume works
// identically under both.
type MemoryStore struct {
	mu     sync.Mutex
	jobs   map[string]JobRecord
	events map[string][]Event
}

// NewMemoryStore returns an empty in-memory store.
func NewMemoryStore() *MemoryStore {
	return &MemoryStore{
		jobs:   map[string]JobRecord{},
		events: map[string][]Event{},
	}
}

// PutJob implements Store.
func (ms *MemoryStore) PutJob(rec JobRecord) error {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	ms.jobs[rec.ID] = rec
	return nil
}

// DeleteJob implements Store.
func (ms *MemoryStore) DeleteJob(id string) error {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	delete(ms.jobs, id)
	delete(ms.events, id)
	return nil
}

// AppendEvent implements Store.
func (ms *MemoryStore) AppendEvent(jobID string, ev Event) error {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	evs := append(ms.events[jobID], ev)
	if len(evs) > DefaultEventRetention {
		evs = evs[len(evs)-DefaultEventRetention:]
	}
	ms.events[jobID] = evs
	return nil
}

// EventsSince implements Store.
func (ms *MemoryStore) EventsSince(jobID string, after uint64) ([]Event, error) {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	return eventsSince(ms.events[jobID], after), nil
}

// LoadJobs implements Store.
func (ms *MemoryStore) LoadJobs() ([]JobRecord, error) {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	recs := make([]JobRecord, 0, len(ms.jobs))
	for _, rec := range ms.jobs {
		recs = append(recs, rec)
	}
	return recs, nil
}

// Flush implements Store (a no-op).
func (ms *MemoryStore) Flush() error { return nil }

// Close implements Store (a no-op).
func (ms *MemoryStore) Close() error { return nil }

// eventsSince copies the suffix of evs with Seq > after. Seqs are contiguous
// and ascending, so the split point is found by binary search.
func eventsSince(evs []Event, after uint64) []Event {
	i := sort.Search(len(evs), func(i int) bool { return evs[i].Seq > after })
	out := make([]Event, len(evs)-i)
	copy(out, evs[i:])
	return out
}

// Job is one submitted request moving through the manager. All mutable
// fields are guarded by the owning index's lock.
type Job struct {
	ID      string
	Request Request

	state     State
	phase     string // "placing" | "evaluating" | "cancelling" while running
	progress  *ProgressView
	err       error
	result    *qplacer.ResultDocument
	resultRaw json.RawMessage // serialized result; the only form after recovery
	created   time.Time
	started   time.Time
	finished  time.Time
	seq       uint64
	cancel    context.CancelFunc
	hits      int // duplicate submits served from this job

	// Lease/retry bookkeeping. attempts counts claims; epoch increments on
	// every claim and lease expiry so a superseded run's callbacks become
	// no-ops; lease is when the current claim expires unless heartbeated.
	attempts int
	epoch    uint64
	lease    time.Time

	// eventSeq is the Seq of the job's latest Event; notify is closed and
	// replaced on every published event (watch-channel pattern for SSE).
	eventSeq uint64
	notify   chan struct{}
}

// ProgressView is the wire form of the latest backend Progress event of a
// running job: which pipeline stage and backend are executing, how far along
// they are, and the backend's own convergence objective.
type ProgressView struct {
	Stage     string  `json:"stage"`
	Backend   string  `json:"backend,omitempty"`
	Iteration int     `json:"iteration"`
	Objective float64 `json:"objective"`
}

// JobView is the wire snapshot of a job, safe to marshal after the index
// lock is released.
type JobView struct {
	ID            string        `json:"id"`
	State         State         `json:"state"`
	Phase         string        `json:"phase,omitempty"`
	Progress      *ProgressView `json:"progress,omitempty"`
	QueuePosition *int          `json:"queue_position,omitempty"` // 0 = next to run
	Attempts      int           `json:"attempts,omitempty"`
	Request       Request       `json:"request"`
	Error         string        `json:"error,omitempty"`
	CacheHits     int           `json:"cache_hits"`
	CreatedAt     time.Time     `json:"created_at"`
	StartedAt     *time.Time    `json:"started_at,omitempty"`
	FinishedAt    *time.Time    `json:"finished_at,omitempty"`
}

// index is the in-memory runtime view of the job set: jobs by ID plus the
// result cache keyed by normalized request, with the Store underneath as
// the system of record. Finished jobs are evicted ttl after completion by
// sweeps that piggyback on every mutating access.
type index struct {
	mu      sync.Mutex
	ttl     time.Duration
	now     func() time.Time
	persist Store
	jobs    map[string]*Job
	byKey   map[jobKey]*Job
	seq     uint64
}

func newIndex(ttl time.Duration, persist Store) *index {
	return &index{
		ttl:     ttl,
		now:     time.Now,
		persist: persist,
		jobs:    map[string]*Job{},
		byKey:   map[jobKey]*Job{},
	}
}

// sweep drops finished jobs older than ttl, from the index and the Store.
// Caller holds mu.
func (st *index) sweep() {
	if st.ttl <= 0 {
		return
	}
	cutoff := st.now().Add(-st.ttl)
	for id, j := range st.jobs {
		if j.state.terminal() && j.finished.Before(cutoff) {
			delete(st.jobs, id)
			if st.byKey[j.Request.key()] == j {
				delete(st.byKey, j.Request.key())
			}
			_ = st.persist.DeleteJob(id)
		}
	}
}

// dropKey removes the result-cache entry if it still points at j, so failed
// or cancelled requests re-run on resubmit. Caller holds mu.
func (st *index) dropKey(j *Job) {
	if st.byKey[j.Request.key()] == j {
		delete(st.byKey, j.Request.key())
	}
}

// queuePosition counts queued jobs submitted before j. Caller holds mu.
func (st *index) queuePosition(j *Job) int {
	pos := 0
	for _, other := range st.jobs {
		if other.state == StateQueued && other.seq < j.seq {
			pos++
		}
	}
	return pos
}

// counts returns the number of currently queued and running jobs. Caller
// holds mu.
func (st *index) counts() (queued, running int) {
	for _, j := range st.jobs {
		switch j.state {
		case StateQueued:
			queued++
		case StateRunning:
			running++
		}
	}
	return
}

// record snapshots j in its persistable form. Caller holds mu.
func (st *index) record(j *Job) JobRecord {
	rec := JobRecord{
		ID:       j.ID,
		Seq:      j.seq,
		Request:  j.Request,
		State:    j.state,
		Attempts: j.attempts,
		Created:  j.created,
		Started:  j.started,
		Finished: j.finished,
	}
	if j.err != nil {
		rec.Error = j.err.Error()
		rec.ErrorCode = codeFor(j.err)
	}
	if j.state == StateDone {
		rec.Result = j.resultRaw
	}
	return rec
}

// view snapshots j for marshalling. Caller holds mu.
func (st *index) view(j *Job) JobView {
	v := JobView{
		ID:        j.ID,
		State:     j.state,
		Phase:     j.phase,
		Attempts:  j.attempts,
		Request:   j.Request,
		CacheHits: j.hits,
		CreatedAt: j.created,
	}
	if j.progress != nil {
		p := *j.progress
		v.Progress = &p
	}
	if j.err != nil {
		v.Error = j.err.Error()
	}
	if j.state == StateQueued {
		pos := st.queuePosition(j)
		v.QueuePosition = &pos
	}
	if !j.started.IsZero() {
		t := j.started
		v.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.FinishedAt = &t
	}
	return v
}

// recoveredError re-attaches the persisted error's sentinel (by its wire
// code) to the persisted message, so errors.Is keeps working on jobs whose
// error crossed a restart.
type recoveredError struct {
	msg  string
	base error
}

func (e *recoveredError) Error() string { return e.msg }
func (e *recoveredError) Unwrap() error { return e.base }

// errFromRecord reconstructs a job's terminal error from its record.
func errFromRecord(rec JobRecord) error {
	if rec.Error == "" {
		return nil
	}
	if base := sentinelForCode(rec.ErrorCode); base != nil {
		return &recoveredError{msg: rec.Error, base: base}
	}
	return &recoveredError{msg: rec.Error}
}
