package server

import (
	"context"
	"strings"
	"sync"
	"time"

	"qplacer"
)

// State is the lifecycle stage of a job.
type State string

const (
	// StateQueued means the job is waiting for a worker.
	StateQueued State = "queued"
	// StateRunning means a worker is placing or evaluating the job.
	StateRunning State = "running"
	// StateDone means the job finished and its result is available.
	StateDone State = "done"
	// StateFailed means the pipeline returned an error.
	StateFailed State = "failed"
	// StateCancelled means the job was cancelled (while queued or mid-run).
	StateCancelled State = "cancelled"
)

// terminal reports whether the state is final.
func (s State) terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Request is a normalized placement job: canonical engine options plus the
// evaluation suite. Submit normalizes incoming requests into this form, and
// the result cache keys on it — two requests that normalize identically are
// one job.
type Request struct {
	Options qplacer.Options `json:"options"`
	// Benchmarks to evaluate, in order. Submit expands an empty list to
	// every benchmark registered at submission time.
	Benchmarks []string `json:"benchmarks"`
	// Mappings per benchmark (Submit defaults it to qplacer.DefaultMappings).
	Mappings int `json:"mappings"`
}

// jobKey is the comparable dedup identity of a normalized Request.
type jobKey struct {
	opts     qplacer.Options
	benches  string
	mappings int
}

func (r Request) key() jobKey {
	return jobKey{
		opts:     r.Options,
		benches:  strings.Join(r.Benchmarks, "\x1f"),
		mappings: r.Mappings,
	}
}

// Job is one submitted request moving through the manager. All mutable
// fields are guarded by the owning store's lock.
type Job struct {
	ID      string
	Request Request

	state    State
	phase    string // "placing" | "evaluating" | "cancelling" while running
	progress *ProgressView
	err      error
	result   *qplacer.ResultDocument
	created  time.Time
	started  time.Time
	finished time.Time
	seq      uint64
	cancel   context.CancelFunc
	hits     int // duplicate submits served from this job
}

// ProgressView is the wire form of the latest backend Progress event of a
// running job: which pipeline stage and backend are executing, how far along
// they are, and the backend's own convergence objective.
type ProgressView struct {
	Stage     string  `json:"stage"`
	Backend   string  `json:"backend,omitempty"`
	Iteration int     `json:"iteration"`
	Objective float64 `json:"objective"`
}

// JobView is the wire snapshot of a job, safe to marshal after the store
// lock is released.
type JobView struct {
	ID            string        `json:"id"`
	State         State         `json:"state"`
	Phase         string        `json:"phase,omitempty"`
	Progress      *ProgressView `json:"progress,omitempty"`
	QueuePosition *int          `json:"queue_position,omitempty"` // 0 = next to run
	Request       Request       `json:"request"`
	Error         string        `json:"error,omitempty"`
	CacheHits     int           `json:"cache_hits"`
	CreatedAt     time.Time     `json:"created_at"`
	StartedAt     *time.Time    `json:"started_at,omitempty"`
	FinishedAt    *time.Time    `json:"finished_at,omitempty"`
}

// store is the in-memory job index: jobs by ID plus the result cache keyed
// by normalized request. Finished jobs are evicted ttl after completion by
// sweeps that piggyback on every mutating access.
type store struct {
	mu    sync.Mutex
	ttl   time.Duration
	now   func() time.Time
	jobs  map[string]*Job
	byKey map[jobKey]*Job
	seq   uint64
}

func newStore(ttl time.Duration) *store {
	return &store{
		ttl:   ttl,
		now:   time.Now,
		jobs:  map[string]*Job{},
		byKey: map[jobKey]*Job{},
	}
}

// sweep drops finished jobs older than ttl. Caller holds mu.
func (st *store) sweep() {
	if st.ttl <= 0 {
		return
	}
	cutoff := st.now().Add(-st.ttl)
	for id, j := range st.jobs {
		if j.state.terminal() && j.finished.Before(cutoff) {
			delete(st.jobs, id)
			if st.byKey[j.Request.key()] == j {
				delete(st.byKey, j.Request.key())
			}
		}
	}
}

// dropKey removes the result-cache entry if it still points at j, so failed
// or cancelled requests re-run on resubmit. Caller holds mu.
func (st *store) dropKey(j *Job) {
	if st.byKey[j.Request.key()] == j {
		delete(st.byKey, j.Request.key())
	}
}

// queuePosition counts queued jobs submitted before j. Caller holds mu.
func (st *store) queuePosition(j *Job) int {
	pos := 0
	for _, other := range st.jobs {
		if other.state == StateQueued && other.seq < j.seq {
			pos++
		}
	}
	return pos
}

// counts returns the number of currently queued and running jobs. Caller
// holds mu.
func (st *store) counts() (queued, running int) {
	for _, j := range st.jobs {
		switch j.state {
		case StateQueued:
			queued++
		case StateRunning:
			running++
		}
	}
	return
}

// view snapshots j for marshalling. Caller holds mu.
func (st *store) view(j *Job) JobView {
	v := JobView{
		ID:        j.ID,
		State:     j.state,
		Phase:     j.phase,
		Request:   j.Request,
		CacheHits: j.hits,
		CreatedAt: j.created,
	}
	if j.progress != nil {
		p := *j.progress
		v.Progress = &p
	}
	if j.err != nil {
		v.Error = j.err.Error()
	}
	if j.state == StateQueued {
		pos := st.queuePosition(j)
		v.QueuePosition = &pos
	}
	if !j.started.IsZero() {
		t := j.started
		v.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.FinishedAt = &t
	}
	return v
}
