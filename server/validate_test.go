package server_test

import (
	"net/http"
	"testing"
	"time"

	"qplacer"
	"qplacer/server"
)

// validBody is a fast but fully legalized request, so the verifier finds no
// error-severity violations.
func validBody() string {
	return `{"topology":"grid","max_iters":30}`
}

// invalidBody skips legalization: the raw global placement overlaps heavily
// and cannot pass the verifier.
func invalidBody() string {
	return `{"topology":"grid","max_iters":5,"skip_legalize":true}`
}

func TestValidateEndpoint(t *testing.T) {
	ts := newTS(t, server.Config{Workers: 1})

	var resp server.ValidateResponse
	if code := call(t, http.MethodPost, ts.URL+"/v1/validate", validBody(), &resp); code != http.StatusOK {
		t.Fatalf("valid placement: status %d, want 200", code)
	}
	if resp.Validation == nil || !resp.Validation.Valid || resp.Validation.Errors != 0 {
		t.Fatalf("validation = %+v, want valid", resp.Validation)
	}
	if resp.Options.Topology != "grid" || resp.Options.Placer == "" {
		t.Fatalf("options not normalized: %+v", resp.Options)
	}

	resp = server.ValidateResponse{}
	if code := call(t, http.MethodPost, ts.URL+"/v1/validate", invalidBody(), &resp); code != http.StatusUnprocessableEntity {
		t.Fatalf("invalid placement: status %d, want 422", code)
	}
	if resp.Validation == nil || resp.Validation.Valid || resp.Validation.Errors == 0 {
		t.Fatalf("validation = %+v, want invalid with errors", resp.Validation)
	}
	// The report carries typed, located violations.
	found := false
	for _, v := range resp.Validation.Violations {
		if v.Code == qplacer.ViolationOverlap && v.Severity == qplacer.SeverityError {
			found = true
		}
	}
	if !found {
		t.Fatalf("no typed overlap violation in %+v", resp.Validation.Violations)
	}
}

func TestValidateEndpointRequestErrors(t *testing.T) {
	ts := newTS(t, server.Config{Workers: 1})
	cases := []struct {
		name, body string
		status     int
	}{
		{"unknown topology", `{"topology":"warbler"}`, http.StatusNotFound},
		{"unknown placer", `{"topology":"grid","placer":"ouija"}`, http.StatusBadRequest},
		{"malformed JSON", `{"topology":`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		if code := call(t, http.MethodPost, ts.URL+"/v1/validate", tc.body, nil); code != tc.status {
			t.Fatalf("%s: status %d, want %d", tc.name, code, tc.status)
		}
	}
}

func TestJobResultCarriesValidationBlock(t *testing.T) {
	ts := newTS(t, server.Config{Workers: 1})

	var sub server.SubmitResponse
	body := `{"topology":"grid","max_iters":30,"benchmarks":["bv-4"],"mappings":2}`
	if code := call(t, http.MethodPost, ts.URL+"/v1/plans", body, &sub); code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	pollJob(t, ts.URL, sub.Job.ID, server.StateDone)

	var doc struct {
		Validation *qplacer.ValidationReport `json:"validation"`
		Plan       struct {
			Validation *qplacer.ValidationReport `json:"validation"`
		} `json:"plan"`
	}
	if code := call(t, http.MethodGet, ts.URL+"/v1/jobs/"+sub.Job.ID+"/result", "", &doc); code != http.StatusOK {
		t.Fatalf("result status %d", code)
	}
	if doc.Validation == nil || !doc.Validation.Valid {
		t.Fatalf("top-level validation block = %+v, want valid", doc.Validation)
	}
	if doc.Plan.Validation == nil {
		t.Fatal("plan view lost its validation block")
	}
	if doc.Validation.InstancesChecked == 0 || doc.Validation.PairsChecked == 0 {
		t.Fatalf("vacuous validation: %+v", doc.Validation)
	}
}

func TestStrictValidationFailsInvalidJobs(t *testing.T) {
	ts := newTS(t, server.Config{Workers: 1, StrictValidation: true})

	var sub server.SubmitResponse
	body := `{"topology":"grid","max_iters":5,"skip_legalize":true,"benchmarks":["bv-4"],"mappings":2}`
	if code := call(t, http.MethodPost, ts.URL+"/v1/plans", body, &sub); code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	// The job must reach failed (not done): poll until terminal.
	deadline := 200
	var view server.JobView
	for i := 0; ; i++ {
		if code := call(t, http.MethodGet, ts.URL+"/v1/jobs/"+sub.Job.ID, "", &view); code != http.StatusOK {
			t.Fatalf("poll status %d", code)
		}
		if view.State == server.StateFailed {
			break
		}
		if view.State == server.StateDone || view.State == server.StateCancelled {
			t.Fatalf("strict job reached %s, want failed", view.State)
		}
		if i > deadline {
			t.Fatalf("job stuck in %s", view.State)
		}
		time.Sleep(50 * time.Millisecond)
	}

	var errResp struct {
		Code string `json:"code"`
	}
	if code := call(t, http.MethodGet, ts.URL+"/v1/jobs/"+sub.Job.ID+"/result", "", &errResp); code != http.StatusUnprocessableEntity {
		t.Fatalf("result status %d, want 422", code)
	}
	if errResp.Code != "invalid_placement" {
		t.Fatalf("code = %q, want invalid_placement", errResp.Code)
	}

	// A legalized job under the same strict server still completes.
	if code := call(t, http.MethodPost, ts.URL+"/v1/plans", `{"topology":"grid","max_iters":30,"benchmarks":["bv-4"],"mappings":2}`, &sub); code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	pollJob(t, ts.URL, sub.Job.ID, server.StateDone)
}
