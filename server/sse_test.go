package server_test

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"

	"qplacer/server"
)

// sseFrame is one parsed server-sent event.
type sseFrame struct {
	ID    uint64
	Name  string
	Event server.Event
}

// openStream issues GET /v1/jobs/{id}/events, optionally resuming with a
// Last-Event-ID header, and returns the live response plus a reader over it.
func openStream(t *testing.T, base, jobID, lastEventID string) (*http.Response, *bufio.Reader) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, base+"/v1/jobs/"+jobID+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	if lastEventID != "" {
		req.Header.Set("Last-Event-ID", lastEventID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events stream status %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events stream Content-Type %q", ct)
	}
	return resp, bufio.NewReader(resp.Body)
}

// readFrame parses the next SSE frame, skipping keepalive comments. ok is
// false at end of stream.
func readFrame(t *testing.T, br *bufio.Reader) (f sseFrame, ok bool) {
	t.Helper()
	seen := false
	for {
		line, err := br.ReadString('\n')
		if err == io.EOF {
			if seen {
				t.Fatal("stream ended mid-frame")
			}
			return sseFrame{}, false
		}
		if err != nil {
			t.Fatalf("reading stream: %v", err)
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case line == "":
			if seen {
				return f, true
			}
		case strings.HasPrefix(line, ":"): // keepalive comment
		case strings.HasPrefix(line, "id: "):
			id, err := strconv.ParseUint(line[len("id: "):], 10, 64)
			if err != nil {
				t.Fatalf("bad id line %q: %v", line, err)
			}
			f.ID = id
			seen = true
		case strings.HasPrefix(line, "event: "):
			f.Name = line[len("event: "):]
			seen = true
		case strings.HasPrefix(line, "data: "):
			if err := json.Unmarshal([]byte(line[len("data: "):]), &f.Event); err != nil {
				t.Fatalf("bad data line %q: %v", line, err)
			}
			seen = true
		default:
			t.Fatalf("unexpected stream line %q", line)
		}
	}
}

// drainStream reads frames until the stream closes.
func drainStream(t *testing.T, br *bufio.Reader) []sseFrame {
	t.Helper()
	var frames []sseFrame
	for {
		f, ok := readFrame(t, br)
		if !ok {
			return frames
		}
		frames = append(frames, f)
	}
}

// checkContiguous asserts frame ids increase by exactly 1 from first on,
// and that each frame's id matches its payload Seq.
func checkContiguous(t *testing.T, frames []sseFrame, first uint64) {
	t.Helper()
	for i, f := range frames {
		if want := first + uint64(i); f.ID != want {
			t.Fatalf("frame %d has id %d, want %d (ids must be gap-free)", i, f.ID, want)
		}
		if f.Event.Seq != f.ID {
			t.Fatalf("frame id %d carries payload seq %d", f.ID, f.Event.Seq)
		}
	}
}

// TestSSEReplayAfterDone streams a finished job's full history: the frame
// ids are contiguous from 1, the lifecycle reads queued → running →
// progress… → done with strictly increasing iterations, and the stream
// closes after the terminal event instead of hanging.
func TestSSEReplayAfterDone(t *testing.T) {
	ts := newTS(t, server.Config{Workers: 1})
	var sub server.SubmitResponse
	if code := call(t, http.MethodPost, ts.URL+"/v1/plans", fastBody(60), &sub); code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	pollJob(t, ts.URL, sub.Job.ID, server.StateDone)

	_, br := openStream(t, ts.URL, sub.Job.ID, "")
	frames := drainStream(t, br)
	if len(frames) < 4 {
		t.Fatalf("replay produced %d frames, want ≥ 4 (queued, running, progress…, done)", len(frames))
	}
	checkContiguous(t, frames, 1)
	if f := frames[0]; f.Name != server.EventState || f.Event.State != server.StateQueued {
		t.Fatalf("first frame %+v, want state=queued", f)
	}
	if f := frames[1]; f.Name != server.EventState || f.Event.State != server.StateRunning || f.Event.Attempt != 1 {
		t.Fatalf("second frame %+v, want state=running attempt=1", f)
	}
	last := frames[len(frames)-1]
	if last.Name != server.EventState || last.Event.State != server.StateDone {
		t.Fatalf("final frame %+v, want state=done", last)
	}
	progress := 0
	prevIter := -1
	for _, f := range frames[2 : len(frames)-1] {
		if f.Name != server.EventProgress || f.Event.Progress == nil {
			t.Fatalf("mid-stream frame %+v, want progress", f)
		}
		if f.Event.Progress.Iteration <= prevIter {
			t.Fatalf("iteration went %d → %d; progress must increase monotonically",
				prevIter, f.Event.Progress.Iteration)
		}
		prevIter = f.Event.Progress.Iteration
		progress++
	}
	if progress < 2 {
		t.Fatalf("only %d progress frames", progress)
	}
}

// TestSSEResumeFromLastEventID reconnects mid-history: a client that saw
// events up to Seq k and resumes with Last-Event-ID: k receives exactly
// Seq k+1 onward — no gaps, no duplicates — and a client already at the
// terminal event gets a clean empty close.
func TestSSEResumeFromLastEventID(t *testing.T) {
	ts := newTS(t, server.Config{Workers: 1})
	var sub server.SubmitResponse
	if code := call(t, http.MethodPost, ts.URL+"/v1/plans", fastBody(61), &sub); code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	pollJob(t, ts.URL, sub.Job.ID, server.StateDone)

	resp, br := openStream(t, ts.URL, sub.Job.ID, "")
	full := drainStream(t, br)
	resp.Body.Close() // simulate the disconnect the resume recovers from
	if len(full) < 4 {
		t.Fatalf("full replay produced %d frames", len(full))
	}

	cut := full[1].ID
	_, br = openStream(t, ts.URL, sub.Job.ID, strconv.FormatUint(cut, 10))
	resumed := drainStream(t, br)
	if len(resumed) != len(full)-2 {
		t.Fatalf("resume after %d returned %d frames, want %d", cut, len(resumed), len(full)-2)
	}
	if resumed[0].ID != cut+1 {
		t.Fatalf("resume after %d started at %d, want %d", cut, resumed[0].ID, cut+1)
	}
	checkContiguous(t, resumed, cut+1)

	// The query-parameter fallback resumes identically (curl-friendly).
	qURL := fmt.Sprintf("%s/v1/jobs/%s/events?last_event_id=%d", ts.URL, sub.Job.ID, cut)
	qresp, err := http.Get(qURL)
	if err != nil {
		t.Fatal(err)
	}
	defer qresp.Body.Close()
	qframes := drainStream(t, bufio.NewReader(qresp.Body))
	if len(qframes) != len(resumed) || qframes[0].ID != cut+1 {
		t.Fatalf("query-param resume: %d frames starting %d, want %d starting %d",
			len(qframes), qframes[0].ID, len(resumed), cut+1)
	}

	// Resuming from the terminal event: empty, immediate close.
	_, br = openStream(t, ts.URL, sub.Job.ID, strconv.FormatUint(full[len(full)-1].ID, 10))
	if tail := drainStream(t, br); len(tail) != 0 {
		t.Fatalf("resume past terminal returned %d frames, want 0", len(tail))
	}
}

// TestSSELiveStreamAndCancel follows a running job live: progress frames
// arrive while the engine iterates (monotonically increasing iteration), a
// cancel mid-stream surfaces as a terminal state frame, and the stream then
// closes.
func TestSSELiveStreamAndCancel(t *testing.T) {
	ts := newTS(t, server.Config{Workers: 1})
	var sub server.SubmitResponse
	if code := call(t, http.MethodPost, ts.URL+"/v1/plans", slowBody(62), &sub); code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	_, br := openStream(t, ts.URL, sub.Job.ID, "")

	progress := 0
	prevIter := -1
	nextID := uint64(1)
	for progress < 3 {
		f, ok := readFrame(t, br)
		if !ok {
			t.Fatal("stream closed before 3 progress frames")
		}
		if f.ID != nextID {
			t.Fatalf("live frame id %d, want %d", f.ID, nextID)
		}
		nextID++
		if f.Name != server.EventProgress {
			continue
		}
		if f.Event.Progress.Iteration <= prevIter {
			t.Fatalf("live iteration went %d → %d", prevIter, f.Event.Progress.Iteration)
		}
		prevIter = f.Event.Progress.Iteration
		progress++
	}

	if code := call(t, http.MethodDelete, ts.URL+"/v1/jobs/"+sub.Job.ID, "", nil); code != http.StatusOK {
		t.Fatalf("cancel status %d", code)
	}
	sawTerminal := false
	for {
		f, ok := readFrame(t, br)
		if !ok {
			break
		}
		if f.ID != nextID {
			t.Fatalf("post-cancel frame id %d, want %d", f.ID, nextID)
		}
		nextID++
		if f.Name == server.EventState {
			if f.Event.State != server.StateCancelled {
				t.Fatalf("terminal frame state %q, want cancelled", f.Event.State)
			}
			sawTerminal = true
		}
	}
	if !sawTerminal {
		t.Fatal("stream closed without a terminal state frame")
	}
}
