package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"time"

	"qplacer"
	"qplacer/internal/obs"
)

// PlanRequest is the body of POST /v1/plans: engine options (scheme as its
// string name) plus the evaluation suite. An empty benchmark list selects
// every registered benchmark; mappings <= 0 selects the paper's default.
type PlanRequest struct {
	qplacer.Options
	Benchmarks []string `json:"benchmarks,omitempty"`
	Mappings   int      `json:"mappings,omitempty"`
}

// SubmitResponse is the body returned by POST /v1/plans.
type SubmitResponse struct {
	Job JobView `json:"job"`
	// Cached is true when the submit matched a live job for the same
	// normalized request and no new work was enqueued.
	Cached bool `json:"cached"`
	// Links are the relative URLs for the job's status and result.
	Links map[string]string `json:"links"`
}

// errorResponse is the JSON error envelope every non-2xx response uses.
type errorResponse struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}

// statusFor maps pipeline and service errors onto HTTP status codes:
// unknown names are 404, malformed requests 400, quota and queue
// backpressure 429, shutdown 503, cancellation and not-ready conflicts 409,
// placements that failed independent verification 422.
func statusFor(err error) int {
	switch {
	case errors.Is(err, qplacer.ErrUnknownTopology),
		errors.Is(err, qplacer.ErrUnknownBenchmark),
		errors.Is(err, ErrUnknownJob):
		return http.StatusNotFound
	case errors.Is(err, qplacer.ErrUnknownScheme),
		errors.Is(err, qplacer.ErrUnknownPlacer),
		errors.Is(err, qplacer.ErrUnknownLegalizer),
		errors.Is(err, qplacer.ErrUnknownDetailedPlacer),
		errors.Is(err, qplacer.ErrInvalidOptions),
		errors.Is(err, qplacer.ErrNoBenchmarks),
		errors.Is(err, ErrInvalidArgument):
		return http.StatusBadRequest
	case errors.Is(err, qplacer.ErrInvalidPlacement):
		return http.StatusUnprocessableEntity
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrQuotaExceeded):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrShuttingDown):
		return http.StatusServiceUnavailable
	case errors.Is(err, qplacer.ErrCancelled), errors.Is(err, ErrJobNotDone):
		return http.StatusConflict
	default:
		return http.StatusInternalServerError
	}
}

// codeFor names the error class for machine consumption.
func codeFor(err error) string {
	switch {
	case errors.Is(err, qplacer.ErrUnknownTopology):
		return "unknown_topology"
	case errors.Is(err, qplacer.ErrUnknownBenchmark):
		return "unknown_benchmark"
	case errors.Is(err, qplacer.ErrUnknownScheme):
		return "unknown_scheme"
	case errors.Is(err, qplacer.ErrUnknownPlacer):
		return "unknown_placer"
	case errors.Is(err, qplacer.ErrUnknownLegalizer):
		return "unknown_legalizer"
	case errors.Is(err, qplacer.ErrUnknownDetailedPlacer):
		return "unknown_detailed_placer"
	case errors.Is(err, qplacer.ErrInvalidOptions):
		return "invalid_options"
	case errors.Is(err, qplacer.ErrNoBenchmarks):
		return "no_benchmarks"
	case errors.Is(err, qplacer.ErrInvalidPlacement):
		return "invalid_placement"
	case errors.Is(err, qplacer.ErrCancelled):
		return "cancelled"
	case errors.Is(err, ErrUnknownJob):
		return "unknown_job"
	case errors.Is(err, ErrJobNotDone):
		return "not_done"
	case errors.Is(err, ErrQueueFull):
		return "queue_full"
	case errors.Is(err, ErrQuotaExceeded):
		return "quota_exceeded"
	case errors.Is(err, ErrRetriesExhausted):
		return "retries_exhausted"
	case errors.Is(err, ErrInvalidArgument):
		return "invalid_argument"
	case errors.Is(err, ErrShuttingDown):
		return "shutting_down"
	default:
		return "internal"
	}
}

// sentinelForCode is the partial inverse of codeFor, used to re-attach
// sentinels to errors recovered from the durable store so errors.Is (and
// the status mapping) survive a restart.
func sentinelForCode(code string) error {
	switch code {
	case "cancelled":
		return qplacer.ErrCancelled
	case "invalid_placement":
		return qplacer.ErrInvalidPlacement
	case "retries_exhausted":
		return ErrRetriesExhausted
	case "no_benchmarks":
		return qplacer.ErrNoBenchmarks
	}
	return nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // the status line is already gone; nothing to recover
}

func writeError(w http.ResponseWriter, err error) {
	status := statusFor(err)
	if status == http.StatusTooManyRequests {
		// Quota and queue backpressure are transient: tell well-behaved
		// clients when to come back.
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, status, errorResponse{Error: err.Error(), Code: codeFor(err)})
}

func jobLinks(id string) map[string]string {
	return map[string]string{
		"status": "/v1/jobs/" + id,
		"result": "/v1/jobs/" + id + "/result",
		"events": "/v1/jobs/" + id + "/events",
	}
}

// clientID identifies the submitter for per-client quotas: the X-Client-ID
// header when present, else the remote host.
func clientID(r *http.Request) string {
	if c := r.Header.Get("X-Client-ID"); c != "" {
		return c
	}
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		return host
	}
	return r.RemoteAddr
}

// decodeBody reads a size-capped request body into out, writing the error
// response itself when the body is oversized or malformed. It reports
// whether decoding succeeded.
func decodeBody(w http.ResponseWriter, r *http.Request, out any) bool {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeJSON(w, http.StatusRequestEntityTooLarge, errorResponse{
				Error: err.Error(),
				Code:  "body_too_large",
			})
			return false
		}
		writeError(w, fmt.Errorf("reading body: %w", err))
		return false
	}
	if err := json.Unmarshal(body, out); err != nil {
		// Typed decode failures (e.g. an unknown scheme name) keep their
		// classification; anything else is a plain malformed request.
		if errors.Is(err, qplacer.ErrUnknownScheme) {
			writeError(w, err)
			return false
		}
		writeJSON(w, http.StatusBadRequest, errorResponse{
			Error: fmt.Sprintf("malformed request: %v", err),
			Code:  "bad_request",
		})
		return false
	}
	return true
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req PlanRequest
	if !decodeBody(w, r, &req) {
		return
	}
	view, cached, err := s.mgr.Submit(Request{
		Options:    req.Options,
		Benchmarks: req.Benchmarks,
		Mappings:   req.Mappings,
		Client:     clientID(r),
		RequestID:  RequestIDFromContext(r.Context()),
	})
	if err != nil {
		writeError(w, err)
		return
	}
	status := http.StatusAccepted
	if cached {
		status = http.StatusOK
	}
	writeJSON(w, status, SubmitResponse{Job: view, Cached: cached, Links: jobLinks(view.ID)})
}

// ValidateRequest is the body of POST /v1/validate: the engine options of
// the placement to verify.
type ValidateRequest struct {
	qplacer.Options
}

// ValidateResponse pairs the normalized options with the independent
// verifier's report. It is returned with status 200 when the placement is
// valid and 422 (invalid_placement) when it carries error-severity
// violations, so clients can branch on the status alone.
type ValidateResponse struct {
	Options    qplacer.Options           `json:"options"`
	Validation *qplacer.ValidationReport `json:"validation"`
}

func (s *Server) handleValidate(w http.ResponseWriter, r *http.Request) {
	var req ValidateRequest
	if !decodeBody(w, r, &req) {
		return
	}
	rep, norm, err := s.mgr.Validate(r.Context(), req.Options)
	if err != nil {
		writeError(w, err)
		return
	}
	status := http.StatusOK
	if !rep.Valid {
		status = http.StatusUnprocessableEntity
	}
	writeJSON(w, status, ValidateResponse{Options: norm, Validation: rep})
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	view, err := s.mgr.Job(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, view)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	// Serve the serialized form: it is identical for jobs computed this
	// process and jobs recovered from the durable store.
	raw, err := s.mgr.ResultJSON(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, raw)
}

// JobsResponse is the body of GET /v1/jobs: one page of jobs in submission
// order plus the token selecting the next page ("" on the last page).
type JobsResponse struct {
	Jobs          []JobView `json:"jobs"`
	NextPageToken string    `json:"next_page_token,omitempty"`
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	limit := 0
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			writeError(w, fmt.Errorf("%w: bad limit %q", ErrInvalidArgument, v))
			return
		}
		limit = n
	}
	views, next, err := s.mgr.Jobs(State(q.Get("status")), limit, q.Get("page_token"))
	if err != nil {
		writeError(w, err)
		return
	}
	if views == nil {
		views = []JobView{}
	}
	writeJSON(w, http.StatusOK, JobsResponse{Jobs: views, NextPageToken: next})
}

// sseKeepalive is how often an idle event stream emits a comment line so
// intermediaries do not reap the connection.
const sseKeepalive = 15 * time.Second

// handleEvents streams a job's history as Server-Sent Events: every event
// carries its per-job sequence number as the SSE id, so a client that
// reconnects with Last-Event-ID resumes gap-free from where it stopped
// (events older than the store's retention window replay from the oldest
// retained event). The stream replays retained history first, then follows
// the live job, and closes after delivering the terminal state event.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var after uint64
	lastID := r.Header.Get("Last-Event-ID")
	if lastID == "" {
		lastID = r.URL.Query().Get("last_event_id") // curl-friendly fallback
	}
	if lastID != "" {
		if n, err := strconv.ParseUint(lastID, 10, 64); err == nil {
			after = n
		}
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, errors.New("server: response writer does not support streaming"))
		return
	}
	s.mgr.metrics.sseSubscribers.Add(1)
	defer s.mgr.metrics.sseSubscribers.Add(-1)
	keep := time.NewTicker(s.mgr.cfg.sseKeepalive)
	defer keep.Stop()
	started := false
	for {
		evs, terminal, notify, err := s.mgr.Events(id, after)
		if err != nil {
			if !started {
				writeError(w, err) // unknown (or evicted) job: a JSON 404
			}
			return
		}
		if !started {
			h := w.Header()
			h.Set("Content-Type", "text/event-stream")
			h.Set("Cache-Control", "no-cache")
			h.Set("X-Accel-Buffering", "no")
			w.WriteHeader(http.StatusOK)
			started = true
		}
		for _, ev := range evs {
			data, err := json.Marshal(ev)
			if err != nil {
				return
			}
			if _, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, data); err != nil {
				return
			}
			after = ev.Seq
		}
		if len(evs) > 0 {
			fl.Flush()
			continue // drain retained history before blocking
		}
		if terminal {
			return // fully replayed a finished job
		}
		select {
		case <-notify:
		case <-keep.C:
			// The comment advertises the job's latest event seq, so an idle
			// client can tell a quiet stream from a stalled one (and knows
			// what Last-Event-ID a reconnect would resume from).
			seq, _ := s.mgr.LatestEventSeq(id)
			if _, err := fmt.Fprintf(w, ": keepalive seq=%d\n\n", seq); err != nil {
				return
			}
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	view, err := s.mgr.Cancel(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, view)
}

// handleTopologies keeps the original flat name list for existing clients
// and adds the discovery catalog: per-topology qubit/coupling counts with
// alias cross-references, plus the parametric family schemas (grid-<n>,
// octagon-<r>x<c>, ...) that resolve without registration.
func (s *Server) handleTopologies(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"topologies": qplacer.RegisteredTopologies(),
		"catalog":    qplacer.TopologyCatalog(),
		"families":   qplacer.TopologyFamilies(),
	})
}

// handleBenchmarks keeps the original flat name list and adds the catalog
// with per-benchmark qubit counts.
func (s *Server) handleBenchmarks(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"benchmarks": qplacer.RegisteredBenchmarks(),
		"catalog":    qplacer.BenchmarkCatalog(),
	})
}

func (s *Server) handlePlacers(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string][]string{
		"placers": qplacer.Placers(),
	})
}

func (s *Server) handleLegalizers(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string][]string{
		"legalizers": qplacer.Legalizers(),
	})
}

func (s *Server) handleDetailedPlacers(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string][]string{
		"detailed_placers": qplacer.DetailedPlacers(),
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":    "ok",
		"uptime_ns": s.clock().Sub(s.started),
		"build":     obs.Build(),
	})
}

// handleMetrics serves the service counters in two formats, negotiated on
// Accept: the legacy JSON Stats by default (curl, existing clients), and the
// Prometheus text exposition when the client asks for text/plain or an
// openmetrics type (as every Prometheus scraper does).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if accept := r.Header.Get("Accept"); strings.Contains(accept, "text/plain") ||
		strings.Contains(accept, "openmetrics") {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = s.mgr.WriteMetrics(w)
		return
	}
	writeJSON(w, http.StatusOK, s.mgr.Stats())
}
