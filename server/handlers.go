package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"qplacer"
)

// PlanRequest is the body of POST /v1/plans: engine options (scheme as its
// string name) plus the evaluation suite. An empty benchmark list selects
// every registered benchmark; mappings <= 0 selects the paper's default.
type PlanRequest struct {
	qplacer.Options
	Benchmarks []string `json:"benchmarks,omitempty"`
	Mappings   int      `json:"mappings,omitempty"`
}

// SubmitResponse is the body returned by POST /v1/plans.
type SubmitResponse struct {
	Job JobView `json:"job"`
	// Cached is true when the submit matched a live job for the same
	// normalized request and no new work was enqueued.
	Cached bool `json:"cached"`
	// Links are the relative URLs for the job's status and result.
	Links map[string]string `json:"links"`
}

// errorResponse is the JSON error envelope every non-2xx response uses.
type errorResponse struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}

// statusFor maps pipeline and service errors onto HTTP status codes:
// unknown names are 404, malformed requests 400, capacity and shutdown 503,
// cancellation and not-ready conflicts 409, placements that failed
// independent verification 422.
func statusFor(err error) int {
	switch {
	case errors.Is(err, qplacer.ErrUnknownTopology),
		errors.Is(err, qplacer.ErrUnknownBenchmark),
		errors.Is(err, ErrUnknownJob):
		return http.StatusNotFound
	case errors.Is(err, qplacer.ErrUnknownScheme),
		errors.Is(err, qplacer.ErrUnknownPlacer),
		errors.Is(err, qplacer.ErrUnknownLegalizer),
		errors.Is(err, qplacer.ErrInvalidOptions),
		errors.Is(err, qplacer.ErrNoBenchmarks):
		return http.StatusBadRequest
	case errors.Is(err, qplacer.ErrInvalidPlacement):
		return http.StatusUnprocessableEntity
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrShuttingDown):
		return http.StatusServiceUnavailable
	case errors.Is(err, qplacer.ErrCancelled), errors.Is(err, ErrJobNotDone):
		return http.StatusConflict
	default:
		return http.StatusInternalServerError
	}
}

// codeFor names the error class for machine consumption.
func codeFor(err error) string {
	switch {
	case errors.Is(err, qplacer.ErrUnknownTopology):
		return "unknown_topology"
	case errors.Is(err, qplacer.ErrUnknownBenchmark):
		return "unknown_benchmark"
	case errors.Is(err, qplacer.ErrUnknownScheme):
		return "unknown_scheme"
	case errors.Is(err, qplacer.ErrUnknownPlacer):
		return "unknown_placer"
	case errors.Is(err, qplacer.ErrUnknownLegalizer):
		return "unknown_legalizer"
	case errors.Is(err, qplacer.ErrInvalidOptions):
		return "invalid_options"
	case errors.Is(err, qplacer.ErrNoBenchmarks):
		return "no_benchmarks"
	case errors.Is(err, qplacer.ErrInvalidPlacement):
		return "invalid_placement"
	case errors.Is(err, qplacer.ErrCancelled):
		return "cancelled"
	case errors.Is(err, ErrUnknownJob):
		return "unknown_job"
	case errors.Is(err, ErrJobNotDone):
		return "not_done"
	case errors.Is(err, ErrQueueFull):
		return "queue_full"
	case errors.Is(err, ErrShuttingDown):
		return "shutting_down"
	default:
		return "internal"
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // the status line is already gone; nothing to recover
}

func writeError(w http.ResponseWriter, err error) {
	writeJSON(w, statusFor(err), errorResponse{Error: err.Error(), Code: codeFor(err)})
}

func jobLinks(id string) map[string]string {
	return map[string]string{
		"status": "/v1/jobs/" + id,
		"result": "/v1/jobs/" + id + "/result",
	}
}

// decodeBody reads a size-capped request body into out, writing the error
// response itself when the body is oversized or malformed. It reports
// whether decoding succeeded.
func decodeBody(w http.ResponseWriter, r *http.Request, out any) bool {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeJSON(w, http.StatusRequestEntityTooLarge, errorResponse{
				Error: err.Error(),
				Code:  "body_too_large",
			})
			return false
		}
		writeError(w, fmt.Errorf("reading body: %w", err))
		return false
	}
	if err := json.Unmarshal(body, out); err != nil {
		// Typed decode failures (e.g. an unknown scheme name) keep their
		// classification; anything else is a plain malformed request.
		if errors.Is(err, qplacer.ErrUnknownScheme) {
			writeError(w, err)
			return false
		}
		writeJSON(w, http.StatusBadRequest, errorResponse{
			Error: fmt.Sprintf("malformed request: %v", err),
			Code:  "bad_request",
		})
		return false
	}
	return true
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req PlanRequest
	if !decodeBody(w, r, &req) {
		return
	}
	view, cached, err := s.mgr.Submit(Request{
		Options:    req.Options,
		Benchmarks: req.Benchmarks,
		Mappings:   req.Mappings,
	})
	if err != nil {
		writeError(w, err)
		return
	}
	status := http.StatusAccepted
	if cached {
		status = http.StatusOK
	}
	writeJSON(w, status, SubmitResponse{Job: view, Cached: cached, Links: jobLinks(view.ID)})
}

// ValidateRequest is the body of POST /v1/validate: the engine options of
// the placement to verify.
type ValidateRequest struct {
	qplacer.Options
}

// ValidateResponse pairs the normalized options with the independent
// verifier's report. It is returned with status 200 when the placement is
// valid and 422 (invalid_placement) when it carries error-severity
// violations, so clients can branch on the status alone.
type ValidateResponse struct {
	Options    qplacer.Options           `json:"options"`
	Validation *qplacer.ValidationReport `json:"validation"`
}

func (s *Server) handleValidate(w http.ResponseWriter, r *http.Request) {
	var req ValidateRequest
	if !decodeBody(w, r, &req) {
		return
	}
	rep, norm, err := s.mgr.Validate(r.Context(), req.Options)
	if err != nil {
		writeError(w, err)
		return
	}
	status := http.StatusOK
	if !rep.Valid {
		status = http.StatusUnprocessableEntity
	}
	writeJSON(w, status, ValidateResponse{Options: norm, Validation: rep})
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	view, err := s.mgr.Job(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, view)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	doc, err := s.mgr.Result(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, doc)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	view, err := s.mgr.Cancel(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, view)
}

func (s *Server) handleTopologies(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string][]string{
		"topologies": qplacer.RegisteredTopologies(),
	})
}

func (s *Server) handleBenchmarks(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string][]string{
		"benchmarks": qplacer.RegisteredBenchmarks(),
	})
}

func (s *Server) handlePlacers(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string][]string{
		"placers": qplacer.Placers(),
	})
}

func (s *Server) handleLegalizers(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string][]string{
		"legalizers": qplacer.Legalizers(),
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":    "ok",
		"uptime_ns": s.clock().Sub(s.started),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.mgr.Stats())
}
