package server

import (
	"io"
	"time"

	"qplacer"
	"qplacer/internal/obs"
)

// serviceMetrics is the manager's metric set: the real registry behind both
// GET /metrics exposition formats. The legacy Stats JSON is derived from the
// same counters, so the two views can never disagree.
//
// Counter updates happen under st.mu alongside the job-state transitions
// they describe, so a scrape taken between two transitions always sees a
// consistent lifecycle (done + failed + cancelled never exceeds submitted).
type serviceMetrics struct {
	reg *obs.Registry

	submitted     *obs.Counter
	done          *obs.Counter
	failed        *obs.Counter
	cancelled     *obs.Counter
	retried       *obs.Counter
	recovered     *obs.Counter
	quotaDenied   *obs.Counter
	storeErrors   *obs.Counter
	cacheHits     *obs.Counter
	leaseExpiries *obs.Counter

	sseSubscribers *obs.Gauge
	journalFsync   *obs.Histogram
	httpRequests   *obs.CounterVec
	planSeconds    *obs.HistogramVec
}

// newServiceMetrics registers the manager's metric set. Queue depth, running
// jobs, and the engine pool's cache counters are polled at scrape time from
// the manager itself, so they are never stale copies.
func newServiceMetrics(m *Manager) *serviceMetrics {
	reg := obs.NewRegistry()
	sm := &serviceMetrics{
		reg: reg,

		submitted: reg.Counter("qplacerd_jobs_submitted_total",
			"Jobs accepted by submit (cache hits excluded)."),
		done: reg.Counter("qplacerd_jobs_done_total",
			"Jobs finished successfully."),
		failed: reg.Counter("qplacerd_jobs_failed_total",
			"Jobs that ended in failure (pipeline error or retry budget)."),
		cancelled: reg.Counter("qplacerd_jobs_cancelled_total",
			"Jobs cancelled while queued or running."),
		retried: reg.Counter("qplacerd_jobs_retried_total",
			"Lease expiries handled (re-queues plus budget-exhausted failures)."),
		recovered: reg.Counter("qplacerd_jobs_recovered_total",
			"Jobs re-queued from the durable store at startup."),
		quotaDenied: reg.Counter("qplacerd_quota_denied_total",
			"Submits rejected by the per-client quota."),
		storeErrors: reg.Counter("qplacerd_store_errors_total",
			"Store operations that failed (the in-memory index stays authoritative)."),
		cacheHits: reg.Counter("qplacerd_cache_hits_total",
			"Submits served from a live job for the same normalized request."),
		leaseExpiries: reg.Counter("qplacerd_lease_expiries_total",
			"Running jobs whose lease lapsed without a heartbeat."),

		sseSubscribers: reg.Gauge("qplacerd_sse_subscribers",
			"Currently connected SSE event streams."),
		journalFsync: reg.Histogram("qplacerd_journal_fsync_seconds",
			"Latency of journal fsyncs (durable job transitions).", nil),
		httpRequests: reg.CounterVec("qplacerd_http_requests_total",
			"HTTP requests served, by route pattern and status code.",
			"route", "code"),
		planSeconds: reg.HistogramVec("qplacerd_plan_seconds",
			"End-to-end placement latency of successful plans.", nil,
			"topology", "placer", "legalizer"),
	}

	reg.GaugeFunc("qplacerd_queue_depth",
		"Jobs waiting for a worker.", func() float64 {
			m.st.mu.Lock()
			defer m.st.mu.Unlock()
			queued, _ := m.st.counts()
			return float64(queued)
		})
	reg.GaugeFunc("qplacerd_jobs_running",
		"Jobs currently leased by a worker.", func() float64 {
			m.st.mu.Lock()
			defer m.st.mu.Unlock()
			_, running := m.st.counts()
			return float64(running)
		})
	sumEngines := func(pick func(qplacer.EngineStats) uint64) func() uint64 {
		return func() uint64 {
			var total uint64
			for _, eng := range m.engines {
				total += pick(eng.Stats())
			}
			return total
		}
	}
	reg.CounterFunc("qplacerd_engine_plan_cache_hits_total",
		"Engine plan-cache hits across the pool.",
		sumEngines(func(s qplacer.EngineStats) uint64 { return s.PlanCacheHits }))
	reg.CounterFunc("qplacerd_engine_plan_cache_misses_total",
		"Engine plan-cache misses across the pool.",
		sumEngines(func(s qplacer.EngineStats) uint64 { return s.PlanCacheMisses }))
	reg.CounterFunc("qplacerd_engine_stage_cache_hits_total",
		"Engine stage-cache hits across the pool.",
		sumEngines(func(s qplacer.EngineStats) uint64 { return s.StageCacheHits }))
	reg.CounterFunc("qplacerd_engine_stage_cache_misses_total",
		"Engine stage-cache misses across the pool.",
		sumEngines(func(s qplacer.EngineStats) uint64 { return s.StageCacheMisses }))
	return sm
}

// observePlan records a successful plan's wall time under its backend labels.
func (sm *serviceMetrics) observePlan(topology, placer, legalizer string, d time.Duration) {
	sm.planSeconds.With(topology, placer, legalizer).Observe(d.Seconds())
}

// MetricNames returns every registered metric name, sorted — the source of
// truth the docs and CI lint /metrics output against.
func (m *Manager) MetricNames() []string { return m.metrics.reg.Names() }

// WriteMetrics renders the registry in the Prometheus text exposition format
// (version 0.0.4).
func (m *Manager) WriteMetrics(w io.Writer) error { return m.metrics.reg.WritePrometheus(w) }
