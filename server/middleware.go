package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"net/http"
	"strconv"
	"time"
)

// requestIDKey carries the request's correlation ID through its context.
type requestIDKey struct{}

// RequestIDFromContext returns the correlation ID the middleware attached to
// the request ("" outside a server request). Handlers thread it into job
// records; embedders can use it to correlate their own logs.
func RequestIDFromContext(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

// newRequestID returns a fresh 16-hex-char correlation ID.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// statusWriter records the response status while delegating everything else
// — including the SSE handler's flushes — to the wrapped writer.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// Flush implements http.Flusher by delegation, so SSE streaming keeps
// working through the middleware.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap supports http.ResponseController.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// withObservability wraps the router with the cross-cutting request
// middleware: X-Request-ID propagation (honoring a client-supplied ID,
// generating one otherwise, echoing it on the response), a structured access
// log line per request, and the qplacerd_http_requests_total{route,code}
// counter keyed by the matched route pattern.
func (s *Server) withObservability(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		reqID := r.Header.Get("X-Request-ID")
		if reqID == "" {
			reqID = newRequestID()
		}
		w.Header().Set("X-Request-ID", reqID)
		r = r.WithContext(context.WithValue(r.Context(), requestIDKey{}, reqID))
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(sw, r)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		route := "unmatched"
		if _, pattern := s.mux.Handler(r); pattern != "" {
			route = pattern
		}
		s.mgr.metrics.httpRequests.With(route, strconv.Itoa(sw.status)).Inc()
		s.mgr.log.Info("http request", "method", r.Method, "route", route,
			"status", sw.status, "duration", time.Since(start),
			"request_id", reqID)
	})
}
