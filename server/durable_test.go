package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"qplacer"
	"qplacer/server"
	"qplacer/server/journal"
)

// slowRequest is a manager-level eagle run: long enough to interrupt.
func slowRequest(seed int64) server.Request {
	return server.Request{
		Options:    qplacer.Options{Topology: "eagle", Seed: seed},
		Benchmarks: []string{"bv-4"},
		Mappings:   2,
	}
}

// pollMgr polls the manager until the job reaches want (fatal on a
// different terminal state).
func pollMgr(t *testing.T, m *server.Manager, id string, want server.State) server.JobView {
	t.Helper()
	deadline := time.Now().Add(90 * time.Second)
	for {
		view, err := m.Job(id)
		if err != nil {
			t.Fatalf("poll %s: %v", id, err)
		}
		if view.State == want {
			return view
		}
		if view.State != want && (view.State == server.StateDone ||
			view.State == server.StateFailed || view.State == server.StateCancelled) {
			t.Fatalf("job %s reached %s (%s), want %s", id, view.State, view.Error, want)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s, want %s", id, view.State, want)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// callAs is call with a client identity header, for quota tests.
func callAs(t *testing.T, client, method, url, body string, out any) int {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Client-ID", client)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decoding response: %v", method, url, err)
		}
	}
	return resp.StatusCode
}

// TestDurableRestartServesResultAndDedup restarts the manager on the same
// journal directory after a job finishes: the second process serves the
// result it never computed, and an identical resubmit is a cache hit on the
// recovered job instead of a re-run.
func TestDurableRestartServesResultAndDedup(t *testing.T) {
	dir := t.TempDir()
	open := func() *server.Manager {
		t.Helper()
		js, err := journal.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		return server.NewManager(server.Config{Workers: 1, Store: js})
	}

	m1 := open()
	view, cached, err := m1.Submit(fastRequest(70))
	if err != nil || cached {
		t.Fatalf("submit: cached=%v err=%v", cached, err)
	}
	pollMgr(t, m1, view.ID, server.StateDone)
	raw1, err := m1.ResultJSON(view.ID)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := m1.Shutdown(ctx); err != nil {
		t.Fatalf("clean shutdown: %v", err)
	}

	m2 := open()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = m2.Shutdown(ctx)
	}()
	got, err := m2.Job(view.ID)
	if err != nil {
		t.Fatalf("recovered job missing: %v", err)
	}
	if got.State != server.StateDone || got.Attempts != 1 {
		t.Fatalf("recovered job: state=%s attempts=%d, want done/1", got.State, got.Attempts)
	}
	raw2, err := m2.ResultJSON(view.ID)
	if err != nil {
		t.Fatalf("recovered result: %v", err)
	}
	if !bytes.Equal(raw1, raw2) {
		t.Fatal("recovered result JSON differs from the one computed before restart")
	}
	dup, cached, err := m2.Submit(fastRequest(70))
	if err != nil {
		t.Fatal(err)
	}
	if !cached || dup.ID != view.ID {
		t.Fatalf("resubmit after restart: cached=%v id=%s, want cache hit on %s", cached, dup.ID, view.ID)
	}
}

// TestForcedDrainFlushesInFlight pins the drain satellite: when the
// shutdown budget expires with a job mid-run, the job is flushed back to
// the durable store as queued (not cancelled, not charged a retry), and the
// next boot re-leases and runs it.
func TestForcedDrainFlushesInFlight(t *testing.T) {
	dir := t.TempDir()
	js, err := journal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	m1 := server.NewManager(server.Config{Workers: 1, Store: js})
	view, _, err := m1.Submit(slowRequest(71))
	if err != nil {
		t.Fatal(err)
	}
	pollMgr(t, m1, view.ID, server.StateRunning)

	expired, cancel := context.WithCancel(context.Background())
	cancel() // zero budget: force the drain path immediately
	if err := m1.Shutdown(expired); !errors.Is(err, context.Canceled) {
		t.Fatalf("forced shutdown returned %v, want context.Canceled", err)
	}

	js2, err := journal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := js2.LoadJobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].State != server.StateQueued || recs[0].Attempts != 0 {
		t.Fatalf("flushed record %+v, want state=queued attempts=0", recs)
	}

	m2 := server.NewManager(server.Config{Workers: 1, Store: js2})
	defer func() {
		forced, cancel := context.WithCancel(context.Background())
		cancel()
		_ = m2.Shutdown(forced)
	}()
	if got := m2.Stats().Recovered; got != 1 {
		t.Fatalf("Stats.Recovered = %d, want 1", got)
	}
	// The recovered job is re-leased by the new process's worker.
	if got := pollMgr(t, m2, view.ID, server.StateRunning); got.Attempts != 1 {
		t.Fatalf("re-leased job attempts = %d, want 1", got.Attempts)
	}
}

// TestQuotaPerClient exercises per-client backpressure: the third live job
// from one client is a 429 quota_exceeded with Retry-After, while another
// client is unaffected.
func TestQuotaPerClient(t *testing.T) {
	ts := newTS(t, server.Config{Workers: 1, QueueDepth: 8, QuotaPerClient: 2})
	submit := func(client string, seed int64) (int, server.SubmitResponse) {
		t.Helper()
		var sub server.SubmitResponse
		code := callAs(t, client, http.MethodPost, ts.URL+"/v1/plans", slowBody(seed), &sub)
		return code, sub
	}
	var ids []string
	for seed := int64(80); seed < 82; seed++ {
		code, sub := submit("alice", seed)
		if code != http.StatusAccepted {
			t.Fatalf("submit %d as alice: status %d", seed, code)
		}
		ids = append(ids, sub.Job.ID)
	}

	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/plans", strings.NewReader(slowBody(82)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Client-ID", "alice")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var denial struct {
		Error string `json:"error"`
		Code  string `json:"code"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&denial); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests || denial.Code != "quota_exceeded" {
		t.Fatalf("third live job: status %d code %q, want 429 quota_exceeded", resp.StatusCode, denial.Code)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After header")
	}

	// Another client's identical quota is untouched.
	code, sub := submit("bob", 82)
	if code != http.StatusAccepted {
		t.Fatalf("submit as bob: status %d, want 202", code)
	}
	ids = append(ids, sub.Job.ID)

	// A finished job stops counting: cancel one of alice's and resubmit.
	if code := call(t, http.MethodDelete, ts.URL+"/v1/jobs/"+ids[0], "", nil); code != http.StatusOK {
		t.Fatalf("cancel status %d", code)
	}
	pollJob(t, ts.URL, ids[0], server.StateCancelled)
	code, sub = submit("alice", 83)
	if code != http.StatusAccepted {
		t.Fatalf("submit after freeing quota: status %d, want 202", code)
	}
	ids = append(ids, sub.Job.ID)

	for _, id := range ids[1:] {
		_ = call(t, http.MethodDelete, ts.URL+"/v1/jobs/"+id, "", nil)
	}
}

// TestJobsListPagination covers the operator list endpoint: submission
// order, page tokens, the status filter, and the 400 on a bogus filter.
func TestJobsListPagination(t *testing.T) {
	ts := newTS(t, server.Config{Workers: 2})
	var want []string
	for seed := int64(90); seed < 95; seed++ {
		var sub server.SubmitResponse
		if code := call(t, http.MethodPost, ts.URL+"/v1/plans", fastBody(seed), &sub); code != http.StatusAccepted {
			t.Fatalf("submit %d: status %d", seed, code)
		}
		want = append(want, sub.Job.ID)
	}
	for _, id := range want {
		pollJob(t, ts.URL, id, server.StateDone)
	}

	var got []string
	token := ""
	pages := 0
	for {
		url := ts.URL + "/v1/jobs?limit=2"
		if token != "" {
			url += "&page_token=" + token
		}
		var page server.JobsResponse
		if code := call(t, http.MethodGet, url, "", &page); code != http.StatusOK {
			t.Fatalf("list page %d: status %d", pages, code)
		}
		if len(page.Jobs) > 2 {
			t.Fatalf("page %d has %d jobs, limit was 2", pages, len(page.Jobs))
		}
		for _, v := range page.Jobs {
			got = append(got, v.ID)
		}
		pages++
		if page.NextPageToken == "" {
			break
		}
		token = page.NextPageToken
	}
	if pages != 3 {
		t.Fatalf("5 jobs at limit=2 took %d pages, want 3", pages)
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("paged list %v != submission order %v", got, want)
	}

	var done server.JobsResponse
	if code := call(t, http.MethodGet, ts.URL+"/v1/jobs?status=done", "", &done); code != http.StatusOK {
		t.Fatalf("status filter: %d", code)
	}
	if len(done.Jobs) != 5 {
		t.Fatalf("status=done returned %d jobs, want 5", len(done.Jobs))
	}
	var running server.JobsResponse
	if code := call(t, http.MethodGet, ts.URL+"/v1/jobs?status=running", "", &running); code != http.StatusOK {
		t.Fatalf("status filter: %d", code)
	}
	if len(running.Jobs) != 0 {
		t.Fatalf("status=running returned %d jobs, want 0", len(running.Jobs))
	}
	var bad struct {
		Code string `json:"code"`
	}
	if code := call(t, http.MethodGet, ts.URL+"/v1/jobs?status=bogus", "", &bad); code != http.StatusBadRequest || bad.Code != "invalid_argument" {
		t.Fatalf("bogus status filter: %d %q, want 400 invalid_argument", code, bad.Code)
	}
}

// TestLeaseExpiryExhaustsRetries forces lease expiry with the test hooks (no
// heartbeat, aggressive sweeps): each expiry re-queues the job until the
// retry budget runs out, at which point it fails with retries_exhausted and
// the retry counter shows every expiry.
func TestLeaseExpiryExhaustsRetries(t *testing.T) {
	cfg := server.ConfigWithTestHooks(server.Config{
		Workers:    1,
		LeaseTTL:   150 * time.Millisecond,
		MaxRetries: 1,
	}, 25*time.Millisecond)
	m := newMgr(t, cfg)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = m.Shutdown(ctx)
	}()
	view, _, err := m.Submit(slowRequest(72))
	if err != nil {
		t.Fatal(err)
	}
	got := pollMgr(t, m, view.ID, server.StateFailed)
	if got.Attempts != 2 {
		t.Fatalf("failed after %d attempts, want 2 (initial + 1 retry)", got.Attempts)
	}
	if !strings.Contains(got.Error, "retry budget exhausted") && !strings.Contains(got.Error, "lease expired") {
		t.Fatalf("failure reason %q does not mention the lease/retry budget", got.Error)
	}
	if stats := m.Stats(); stats.Retried != 2 {
		t.Fatalf("Stats.Retried = %d, want 2", stats.Retried)
	}
}
