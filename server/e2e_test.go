package server_test

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"net"
	"net/http"
	"os/exec"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"qplacer/server"
)

// TestEndToEndDaemon exercises the acceptance path against a real TCP
// listener on an ephemeral port: submit a small grid job over HTTP, poll it
// to completion, fetch the JSON result, cancel a long-running job mid-run,
// and observe a repeated identical submit served from the result cache —
// then shut the daemon down gracefully.
func TestEndToEndDaemon(t *testing.T) {
	srv := server.New(server.Config{Workers: 2})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	base := "http://" + ln.Addr().String()

	// Liveness first: the daemon answers before any job exists.
	var health struct {
		Status string `json:"status"`
	}
	if code := call(t, http.MethodGet, base+"/healthz", "", &health); code != http.StatusOK || health.Status != "ok" {
		t.Fatalf("healthz: %d %+v", code, health)
	}

	// Submit a small grid plan job and poll it to completion.
	var sub server.SubmitResponse
	if code := call(t, http.MethodPost, base+"/v1/plans", fastBody(100), &sub); code != http.StatusAccepted {
		t.Fatalf("submit status %d, want 202", code)
	}
	pollJob(t, base, sub.Job.ID, server.StateDone)

	var doc resultDoc
	if code := call(t, http.MethodGet, base+"/v1/jobs/"+sub.Job.ID+"/result", "", &doc); code != http.StatusOK {
		t.Fatalf("result status %d, want 200", code)
	}
	if doc.Plan.Device.Name != "grid" || len(doc.Plan.Placement) == 0 {
		t.Fatalf("result missing layout: %+v", doc.Plan)
	}
	if doc.Batch == nil || len(doc.Batch.Results) != 1 ||
		doc.Batch.Results[0].MeanFidelity <= 0 || doc.Batch.Results[0].MeanFidelity > 1 {
		t.Fatalf("fidelity fields not populated: %+v", doc.Batch)
	}

	// Cancel a second, long-running job mid-run and observe it report so.
	var slow server.SubmitResponse
	if code := call(t, http.MethodPost, base+"/v1/plans", slowBody(101), &slow); code != http.StatusAccepted {
		t.Fatalf("slow submit status %d", code)
	}
	pollJob(t, base, slow.Job.ID, server.StateRunning)
	if code := call(t, http.MethodDelete, base+"/v1/jobs/"+slow.Job.ID, "", nil); code != http.StatusOK {
		t.Fatalf("cancel status %d", code)
	}
	pollJob(t, base, slow.Job.ID, server.StateCancelled)

	// A repeated identical submit is a cache hit: same job, no re-run.
	var dup server.SubmitResponse
	if code := call(t, http.MethodPost, base+"/v1/plans", fastBody(100), &dup); code != http.StatusOK {
		t.Fatalf("duplicate submit status %d, want 200", code)
	}
	if !dup.Cached || dup.Job.ID != sub.Job.ID {
		t.Fatalf("duplicate submit not cached: %+v", dup)
	}
	var stats server.Stats
	if code := call(t, http.MethodGet, base+"/metrics", "", &stats); code != http.StatusOK {
		t.Fatalf("metrics status %d", code)
	}
	if stats.CacheHits != 1 || stats.Done != 1 || stats.Cancelled != 1 {
		t.Fatalf("daemon counters: %+v", stats)
	}

	// Graceful shutdown: Serve unwinds with ErrServerClosed, jobs drained.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	select {
	case err := <-serveErr:
		if !errors.Is(err, http.ErrServerClosed) {
			t.Fatalf("Serve returned %v, want ErrServerClosed", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not unwind after Shutdown")
	}
}

// startDaemon launches a qplacerd subprocess on an ephemeral port and
// returns the process plus its base URL, parsed from the startup log line.
func startDaemon(t *testing.T, bin, dataDir string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-data-dir", dataDir, "-workers", "1")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			_ = cmd.Process.Kill()
			_, _ = cmd.Process.Wait()
		}
	})
	addrc := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if _, rest, ok := strings.Cut(line, "listening on "); ok {
				addr, _, _ := strings.Cut(rest, " ")
				select {
				case addrc <- addr:
				default:
				}
			}
		}
	}()
	select {
	case addr := <-addrc:
		return cmd, "http://" + addr
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not report a listen address")
		return nil, ""
	}
}

// stripVolatile removes the wall-clock fields from a decoded result
// document; everything that remains is deterministic for a given request.
func stripVolatile(doc map[string]any) {
	if plan, ok := doc["plan"].(map[string]any); ok {
		delete(plan, "place_runtime_ms")
		delete(plan, "avg_iter_ms")
		delete(plan, "timings") // span wall/cpu times differ run to run
	}
	if batch, ok := doc["batch"].(map[string]any); ok {
		delete(batch, "elapsed_ns")
	}
}

// TestCrashRecoveryE2E is the acceptance test for the durable subsystem:
// SIGKILL a real qplacerd mid-placement, restart it on the same -data-dir,
// and require the recovered daemon to re-lease, finish, and serve a result
// identical (minus wall-clock fields) to a run that was never interrupted.
func TestCrashRecoveryE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills a real daemon; skipped in -short")
	}
	tmp := t.TempDir()
	bin := filepath.Join(tmp, "qplacerd")
	build := exec.Command("go", "build", "-o", bin, "./cmd/qplacerd")
	build.Dir = ".."
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building qplacerd: %v\n%s", err, out)
	}
	dataDir := filepath.Join(tmp, "data")

	// Boot #1: submit a long eagle job and let it make real progress.
	cmd, base := startDaemon(t, bin, dataDir)
	var sub server.SubmitResponse
	if code := call(t, http.MethodPost, base+"/v1/plans", slowBody(200), &sub); code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		var view server.JobView
		if code := call(t, http.MethodGet, base+"/v1/jobs/"+sub.Job.ID, "", &view); code != http.StatusOK {
			t.Fatalf("poll status %d", code)
		}
		if view.State == server.StateRunning && view.Progress != nil && view.Progress.Iteration >= 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never reached iteration 3: %+v", view)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Kill it mid-run: no drain, no flush — the crash the journal exists for.
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = cmd.Wait()

	// Boot #2 on the same data-dir: the job must come back via the list
	// endpoint, get re-leased (a second attempt), and complete.
	_, base2 := startDaemon(t, bin, dataDir)
	var page server.JobsResponse
	if code := call(t, http.MethodGet, base2+"/v1/jobs", "", &page); code != http.StatusOK {
		t.Fatalf("list after restart: status %d", code)
	}
	if len(page.Jobs) != 1 || page.Jobs[0].ID != sub.Job.ID {
		t.Fatalf("list after restart: %+v, want just %s", page.Jobs, sub.Job.ID)
	}
	if s := page.Jobs[0].State; s != server.StateQueued && s != server.StateRunning {
		t.Fatalf("recovered job state %q, want queued or running", s)
	}
	final := pollJob(t, base2, sub.Job.ID, server.StateDone)
	if final.Attempts != 2 {
		t.Fatalf("recovered job attempts = %d, want 2 (crashed attempt + re-lease)", final.Attempts)
	}
	var recovered map[string]any
	if code := call(t, http.MethodGet, base2+"/v1/jobs/"+sub.Job.ID+"/result", "", &recovered); code != http.StatusOK {
		t.Fatalf("result after recovery: status %d", code)
	}

	// The uninterrupted reference run, in-process on a fresh manager.
	m := server.NewManager(server.Config{Workers: 1})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = m.Shutdown(ctx)
	}()
	ref, _, err := m.Submit(slowRequest(200))
	if err != nil {
		t.Fatal(err)
	}
	pollMgr(t, m, ref.ID, server.StateDone)
	raw, err := m.ResultJSON(ref.ID)
	if err != nil {
		t.Fatal(err)
	}
	var reference map[string]any
	if err := json.Unmarshal(raw, &reference); err != nil {
		t.Fatal(err)
	}

	stripVolatile(recovered)
	stripVolatile(reference)
	if plan, ok := recovered["plan"].(map[string]any); !ok || plan["placement"] == nil {
		t.Fatalf("recovered result has no placement: %v", recovered)
	}
	if !reflect.DeepEqual(recovered, reference) {
		t.Fatal("recovered result differs from an uninterrupted run of the same request")
	}
}
