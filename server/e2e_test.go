package server_test

import (
	"context"
	"errors"
	"net"
	"net/http"
	"testing"
	"time"

	"qplacer/server"
)

// TestEndToEndDaemon exercises the acceptance path against a real TCP
// listener on an ephemeral port: submit a small grid job over HTTP, poll it
// to completion, fetch the JSON result, cancel a long-running job mid-run,
// and observe a repeated identical submit served from the result cache —
// then shut the daemon down gracefully.
func TestEndToEndDaemon(t *testing.T) {
	srv := server.New(server.Config{Workers: 2})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	base := "http://" + ln.Addr().String()

	// Liveness first: the daemon answers before any job exists.
	var health struct {
		Status string `json:"status"`
	}
	if code := call(t, http.MethodGet, base+"/healthz", "", &health); code != http.StatusOK || health.Status != "ok" {
		t.Fatalf("healthz: %d %+v", code, health)
	}

	// Submit a small grid plan job and poll it to completion.
	var sub server.SubmitResponse
	if code := call(t, http.MethodPost, base+"/v1/plans", fastBody(100), &sub); code != http.StatusAccepted {
		t.Fatalf("submit status %d, want 202", code)
	}
	pollJob(t, base, sub.Job.ID, server.StateDone)

	var doc resultDoc
	if code := call(t, http.MethodGet, base+"/v1/jobs/"+sub.Job.ID+"/result", "", &doc); code != http.StatusOK {
		t.Fatalf("result status %d, want 200", code)
	}
	if doc.Plan.Device.Name != "grid" || len(doc.Plan.Placement) == 0 {
		t.Fatalf("result missing layout: %+v", doc.Plan)
	}
	if doc.Batch == nil || len(doc.Batch.Results) != 1 ||
		doc.Batch.Results[0].MeanFidelity <= 0 || doc.Batch.Results[0].MeanFidelity > 1 {
		t.Fatalf("fidelity fields not populated: %+v", doc.Batch)
	}

	// Cancel a second, long-running job mid-run and observe it report so.
	var slow server.SubmitResponse
	if code := call(t, http.MethodPost, base+"/v1/plans", slowBody(101), &slow); code != http.StatusAccepted {
		t.Fatalf("slow submit status %d", code)
	}
	pollJob(t, base, slow.Job.ID, server.StateRunning)
	if code := call(t, http.MethodDelete, base+"/v1/jobs/"+slow.Job.ID, "", nil); code != http.StatusOK {
		t.Fatalf("cancel status %d", code)
	}
	pollJob(t, base, slow.Job.ID, server.StateCancelled)

	// A repeated identical submit is a cache hit: same job, no re-run.
	var dup server.SubmitResponse
	if code := call(t, http.MethodPost, base+"/v1/plans", fastBody(100), &dup); code != http.StatusOK {
		t.Fatalf("duplicate submit status %d, want 200", code)
	}
	if !dup.Cached || dup.Job.ID != sub.Job.ID {
		t.Fatalf("duplicate submit not cached: %+v", dup)
	}
	var stats server.Stats
	if code := call(t, http.MethodGet, base+"/metrics", "", &stats); code != http.StatusOK {
		t.Fatalf("metrics status %d", code)
	}
	if stats.CacheHits != 1 || stats.Done != 1 || stats.Cancelled != 1 {
		t.Fatalf("daemon counters: %+v", stats)
	}

	// Graceful shutdown: Serve unwinds with ErrServerClosed, jobs drained.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	select {
	case err := <-serveErr:
		if !errors.Is(err, http.ErrServerClosed) {
			t.Fatalf("Serve returned %v, want ErrServerClosed", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not unwind after Shutdown")
	}
}
