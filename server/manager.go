// Package server turns the qplacer Engine into a placement service: an
// asynchronous job manager fans submitted placement requests out over a pool
// of shared engines (so the stage cache warms across requests), an in-memory
// store tracks job lifecycle with TTL eviction, and HTTP/JSON handlers expose
// submit / poll / result / cancel plus the topology and benchmark registries.
package server

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"qplacer"
)

// Sentinel errors of the service layer; handlers map them onto HTTP status
// codes alongside the qplacer package sentinels.
var (
	// ErrUnknownJob reports a job ID not present in the store (never
	// submitted, or evicted after its TTL).
	ErrUnknownJob = errors.New("server: unknown job")
	// ErrJobNotDone reports a result fetch on a job still queued or running.
	ErrJobNotDone = errors.New("server: job not done yet")
	// ErrQueueFull reports a submit rejected because the pending queue is at
	// capacity.
	ErrQueueFull = errors.New("server: job queue full")
	// ErrShuttingDown reports a submit during graceful shutdown.
	ErrShuttingDown = errors.New("server: shutting down")
)

// Config sizes the job manager.
type Config struct {
	// Workers is the number of jobs placed/evaluated concurrently
	// (default 2).
	Workers int
	// EnginePool is the number of shared engines the workers draw from
	// (default 1: every request shares one stage cache).
	EnginePool int
	// QueueDepth bounds the pending-job queue (default 64); submits beyond
	// it fail with ErrQueueFull.
	QueueDepth int
	// JobTTL is how long finished jobs (and their cached results) stay
	// retrievable (default 15m).
	JobTTL time.Duration
	// EngineOptions are forwarded to every engine in the pool.
	EngineOptions []qplacer.Option
	// Parallelism bounds the worker pool inside each placement run
	// (qplacer.WithParallelism). The default (0) sizes it to
	// max(1, GOMAXPROCS / Workers): jobs already run concurrently, so
	// Workers × Parallelism ≈ GOMAXPROCS keeps jobs from fighting for
	// cores. Parallelism never changes results, only wall-clock.
	Parallelism int
	// DefaultPlacer and DefaultLegalizer fill requests that leave the
	// backend unset, before normalization ("" keeps the package defaults,
	// "nesterov"/"shelf"). Requests naming a backend explicitly win.
	DefaultPlacer    string
	DefaultLegalizer string
	// StrictValidation fails jobs whose placement carries error-severity
	// violations (ErrInvalidPlacement → 422 at the result endpoint) instead
	// of merely annotating the result document. Every job's result carries
	// the independent verifier's report either way.
	StrictValidation bool
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.EnginePool <= 0 {
		c.EnginePool = 1
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.JobTTL <= 0 {
		c.JobTTL = 15 * time.Minute
	}
	if c.Parallelism <= 0 {
		c.Parallelism = runtime.GOMAXPROCS(0) / c.Workers
		if c.Parallelism < 1 {
			c.Parallelism = 1
		}
	}
	return c
}

// Stats are the service counters served by /metrics.
type Stats struct {
	Submitted    uint64  `json:"jobs_submitted"`
	Queued       int     `json:"jobs_queued"`
	Running      int     `json:"jobs_running"`
	Done         uint64  `json:"jobs_done"`
	Failed       uint64  `json:"jobs_failed"`
	Cancelled    uint64  `json:"jobs_cancelled"`
	CacheHits    uint64  `json:"cache_hits"`
	CacheHitRate float64 `json:"cache_hit_rate"`
}

// Manager owns the job queue, the engine pool, and the store. It is safe
// for concurrent use.
type Manager struct {
	cfg     Config
	st      *store
	queue   chan *Job
	engines []*qplacer.Engine
	wg      sync.WaitGroup

	// validateSem bounds synchronous Validate calls to the same concurrency
	// as the job workers, so a burst of POST /v1/validate cannot run more
	// placements at once than the job queue would allow.
	validateSem chan struct{}
	// validateRR round-robins Validate calls over the engine pool (guarded
	// by st.mu).
	validateRR uint64

	// counters are guarded by st.mu, like all job state.
	submitted uint64
	done      uint64
	failed    uint64
	cancelled uint64
	cacheHits uint64
	closed    bool
}

// NewManager builds the manager and starts its workers. Call Shutdown to
// drain them.
func NewManager(cfg Config) *Manager {
	cfg = cfg.withDefaults()
	m := &Manager{
		cfg:         cfg,
		st:          newStore(cfg.JobTTL),
		queue:       make(chan *Job, cfg.QueueDepth),
		validateSem: make(chan struct{}, cfg.Workers),
	}
	engOpts := append(append([]qplacer.Option(nil), cfg.EngineOptions...),
		qplacer.WithParallelism(cfg.Parallelism))
	for i := 0; i < cfg.EnginePool; i++ {
		m.engines = append(m.engines, qplacer.New(engOpts...))
	}
	for w := 0; w < cfg.Workers; w++ {
		eng := m.engines[w%len(m.engines)]
		m.wg.Add(1)
		go m.worker(eng)
	}
	return m
}

// normalize validates the raw request against the registries and fills in
// defaults — the manager's configured backend defaults first, then the
// package normalization — producing the canonical form the cache keys on.
// Failures wrap the qplacer sentinels so handlers can map them to status
// codes.
func (m *Manager) normalize(req Request) (Request, error) {
	if req.Options.Placer == "" {
		req.Options.Placer = m.cfg.DefaultPlacer
	}
	if req.Options.Legalizer == "" {
		req.Options.Legalizer = m.cfg.DefaultLegalizer
	}
	opts, err := req.Options.Normalized()
	if err != nil {
		return req, err
	}
	req.Options = opts
	if !containsName(qplacer.RegisteredTopologies(), opts.Topology) {
		return req, fmt.Errorf("%w: %q", qplacer.ErrUnknownTopology, opts.Topology)
	}
	if len(req.Benchmarks) == 0 {
		req.Benchmarks = qplacer.RegisteredBenchmarks()
	} else {
		registered := qplacer.RegisteredBenchmarks()
		for _, b := range req.Benchmarks {
			if !containsName(registered, b) {
				return req, fmt.Errorf("%w: %q", qplacer.ErrUnknownBenchmark, b)
			}
		}
		req.Benchmarks = append([]string(nil), req.Benchmarks...)
	}
	if len(req.Benchmarks) == 0 {
		return req, qplacer.ErrNoBenchmarks
	}
	if req.Mappings <= 0 {
		req.Mappings = qplacer.DefaultMappings
	}
	return req, nil
}

func containsName(names []string, want string) bool {
	i := sort.SearchStrings(names, want)
	return i < len(names) && names[i] == want
}

// validationMode is how every job (and the validate endpoint) runs the
// verifier: annotate by default, strict when configured.
func (m *Manager) validationMode() qplacer.ValidationMode {
	if m.cfg.StrictValidation {
		return qplacer.ValidationStrict
	}
	return qplacer.ValidationAnnotate
}

// Validate synchronously plans the given options and returns the
// independent verifier's report alongside the normalized options. Calls
// share the engine pool's stage and plan caches (with a single-engine pool,
// re-validating a just-finished job is a warm cache hit) and are bounded to
// the worker count: excess callers wait their turn or give up with their
// context. Cancelling ctx also aborts an in-flight placement.
func (m *Manager) Validate(ctx context.Context, opts qplacer.Options) (*qplacer.ValidationReport, qplacer.Options, error) {
	norm, err := m.normalize(Request{Options: opts})
	if err != nil {
		return nil, opts, err
	}
	select {
	case m.validateSem <- struct{}{}:
		defer func() { <-m.validateSem }()
	case <-ctx.Done():
		return nil, norm.Options, fmt.Errorf("%w: %w", qplacer.ErrCancelled, ctx.Err())
	}
	m.st.mu.Lock()
	m.validateRR++
	eng := m.engines[int(m.validateRR)%len(m.engines)]
	m.st.mu.Unlock()
	plan, err := eng.Plan(ctx,
		qplacer.WithOptions(norm.Options),
		qplacer.WithValidation(qplacer.ValidationAnnotate))
	if err != nil {
		return nil, norm.Options, err
	}
	return plan.Validation, norm.Options, nil
}

// Submit normalizes and enqueues a placement request. A request whose
// normalized form matches a live job — queued, running, or done within the
// TTL — is a cache hit and returns that job instead of re-running the
// pipeline; cached reports true in that case.
func (m *Manager) Submit(req Request) (JobView, bool, error) {
	norm, err := m.normalize(req)
	if err != nil {
		return JobView{}, false, err
	}

	m.st.mu.Lock()
	defer m.st.mu.Unlock()
	m.st.sweep()

	if prior, ok := m.st.byKey[norm.key()]; ok {
		m.cacheHits++
		prior.hits++
		return m.st.view(prior), true, nil
	}
	if m.closed {
		return JobView{}, false, ErrShuttingDown
	}

	m.st.seq++
	job := &Job{
		ID:      fmt.Sprintf("job-%d", m.st.seq),
		Request: norm,
		state:   StateQueued,
		created: m.st.now(),
		seq:     m.st.seq,
	}
	select {
	case m.queue <- job:
	default:
		return JobView{}, false, fmt.Errorf("%w (depth %d)", ErrQueueFull, cap(m.queue))
	}
	m.st.jobs[job.ID] = job
	m.st.byKey[norm.key()] = job
	m.submitted++
	return m.st.view(job), false, nil
}

// Job returns the current snapshot of a job.
func (m *Manager) Job(id string) (JobView, error) {
	m.st.mu.Lock()
	defer m.st.mu.Unlock()
	m.st.sweep()
	job, ok := m.st.jobs[id]
	if !ok {
		return JobView{}, fmt.Errorf("%w: %q", ErrUnknownJob, id)
	}
	return m.st.view(job), nil
}

// Result returns the finished job's result document. Unfinished jobs report
// ErrJobNotDone; failed and cancelled jobs report their terminal error.
func (m *Manager) Result(id string) (*qplacer.ResultDocument, error) {
	m.st.mu.Lock()
	defer m.st.mu.Unlock()
	job, ok := m.st.jobs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownJob, id)
	}
	switch job.state {
	case StateDone:
		return job.result, nil
	case StateFailed, StateCancelled:
		return nil, job.err
	default:
		return nil, fmt.Errorf("%w: %s is %s", ErrJobNotDone, id, job.state)
	}
}

// Cancel stops a job: a queued job is cancelled immediately, a running job
// has its context cancelled and transitions once the engine unwinds, and a
// finished job is left untouched. The post-cancel snapshot is returned.
func (m *Manager) Cancel(id string) (JobView, error) {
	m.st.mu.Lock()
	defer m.st.mu.Unlock()
	job, ok := m.st.jobs[id]
	if !ok {
		return JobView{}, fmt.Errorf("%w: %q", ErrUnknownJob, id)
	}
	switch job.state {
	case StateQueued:
		job.state = StateCancelled
		job.err = qplacer.ErrCancelled
		job.finished = m.st.now()
		m.cancelled++
		m.st.dropKey(job)
	case StateRunning:
		job.phase = "cancelling"
		if job.cancel != nil {
			job.cancel()
		}
	}
	return m.st.view(job), nil
}

// Stats snapshots the service counters.
func (m *Manager) Stats() Stats {
	m.st.mu.Lock()
	defer m.st.mu.Unlock()
	queued, running := m.st.counts()
	s := Stats{
		Submitted: m.submitted,
		Queued:    queued,
		Running:   running,
		Done:      m.done,
		Failed:    m.failed,
		Cancelled: m.cancelled,
		CacheHits: m.cacheHits,
	}
	if total := m.submitted + m.cacheHits; total > 0 {
		s.CacheHitRate = float64(m.cacheHits) / float64(total)
	}
	return s
}

// Shutdown stops accepting jobs and drains the workers: queued and running
// jobs run to completion until ctx expires, at which point everything still
// in flight is cancelled and awaited.
func (m *Manager) Shutdown(ctx context.Context) error {
	m.st.mu.Lock()
	if m.closed {
		m.st.mu.Unlock()
		return nil
	}
	m.closed = true
	m.st.mu.Unlock()
	close(m.queue)

	drained := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
	}

	m.st.mu.Lock()
	for _, job := range m.st.jobs {
		switch job.state {
		case StateRunning:
			if job.cancel != nil {
				job.cancel()
			}
		case StateQueued: // still in the channel; workers will skip it
			job.state = StateCancelled
			job.err = qplacer.ErrCancelled
			job.finished = m.st.now()
			m.cancelled++
			m.st.dropKey(job)
		}
	}
	m.st.mu.Unlock()
	<-drained
	return ctx.Err()
}

// worker drains the queue. After Shutdown closes the queue it finishes the
// remaining jobs (or their cancellations) and exits.
func (m *Manager) worker(eng *qplacer.Engine) {
	defer m.wg.Done()
	for job := range m.queue {
		m.run(eng, job)
	}
}

// run executes one job: plan, then batch-evaluate, publishing phase
// transitions as it goes.
func (m *Manager) run(eng *qplacer.Engine, job *Job) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	m.st.mu.Lock()
	if job.state != StateQueued { // cancelled while waiting in the channel
		m.st.mu.Unlock()
		return
	}
	job.state = StateRunning
	job.phase = "placing"
	job.started = m.st.now()
	job.cancel = cancel
	m.st.mu.Unlock()

	// Stream backend progress into the job so GET /v1/jobs/{id} shows a
	// long run's stage, iteration, and objective mid-flight. The callback
	// fires from the engine's hot loop, so it only copies a small struct
	// under the store lock.
	obs := qplacer.ObserverFunc(func(p qplacer.Progress) {
		m.st.mu.Lock()
		if job.state == StateRunning {
			job.progress = &ProgressView{
				Stage:     string(p.Stage),
				Backend:   p.Backend,
				Iteration: p.Iteration,
				Objective: p.Objective,
			}
		}
		m.st.mu.Unlock()
	})
	// Jobs always run the independent verifier: annotate mode attaches the
	// report to the result document, strict mode turns an invalid placement
	// into a failed job (ErrInvalidPlacement → 422).
	plan, err := eng.Plan(ctx, qplacer.WithOptions(job.Request.Options),
		qplacer.WithObserver(obs), qplacer.WithValidation(m.validationMode()))
	if err != nil {
		m.finish(job, nil, err)
		return
	}

	m.st.mu.Lock()
	if job.phase != "cancelling" {
		job.phase = "evaluating"
	}
	m.st.mu.Unlock()

	batch, err := eng.EvaluateAll(ctx, plan, job.Request.Benchmarks, job.Request.Mappings)
	if err != nil {
		m.finish(job, nil, err)
		return
	}
	m.finish(job, &qplacer.ResultDocument{
		Plan:       plan,
		Batch:      batch,
		Validation: plan.Validation,
	}, nil)
}

// finish publishes the job's terminal state and maintains the result cache:
// only successful jobs stay cached for dedup.
func (m *Manager) finish(job *Job, doc *qplacer.ResultDocument, err error) {
	m.st.mu.Lock()
	defer m.st.mu.Unlock()
	job.phase = ""
	job.progress = nil
	job.finished = m.st.now()
	job.cancel = nil
	switch {
	case err == nil:
		job.state = StateDone
		job.result = doc
		m.done++
	case errors.Is(err, qplacer.ErrCancelled):
		job.state = StateCancelled
		job.err = err
		m.cancelled++
		m.st.dropKey(job)
	default:
		job.state = StateFailed
		job.err = err
		m.failed++
		m.st.dropKey(job)
	}
}
