// Package server turns the qplacer Engine into a placement service: an
// asynchronous job manager fans submitted placement requests out over a pool
// of shared engines (so the stage cache warms across requests), a lease-based
// work queue retries jobs whose worker died, a pluggable Store decides what
// survives a restart (in-memory by default, an append-only journal for
// durability), and HTTP/JSON handlers expose submit / poll / list / result /
// cancel plus an SSE progress stream and the topology and benchmark
// registries.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"time"

	"qplacer"
)

// Sentinel errors of the service layer; handlers map them onto HTTP status
// codes alongside the qplacer package sentinels.
var (
	// ErrUnknownJob reports a job ID not present in the store (never
	// submitted, or evicted after its TTL).
	ErrUnknownJob = errors.New("server: unknown job")
	// ErrJobNotDone reports a result fetch on a job still queued or running.
	ErrJobNotDone = errors.New("server: job not done yet")
	// ErrQueueFull reports a submit rejected because the pending queue is at
	// capacity (backpressure; HTTP 429).
	ErrQueueFull = errors.New("server: job queue full")
	// ErrQuotaExceeded reports a submit rejected because the client already
	// has its quota of live (queued or running) jobs (HTTP 429).
	ErrQuotaExceeded = errors.New("server: per-client quota exceeded")
	// ErrRetriesExhausted marks a job failed because its lease expired more
	// times than the retry budget allows.
	ErrRetriesExhausted = errors.New("server: retry budget exhausted")
	// ErrInvalidArgument reports malformed list-endpoint parameters.
	ErrInvalidArgument = errors.New("server: invalid argument")
	// ErrShuttingDown reports a submit during graceful shutdown.
	ErrShuttingDown = errors.New("server: shutting down")
)

// Config sizes the job manager.
type Config struct {
	// Workers is the number of jobs placed/evaluated concurrently
	// (default 2).
	Workers int
	// EnginePool is the number of shared engines the workers draw from
	// (default 1: every request shares one stage cache).
	EnginePool int
	// QueueDepth bounds the pending-job queue (default 64); submits beyond
	// it fail with ErrQueueFull (HTTP 429).
	QueueDepth int
	// JobTTL is how long finished jobs (and their cached results) stay
	// retrievable (default 15m).
	JobTTL time.Duration
	// Store decides what survives a restart: nil selects NewMemoryStore()
	// (nothing survives); qplacer/server/journal.Open gives an append-only
	// durable backend. The manager owns the store once passed in and closes
	// it during Shutdown.
	Store Store
	// LeaseTTL is how long a claimed job may go without a heartbeat before
	// it is considered abandoned and re-queued (default 30s). Running jobs
	// heartbeat automatically, so in-process leases only expire when a
	// worker wedges; across a crash+restart every non-terminal job is
	// re-queued immediately.
	LeaseTTL time.Duration
	// MaxRetries is how many times an abandoned job is re-queued before it
	// fails with ErrRetriesExhausted (default 2: up to 3 attempts total).
	MaxRetries int
	// QuotaPerClient caps the live (queued+running) jobs per Request.Client
	// (0 = unlimited). Submits beyond it fail with ErrQuotaExceeded (429).
	QuotaPerClient int
	// EngineOptions are forwarded to every engine in the pool.
	EngineOptions []qplacer.Option
	// Parallelism bounds the worker pool inside each placement run
	// (qplacer.WithParallelism). The default (0) sizes it to
	// max(1, GOMAXPROCS / Workers): jobs already run concurrently, so
	// Workers × Parallelism ≈ GOMAXPROCS keeps jobs from fighting for
	// cores. Parallelism never changes results, only wall-clock.
	Parallelism int
	// DefaultPlacer, DefaultLegalizer, and DefaultDetailedPlacer fill
	// requests that leave the backend unset, before normalization ("" keeps
	// the package defaults, "nesterov"/"shelf"/"none"). Requests naming a
	// backend explicitly win.
	DefaultPlacer         string
	DefaultLegalizer      string
	DefaultDetailedPlacer string
	// StrictValidation fails jobs whose placement carries error-severity
	// violations (ErrInvalidPlacement → 422 at the result endpoint) instead
	// of merely annotating the result document. Every job's result carries
	// the independent verifier's report either way.
	StrictValidation bool
	// Logger receives the service's structured logs (job lifecycle, lease
	// expiries, HTTP requests). nil discards everything, which keeps
	// embedded and test managers quiet by default.
	Logger *slog.Logger

	// Test hooks (see export_test.go): disable the per-run heartbeat so
	// lease expiry can be forced, override the sweep cadence, and shorten
	// the SSE keepalive interval.
	disableHeartbeat bool
	sweepEvery       time.Duration
	sseKeepalive     time.Duration
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.EnginePool <= 0 {
		c.EnginePool = 1
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.JobTTL <= 0 {
		c.JobTTL = 15 * time.Minute
	}
	if c.Store == nil {
		c.Store = NewMemoryStore()
	}
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 30 * time.Second
	}
	if c.MaxRetries < 0 {
		c.MaxRetries = 0
	} else if c.MaxRetries == 0 {
		c.MaxRetries = 2
	}
	if c.sweepEvery <= 0 {
		c.sweepEvery = c.LeaseTTL / 4
		if c.sweepEvery < 10*time.Millisecond {
			c.sweepEvery = 10 * time.Millisecond
		}
		if c.sweepEvery > 5*time.Second {
			c.sweepEvery = 5 * time.Second
		}
	}
	if c.Parallelism <= 0 {
		c.Parallelism = runtime.GOMAXPROCS(0) / c.Workers
		if c.Parallelism < 1 {
			c.Parallelism = 1
		}
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.DiscardHandler)
	}
	if c.sseKeepalive <= 0 {
		c.sseKeepalive = sseKeepalive
	}
	return c
}

// Stats are the service counters served by /metrics.
type Stats struct {
	Submitted    uint64  `json:"jobs_submitted"`
	Queued       int     `json:"jobs_queued"`
	Running      int     `json:"jobs_running"`
	Done         uint64  `json:"jobs_done"`
	Failed       uint64  `json:"jobs_failed"`
	Cancelled    uint64  `json:"jobs_cancelled"`
	Retried      uint64  `json:"jobs_retried"`
	Recovered    uint64  `json:"jobs_recovered"`
	QuotaDenied  uint64  `json:"quota_denied"`
	StoreErrors  uint64  `json:"store_errors"`
	CacheHits    uint64  `json:"cache_hits"`
	CacheHitRate float64 `json:"cache_hit_rate"`
}

// Manager owns the job queue, the engine pool, and the store. It is safe
// for concurrent use.
type Manager struct {
	cfg     Config
	st      *index
	engines []*qplacer.Engine
	wg      sync.WaitGroup

	// pending is the FIFO of claimable jobs; cond (on st.mu) wakes workers
	// when it grows or the manager closes.
	pending []*Job
	cond    *sync.Cond
	// stopSweep terminates the lease sweeper.
	stopSweep chan struct{}
	sweepDone chan struct{}

	// validateSem bounds synchronous Validate calls to the same concurrency
	// as the job workers, so a burst of POST /v1/validate cannot run more
	// placements at once than the job queue would allow.
	validateSem chan struct{}
	// validateRR round-robins Validate calls over the engine pool (guarded
	// by st.mu).
	validateRR uint64

	// metrics is the real registry behind /metrics; its lifecycle counters
	// are incremented under st.mu, alongside the transitions they record.
	metrics *serviceMetrics
	log     *slog.Logger

	closed bool
	// requeueOnExit is set during a forced (deadline-expired) drain: jobs
	// cancelled by the drain are flushed to the store as queued so a
	// durable backend re-runs them on the next boot.
	requeueOnExit bool
}

// NewManager builds the manager, recovers any jobs persisted by the
// configured Store, and starts its workers. Call Shutdown to drain them.
func NewManager(cfg Config) *Manager {
	cfg = cfg.withDefaults()
	m := &Manager{
		cfg:         cfg,
		st:          newIndex(cfg.JobTTL, cfg.Store),
		stopSweep:   make(chan struct{}),
		sweepDone:   make(chan struct{}),
		validateSem: make(chan struct{}, cfg.Workers),
	}
	m.cond = sync.NewCond(&m.st.mu)
	m.log = cfg.Logger
	engOpts := append(append([]qplacer.Option(nil), cfg.EngineOptions...),
		qplacer.WithParallelism(cfg.Parallelism))
	for i := 0; i < cfg.EnginePool; i++ {
		m.engines = append(m.engines, qplacer.New(engOpts...))
	}
	m.metrics = newServiceMetrics(m)
	// A store that can report fsync latency (the journal) feeds the
	// histogram; the interface assertion keeps Store implementations free
	// of a mandatory metrics dependency.
	if fo, ok := cfg.Store.(interface{ SetFsyncObserver(func(time.Duration)) }); ok {
		fo.SetFsyncObserver(func(d time.Duration) {
			m.metrics.journalFsync.Observe(d.Seconds())
		})
	}
	m.recover()
	for w := 0; w < cfg.Workers; w++ {
		eng := m.engines[w%len(m.engines)]
		m.wg.Add(1)
		go m.worker(eng)
	}
	go m.leaseSweeper()
	return m
}

// recover rebuilds the index from the Store: terminal jobs become servable
// snapshots (done jobs re-enter the result cache, so resubmits stay
// idempotent across a restart), and queued or running jobs are re-queued —
// a job that was mid-run when the process died is re-leased by the next
// worker, bounded by the retry budget.
func (m *Manager) recover() {
	recs, err := m.cfg.Store.LoadJobs()
	if err != nil {
		m.metrics.storeErrors.Inc()
		return
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].Seq < recs[j].Seq })
	m.st.mu.Lock()
	defer m.st.mu.Unlock()
	for _, rec := range recs {
		job := &Job{
			ID:       rec.ID,
			Request:  rec.Request,
			state:    rec.State,
			err:      errFromRecord(rec),
			attempts: rec.Attempts,
			created:  rec.Created,
			started:  rec.Started,
			finished: rec.Finished,
			seq:      rec.Seq,
			notify:   make(chan struct{}),
		}
		if rec.Seq > m.st.seq {
			m.st.seq = rec.Seq
		}
		if evs, err := m.cfg.Store.EventsSince(rec.ID, 0); err == nil && len(evs) > 0 {
			job.eventSeq = evs[len(evs)-1].Seq
		}
		m.st.jobs[job.ID] = job
		switch {
		case rec.State == StateDone:
			job.resultRaw = rec.Result
			m.st.byKey[job.Request.key()] = job
		case rec.State.terminal():
			// failed/cancelled: visible, but not a cache entry.
		case rec.Attempts > m.cfg.MaxRetries:
			// It already burned its budget before the crash: don't loop.
			job.state = StateFailed
			job.err = fmt.Errorf("%w: %d attempts", ErrRetriesExhausted, rec.Attempts)
			job.finished = m.st.now()
			m.metrics.failed.Inc()
			m.persistJob(job)
			m.publish(job, Event{Type: EventState, State: StateFailed, Error: job.err.Error()})
		default:
			job.state = StateQueued
			job.started = time.Time{}
			m.st.byKey[job.Request.key()] = job
			m.pending = append(m.pending, job)
			m.metrics.recovered.Inc()
			m.persistJob(job)
			m.publish(job, Event{Type: EventState, State: StateQueued})
		}
	}
	if len(recs) > 0 {
		m.log.Info("store recovery complete", "jobs", len(recs),
			"requeued", m.metrics.recovered.Value())
	}
}

// persistJob writes the job's current record through the Store. Caller
// holds st.mu. Store failures are counted, not fatal: the in-memory index
// stays authoritative for the life of the process.
func (m *Manager) persistJob(job *Job) {
	if err := m.st.persist.PutJob(m.st.record(job)); err != nil {
		m.metrics.storeErrors.Inc()
	}
}

// publish appends an event to the job's history and wakes SSE streams.
// Caller holds st.mu.
func (m *Manager) publish(job *Job, ev Event) {
	job.eventSeq++
	ev.Seq = job.eventSeq
	ev.Time = m.st.now()
	if err := m.st.persist.AppendEvent(job.ID, ev); err != nil {
		m.metrics.storeErrors.Inc()
	}
	close(job.notify)
	job.notify = make(chan struct{})
}

// normalize validates the raw request against the registries and fills in
// defaults — the manager's configured backend defaults first, then the
// package normalization — producing the canonical form the cache keys on.
// Failures wrap the qplacer sentinels so handlers can map them to status
// codes.
func (m *Manager) normalize(req Request) (Request, error) {
	if req.Options.Placer == "" {
		req.Options.Placer = m.cfg.DefaultPlacer
	}
	if req.Options.Legalizer == "" {
		req.Options.Legalizer = m.cfg.DefaultLegalizer
	}
	if req.Options.DetailedPlacer == "" {
		req.Options.DetailedPlacer = m.cfg.DefaultDetailedPlacer
	}
	opts, err := req.Options.Normalized()
	if err != nil {
		return req, err
	}
	req.Options = opts
	if _, err := qplacer.ResolveTopology(opts.Topology); err != nil {
		return req, err
	}
	if len(req.Benchmarks) == 0 {
		req.Benchmarks = qplacer.RegisteredBenchmarks()
	} else {
		registered := qplacer.RegisteredBenchmarks()
		for _, b := range req.Benchmarks {
			if !containsName(registered, b) {
				return req, fmt.Errorf("%w: %q", qplacer.ErrUnknownBenchmark, b)
			}
		}
		req.Benchmarks = append([]string(nil), req.Benchmarks...)
	}
	if len(req.Benchmarks) == 0 {
		return req, qplacer.ErrNoBenchmarks
	}
	if req.Mappings <= 0 {
		req.Mappings = qplacer.DefaultMappings
	}
	return req, nil
}

func containsName(names []string, want string) bool {
	i := sort.SearchStrings(names, want)
	return i < len(names) && names[i] == want
}

// validationMode is how every job (and the validate endpoint) runs the
// verifier: annotate by default, strict when configured.
func (m *Manager) validationMode() qplacer.ValidationMode {
	if m.cfg.StrictValidation {
		return qplacer.ValidationStrict
	}
	return qplacer.ValidationAnnotate
}

// Validate synchronously plans the given options and returns the
// independent verifier's report alongside the normalized options. Calls
// share the engine pool's stage and plan caches (with a single-engine pool,
// re-validating a just-finished job is a warm cache hit) and are bounded to
// the worker count: excess callers wait their turn or give up with their
// context. Cancelling ctx also aborts an in-flight placement.
func (m *Manager) Validate(ctx context.Context, opts qplacer.Options) (*qplacer.ValidationReport, qplacer.Options, error) {
	norm, err := m.normalize(Request{Options: opts})
	if err != nil {
		return nil, opts, err
	}
	select {
	case m.validateSem <- struct{}{}:
		defer func() { <-m.validateSem }()
	case <-ctx.Done():
		return nil, norm.Options, fmt.Errorf("%w: %w", qplacer.ErrCancelled, ctx.Err())
	}
	m.st.mu.Lock()
	m.validateRR++
	eng := m.engines[int(m.validateRR)%len(m.engines)]
	m.st.mu.Unlock()
	plan, err := eng.Plan(ctx,
		qplacer.WithOptions(norm.Options),
		qplacer.WithValidation(qplacer.ValidationAnnotate))
	if err != nil {
		return nil, norm.Options, err
	}
	return plan.Validation, norm.Options, nil
}

// Submit normalizes and enqueues a placement request. A request whose
// normalized form matches a live job — queued, running, or done within the
// TTL (including jobs recovered from a durable store) — is a cache hit and
// returns that job instead of re-running the pipeline; cached reports true
// in that case. Fresh work is subject to the per-client quota and the
// queue-depth backpressure.
func (m *Manager) Submit(req Request) (JobView, bool, error) {
	norm, err := m.normalize(req)
	if err != nil {
		return JobView{}, false, err
	}

	m.st.mu.Lock()
	defer m.st.mu.Unlock()
	m.st.sweep()

	if prior, ok := m.st.byKey[norm.key()]; ok {
		m.metrics.cacheHits.Inc()
		prior.hits++
		return m.st.view(prior), true, nil
	}
	if m.closed {
		return JobView{}, false, ErrShuttingDown
	}
	if q := m.cfg.QuotaPerClient; q > 0 && norm.Client != "" {
		live := 0
		for _, j := range m.st.jobs {
			if j.Request.Client == norm.Client && !j.state.terminal() {
				live++
			}
		}
		if live >= q {
			m.metrics.quotaDenied.Inc()
			return JobView{}, false, fmt.Errorf("%w: client %q has %d live jobs (quota %d)",
				ErrQuotaExceeded, norm.Client, live, q)
		}
	}
	if len(m.pending) >= m.cfg.QueueDepth {
		return JobView{}, false, fmt.Errorf("%w (depth %d)", ErrQueueFull, m.cfg.QueueDepth)
	}

	m.st.seq++
	job := &Job{
		ID:      fmt.Sprintf("job-%d", m.st.seq),
		Request: norm,
		state:   StateQueued,
		created: m.st.now(),
		seq:     m.st.seq,
		notify:  make(chan struct{}),
	}
	m.st.jobs[job.ID] = job
	m.st.byKey[norm.key()] = job
	m.pending = append(m.pending, job)
	m.metrics.submitted.Inc()
	m.persistJob(job)
	m.publish(job, Event{Type: EventState, State: StateQueued})
	m.cond.Signal()
	m.log.Info("job submitted", "job", job.ID,
		"topology", norm.Options.Topology, "placer", norm.Options.Placer,
		"legalizer", norm.Options.Legalizer, "client", norm.Client,
		"request_id", norm.RequestID)
	return m.st.view(job), false, nil
}

// Job returns the current snapshot of a job.
func (m *Manager) Job(id string) (JobView, error) {
	m.st.mu.Lock()
	defer m.st.mu.Unlock()
	m.st.sweep()
	job, ok := m.st.jobs[id]
	if !ok {
		return JobView{}, fmt.Errorf("%w: %q", ErrUnknownJob, id)
	}
	return m.st.view(job), nil
}

// Jobs lists jobs in submission order, optionally filtered by state.
// pageToken is the opaque token returned by the previous page (""
// for the first page); limit <= 0 selects 50, and is capped at 500. The
// returned token is "" on the last page.
func (m *Manager) Jobs(status State, limit int, pageToken string) ([]JobView, string, error) {
	if status != "" && !validStateFilter(status) {
		return nil, "", fmt.Errorf("%w: unknown status %q", ErrInvalidArgument, status)
	}
	var after uint64
	if pageToken != "" {
		n, err := strconv.ParseUint(pageToken, 10, 64)
		if err != nil {
			return nil, "", fmt.Errorf("%w: bad page_token %q", ErrInvalidArgument, pageToken)
		}
		after = n
	}
	if limit <= 0 {
		limit = 50
	}
	if limit > 500 {
		limit = 500
	}

	m.st.mu.Lock()
	defer m.st.mu.Unlock()
	m.st.sweep()
	matched := make([]*Job, 0, len(m.st.jobs))
	for _, j := range m.st.jobs {
		if j.seq > after && (status == "" || j.state == status) {
			matched = append(matched, j)
		}
	}
	sort.Slice(matched, func(i, j int) bool { return matched[i].seq < matched[j].seq })
	next := ""
	if len(matched) > limit {
		matched = matched[:limit]
		next = strconv.FormatUint(matched[limit-1].seq, 10)
	}
	views := make([]JobView, len(matched))
	for i, j := range matched {
		views[i] = m.st.view(j)
	}
	return views, next, nil
}

// Events returns the retained history of a job with Seq > after, whether
// the job is terminal, and a channel closed when the next event is
// published — everything an SSE stream needs for gap-free Last-Event-ID
// resume.
func (m *Manager) Events(id string, after uint64) ([]Event, bool, <-chan struct{}, error) {
	m.st.mu.Lock()
	defer m.st.mu.Unlock()
	m.st.sweep()
	job, ok := m.st.jobs[id]
	if !ok {
		return nil, false, nil, fmt.Errorf("%w: %q", ErrUnknownJob, id)
	}
	evs, err := m.st.persist.EventsSince(id, after)
	if err != nil {
		m.metrics.storeErrors.Inc()
		return nil, false, nil, err
	}
	return evs, job.state.terminal(), job.notify, nil
}

// Result returns the finished job's result document. Unfinished jobs report
// ErrJobNotDone; failed and cancelled jobs report their terminal error. A
// job recovered from a durable store only has its serialized form — use
// ResultJSON for those (the HTTP layer always does).
func (m *Manager) Result(id string) (*qplacer.ResultDocument, error) {
	m.st.mu.Lock()
	defer m.st.mu.Unlock()
	job, ok := m.st.jobs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownJob, id)
	}
	switch job.state {
	case StateDone:
		if job.result == nil {
			return nil, fmt.Errorf("server: job %s was recovered from the durable store; its result is only available serialized (use ResultJSON)", id)
		}
		return job.result, nil
	case StateFailed, StateCancelled:
		return nil, job.err
	default:
		return nil, fmt.Errorf("%w: %s is %s", ErrJobNotDone, id, job.state)
	}
}

// ResultJSON returns the finished job's result document in serialized form,
// whether it was computed this process or recovered from the store.
func (m *Manager) ResultJSON(id string) (json.RawMessage, error) {
	m.st.mu.Lock()
	defer m.st.mu.Unlock()
	job, ok := m.st.jobs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownJob, id)
	}
	switch job.state {
	case StateDone:
		return job.resultRaw, nil
	case StateFailed, StateCancelled:
		return nil, job.err
	default:
		return nil, fmt.Errorf("%w: %s is %s", ErrJobNotDone, id, job.state)
	}
}

// Cancel stops a job: a queued job is cancelled immediately, a running job
// has its context cancelled and transitions once the engine unwinds, and a
// finished job is left untouched. The post-cancel snapshot is returned.
func (m *Manager) Cancel(id string) (JobView, error) {
	m.st.mu.Lock()
	defer m.st.mu.Unlock()
	job, ok := m.st.jobs[id]
	if !ok {
		return JobView{}, fmt.Errorf("%w: %q", ErrUnknownJob, id)
	}
	switch job.state {
	case StateQueued:
		job.state = StateCancelled
		job.err = qplacer.ErrCancelled
		job.finished = m.st.now()
		m.metrics.cancelled.Inc()
		m.st.dropKey(job)
		m.persistJob(job)
		m.publish(job, Event{Type: EventState, State: StateCancelled, Error: job.err.Error()})
	case StateRunning:
		job.phase = "cancelling"
		if job.cancel != nil {
			job.cancel()
		}
	}
	return m.st.view(job), nil
}

// Stats snapshots the service counters: the legacy JSON view of the same
// registry /metrics exposes in Prometheus format.
func (m *Manager) Stats() Stats {
	m.st.mu.Lock()
	defer m.st.mu.Unlock()
	queued, running := m.st.counts()
	s := Stats{
		Submitted:   m.metrics.submitted.Value(),
		Queued:      queued,
		Running:     running,
		Done:        m.metrics.done.Value(),
		Failed:      m.metrics.failed.Value(),
		Cancelled:   m.metrics.cancelled.Value(),
		Retried:     m.metrics.retried.Value(),
		Recovered:   m.metrics.recovered.Value(),
		QuotaDenied: m.metrics.quotaDenied.Value(),
		StoreErrors: m.metrics.storeErrors.Value(),
		CacheHits:   m.metrics.cacheHits.Value(),
	}
	if total := s.Submitted + s.CacheHits; total > 0 {
		s.CacheHitRate = float64(s.CacheHits) / float64(total)
	}
	return s
}

// LatestEventSeq returns the Seq of the job's most recent event, so SSE
// keepalives can advertise how far the stream has progressed.
func (m *Manager) LatestEventSeq(id string) (uint64, bool) {
	m.st.mu.Lock()
	defer m.st.mu.Unlock()
	job, ok := m.st.jobs[id]
	if !ok {
		return 0, false
	}
	return job.eventSeq, true
}

// Shutdown stops accepting jobs and drains the workers: queued and running
// jobs run to completion until ctx expires, at which point everything still
// in flight is cancelled, awaited, and — under a durable store — flushed
// back as queued so the next boot re-runs it instead of losing it. The
// Store is flushed and closed in both paths.
func (m *Manager) Shutdown(ctx context.Context) error {
	m.st.mu.Lock()
	if m.closed {
		m.st.mu.Unlock()
		return nil
	}
	m.closed = true
	m.cond.Broadcast()
	m.st.mu.Unlock()

	drained := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(drained)
	}()
	var err error
	select {
	case <-drained:
	case <-ctx.Done():
		err = ctx.Err()
		m.st.mu.Lock()
		// Forced drain: from here on, cancellations are flushed to the
		// store as queued work for the next boot, not as cancelled jobs.
		m.requeueOnExit = true
		for _, job := range m.st.jobs {
			switch job.state {
			case StateRunning:
				if job.cancel != nil {
					job.cancel()
				}
			case StateQueued: // still pending; workers will skip it
				job.state = StateCancelled
				job.err = qplacer.ErrCancelled
				job.finished = m.st.now()
				m.metrics.cancelled.Inc()
				m.st.dropKey(job)
				// Deliberately not persisted: the store keeps the queued
				// record, so a durable backend re-runs it on restart.
			}
		}
		m.cond.Broadcast()
		m.st.mu.Unlock()
		<-drained
	}
	close(m.stopSweep)
	<-m.sweepDone
	if ferr := m.st.persist.Flush(); ferr != nil {
		m.metrics.storeErrors.Inc()
	}
	_ = m.st.persist.Close()
	return err
}

// worker claims and runs jobs until the manager closes and the backlog is
// empty.
func (m *Manager) worker(eng *qplacer.Engine) {
	defer m.wg.Done()
	for {
		job, ctx, cancel, epoch := m.claim()
		if job == nil {
			return
		}
		m.run(eng, job, ctx, cancel, epoch)
	}
}

// claim blocks until a queued job is available (or the manager is closed
// and drained), leases it, and publishes the running transition. The
// returned epoch fences every callback of this attempt: a lease expiry
// bumps the job's epoch, turning the stale attempt's observer and finish
// into no-ops.
func (m *Manager) claim() (*Job, context.Context, context.CancelFunc, uint64) {
	m.st.mu.Lock()
	defer m.st.mu.Unlock()
	for {
		for len(m.pending) == 0 && !m.closed {
			m.cond.Wait()
		}
		if len(m.pending) == 0 {
			return nil, nil, nil, 0
		}
		job := m.pending[0]
		m.pending = m.pending[1:]
		if job.state != StateQueued { // cancelled while pending
			continue
		}
		ctx, cancel := context.WithCancel(context.Background())
		job.state = StateRunning
		job.phase = "placing"
		job.started = m.st.now()
		job.cancel = cancel
		job.attempts++
		job.epoch++
		job.lease = m.st.now().Add(m.cfg.LeaseTTL)
		m.persistJob(job)
		m.publish(job, Event{Type: EventState, State: StateRunning, Attempt: job.attempts})
		m.log.Info("job claimed", "job", job.ID, "attempt", job.attempts,
			"request_id", job.Request.RequestID)
		return job, ctx, cancel, job.epoch
	}
}

// leaseSweeper re-queues running jobs whose lease expired — the worker
// died, wedged, or (across a restart) belonged to a previous process — and
// fails jobs that exhausted their retry budget.
func (m *Manager) leaseSweeper() {
	defer close(m.sweepDone)
	ticker := time.NewTicker(m.cfg.sweepEvery)
	defer ticker.Stop()
	for {
		select {
		case <-m.stopSweep:
			return
		case <-ticker.C:
		}
		m.st.mu.Lock()
		now := m.st.now()
		for _, job := range m.st.jobs {
			if job.state == StateRunning && now.After(job.lease) {
				m.expireLease(job)
			}
		}
		m.st.mu.Unlock()
	}
}

// expireLease requeues (or, past the retry budget, fails) a job whose
// lease lapsed. Caller holds st.mu.
func (m *Manager) expireLease(job *Job) {
	job.epoch++ // fence the stale attempt's callbacks
	if job.cancel != nil {
		job.cancel()
		job.cancel = nil
	}
	job.phase = ""
	job.progress = nil
	m.metrics.retried.Inc()
	m.metrics.leaseExpiries.Inc()
	m.log.Warn("lease expired", "job", job.ID, "attempt", job.attempts,
		"max_retries", m.cfg.MaxRetries, "request_id", job.Request.RequestID)
	if job.attempts > m.cfg.MaxRetries {
		job.state = StateFailed
		job.err = fmt.Errorf("%w: lease expired on attempt %d of %d",
			ErrRetriesExhausted, job.attempts, m.cfg.MaxRetries+1)
		job.finished = m.st.now()
		m.metrics.failed.Inc()
		m.st.dropKey(job)
		m.persistJob(job)
		m.publish(job, Event{Type: EventState, State: StateFailed, Error: job.err.Error()})
		return
	}
	job.state = StateQueued
	job.started = time.Time{}
	m.pending = append(m.pending, job)
	m.persistJob(job)
	m.publish(job, Event{Type: EventState, State: StateQueued})
	m.cond.Signal()
}

// heartbeat extends the job's lease while its attempt is alive, so leases
// only lapse when the worker (or the whole process) actually dies.
func (m *Manager) heartbeat(ctx context.Context, job *Job, epoch uint64) {
	interval := m.cfg.LeaseTTL / 3
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
		m.st.mu.Lock()
		if job.epoch != epoch || job.state != StateRunning {
			m.st.mu.Unlock()
			return
		}
		job.lease = m.st.now().Add(m.cfg.LeaseTTL)
		m.st.mu.Unlock()
	}
}

// run executes one leased attempt: plan, then batch-evaluate, publishing
// phase transitions and progress events as it goes.
func (m *Manager) run(eng *qplacer.Engine, job *Job, ctx context.Context, cancel context.CancelFunc, epoch uint64) {
	defer cancel()
	if !m.cfg.disableHeartbeat {
		go m.heartbeat(ctx, job, epoch)
	}

	// Stream backend progress into the job (for GET /v1/jobs/{id}) and its
	// event history (for the SSE stream), extending the lease as a side
	// effect. The callback fires from the engine's hot loop, so it only
	// copies a small struct under the index lock; durable backends buffer
	// the event append.
	obs := qplacer.ObserverFunc(func(p qplacer.Progress) {
		m.st.mu.Lock()
		if job.epoch == epoch && job.state == StateRunning {
			pv := ProgressView{
				Stage:     string(p.Stage),
				Backend:   p.Backend,
				Iteration: p.Iteration,
				Objective: p.Objective,
			}
			job.progress = &pv
			if !m.cfg.disableHeartbeat {
				job.lease = m.st.now().Add(m.cfg.LeaseTTL)
			}
			m.publish(job, Event{Type: EventProgress, Progress: &pv})
		}
		m.st.mu.Unlock()
	})
	// Jobs always run the independent verifier: annotate mode attaches the
	// report to the result document, strict mode turns an invalid placement
	// into a failed job (ErrInvalidPlacement → 422).
	planStart := time.Now()
	plan, err := eng.Plan(ctx, qplacer.WithOptions(job.Request.Options),
		qplacer.WithObserver(obs), qplacer.WithValidation(m.validationMode()))
	if err != nil {
		m.finish(job, epoch, nil, err)
		return
	}
	m.metrics.observePlan(job.Request.Options.Topology,
		job.Request.Options.Placer, job.Request.Options.Legalizer,
		time.Since(planStart))

	m.st.mu.Lock()
	if job.epoch == epoch && job.state == StateRunning && job.phase != "cancelling" {
		job.phase = "evaluating"
	}
	m.st.mu.Unlock()

	batch, err := eng.EvaluateAll(ctx, plan, job.Request.Benchmarks, job.Request.Mappings)
	if err != nil {
		m.finish(job, epoch, nil, err)
		return
	}
	m.finish(job, epoch, &qplacer.ResultDocument{
		Plan:       plan,
		Batch:      batch,
		Validation: plan.Validation,
	}, nil)
}

// finish publishes the attempt's terminal state — unless the attempt is
// stale (its lease expired and the job moved on) — and maintains the result
// cache: only successful jobs stay cached for dedup.
func (m *Manager) finish(job *Job, epoch uint64, doc *qplacer.ResultDocument, err error) {
	var raw json.RawMessage
	if err == nil {
		raw, err = json.Marshal(doc)
		if err != nil {
			err = fmt.Errorf("server: serializing result: %w", err)
			doc = nil
		}
	}
	m.st.mu.Lock()
	defer m.st.mu.Unlock()
	if job.epoch != epoch || job.state != StateRunning {
		return // superseded by a lease expiry; the newer attempt owns the job
	}
	job.phase = ""
	job.progress = nil
	job.finished = m.st.now()
	job.cancel = nil
	switch {
	case err == nil:
		job.state = StateDone
		job.result = doc
		job.resultRaw = raw
		m.metrics.done.Inc()
		m.persistJob(job)
	case errors.Is(err, qplacer.ErrCancelled):
		job.state = StateCancelled
		job.err = err
		m.metrics.cancelled.Inc()
		m.st.dropKey(job)
		if m.requeueOnExit {
			// Forced drain killed this attempt; flush it back to the store
			// as queued work (the drain is not charged against the retry
			// budget) so a durable backend resumes it on the next boot.
			rec := m.st.record(job)
			rec.State = StateQueued
			rec.Error, rec.ErrorCode = "", ""
			rec.Started, rec.Finished = time.Time{}, time.Time{}
			if rec.Attempts > 0 {
				rec.Attempts--
			}
			if perr := m.st.persist.PutJob(rec); perr != nil {
				m.metrics.storeErrors.Inc()
			}
		} else {
			m.persistJob(job)
		}
	default:
		job.state = StateFailed
		job.err = err
		m.metrics.failed.Inc()
		m.st.dropKey(job)
		m.persistJob(job)
	}
	ev := Event{Type: EventState, State: job.state}
	if job.err != nil {
		ev.Error = job.err.Error()
	}
	if job.state == StateDone && doc != nil && doc.Plan != nil {
		// The terminal event carries the plan's span breakdown, so SSE
		// consumers see where the time went without fetching the result.
		ev.Timings = doc.Plan.Timings
	}
	m.publish(job, ev)
	attrs := []any{"job", job.ID, "state", string(job.state),
		"attempts", job.attempts, "duration", job.finished.Sub(job.created),
		"request_id", job.Request.RequestID}
	if job.err != nil {
		m.log.Warn("job finished", append(attrs, "error", job.err.Error())...)
	} else {
		m.log.Info("job finished", attrs...)
	}
}
