package server_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"os"

	"qplacer"
	"qplacer/server"
	"qplacer/server/journal"
)

// fastBody is a placement request that completes in tens of milliseconds:
// few iterations, no legalization, one small benchmark.
func fastBody(seed int64) string {
	return fmt.Sprintf(`{"topology":"grid","seed":%d,"max_iters":5,"skip_legalize":true,"benchmarks":["bv-4"],"mappings":3}`, seed)
}

// slowBody is a full eagle run (~10s of placement): long enough to observe
// and cancel mid-flight.
func slowBody(seed int64) string {
	return fmt.Sprintf(`{"topology":"eagle","seed":%d,"benchmarks":["bv-4"],"mappings":2}`, seed)
}

func fastRequest(seed int64) server.Request {
	return server.Request{
		Options: qplacer.Options{
			Topology: "grid", Seed: seed, MaxIters: 5, SkipLegalize: true,
		},
		Benchmarks: []string{"bv-4"},
		Mappings:   2,
	}
}

// storeCfg applies the store backend selected by the QPLACER_TEST_STORE
// environment variable ("journal" = durable store on a test temp dir;
// anything else keeps the in-memory default), so CI can run the whole suite
// once per backend.
func storeCfg(t *testing.T, cfg server.Config) server.Config {
	t.Helper()
	if os.Getenv("QPLACER_TEST_STORE") == "journal" {
		js, err := journal.Open(t.TempDir())
		if err != nil {
			t.Fatalf("opening journal store: %v", err)
		}
		cfg.Store = js // closed by Manager.Shutdown
	}
	return cfg
}

// newMgr builds a manager on the env-selected store backend.
func newMgr(t *testing.T, cfg server.Config) *server.Manager {
	t.Helper()
	return server.NewManager(storeCfg(t, cfg))
}

// newTS starts a handler-level test server whose manager is drained (with a
// cancellation deadline, so stray slow jobs cannot stall the suite) at
// cleanup.
func newTS(t *testing.T, cfg server.Config) *httptest.Server {
	t.Helper()
	srv := server.New(storeCfg(t, cfg))
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	})
	return ts
}

// call issues one request and decodes the JSON response into out (if
// non-nil), returning the status code.
func call(t *testing.T, method, url, body string, out any) int {
	t.Helper()
	var req *http.Request
	var err error
	if body == "" {
		req, err = http.NewRequest(method, url, nil)
	} else {
		req, err = http.NewRequest(method, url, strings.NewReader(body))
	}
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decoding response: %v", method, url, err)
		}
	}
	return resp.StatusCode
}

// pollJob polls the status endpoint until the job reaches want or a
// different terminal state (fatal), with a generous deadline.
func pollJob(t *testing.T, base, id string, want server.State) server.JobView {
	t.Helper()
	deadline := time.Now().Add(90 * time.Second)
	for {
		var view server.JobView
		if code := call(t, http.MethodGet, base+"/v1/jobs/"+id, "", &view); code != http.StatusOK {
			t.Fatalf("poll %s: status %d", id, code)
		}
		if view.State == want {
			return view
		}
		if view.State == server.StateDone || view.State == server.StateFailed ||
			view.State == server.StateCancelled {
			t.Fatalf("job %s reached %s (error %q), want %s", id, view.State, view.Error, want)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s, want %s", id, view.State, want)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

type resultDoc struct {
	Plan struct {
		Options qplacer.Options `json:"options"`
		Device  struct {
			Name      string `json:"name"`
			NumQubits int    `json:"num_qubits"`
		} `json:"device"`
		Placement []json.RawMessage `json:"placement"`
		NumCells  int               `json:"num_cells"`
	} `json:"plan"`
	Batch *qplacer.BatchResult `json:"batch"`
}

func TestJobLifecycle(t *testing.T) {
	ts := newTS(t, server.Config{Workers: 2})

	var sub server.SubmitResponse
	if code := call(t, http.MethodPost, ts.URL+"/v1/plans", fastBody(1), &sub); code != http.StatusAccepted {
		t.Fatalf("submit status %d, want 202", code)
	}
	if sub.Cached || sub.Job.ID == "" {
		t.Fatalf("fresh submit = %+v", sub)
	}
	if sub.Links["status"] != "/v1/jobs/"+sub.Job.ID {
		t.Fatalf("links = %v", sub.Links)
	}

	view := pollJob(t, ts.URL, sub.Job.ID, server.StateDone)
	if view.StartedAt == nil || view.FinishedAt == nil || view.Error != "" {
		t.Fatalf("done view incomplete: %+v", view)
	}

	var doc resultDoc
	if code := call(t, http.MethodGet, ts.URL+"/v1/jobs/"+sub.Job.ID+"/result", "", &doc); code != http.StatusOK {
		t.Fatalf("result status %d, want 200", code)
	}
	if doc.Plan.Device.Name != "grid" || doc.Plan.NumCells == 0 ||
		len(doc.Plan.Placement) != doc.Plan.NumCells {
		t.Fatalf("plan document degenerate: %+v", doc.Plan)
	}
	if doc.Plan.Options.Seed != 1 || doc.Plan.Options.LB != 0.3 {
		t.Fatalf("options not normalized on the wire: %+v", doc.Plan.Options)
	}
	if doc.Batch == nil || len(doc.Batch.Results) != 1 {
		t.Fatalf("batch missing: %+v", doc.Batch)
	}
	ev := doc.Batch.Results[0]
	if ev.Benchmark != "bv-4" || ev.NumMappings != 3 ||
		ev.MeanFidelity <= 0 || ev.MeanFidelity > 1 {
		t.Fatalf("fidelity fields not populated: %+v", ev)
	}
}

func TestSubmitValidation(t *testing.T) {
	ts := newTS(t, server.Config{Workers: 1})

	cases := []struct {
		name, body string
		status     int
		code       string
	}{
		{"unknown topology", `{"topology":"warbler"}`, http.StatusNotFound, "unknown_topology"},
		{"unknown benchmark", `{"topology":"grid","benchmarks":["nope-3"]}`, http.StatusNotFound, "unknown_benchmark"},
		{"unknown scheme", `{"topology":"grid","scheme":"quantum"}`, http.StatusBadRequest, "unknown_scheme"},
		{"scheme as int", `{"topology":"grid","scheme":1}`, http.StatusBadRequest, "unknown_scheme"},
		{"unknown placer", `{"topology":"grid","placer":"ouija"}`, http.StatusBadRequest, "unknown_placer"},
		{"unknown legalizer", `{"topology":"grid","legalizer":"ouija"}`, http.StatusBadRequest, "unknown_legalizer"},
		{"unknown detailed placer", `{"topology":"grid","detailed_placer":"ouija"}`, http.StatusBadRequest, "unknown_detailed_placer"},
		{"malformed JSON", `{"topology":`, http.StatusBadRequest, "bad_request"},
		{"malformed parametric name", `{"topology":"grid-0"}`, http.StatusNotFound, "unknown_topology"},
		{"out-of-series xtree", `{"topology":"xtree-21"}`, http.StatusNotFound, "unknown_topology"},
	}
	for _, tc := range cases {
		var errResp struct {
			Error string `json:"error"`
			Code  string `json:"code"`
		}
		code := call(t, http.MethodPost, ts.URL+"/v1/plans", tc.body, &errResp)
		if code != tc.status || errResp.Code != tc.code {
			t.Fatalf("%s: status %d code %q, want %d %q (error %q)",
				tc.name, code, errResp.Code, tc.status, tc.code, errResp.Error)
		}
	}

	for _, url := range []string{"/v1/jobs/job-999", "/v1/jobs/job-999/result"} {
		var errResp struct {
			Code string `json:"code"`
		}
		if code := call(t, http.MethodGet, ts.URL+url, "", &errResp); code != http.StatusNotFound || errResp.Code != "unknown_job" {
			t.Fatalf("GET %s: status %d code %q, want 404 unknown_job", url, code, errResp.Code)
		}
	}
}

// TestSubmitParametricTopology pins that POST /v1/plans resolves parametric
// family names (no prior registration) end to end.
func TestSubmitParametricTopology(t *testing.T) {
	ts := newTS(t, server.Config{Workers: 1})

	body := `{"topology":"grid-9","max_iters":5,"skip_legalize":true,"benchmarks":["bv-4"],"mappings":2}`
	var sub server.SubmitResponse
	if code := call(t, http.MethodPost, ts.URL+"/v1/plans", body, &sub); code != http.StatusAccepted {
		t.Fatalf("submit status %d, want 202", code)
	}
	view := pollJob(t, ts.URL, sub.Job.ID, server.StateDone)
	if view.Error != "" {
		t.Fatalf("parametric job failed: %q", view.Error)
	}
	var doc resultDoc
	if code := call(t, http.MethodGet, ts.URL+"/v1/jobs/"+sub.Job.ID+"/result", "", &doc); code != http.StatusOK {
		t.Fatalf("result status %d, want 200", code)
	}
	if doc.Plan.Device.Name != "grid-9" || doc.Plan.NumCells == 0 {
		t.Fatalf("parametric plan degenerate: %+v", doc.Plan)
	}
}

func TestDuplicateSubmitHitsResultCache(t *testing.T) {
	ts := newTS(t, server.Config{Workers: 1})

	var first server.SubmitResponse
	if code := call(t, http.MethodPost, ts.URL+"/v1/plans", fastBody(2), &first); code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	pollJob(t, ts.URL, first.Job.ID, server.StateDone)

	var dup server.SubmitResponse
	if code := call(t, http.MethodPost, ts.URL+"/v1/plans", fastBody(2), &dup); code != http.StatusOK {
		t.Fatalf("duplicate submit status %d, want 200", code)
	}
	if !dup.Cached || dup.Job.ID != first.Job.ID || dup.Job.State != server.StateDone {
		t.Fatalf("duplicate not served from cache: %+v", dup)
	}

	var stats server.Stats
	if code := call(t, http.MethodGet, ts.URL+"/metrics", "", &stats); code != http.StatusOK {
		t.Fatalf("metrics status %d", code)
	}
	if stats.Submitted != 1 || stats.CacheHits != 1 || stats.Done != 1 {
		t.Fatalf("counters after duplicate: %+v", stats)
	}
	if stats.CacheHitRate != 0.5 {
		t.Fatalf("cache hit rate %v, want 0.5", stats.CacheHitRate)
	}
}

func TestCancelMidRunAndResultConflicts(t *testing.T) {
	// The eagle placement runs ~10s uncancelled, but the cancel lands within
	// one iteration, so this test stays fast even under -race.
	ts := newTS(t, server.Config{Workers: 1})

	var sub server.SubmitResponse
	if code := call(t, http.MethodPost, ts.URL+"/v1/plans", slowBody(3), &sub); code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	pollJob(t, ts.URL, sub.Job.ID, server.StateRunning)

	// Result of a running job is a 409, not a hang or a 200.
	var errResp struct {
		Code string `json:"code"`
	}
	if code := call(t, http.MethodGet, ts.URL+"/v1/jobs/"+sub.Job.ID+"/result", "", &errResp); code != http.StatusConflict || errResp.Code != "not_done" {
		t.Fatalf("result while running: status %d code %q, want 409 not_done", code, errResp.Code)
	}

	if code := call(t, http.MethodDelete, ts.URL+"/v1/jobs/"+sub.Job.ID, "", nil); code != http.StatusOK {
		t.Fatalf("cancel status %d", code)
	}
	view := pollJob(t, ts.URL, sub.Job.ID, server.StateCancelled)
	if view.Error == "" {
		t.Fatalf("cancelled job should carry its error: %+v", view)
	}

	if code := call(t, http.MethodGet, ts.URL+"/v1/jobs/"+sub.Job.ID+"/result", "", &errResp); code != http.StatusConflict || errResp.Code != "cancelled" {
		t.Fatalf("result of cancelled job: status %d code %q, want 409 cancelled", code, errResp.Code)
	}
}

func TestQueueFullRejectsWith429(t *testing.T) {
	ts := newTS(t, server.Config{Workers: 1, QueueDepth: 1})

	var running server.SubmitResponse
	if code := call(t, http.MethodPost, ts.URL+"/v1/plans", slowBody(11), &running); code != http.StatusAccepted {
		t.Fatalf("first submit status %d", code)
	}
	pollJob(t, ts.URL, running.Job.ID, server.StateRunning)

	var queued server.SubmitResponse
	if code := call(t, http.MethodPost, ts.URL+"/v1/plans", slowBody(12), &queued); code != http.StatusAccepted {
		t.Fatalf("second submit status %d", code)
	}
	if queued.Job.QueuePosition == nil || *queued.Job.QueuePosition != 0 {
		t.Fatalf("queued job position = %+v, want 0", queued.Job.QueuePosition)
	}

	var errResp struct {
		Code string `json:"code"`
	}
	if code := call(t, http.MethodPost, ts.URL+"/v1/plans", slowBody(13), &errResp); code != http.StatusTooManyRequests || errResp.Code != "queue_full" {
		t.Fatalf("overflow submit: status %d code %q, want 429 queue_full", code, errResp.Code)
	}

	// Unblock cleanup quickly.
	call(t, http.MethodDelete, ts.URL+"/v1/jobs/"+queued.Job.ID, "", nil)
	call(t, http.MethodDelete, ts.URL+"/v1/jobs/"+running.Job.ID, "", nil)
	pollJob(t, ts.URL, running.Job.ID, server.StateCancelled)
}

func TestRegistriesHealthAndMetrics(t *testing.T) {
	ts := newTS(t, server.Config{})

	var topos struct {
		Topologies []string `json:"topologies"`
		Catalog    []struct {
			Name      string `json:"name"`
			Canonical string `json:"canonical"`
			Qubits    int    `json:"qubits"`
			Edges     int    `json:"edges"`
		} `json:"catalog"`
		Families []struct {
			Name     string   `json:"name"`
			Schema   string   `json:"schema"`
			Examples []string `json:"examples"`
		} `json:"families"`
	}
	if code := call(t, http.MethodGet, ts.URL+"/v1/topologies", "", &topos); code != http.StatusOK {
		t.Fatalf("topologies status %d", code)
	}
	var benches struct {
		Benchmarks []string `json:"benchmarks"`
		Catalog    []struct {
			Name   string `json:"name"`
			Qubits int    `json:"qubits"`
		} `json:"catalog"`
	}
	if code := call(t, http.MethodGet, ts.URL+"/v1/benchmarks", "", &benches); code != http.StatusOK {
		t.Fatalf("benchmarks status %d", code)
	}
	if !contains(topos.Topologies, "grid") || !contains(benches.Benchmarks, "bv-4") {
		t.Fatalf("registries missing built-ins: %v / %v", topos.Topologies, benches.Benchmarks)
	}
	// The catalog carries counts and alias cross-references for every
	// registered name, and the family schemas for parametric resolution.
	catalog := map[string]struct {
		canonical     string
		qubits, edges int
	}{}
	for _, in := range topos.Catalog {
		catalog[in.Name] = struct {
			canonical     string
			qubits, edges int
		}{in.Canonical, in.Qubits, in.Edges}
	}
	if g := catalog["grid"]; g.qubits != 25 || g.edges != 40 || g.canonical != "grid-25" {
		t.Fatalf("grid catalog entry = %+v", g)
	}
	if hb := catalog["hummingbird-65"]; hb.qubits != 65 || hb.edges != 72 {
		t.Fatalf("hummingbird-65 catalog entry = %+v", hb)
	}
	famNames := map[string]bool{}
	for _, f := range topos.Families {
		if f.Schema == "" || len(f.Examples) == 0 {
			t.Fatalf("family %q underspecified: %+v", f.Name, f)
		}
		famNames[f.Name] = true
	}
	for _, want := range []string{"grid", "octagon", "xtree", "hummingbird"} {
		if !famNames[want] {
			t.Fatalf("families missing %q: %v", want, famNames)
		}
	}
	benchQubits := map[string]int{}
	for _, b := range benches.Catalog {
		benchQubits[b.Name] = b.Qubits
	}
	if benchQubits["bv-4"] != 4 {
		t.Fatalf("bv-4 catalog qubits = %d", benchQubits["bv-4"])
	}

	var health struct {
		Status string `json:"status"`
	}
	if code := call(t, http.MethodGet, ts.URL+"/healthz", "", &health); code != http.StatusOK || health.Status != "ok" {
		t.Fatalf("healthz: %d %+v", code, health)
	}
	var stats server.Stats
	if code := call(t, http.MethodGet, ts.URL+"/metrics", "", &stats); code != http.StatusOK {
		t.Fatalf("metrics status %d", code)
	}
	if stats.Submitted != 0 || stats.Running != 0 {
		t.Fatalf("fresh server counters: %+v", stats)
	}
}

func contains(names []string, want string) bool {
	for _, n := range names {
		if n == want {
			return true
		}
	}
	return false
}

func TestBackendRegistryEndpoints(t *testing.T) {
	ts := newTS(t, server.Config{})

	var placers struct {
		Placers []string `json:"placers"`
	}
	if code := call(t, http.MethodGet, ts.URL+"/v1/placers", "", &placers); code != http.StatusOK {
		t.Fatalf("placers status %d", code)
	}
	if !contains(placers.Placers, "nesterov") || !contains(placers.Placers, "anneal") {
		t.Fatalf("placers missing built-ins: %v", placers.Placers)
	}
	var legalizers struct {
		Legalizers []string `json:"legalizers"`
	}
	if code := call(t, http.MethodGet, ts.URL+"/v1/legalizers", "", &legalizers); code != http.StatusOK {
		t.Fatalf("legalizers status %d", code)
	}
	if !contains(legalizers.Legalizers, "shelf") || !contains(legalizers.Legalizers, "greedy") {
		t.Fatalf("legalizers missing built-ins: %v", legalizers.Legalizers)
	}
	var detaileds struct {
		DetailedPlacers []string `json:"detailed_placers"`
	}
	if code := call(t, http.MethodGet, ts.URL+"/v1/detailed-placers", "", &detaileds); code != http.StatusOK {
		t.Fatalf("detailed-placers status %d", code)
	}
	for _, want := range []string{"none", "mcmf", "swap"} {
		if !contains(detaileds.DetailedPlacers, want) {
			t.Fatalf("detailed placers missing %q: %v", want, detaileds.DetailedPlacers)
		}
	}
}

// TestJobProgressVisibleMidRun submits the slow eagle job and asserts the
// status endpoint exposes a live progress block — stage, backend, iteration —
// while the job runs, then cancels it.
func TestJobProgressVisibleMidRun(t *testing.T) {
	ts := newTS(t, server.Config{Workers: 1})

	var sub server.SubmitResponse
	if code := call(t, http.MethodPost, ts.URL+"/v1/plans", slowBody(41), &sub); code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	pollJob(t, ts.URL, sub.Job.ID, server.StateRunning)

	deadline := time.Now().Add(90 * time.Second)
	var view server.JobView
	for {
		if code := call(t, http.MethodGet, ts.URL+"/v1/jobs/"+sub.Job.ID, "", &view); code != http.StatusOK {
			t.Fatalf("poll status %d", code)
		}
		if view.State != server.StateRunning {
			t.Fatalf("job left running state early: %+v", view)
		}
		if view.Progress != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no progress reported while running")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if view.Progress.Stage != "place" || view.Progress.Backend != "nesterov" ||
		view.Progress.Iteration < 1 {
		t.Fatalf("degenerate progress: %+v", view.Progress)
	}

	call(t, http.MethodDelete, ts.URL+"/v1/jobs/"+sub.Job.ID, "", nil)
	done := pollJob(t, ts.URL, sub.Job.ID, server.StateCancelled)
	if done.Progress != nil {
		t.Fatalf("terminal job still carries progress: %+v", done.Progress)
	}
}

// TestBackendSelectionKeysResultCache submits the same fast request under two
// placers: they must be distinct jobs (the result cache keys on the backend),
// and the selected backends must surface in each job's normalized options.
func TestBackendSelectionKeysResultCache(t *testing.T) {
	mgr := newMgr(t, server.Config{Workers: 2})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = mgr.Shutdown(ctx)
	}()

	reqA := fastRequest(51)
	reqA.Options.Placer = "nesterov"
	reqB := fastRequest(51)
	reqB.Options.Placer = "anneal"

	a, cachedA, err := mgr.Submit(reqA)
	if err != nil || cachedA {
		t.Fatalf("submit A: %+v %v %v", a, cachedA, err)
	}
	b, cachedB, err := mgr.Submit(reqB)
	if err != nil || cachedB {
		t.Fatalf("submit B: %+v %v %v", b, cachedB, err)
	}
	if a.ID == b.ID {
		t.Fatal("different placers deduplicated into one job")
	}
	if a.Request.Options.Placer != "nesterov" || b.Request.Options.Placer != "anneal" {
		t.Fatalf("backends not in normalized requests: %+v / %+v",
			a.Request.Options, b.Request.Options)
	}
	// Same backend resubmitted IS a cache hit.
	dup, cached, err := mgr.Submit(reqB)
	if err != nil || !cached || dup.ID != b.ID {
		t.Fatalf("same-backend resubmit: %+v %v %v", dup, cached, err)
	}
}

// TestManagerDefaultBackends checks the daemon-level -placer/-legalizer
// defaults flow into requests that leave the backend unset, without
// overriding explicit choices.
func TestManagerDefaultBackends(t *testing.T) {
	mgr := newMgr(t, server.Config{Workers: 1, DefaultLegalizer: "greedy", DefaultDetailedPlacer: "swap"})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = mgr.Shutdown(ctx)
	}()

	view, _, err := mgr.Submit(fastRequest(61))
	if err != nil {
		t.Fatal(err)
	}
	if view.Request.Options.Legalizer != "greedy" {
		t.Fatalf("manager default not applied: %+v", view.Request.Options)
	}
	if view.Request.Options.DetailedPlacer != "swap" {
		t.Fatalf("manager detailed default not applied: %+v", view.Request.Options)
	}
	explicit := fastRequest(62)
	explicit.Options.Legalizer = "shelf"
	explicit.Options.DetailedPlacer = "none"
	view2, _, err := mgr.Submit(explicit)
	if err != nil {
		t.Fatal(err)
	}
	if view2.Request.Options.Legalizer != "shelf" {
		t.Fatalf("explicit backend overridden: %+v", view2.Request.Options)
	}
	if view2.Request.Options.DetailedPlacer != "none" {
		t.Fatalf("explicit detailed backend overridden: %+v", view2.Request.Options)
	}
}

// TestManagerConcurrentSubmitStress hammers one manager with duplicate
// submits from many goroutines; under -race this is the data-race check for
// the store, the result cache, and the engine pool.
func TestManagerConcurrentSubmitStress(t *testing.T) {
	mgr := newMgr(t, server.Config{Workers: 4, QueueDepth: 16})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = mgr.Shutdown(ctx)
	}()

	const goroutines = 8
	const perG = 5
	const distinct = 4 // seeds 1..4 -> 4 distinct normalized requests

	var wg sync.WaitGroup
	var mu sync.Mutex
	ids := map[string]bool{}
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				seed := int64((g+i)%distinct + 1)
				view, _, err := mgr.Submit(fastRequest(seed))
				if err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				ids[view.ID] = true
				mu.Unlock()
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if len(ids) != distinct {
		t.Fatalf("distinct jobs = %d, want %d", len(ids), distinct)
	}

	deadline := time.Now().Add(90 * time.Second)
	for {
		stats := mgr.Stats()
		if stats.Done == distinct && stats.Queued == 0 && stats.Running == 0 {
			if stats.Submitted != distinct ||
				stats.CacheHits != goroutines*perG-distinct {
				t.Fatalf("counters after stress: %+v", stats)
			}
			break
		}
		if stats.Failed > 0 || stats.Cancelled > 0 {
			t.Fatalf("stress produced failures: %+v", stats)
		}
		if time.Now().After(deadline) {
			t.Fatalf("stress did not drain: %+v", stats)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Every job is done and serves the same result on repeated fetches.
	for id := range ids {
		doc, err := mgr.Result(id)
		if err != nil || doc.Plan == nil || doc.Batch == nil {
			t.Fatalf("result %s: %v %+v", id, err, doc)
		}
	}
}

func TestShutdownDrainsAndRefusesNewJobs(t *testing.T) {
	mgr := newMgr(t, server.Config{Workers: 1})
	view, _, err := mgr.Submit(fastRequest(21))
	if err != nil {
		t.Fatal(err)
	}
	if err := mgr.Shutdown(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	done, err := mgr.Job(view.ID)
	if err != nil || done.State != server.StateDone {
		t.Fatalf("job after drain: %+v, %v", done, err)
	}
	// The drained job still serves as a cache hit...
	hit, cached, err := mgr.Submit(fastRequest(21))
	if err != nil || !cached || hit.ID != view.ID {
		t.Fatalf("cache after shutdown: %+v %v %v", hit, cached, err)
	}
	// ...but new work is refused.
	if _, _, err := mgr.Submit(fastRequest(22)); !errors.Is(err, server.ErrShuttingDown) {
		t.Fatalf("submit after shutdown err = %v, want ErrShuttingDown", err)
	}
}

func TestTTLEvictsFinishedJobs(t *testing.T) {
	mgr := newMgr(t, server.Config{Workers: 1, JobTTL: 50 * time.Millisecond})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = mgr.Shutdown(ctx)
	}()

	view, _, err := mgr.Submit(fastRequest(31))
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		v, err := mgr.Job(view.ID)
		if err != nil {
			t.Fatal(err)
		}
		if v.State == server.StateDone {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck: %+v", v)
		}
		time.Sleep(5 * time.Millisecond)
	}

	time.Sleep(120 * time.Millisecond)
	if _, err := mgr.Job(view.ID); !errors.Is(err, server.ErrUnknownJob) {
		t.Fatalf("job after TTL err = %v, want ErrUnknownJob", err)
	}
	// The evicted result no longer serves cache hits; the job re-runs.
	fresh, cached, err := mgr.Submit(fastRequest(31))
	if err != nil || cached || fresh.ID == view.ID {
		t.Fatalf("resubmit after eviction: %+v %v %v", fresh, cached, err)
	}
}
