package qplacer

import (
	"context"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// raiseGOMAXPROCS lifts the scheduler width for one test so the parallelism
// clamp does not serialize it on single-CPU hosts, restoring the previous
// value on cleanup. Callers must NOT mark themselves t.Parallel(): the
// setting is process-global.
func raiseGOMAXPROCS(t *testing.T, n int) {
	t.Helper()
	prev := runtime.GOMAXPROCS(n)
	t.Cleanup(func() { runtime.GOMAXPROCS(prev) })
}

// TestParallelismClampAnnotated pins satellite behaviour of the granularity
// work: a WithParallelism request above GOMAXPROCS is clamped at plan time,
// the clamp is noted on the root timing span, and the pool really is built
// at the clamped width (the place span attributes busy time to exactly that
// many workers).
func TestParallelismClampAnnotated(t *testing.T) {
	raiseGOMAXPROCS(t, 2)
	res, err := New(WithParallelism(8)).Plan(context.Background(), WithOptions(fastGridOpts()))
	if err != nil {
		t.Fatal(err)
	}
	if res.Timings == nil {
		t.Fatal("traced plan returned no timings")
	}
	found := false
	for _, note := range res.Timings.Notes {
		if strings.Contains(note, "clamped") {
			found = true
		}
	}
	if !found {
		t.Fatalf("clamp not annotated on the root span: notes = %v", res.Timings.Notes)
	}
	place := res.Timings.Find("place")
	if place == nil {
		t.Fatal("no place span in timings")
	}
	if len(place.WorkerMS) != 2 {
		t.Fatalf("place ran on %d workers, want the clamped 2", len(place.WorkerMS))
	}
}

// TestParallelismWithinBoundsNotAnnotated: a request at or below GOMAXPROCS
// must plan silently.
func TestParallelismWithinBoundsNotAnnotated(t *testing.T) {
	raiseGOMAXPROCS(t, 2)
	res, err := New(WithParallelism(2)).Plan(context.Background(), WithOptions(fastGridOpts()))
	if err != nil {
		t.Fatal(err)
	}
	for _, note := range res.Timings.Notes {
		if strings.Contains(note, "clamped") {
			t.Fatalf("in-bounds parallelism annotated a clamp: %v", res.Timings.Notes)
		}
	}
}

// TestGoldenCorpusToggles holds the scheduling toggles to the golden
// fixtures: delta evaluation and adaptive granularity — on, off, or forced
// to fan out — must be byte-invisible in every corpus combination, serially
// and in parallel. The fixtures were generated at the defaults (both on,
// serial), so each variant re-proves the exactness contract end to end.
func TestGoldenCorpusToggles(t *testing.T) {
	if testing.Short() {
		t.Skip("toggle corpus re-run skipped in -short mode")
	}
	raiseGOMAXPROCS(t, 4)
	variants := []struct {
		name  string
		extra []Option
	}{
		{"delta-off-serial", []Option{WithParallelism(1), WithDeltaEval(false)}},
		{"delta-off-parallel", []Option{WithParallelism(3), WithDeltaEval(false)}},
		{"fanout-parallel", []Option{WithParallelism(3), WithAdaptiveGranularity(false)}},
		{"all-off-parallel", []Option{WithParallelism(2), WithDeltaEval(false), WithAdaptiveGranularity(false)}},
	}
	for _, o := range goldenCombos() {
		path := filepath.Join("testdata", "golden", goldenName(o)+".json")
		want := loadFixture(t, path)
		for _, v := range variants {
			t.Run(goldenName(o)+"/"+v.name, func(t *testing.T) {
				got := buildFixture(t, o, v.extra...)
				compareFixture(t, want, got)
				if t.Failed() {
					t.Logf("%s drifted from %s: the exactness contract is broken", v.name, path)
				}
			})
		}
	}
}
