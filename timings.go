package qplacer

import (
	"time"

	"qplacer/internal/obs"
)

// SpanTiming is one node of a plan's per-stage timing breakdown: the wire
// form of the tracer's aggregated span tree. Wall and CPU are cumulative
// across the Count start/end cycles the node folded together (so an inner
// gradient sub-span reports the total across all iterations, with Count the
// iteration count). WorkerMS, present only on spans that ran on the
// parallel pool, attributes busy time per worker (index = worker id, 0 the
// dispatching goroutine).
type SpanTiming struct {
	Name     string    `json:"name"`
	Count    int64     `json:"count,omitempty"`
	WallMS   float64   `json:"wall_ms"`
	CPUMS    float64   `json:"cpu_ms,omitempty"`
	WorkerMS []float64 `json:"worker_ms,omitempty"`
	// Notes carries the span's free-form annotations — parallelism clamps,
	// delta-eval hit rates, adaptive-granularity decisions — in insertion
	// order.
	Notes    []string      `json:"notes,omitempty"`
	Children []*SpanTiming `json:"children,omitempty"`
}

// Find walks the breakdown by child-name path and returns the matching
// node, or nil. Find() with no path returns t itself.
func (t *SpanTiming) Find(path ...string) *SpanTiming {
	if t == nil {
		return nil
	}
	node := t
outer:
	for _, name := range path {
		for _, c := range node.Children {
			if c.Name == name {
				node = c
				continue outer
			}
		}
		return nil
	}
	return node
}

func durMS(d time.Duration) float64 {
	return float64(d) / float64(time.Millisecond)
}

// spanTiming converts an internal span snapshot to the wire form.
func spanTiming(n *obs.Node) *SpanTiming {
	if n == nil {
		return nil
	}
	out := &SpanTiming{
		Name:   n.Name,
		Count:  n.Count,
		WallMS: durMS(n.Wall),
		CPUMS:  durMS(n.CPU),
	}
	for _, d := range n.Workers {
		out.WorkerMS = append(out.WorkerMS, durMS(d))
	}
	out.Notes = append(out.Notes, n.Notes...)
	for _, c := range n.Children {
		out.Children = append(out.Children, spanTiming(c))
	}
	return out
}
