// Benchmarks regenerating each table and figure of the paper's evaluation
// (DESIGN.md §3 maps every entry to its experiment). These use reduced
// mapping counts so `go test -bench=.` stays tractable; cmd/experiments
// runs the full-scale versions.
package qplacer

import (
	"context"
	"fmt"
	"io"
	"testing"

	"qplacer/internal/emsim"
	"qplacer/internal/physics"
)

func planFor(b *testing.B, topo string, sch Scheme) *PlanResult {
	b.Helper()
	plan, err := Plan(Options{Topology: topo, Scheme: sch})
	if err != nil {
		b.Fatal(err)
	}
	return plan
}

// BenchmarkFig01_InfidelityVsArea: mean infidelity vs area per scheme.
func BenchmarkFig01_InfidelityVsArea(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, sch := range []Scheme{SchemeQplacer, SchemeClassic, SchemeHuman} {
			plan := planFor(b, "grid", sch)
			ev, err := Evaluate(plan, "bv-4", 5)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(plan.Metrics.Amer, fmt.Sprintf("Amer_mm2_%v", sch))
			b.ReportMetric(1-ev.MeanFidelity, fmt.Sprintf("infid_%v", sch))
		}
	}
}

// BenchmarkFig04_CouplingVsDetuning: the g/g_eff sweep of Fig. 4.
func BenchmarkFig04_CouplingVsDetuning(b *testing.B) {
	var sink float64
	for i := 0; i < b.N; i++ {
		for f2 := 4.6; f2 <= 5.4; f2 += 0.001 {
			sink += physics.InteractionStrengthMHz(
				physics.EngineeredCouplingMHz, (f2-5.0)*1e3)
		}
	}
	_ = sink
}

// BenchmarkFig05_QubitProximity: FD capacitance extraction per separation.
func BenchmarkFig05_QubitProximity(b *testing.B) {
	cfg := emsim.Config{PadWidth: 0.4, PadDepth: 0.4, EpsSub: physics.EpsSilicon,
		DomainW: 6, DomainH: 3, Cell: 0.05, MaxIter: 6000, Tol: 1e-6}
	for i := 0; i < b.N; i++ {
		cfg.Separation = 0.2
		if _, err := emsim.ExtractCp(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig06_ResonatorProximity: resonator coupling model sweep.
func BenchmarkFig06_ResonatorProximity(b *testing.B) {
	var sink float64
	for i := 0; i < b.N; i++ {
		for d := 0.05; d < 1.2; d += 0.001 {
			sink += physics.ResonatorParasiticCouplingMHz(6.5, 6.5, d, 1.0)
		}
	}
	_ = sink
}

// BenchmarkFig11_Fidelity: one benchmark×topology fidelity bar (both
// engines, shared mappings).
func BenchmarkFig11_Fidelity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pq := planFor(b, "grid", SchemeQplacer)
		pc := planFor(b, "grid", SchemeClassic)
		eq, err := Evaluate(pq, "bv-4", 5)
		if err != nil {
			b.Fatal(err)
		}
		ec, err := Evaluate(pc, "bv-4", 5)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(eq.MeanFidelity, "fid_qplacer")
		b.ReportMetric(ec.MeanFidelity, "fid_classic")
	}
}

// BenchmarkFig12_HotspotSummary: P_h and impacted qubits per scheme.
func BenchmarkFig12_HotspotSummary(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pq := planFor(b, "falcon", SchemeQplacer)
		pc := planFor(b, "falcon", SchemeClassic)
		b.ReportMetric(pq.Metrics.Ph, "Ph_qplacer_pct")
		b.ReportMetric(pc.Metrics.Ph, "Ph_classic_pct")
		b.ReportMetric(float64(len(pq.Metrics.ImpactedQubits)), "impacted_qplacer")
		b.ReportMetric(float64(len(pc.Metrics.ImpactedQubits)), "impacted_classic")
	}
}

// BenchmarkFig13_AreaRatio: A_mer ratios vs Qplacer.
func BenchmarkFig13_AreaRatio(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pq := planFor(b, "falcon", SchemeQplacer)
		ph := planFor(b, "falcon", SchemeHuman)
		b.ReportMetric(ph.Metrics.Amer/pq.Metrics.Amer, "human_over_qplacer")
	}
}

// BenchmarkFig14_FalconLayout: full Falcon placement + SVG + GDS export.
func BenchmarkFig14_FalconLayout(b *testing.B) {
	for i := 0; i < b.N; i++ {
		plan := planFor(b, "falcon", SchemeQplacer)
		if err := plan.WriteSVG(io.Discard); err != nil {
			b.Fatal(err)
		}
		if err := plan.WriteGDS(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig15_SegmentSweep: the l_b sweep on one topology.
func BenchmarkFig15_SegmentSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, lb := range []float64{0.2, 0.3, 0.4} {
			plan, err := Plan(Options{Topology: "grid", LB: lb})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(plan.Metrics.Utilization,
				fmt.Sprintf("util_lb%.1f", lb))
		}
	}
}

// BenchmarkTable2_Runtime: cells and per-iteration runtime per l_b.
func BenchmarkTable2_Runtime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, lb := range []float64{0.2, 0.3, 0.4} {
			plan, err := Plan(Options{Topology: "falcon", LB: lb})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(plan.NumCells), fmt.Sprintf("cells_lb%.1f", lb))
			b.ReportMetric(plan.AvgIterMS, fmt.Sprintf("ms_per_iter_lb%.1f", lb))
		}
	}
}

// BenchmarkEngineColdPlan: a fresh engine per iteration — every run rebuilds
// the device, assignment, netlist, and collision map and places from scratch.
// The baseline for BenchmarkEngineWarmPlan.
func BenchmarkEngineColdPlan(b *testing.B) {
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		eng := New()
		if _, err := eng.Plan(ctx, WithTopology("grid")); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineWarmPlan: repeated Plan calls on one long-lived engine; the
// stage and plan caches make the warm call dramatically (far beyond the
// required 1.5×) faster than BenchmarkEngineColdPlan.
func BenchmarkEngineWarmPlan(b *testing.B) {
	ctx := context.Background()
	eng := New()
	if _, err := eng.Plan(ctx, WithTopology("grid")); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Plan(ctx, WithTopology("grid")); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineEvaluateAll: the concurrent suite evaluation on a warm plan.
func BenchmarkEngineEvaluateAll(b *testing.B) {
	ctx := context.Background()
	eng := New()
	plan, err := eng.Plan(ctx, WithTopology("grid"))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.EvaluateAll(ctx, plan, Benchmarks(), 5); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationFrequencyForce: the engine with and without the
// frequency force at identical hyperparameters (the core ablation).
func BenchmarkAblationFrequencyForce(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pq := planFor(b, "grid", SchemeQplacer)
		pc := planFor(b, "grid", SchemeClassic)
		b.ReportMetric(pq.Metrics.Ph, "Ph_with_force")
		b.ReportMetric(pc.Metrics.Ph, "Ph_without_force")
	}
}

// BenchmarkAblationLegalization: global placement only vs full pipeline.
func BenchmarkAblationLegalization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		raw, err := Plan(Options{Topology: "grid", SkipLegalize: true})
		if err != nil {
			b.Fatal(err)
		}
		full, err := Plan(Options{Topology: "grid"})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(raw.Metrics.Ph, "Ph_global_only")
		b.ReportMetric(full.Metrics.Ph, "Ph_legalized")
	}
}
