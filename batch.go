package qplacer

import (
	"context"
	"errors"
	"math"
	"sync"
	"time"
)

// BatchResult aggregates a concurrent multi-benchmark evaluation.
type BatchResult struct {
	// Results holds one entry per requested benchmark, in input order.
	Results []*EvalResult `json:"results"`
	// MeanFidelity is the unweighted mean of the per-benchmark means.
	MeanFidelity float64 `json:"mean_fidelity"`
	// MinFidelity and MaxFidelity are the extremes over every mapping of
	// every benchmark.
	MinFidelity float64 `json:"min_fidelity"`
	MaxFidelity float64 `json:"max_fidelity"`
	// TotalMappings counts the mappings evaluated across all benchmarks.
	TotalMappings int `json:"total_mappings"`
	// Elapsed is the wall-clock time of the whole batch, in nanoseconds on
	// the wire.
	Elapsed time.Duration `json:"elapsed_ns"`
}

// EvaluateAll evaluates the plan on several benchmarks concurrently, fanning
// the per-benchmark work out over a bounded worker pool (WithWorkers; default
// GOMAXPROCS). A nil or empty benchNames evaluates every registered
// benchmark; if that leaves zero benchmarks to run, the result would be
// degenerate (NaN mean, ±Inf extremes), so ErrNoBenchmarks is returned
// instead. The first failure cancels the remaining work and is returned;
// cancellation of ctx surfaces as ErrCancelled.
func (e *Engine) EvaluateAll(ctx context.Context, plan *PlanResult, benchNames []string, nMappings int) (*BatchResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(benchNames) == 0 {
		benchNames = RegisteredBenchmarks()
	}
	if len(benchNames) == 0 {
		return nil, ErrNoBenchmarks
	}
	start := time.Now()

	workers := e.settings.workers
	if workers < 1 {
		workers = 1
	}
	if workers > len(benchNames) {
		workers = len(benchNames)
	}

	// First failure cancels the pool; per-index slots keep results ordered
	// without further synchronization.
	poolCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	results := make([]*EvalResult, len(benchNames))
	errs := make([]error, len(benchNames))

	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				r, err := e.Evaluate(poolCtx, plan, benchNames[i], nMappings)
				if err != nil {
					errs[i] = err
					cancel()
					continue
				}
				results[i] = r
			}
		}()
	}
	for i := range benchNames {
		select {
		case jobs <- i:
		case <-poolCtx.Done():
		}
		if poolCtx.Err() != nil {
			break
		}
	}
	close(jobs)
	wg.Wait()

	if err := ctx.Err(); err != nil {
		return nil, wrapCancel(err)
	}
	// Prefer the root cause over ErrCancelled noise from the pool teardown.
	var firstErr error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if firstErr == nil {
			firstErr = err
		}
		if !errors.Is(err, ErrCancelled) {
			firstErr = err
			break
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}

	out, err := aggregate(results)
	if err != nil {
		return nil, err
	}
	out.Elapsed = time.Since(start)
	return out, nil
}

// aggregate folds per-benchmark evaluations into the batch statistics. An
// empty result set has no meaningful mean or extremes and returns
// ErrNoBenchmarks.
func aggregate(results []*EvalResult) (*BatchResult, error) {
	if len(results) == 0 {
		return nil, ErrNoBenchmarks
	}
	out := &BatchResult{
		Results:     results,
		MinFidelity: math.Inf(1),
		MaxFidelity: math.Inf(-1),
	}
	for _, r := range results {
		out.MeanFidelity += r.MeanFidelity
		out.MinFidelity = math.Min(out.MinFidelity, r.MinFidelity)
		out.MaxFidelity = math.Max(out.MaxFidelity, r.MaxFidelity)
		out.TotalMappings += r.NumMappings
	}
	out.MeanFidelity /= float64(len(results))
	return out, nil
}
