package qplacer

import (
	"context"
	"errors"
	"math"
	"sync"
	"time"
)

// BatchResult aggregates a concurrent multi-benchmark evaluation.
type BatchResult struct {
	// Results holds one entry per requested benchmark, in input order.
	Results []*EvalResult
	// MeanFidelity is the unweighted mean of the per-benchmark means.
	MeanFidelity float64
	// MinFidelity and MaxFidelity are the extremes over every mapping of
	// every benchmark.
	MinFidelity float64
	MaxFidelity float64
	// TotalMappings counts the mappings evaluated across all benchmarks.
	TotalMappings int
	// Elapsed is the wall-clock time of the whole batch.
	Elapsed time.Duration
}

// EvaluateAll evaluates the plan on several benchmarks concurrently, fanning
// the per-benchmark work out over a bounded worker pool (WithWorkers; default
// GOMAXPROCS). A nil or empty benchNames evaluates every registered
// benchmark. The first failure cancels the remaining work and is returned;
// cancellation of ctx surfaces as ErrCancelled.
func (e *Engine) EvaluateAll(ctx context.Context, plan *PlanResult, benchNames []string, nMappings int) (*BatchResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(benchNames) == 0 {
		benchNames = RegisteredBenchmarks()
	}
	start := time.Now()

	workers := e.settings.workers
	if workers < 1 {
		workers = 1
	}
	if workers > len(benchNames) {
		workers = len(benchNames)
	}

	// First failure cancels the pool; per-index slots keep results ordered
	// without further synchronization.
	poolCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	results := make([]*EvalResult, len(benchNames))
	errs := make([]error, len(benchNames))

	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				r, err := e.Evaluate(poolCtx, plan, benchNames[i], nMappings)
				if err != nil {
					errs[i] = err
					cancel()
					continue
				}
				results[i] = r
			}
		}()
	}
	for i := range benchNames {
		select {
		case jobs <- i:
		case <-poolCtx.Done():
		}
		if poolCtx.Err() != nil {
			break
		}
	}
	close(jobs)
	wg.Wait()

	if err := ctx.Err(); err != nil {
		return nil, wrapCancel(err)
	}
	// Prefer the root cause over ErrCancelled noise from the pool teardown.
	var firstErr error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if firstErr == nil {
			firstErr = err
		}
		if !errors.Is(err, ErrCancelled) {
			firstErr = err
			break
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}

	out := &BatchResult{
		Results:     results,
		MinFidelity: math.Inf(1),
		MaxFidelity: math.Inf(-1),
		Elapsed:     time.Since(start),
	}
	for _, r := range results {
		out.MeanFidelity += r.MeanFidelity
		out.MinFidelity = math.Min(out.MinFidelity, r.MinFidelity)
		out.MaxFidelity = math.Max(out.MaxFidelity, r.MaxFidelity)
		out.TotalMappings += r.NumMappings
	}
	out.MeanFidelity /= float64(len(results))
	return out, nil
}
